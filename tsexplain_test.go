package tsexplain_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	tsexplain "repro"
)

// covidCSV is a miniature covid-style CSV exercised through the public
// API only.
func covidCSV() string {
	var sb strings.Builder
	sb.WriteString("date,state,cases\n")
	days := 30
	for d := 0; d < days; d++ {
		ny, ca := 0, 0
		if d <= 15 {
			ny = 100 * d
			ca = 10
		} else {
			ny = 1500
			ca = 10 + 120*(d-15)
		}
		fmt.Fprintf(&sb, "2020-03-%02d,NY,%d\n", d+1, ny)
		fmt.Fprintf(&sb, "2020-03-%02d,CA,%d\n", d+1, ca)
	}
	return sb.String()
}

func TestPublicAPIEndToEnd(t *testing.T) {
	rel, err := tsexplain.ReadCSV(strings.NewReader(covidCSV()), tsexplain.CSVSpec{
		Name:     "covid-mini",
		TimeCol:  "date",
		DimCols:  []string{"state"},
		MeasCols: []string{"cases"},
	})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	res, err := tsexplain.Explain(rel, tsexplain.Query{
		Measure: "cases",
		Agg:     tsexplain.Sum,
	}, tsexplain.Options{K: 2})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	if got := res.Segments[0].Top[0].Predicates; got != "state=NY" {
		t.Errorf("segment 1 top = %q, want state=NY", got)
	}
	if got := res.Segments[1].Top[0].Predicates; got != "state=CA" {
		t.Errorf("segment 2 top = %q, want state=CA", got)
	}
	for _, seg := range res.Segments {
		if seg.Top[0].Effect != tsexplain.Increase {
			t.Errorf("top effect = %v, want +", seg.Top[0].Effect)
		}
	}
	cut := res.Cuts()[1]
	if cut < 14 || cut > 17 {
		t.Errorf("cut at %d, want ≈15", cut)
	}
}

func TestPublicAPIDefaultsAndRoundTrip(t *testing.T) {
	rel, err := tsexplain.ReadCSV(strings.NewReader(covidCSV()), tsexplain.CSVSpec{
		TimeCol:  "date",
		DimCols:  []string{"state"},
		MeasCols: []string{"cases"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tsexplain.WriteCSV(&buf, rel); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := tsexplain.ReadCSV(&buf, tsexplain.CSVSpec{
		TimeCol:  "date",
		DimCols:  []string{"state"},
		MeasCols: []string{"cases"},
	})
	if err != nil {
		t.Fatalf("re-ReadCSV: %v", err)
	}
	opts := tsexplain.DefaultOptions()
	opts.K = 2
	res, err := tsexplain.Explain(back, tsexplain.Query{Measure: "cases", Agg: tsexplain.Sum}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(res.Segments))
	}
}

func TestPublicAPIBuilderAndIncremental(t *testing.T) {
	build := func(days int) *tsexplain.Relation {
		b := tsexplain.NewBuilder("s", "d", []string{"cat"}, []string{"v"})
		var labels []string
		for i := 0; i < days; i++ {
			labels = append(labels, fmt.Sprintf("%03d", i))
		}
		b.SetTimeOrder(labels)
		for i := 0; i < days; i++ {
			a, c := 100.0, 100.0
			if i <= 20 {
				a += 10 * float64(i)
			} else {
				a += 200
				c += 12 * float64(i-20)
			}
			_ = b.Append(labels[i], []string{"a"}, []float64{a})
			_ = b.Append(labels[i], []string{"b"}, []float64{c})
		}
		r, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	inc, first, err := tsexplain.NewIncremental(build(30), tsexplain.Query{
		Measure: "v", Agg: tsexplain.Sum,
	}, tsexplain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.K < 1 {
		t.Fatal("no initial result")
	}
	res, err := inc.Update(build(40))
	if err != nil {
		t.Fatal(err)
	}
	cuts := res.Cuts()
	if cuts[len(cuts)-1] != 39 {
		t.Errorf("updated cuts %v should reach 39", cuts)
	}
	found := false
	for _, c := range cuts {
		if c >= 19 && c <= 22 {
			found = true
		}
	}
	if !found {
		t.Errorf("cuts %v miss the regime change at ≈20", cuts)
	}
}

func TestPublicEngineReuse(t *testing.T) {
	rel, err := tsexplain.ReadCSV(strings.NewReader(covidCSV()), tsexplain.CSVSpec{
		TimeCol:  "date",
		DimCols:  []string{"state"},
		MeasCols: []string{"cases"},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := tsexplain.NewEngine(rel, tsexplain.Query{Measure: "cases", Agg: tsexplain.Sum}, tsexplain.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1.Cuts()) != fmt.Sprint(r2.Cuts()) {
		t.Errorf("repeated Explain disagrees: %v vs %v", r1.Cuts(), r2.Cuts())
	}
	// The second run should be served almost entirely from cache.
	if r2.Stats.CASolves != r1.Stats.CASolves {
		t.Errorf("second run re-solved segments: %d vs %d", r2.Stats.CASolves, r1.Stats.CASolves)
	}
	top, err := eng.TopExplanations(0, rel.NumTimestamps()-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Error("TopExplanations empty")
	}
}
