// Command datagen exports one of the built-in simulated datasets — or a
// generated synthetic scenario — as CSV on stdout, so the CSV path of
// cmd/tsexplain, the catalog upload API, and external tools can be
// exercised against the same data the experiments use.
//
//	go run ./cmd/datagen -dataset liquor > liquor.csv
//	go run ./cmd/tsexplain -csv liquor.csv -time date \
//	    -dims "Bottle Volume (ml),Pack,Category Name,Vendor Name" \
//	    -measure "Bottles Sold"
//
// The high-cardinality scenario behind the approximate-mode benchmark
// (~52k candidate conjunctions at the defaults) is generated with:
//
//	go run ./cmd/datagen -scenario highcard -manifest highcard.json > highcard.csv
//
// The taxonomy scenario behind the hierarchy benchmark — a three-level
// ~50k-leaf taxonomy plus two numeric columns for range binning — is
// generated with:
//
//	go run ./cmd/datagen -scenario taxonomy -manifest taxonomy.json > taxonomy.csv
//
// The optional -manifest file is a ready-to-upload catalog manifest
// (POST /api/datasets) with approximate-mode defaults — and, for the
// taxonomy scenario, the hierarchy and range-bin declarations — included.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/datasets"
	"repro/internal/relation"
	"repro/internal/synth"
)

func main() {
	name := flag.String("dataset", "covid", "covid, covid-daily, sp500, liquor, vax-deaths")
	scenario := flag.String("scenario", "", "synthetic scenario instead of -dataset: highcard, taxonomy")
	users := flag.Int("users", 0, "highcard: user cardinality (0: generator default)")
	regions := flag.Int("regions", 0, "highcard: region cardinality (0: generator default)")
	scale := flag.Int("scale", 1, "highcard: multiply the user cardinality; rows and candidate conjunctions grow linearly (-scale 20 is ~1M rows and ~1M candidates at the defaults)")
	cats := flag.Int("cats", 0, "taxonomy: category cardinality (0: generator default)")
	subcats := flag.Int("subcats", 0, "taxonomy: subcategories per category (0: generator default)")
	leaves := flag.Int("leaves", 0, "taxonomy: leaves per subcategory (0: generator default)")
	n := flag.Int("n", 0, "scenario series length (0: generator default)")
	seed := flag.Int64("seed", 42, "scenario generator seed")
	manifest := flag.String("manifest", "", "scenario: also write a catalog manifest JSON to this path")
	flag.Parse()

	switch *scenario {
	case "":
	case "highcard":
		writeHighCard(*users, *regions, *scale, *n, *seed, *manifest)
		return
	case "taxonomy":
		writeTaxonomy(*cats, *subcats, *leaves, *n, *seed, *manifest)
		return
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	var d *datasets.Dataset
	switch *name {
	case "covid", "covid-total":
		d = datasets.CovidTotal()
	case "covid-daily":
		d = datasets.CovidDaily()
	case "sp500":
		d = datasets.SP500()
	case "liquor":
		d = datasets.Liquor()
	case "vax-deaths":
		d = datasets.VaxDeaths()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	if err := relation.WriteCSV(os.Stdout, d.Rel); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dataset=%s rows=%d n=%d measure=%q explain-by=%v\n",
		d.Name, d.Rel.NumRows(), d.Rel.NumTimestamps(), d.Measure, d.ExplainBy)
}

func writeHighCard(users, regions, scale, n int, seed int64, manifestPath string) {
	p := synth.ScaleHighCard(synth.HighCardParams{
		Users: users, Regions: regions, N: n, Seed: seed,
	}, scale)
	d, err := synth.HighCardinality(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := relation.WriteCSV(os.Stdout, d.Rel); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if manifestPath != "" {
		m := catalog.Manifest{
			Name:       "highcard",
			TimeCol:    "T",
			DimCols:    []string{"user", "region"},
			MeasureCol: "events",
			Agg:        "SUM",
			ExplainBy:  []string{"user", "region"},
			MaxOrder:   2,
			Approx:     &catalog.ApproxDefaults{MaxCandidates: 4096, Epsilon: 0.05},
		}
		enc, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(manifestPath, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "scenario=highcard rows=%d n=%d pairs=%d ground-truth-cuts=%v\n",
		d.Rel.NumRows(), d.Rel.NumTimestamps(), d.Pairs, d.Cuts)
}

func writeTaxonomy(cats, subcats, leaves, n int, seed int64, manifestPath string) {
	d, err := synth.Taxonomy(synth.TaxonomyParams{
		Cats: cats, SubcatsPerCat: subcats, LeavesPerSubcat: leaves, N: n, Seed: seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := relation.WriteCSV(os.Stdout, d.Rel); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if manifestPath != "" {
		levels := synth.TaxonomyLevels()
		m := catalog.Manifest{
			Name:       "taxonomy",
			TimeCol:    "T",
			DimCols:    levels,
			MeasureCol: "sales",
			Agg:        "SUM",
			ExplainBy:  append(append([]string(nil), levels...), "price_bin"),
			MaxOrder:   2,
			Approx:     &catalog.ApproxDefaults{MaxCandidates: 4096, Epsilon: 0.05},
			Hierarchies: []catalog.HierarchySpec{
				{Name: "taxonomy", Levels: levels},
			},
			RangeBins: []catalog.RangeBinSpec{
				{Column: "price", Bins: 8, As: "price_bin"},
			},
		}
		enc, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(manifestPath, append(enc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "scenario=taxonomy rows=%d n=%d leaves=%d ground-truth-cuts=%v\n",
		d.Rel.NumRows(), d.Rel.NumTimestamps(), d.Leaves, d.Cuts)
}
