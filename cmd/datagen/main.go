// Command datagen exports one of the built-in simulated datasets as CSV
// on stdout, so the CSV path of cmd/tsexplain (and external tools) can be
// exercised against the same data the experiments use.
//
//	go run ./cmd/datagen -dataset liquor > liquor.csv
//	go run ./cmd/tsexplain -csv liquor.csv -time date \
//	    -dims "Bottle Volume (ml),Pack,Category Name,Vendor Name" \
//	    -measure "Bottles Sold"
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/relation"
)

func main() {
	name := flag.String("dataset", "covid", "covid, covid-daily, sp500, liquor, vax-deaths")
	flag.Parse()

	var d *datasets.Dataset
	switch *name {
	case "covid", "covid-total":
		d = datasets.CovidTotal()
	case "covid-daily":
		d = datasets.CovidDaily()
	case "sp500":
		d = datasets.SP500()
	case "liquor":
		d = datasets.Liquor()
	case "vax-deaths":
		d = datasets.VaxDeaths()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	if err := relation.WriteCSV(os.Stdout, d.Rel); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dataset=%s rows=%d n=%d measure=%q explain-by=%v\n",
		d.Name, d.Rel.NumRows(), d.Rel.NumTimestamps(), d.Measure, d.ExplainBy)
}
