// Command experiments regenerates every table and figure of the paper's
// evaluation. Run a single experiment with -run (fig4, fig5, fig6, fig10,
// fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18, table6, table7,
// ablations) or everything with -run all (the default).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id (fig4..fig18, table6, table7, ablations, all)")
	samples := flag.Int("samples", 10000, "random segmentation samples for fig6 (paper: 10000)")
	datasets := flag.Int("datasets", 20, "synthetic corpus size (paper: 20)")
	quick := flag.Bool("quick", false, "trim the heavy sweeps for a smoke run")
	svgDir := flag.String("svgdir", "", "also write the case-study SVG plots to this directory")
	flag.Parse()

	cfg := experiments.Config{Samples: *samples, Datasets: *datasets, Quick: *quick}
	if *quick {
		if *samples == 10000 {
			cfg.Samples = 500
		}
		if *datasets == 20 {
			cfg.Datasets = 5
		}
	}

	type exp struct {
		id  string
		run func(io.Writer, experiments.Config) error
	}
	all := []exp{
		{"fig4", experiments.Fig4},
		{"fig5", experiments.Fig5},
		{"fig6", discard2(experiments.Fig6)},
		{"fig10", discard2(experiments.Fig10)},
		{"fig11", discard2(experiments.Fig11)},
		{"fig12", discard2(experiments.Fig12)},
		{"fig13", discard2(experiments.Fig13)},
		{"fig14", discard2(experiments.Fig14)},
		{"table6", experiments.Table6},
		{"fig15", discard2(experiments.Fig15)},
		{"table7", experiments.Table7},
		{"fig16", discard2(experiments.Fig16)},
		{"fig17", discard2(experiments.Fig17)},
		{"fig18", discard2(experiments.Fig18)},
		{"ablations", runAblations},
	}

	ran := 0
	for _, e := range all {
		if *run != "all" && !strings.EqualFold(*run, e.id) {
			continue
		}
		start := time.Now()
		if err := e.run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
	if *svgDir != "" {
		if _, err := experiments.WriteCaseStudySVGs(os.Stdout, *svgDir); err != nil {
			fmt.Fprintf(os.Stderr, "svg output: %v\n", err)
			os.Exit(1)
		}
	}
}

func runAblations(w io.Writer, cfg experiments.Config) error {
	for _, f := range []func(io.Writer, experiments.Config) error{
		experiments.AblationRectification,
		experiments.AblationGuessInit,
		experiments.AblationSketchSize,
		experiments.AblationFilterRatio,
	} {
		if err := f(w, cfg); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// discard2 adapts an experiment returning (data, error) to the common
// signature.
func discard2[T any](f func(io.Writer, experiments.Config) (T, error)) func(io.Writer, experiments.Config) error {
	return func(w io.Writer, cfg experiments.Config) error {
		_, err := f(w, cfg)
		return err
	}
}
