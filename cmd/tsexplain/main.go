// Command tsexplain explains an aggregated time series from a CSV file
// (or one of the built-in simulated datasets) by surfacing its evolving
// top contributors.
//
// Examples:
//
//	tsexplain -demo covid
//	tsexplain -csv liquor.csv -time date -dims "Pack,Vendor Name" \
//	    -measure "Bottles Sold" -agg SUM
//	tsexplain -csv mydata.csv -manifest mydata.json
//
// -manifest reads the same JSON document the server's catalog stores
// next to each uploaded dataset (timeCol/dimCols/measureCol/agg/
// explainBy/maxOrder/smoothWindow), so an offline run reproduces exactly
// what the server serves for that dataset.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	tsexplain "repro"
	"repro/internal/catalog"
	"repro/internal/datasets"
	rendersvg "repro/internal/render"
)

func main() {
	var (
		csvPath      = flag.String("csv", "", "CSV file to explain (header row required)")
		demo         = flag.String("demo", "", "built-in dataset: covid, covid-daily, sp500, liquor, vax-deaths, stream")
		manifestPath = flag.String("manifest", "", "catalog manifest JSON describing the CSV (replaces -time/-dims/-measure/-agg/-explain-by)")
		timeCol      = flag.String("time", "", "time column name")
		dims         = flag.String("dims", "", "comma-separated dimension columns")
		measure      = flag.String("measure", "", "measure column name")
		aggName      = flag.String("agg", "SUM", "aggregate function: SUM, COUNT, AVG")
		explainBy    = flag.String("explain-by", "", "comma-separated explain-by columns (default: all dims)")
		k            = flag.Int("k", 0, "segment count (0 = automatic elbow selection)")
		m            = flag.Int("m", 3, "explanations per segment")
		maxOrder     = flag.Int("max-order", 3, "explanation order threshold β̄")
		smooth       = flag.Int("smooth", 0, "moving-average window (0 = none)")
		vanilla      = flag.Bool("vanilla", false, "disable all optimizations")
		recommend    = flag.Bool("recommend", false, "rank dimension attributes by explanatory power and exit")
		svgOut       = flag.String("svg", "", "also write a Figure 2-style trendline SVG to this file")
	)
	flag.Parse()

	if err := run(*csvPath, *demo, *manifestPath, *timeCol, *dims, *measure, *aggName,
		*explainBy, *svgOut, *k, *m, *maxOrder, *smooth, *vanilla, *recommend); err != nil {
		fmt.Fprintln(os.Stderr, "tsexplain:", err)
		os.Exit(1)
	}
}

func run(csvPath, demo, manifestPath, timeCol, dims, measure, aggName, explainBy, svgOut string,
	k, m, maxOrder, smooth int, vanilla, recommend bool) error {
	var (
		rel   *tsexplain.Relation
		query tsexplain.Query
		err   error
	)
	opts := tsexplain.DefaultOptions()
	if vanilla {
		opts = tsexplain.Options{}
	}
	opts.K = k
	opts.M = m
	opts.MaxOrder = maxOrder
	opts.SmoothWindow = smooth

	switch {
	case demo != "":
		d, derr := demoDataset(demo)
		if derr != nil {
			return derr
		}
		rel = d.Rel
		query = tsexplain.Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}
		opts.MaxOrder = d.MaxOrder
		if smooth == 0 {
			opts.SmoothWindow = d.SmoothWindow
		}
	case csvPath != "" && manifestPath != "":
		data, derr := os.ReadFile(manifestPath)
		if derr != nil {
			return derr
		}
		mf, derr := catalog.ParseManifest(data)
		if derr != nil {
			return derr
		}
		agg, derr := mf.AggFunc()
		if derr != nil {
			return derr
		}
		f, ferr := os.Open(csvPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		rel, err = tsexplain.ReadCSV(f, mf.Spec())
		if err != nil {
			return err
		}
		query = tsexplain.Query{Measure: mf.MeasureCol, Agg: agg, ExplainBy: mf.ExplainBy}
		opts.MaxOrder = mf.EffectiveMaxOrder()
		if smooth == 0 {
			opts.SmoothWindow = mf.SmoothWindow
		}
	case csvPath != "":
		if timeCol == "" || dims == "" || measure == "" {
			return fmt.Errorf("-csv requires -manifest, or -time, -dims, and -measure")
		}
		agg, aerr := parseAgg(aggName)
		if aerr != nil {
			return aerr
		}
		f, ferr := os.Open(csvPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		rel, err = tsexplain.ReadCSV(f, tsexplain.CSVSpec{
			Name:     csvPath,
			TimeCol:  timeCol,
			DimCols:  splitList(dims),
			MeasCols: []string{measure},
		})
		if err != nil {
			return err
		}
		query = tsexplain.Query{Measure: measure, Agg: agg, ExplainBy: splitList(explainBy)}
	default:
		return fmt.Errorf("pass -csv FILE or -demo NAME (see -h)")
	}

	if recommend {
		scores, err := tsexplain.RecommendExplainBy(rel, query)
		if err != nil {
			return err
		}
		fmt.Println("recommended explain-by attributes (coverage = share of each")
		fmt.Println("step's movement the attribute's best slice accounts for):")
		for i, s := range scores {
			fmt.Printf("  %d. %-28s coverage=%.3f cardinality=%d\n",
				i+1, s.Attribute, s.Coverage, s.Cardinality)
		}
		return nil
	}

	res, err := tsexplain.Explain(rel, query, opts)
	if err != nil {
		return err
	}
	render(res)
	if svgOut != "" {
		f, err := os.Create(svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		title := demo
		if title == "" {
			title = csvPath
		}
		if err := rendersvg.Trendlines(f, res, title); err != nil {
			return err
		}
		fmt.Printf("\nwrote trendline SVG to %s\n", svgOut)
	}
	return nil
}

func demoDataset(name string) (*datasets.Dataset, error) {
	switch name {
	case "covid", "covid-total":
		return datasets.CovidTotal(), nil
	case "covid-daily":
		return datasets.CovidDaily(), nil
	case "sp500":
		return datasets.SP500(), nil
	case "liquor":
		return datasets.Liquor(), nil
	case "vax-deaths":
		return datasets.VaxDeaths(), nil
	case "stream":
		return datasets.Stream(datasets.StreamDays), nil
	default:
		return nil, fmt.Errorf("unknown demo dataset %q", name)
	}
}

func parseAgg(s string) (tsexplain.AggFunc, error) {
	switch strings.ToUpper(s) {
	case "SUM":
		return tsexplain.Sum, nil
	case "COUNT":
		return tsexplain.Count, nil
	case "AVG":
		return tsexplain.Avg, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q", s)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func render(res *tsexplain.Result) {
	fmt.Printf("K = %d segments (auto=%v), total variance %.3f\n", res.K, res.AutoK, res.TotalVariance)
	fmt.Printf("latency: precompute %v, cascading %v, segmentation %v\n",
		res.Timings.Precompute, res.Timings.Cascading, res.Timings.Segmentation)
	for _, seg := range res.Segments {
		delta := res.Series[seg.End] - res.Series[seg.Start]
		fmt.Printf("\n%s ~ %s  (KPI %+.4g)\n", seg.StartLabel, seg.EndLabel, delta)
		if len(seg.Top) == 0 {
			fmt.Println("  (no slice moved in this period)")
		}
		for i, e := range seg.Top {
			fmt.Printf("  top-%d  %-48s %s  γ=%.4g\n", i+1, e.Predicates, e.Effect, e.Gamma)
		}
	}
}
