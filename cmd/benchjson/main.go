// Command benchjson runs the engine's hot-path micro-benchmarks and emits
// a machine-readable BENCH_engine.json (ns/op, B/op, allocs/op per
// benchmark), so the performance trajectory across PRs can be tracked by
// tooling instead of by eyeballing `go test -bench` output.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench regex] [-benchtime 2s] [-count 1] [-o BENCH_engine.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench covers the precompute-dominated and solver-dominated hot
// paths that the columnar kernel and the allocation-free DP target.
const defaultBench = "BenchmarkPrecompute|BenchmarkCascading|BenchmarkLiquor"

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_engine.json document.
type Report struct {
	GeneratedBy string      `json:"generated_by"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	BenchRegex  string      `json:"bench_regex"`
	BenchTime   string      `json:"bench_time"`
	UnixTime    int64       `json:"unix_time"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkPrecomputeLiquor-8  5  229347513 ns/op  27838045 B/op  196635 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "2s", "value for go test -benchtime")
	count := flag.Int("count", 1, "value for go test -count")
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	out := flag.String("o", "BENCH_engine.json", "output file ('-' for stdout)")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *bench,
		"-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		*pkg,
	}
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n%s%s", err, stdout.String(), stderr.String())
		os.Exit(1)
	}

	report := Report{
		GeneratedBy: "cmd/benchjson",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		BenchRegex:  *bench,
		BenchTime:   *benchtime,
		UnixTime:    time.Now().Unix(),
	}
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytesOp, allocsOp int64
		if m[4] != "" {
			bytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, Benchmark{
			Name:        strings.TrimPrefix(m[1], "Benchmark"),
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  bytesOp,
			AllocsPerOp: allocsOp,
		})
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched; raw output:\n%s", stdout.String())
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
}
