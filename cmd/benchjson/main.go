// Command benchjson runs the engine's benchmarks and emits machine-
// readable JSON, so the performance trajectory across PRs can be tracked
// by tooling instead of by eyeballing `go test -bench` output.
//
// Two modes:
//
//	-mode micro (default) runs the hot-path micro-benchmarks through
//	`go test -bench` and writes BENCH_engine.json (ns/op, B/op,
//	allocs/op per benchmark).
//
//	-mode streaming replays the 120-day streaming workload in-process,
//	measuring every update's latency through the O(delta) append path
//	(Incremental.AppendRows) against the legacy full-rebuild path
//	(Incremental.Update with a full snapshot), and writes
//	BENCH_streaming.json with per-update latencies and the rebuild/append
//	speedup.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench regex] [-benchtime 2s] [-count 1] [-o BENCH_engine.json]
//	go run ./cmd/benchjson -mode streaming [-replays 7] [-o BENCH_streaming.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/relation"
)

// defaultBench covers the precompute-dominated and solver-dominated hot
// paths that the columnar kernel and the allocation-free DP target.
const defaultBench = "BenchmarkPrecompute|BenchmarkCascading|BenchmarkLiquor"

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_engine.json document.
type Report struct {
	GeneratedBy string      `json:"generated_by"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	BenchRegex  string      `json:"bench_regex"`
	BenchTime   string      `json:"bench_time"`
	UnixTime    int64       `json:"unix_time"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkPrecomputeLiquor-8  5  229347513 ns/op  27838045 B/op  196635 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	mode := flag.String("mode", "micro", "micro (go test -bench) or streaming (per-update latency replay)")
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "2s", "value for go test -benchtime")
	count := flag.Int("count", 1, "value for go test -count")
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	replays := flag.Int("replays", 7, "streaming mode: replay count (per-update minimum is reported)")
	out := flag.String("o", "", "output file ('-' for stdout; default depends on mode)")
	flag.Parse()

	switch *mode {
	case "streaming":
		if *out == "" {
			*out = "BENCH_streaming.json"
		}
		if err := runStreaming(*out, *replays); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	case "micro":
		if *out == "" {
			*out = "BENCH_engine.json"
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	args := []string{
		"test", "-run", "^$",
		"-bench", *bench,
		"-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		*pkg,
	}
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n%s%s", err, stdout.String(), stderr.String())
		os.Exit(1)
	}

	report := Report{
		GeneratedBy: "cmd/benchjson",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		BenchRegex:  *bench,
		BenchTime:   *benchtime,
		UnixTime:    time.Now().Unix(),
	}
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytesOp, allocsOp int64
		if m[4] != "" {
			bytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, Benchmark{
			Name:        strings.TrimPrefix(m[1], "Benchmark"),
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  bytesOp,
			AllocsPerOp: allocsOp,
		})
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched; raw output:\n%s", stdout.String())
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
}

// streamStart is where the streaming replay switches from batch build to
// per-day updates: the first half of the 120-day workload.
const streamStart = 60

// StreamUpdate is one per-update latency sample (minimum over replays).
type StreamUpdate struct {
	Day       int     `json:"day"`
	N         int     `json:"n"`
	AppendNs  int64   `json:"append_ns"`
	RebuildNs int64   `json:"rebuild_ns"`
	Speedup   float64 `json:"speedup"`
}

// StreamTotals sums a range of updates.
type StreamTotals struct {
	Updates   int     `json:"updates"`
	AppendNs  int64   `json:"append_ns"`
	RebuildNs int64   `json:"rebuild_ns"`
	Speedup   float64 `json:"speedup"`
}

// StreamReport is the BENCH_streaming.json document.
type StreamReport struct {
	GeneratedBy string         `json:"generated_by"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	Workload    string         `json:"workload"`
	StartDays   int            `json:"start_days"`
	TotalDays   int            `json:"total_days"`
	Replays     int            `json:"replays"`
	UnixTime    int64          `json:"unix_time"`
	Updates     []StreamUpdate `json:"updates"`
	Totals      StreamTotals   `json:"totals"`
	// LaterHalf covers the second half of the updates, where the gap
	// between O(delta) appends and O(history) rebuilds is widest.
	LaterHalf StreamTotals `json:"later_half"`
}

func streamOptions() core.Options {
	opts := core.DefaultOptions()
	opts.MaxOrder = 2
	return opts
}

// runStreaming replays the streaming workload day by day through both
// incremental paths and writes the per-update latency report. Snapshots
// for the rebuild path are materialized up front so their construction is
// not billed to the update.
func runStreaming(out string, replays int) error {
	if replays < 1 {
		replays = 1
	}
	days := datasets.StreamDays
	q := core.Query{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "county"}}

	snapshots := make([]*relation.Relation, days+1)
	for d := streamStart + 1; d <= days; d++ {
		snapshots[d] = datasets.Stream(d).Rel
	}

	nUpdates := days - streamStart
	appendNs := make([]int64, nUpdates)
	rebuildNs := make([]int64, nUpdates)
	for r := 0; r < replays; r++ {
		incAppend, _, err := core.NewIncremental(datasets.Stream(streamStart).Rel, q, streamOptions())
		if err != nil {
			return err
		}
		incRebuild, _, err := core.NewIncremental(datasets.Stream(streamStart).Rel, q, streamOptions())
		if err != nil {
			return err
		}
		for d := streamStart; d < days; d++ {
			timeVals, dims, measures := datasets.StreamDelta(d)
			t0 := time.Now()
			if _, err := incAppend.AppendRows(timeVals, dims, measures); err != nil {
				return err
			}
			aNs := time.Since(t0).Nanoseconds()

			t1 := time.Now()
			if _, err := incRebuild.Update(snapshots[d+1]); err != nil {
				return err
			}
			rNs := time.Since(t1).Nanoseconds()

			i := d - streamStart
			if r == 0 || aNs < appendNs[i] {
				appendNs[i] = aNs
			}
			if r == 0 || rNs < rebuildNs[i] {
				rebuildNs[i] = rNs
			}
		}
	}

	report := StreamReport{
		GeneratedBy: "cmd/benchjson -mode streaming",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Workload:    "datasets.Stream: 120-day four-state epidemic, per-county rows, day-by-day updates from day 60",
		StartDays:   streamStart,
		TotalDays:   days,
		Replays:     replays,
		UnixTime:    time.Now().Unix(),
	}
	sum := func(from, to int) StreamTotals {
		t := StreamTotals{Updates: to - from}
		for i := from; i < to; i++ {
			t.AppendNs += appendNs[i]
			t.RebuildNs += rebuildNs[i]
		}
		if t.AppendNs > 0 {
			t.Speedup = float64(t.RebuildNs) / float64(t.AppendNs)
		}
		return t
	}
	for i := 0; i < nUpdates; i++ {
		u := StreamUpdate{
			Day:       streamStart + i,
			N:         streamStart + i + 1,
			AppendNs:  appendNs[i],
			RebuildNs: rebuildNs[i],
		}
		if u.AppendNs > 0 {
			u.Speedup = float64(u.RebuildNs) / float64(u.AppendNs)
		}
		report.Updates = append(report.Updates, u)
	}
	report.Totals = sum(0, nUpdates)
	report.LaterHalf = sum(nUpdates/2, nUpdates)

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d updates, later-half speedup %.1fx)\n",
		out, nUpdates, report.LaterHalf.Speedup)
	return nil
}
