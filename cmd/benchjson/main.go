// Command benchjson runs the engine's benchmarks and emits machine-
// readable JSON, so the performance trajectory across PRs can be tracked
// by tooling instead of by eyeballing `go test -bench` output.
//
// Five modes:
//
//	-mode micro (default) runs the hot-path micro-benchmarks through
//	`go test -bench` and writes BENCH_engine.json (ns/op, B/op,
//	allocs/op per benchmark).
//
//	-mode streaming replays the 120-day streaming workload in-process,
//	measuring every update's latency through the O(delta) append path
//	(Incremental.AppendRows) against the legacy full-rebuild path
//	(Incremental.Update with a full snapshot), and writes
//	BENCH_streaming.json with per-update latencies and the rebuild/append
//	speedup.
//
//	-mode catalog measures the warm-restart path on the liquor and stream
//	datasets staged in a temp on-disk catalog: cold start (CSV parse +
//	full engine build) vs snapshot save and snapshot restore (decode +
//	engine finish), and writes BENCH_catalog.json with the restore-vs-
//	rebuild speedup.
//
//	-mode approx runs the high-cardinality synthetic scenario (~52k
//	conjunctions) through the exact and the anytime approximate explain
//	paths on freshly built engines, measures the end-to-end explain
//	latency of each, verifies the approximate result against the exact
//	optimum per segment, and writes BENCH_approx.json with the speedup,
//	the reported error bound, and the measured error.
//
//	-mode hierarchy runs the taxonomy synthetic scenario (~50k leaves,
//	~52k candidates) through the exact and the subtree-pruned approximate
//	explain paths over the same hierarchy-declared universe, measures the
//	flat-vs-walk candidate ranking on a fresh universe, verifies the
//	approximate result per segment, and writes BENCH_hierarchy.json.
//
//	-mode bigdata stages a high-cardinality dataset scaled (-scale) past
//	the engine-pool memory budget (-budget-mb), snapshots it in the raw
//	arena layout, and serves a cold approximate-explain workload
//	(-requests) against the full HTTP stack: every request restores an
//	engine whose candidate arena is read off the memory-mapped snapshot.
//	BENCH_bigdata.json records the dataset/budget ratio, the
//	resident-vs-mapped split from the registry gauges, the latency
//	percentiles, and the serving-time peak heap.
//
// Every mode accepts -cpuprofile/-memprofile: micro mode forwards them to
// `go test`, the in-process modes profile the replay directly, so the
// exact workload a CI gate measures can be handed to `go tool pprof`.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench regex] [-benchtime 2s] [-count 1] [-o BENCH_engine.json]
//	go run ./cmd/benchjson -mode streaming [-replays 7] [-o BENCH_streaming.json]
//	go run ./cmd/benchjson -mode catalog [-replays 5] [-o BENCH_catalog.json]
//	go run ./cmd/benchjson -mode approx [-replays 3] [-o BENCH_approx.json]
//	go run ./cmd/benchjson -mode hierarchy [-replays 3] [-o BENCH_hierarchy.json]
//	go run ./cmd/benchjson -mode bigdata [-scale 2] [-budget-mb 48] [-requests 96] [-o BENCH_bigdata.json]
//	go run ./cmd/benchjson -mode catalog -cpuprofile cat.pprof -memprofile cat.mprof
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/synth"
)

// defaultBench covers the precompute-dominated and solver-dominated hot
// paths that the columnar kernel and the allocation-free DP target, plus
// the group-by fill and AllPair prefix micro-benchmarks that watch the
// flat-layout kernels directly.
const defaultBench = "BenchmarkPrecompute|BenchmarkCascading|BenchmarkLiquor|BenchmarkVarCalc|BenchmarkGroupByFill"

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_engine.json document.
type Report struct {
	GeneratedBy string      `json:"generated_by"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	BenchRegex  string      `json:"bench_regex"`
	BenchTime   string      `json:"bench_time"`
	UnixTime    int64       `json:"unix_time"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkPrecomputeLiquor-8  5  229347513 ns/op  27838045 B/op  196635 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	mode := flag.String("mode", "micro", "micro (go test -bench), streaming (per-update latency replay), catalog (snapshot save/restore vs rebuild), approx (high-cardinality exact vs anytime approximate), hierarchy (taxonomy exact vs subtree-pruned approximate), or bigdata (beyond-RAM serving off a mapped snapshot)")
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "2s", "value for go test -benchtime")
	count := flag.Int("count", 1, "value for go test -count")
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	replays := flag.Int("replays", 7, "streaming/catalog modes: replay count (minimum is reported)")
	scale := flag.Int("scale", 2, "bigdata mode: highcard user-cardinality multiplier (the dataset must outgrow the budget)")
	budgetMB := flag.Int("budget-mb", 48, "bigdata mode: engine-pool memory budget in MiB")
	requests := flag.Int("requests", 96, "bigdata mode: cold explain requests to serve")
	out := flag.String("o", "", "output file ('-' for stdout; default depends on mode)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here (micro mode: forwarded to go test; other modes: profiles the replay in-process)")
	memprofile := flag.String("memprofile", "", "write a heap profile here (micro mode: forwarded to go test; other modes: snapshots the heap after the replay)")
	flag.Parse()

	switch *mode {
	case "streaming":
		if *out == "" {
			*out = "BENCH_streaming.json"
		}
		if err := withProfiles(*cpuprofile, *memprofile, func() error { return runStreaming(*out, *replays) }); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	case "catalog":
		if *out == "" {
			*out = "BENCH_catalog.json"
		}
		if err := withProfiles(*cpuprofile, *memprofile, func() error { return runCatalog(*out, *replays) }); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	case "approx":
		if *out == "" {
			*out = "BENCH_approx.json"
		}
		if err := withProfiles(*cpuprofile, *memprofile, func() error { return runApprox(*out, *replays) }); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	case "hierarchy":
		if *out == "" {
			*out = "BENCH_hierarchy.json"
		}
		if err := withProfiles(*cpuprofile, *memprofile, func() error { return runHierarchy(*out, *replays) }); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	case "bigdata":
		if *out == "" {
			*out = "BENCH_bigdata.json"
		}
		if err := withProfiles(*cpuprofile, *memprofile, func() error { return runBigdata(*out, *scale, *budgetMB, *requests) }); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	case "micro":
		if *out == "" {
			*out = "BENCH_engine.json"
		}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	args := []string{
		"test", "-run", "^$",
		"-bench", *bench,
		"-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
	}
	// go test writes profiles next to the test binary unless given an
	// absolute path; resolve so -cpuprofile benchjson.pprof lands where
	// the user asked.
	if *cpuprofile != "" {
		args = append(args, "-cpuprofile", absPath(*cpuprofile))
	}
	if *memprofile != "" {
		args = append(args, "-memprofile", absPath(*memprofile))
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n%s%s", err, stdout.String(), stderr.String())
		os.Exit(1)
	}

	report := Report{
		GeneratedBy: "cmd/benchjson",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		BenchRegex:  *bench,
		BenchTime:   *benchtime,
		UnixTime:    time.Now().Unix(),
	}
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytesOp, allocsOp int64
		if m[4] != "" {
			bytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, Benchmark{
			Name:        strings.TrimPrefix(m[1], "Benchmark"),
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  bytesOp,
			AllocsPerOp: allocsOp,
		})
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched; raw output:\n%s", stdout.String())
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
}

// absPath resolves a profile path against the invocation directory, since
// `go test` otherwise drops profiles next to the test binary.
func absPath(p string) string {
	abs, err := filepath.Abs(p)
	if err != nil {
		return p
	}
	return abs
}

// withProfiles runs an in-process benchmark mode under the optional CPU
// profiler and snapshots the heap afterwards — the workflow for chasing a
// regression benchcmp flags: profile the same replay the gate measures,
// then `go tool pprof` the output.
func withProfiles(cpu, mem string, run func() error) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err == nil {
				fmt.Fprintf(os.Stderr, "benchjson: wrote CPU profile %s\n", cpu)
			}
		}()
	}
	if err := run(); err != nil {
		return err
	}
	if mem != "" {
		runtime.GC() // settle the heap so the profile shows retained memory
		f, err := os.Create(mem)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote heap profile %s\n", mem)
	}
	return nil
}

// streamStart is where the streaming replay switches from batch build to
// per-day updates: the first half of the 120-day workload.
const streamStart = 60

// StreamUpdate is one per-update latency sample (minimum over replays).
type StreamUpdate struct {
	Day       int     `json:"day"`
	N         int     `json:"n"`
	AppendNs  int64   `json:"append_ns"`
	RebuildNs int64   `json:"rebuild_ns"`
	Speedup   float64 `json:"speedup"`
}

// StreamTotals sums a range of updates.
type StreamTotals struct {
	Updates   int     `json:"updates"`
	AppendNs  int64   `json:"append_ns"`
	RebuildNs int64   `json:"rebuild_ns"`
	Speedup   float64 `json:"speedup"`
}

// StreamReport is the BENCH_streaming.json document.
type StreamReport struct {
	GeneratedBy string         `json:"generated_by"`
	GoVersion   string         `json:"go_version"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	Workload    string         `json:"workload"`
	StartDays   int            `json:"start_days"`
	TotalDays   int            `json:"total_days"`
	Replays     int            `json:"replays"`
	UnixTime    int64          `json:"unix_time"`
	Updates     []StreamUpdate `json:"updates"`
	Totals      StreamTotals   `json:"totals"`
	// LaterHalf covers the second half of the updates, where the gap
	// between O(delta) appends and O(history) rebuilds is widest.
	LaterHalf StreamTotals `json:"later_half"`
}

func streamOptions() core.Options {
	opts := core.DefaultOptions()
	opts.MaxOrder = 2
	return opts
}

// runStreaming replays the streaming workload day by day through both
// incremental paths and writes the per-update latency report. Snapshots
// for the rebuild path are materialized up front so their construction is
// not billed to the update.
func runStreaming(out string, replays int) error {
	if replays < 1 {
		replays = 1
	}
	days := datasets.StreamDays
	q := core.Query{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "county"}}

	snapshots := make([]*relation.Relation, days+1)
	for d := streamStart + 1; d <= days; d++ {
		snapshots[d] = datasets.Stream(d).Rel
	}

	nUpdates := days - streamStart
	appendNs := make([]int64, nUpdates)
	rebuildNs := make([]int64, nUpdates)
	for r := 0; r < replays; r++ {
		incAppend, _, err := core.NewIncremental(datasets.Stream(streamStart).Rel, q, streamOptions())
		if err != nil {
			return err
		}
		incRebuild, _, err := core.NewIncremental(datasets.Stream(streamStart).Rel, q, streamOptions())
		if err != nil {
			return err
		}
		for d := streamStart; d < days; d++ {
			timeVals, dims, measures := datasets.StreamDelta(d)
			t0 := time.Now()
			if _, err := incAppend.AppendRows(timeVals, dims, measures); err != nil {
				return err
			}
			aNs := time.Since(t0).Nanoseconds()

			t1 := time.Now()
			if _, err := incRebuild.Update(snapshots[d+1]); err != nil {
				return err
			}
			rNs := time.Since(t1).Nanoseconds()

			i := d - streamStart
			if r == 0 || aNs < appendNs[i] {
				appendNs[i] = aNs
			}
			if r == 0 || rNs < rebuildNs[i] {
				rebuildNs[i] = rNs
			}
		}
	}

	report := StreamReport{
		GeneratedBy: "cmd/benchjson -mode streaming",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Workload:    "datasets.Stream: 120-day four-state epidemic, per-county rows, day-by-day updates from day 60",
		StartDays:   streamStart,
		TotalDays:   days,
		Replays:     replays,
		UnixTime:    time.Now().Unix(),
	}
	sum := func(from, to int) StreamTotals {
		t := StreamTotals{Updates: to - from}
		for i := from; i < to; i++ {
			t.AppendNs += appendNs[i]
			t.RebuildNs += rebuildNs[i]
		}
		if t.AppendNs > 0 {
			t.Speedup = float64(t.RebuildNs) / float64(t.AppendNs)
		}
		return t
	}
	for i := 0; i < nUpdates; i++ {
		u := StreamUpdate{
			Day:       streamStart + i,
			N:         streamStart + i + 1,
			AppendNs:  appendNs[i],
			RebuildNs: rebuildNs[i],
		}
		if u.AppendNs > 0 {
			u.Speedup = float64(u.RebuildNs) / float64(u.AppendNs)
		}
		report.Updates = append(report.Updates, u)
	}
	report.Totals = sum(0, nUpdates)
	report.LaterHalf = sum(nUpdates/2, nUpdates)

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d updates, later-half speedup %.1fx)\n",
		out, nUpdates, report.LaterHalf.Speedup)
	return nil
}

// CatalogDataset is one dataset's warm-restart measurements (minimum
// over replays).
type CatalogDataset struct {
	Name          string `json:"name"`
	Rows          int    `json:"rows"`
	Timestamps    int    `json:"timestamps"`
	Candidates    int    `json:"candidates"`
	CSVBytes      int64  `json:"csv_bytes"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	// ColdBuildNs is a cold start without a snapshot: CSV parse +
	// dictionary encoding + full engine build (group-by, planning,
	// smoothing, filter).
	ColdBuildNs int64 `json:"cold_build_ns"`
	// SnapshotSaveNs encodes and atomically writes the snapshot.
	SnapshotSaveNs int64 `json:"snapshot_save_ns"`
	// SnapshotRestoreNs is a warm start: snapshot load (checksum,
	// decode) + engine finish (smoothing, filter, explainer).
	SnapshotRestoreNs int64 `json:"snapshot_restore_ns"`
	// Speedup is ColdBuildNs / SnapshotRestoreNs.
	Speedup float64 `json:"speedup"`
}

// CatalogReport is the BENCH_catalog.json document.
type CatalogReport struct {
	GeneratedBy string           `json:"generated_by"`
	GoVersion   string           `json:"go_version"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	Replays     int              `json:"replays"`
	UnixTime    int64            `json:"unix_time"`
	Datasets    []CatalogDataset `json:"datasets"`
}

// runCatalog stages the liquor and stream datasets in a temp on-disk
// catalog and measures cold start vs snapshot save/restore.
func runCatalog(out string, replays int) error {
	if replays < 1 {
		replays = 1
	}
	dir, err := os.MkdirTemp("", "tsx-bench-catalog-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cat, err := catalog.Open(dir)
	if err != nil {
		return err
	}

	report := CatalogReport{
		GeneratedBy: "cmd/benchjson -mode catalog",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Replays:     replays,
		UnixTime:    time.Now().Unix(),
	}
	for _, d := range []*datasets.Dataset{datasets.Liquor(), datasets.Stream(datasets.StreamDays)} {
		cd, err := benchCatalogDataset(cat, d, replays)
		if err != nil {
			return fmt.Errorf("%s: %w", d.Name, err)
		}
		report.Datasets = append(report.Datasets, cd)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	for _, cd := range report.Datasets {
		fmt.Fprintf(os.Stderr, "benchjson: %s cold %.1fms, restore %.1fms (%.1fx)\n",
			cd.Name, float64(cd.ColdBuildNs)/1e6, float64(cd.SnapshotRestoreNs)/1e6, cd.Speedup)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d datasets)\n", out, len(report.Datasets))
	return nil
}

// catalogBenchName makes a catalog-safe slug for a dataset.
func catalogBenchName(name string) string {
	return "bench-" + strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}

func benchCatalogDataset(cat *catalog.Catalog, d *datasets.Dataset, replays int) (CatalogDataset, error) {
	name := catalogBenchName(d.Name)
	m := catalog.Manifest{
		Name:         name,
		TimeCol:      d.Rel.TimeName(),
		DimCols:      d.Rel.DimNames(),
		MeasureCol:   d.Measure,
		Agg:          d.Agg.String(),
		ExplainBy:    d.ExplainBy,
		MaxOrder:     d.MaxOrder,
		SmoothWindow: d.SmoothWindow,
	}
	var csvBuf bytes.Buffer
	if err := relation.WriteCSV(&csvBuf, d.Rel); err != nil {
		return CatalogDataset{}, err
	}
	if _, err := cat.Create(m, bytes.NewReader(csvBuf.Bytes())); err != nil {
		return CatalogDataset{}, err
	}
	cd := CatalogDataset{
		Name:       d.Name,
		Rows:       d.Rel.NumRows(),
		Timestamps: d.Rel.NumTimestamps(),
		CSVBytes:   int64(csvBuf.Len()),
	}
	q := core.Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}
	opts := core.DefaultOptions()
	opts.MaxOrder = d.MaxOrder
	opts.SmoothWindow = d.SmoothWindow

	// Cold start: CSV parse + full engine build, exactly what a restart
	// without a snapshot pays per dataset.
	for r := 0; r < replays; r++ {
		t0 := time.Now()
		rel, err := cat.LoadRelation(name)
		if err != nil {
			return cd, err
		}
		if _, err := core.NewEngine(rel, q, opts); err != nil {
			return cd, err
		}
		if ns := time.Since(t0).Nanoseconds(); r == 0 || ns < cd.ColdBuildNs {
			cd.ColdBuildNs = ns
		}
	}

	// Snapshot save: raw universe encode + checksummed atomic write. The
	// universe build itself is not billed — the background refresher
	// amortizes it off the request path.
	fp, err := cat.DataFingerprint(name)
	if err != nil {
		return cd, err
	}
	rel, err := cat.LoadRelation(name)
	if err != nil {
		return cd, err
	}
	u, err := explain.NewUniverse(rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		return cd, err
	}
	cd.Candidates = u.NumCandidates()
	for r := 0; r < replays; r++ {
		t0 := time.Now()
		if err := cat.SaveSnapshot(name, rel, u, fp); err != nil {
			return cd, err
		}
		if ns := time.Since(t0).Nanoseconds(); r == 0 || ns < cd.SnapshotSaveNs {
			cd.SnapshotSaveNs = ns
		}
	}

	// Warm start: snapshot load (checksum + decode) + engine finish
	// (smoothing, support filter, explainer) — the group-by and planning
	// passes never run.
	for r := 0; r < replays; r++ {
		t0 := time.Now()
		srel, su, err := cat.LoadSnapshot(name)
		if err != nil {
			return cd, err
		}
		_ = srel
		if _, err := core.NewEngineFromUniverse(su, q, opts); err != nil {
			return cd, err
		}
		if ns := time.Since(t0).Nanoseconds(); r == 0 || ns < cd.SnapshotRestoreNs {
			cd.SnapshotRestoreNs = ns
		}
	}
	if cd.SnapshotRestoreNs > 0 {
		cd.Speedup = float64(cd.ColdBuildNs) / float64(cd.SnapshotRestoreNs)
	}
	if fi, err := os.Stat(filepath.Join(cat.Dir(), name, "snapshot.bin")); err == nil {
		cd.SnapshotBytes = fi.Size()
	}
	return cd, nil
}

// ApproxReport is the BENCH_approx.json document: the high-cardinality
// scenario's exact-vs-approximate explain latency and the approximate
// path's reported and measured attribution error.
type ApproxReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	Replays     int    `json:"replays"`
	UnixTime    int64  `json:"unix_time"`
	Scenario    string `json:"scenario"`
	// Candidate-axis shape of the scenario.
	Users      int `json:"users"`
	Regions    int `json:"regions"`
	N          int `json:"n"`
	Candidates int `json:"candidates"`
	Eligible   int `json:"eligible"`
	// BuildNs is the shared precompute (relation → engine) both modes pay
	// identically; ExactExplainNs/ApproxExplainNs are the end-to-end
	// explain calls on a freshly built engine (minimum over replays).
	BuildNs         int64   `json:"build_ns"`
	ExactExplainNs  int64   `json:"exact_explain_ns"`
	ApproxExplainNs int64   `json:"approx_explain_ns"`
	Speedup         float64 `json:"speedup"`
	// Error accounting: the requested epsilon, the worst reported
	// per-segment bound, and the worst error actually measured against
	// the exact optimum on the approximate run's own segments.
	Epsilon        float64 `json:"epsilon"`
	CandidatesUsed int     `json:"candidates_used"`
	MaxErrBound    float64 `json:"max_err_bound"`
	MaxActualErr   float64 `json:"max_actual_err"`
	Rounds         int     `json:"rounds"`
	K              int     `json:"k"`
}

// approxScenario returns the benchmark's high-cardinality dataset: the
// generator defaults, ~52k conjunctions at order 2.
func approxScenario() (*synth.HighCardDataset, synth.HighCardParams, error) {
	p := synth.HighCardParams{Seed: 42}.WithDefaults()
	d, err := synth.HighCardinality(p)
	return d, p, err
}

func approxQueryOpts() (core.Query, core.Options) {
	q := core.Query{Measure: "events", Agg: relation.Sum, ExplainBy: []string{"user", "region"}}
	opts := core.DefaultOptions()
	opts.MaxOrder = 2
	opts.K = 8
	return q, opts
}

// runApprox measures the exact and approximate explain paths on the
// high-cardinality scenario and cross-checks the approximate result.
func runApprox(out string, replays int) error {
	if replays < 1 {
		replays = 1
	}
	d, p, err := approxScenario()
	if err != nil {
		return err
	}
	q, opts := approxQueryOpts()
	aopts := opts
	aopts.Approx = core.ApproxOptions{Enabled: true, Epsilon: 0.05, MaxCandidates: 4096}

	report := ApproxReport{
		GeneratedBy: "cmd/benchjson -mode approx",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Replays:     replays,
		UnixTime:    time.Now().Unix(),
		Scenario:    fmt.Sprintf("synth.HighCardinality seed=%d: %d whale users over a %d×%d user-region long tail", p.Seed, p.Whales, p.Users-p.Whales, p.Regions),
		Users:       p.Users,
		Regions:     p.Regions,
		N:           p.N,
		Epsilon:     aopts.Approx.Epsilon,
		K:           opts.K,
	}

	// Exact path: fresh engine per replay so every explain is cold (the
	// per-segment cache would otherwise make later replays free).
	var exactEng *core.Engine
	for r := 0; r < replays; r++ {
		t0 := time.Now()
		eng, err := core.NewEngine(d.Rel, q, opts)
		if err != nil {
			return err
		}
		build := time.Since(t0).Nanoseconds()
		t1 := time.Now()
		if _, err := eng.Explain(); err != nil {
			return err
		}
		ns := time.Since(t1).Nanoseconds()
		if r == 0 || build < report.BuildNs {
			report.BuildNs = build
		}
		if r == 0 || ns < report.ExactExplainNs {
			report.ExactExplainNs = ns
		}
		exactEng = eng
	}
	report.Candidates = exactEng.Universe().NumCandidates()
	report.Eligible = exactEng.FilteredCount()

	// Approximate path, same cold-engine discipline.
	var approxRes *core.Result
	for r := 0; r < replays; r++ {
		eng, err := core.NewEngine(d.Rel, q, aopts)
		if err != nil {
			return err
		}
		t1 := time.Now()
		res, err := eng.Explain()
		if err != nil {
			return err
		}
		ns := time.Since(t1).Nanoseconds()
		if r == 0 || ns < report.ApproxExplainNs {
			report.ApproxExplainNs = ns
		}
		approxRes = res
	}
	if approxRes.Approx == nil {
		return fmt.Errorf("approx run returned no ApproxInfo")
	}
	report.CandidatesUsed = approxRes.Approx.CandidatesUsed
	report.MaxErrBound = approxRes.Approx.MaxErrBound
	report.Rounds = approxRes.Approx.Rounds
	if report.ApproxExplainNs > 0 {
		report.Speedup = float64(report.ExactExplainNs) / float64(report.ApproxExplainNs)
	}

	// Measure the true attribution error against the exact optimum on the
	// approximate run's own segments; it must stay within the reported
	// per-segment bound.
	mIdx := len(exactEng.Explainer().TopM(0, 1).Best) - 1
	for _, seg := range approxRes.Segments {
		ge := exactEng.Explainer().TopM(seg.Start, seg.End).Best[mIdx]
		var ga float64
		for _, e := range seg.Top {
			ga += e.Gamma
		}
		if ge <= 0 {
			continue
		}
		actual := (ge - ga) / ge
		if actual < 0 {
			actual = 0
		}
		if actual > report.MaxActualErr {
			report.MaxActualErr = actual
		}
		if actual > seg.ErrBound+1e-9 {
			return fmt.Errorf("segment [%d,%d]: measured error %.6f exceeds reported bound %.6f",
				seg.Start, seg.End, actual, seg.ErrBound)
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: approx %d cands (%d eligible, %d used): exact %.0fms vs approx %.0fms (%.1fx), bound %.4f, measured %.4f\n",
		report.Candidates, report.Eligible, report.CandidatesUsed,
		float64(report.ExactExplainNs)/1e6, float64(report.ApproxExplainNs)/1e6,
		report.Speedup, report.MaxErrBound, report.MaxActualErr)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", out)
	return nil
}

// HierarchyReport is the BENCH_hierarchy.json document: the taxonomy
// scenario's exact-vs-subtree-pruned explain latency, the walk-vs-flat
// candidate-ranking micro-comparison, and the approximate path's error
// accounting. Both explain paths run over the same hierarchy-declared
// universe (grouped enumeration, taxonomy DAG edges), so the differential
// compares within one candidate space; the only variable is the subtree
// bound-pruning.
type HierarchyReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	Replays     int    `json:"replays"`
	UnixTime    int64  `json:"unix_time"`
	Scenario    string `json:"scenario"`
	// Taxonomy shape of the scenario.
	Cats       int `json:"cats"`
	Subcats    int `json:"subcats"`
	Leaves     int `json:"leaves"`
	N          int `json:"n"`
	Candidates int `json:"candidates"`
	Eligible   int `json:"eligible"`
	// BuildNs is the shared precompute both modes pay identically;
	// ExactExplainNs/HierExplainNs are the end-to-end explain calls on a
	// freshly built engine (minimum over replays).
	BuildNs        int64   `json:"build_ns"`
	ExactExplainNs int64   `json:"exact_explain_ns"`
	HierExplainNs  int64   `json:"hier_explain_ns"`
	Speedup        float64 `json:"speedup"`
	// Ranking micro-comparison on a fresh universe at the same budget:
	// the flat ContributionBounds + SelectTopBounds pass scores every
	// candidate, the best-first subtree walk scores only Visited of them.
	RankFlatNs  int64   `json:"rank_flat_ns"`
	WalkNs      int64   `json:"walk_ns"`
	WalkSpeedup float64 `json:"walk_speedup"`
	Visited     int     `json:"visited"`
	// Error accounting, as in the approx report: requested epsilon, worst
	// reported per-segment bound, worst error measured against the exact
	// optimum on the approximate run's own segments.
	Epsilon        float64 `json:"epsilon"`
	CandidatesUsed int     `json:"candidates_used"`
	MaxErrBound    float64 `json:"max_err_bound"`
	MaxActualErr   float64 `json:"max_actual_err"`
	Rounds         int     `json:"rounds"`
	K              int     `json:"k"`
}

// hierScenario returns the benchmark's taxonomy dataset: the generator
// defaults, a three-level ~50k-leaf taxonomy (~52k candidates with the
// roll-up levels).
func hierScenario() (*synth.TaxonomyDataset, synth.TaxonomyParams, error) {
	p := synth.TaxonomyParams{Seed: 42}.WithDefaults()
	d, err := synth.Taxonomy(p)
	return d, p, err
}

func hierQueryOpts() (core.Query, core.Options) {
	q := core.Query{Measure: "sales", Agg: relation.Sum, ExplainBy: synth.TaxonomyLevels()}
	opts := core.DefaultOptions()
	opts.MaxOrder = 2
	opts.K = 8
	opts.Hierarchies = [][]string{synth.TaxonomyLevels()}
	return q, opts
}

// runHierarchy measures the exact and the subtree-pruned approximate
// explain paths on the taxonomy scenario and cross-checks the approximate
// result against the exact optimum per segment.
func runHierarchy(out string, replays int) error {
	if replays < 1 {
		replays = 1
	}
	d, p, err := hierScenario()
	if err != nil {
		return err
	}
	q, opts := hierQueryOpts()
	aopts := opts
	aopts.Approx = core.ApproxOptions{Enabled: true, Epsilon: 0.05, MaxCandidates: 4096}

	report := HierarchyReport{
		GeneratedBy: "cmd/benchjson -mode hierarchy",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Replays:     replays,
		UnixTime:    time.Now().Unix(),
		Scenario:    fmt.Sprintf("synth.Taxonomy seed=%d: %d drivers in a %d×%d×%d cat/subcat/leaf taxonomy", p.Seed, p.Drivers, p.Cats, p.SubcatsPerCat, p.LeavesPerSubcat),
		Cats:        p.Cats,
		Subcats:     p.SubcatsPerCat,
		Leaves:      p.LeavesPerSubcat,
		N:           p.N,
		Epsilon:     aopts.Approx.Epsilon,
		K:           opts.K,
	}

	// Subtree-pruned approximate path first: fresh engine per replay so
	// every explain is cold. Its settled candidate budget (where the
	// anytime refinement stopped) is what the ranking micro-comparison
	// below replays.
	var hierRes *core.Result
	for r := 0; r < replays; r++ {
		eng, err := core.NewEngine(d.Rel, q, aopts)
		if err != nil {
			return err
		}
		t1 := time.Now()
		res, err := eng.Explain()
		if err != nil {
			return err
		}
		ns := time.Since(t1).Nanoseconds()
		if r == 0 || ns < report.HierExplainNs {
			report.HierExplainNs = ns
		}
		hierRes = res
	}
	if hierRes.Approx == nil {
		return fmt.Errorf("hierarchy run returned no ApproxInfo")
	}
	report.CandidatesUsed = hierRes.Approx.CandidatesUsed
	report.MaxErrBound = hierRes.Approx.MaxErrBound
	report.Rounds = hierRes.Approx.Rounds

	// Exact path, same cold-engine discipline. The walk-vs-flat ranking
	// micro-comparison piggybacks on the same fresh universe, at the budget
	// the approximate run settled on — both selector caches start cold, and
	// neither feeds the exact explain that follows.
	budget := report.CandidatesUsed
	if budget <= 0 {
		budget = aopts.Approx.MaxCandidates
	}
	var exactEng *core.Engine
	for r := 0; r < replays; r++ {
		t0 := time.Now()
		eng, err := core.NewEngine(d.Rel, q, opts)
		if err != nil {
			return err
		}
		build := time.Since(t0).Nanoseconds()

		u := eng.Universe()
		t1 := time.Now()
		flatIDs, _ := explain.SelectTopBounds(u.ContributionBounds(), nil, budget)
		rankFlat := time.Since(t1).Nanoseconds()
		t2 := time.Now()
		sb := explain.NewSubtreeBounds(u)
		if sb == nil {
			return fmt.Errorf("taxonomy universe not prunable: NewSubtreeBounds returned nil")
		}
		walkIDs, _ := sb.SelectTop(nil, budget)
		walk := time.Since(t2).Nanoseconds()
		if len(walkIDs) != len(flatIDs) {
			return fmt.Errorf("walk kept %d candidates, flat kept %d", len(walkIDs), len(flatIDs))
		}
		if r == 0 || rankFlat < report.RankFlatNs {
			report.RankFlatNs = rankFlat
		}
		if r == 0 || walk < report.WalkNs {
			report.WalkNs = walk
			report.Visited = sb.Visited
		}

		t3 := time.Now()
		if _, err := eng.Explain(); err != nil {
			return err
		}
		ns := time.Since(t3).Nanoseconds()
		if r == 0 || build < report.BuildNs {
			report.BuildNs = build
		}
		if r == 0 || ns < report.ExactExplainNs {
			report.ExactExplainNs = ns
		}
		exactEng = eng
	}
	report.Candidates = exactEng.Universe().NumCandidates()
	report.Eligible = exactEng.FilteredCount()
	if report.WalkNs > 0 {
		report.WalkSpeedup = float64(report.RankFlatNs) / float64(report.WalkNs)
	}
	if report.HierExplainNs > 0 {
		report.Speedup = float64(report.ExactExplainNs) / float64(report.HierExplainNs)
	}

	// Measure the true attribution error against the exact optimum on the
	// approximate run's own segments; it must stay within the reported
	// per-segment bound.
	mIdx := len(exactEng.Explainer().TopM(0, 1).Best) - 1
	for _, seg := range hierRes.Segments {
		ge := exactEng.Explainer().TopM(seg.Start, seg.End).Best[mIdx]
		var ga float64
		for _, e := range seg.Top {
			ga += e.Gamma
		}
		if ge <= 0 {
			continue
		}
		actual := (ge - ga) / ge
		if actual < 0 {
			actual = 0
		}
		if actual > report.MaxActualErr {
			report.MaxActualErr = actual
		}
		if actual > seg.ErrBound+1e-9 {
			return fmt.Errorf("segment [%d,%d]: measured error %.6f exceeds reported bound %.6f",
				seg.Start, seg.End, actual, seg.ErrBound)
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: hierarchy %d cands (%d eligible, %d used, %d walked): exact %.0fms vs pruned %.0fms (%.1fx), walk %.1fx, bound %.4f, measured %.4f\n",
		report.Candidates, report.Eligible, report.CandidatesUsed, report.Visited,
		float64(report.ExactExplainNs)/1e6, float64(report.HierExplainNs)/1e6,
		report.Speedup, report.WalkSpeedup, report.MaxErrBound, report.MaxActualErr)
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", out)
	return nil
}
