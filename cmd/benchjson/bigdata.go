package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/synth"
)

// BigdataReport is the BENCH_bigdata.json document: proof that a dataset
// several times larger than the engine-pool memory budget serves explain
// traffic with bounded latency and zero shedding, because the candidate
// arena is read off a memory-mapped snapshot instead of the heap.
type BigdataReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	UnixTime    int64  `json:"unix_time"`
	Scenario    string `json:"scenario"`
	// Dataset shape: the scaled high-cardinality scenario.
	Scale      int `json:"scale"`
	Users      int `json:"users"`
	Regions    int `json:"regions"`
	N          int `json:"n"`
	Rows       int `json:"rows"`
	Candidates int `json:"candidates"`
	// The beyond-RAM contract: DatasetBytes is what the universe costs
	// fully heap-resident (measured on the built universe before the
	// snapshot exists); BudgetRatio = DatasetBytes / MemBudgetBytes must
	// clear the gate's floor for the run to prove anything.
	DatasetBytes   int64   `json:"dataset_bytes"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	MemBudgetBytes int64   `json:"mem_budget_bytes"`
	BudgetRatio    float64 `json:"dataset_over_budget_ratio"`
	// Arena placement after the run, from the registry gauges: resident
	// bytes are charged against the budget, mapped bytes are
	// kernel-evictable snapshot pages. MmapRestores counts engine builds
	// that served their arena off a mapping.
	ArenaMapped   bool  `json:"arena_mapped"`
	MappedBytes   int64 `json:"mapped_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	MmapRestores  int64 `json:"mmap_restores"`
	// Serving outcome. Every request keys a cold engine (distinct
	// epsilon), so the latencies are the conservative cold path: snapshot
	// restore + approximate explain per request.
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed429     int     `json:"shed_429"`
	Shed503     int     `json:"shed_503"`
	OtherErrors int     `json:"other_errors"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	// ServingPeakHeapBytes is the highest HeapAlloc sampled during the
	// request loop; staying under MappedBytes is the zero-OOM evidence —
	// the arena never migrated onto the heap.
	ServingPeakHeapBytes int64 `json:"serving_peak_heap_bytes"`
}

// bigdataStage builds the scaled scenario, stages it in an on-disk
// catalog, and writes its arena-form snapshot. It runs in its own frame
// so the heap-resident universe (the very thing the budget cannot hold)
// is collectable before the serving loop starts.
func bigdataStage(dir string, scale int, report *BigdataReport) error {
	p := synth.ScaleHighCard(synth.HighCardParams{Seed: 42}, scale)
	d, err := synth.HighCardinality(p)
	if err != nil {
		return err
	}
	report.Scenario = fmt.Sprintf("synth.HighCardinality seed=%d scaled ×%d: %d users × %d regions", p.Seed, scale, p.Users, p.Regions)
	report.Users = p.Users
	report.Regions = p.Regions
	report.N = p.N
	report.Rows = d.Rel.NumRows()

	cat, err := catalog.Open(dir)
	if err != nil {
		return err
	}
	m := catalog.Manifest{
		Name:       "bigdata",
		TimeCol:    "T",
		DimCols:    []string{"user", "region"},
		MeasureCol: "events",
		Agg:        "SUM",
		ExplainBy:  []string{"user", "region"},
		MaxOrder:   2,
		Approx:     &catalog.ApproxDefaults{MaxCandidates: 4096, Epsilon: 0.05},
	}
	var csvBuf bytes.Buffer
	if err := relation.WriteCSV(&csvBuf, d.Rel); err != nil {
		return err
	}
	if _, err := cat.Create(m, bytes.NewReader(csvBuf.Bytes())); err != nil {
		return err
	}
	fp, err := cat.DataFingerprint("bigdata")
	if err != nil {
		return err
	}
	rel, err := cat.LoadRelation("bigdata")
	if err != nil {
		return err
	}
	u, err := explain.NewUniverse(rel, explain.Config{
		Measure: "events", Agg: relation.Sum,
		ExplainBy: []string{"user", "region"}, MaxOrder: 2,
	})
	if err != nil {
		return err
	}
	report.Candidates = u.NumCandidates()
	report.DatasetBytes = u.ApproxBytes()
	if !u.ArenaSnapshotRaw() {
		return fmt.Errorf("universe (%d bytes) below the arena snapshot threshold — scale the dataset up", report.DatasetBytes)
	}
	if err := cat.SaveSnapshot("bigdata", rel, u, fp); err != nil {
		return err
	}
	if fi, err := os.Stat(filepath.Join(cat.Dir(), "bigdata", "snapshot.bin")); err == nil {
		report.SnapshotBytes = fi.Size()
	}

	// Sanity-load once so a platform that cannot map fails loud here, not
	// as a gauge mystery after the run.
	_, u2, err := cat.LoadSnapshot("bigdata")
	if err != nil {
		return err
	}
	report.ArenaMapped = u2.ArenaMapped()
	return nil
}

// runBigdata stages a high-cardinality dataset scaled past the given
// memory budget, serves a cold approximate-explain workload against it
// through the full HTTP stack, and writes the beyond-RAM serving report.
func runBigdata(out string, scale, budgetMB, requests int) error {
	if scale < 1 {
		scale = 1
	}
	if requests < 1 {
		requests = 1
	}
	dir, err := os.MkdirTemp("", "tsx-bench-bigdata-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	report := BigdataReport{
		GeneratedBy:    "cmd/benchjson -mode bigdata",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		UnixTime:       time.Now().Unix(),
		Scale:          scale,
		MemBudgetBytes: int64(budgetMB) << 20,
		Requests:       requests,
	}
	if err := bigdataStage(dir, scale, &report); err != nil {
		return err
	}
	if report.MemBudgetBytes > 0 {
		report.BudgetRatio = float64(report.DatasetBytes) / float64(report.MemBudgetBytes)
	}
	// Release the build-phase universe before serving begins, so the peak
	// heap below measures the serving path, not leftover staging garbage.
	runtime.GC()

	srv, err := server.Open(server.Config{
		Shards:            1,
		WorkersPerShard:   2,
		QueueDepth:        64,
		DataDir:           dir,
		MemoryBudgetBytes: report.MemBudgetBytes,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	// Every request asks for a distinct epsilon, which keys a distinct
	// pooled engine: each one is a cold snapshot restore (arena off the
	// mapping) plus an approximate explain, with the previous engines
	// LRU-evicted to hold the budget. This is the worst case for a
	// beyond-RAM dataset — no result cache, no warm engine — so the
	// percentiles below bound what any request mix can see.
	latMs := make([]float64, 0, requests)
	var ms runtime.MemStats
	for i := 0; i < requests; i++ {
		eps := 0.01 + 0.0001*float64(i)
		url := fmt.Sprintf("/api/explain?dataset=bigdata&k=%d&mode=approx&epsilon=%s",
			2+i%6, strconv.FormatFloat(eps, 'g', -1, 64))
		req := httptest.NewRequest(http.MethodGet, url, nil)
		rec := httptest.NewRecorder()
		t0 := time.Now()
		srv.ServeHTTP(rec, req)
		lat := float64(time.Since(t0).Nanoseconds()) / 1e6
		switch rec.Code {
		case http.StatusOK:
			report.OK++
			latMs = append(latMs, lat)
		case http.StatusTooManyRequests:
			report.Shed429++
		case http.StatusServiceUnavailable:
			report.Shed503++
		default:
			report.OtherErrors++
			if report.OtherErrors == 1 {
				fmt.Fprintf(os.Stderr, "benchjson: request %d: status %d: %s\n", i, rec.Code, rec.Body.String())
			}
		}
		runtime.ReadMemStats(&ms)
		if h := int64(ms.HeapAlloc); h > report.ServingPeakHeapBytes {
			report.ServingPeakHeapBytes = h
		}
	}
	sort.Float64s(latMs)
	pct := func(q float64) float64 {
		if len(latMs) == 0 {
			return 0
		}
		return latMs[int(q*float64(len(latMs)-1))]
	}
	report.P50Ms = pct(0.50)
	report.P95Ms = pct(0.95)
	report.P99Ms = pct(0.99)
	report.MaxMs = pct(1)

	// The resident/mapped split comes from the same registry gauges an
	// operator would scrape, so the report proves the accounting the
	// dashboards rely on, not a parallel bookkeeping path.
	mrec := httptest.NewRecorder()
	srv.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	report.ResidentBytes = promSum(mrec.Body.String(), "tsexplain_engine_pool_bytes{")
	report.MappedBytes = promSum(mrec.Body.String(), "tsexplain_engine_pool_mapped_bytes{")
	report.MmapRestores = promSum(mrec.Body.String(), `tsexplain_snapshot_restores_total{kind="engine_mmap"}`)

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: bigdata %d rows, %d cands, %.1f MB dataset vs %d MB budget (%.1fx): %d/%d ok, p95 %.0fms, mapped %.1f MB, resident %.1f MB, peak heap %.1f MB\n",
		report.Rows, report.Candidates, float64(report.DatasetBytes)/(1<<20), budgetMB, report.BudgetRatio,
		report.OK, report.Requests, report.P95Ms,
		float64(report.MappedBytes)/(1<<20), float64(report.ResidentBytes)/(1<<20),
		float64(report.ServingPeakHeapBytes)/(1<<20))
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", out)
	return nil
}

// promSum sums the values of every Prometheus text-format sample whose
// name (and label block, as far as given) starts with prefix.
func promSum(metrics, prefix string) int64 {
	var sum int64
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		sum += int64(v)
	}
	return sum
}
