// Command loadgen replays a mixed TSExplain workload — cold and warm
// explains across datasets and K values (exact and mode=approx with
// varied epsilon), progressive NDJSON explain streams, SVG renders, OLAP
// slices, two-point diffs, streaming replays, and catalog NDJSON appends —
// against the serving layer at a fixed client concurrency, and writes
// BENCH_server.json with per-endpoint latency quantiles (p50/p95/p99),
// throughput, status-code counts, per-class degraded-answer counts (the
// shed-vs-degrade report: how much overload was absorbed as bounded
// coarse answers instead of 429/503s), and the server's own
// shed/degraded/eviction counters scraped from /metrics.
//
// With -addr it targets a running server; without it, it starts an
// in-process server (configurable shards/workers/queue/budget) so one
// command produces a reproducible benchmark. The in-process server runs
// with a temp catalog data dir, and the bootstrap uploads a synthetic
// dataset ("loadgen-synth") so the admin path — upload, append through
// the streaming ingestion engine, snapshot refresh — is exercised under
// the same load as the read path (mix class "append"):
//
//	go run ./cmd/loadgen -clients 256 -duration 15s
//	go run ./cmd/loadgen -mix 'explain=8,svg=1,slice=3,diff=2,stream=1,append=2'
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -clients 64
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/synth"
)

func main() {
	addr := flag.String("addr", "", "target server base URL; empty starts an in-process server")
	clients := flag.Int("clients", 256, "concurrent client goroutines")
	duration := flag.Duration("duration", 15*time.Second, "how long to measure (after warmup)")
	warmup := flag.Duration("warmup", 3*time.Second, "unmeasured lead-in at full load: engines build, caches fill, and only steady-state requests are recorded")
	dsets := flag.String("datasets", "liquor,covid,stream", "comma-separated dataset mix")
	mix := flag.String("mix", "explain=8,svg=1,slice=3,diff=2,stream=1,append=1,approx=2,progressive=1", "weighted request mix")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	out := flag.String("o", "BENCH_server.json", "output file ('-' for stdout)")
	// In-process server knobs (ignored with -addr).
	shards := flag.Int("shards", 4, "in-process server: registry shards")
	workers := flag.Int("workers", 0, "in-process server: workers per shard (0: auto)")
	queue := flag.Int("queue", 16, "in-process server: queue depth per shard (-1: none)")
	timeout := flag.Duration("timeout", 10*time.Second, "in-process server: per-request deadline")
	budgetMB := flag.Int64("mem-budget-mb", 256, "in-process server: engine memory budget")
	flag.Parse()

	cfg := runConfig{
		clients:  *clients,
		duration: *duration,
		warmup:   *warmup,
		datasets: strings.Split(*dsets, ","),
		seed:     *seed,
	}
	var err error
	if cfg.mix, err = parseMix(*mix); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	base := *addr
	var shutdown func()
	if base == "" {
		dataDir, derr := os.MkdirTemp("", "loadgen-catalog-")
		if derr != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", derr)
			os.Exit(1)
		}
		defer os.RemoveAll(dataDir)
		base, shutdown, err = startInProcess(server.Config{
			Shards:            *shards,
			WorkersPerShard:   *workers,
			QueueDepth:        *queue,
			RequestTimeout:    *timeout,
			MemoryBudgetBytes: *budgetMB << 20,
			DataDir:           dataDir,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
		cfg.server = fmt.Sprintf("in-process shards=%d workers=%d queue=%d budget=%dMiB timeout=%s",
			*shards, *workers, *queue, *budgetMB, *timeout)
	} else {
		cfg.server = "external " + base
	}

	report, err := run(base, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s (%d requests, %.1f req/s, p95 %.1f ms)\n",
		*out, report.Totals.Requests, report.Totals.RPS, report.Totals.P95Ms)
}

type runConfig struct {
	clients  int
	duration time.Duration
	// warmup is the unmeasured lead-in: the same mix at the same
	// concurrency, but samples started inside it are dropped, so the
	// report describes the steady state rather than the cold-start
	// convoy (engine builds and cache fills serializing behind the
	// admission lanes).
	warmup   time.Duration
	datasets []string
	// approxDatasets is what the approx class draws from: the regular
	// datasets plus, when the target server has a catalog, the uploaded
	// high-cardinality scenario dataset.
	approxDatasets []string
	mix            []weightedClass
	seed           int64
	server         string
}

type weightedClass struct {
	name   string
	weight int
}

func parseMix(s string) ([]weightedClass, error) {
	var out []weightedClass
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want class=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		switch kv[0] {
		case "explain", "svg", "slice", "diff", "stream", "append", "approx", "progressive":
		default:
			return nil, fmt.Errorf("unknown mix class %q", kv[0])
		}
		out = append(out, weightedClass{kv[0], w})
	}
	return out, nil
}

// startInProcess serves a fresh server.Config on a loopback listener.
func startInProcess(cfg server.Config) (base string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	handler, err := server.Open(cfg)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// The synthetic catalog dataset the append class drives. Day labels are
// zero-padded so they sort lexicographically in series order.
const (
	synthDataset = "loadgen-synth"
	synthDays    = 100
	synthMaxDay  = 9999
)

var synthStates = []string{"NY", "CA", "TX", "FL"}

func synthDayLabel(d int) string { return fmt.Sprintf("day-%04d", d) }

// synthCSV generates the synthetic dataset's seed CSV.
func synthCSV() string {
	var b strings.Builder
	b.WriteString("day,state,region,value\n")
	for d := 1; d <= synthDays; d++ {
		for i, st := range synthStates {
			region := "east"
			if i >= 2 {
				region = "south"
			}
			fmt.Fprintf(&b, "%s,%s,%s,%d\n", synthDayLabel(d), st, region, 50+(d*(i+1))%40)
		}
	}
	return b.String()
}

// uploadDataset posts one manifest+CSV pair; a false return means the
// target server has no catalog (external server without -data-dir) or
// rejected the upload.
func uploadDataset(client *http.Client, base, manifest, csv string) bool {
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	mf, _ := mw.CreateFormField("manifest")
	_, _ = mf.Write([]byte(manifest))
	cf, _ := mw.CreateFormFile("csv", "data.csv")
	_, _ = cf.Write([]byte(csv))
	mw.Close()
	req, err := http.NewRequest("POST", base+"/api/datasets", &body)
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// 201 created now, 409 already present (rerun against a persistent
	// data dir) — both mean the dataset is usable.
	return resp.StatusCode == 201 || resp.StatusCode == 409
}

// uploadSynth creates the synthetic catalog dataset the append class
// drives.
func uploadSynth(client *http.Client, base string) bool {
	return uploadDataset(client, base,
		fmt.Sprintf(`{"name":%q,"timeCol":"day","dimCols":["state","region"],"measureCol":"value","maxOrder":2}`, synthDataset),
		synthCSV())
}

// The high-cardinality catalog dataset the approx class drives: a scaled
// copy of the BENCH_approx scenario (~2.2k conjunctions — the dedicated
// 52k-conjunction gate lives in cmd/benchjson -mode approx) so
// approximate requests exercise the manifest-default and cache-key paths
// on a candidate-heavy dataset without blowing the serving benchmark's
// engine memory budget into eviction thrash.
const highcardDataset = "loadgen-highcard"

func uploadHighcard(client *http.Client, base string) bool {
	d, err := synth.HighCardinality(synth.HighCardParams{Users: 168, Regions: 12, N: 128, Seed: 7})
	if err != nil {
		return false
	}
	var csv bytes.Buffer
	if err := relation.WriteCSV(&csv, d.Rel); err != nil {
		return false
	}
	manifest := fmt.Sprintf(`{"name":%q,"timeCol":"T","dimCols":["user","region"],"measureCol":"events","maxOrder":2,"approx":{"maxCandidates":2048,"epsilon":0.05}}`, highcardDataset)
	return uploadDataset(client, base, manifest, csv.String())
}

// sample is one finished request. degraded records whether the server
// answered from the degraded overload lane (a 200 that would have been a
// 429/503 before the degrade-never-shed rework), sniffed from the body.
type sample struct {
	class    string
	code     int
	ms       float64
	degraded bool
}

func run(base string, cfg runConfig) (*Report, error) {
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.clients * 2,
			MaxIdleConnsPerHost: cfg.clients * 2,
		},
	}

	// Bootstrap: fetch each dataset's time labels (for diff endpoints)
	// outside the measured window.
	labels := make(map[string][]string)
	for _, d := range cfg.datasets {
		resp, err := client.Get(base + "/api/slice?dataset=" + d)
		if err != nil {
			return nil, fmt.Errorf("bootstrap %s: %w", d, err)
		}
		var out struct {
			Labels []string `json:"labels"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || len(out.Labels) < 4 {
			return nil, fmt.Errorf("bootstrap %s: status %d, labels %d", d, resp.StatusCode, len(out.Labels))
		}
		labels[d] = out.Labels
	}

	// The append class needs the synthetic catalog dataset; drop the
	// class when the target server has no catalog.
	hasAppend, hasApprox := false, false
	for _, c := range cfg.mix {
		if c.name == "append" && c.weight > 0 {
			hasAppend = true
		}
		if c.name == "approx" && c.weight > 0 {
			hasApprox = true
		}
	}
	if hasAppend && !uploadSynth(client, base) {
		fmt.Fprintln(os.Stderr, "loadgen: target server has no catalog; dropping the append class")
		kept := cfg.mix[:0]
		for _, c := range cfg.mix {
			if c.name != "append" {
				kept = append(kept, c)
			}
		}
		cfg.mix = kept
	}
	// The approx class additionally drives the uploaded high-cardinality
	// scenario when the target has a catalog; without one it sticks to
	// the regular dataset mix (approximate mode works on any dataset).
	cfg.approxDatasets = cfg.datasets
	if hasApprox && uploadHighcard(client, base) {
		cfg.approxDatasets = append(append([]string(nil), cfg.datasets...), highcardDataset)
	}
	// appendDay hands out monotonically increasing day labels across
	// clients; capped at synthMaxDay, after which appends revise the last
	// day (still a valid append).
	var appendDay atomic.Int64
	appendDay.Store(synthDays)

	var totalWeight int
	for _, c := range cfg.mix {
		totalWeight += c.weight
	}
	if totalWeight == 0 {
		return nil, fmt.Errorf("empty workload mix")
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.warmup+cfg.duration)
	defer cancel()
	perClient := make([][]sample, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(i)))
			for ctx.Err() == nil {
				cls := pickClass(rng, cfg.mix, totalWeight)
				var code int
				var degraded bool
				var firstMs float64
				t0 := time.Now()
				switch {
				case cls == "append":
					code = doAppend(ctx, client, base, &appendDay, rng)
				case cls == "progressive":
					code, degraded, firstMs = doProgressive(ctx, client,
						buildURL(base, cls, rng, cfg.approxDatasets, labels))
				default:
					dsets := cfg.datasets
					if cls == "approx" {
						dsets = cfg.approxDatasets
					}
					// Explain-family responses are sniffed for the degraded
					// flag so the report can split shed-vs-degrade.
					sniff := cls == "explain" || cls == "approx"
					code, degraded = doRequest(ctx, client, buildURL(base, cls, rng, dsets, labels), sniff)
				}
				lat := float64(time.Since(t0).Microseconds()) / 1000
				if firstMs > 0 {
					// A progressive stream's latency is its time-to-first-
					// round: that is the interactivity the endpoint promises,
					// while the later rounds refine at leisure (the stream is
					// still drained to completion above).
					lat = firstMs
				}
				// Warmup samples drive load but are not recorded.
				if t0.Sub(start) < cfg.warmup {
					continue
				}
				perClient[i] = append(perClient[i], sample{
					class: cls, code: code, degraded: degraded, ms: lat,
				})
			}
		}(i)
	}
	wg.Wait()
	// The measured window excludes the warmup: its samples were dropped,
	// so rates are computed over the recording span only.
	elapsed := time.Since(start) - cfg.warmup
	if elapsed <= 0 {
		elapsed = time.Since(start)
	}

	var all []sample
	for _, s := range perClient {
		all = append(all, s...)
	}
	report := buildReport(all, elapsed, cfg)
	report.Metrics = scrapeMetrics(client, base)
	return report, nil
}

func pickClass(rng *rand.Rand, mix []weightedClass, total int) string {
	n := rng.Intn(total)
	for _, c := range mix {
		if n < c.weight {
			return c.name
		}
		n -= c.weight
	}
	return mix[len(mix)-1].name
}

// ks and smooths span the warm/cold parameter space: repeated
// combinations hit the result cache, new combinations reuse pooled
// engines across K, and distinct smoothing windows force cold builds.
// epsilons drives the approx class: two targets so the mode's distinct
// cache keys are exercised too.
var (
	ks       = []int{0, 2, 3, 5, 8}
	smooths  = []int{0, 0, 0, 7}
	epsilons = []string{"0.05", "0.05", "0.1"}
)

func buildURL(base, class string, rng *rand.Rand, dsets []string, labels map[string][]string) string {
	d := dsets[rng.Intn(len(dsets))]
	switch class {
	case "explain":
		return fmt.Sprintf("%s/api/explain?dataset=%s&k=%d&smooth=%d",
			base, d, ks[rng.Intn(len(ks))], smooths[rng.Intn(len(smooths))])
	case "approx":
		return fmt.Sprintf("%s/api/explain?dataset=%s&k=%d&mode=approx&epsilon=%s",
			base, d, ks[rng.Intn(len(ks))], epsilons[rng.Intn(len(epsilons))])
	case "progressive":
		// The full refinement stream, coarse round through exact final.
		return fmt.Sprintf("%s/api/explain?dataset=%s&k=%d&progressive=1",
			base, d, ks[rng.Intn(len(ks))])
	case "svg":
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%s/svg/trendlines?dataset=%s", base, d)
		}
		return fmt.Sprintf("%s/svg/kvariance?dataset=%s", base, d)
	case "slice":
		return fmt.Sprintf("%s/api/slice?dataset=%s", base, d)
	case "diff":
		ls := labels[d]
		from, to := len(ls)/4, len(ls)*3/4
		return fmt.Sprintf("%s/api/diff?dataset=%s&from=%s&to=%s", base, d, ls[from], ls[to])
	case "stream":
		// A short replay: the tail of the stream dataset in large steps.
		return fmt.Sprintf("%s/api/stream?dataset=stream&start=110&step=5", base)
	}
	return base + "/api/datasets"
}

// doAppend posts one NDJSON delta row to the synthetic catalog dataset:
// usually the next day in sequence, so the series keeps growing through
// the streaming ingestion path (and occasionally a same-day revision).
func doAppend(ctx context.Context, client *http.Client, base string, day *atomic.Int64, rng *rand.Rand) int {
	d := day.Add(1)
	if d > synthMaxDay {
		day.Store(synthMaxDay)
		d = synthMaxDay
	}
	st := synthStates[rng.Intn(len(synthStates))]
	region := "east"
	if st == "TX" || st == "FL" {
		region = "south"
	}
	body := fmt.Sprintf(`{"time":%q,"dims":{"state":%q,"region":%q},"measure":%d}`+"\n",
		synthDayLabel(int(d)), st, region, 40+rng.Intn(60))
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/api/datasets/"+synthDataset+"/append", strings.NewReader(body))
	if err != nil {
		return 0
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// degradedMarker is what a degraded-lane explain (or progressive round)
// carries in its JSON body.
var degradedMarker = []byte(`"degraded":true`)

// doRequest returns the response status (0 on transport errors) and,
// when sniff is set, whether the body carries the degraded-answer flag.
// Bodies are drained either way so connections are reused.
func doRequest(ctx context.Context, client *http.Client, url string, sniff bool) (int, bool) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return 0, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if !sniff {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, false
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, false
	}
	return resp.StatusCode, bytes.Contains(body, degradedMarker)
}

// doProgressive drives one progressive explain stream: it reports the
// response status, whether round 1 came from the degraded lane, and the
// time-to-first-round in milliseconds (0 when no round arrived). The
// rest of the stream is drained so the server-side refinement runs to
// completion and the connection is reusable.
func doProgressive(ctx context.Context, client *http.Client, url string) (int, bool, float64) {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return 0, false, 0
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, false, 0
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	firstMs := float64(time.Since(t0).Microseconds()) / 1000
	degraded := bytes.Contains(line, degradedMarker)
	if len(line) == 0 {
		firstMs = 0
	}
	if err == nil {
		_, _ = io.Copy(io.Discard, br)
	}
	return resp.StatusCode, degraded, firstMs
}

// Report is the BENCH_server.json document.
type Report struct {
	GeneratedBy string                 `json:"generated_by"`
	GoVersion   string                 `json:"go_version"`
	GOOS        string                 `json:"goos"`
	GOARCH      string                 `json:"goarch"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	Server      string                 `json:"server"`
	Clients     int                    `json:"clients"`
	DurationS   float64                `json:"duration_s"`
	WarmupS     float64                `json:"warmup_s"`
	Datasets    []string               `json:"datasets"`
	Mix         string                 `json:"mix"`
	UnixTime    int64                  `json:"unix_time"`
	Totals      ClassStats             `json:"totals"`
	ByClass     map[string]*ClassStats `json:"by_class"`
	Metrics     map[string]float64     `json:"server_metrics,omitempty"`
}

// ClassStats aggregates one request class (or all of them). Degraded
// counts 200s served from the degraded overload lane — the
// shed-vs-degrade report reads Degraded against Codes["429"]/["503"].
type ClassStats struct {
	Requests int            `json:"requests"`
	RPS      float64        `json:"rps"`
	Codes    map[string]int `json:"codes"`
	Degraded int            `json:"degraded,omitempty"`
	MeanMs   float64        `json:"mean_ms"`
	P50Ms    float64        `json:"p50_ms"`
	P95Ms    float64        `json:"p95_ms"`
	P99Ms    float64        `json:"p99_ms"`
	MaxMs    float64        `json:"max_ms"`
}

func buildReport(all []sample, elapsed time.Duration, cfg runConfig) *Report {
	r := &Report{
		GeneratedBy: "cmd/loadgen",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Server:      cfg.server,
		Clients:     cfg.clients,
		DurationS:   elapsed.Seconds(),
		WarmupS:     cfg.warmup.Seconds(),
		Datasets:    cfg.datasets,
		UnixTime:    time.Now().Unix(),
		ByClass:     make(map[string]*ClassStats),
	}
	var mixParts []string
	for _, c := range cfg.mix {
		mixParts = append(mixParts, fmt.Sprintf("%s=%d", c.name, c.weight))
	}
	r.Mix = strings.Join(mixParts, ",")

	byClass := make(map[string][]sample)
	for _, s := range all {
		byClass[s.class] = append(byClass[s.class], s)
	}
	r.Totals = classStats(all, elapsed)
	for cls, samples := range byClass {
		st := classStats(samples, elapsed)
		r.ByClass[cls] = &st
	}
	return r
}

func classStats(samples []sample, elapsed time.Duration) ClassStats {
	st := ClassStats{Requests: len(samples), Codes: make(map[string]int)}
	if len(samples) == 0 {
		return st
	}
	ms := make([]float64, 0, len(samples))
	var sum float64
	for _, s := range samples {
		st.Codes[strconv.Itoa(s.code)]++
		if s.degraded {
			st.Degraded++
		}
		ms = append(ms, s.ms)
		sum += s.ms
	}
	sort.Float64s(ms)
	st.RPS = float64(len(samples)) / elapsed.Seconds()
	st.MeanMs = sum / float64(len(ms))
	st.P50Ms = quantile(ms, 0.50)
	st.P95Ms = quantile(ms, 0.95)
	st.P99Ms = quantile(ms, 0.99)
	st.MaxMs = ms[len(ms)-1]
	return st
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// scrapeMetrics pulls the server's own counters that matter for the
// acceptance criteria: shed totals, evictions, and pooled engine bytes.
func scrapeMetrics(client *http.Client, base string) map[string]float64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	keep := func(name string) bool {
		switch name {
		case "tsexplain_result_cache_hits_total", "tsexplain_result_cache_misses_total",
			"tsexplain_singleflight_dedup_total", "tsexplain_engine_evictions_total",
			"tsexplain_dataset_loads_total", "tsexplain_approx_requests_total",
			"tsexplain_approx_error_bound_sum", "tsexplain_approx_error_bound_count",
			"tsexplain_progressive_rounds_total":
			return true
		}
		return strings.HasPrefix(name, "tsexplain_shed_total") ||
			strings.HasPrefix(name, "tsexplain_degraded_total") ||
			strings.HasPrefix(name, "tsexplain_jobs_total") ||
			strings.HasPrefix(name, "tsexplain_engine_pool_bytes") ||
			strings.HasPrefix(name, "tsexplain_engine_pool_mapped_bytes") ||
			strings.HasPrefix(name, "tsexplain_engine_pool_engines") ||
			strings.HasPrefix(name, "tsexplain_catalog_") ||
			strings.HasPrefix(name, "tsexplain_snapshot_")
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name := fields[0]
		bare := name
		if i := strings.IndexByte(bare, '{'); i >= 0 {
			bare = bare[:i]
		}
		if !keep(bare) && !keep(name) {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		// Keep shed/degraded reasons and job events separate; sum
		// per-shard gauges into one number per metric family.
		key := bare
		for _, label := range []string{`reason="`, `event="`} {
			if i := strings.Index(name, label); i >= 0 {
				rest := name[i+len(label):]
				if j := strings.IndexByte(rest, '"'); j >= 0 {
					key = bare + "_" + rest[:j]
				}
			}
		}
		out[key] += v
	}
	return out
}
