// tsexplain-vet is the project's custom vet tool: a unitchecker binary
// carrying the internal/analysis suite, meant to be driven by the go
// command's vet machinery:
//
//	go build -o /tmp/tsexplain-vet ./cmd/tsexplain-vet
//	go vet -vettool=/tmp/tsexplain-vet ./...
//
// scripts/lint.sh runs it locally, the tsexplain-vet CI job gates it,
// and internal/analysis's self-check test asserts the repo stays clean
// under it. See ARCHITECTURE.md "Invariants & static analysis" for what
// each analyzer protects.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis"
)

func main() {
	unitchecker.Main(analysis.Suite()...)
}
