// Command benchcmp gates performance regressions in CI: it diffs a
// freshly generated benchmark JSON (cmd/benchjson output) against the
// committed baseline at the repo root and exits non-zero when a hot path
// regressed beyond the thresholds — by default >25% on latency or >2× on
// allocations per op.
//
//	go run ./cmd/benchcmp -mode engine    -baseline BENCH_engine.json    -current /tmp/engine.json
//	go run ./cmd/benchcmp -mode streaming -baseline BENCH_streaming.json -current /tmp/streaming.json
//	go run ./cmd/benchcmp -mode catalog   -baseline BENCH_catalog.json   -current /tmp/catalog.json
//	go run ./cmd/benchcmp -mode approx    -baseline BENCH_approx.json    -current /tmp/approx.json
//	go run ./cmd/benchcmp -mode hierarchy -baseline BENCH_hierarchy.json -current /tmp/hierarchy.json
//	go run ./cmd/benchcmp -mode server    -baseline BENCH_server.json    -current /tmp/server.json -max-p99-ms 500
//	go run ./cmd/benchcmp -mode bigdata   -current BENCH_bigdata.json -max-p95-ms 3000 -min-budget-ratio 4
//
// Engine mode compares ns/op and allocs/op per benchmark (taking the
// minimum across -count repetitions, so noisy runs only help); streaming
// mode compares the append path's total and later-half latency plus the
// append-vs-rebuild speedup; catalog mode compares per-dataset snapshot
// restore latency and the restore-vs-rebuild speedup (warm restarts must
// stay warm), plus — with -max-snapshot-csv-ratio — the absolute on-disk
// footprint contract (snapshot ≤ that fraction of the source CSV); engine
// mode additionally accepts -max-universe-build-ns, an absolute ns/op
// ceiling on the liquor universe build; approx mode gates the
// high-cardinality approximate path —
// the approx-vs-exact speedup must hold its floor (at least 5x, and not
// collapse relative to the baseline) and the reported error bound must
// stay within the requested epsilon and above the measured error;
// hierarchy mode gates the taxonomy subtree-pruned path the same way with
// a 3x floor, plus the walk must visit strictly fewer candidates than the
// universe holds (the pruning must actually engage); server
// mode gates the serving-layer workload report (cmd/loadgen output) —
// total p99 within the latency ratio of its baseline, and the
// degrade-never-shed invariant on the approx-eligible classes (explain,
// approx, progressive): zero 429s and zero 503s, because overload is
// required to degrade those answers, not shed them, plus an optional
// absolute -max-p99-ms ceiling on each of those classes' p99 (for
// progressive the report's latency is time-to-first-round); bigdata mode
// gates the beyond-RAM serving report (cmd/benchjson -mode bigdata
// output) with purely absolute checks — the candidate arena stayed
// memory-mapped, mapped bytes exceed resident bytes, resident bytes
// respect the budget, zero requests shed or failed, the serving-time
// peak heap stayed under the mapped bytes, plus optional -max-p95-ms and
// -min-budget-ratio floors.
//
// Benchmark-set mismatches fail in BOTH directions: a benchmark named by
// the baseline but missing from the fresh run means coverage was silently
// dropped; one present in the fresh run but absent from the baseline
// means a new benchmark is running ungated and the committed baseline
// must be regenerated — either way the gate would otherwise rot.
//
// To intentionally re-baseline after an accepted perf change, regenerate
// the repo-root JSONs with scripts/bench.sh and commit them alongside the
// change that explains the shift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// Benchmark mirrors cmd/benchjson's per-benchmark record.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report mirrors the BENCH_engine.json document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// StreamTotals and StreamReport mirror BENCH_streaming.json.
type StreamTotals struct {
	AppendNs int64   `json:"append_ns"`
	Speedup  float64 `json:"speedup"`
}

type StreamReport struct {
	Totals    StreamTotals `json:"totals"`
	LaterHalf StreamTotals `json:"later_half"`
}

func main() {
	mode := flag.String("mode", "engine", "engine (micro benchmarks), streaming (append-path replay), catalog (snapshot warm-restart), approx (high-cardinality approximate path), hierarchy (taxonomy subtree-pruned path), server (serving-layer load report), or bigdata (beyond-RAM mapped-arena serving report)")
	baseline := flag.String("baseline", "", "committed baseline JSON (default depends on mode)")
	current := flag.String("current", "", "freshly generated JSON to check")
	maxLatency := flag.Float64("max-latency-ratio", 1.25, "fail when current/baseline latency exceeds this")
	maxAllocs := flag.Float64("max-allocs-ratio", 2.0, "fail when current/baseline allocs/op exceeds this")
	maxSnapshotCSVRatio := flag.Float64("max-snapshot-csv-ratio", 0, "catalog mode: fail when a dataset's snapshot_bytes/csv_bytes exceeds this (0 disables; the footprint contract is 0.5)")
	maxUniverseBuildNs := flag.Float64("max-universe-build-ns", 0, "engine mode: absolute ns/op ceiling for PrecomputeLiquor (0 disables; machine-dependent, so CI sets it with headroom)")
	maxP99Ms := flag.Float64("max-p99-ms", 0, "server mode: absolute p99 ceiling in ms for the approx-eligible classes (0 disables; the committed-baseline contract is 500)")
	maxP95Ms := flag.Float64("max-p95-ms", 0, "bigdata mode: absolute p95 ceiling in ms for cold beyond-RAM explains (0 disables)")
	minBudgetRatio := flag.Float64("min-budget-ratio", 0, "bigdata mode: fail when dataset_over_budget_ratio is below this (0 disables; the committed-baseline contract is 4)")
	flag.Parse()

	if *baseline == "" {
		switch *mode {
		case "streaming":
			*baseline = "BENCH_streaming.json"
		case "catalog":
			*baseline = "BENCH_catalog.json"
		case "approx":
			*baseline = "BENCH_approx.json"
		case "hierarchy":
			*baseline = "BENCH_hierarchy.json"
		case "server":
			*baseline = "BENCH_server.json"
		case "bigdata":
			*baseline = "BENCH_bigdata.json" // unused: the bigdata gate is absolute
		default:
			*baseline = "BENCH_engine.json"
		}
	}
	if *current == "" {
		fail("missing -current")
	}

	var violations []string
	var err error
	switch *mode {
	case "engine":
		violations, err = compareEngine(*baseline, *current, *maxLatency, *maxAllocs, *maxUniverseBuildNs)
	case "streaming":
		violations, err = compareStreaming(*baseline, *current, *maxLatency)
	case "catalog":
		violations, err = compareCatalog(*baseline, *current, *maxLatency, *maxSnapshotCSVRatio)
	case "approx":
		violations, err = compareApprox(*baseline, *current, *maxLatency)
	case "hierarchy":
		violations, err = compareHierarchy(*baseline, *current, *maxLatency)
	case "server":
		violations, err = compareServer(*baseline, *current, *maxLatency, *maxP99Ms)
	case "bigdata":
		violations, err = compareBigdata(*current, *maxP95Ms, *minBudgetRatio)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fail("%v", err)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d regression(s) beyond thresholds (latency ×%.2f, allocs ×%.2f):\n",
			len(violations), *maxLatency, *maxAllocs)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		fmt.Fprintln(os.Stderr, "benchcmp: to intentionally re-baseline, regenerate with scripts/bench.sh and commit the new JSON")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchcmp: %s within thresholds of %s\n", *current, *baseline)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

// minByName folds repeated benchmark lines (-count > 1) to their best
// run: the minimum is the least noisy estimate of the true cost.
func minByName(benches []Benchmark) map[string]Benchmark {
	out := make(map[string]Benchmark)
	for _, b := range benches {
		prev, ok := out[b.Name]
		if !ok {
			out[b.Name] = b
			continue
		}
		if b.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = b.NsPerOp
		}
		if b.AllocsPerOp < prev.AllocsPerOp {
			prev.AllocsPerOp = b.AllocsPerOp
		}
		out[b.Name] = prev
	}
	return out
}

// universeBuildBench is the benchmark the absolute build-time ceiling
// applies to: the liquor candidate-universe precompute, the hot path the
// columnar kernel exists for.
const universeBuildBench = "PrecomputeLiquor"

func compareEngine(baselinePath, currentPath string, maxLatency, maxAllocs, maxUniverseBuildNs float64) ([]string, error) {
	var base, cur Report
	if err := load(baselinePath, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := load(currentPath, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	baseBy := minByName(base.Benchmarks)
	curBy := minByName(cur.Benchmarks)

	var violations []string
	for name, b := range baseBy {
		c, ok := curBy[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		if b.NsPerOp > 0 {
			if ratio := c.NsPerOp / b.NsPerOp; ratio > maxLatency {
				violations = append(violations, fmt.Sprintf(
					"%s: latency %.0f → %.0f ns/op (×%.2f)", name, b.NsPerOp, c.NsPerOp, ratio))
			}
		}
		if b.AllocsPerOp > 0 {
			if ratio := float64(c.AllocsPerOp) / float64(b.AllocsPerOp); ratio > maxAllocs {
				violations = append(violations, fmt.Sprintf(
					"%s: allocs %d → %d /op (×%.2f)", name, b.AllocsPerOp, c.AllocsPerOp, ratio))
			}
		}
	}
	// The other direction: a benchmark running fresh but absent from the
	// committed baseline is ungated — it would silently rot until someone
	// noticed. Force the re-baseline instead.
	for name := range curBy {
		if _, ok := baseBy[name]; !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: missing from baseline %s (new benchmark — regenerate and commit the baseline)", name, baselinePath))
		}
	}
	// Absolute universe-build ceiling: ratio gates only catch drift
	// against the last committed baseline; this pins the hard floor the
	// kernel speedups bought so they can never be re-spent one accepted
	// re-baseline at a time.
	if maxUniverseBuildNs > 0 {
		c, ok := curBy[universeBuildBench]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: missing from current run (universe-build ceiling unverifiable)", universeBuildBench))
		} else if c.NsPerOp > maxUniverseBuildNs {
			violations = append(violations, fmt.Sprintf(
				"%s: universe build %.0f ns/op exceeds absolute ceiling %.0f ns",
				universeBuildBench, c.NsPerOp, maxUniverseBuildNs))
		}
	}
	return violations, nil
}

// compareStreaming gates the O(delta) append path: total and later-half
// append latency must stay within the latency threshold, and the
// append-vs-rebuild speedup must not collapse (losing more than the
// latency threshold's worth of its baseline value indicates the append
// path degraded toward the rebuild path).
func compareStreaming(baselinePath, currentPath string, maxLatency float64) ([]string, error) {
	var base, cur StreamReport
	if err := load(baselinePath, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := load(currentPath, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	var violations []string
	check := func(name string, b, c int64) {
		if b <= 0 {
			return
		}
		if ratio := float64(c) / float64(b); ratio > maxLatency {
			violations = append(violations, fmt.Sprintf(
				"%s: append latency %d → %d ns (×%.2f)", name, b, c, ratio))
		}
	}
	check("totals", base.Totals.AppendNs, cur.Totals.AppendNs)
	check("later_half", base.LaterHalf.AppendNs, cur.LaterHalf.AppendNs)
	if base.LaterHalf.Speedup > 0 && !math.IsInf(base.LaterHalf.Speedup, 0) {
		floor := base.LaterHalf.Speedup / maxLatency
		if cur.LaterHalf.Speedup < floor {
			violations = append(violations, fmt.Sprintf(
				"later_half: append-vs-rebuild speedup %.1fx → %.1fx (floor %.1fx)",
				base.LaterHalf.Speedup, cur.LaterHalf.Speedup, floor))
		}
	}
	return violations, nil
}

// CatalogDataset and CatalogReport mirror BENCH_catalog.json.
type CatalogDataset struct {
	Name              string  `json:"name"`
	CSVBytes          int64   `json:"csv_bytes"`
	SnapshotBytes     int64   `json:"snapshot_bytes"`
	ColdBuildNs       int64   `json:"cold_build_ns"`
	SnapshotRestoreNs int64   `json:"snapshot_restore_ns"`
	Speedup           float64 `json:"speedup"`
}

type CatalogReport struct {
	Datasets []CatalogDataset `json:"datasets"`
}

// compareCatalog gates the warm-restart path per dataset: snapshot
// restore latency must stay within the latency threshold of its
// baseline, and the restore-vs-rebuild speedup must not collapse (a
// speedup sliding toward 1x means restarts stopped being warm). A
// dataset present in the baseline but missing from the current run fails
// the gate. With maxSnapshotCSVRatio > 0 each dataset's snapshot must
// also stay at or under that fraction of its source CSV — an absolute
// footprint contract, deliberately not baseline-relative, so codec
// regressions cannot be re-baselined into acceptance.
func compareCatalog(baselinePath, currentPath string, maxLatency, maxSnapshotCSVRatio float64) ([]string, error) {
	var base, cur CatalogReport
	if err := load(baselinePath, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := load(currentPath, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	curBy := make(map[string]CatalogDataset, len(cur.Datasets))
	for _, d := range cur.Datasets {
		curBy[d.Name] = d
	}
	baseBy := make(map[string]bool, len(base.Datasets))
	var violations []string
	for _, b := range base.Datasets {
		baseBy[b.Name] = true
		c, ok := curBy[b.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		if b.SnapshotRestoreNs > 0 {
			if ratio := float64(c.SnapshotRestoreNs) / float64(b.SnapshotRestoreNs); ratio > maxLatency {
				violations = append(violations, fmt.Sprintf(
					"%s: snapshot restore %d → %d ns (×%.2f)", b.Name, b.SnapshotRestoreNs, c.SnapshotRestoreNs, ratio))
			}
		}
		if b.Speedup > 0 && !math.IsInf(b.Speedup, 0) {
			floor := b.Speedup / maxLatency
			if floor < 1 {
				floor = 1 // a warm restart must at least beat the rebuild
			}
			if c.Speedup < floor {
				violations = append(violations, fmt.Sprintf(
					"%s: restore-vs-rebuild speedup %.1fx → %.1fx (floor %.1fx)", b.Name, b.Speedup, c.Speedup, floor))
			}
		}
	}
	for _, c := range cur.Datasets {
		if !baseBy[c.Name] {
			violations = append(violations, fmt.Sprintf(
				"%s: missing from baseline %s (new dataset — regenerate and commit the baseline)", c.Name, baselinePath))
		}
		if maxSnapshotCSVRatio > 0 && c.CSVBytes > 0 {
			if ratio := float64(c.SnapshotBytes) / float64(c.CSVBytes); ratio > maxSnapshotCSVRatio {
				violations = append(violations, fmt.Sprintf(
					"%s: snapshot %d bytes is %.3f× the %d-byte CSV (ceiling %.2f×)",
					c.Name, c.SnapshotBytes, ratio, c.CSVBytes, maxSnapshotCSVRatio))
			}
		}
	}
	return violations, nil
}

// ServerClassStats and ServerReport mirror the fields of
// BENCH_server.json (cmd/loadgen output) the gate reads.
type ServerClassStats struct {
	Requests int            `json:"requests"`
	Codes    map[string]int `json:"codes"`
	Degraded int            `json:"degraded"`
	P99Ms    float64        `json:"p99_ms"`
}

type ServerReport struct {
	Totals  ServerClassStats             `json:"totals"`
	ByClass map[string]*ServerClassStats `json:"by_class"`
}

// degradableClasses are the workload classes the degrade-never-shed
// contract covers: approx-eligible explains in all three shapes. The
// other classes (vanilla-free but non-explain, plus admin writes) may
// legitimately shed under overload.
var degradableClasses = []string{"explain", "approx", "progressive"}

// compareServer gates the serving-layer workload: the total p99 must
// stay within the latency ratio of its baseline, every baseline class
// must still be exercised, and — the invariants this mode exists for —
// the approx-eligible classes must show zero 429/503 (under overload
// those requests degrade to bounded coarse answers, they do not shed)
// and, when the absolute ceiling is set, each approx-eligible class's
// p99 must stay under it. The ceiling deliberately covers only the
// degradable classes: they are the traffic the degrade path promises a
// prompt bounded answer, while the non-degradable classes (diff, slice,
// stream, admin writes) are allowed to queue out their deadline under
// saturation. Progressive latency in the report is time-to-first-round.
func compareServer(baselinePath, currentPath string, maxLatency, maxP99Ms float64) ([]string, error) {
	var base, cur ServerReport
	if err := load(baselinePath, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := load(currentPath, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	var violations []string
	if base.Totals.P99Ms > 0 {
		if ratio := cur.Totals.P99Ms / base.Totals.P99Ms; ratio > maxLatency {
			violations = append(violations, fmt.Sprintf(
				"totals: p99 %.1f → %.1f ms (×%.2f)", base.Totals.P99Ms, cur.Totals.P99Ms, ratio))
		}
	}
	for name := range base.ByClass {
		if c, ok := cur.ByClass[name]; !ok || c.Requests == 0 {
			violations = append(violations, fmt.Sprintf(
				"%s: class missing from current run (coverage silently dropped)", name))
		}
	}
	for _, name := range degradableClasses {
		c, ok := cur.ByClass[name]
		if !ok {
			continue
		}
		for _, code := range []string{"429", "503"} {
			if n := c.Codes[code]; n > 0 {
				violations = append(violations, fmt.Sprintf(
					"%s: %d×%s — approx-eligible traffic must degrade under overload, never shed", name, n, code))
			}
		}
		if maxP99Ms > 0 && c.P99Ms > maxP99Ms {
			violations = append(violations, fmt.Sprintf(
				"%s: p99 %.1f ms exceeds the %.0f ms ceiling for approx-eligible traffic", name, c.P99Ms, maxP99Ms))
		}
	}
	return violations, nil
}

// ApproxReport mirrors the fields of BENCH_approx.json the gate reads.
type ApproxReport struct {
	ExactExplainNs  int64   `json:"exact_explain_ns"`
	ApproxExplainNs int64   `json:"approx_explain_ns"`
	Speedup         float64 `json:"speedup"`
	Epsilon         float64 `json:"epsilon"`
	MaxErrBound     float64 `json:"max_err_bound"`
	MaxActualErr    float64 `json:"max_actual_err"`
}

// approxSpeedupFloor is the hard acceptance floor for the approximate
// path on the high-cardinality scenario, independent of the baseline.
const approxSpeedupFloor = 5.0

// compareApprox gates the anytime approximate path: its latency must not
// regress, its approx-vs-exact speedup must hold both the hard 5x floor
// and its baseline (within the latency tolerance), and its error
// accounting must stay sound — the reported bound within the requested
// epsilon, the measured error within the reported bound.
func compareApprox(baselinePath, currentPath string, maxLatency float64) ([]string, error) {
	var base, cur ApproxReport
	if err := load(baselinePath, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := load(currentPath, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	var violations []string
	if base.ApproxExplainNs > 0 {
		if ratio := float64(cur.ApproxExplainNs) / float64(base.ApproxExplainNs); ratio > maxLatency {
			violations = append(violations, fmt.Sprintf(
				"approx explain latency %d → %d ns (×%.2f)", base.ApproxExplainNs, cur.ApproxExplainNs, ratio))
		}
	}
	floor := approxSpeedupFloor
	if base.Speedup/maxLatency > floor {
		floor = base.Speedup / maxLatency
	}
	if cur.Speedup < floor {
		violations = append(violations, fmt.Sprintf(
			"approx-vs-exact speedup %.1fx → %.1fx (floor %.1fx)", base.Speedup, cur.Speedup, floor))
	}
	if cur.MaxErrBound > cur.Epsilon {
		violations = append(violations, fmt.Sprintf(
			"reported error bound %.4f exceeds requested epsilon %.4f", cur.MaxErrBound, cur.Epsilon))
	}
	if cur.MaxActualErr > cur.MaxErrBound+1e-9 {
		violations = append(violations, fmt.Sprintf(
			"measured error %.6f exceeds reported bound %.6f (the bound is unsound)", cur.MaxActualErr, cur.MaxErrBound))
	}
	return violations, nil
}

// BigdataReport mirrors the fields of BENCH_bigdata.json the gate reads.
type BigdataReport struct {
	DatasetBytes         int64   `json:"dataset_bytes"`
	MemBudgetBytes       int64   `json:"mem_budget_bytes"`
	BudgetRatio          float64 `json:"dataset_over_budget_ratio"`
	ArenaMapped          bool    `json:"arena_mapped"`
	MappedBytes          int64   `json:"mapped_bytes"`
	ResidentBytes        int64   `json:"resident_bytes"`
	MmapRestores         int64   `json:"mmap_restores"`
	Requests             int     `json:"requests"`
	OK                   int     `json:"ok"`
	Shed429              int     `json:"shed_429"`
	Shed503              int     `json:"shed_503"`
	OtherErrors          int     `json:"other_errors"`
	P95Ms                float64 `json:"p95_ms"`
	ServingPeakHeapBytes int64   `json:"serving_peak_heap_bytes"`
}

// compareBigdata gates the beyond-RAM serving contract. Unlike the other
// modes it takes no baseline — every check is absolute, because the
// invariants (arena stays mapped, resident stays under budget, nothing
// sheds) are structural, not drift-relative:
//
//   - the candidate arena must actually be mapped (arena_mapped, with
//     mmap_restores > 0 proving engine builds took that path),
//   - mapped bytes must exceed resident bytes — the split this gate
//     exists for; equality means the arena quietly moved onto the heap,
//   - resident bytes must respect the memory budget,
//   - every request must succeed: cold approximate explains are
//     degradable traffic, so overload must degrade them, never shed,
//   - the serving-time peak heap must stay under the mapped bytes (the
//     zero-OOM evidence: a heap-resident arena would dwarf it),
//   - with -max-p95-ms, the cold restore+explain p95 holds the ceiling,
//   - with -min-budget-ratio, the dataset must genuinely outgrow the
//     budget — a shrunken dataset would pass everything else trivially.
func compareBigdata(currentPath string, maxP95Ms, minBudgetRatio float64) ([]string, error) {
	var cur BigdataReport
	if err := load(currentPath, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	var violations []string
	if !cur.ArenaMapped {
		violations = append(violations, "candidate arena was not memory-mapped (arena_mapped=false)")
	}
	if cur.MmapRestores == 0 {
		violations = append(violations, "no engine restore served its arena off a mapped snapshot (mmap_restores=0)")
	}
	if cur.MappedBytes <= cur.ResidentBytes {
		violations = append(violations, fmt.Sprintf(
			"mapped bytes %d not above resident bytes %d — the arena is heap-resident", cur.MappedBytes, cur.ResidentBytes))
	}
	if cur.MemBudgetBytes > 0 && cur.ResidentBytes > cur.MemBudgetBytes {
		violations = append(violations, fmt.Sprintf(
			"resident bytes %d exceed the %d-byte memory budget", cur.ResidentBytes, cur.MemBudgetBytes))
	}
	if shed := cur.Shed429 + cur.Shed503; shed > 0 {
		violations = append(violations, fmt.Sprintf(
			"%d requests shed (%d×429, %d×503) — approx-eligible traffic must degrade, never shed", shed, cur.Shed429, cur.Shed503))
	}
	if cur.OtherErrors > 0 || cur.OK != cur.Requests-cur.Shed429-cur.Shed503 {
		violations = append(violations, fmt.Sprintf(
			"%d/%d requests failed outright", cur.Requests-cur.OK-cur.Shed429-cur.Shed503, cur.Requests))
	}
	if cur.MappedBytes > 0 && cur.ServingPeakHeapBytes >= cur.MappedBytes {
		violations = append(violations, fmt.Sprintf(
			"serving peak heap %d bytes reached the %d mapped bytes — the arena migrated onto the heap", cur.ServingPeakHeapBytes, cur.MappedBytes))
	}
	if maxP95Ms > 0 && cur.P95Ms > maxP95Ms {
		violations = append(violations, fmt.Sprintf(
			"cold explain p95 %.1f ms exceeds the %.0f ms ceiling", cur.P95Ms, maxP95Ms))
	}
	if minBudgetRatio > 0 && cur.BudgetRatio < minBudgetRatio {
		violations = append(violations, fmt.Sprintf(
			"dataset is only %.2fx the memory budget (floor %.1fx) — the run does not prove beyond-RAM serving", cur.BudgetRatio, minBudgetRatio))
	}
	return violations, nil
}

// HierarchyReport mirrors the fields of BENCH_hierarchy.json the gate
// reads.
type HierarchyReport struct {
	ExactExplainNs int64   `json:"exact_explain_ns"`
	HierExplainNs  int64   `json:"hier_explain_ns"`
	Speedup        float64 `json:"speedup"`
	WalkSpeedup    float64 `json:"walk_speedup"`
	Visited        int     `json:"visited"`
	Candidates     int     `json:"candidates"`
	Epsilon        float64 `json:"epsilon"`
	MaxErrBound    float64 `json:"max_err_bound"`
	MaxActualErr   float64 `json:"max_actual_err"`
}

// hierarchySpeedupFloor is the hard acceptance floor for the
// subtree-pruned approximate path on the taxonomy scenario, independent
// of the baseline. It is lower than the flat approx floor because exact
// and pruned both run over the same hierarchy-shaped universe — the gate
// isolates what the subtree caps buy, not what a smaller candidate space
// buys.
const hierarchySpeedupFloor = 3.0

// compareHierarchy gates the subtree bound-pruning path on the taxonomy
// scenario, with the same structure as compareApprox: latency must not
// regress, the pruned-vs-exact speedup must hold both the hard 3x floor
// and its baseline (within the latency tolerance), the error accounting
// must stay sound, and the best-first walk must keep actually pruning —
// visiting every candidate would mean the caps stopped cutting subtrees
// even if the end-to-end latency still happened to pass.
func compareHierarchy(baselinePath, currentPath string, maxLatency float64) ([]string, error) {
	var base, cur HierarchyReport
	if err := load(baselinePath, &base); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := load(currentPath, &cur); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	var violations []string
	if base.HierExplainNs > 0 {
		if ratio := float64(cur.HierExplainNs) / float64(base.HierExplainNs); ratio > maxLatency {
			violations = append(violations, fmt.Sprintf(
				"hierarchy explain latency %d → %d ns (×%.2f)", base.HierExplainNs, cur.HierExplainNs, ratio))
		}
	}
	floor := hierarchySpeedupFloor
	if base.Speedup/maxLatency > floor {
		floor = base.Speedup / maxLatency
	}
	if cur.Speedup < floor {
		violations = append(violations, fmt.Sprintf(
			"pruned-vs-exact speedup %.1fx → %.1fx (floor %.1fx)", base.Speedup, cur.Speedup, floor))
	}
	if cur.Candidates > 0 && cur.Visited >= cur.Candidates {
		violations = append(violations, fmt.Sprintf(
			"walk visited all %d candidates — subtree pruning is not engaging", cur.Candidates))
	}
	if cur.MaxErrBound > cur.Epsilon {
		violations = append(violations, fmt.Sprintf(
			"reported error bound %.4f exceeds requested epsilon %.4f", cur.MaxErrBound, cur.Epsilon))
	}
	if cur.MaxActualErr > cur.MaxErrBound+1e-9 {
		violations = append(violations, fmt.Sprintf(
			"measured error %.6f exceeds reported bound %.6f (the bound is unsound)", cur.MaxActualErr, cur.MaxErrBound))
	}
	return violations, nil
}
