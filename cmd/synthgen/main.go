// Command synthgen emits one synthetic dataset (Section 4.2.1) as CSV on
// stdout, with the ground-truth segmentation on stderr, so the generator
// can be inspected or fed to external tools.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/relation"
	"repro/internal/synth"
)

func main() {
	var (
		n    = flag.Int("n", 100, "series length")
		seed = flag.Int64("seed", 1, "random seed")
		snr  = flag.Float64("snr", 35, "noise level in dB (0 = clean)")
		cats = flag.Int("categories", 3, "number of categories")
	)
	flag.Parse()

	d, err := synth.Generate(synth.Params{
		N:          *n,
		Seed:       *seed,
		SNRdB:      *snr,
		Categories: *cats,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	if err := relation.WriteCSV(os.Stdout, d.Rel); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ground-truth cuts: %v (K=%d)\n", d.Cuts, d.K)
}
