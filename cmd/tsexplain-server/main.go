// Command tsexplain-server runs the interactive TSExplain demo: a web
// page where you pick a dataset, adjust K and smoothing, and see the
// evolving-explanation trendlines, the K-Variance curve, the per-segment
// explanation table, and the latency breakdown.
//
//	go run ./cmd/tsexplain-server -addr :8080
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("TSExplain demo listening on http://%s", *addr)
	log.Fatal(srv.ListenAndServe())
}
