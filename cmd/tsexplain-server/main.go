// Command tsexplain-server runs the TSExplain serving layer: the
// interactive demo page plus a production request path — sharded lazy
// dataset registry, bounded per-shard worker pools with 429/503
// back-pressure, per-request deadlines the engine observes, structured
// request logs, and a Prometheus /metrics endpoint.
//
// With -data-dir it also serves the on-disk dataset catalog: CSV datasets
// uploaded through POST /api/datasets (and extended through
// POST /api/datasets/{name}/append) are served exactly like the
// built-ins, and -snapshot (default on) makes restarts warm by restoring
// each dataset's relation and candidate universe from a checksummed
// binary snapshot instead of re-parsing and re-planning.
//
//	go run ./cmd/tsexplain-server -addr :8080
//	go run ./cmd/tsexplain-server -addr :8080 -data-dir ./tsx-data
//	go run ./cmd/tsexplain-server -shards 8 -workers 2 -queue 32 \
//	    -request-timeout 10s -mem-budget-mb 512 -access-log
package main

import (
	"flag"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	shards := flag.Int("shards", 0, "registry shards (0: default 4)")
	workers := flag.Int("workers", 0, "worker slots per shard (0: GOMAXPROCS spread across shards)")
	queue := flag.Int("queue", 0, "queued requests per shard before shedding 429 (0: default 64, -1: no queue)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline (0: default 30s)")
	memBudgetMB := flag.Int64("mem-budget-mb", 0, "engine memory budget in MiB (0: default 1024)")
	resultCache := flag.Int("result-cache", 0, "cached explain results (0: default 256)")
	accessLog := flag.Bool("access-log", false, "write structured JSON request logs to stderr")
	dataDir := flag.String("data-dir", "", "dataset catalog directory; empty serves built-in datasets only")
	snapshot := flag.Bool("snapshot", true, "write/restore warm-restart snapshots for catalog datasets")
	jobsDir := flag.String("jobs-dir", "", "async-job directory (default <data-dir>/jobs; empty with no -data-dir disables the job API)")
	jobTTL := flag.Duration("job-ttl", 0, "retention of finished async jobs before GC (0: default 1h)")
	jobWorkers := flag.Int("job-workers", 0, "concurrently running async jobs (0: default 2)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job compute deadline (0: default 5m)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profile live traffic with go tool pprof)")
	flag.Parse()

	var logW io.Writer
	if *accessLog {
		logW = os.Stderr
	}
	handler, err := server.Open(server.Config{
		Shards:            *shards,
		WorkersPerShard:   *workers,
		QueueDepth:        *queue,
		RequestTimeout:    *requestTimeout,
		MemoryBudgetBytes: *memBudgetMB << 20,
		ResultCacheSize:   *resultCache,
		AccessLog:         logW,
		DataDir:           *dataDir,
		DisableSnapshots:  !*snapshot,
		JobsDir:           *jobsDir,
		JobTTL:            *jobTTL,
		JobWorkers:        *jobWorkers,
		JobTimeout:        *jobTimeout,
	})
	if err != nil {
		log.Fatalf("tsexplain-server: %v", err)
	}

	root := http.Handler(handler)
	if *pprofOn {
		// Mount the profiling handlers beside (not inside) the serving
		// mux so they bypass worker pools, deadlines, and shedding — a
		// profile of an overloaded server must still be reachable.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root = mux
		log.Printf("TSExplain pprof at http://%s/debug/pprof/", *addr)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           root,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if *dataDir != "" {
		log.Printf("TSExplain catalog at %s (snapshots %v)", *dataDir, *snapshot)
	}
	if *jobsDir != "" || *dataDir != "" {
		log.Printf("TSExplain async jobs enabled (POST /api/jobs)")
	}
	log.Printf("TSExplain serving on http://%s (metrics at /metrics)", *addr)
	log.Fatal(srv.ListenAndServe())
}
