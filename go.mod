module repro

go 1.23

// Pinned to the go1.24.0 toolchain's vendored copy (the same sources cmd/vet
// builds against); vendor/ carries the subset tsexplain-vet needs so the
// analysis suite builds offline.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
