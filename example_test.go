package tsexplain_test

import (
	"fmt"
	"strings"

	tsexplain "repro"
)

// demoRelation builds a deterministic two-phase series: NY drives the
// first half, CA the second.
func demoRelation() *tsexplain.Relation {
	var csv strings.Builder
	csv.WriteString("date,state,cases\n")
	for d := 0; d < 20; d++ {
		ny, ca := 1000, 10
		if d <= 10 {
			ny = 100 * d
		} else {
			ca = 10 + 150*(d-10)
		}
		fmt.Fprintf(&csv, "2021-05-%02d,NY,%d\n", d+1, ny)
		fmt.Fprintf(&csv, "2021-05-%02d,CA,%d\n", d+1, ca)
	}
	rel, err := tsexplain.ReadCSV(strings.NewReader(csv.String()), tsexplain.CSVSpec{
		TimeCol:  "date",
		DimCols:  []string{"state"},
		MeasCols: []string{"cases"},
	})
	if err != nil {
		panic(err)
	}
	return rel
}

// ExampleExplain shows the one-call API: load a relation, explain the
// aggregated series, print the evolving contributors.
func ExampleExplain() {
	res, err := tsexplain.Explain(demoRelation(), tsexplain.Query{
		Measure: "cases",
		Agg:     tsexplain.Sum,
	}, tsexplain.Options{K: 2})
	if err != nil {
		panic(err)
	}
	for _, seg := range res.Segments {
		fmt.Printf("%s ~ %s: %s %s\n",
			seg.StartLabel, seg.EndLabel,
			seg.Top[0].Predicates, seg.Top[0].Effect)
	}
	// Output:
	// 2021-05-01 ~ 2021-05-11: state=NY +
	// 2021-05-11 ~ 2021-05-20: state=CA +
}

// ExampleEngine_TopExplanations shows the two-relations-diff building
// block (Section 3.1): explain the change between two chosen points.
func ExampleEngine_TopExplanations() {
	eng, err := tsexplain.NewEngine(demoRelation(), tsexplain.Query{
		Measure: "cases",
		Agg:     tsexplain.Sum,
	}, tsexplain.Options{})
	if err != nil {
		panic(err)
	}
	top, err := eng.TopExplanations(0, 10) // first half only
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s %s γ=%.0f\n", top[0].Predicates, top[0].Effect, top[0].Gamma)
	// Output:
	// state=NY + γ=1000
}

// ExampleRecommendExplainBy ranks dimension attributes by how well their
// slices explain the series, the screening pass for wide schemas.
func ExampleRecommendExplainBy() {
	scores, err := tsexplain.RecommendExplainBy(demoRelation(), tsexplain.Query{
		Measure: "cases",
		Agg:     tsexplain.Sum,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(scores[0].Attribute)
	// Output:
	// state
}
