// Package tsexplain explains aggregated time series by surfacing their
// evolving top contributors, reproducing "TSExplain: Explaining Aggregated
// Time Series by Surfacing Evolving Contributors" (Chen & Huang, ICDE
// 2023).
//
// Given a relation R, a group-by query SELECT T, f(M) FROM R GROUP BY T,
// and a set of explain-by attributes, TSExplain partitions the aggregated
// series into K segments such that each segment shares a consistent set
// of top-m non-overlapping explanations (conjunctions of attribute=value
// predicates), and reports those explanations per segment with their
// difference scores and change effects.
//
// # Quick start
//
//	rel, _ := tsexplain.ReadCSV(file, tsexplain.CSVSpec{
//		TimeCol:  "date",
//		DimCols:  []string{"state"},
//		MeasCols: []string{"cases"},
//	})
//	res, _ := tsexplain.Explain(rel, tsexplain.Query{
//		Measure: "cases",
//		Agg:     tsexplain.Sum,
//	}, tsexplain.DefaultOptions())
//	for _, seg := range res.Segments {
//		fmt.Printf("%s ~ %s\n", seg.StartLabel, seg.EndLabel)
//		for _, e := range seg.Top {
//			fmt.Printf("  %s %s (γ=%.0f)\n", e.Predicates, e.Effect, e.Gamma)
//		}
//	}
//
// The zero Options value runs VanillaTSExplain (no optimizations);
// DefaultOptions enables the paper's support filter, guess-and-verify,
// and sketching, which together speed the engine up by an order of
// magnitude with negligible effect on quality (Section 7.5).
package tsexplain

import (
	"io"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/segment"
)

// Re-exported data-model types.
type (
	// Relation is the in-memory table TSExplain explains.
	Relation = relation.Relation
	// Builder incrementally assembles a Relation.
	Builder = relation.Builder
	// CSVSpec maps a CSV file onto a Relation.
	CSVSpec = relation.CSVSpec
	// AggFunc is a decomposable aggregate (SUM, COUNT, AVG).
	AggFunc = relation.AggFunc
	// Conjunction is a conjunction of attribute=value predicates.
	Conjunction = relation.Conjunction
)

// Re-exported engine types.
type (
	// Query identifies the aggregated series and explain-by attributes.
	Query = core.Query
	// Options bundles every engine tunable.
	Options = core.Options
	// Result is the evolving-explanations output.
	Result = core.Result
	// Segment is one period with consistent top explanations.
	Segment = core.Segment
	// Explanation is one reported contributor.
	Explanation = core.Explanation
	// Timings is the per-module latency breakdown.
	Timings = core.Timings
	// Stats reports workload statistics (ε, filtered ε, n, ...).
	Stats = core.Stats
	// Engine is the reusable explainer for one relation and query.
	Engine = core.Engine
	// Incremental is the real-time extension for growing series.
	Incremental = core.Incremental
	// AttributeScore ranks a dimension for explain-by recommendation.
	AttributeScore = core.AttributeScore
	// Effect is a change effect (+/-).
	Effect = explain.Effect
	// Metric is a difference metric γ.
	Metric = explain.Metric
	// VarianceKind selects the within-segment variance design.
	VarianceKind = segment.VarianceKind
	// SketchConfig tunes the sketching optimization.
	SketchConfig = segment.SketchConfig
)

// Aggregate functions.
const (
	// Sum aggregates with SUM(M).
	Sum = relation.Sum
	// Count aggregates with COUNT(M).
	Count = relation.Count
	// Avg aggregates with AVG(M).
	Avg = relation.Avg
)

// Difference metrics.
const (
	// AbsoluteChange is the paper's default metric (Definition 3.2).
	AbsoluteChange = explain.AbsoluteChange
	// RelativeChange normalizes by the overall change.
	RelativeChange = explain.RelativeChange
	// RiskRatio compares slice shares between the endpoints.
	RiskRatio = explain.RiskRatio
)

// Change effects.
const (
	// Increase marks slices that push the KPI change upward.
	Increase = explain.Increase
	// Decrease marks slices that push the KPI change downward.
	Decrease = explain.Decrease
)

// Variance designs (Section 4.2.2). Tse is the paper's proposal; the
// others exist for the effectiveness comparison.
const (
	// Tse is TSExplain's two-way NDCG variance.
	Tse = segment.Tse
	// Dist1 uses only object-explains-centroid NDCG.
	Dist1 = segment.Dist1
	// Dist2 uses only centroid-explains-object NDCG.
	Dist2 = segment.Dist2
	// AllPair averages distances over all object pairs.
	AllPair = segment.AllPair
)

// DefaultOptions returns the fully optimized configuration (filter +
// guess-and-verify + sketching), the setup the paper recommends for
// interactive use.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewBuilder starts building a relation in memory.
func NewBuilder(name, timeName string, dimNames, measureNames []string) *Builder {
	return relation.NewBuilder(name, timeName, dimNames, measureNames)
}

// ReadCSV loads a relation from CSV data with a header row.
func ReadCSV(src io.Reader, spec CSVSpec) (*Relation, error) {
	return relation.ReadCSV(src, spec)
}

// WriteCSV writes a relation as CSV.
func WriteCSV(dst io.Writer, r *Relation) error {
	return relation.WriteCSV(dst, r)
}

// NewEngine builds a reusable engine: candidate enumeration and series
// precompute happen here, so repeated Explain calls amortize them.
func NewEngine(rel *Relation, q Query, opts Options) (*Engine, error) {
	return core.NewEngine(rel, q, opts)
}

// Explain runs the full pipeline once: precompute, per-segment top
// explanations, explanation-aware K-segmentation, and (unless Options.K
// is set) elbow-method selection of K.
func Explain(rel *Relation, q Query, opts Options) (*Result, error) {
	eng, err := core.NewEngine(rel, q, opts)
	if err != nil {
		return nil, err
	}
	return eng.Explain()
}

// NewIncremental starts a real-time explainer over the initial snapshot
// and returns the first result; feed extended snapshots to Update as new
// data arrives (Section 8).
func NewIncremental(rel *Relation, q Query, opts Options) (*Incremental, *Result, error) {
	return core.NewIncremental(rel, q, opts)
}

// RecommendExplainBy ranks the relation's dimension attributes by how
// well their slices explain the series' movements, implementing the
// explain-by recommendation the paper lists as future work. Use it to
// pre-select Query.ExplainBy when the schema is wide.
func RecommendExplainBy(rel *Relation, q Query) ([]AttributeScore, error) {
	return core.RecommendExplainBy(rel, q)
}
