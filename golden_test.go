package tsexplain_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/relation"
	"repro/internal/synth"
)

// The golden corpus pins the engine's canonical explanation output —
// cuts, segment labels, per-segment top attributions with full-precision
// γ, and the K-Variance value — for the three serving datasets at
// K ∈ {3, 5, 8}, in both the optimized and the vanilla configuration.
// Exact mode must stay bit-identical across refactors: any diff here is
// either a bug or an intentional algorithm change that must be
// re-baselined with -update-golden and explained in the commit.
//
//	go test -run TestGoldenCorpus -update-golden   # re-baseline
//
// The approximate mode is gated differentially instead (its output may
// legitimately differ): every reported segment's attribution must stay
// within the segment's own reported error bound of the exact optimum.

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current engine output")

var goldenKs = []int{3, 5, 8}

type goldenCase struct {
	name string
	data func() *datasets.Dataset
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"liquor", datasets.Liquor},
		{"covid", datasets.CovidTotal},
		{"stream", func() *datasets.Dataset { return datasets.Stream(datasets.StreamDays) }},
		{"taxonomy", datasets.Taxonomy},
	}
}

// goldenDoc is the canonical JSON shape. Floats are serialized through
// strconv.FormatFloat(-1) strings so the comparison is bit-exact, not
// print-format-dependent.
type goldenDoc struct {
	Dataset  string          `json:"dataset"`
	Mode     string          `json:"mode"`
	K        int             `json:"k"`
	Cuts     []int           `json:"cuts"`
	Variance string          `json:"totalVariance"`
	Segments []goldenSegment `json:"segments"`
}

type goldenSegment struct {
	Start string      `json:"start"`
	End   string      `json:"end"`
	Top   []goldenTop `json:"top"`
}

type goldenTop struct {
	Predicates string `json:"predicates"`
	Effect     string `json:"effect"`
	Gamma      string `json:"gamma"`
	// Path pins the hierarchy drill-down path; omitted for flat datasets,
	// so the pre-hierarchy golden files stay byte-identical.
	Path []string `json:"path,omitempty"`
}

func g64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func toGolden(name, mode string, res *core.Result) goldenDoc {
	doc := goldenDoc{
		Dataset:  name,
		Mode:     mode,
		K:        res.K,
		Cuts:     res.Cuts(),
		Variance: g64(res.TotalVariance),
	}
	for _, seg := range res.Segments {
		gs := goldenSegment{Start: seg.StartLabel, End: seg.EndLabel}
		for _, e := range seg.Top {
			gs.Top = append(gs.Top, goldenTop{
				Predicates: e.Predicates,
				Effect:     e.Effect.String(),
				Gamma:      g64(e.Gamma),
				Path:       e.Path,
			})
		}
		doc.Segments = append(doc.Segments, gs)
	}
	return doc
}

func goldenPath(name, mode string, k int) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s_k%d.json", name, mode, k))
}

func goldenOptions(d *datasets.Dataset, vanilla bool) core.Options {
	var opts core.Options
	if !vanilla {
		opts = core.DefaultOptions()
	}
	opts.MaxOrder = d.MaxOrder
	opts.SmoothWindow = d.SmoothWindow
	opts.Hierarchies = d.Hierarchies
	return opts
}

func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus runs full engines; skipped in -short")
	}
	for _, tc := range goldenCases() {
		d := tc.data()
		for _, vanilla := range []bool{false, true} {
			mode := "opt"
			if vanilla {
				mode = "vanilla"
			}
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				// One engine per (dataset, mode), reused across K — the
				// per-segment cache is K-independent, exactly how the
				// server serves varying K from one pooled engine.
				eng, err := core.NewEngine(d.Rel, core.Query{
					Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
				}, goldenOptions(d, vanilla))
				if err != nil {
					t.Fatalf("engine: %v", err)
				}
				for _, k := range goldenKs {
					res, err := eng.ExplainWithK(k)
					if err != nil {
						t.Fatalf("explain k=%d: %v", k, err)
					}
					got, err := json.MarshalIndent(toGolden(tc.name, mode, res), "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, '\n')
					path := goldenPath(tc.name, mode, k)
					if *updateGolden {
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, got, 0o644); err != nil {
							t.Fatal(err)
						}
						continue
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden file %s (regenerate with -update-golden): %v", path, err)
					}
					if string(want) != string(got) {
						t.Errorf("%s: engine output diverged from the golden corpus.\n--- want\n%s\n--- got\n%s\n"+
							"If this change is intentional, re-baseline with `go test -run TestGoldenCorpus -update-golden` and explain it in the commit.",
							path, want, got)
					}
				}
			})
		}
	}
}

// TestGoldenHierarchyLeafDifferential pins the grouped enumeration's
// degenerate case: a hierarchy whose explain-by set keeps only the leaf
// level must not register (one kept level behaves exactly flat), so the
// engine's output over a hierarchy-declaring relation is bit-identical —
// through the same JSON serialization the golden corpus uses, path field
// included — to a flat engine over the same data with no hierarchy
// declared.
func TestGoldenHierarchyLeafDifferential(t *testing.T) {
	params := synth.TaxonomyParams{
		Cats: 6, SubcatsPerCat: 4, LeavesPerSubcat: 4,
		N: 64, Drivers: 6, Seed: 7,
	}
	flat, err := synth.Taxonomy(params)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := synth.Taxonomy(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := hier.Rel.DeclareHierarchy("cat>subcat>leaf", synth.TaxonomyLevels()); err != nil {
		t.Fatal(err)
	}

	run := func(rel *relation.Relation, hiers [][]string) []byte {
		t.Helper()
		opts := core.DefaultOptions()
		opts.MaxOrder = 2
		opts.Hierarchies = hiers
		eng, err := core.NewEngine(rel, core.Query{
			Measure: "sales", Agg: relation.Sum, ExplainBy: []string{"leaf"},
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		var out []byte
		for _, k := range goldenKs {
			res, err := eng.ExplainWithK(k)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			doc, err := json.MarshalIndent(toGolden("leafdiff", "opt", res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, doc...)
			out = append(out, '\n')
		}
		return out
	}

	flatOut := run(flat.Rel, nil)
	hierOut := run(hier.Rel, [][]string{synth.TaxonomyLevels()})
	if string(flatOut) != string(hierOut) {
		t.Errorf("leaf-level hierarchy output diverged from the flat path.\n--- flat\n%s\n--- hierarchy\n%s", flatOut, hierOut)
	}
}

// TestGoldenApproxDifferential gates approximate mode against the same
// corpus: per segment of the approximate result, the exact optimal
// attribution (computed by an exact engine on the same boundaries) must
// exceed the approximate one by no more than the segment's own reported
// error bound, and the reported bound must meet the requested epsilon
// whenever refinement wasn't truncated by a budget.
func TestGoldenApproxDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus runs full engines; skipped in -short")
	}
	const eps = 0.05
	for _, tc := range goldenCases() {
		d := tc.data()
		t.Run(tc.name, func(t *testing.T) {
			q := core.Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}
			exact, err := core.NewEngine(d.Rel, q, goldenOptions(d, false))
			if err != nil {
				t.Fatalf("exact engine: %v", err)
			}
			aopts := goldenOptions(d, false)
			// A small candidate budget forces genuine pruning on the
			// built-in datasets, so the bound is exercised rather than
			// trivially zero.
			aopts.Approx = core.ApproxOptions{Enabled: true, Epsilon: eps, MaxCandidates: 256}
			approx, err := core.NewEngine(d.Rel, q, aopts)
			if err != nil {
				t.Fatalf("approx engine: %v", err)
			}
			for _, k := range goldenKs {
				res, err := approx.ExplainWithK(k)
				if err != nil {
					t.Fatalf("approx explain k=%d: %v", k, err)
				}
				if res.Approx == nil {
					t.Fatalf("k=%d: no ApproxInfo", k)
				}
				mIdx := len(exact.Explainer().TopM(0, 1).Best) - 1
				for _, seg := range res.Segments {
					ge := exact.Explainer().TopM(seg.Start, seg.End).Best[mIdx]
					var ga float64
					for _, e := range seg.Top {
						ga += e.Gamma
					}
					if ge <= 0 {
						continue
					}
					actual := (ge - ga) / ge
					if actual > seg.ErrBound+1e-9 {
						t.Errorf("%s k=%d segment [%s..%s]: measured error %.6f exceeds reported bound %.6f",
							tc.name, k, seg.StartLabel, seg.EndLabel, actual, seg.ErrBound)
					}
				}
				if !res.Approx.Truncated &&
					res.Approx.CandidatesUsed < res.Approx.MaxCandidates &&
					res.Approx.CandidatesUsed < res.Approx.CandidatesEligible &&
					res.Approx.MaxErrBound > eps {
					t.Errorf("%s k=%d: bound %g > ε %g with refinement budget left",
						tc.name, k, res.Approx.MaxErrBound, eps)
				}
			}
		})
	}
}
