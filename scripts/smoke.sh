#!/bin/sh
# Builds and runs every example binary and the tsexplain CLI against the
# bundled datasets, checking exit codes and that each produced non-empty
# output; then exercises the bring-your-own-data path end to end: start
# the server with a temp -data-dir, upload a CSV dataset, explain it,
# append delta rows, restart the server, and assert the second start
# restores the dataset from its warm-restart snapshot (log marker). CI
# runs this on every PR so example drift — like the pre-PR-1 missing
# go.mod — is caught automatically instead of by the next reader.
#
# Usage: scripts/smoke.sh
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_check() {
	name="$1"
	shift
	out="$tmp/$(echo "$name" | tr '/' '_').out"
	echo "smoke: $name"
	"$@" >"$out" 2>&1 || {
		rc=$?
		echo "smoke: $name FAILED (exit $rc)" >&2
		cat "$out" >&2
		exit 1
	}
	if ! [ -s "$out" ]; then
		echo "smoke: $name produced no output" >&2
		exit 1
	fi
}

for d in examples/*/; do
	run_check "$d" go run "./$d"
done

run_check "cmd/tsexplain demo=covid" go run ./cmd/tsexplain -demo covid
run_check "cmd/tsexplain demo=vax-deaths" go run ./cmd/tsexplain -demo vax-deaths

# ---- Bring-your-own-data: upload, explain, append, warm restart. ------------

go build -o "$tmp/tsexplain-server" ./cmd/tsexplain-server
go build -o "$tmp/tsexplain" ./cmd/tsexplain

data_dir="$tmp/catalog"
addr="127.0.0.1:18098"
base="http://$addr"

cat >"$tmp/smoke.csv" <<'CSV'
day,state,product,sales
2024-01-01,NY,widget,10
2024-01-01,CA,widget,8
2024-01-02,NY,widget,12
2024-01-02,CA,widget,8
2024-01-03,NY,widget,30
2024-01-03,CA,widget,9
2024-01-04,NY,widget,55
2024-01-04,CA,widget,9
2024-01-05,NY,widget,80
2024-01-05,CA,widget,10
CSV
cat >"$tmp/smoke-manifest.json" <<'JSON'
{
  "name": "smoke-sales",
  "aliases": ["sales"],
  "timeCol": "day",
  "dimCols": ["state", "product"],
  "measureCol": "sales",
  "agg": "SUM",
  "maxOrder": 2
}
JSON

start_server() {
	logf="$1"
	"$tmp/tsexplain-server" -addr "$addr" -data-dir "$data_dir" >"$logf" 2>&1 &
	server_pid=$!
	for _ in $(seq 1 50); do
		if curl -sf "$base/api/datasets" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.2
	done
	echo "smoke: server did not come up; log:" >&2
	cat "$logf" >&2
	exit 1
}

stop_server() {
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true
}

echo "smoke: server cold start + upload"
start_server "$tmp/server1.log"

# Upload (waiting for the snapshot refresh so the restart finds one).
curl -sf -X POST "$base/api/datasets?wait=1" \
	-F "manifest=<$tmp/smoke-manifest.json" \
	-F "csv=@$tmp/smoke.csv" >"$tmp/upload.json"
grep -q '"smoke-sales"' "$tmp/upload.json" || {
	echo "smoke: upload response unexpected:" >&2
	cat "$tmp/upload.json" >&2
	exit 1
}

# Explain it — via the manifest alias — and check the NY driver surfaces.
curl -sf "$base/api/explain?dataset=sales" >"$tmp/explain1.json"
grep -q 'state=NY' "$tmp/explain1.json" || {
	echo "smoke: explain missing the NY driver:" >&2
	cat "$tmp/explain1.json" >&2
	exit 1
}

# The server result must agree with an offline CLI run on the same file.
"$tmp/tsexplain" -csv "$tmp/smoke.csv" -manifest "$tmp/smoke-manifest.json" >"$tmp/cli.out"
grep -q 'state=NY' "$tmp/cli.out" || {
	echo "smoke: offline CLI run disagrees (no NY driver):" >&2
	cat "$tmp/cli.out" >&2
	exit 1
}

# Append delta rows through the streaming path (waiting for the snapshot
# refresh so the restart below restores post-append data).
printf '%s\n%s\n' \
	'{"time":"2024-01-06","dims":{"state":"NY","product":"widget"},"measure":120}' \
	'{"time":"2024-01-06","dims":{"state":"CA","product":"widget"},"measure":11}' |
	curl -sf -X POST "$base/api/datasets/smoke-sales/append?wait=1" --data-binary @- >"$tmp/append.json"
grep -q '"rows":2' "$tmp/append.json" || {
	echo "smoke: append response unexpected:" >&2
	cat "$tmp/append.json" >&2
	exit 1
}

stop_server

echo "smoke: server warm restart (snapshot restore)"
start_server "$tmp/server2.log"
curl -sf "$base/api/explain?dataset=smoke-sales" >"$tmp/explain2.json"
grep -q '2024-01-06' "$tmp/explain2.json" || {
	echo "smoke: post-restart explain missing the appended day:" >&2
	cat "$tmp/explain2.json" >&2
	exit 1
}
grep -q 'restored from snapshot' "$tmp/server2.log" || {
	echo "smoke: second start did not restore from snapshot; log:" >&2
	cat "$tmp/server2.log" >&2
	exit 1
}
curl -s "$base/metrics" | grep -q 'tsexplain_snapshot_restores_total{kind="engine"} 1' || {
	echo "smoke: /metrics missing the engine snapshot restore" >&2
	exit 1
}

# ---- Progressive streaming: NDJSON default, SSE via Accept. -----------------

echo "smoke: progressive explain (NDJSON + SSE)"
curl -sf "$base/api/explain?dataset=smoke-sales&progressive=1" >"$tmp/progressive.ndjson"
grep -q '"final":true' "$tmp/progressive.ndjson" || {
	echo "smoke: progressive stream never reached the final round:" >&2
	cat "$tmp/progressive.ndjson" >&2
	exit 1
}
curl -sf -H 'Accept: text/event-stream' \
	"$base/api/explain?dataset=smoke-sales&progressive=1" >"$tmp/progressive.sse"
grep -q '^event: round' "$tmp/progressive.sse" || {
	echo "smoke: SSE progressive stream missing 'event: round' framing:" >&2
	cat "$tmp/progressive.sse" >&2
	exit 1
}

# ---- Async job round trip: submit, poll to done, result matches. ------------

echo "smoke: async job round trip"
curl -sf -X POST "$base/api/jobs?dataset=smoke-sales&k=3" >"$tmp/job-submit.json"
job_id="$(sed -n 's/.*"id":"\([0-9a-f]\{16\}\)".*/\1/p' "$tmp/job-submit.json")"
if [ -z "$job_id" ]; then
	echo "smoke: job submit returned no id:" >&2
	cat "$tmp/job-submit.json" >&2
	exit 1
fi
job_done=""
for _ in $(seq 1 50); do
	curl -sf "$base/api/jobs/$job_id" >"$tmp/job-poll.json"
	if grep -q '"status":"done"' "$tmp/job-poll.json"; then
		job_done=1
		break
	fi
	sleep 0.2
done
if [ -z "$job_done" ]; then
	echo "smoke: job $job_id did not finish; last poll:" >&2
	cat "$tmp/job-poll.json" >&2
	exit 1
fi
grep -q 'state=NY' "$tmp/job-poll.json" || {
	echo "smoke: job result missing the NY driver:" >&2
	cat "$tmp/job-poll.json" >&2
	exit 1
}

stop_server

echo "smoke: all OK"
