#!/bin/sh
# Builds and runs every example binary and the tsexplain CLI against the
# bundled datasets, checking exit codes and that each produced non-empty
# output. CI runs this on every PR so example drift — like the pre-PR-1
# missing go.mod — is caught automatically instead of by the next reader.
#
# Usage: scripts/smoke.sh
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

run_check() {
	name="$1"
	shift
	out="$tmp/$(echo "$name" | tr '/' '_').out"
	echo "smoke: $name"
	"$@" >"$out" 2>&1 || {
		rc=$?
		echo "smoke: $name FAILED (exit $rc)" >&2
		cat "$out" >&2
		exit 1
	}
	if ! [ -s "$out" ]; then
		echo "smoke: $name produced no output" >&2
		exit 1
	fi
}

for d in examples/*/; do
	run_check "$d" go run "./$d"
done

run_check "cmd/tsexplain demo=covid" go run ./cmd/tsexplain -demo covid
run_check "cmd/tsexplain demo=vax-deaths" go run ./cmd/tsexplain -demo vax-deaths

echo "smoke: all OK"
