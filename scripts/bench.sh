#!/bin/sh
# Runs the engine's benchmarks and writes the machine-readable reports at
# the repo root, so the perf trajectory stays trackable across PRs:
#
#   BENCH_engine.json     hot-path micro-benchmarks (ns/op, B/op, allocs/op)
#   BENCH_streaming.json  streaming replay: per-update latency of the
#                         O(delta) append path vs the full-rebuild path
#
# Usage: scripts/bench.sh [extra benchjson flags for the micro run...]
#   e.g. scripts/bench.sh -benchtime 5s
#        scripts/bench.sh -bench 'BenchmarkPrecompute' -o /tmp/p.json
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/benchjson "$@"
go run ./cmd/benchjson -mode streaming
