#!/bin/sh
# Runs the engine's hot-path micro-benchmarks and writes BENCH_engine.json
# (ns/op, B/op, allocs/op per benchmark) at the repo root, so the perf
# trajectory stays machine-readable across PRs.
#
# Usage: scripts/bench.sh [extra benchjson flags...]
#   e.g. scripts/bench.sh -benchtime 5s
#        scripts/bench.sh -bench 'BenchmarkPrecompute' -o /tmp/p.json
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchjson "$@"
