#!/bin/sh
# Runs the engine's benchmarks and writes the machine-readable reports at
# the repo root, so the perf trajectory stays trackable across PRs:
#
#   BENCH_engine.json     hot-path micro-benchmarks (ns/op, B/op, allocs/op)
#   BENCH_streaming.json  streaming replay: per-update latency of the
#                         O(delta) append path vs the full-rebuild path
#   BENCH_catalog.json    warm-restart path: snapshot save/restore vs the
#                         cold CSV-parse + engine rebuild, per dataset
#   BENCH_approx.json     anytime approximate path: exact vs approx explain
#                         on the ~52k-conjunction high-cardinality scenario,
#                         with the reported and measured attribution error
#   BENCH_hierarchy.json  subtree bound-pruning: exact vs pruned explain on
#                         the ~50k-leaf taxonomy scenario, plus the
#                         flat-vs-walk candidate-ranking micro-comparison
#   BENCH_bigdata.json    beyond-RAM serving: a dataset ~4.5x the engine-
#                         pool budget served cold through the HTTP stack
#                         with candidate arenas memory-mapped off the
#                         snapshot (resident-vs-mapped split, latency
#                         percentiles, peak heap)
#   BENCH_server.json     serving-layer load test: per-endpoint latency
#                         quantiles, throughput, and shed/eviction counts
#                         (only with "server" as the first argument)
#
# CI regenerates the first five (plus a reduced-scale bigdata run) in
# short mode on every PR and gates them
# against the committed baselines with cmd/benchcmp; after an accepted
# perf change, rerun this script and commit the new JSONs to re-baseline.
# scripts/lint.sh is the static-analysis counterpart: it runs the
# tsexplain-vet invariant suite that keeps these numbers honest (the
# //tsexplain:hotpath annotations pin the zero-alloc kernels measured
# here).
#
# Usage: scripts/bench.sh [extra benchjson flags for the micro run...]
#        scripts/bench.sh server [extra loadgen flags...]
#   e.g. scripts/bench.sh -benchtime 5s
#        scripts/bench.sh -bench 'BenchmarkPrecompute' -o /tmp/p.json
#        scripts/bench.sh server -clients 256 -duration 15s
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "server" ]; then
	shift
	go run ./cmd/loadgen "$@"
	exit 0
fi

go run ./cmd/benchjson "$@"
go run ./cmd/benchjson -mode streaming
go run ./cmd/benchjson -mode catalog
go run ./cmd/benchjson -mode approx
go run ./cmd/benchjson -mode hierarchy
go run ./cmd/benchjson -mode bigdata

# Self-check the absolute contracts on the freshly written baselines
# (ratio gates trivially pass against themselves; the absolute gates —
# snapshot footprint, universe-build ceiling, and the beyond-RAM serving
# invariants — must hold even on a re-baseline, so a regression cannot
# be committed as the new normal).
go run ./cmd/benchcmp -mode engine -baseline BENCH_engine.json -current BENCH_engine.json -max-universe-build-ns 152173414
go run ./cmd/benchcmp -mode catalog -baseline BENCH_catalog.json -current BENCH_catalog.json -max-snapshot-csv-ratio 0.5
go run ./cmd/benchcmp -mode bigdata -current BENCH_bigdata.json -max-p95-ms 3000 -min-budget-ratio 4
