#!/bin/sh
# One-shot static analysis: everything CI's lint-side jobs run, in one
# local command, so "is this PR clean?" is answerable before pushing:
#
#   gofmt          formatting (fails listing the unformatted files)
#   go vet         the stock toolchain analyzers
#   tsexplain-vet  the project's invariant suite (internal/analysis):
#                  tsexdeterminism, tsexlockguard, tsexctxflow,
#                  tsexhotpathalloc, tsexannotcheck, lostcancel — see
#                  ARCHITECTURE.md "Invariants & static analysis"
#   staticcheck    when installed (CI installs it; local runs skip)
#   govulncheck    when installed (CI installs it; local runs skip)
#
# scripts/bench.sh is the perf-side counterpart (benchmark regeneration
# and gating).
#
# Usage: scripts/lint.sh
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== tsexplain-vet"
vetdir="$(mktemp -d)"
trap 'rm -rf "$vetdir"' EXIT
go build -o "$vetdir/tsexplain-vet" ./cmd/tsexplain-vet
go vet -vettool="$vetdir/tsexplain-vet" ./...

if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck"
	staticcheck ./...
else
	echo "== staticcheck (not installed; skipped)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo "== govulncheck"
	govulncheck ./...
else
	echo "== govulncheck (not installed; skipped)"
fi

echo "lint: all clean"
