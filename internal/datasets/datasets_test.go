package datasets

import (
	"math"
	"testing"

	"repro/internal/explain"
	"repro/internal/relation"
)

func universeOf(t *testing.T, d *Dataset) *explain.Universe {
	t.Helper()
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure:   d.Measure,
		Agg:       d.Agg,
		ExplainBy: d.ExplainBy,
		MaxOrder:  d.MaxOrder,
	})
	if err != nil {
		t.Fatalf("NewUniverse(%s): %v", d.Name, err)
	}
	return u
}

func seriesOf(t *testing.T, d *Dataset) []float64 {
	t.Helper()
	m := d.Rel.MeasureIndex(d.Measure)
	if m < 0 {
		t.Fatalf("%s: measure %q missing", d.Name, d.Measure)
	}
	return relation.Values(d.Agg, d.Rel.AggregateSeries(m))
}

func TestCovidShape(t *testing.T) {
	d := CovidTotal()
	if got := d.Rel.NumTimestamps(); got != 345 {
		t.Errorf("n = %d, want 345 (2020-01-22..2020-12-31)", got)
	}
	if got := d.Rel.Dim(0).Cardinality(); got != 58 {
		t.Errorf("states = %d, want 58", got)
	}
	if got := d.Rel.TimeLabel(0); got != "2020-01-22" {
		t.Errorf("first date = %q", got)
	}
	if got := d.Rel.TimeLabel(344); got != "2020-12-31" {
		t.Errorf("last date = %q", got)
	}
	u := universeOf(t, d)
	if got := u.NumCandidates(); got != 58 {
		t.Errorf("ε = %d, want 58 (Table 6)", got)
	}
	if got := len(u.FilterLowSupport(0.001)); got < 50 || got > 58 {
		t.Errorf("filtered ε = %d, want ≈54 (Table 6)", got)
	}
}

func TestCovidTotalsMonotoneAndLarge(t *testing.T) {
	d := CovidTotal()
	vals := seriesOf(t, d)
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatalf("total cases decreased at %d: %g -> %g", i, vals[i-1], vals[i])
		}
	}
	// The US ended 2020 around 2·10⁷ cumulative confirmed cases.
	if last := vals[len(vals)-1]; last < 5e6 || last > 5e7 {
		t.Errorf("final total = %g, want ~2e7", last)
	}
	if vals[0] > 1000 {
		t.Errorf("initial total = %g, want near 0", vals[0])
	}
}

func TestCovidNarrativeDrivers(t *testing.T) {
	d := CovidDaily()
	u := universeOf(t, d)
	daily := func(state string, from, to string) float64 {
		conj, err := relation.NewConjunction(d.Rel, map[string]string{"state": state})
		if err != nil {
			t.Fatalf("conjunction %s: %v", state, err)
		}
		id, ok := u.Lookup(conj)
		if !ok {
			t.Fatalf("state %s not a candidate", state)
		}
		vals := u.CandidateValues(id)
		fromIdx, toIdx := dateIdx(t, d, from), dateIdx(t, d, to)
		var sum float64
		for i := fromIdx; i <= toIdx; i++ {
			sum += vals[i]
		}
		return sum
	}
	// Spring wave: NY ≫ CA.
	if ny, ca := daily("New York", "2020-03-15", "2020-05-01"), daily("California", "2020-03-15", "2020-05-01"); ny < 2*ca {
		t.Errorf("spring: NY=%g should dwarf CA=%g", ny, ca)
	}
	// Summer wave: FL+TX ≫ NY.
	if fl, ny := daily("Florida", "2020-06-15", "2020-08-15"), daily("New York", "2020-06-15", "2020-08-15"); fl < 2*ny {
		t.Errorf("summer: FL=%g should dwarf NY=%g", fl, ny)
	}
	// Winter: CA leads everyone.
	caw := daily("California", "2020-11-27", "2020-12-31")
	for _, s := range []string{"New York", "Texas", "Florida", "Illinois"} {
		if other := daily(s, "2020-11-27", "2020-12-31"); other > caw {
			t.Errorf("winter: %s=%g exceeds CA=%g", s, other, caw)
		}
	}
}

func dateIdx(t *testing.T, d *Dataset, label string) int {
	t.Helper()
	for i := 0; i < d.Rel.NumTimestamps(); i++ {
		if d.Rel.TimeLabel(i) >= label {
			return i
		}
	}
	t.Fatalf("date %s beyond series", label)
	return -1
}

func TestSP500Shape(t *testing.T) {
	d := SP500()
	if got := d.Rel.NumTimestamps(); got != 151 {
		t.Errorf("n = %d, want 151 (Table 6)", got)
	}
	if got := d.Rel.Dim(d.Rel.DimIndex("stock")).Cardinality(); got != 503 {
		t.Errorf("stocks = %d, want 503", got)
	}
	if got := d.Rel.Dim(d.Rel.DimIndex("category")).Cardinality(); got != 11 {
		t.Errorf("categories = %d, want 11", got)
	}
	if got := d.Rel.Dim(d.Rel.DimIndex("subcategory")).Cardinality(); got != 96 {
		t.Errorf("subcategories = %d, want 96", got)
	}
	u := universeOf(t, d)
	if got := u.NumCandidates(); got != 610 {
		t.Errorf("ε = %d, want 610 (Table 6)", got)
	}
}

func TestSP500CrashAndRebound(t *testing.T) {
	d := SP500()
	vals := seriesOf(t, d)
	at := func(m, day int) float64 { return vals[spIndexOf(m, day)] }
	start := vals[0]
	// Pre-crash high in February.
	if peak := at(2, 19); peak <= start {
		t.Errorf("2/19 peak %g should exceed start %g", peak, start)
	}
	// Crash: 3/23 trough roughly one third below the February peak.
	trough := at(3, 23)
	if drop := 1 - trough/at(2, 19); drop < 0.25 || drop > 0.45 {
		t.Errorf("crash depth = %.2f, want ≈0.32", drop)
	}
	// Rebound past the old high by 8/25.
	if rebound := at(8, 25); rebound < at(2, 19) {
		t.Errorf("8/25 level %g should exceed the February peak %g", rebound, at(2, 19))
	}
	// September dip.
	if dip := at(9, 23); dip >= at(8, 25) {
		t.Errorf("September dip %g should be below the 8/25 peak %g", dip, at(8, 25))
	}
}

func TestSP500SectorNarrative(t *testing.T) {
	d := SP500()
	u := universeOf(t, d)
	sectorDelta := func(sector string, fromM, fromD, toM, toD int) float64 {
		conj, err := relation.NewConjunction(d.Rel, map[string]string{"category": sector})
		if err != nil {
			t.Fatalf("sector %s: %v", sector, err)
		}
		id, ok := u.Lookup(conj)
		if !ok {
			t.Fatalf("sector %s missing", sector)
		}
		vals := u.CandidateValues(id)
		return vals[spIndexOf(toM, toD)] - vals[spIndexOf(fromM, fromD)]
	}
	// Both tech and financial fall in the crash.
	if dTech := sectorDelta("technology", 2, 6, 3, 24); dTech >= 0 {
		t.Errorf("tech crash delta = %g, want negative", dTech)
	}
	dFin := sectorDelta("financial", 2, 6, 3, 24)
	if dFin >= 0 {
		t.Errorf("financial crash delta = %g, want negative", dFin)
	}
	// Rebound: tech strongly positive, financial barely recovers.
	rTech := sectorDelta("technology", 3, 24, 8, 25)
	rFin := sectorDelta("financial", 3, 24, 8, 25)
	if rTech <= 0 || rTech < 4*rFin {
		t.Errorf("rebound: tech=%g should dominate financial=%g", rTech, rFin)
	}
}

func TestLiquorShape(t *testing.T) {
	d := Liquor()
	if got := d.Rel.NumTimestamps(); got != 128 {
		t.Errorf("n = %d, want 128 (Table 6)", got)
	}
	for _, attr := range d.ExplainBy {
		if d.Rel.DimIndex(attr) < 0 {
			t.Errorf("missing explain-by attribute %q", attr)
		}
	}
	u := universeOf(t, d)
	if got := u.NumCandidates(); got < 5000 || got > 12000 {
		t.Errorf("ε = %d, want ≈8200 (Table 6)", got)
	}
	kept := u.FilterLowSupport(0.001)
	if len(kept) >= u.NumCandidates()/2 {
		t.Errorf("filter kept %d of %d, want under half", len(kept), u.NumCandidates())
	}
}

func TestLiquorPandemicNarrative(t *testing.T) {
	d := Liquor()
	u := universeOf(t, d)
	sliceVals := func(pairs map[string]string) []float64 {
		conj, err := relation.NewConjunction(d.Rel, pairs)
		if err != nil {
			t.Fatalf("conjunction %v: %v", pairs, err)
		}
		id, ok := u.Lookup(conj)
		if !ok {
			t.Fatalf("slice %v missing", pairs)
		}
		return u.CandidateValues(id)
	}
	mean := func(v []float64, from, to int) float64 {
		var s float64
		for i := from; i <= to; i++ {
			s += v[i]
		}
		return s / float64(to-from+1)
	}
	// BV=1000 collapses after the bar closure and recovers by late June.
	bv1000 := sliceVals(map[string]string{"Bottle Volume (ml)": "1000"})
	before := mean(bv1000, liquorDayOf(2, 1), liquorDayOf(3, 6))
	closed := mean(bv1000, liquorDayOf(4, 1), liquorDayOf(4, 21))
	after := mean(bv1000, liquorDayOf(6, 10), 127)
	if closed > 0.5*before {
		t.Errorf("BV=1000 during closure = %g, want well below pre-closure %g", closed, before)
	}
	if after < 0.8*before {
		t.Errorf("BV=1000 after reopening = %g, want recovered toward %g", after, before)
	}
	// Large packs surge during the pandemic.
	for _, pack := range []string{"12", "24", "48"} {
		v := sliceVals(map[string]string{"Pack": pack})
		early := mean(v, liquorDayOf(1, 20), liquorDayOf(2, 10))
		late := mean(v, liquorDayOf(4, 21), liquorDayOf(6, 30))
		if late < early*1.05 {
			t.Errorf("Pack=%s late mean %g should exceed early %g", pack, late, early)
		}
	}
}

func TestVaxDeathsShapeAndNarrative(t *testing.T) {
	d := VaxDeaths()
	if got := d.Rel.NumTimestamps(); got != 39 {
		t.Errorf("n = %d, want 39 weeks", got)
	}
	u := universeOf(t, d)
	if got := u.NumCandidates(); got != 11 {
		// 3 ages + 2 vax + 6 pairs = 11.
		t.Errorf("ε = %d, want 11", got)
	}
	vals := seriesOf(t, d)
	// Deaths decline into summer then rise in the delta wave.
	if vals[10] >= vals[0] {
		t.Errorf("week-24 deaths %g should be below week-14 %g", vals[10], vals[0])
	}
	peak := 0.0
	for _, v := range vals[15:] {
		peak = math.Max(peak, v)
	}
	if peak <= vals[0] {
		t.Errorf("delta peak %g should exceed the spring level %g", peak, vals[0])
	}
	// Unvaccinated dominate deaths early; their share shrinks late.
	unvax := func(week int) float64 {
		conj, _ := relation.NewConjunction(d.Rel, map[string]string{"vaccinated": "NO"})
		id, ok := u.Lookup(conj)
		if !ok {
			t.Fatal("vaccinated=NO missing")
		}
		return u.CandidateValues(id)[week] / vals[week]
	}
	if early := unvax(0); early < 0.8 {
		t.Errorf("early unvaccinated share = %g, want > 0.8", early)
	}
	if late := unvax(38); late > 0.75 {
		t.Errorf("late unvaccinated share = %g, want reduced", late)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := seriesOf(t, CovidTotal())
	b := seriesOf(t, CovidTotal())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("covid not deterministic at %d", i)
		}
	}
	sa := seriesOf(t, SP500())
	sb := seriesOf(t, SP500())
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sp500 not deterministic at %d", i)
		}
	}
}

func TestHelperShapes(t *testing.T) {
	if got := bump(10, 10, 5, 100); got != 100 {
		t.Errorf("bump at center = %g, want 100", got)
	}
	if got := bump(1000, 10, 5, 100); got > 1e-6 {
		t.Errorf("bump far away = %g, want ~0", got)
	}
	if ramp(5, 10, 20, 3) != 0 || ramp(25, 10, 20, 3) != 3 || ramp(15, 10, 20, 3) != 1.5 {
		t.Error("ramp endpoints/midpoint wrong")
	}
	if got := lerpSeq(5, []float64{0, 10}, []float64{0, 100}); got != 50 {
		t.Errorf("lerpSeq midpoint = %g, want 50", got)
	}
	if got := lerpSeq(-1, []float64{0, 10}, []float64{0, 100}); got != 0 {
		t.Errorf("lerpSeq before = %g, want 0", got)
	}
	if got := lerpSeq(99, []float64{0, 10}, []float64{0, 100}); got != 100 {
		t.Errorf("lerpSeq after = %g, want 100", got)
	}
	if got := strings3("real estate"); got != "REA" {
		t.Errorf("strings3 = %q", got)
	}
	if got := strings3("ab"); got != "ABX" {
		t.Errorf("strings3 short = %q", got)
	}
}
