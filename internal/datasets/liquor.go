package datasets

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/relation"
)

// liquorBV lists bottle volumes (ml) with sampling weights.
var liquorBV = []struct {
	v string
	w float64
}{
	{"200", 0.04}, {"375", 0.12}, {"500", 0.06}, {"750", 0.34},
	{"1000", 0.14}, {"1500", 0.05}, {"1750", 0.25},
}

// liquorPack lists bottles-per-pack values with sampling weights.
var liquorPack = []struct {
	v string
	w float64
}{
	{"1", 0.08}, {"2", 0.04}, {"6", 0.30}, {"12", 0.38}, {"24", 0.11}, {"48", 0.05},
}

// liquorCategories lists 24 category names, roughly Iowa's taxonomy.
var liquorCategories = []string{
	"American Vodkas", "American Flavored Vodka", "Canadian Whiskies",
	"Straight Bourbon Whiskies", "Spiced Rum", "Whiskey Liqueur",
	"Imported Vodkas", "Blended Whiskies", "Tennessee Whiskies",
	"American Brandies", "Cream Liqueurs", "100% Agave Tequila",
	"Mixto Tequila", "American Dry Gins", "Imported Brandies",
	"Scotch Whiskies", "White Rum", "Gold Rum", "Cocktails/RTD",
	"Irish Whiskies", "Imported Dry Gins", "Triple Sec",
	"American Schnapps", "Peppermint Schnapps",
}

// liquorVendors lists 40 vendor names.
var liquorVendors = []string{
	"Diageo Americas", "Sazerac Company", "Jim Beam Brands",
	"Heaven Hill Brands", "Luxco", "Pernod Ricard USA",
	"Bacardi USA", "Fifth Generation", "Constellation Brands",
	"Brown-Forman Corp", "E & J Gallo Winery", "Proximo Spirits",
	"Campari America", "Phillips Beverage", "McCormick Distilling",
	"Moet Hennessy USA", "William Grant & Sons", "Infinium Spirits",
	"MHW Ltd", "Prestige Beverage", "Stoli Group", "Edrington Americas",
	"Remy Cointreau USA", "Disaronno International", "Mast-Jaegermeister",
	"Beam Suntory", "Wilson Daniels", "Duggan's Distillers",
	"Palm Bay International", "Shaw Ross International", "Hood River",
	"Laird & Company", "Niche Import Co", "Park Street Imports",
	"Patron Spirits", "Sovereign Brands", "Old Elk Distillery",
	"Ole Smoky Distillery", "Western Spirits", "Yahara Bay Distillers",
}

// liquorDayOf maps a 2020 calendar date onto the 128-point series index
// (evenly spaced reporting days between 2020-01-02 and 2020-06-30).
func liquorDayOf(month, day int) int {
	start := time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC)
	end := time.Date(2020, 6, 30, 0, 0, 0, 0, time.UTC)
	d := time.Date(2020, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	frac := d.Sub(start).Hours() / end.Sub(start).Hours()
	idx := int(frac*127 + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx > 127 {
		idx = 127
	}
	return idx
}

// liquorMultiplier returns the demand multiplier for a product with the
// given attributes at series index d, encoding the Table 5 narrative:
// post-holiday dip of P=12/P=6, the pandemic shift to large packs
// (P=12/24/48), the BV=1000 collapse when Iowa closed bars on ~3/17 and
// its recovery after the late-April reopening, and the BV=1750&P=6 /
// BV=750&P=12 stock-up surges.
func liquorMultiplier(bv, pack string, d int) float64 {
	f := float64(d)
	jan20 := float64(liquorDayOf(1, 20))
	mar6 := float64(liquorDayOf(3, 6))
	mar31 := float64(liquorDayOf(3, 31))
	apr21 := float64(liquorDayOf(4, 21))
	may8 := float64(liquorDayOf(5, 8))
	jun10 := float64(liquorDayOf(6, 10))
	end := 127.0

	m := 1.0
	switch pack {
	case "12":
		m *= lerpSeq(f, []float64{0, jan20, mar6, mar31, apr21, may8, jun10, end},
			[]float64{1.35, 0.95, 1.30, 1.32, 1.62, 1.60, 1.50, 1.78})
	case "6":
		m *= lerpSeq(f, []float64{0, jan20, mar6, apr21, may8, end},
			[]float64{1.20, 0.92, 1.12, 1.12, 1.30, 1.30})
	case "48":
		m *= lerpSeq(f, []float64{0, jan20, mar6, end},
			[]float64{1.00, 1.00, 1.55, 1.55})
	case "24":
		m *= lerpSeq(f, []float64{0, mar31, apr21, jun10, end},
			[]float64{1.00, 1.00, 1.28, 1.28, 1.52})
	}
	switch bv {
	case "1000":
		// Bar-channel volume: collapses with the 3/17 closure order,
		// recovers with the late-April reopening.
		m *= lerpSeq(f, []float64{0, mar6, mar31, may8, jun10, end},
			[]float64{1.00, 1.00, 0.22, 0.25, 1.15, 1.15})
	case "375":
		if pack == "24" {
			m *= lerpSeq(f, []float64{0, jan20, end}, []float64{1.25, 0.82, 0.82})
		}
	}
	if bv == "1750" && pack == "6" {
		m *= lerpSeq(f, []float64{0, mar6, mar31, apr21, may8, jun10, end},
			[]float64{1.00, 1.00, 1.55, 1.18, 1.18, 0.92, 1.30})
	}
	if bv == "750" && pack == "12" {
		m *= lerpSeq(f, []float64{0, mar6, mar31, may8, jun10, end},
			[]float64{1.00, 1.00, 1.42, 1.42, 1.12, 1.12})
	}
	if bv == "1000" && pack == "12" {
		m *= lerpSeq(f, []float64{0, apr21, may8, end},
			[]float64{1.00, 1.00, 1.65, 1.65})
	}
	if bv == "1750" && pack == "12" {
		m *= lerpSeq(f, []float64{0, apr21, may8, end},
			[]float64{1.00, 1.00, 0.72, 0.72})
	}
	return m
}

// lerpSeq piecewise-linearly interpolates values at the given knots.
func lerpSeq(x float64, knots, values []float64) float64 {
	if x <= knots[0] {
		return values[0]
	}
	for i := 1; i < len(knots); i++ {
		if x <= knots[i] {
			span := knots[i] - knots[i-1]
			if span == 0 {
				return values[i]
			}
			frac := (x - knots[i-1]) / span
			return values[i-1] + frac*(values[i]-values[i-1])
		}
	}
	return values[len(values)-1]
}

// Liquor generates the simulated Iowa liquor-sales dataset: one row per
// (date, product) with the day's Bottles Sold, over 128 reporting days
// from 2020-01-02 to 2020-06-30, with explain-by attributes Bottle Volume
// (BV), Pack (P), Category Name (CN), and Vendor Name (VN). Roughly 2400
// distinct products give a candidate count in the Table 6 ballpark
// (ε ≈ 8200 at order ≤ 3), most of which the support filter prunes.
func Liquor() *Dataset {
	liquorOnce.Do(buildLiquor)
	return &Dataset{
		Name:         "liquor",
		Rel:          liquorRel,
		Measure:      "Bottles Sold",
		Agg:          relation.Sum,
		ExplainBy:    []string{"Bottle Volume (ml)", "Pack", "Category Name", "Vendor Name"},
		MaxOrder:     3,
		SmoothWindow: 5,
	}
}

var (
	liquorOnce sync.Once
	liquorRel  *relation.Relation
)

// buildLiquor materializes the relation once (the generator is
// deterministic).
func buildLiquor() {
	rng := rand.New(rand.NewSource(20200630))
	const days = 128
	const products = 3200
	labels := spacedDateLabels(
		time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 6, 30, 0, 0, 0, 0, time.UTC),
		days)

	pick := func(options []struct {
		v string
		w float64
	}) string {
		r := rng.Float64()
		var acc float64
		for _, o := range options {
			acc += o.w
			if r <= acc {
				return o.v
			}
		}
		return options[len(options)-1].v
	}
	zipfPick := func(names []string) string {
		// Skewed categorical draw: a few heads dominate, like real
		// category/vendor distributions.
		r := rng.Float64()
		idx := int(float64(len(names)) * r * r)
		if idx >= len(names) {
			idx = len(names) - 1
		}
		return names[idx]
	}

	type product struct {
		bv, pack, cat, vendor string
		base                  float64
	}
	seen := make(map[string]bool)
	var prods []product
	for len(prods) < products {
		p := product{
			bv:     pick(liquorBV),
			pack:   pick(liquorPack),
			cat:    zipfPick(liquorCategories),
			vendor: zipfPick(liquorVendors),
		}
		key := p.bv + "|" + p.pack + "|" + p.cat + "|" + p.vendor
		if seen[key] {
			continue
		}
		seen[key] = true
		// Base daily volume: heavy-tailed so the filter prunes most
		// products, as Table 6's filtered ε shows.
		u := rng.Float64()
		p.base = 1.5 + 2000*u*u*u*u*u*u*u*u
		prods = append(prods, p)
	}

	b := relation.NewBuilder("liquor", "date",
		[]string{"Bottle Volume (ml)", "Pack", "Category Name", "Vendor Name"},
		[]string{"Bottles Sold"})
	b.SetTimeOrder(labels)
	for d := 0; d < days; d++ {
		for _, p := range prods {
			q := p.base * liquorMultiplier(p.bv, p.pack, d) * jitter(rng, 0.15)
			// Weekend purchase bump, a realistic weekly texture.
			if wd := d % 6; wd == 4 || wd == 5 {
				q *= 1.2
			}
			qty := float64(int(q))
			if qty <= 0 {
				continue
			}
			if err := b.Append(labels[d],
				[]string{p.bv, p.pack, p.cat, p.vendor},
				[]float64{qty}); err != nil {
				panic("datasets: liquor append: " + err.Error())
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		panic("datasets: liquor finish: " + err.Error())
	}
	liquorRel = rel
}

// LiquorProductsKey is exported for tests that need to recompute the
// distinct-product key format.
func LiquorProductsKey(bv, pack, cat, vendor string) string {
	return fmt.Sprintf("%s|%s|%s|%s", bv, pack, cat, vendor)
}
