package datasets

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/relation"
)

// covidStates lists the 58 reporting jurisdictions of the JHU dashboard:
// 50 states, DC, 5 territories, and the two cruise ships.
var covidStates = []string{
	"Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
	"Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
	"Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
	"Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
	"Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
	"New Hampshire", "New Jersey", "New Mexico", "New York",
	"North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
	"Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
	"Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
	"West Virginia", "Wisconsin", "Wyoming", "District of Columbia",
	"Puerto Rico", "Guam", "Virgin Islands", "American Samoa",
	"Northern Mariana Islands", "Diamond Princess", "Grand Princess",
}

// covidWave describes one epidemic wave for a state: a Gaussian bump of
// daily cases centered at a day offset from 2020-01-22.
type covidWave struct {
	center float64 // day offset of the peak
	width  float64 // bump width in days
	peak   float64 // daily cases at the peak
}

// covidProfile gives each state a population-scaled baseline and its wave
// structure. States not listed get a generic small-state profile derived
// from their index.
var covidProfile = map[string][]covidWave{
	// The early outbreak: WA first, then the NY/NJ/MA/CT spring wave.
	"Washington":    {{55, 12, 400}, {200, 40, 600}, {320, 25, 2200}},
	"New York":      {{78, 14, 10500}, {210, 45, 700}, {330, 30, 9000}},
	"New Jersey":    {{82, 13, 3900}, {215, 45, 400}, {330, 30, 4500}},
	"Massachusetts": {{85, 14, 2600}, {220, 45, 350}, {330, 28, 4200}},
	"Connecticut":   {{86, 13, 1200}, {225, 45, 150}, {330, 28, 1900}},
	"Pennsylvania":  {{88, 16, 1700}, {230, 45, 400}, {330, 26, 7200}},
	// The summer sunbelt wave: FL/TX/AZ/GA/CA.
	"Florida":    {{100, 20, 900}, {175, 18, 10500}, {340, 35, 9500}},
	"Texas":      {{105, 20, 1100}, {178, 19, 9800}, {335, 35, 11500}},
	"Arizona":    {{108, 18, 350}, {172, 15, 3600}, {335, 28, 5800}},
	"Georgia":    {{104, 20, 700}, {180, 20, 3500}, {338, 30, 5500}},
	"California": {{110, 25, 1800}, {185, 25, 8800}, {337, 26, 36000}},
	// The midwest fall wave: IL/WI/MI/MN and the Dakotas.
	"Illinois":     {{95, 18, 2200}, {130, 25, 1800}, {295, 22, 11500}},
	"Wisconsin":    {{115, 20, 350}, {290, 22, 5700}, {340, 25, 2800}},
	"Michigan":     {{90, 14, 1500}, {295, 22, 6500}, {340, 22, 3500}},
	"Minnesota":    {{120, 20, 400}, {300, 20, 5800}, {345, 20, 2500}},
	"North Dakota": {{130, 25, 80}, {295, 20, 1300}},
	"South Dakota": {{130, 25, 90}, {298, 20, 1250}},
	// Other populous states with blended waves.
	"Ohio":                 {{100, 20, 900}, {200, 30, 1100}, {330, 25, 9500}},
	"North Carolina":       {{110, 22, 600}, {185, 25, 2000}, {335, 28, 6000}},
	"Tennessee":            {{110, 22, 500}, {190, 25, 2000}, {330, 25, 7800}},
	"Indiana":              {{95, 18, 700}, {200, 30, 800}, {320, 25, 6300}},
	"Louisiana":            {{85, 12, 1300}, {175, 18, 2400}, {335, 28, 2700}},
	"Maryland":             {{95, 18, 1000}, {210, 35, 700}, {335, 28, 2500}},
	"Virginia":             {{100, 20, 800}, {205, 32, 900}, {340, 30, 3700}},
	"Missouri":             {{100, 20, 400}, {210, 30, 1300}, {310, 25, 4200}},
	"Alabama":              {{105, 20, 400}, {185, 22, 1700}, {335, 28, 3800}},
	"South Carolina":       {{108, 20, 350}, {180, 20, 1800}, {340, 28, 3300}},
	"Mississippi":          {{105, 20, 350}, {182, 22, 1300}, {335, 28, 2300}},
	"Oklahoma":             {{110, 22, 250}, {200, 28, 1000}, {320, 25, 3400}},
	"Colorado":             {{92, 16, 500}, {205, 35, 500}, {305, 22, 5200}},
	"Nevada":               {{100, 18, 300}, {182, 20, 1100}, {330, 26, 2600}},
	"Utah":                 {{115, 22, 300}, {195, 25, 700}, {315, 25, 3500}},
	"Iowa":                 {{115, 20, 350}, {290, 20, 3900}, {340, 22, 1700}},
	"Kansas":               {{115, 20, 250}, {295, 22, 2400}, {340, 22, 1500}},
	"Kentucky":             {{105, 20, 300}, {215, 35, 600}, {330, 26, 3400}},
	"Oregon":               {{95, 18, 200}, {195, 28, 350}, {335, 28, 1500}},
	"New Mexico":           {{105, 20, 200}, {210, 30, 350}, {315, 22, 2700}},
	"Arkansas":             {{110, 22, 250}, {195, 25, 800}, {330, 26, 2900}},
	"Nebraska":             {{118, 22, 300}, {292, 22, 2300}, {340, 22, 1100}},
	"West Virginia":        {{115, 22, 100}, {225, 35, 200}, {338, 28, 1400}},
	"Idaho":                {{112, 20, 150}, {200, 28, 500}, {320, 26, 1600}},
	"Montana":              {{115, 22, 60}, {290, 22, 900}, {340, 22, 500}},
	"Wyoming":              {{118, 22, 40}, {295, 22, 600}, {340, 22, 300}},
	"Maine":                {{100, 20, 60}, {230, 40, 60}, {340, 28, 500}},
	"New Hampshire":        {{98, 18, 90}, {228, 40, 80}, {340, 28, 800}},
	"Vermont":              {{98, 18, 60}, {235, 40, 30}, {342, 28, 180}},
	"Rhode Island":         {{90, 15, 350}, {225, 40, 120}, {332, 26, 1300}},
	"Delaware":             {{95, 18, 180}, {215, 35, 120}, {335, 28, 800}},
	"Hawaii":               {{105, 20, 40}, {205, 22, 250}, {340, 30, 120}},
	"Alaska":               {{110, 22, 30}, {230, 35, 120}, {320, 25, 750}},
	"District of Columbia": {{92, 16, 200}, {215, 35, 90}, {335, 28, 300}},
	"Puerto Rico":          {{110, 25, 150}, {215, 30, 500}, {335, 28, 1000}},
	"Guam":                 {{120, 25, 15}, {250, 30, 80}, {330, 25, 60}},
	"Virgin Islands":       {{125, 25, 8}, {225, 30, 25}, {335, 25, 25}},
	// Tiny jurisdictions that fall under the support filter, matching the
	// paper's filtered ε = 54/55 of 58.
	"American Samoa":           {},
	"Northern Mariana Islands": {{150, 40, 1.5}},
	"Diamond Princess":         {{35, 6, 8}},
	"Grand Princess":           {{48, 5, 6}},
}

// Covid generates the simulated JHU dataset: one row per (date, state)
// from 2020-01-22 to 2020-12-31 (345 days) with measures
// daily-confirmed-cases and total-confirmed-cases. The wave structure
// reproduces the case-study narrative: WA/NY/CA start the outbreak,
// NY/NJ/MA drive the spring wave, FL/TX/CA the summer wave, IL and the
// midwest the fall wave, and CA/TX/NY the winter surge.
func Covid() *Dataset {
	covidOnce.Do(buildCovid)
	return &Dataset{
		Name:      "covid",
		Rel:       covidRel,
		Measure:   "total-confirmed-cases",
		Agg:       relation.Sum,
		ExplainBy: []string{"state"},
		MaxOrder:  1,
	}
}

var (
	covidOnce sync.Once
	covidRel  *relation.Relation
)

// buildCovid materializes the covid relation once; generators are
// deterministic, so caching is safe and keeps tests and benchmarks fast.
func buildCovid() {
	rng := rand.New(rand.NewSource(20200122))
	start := time.Date(2020, 1, 22, 0, 0, 0, 0, time.UTC)
	const days = 345
	labels := dateLabels(start, days)

	b := relation.NewBuilder("covid", "date", []string{"state"}, []string{"daily-confirmed-cases", "total-confirmed-cases"})
	b.SetTimeOrder(labels)
	for _, state := range covidStates {
		waves := covidProfile[state]
		var total float64
		for d := 0; d < days; d++ {
			var daily float64
			for _, w := range waves {
				daily += bump(float64(d), w.center, w.width, w.peak)
			}
			// Reporting noise, including the weekend dip real data shows.
			daily *= jitter(rng, 0.08)
			if wd := (d + 3) % 7; wd == 0 || wd == 6 {
				daily *= 0.82
			}
			if daily < 0 {
				daily = 0
			}
			daily = float64(int(daily))
			total += daily
			if err := b.Append(labels[d], []string{state}, []float64{daily, total}); err != nil {
				panic("datasets: covid append: " + err.Error())
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		panic("datasets: covid finish: " + err.Error())
	}
	covidRel = rel
}

// CovidTotal returns the total-confirmed-cases query of Figure 11.
func CovidTotal() *Dataset {
	d := Covid()
	d.Name = "total-confirmed-cases"
	d.Measure = "total-confirmed-cases"
	return d
}

// CovidDaily returns the daily-confirmed-cases query of Figure 12. The
// daily series is fuzzy, so the paper smooths it with a moving average
// before explaining.
func CovidDaily() *Dataset {
	d := Covid()
	d.Name = "daily-confirmed-cases"
	d.Measure = "daily-confirmed-cases"
	d.SmoothWindow = 7
	return d
}
