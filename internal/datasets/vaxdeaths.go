package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/relation"
)

// VaxDeaths generates the simulated CDC weekly-deaths dataset of the
// time-varying-attribute discussion (Section 8, Figure 18): weekly Covid
// deaths from week 14 to week 52 of 2021, broken down by age-group
// (<30, 30-49, 50+) and vaccination status (NO/YES). vaccinated is a
// time-varying attribute: the unvaccinated population shrinks over the
// year as uptake grows.
//
// The generated dynamics reproduce the figure's narrative: through week
// ~31 the declining spring-wave deaths are dominated by the unvaccinated
// of every age; from late summer the delta/winter rise is dominated by
// people aged 50+, vaccinated or not, because younger people are by then
// broadly protected.
func VaxDeaths() *Dataset {
	vaxOnce.Do(buildVaxDeaths)
	return &Dataset{
		Name:      "vax-deaths",
		Rel:       vaxRel,
		Measure:   "deaths",
		Agg:       relation.Sum,
		ExplainBy: []string{"age-group", "vaccinated"},
		MaxOrder:  2,
	}
}

var (
	vaxOnce sync.Once
	vaxRel  *relation.Relation
)

// buildVaxDeaths materializes the relation once (the generator is
// deterministic).
func buildVaxDeaths() {
	rng := rand.New(rand.NewSource(2021))
	const first, last = 14, 52
	var labels []string
	for w := first; w <= last; w++ {
		labels = append(labels, fmt.Sprintf("w%02d", w))
	}

	ages := []string{"<30", "30-49", "50+"}
	// Baseline share of deaths by age (deaths skew heavily old).
	ageShare := map[string]float64{"<30": 0.03, "30-49": 0.14, "50+": 0.83}

	b := relation.NewBuilder("vax-deaths", "week",
		[]string{"age-group", "vaccinated"}, []string{"deaths"})
	b.SetTimeOrder(labels)
	for i, label := range labels {
		w := float64(first + i)
		// Total weekly deaths: spring wave declining into July (week ~27),
		// delta wave rising to a peak near week 38, easing, then winter
		// rise at the end of the year.
		total := 5200*decay(w, 14, 10) + bump(w, 38, 5.5, 11000) + ramp(w, 46, 52, 6000) + 700
		// Unvaccinated share of deaths declines as vaccination expands;
		// it declines fastest for the young.
		unvaxBase := 0.96 - ramp(w, 16, 52, 0.45)
		for _, age := range ages {
			share := ageShare[age]
			unvax := unvaxBase
			switch age {
			case "<30":
				unvax -= ramp(w, 20, 40, 0.10)
			case "30-49":
				unvax -= ramp(w, 20, 44, 0.05)
			case "50+":
				// Elders: vaccinated deaths grow in the delta wave because
				// protection wanes with age.
				unvax -= ramp(w, 24, 52, 0.18)
			}
			if unvax < 0.05 {
				unvax = 0.05
			}
			for _, vax := range []string{"NO", "YES"} {
				frac := unvax
				if vax == "YES" {
					frac = 1 - unvax
				}
				deaths := total * share * frac * jitter(rng, 0.04)
				deaths = float64(int(deaths))
				if err := b.Append(label, []string{age, vax}, []float64{deaths}); err != nil {
					panic("datasets: vax-deaths append: " + err.Error())
				}
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		panic("datasets: vax-deaths finish: " + err.Error())
	}
	vaxRel = rel
}

// decay is an exponential decay starting at 1 when t = start, with the
// given time constant.
func decay(t, start, width float64) float64 {
	if t < start {
		return 1
	}
	return math.Exp(-(t - start) / width)
}
