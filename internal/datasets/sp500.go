package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/relation"
)

// spSector describes one GICS-style sector: its subcategories and how
// many of the 503 index members it holds.
type spSector struct {
	name    string
	subcats []string
	stocks  int
}

// spSectors reproduces the hierarchy cardinalities of the paper's S&P 500
// dataset: 11 categories, 96 subcategories, 503 stocks, so the candidate
// count ε = 503 + 96 + 11 = 610 matches Table 6.
var spSectors = []spSector{
	{"technology", []string{"software", "semiconductors", "hardware",
		"it-services", "cloud", "networking", "payments-tech",
		"electronics", "storage", "cybersecurity"}, 75},
	{"healthcare", []string{"pharma", "biotech", "medical-devices",
		"health-insurance", "life-sciences", "hospitals", "diagnostics",
		"healthcare-it", "distribution"}, 62},
	{"financial", []string{"banks", "insurance", "asset-management",
		"consumer-finance", "exchanges", "regional-banks", "reinsurance",
		"brokerage", "trust-banks"}, 66},
	{"consumer cyclical", []string{"internet retail", "restaurants",
		"apparel", "autos", "home-improvement", "hotels", "cruise-lines",
		"specialty-retail", "leisure", "homebuilders"}, 60},
	{"industrials", []string{"aerospace", "airlines", "railroads",
		"machinery", "defense", "logistics", "construction",
		"electrical-equipment", "conglomerates", "waste",
		"building-products", "staffing"}, 70},
	{"consumer defensive", []string{"beverages", "household-products",
		"packaged-foods", "discount-stores", "tobacco", "grocers",
		"personal-products", "food-distribution"}, 35},
	{"energy", []string{"oil-majors", "exploration", "pipelines",
		"refining", "oil-services"}, 23},
	{"utilities", []string{"electric", "gas", "water", "renewables",
		"multi-utilities"}, 28},
	{"real estate", []string{"data-center-reits", "residential-reits",
		"retail-reits", "office-reits", "industrial-reits", "tower-reits",
		"healthcare-reits", "storage-reits"}, 29},
	{"materials", []string{"chemicals", "industrial-gases", "miners",
		"gold", "packaging", "construction-materials", "steel", "paints",
		"agriculture", "specialty-chemicals"}, 28},
	{"communication", []string{"internet-media", "telecom", "cable",
		"entertainment", "gaming", "advertising", "streaming",
		"social-media", "publishing", "wireless"}, 27},
}

// spKeyDates maps the narrative dates of Figure 13 onto the 151-point
// series (evenly spaced trading days between 2020-01-02 and 2020-10-01).
func spIndexOf(month, day int) int {
	start := time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC)
	end := time.Date(2020, 10, 1, 0, 0, 0, 0, time.UTC)
	d := time.Date(2020, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	frac := d.Sub(start).Hours() / end.Sub(start).Hours()
	return int(math.Round(frac * 150))
}

// spMarket returns the common market factor at point t of 151: rise into
// 2/19, crash −32% into 3/23, rebound past the old high by 8/25, then the
// September dip.
func spMarket(t int) float64 {
	peak1 := float64(spIndexOf(2, 19))
	trough := float64(spIndexOf(3, 23))
	peak2 := float64(spIndexOf(8, 25))
	dip := float64(spIndexOf(9, 23))
	ft := float64(t)
	switch {
	case ft <= peak1:
		return 1.00 + 0.05*ft/peak1
	case ft <= trough:
		return 1.05 - 0.37*(ft-peak1)/(trough-peak1)
	case ft <= peak2:
		return 0.68 + 0.42*(ft-trough)/(peak2-trough)
	case ft <= dip:
		return 1.10 - 0.08*(ft-peak2)/(dip-peak2)
	default:
		return 1.02 + 0.02*(ft-dip)/(150-dip)
	}
}

// spSectorAdj returns the sector- and subcategory-specific multiplicative
// adjustment at point t, encoding the Figure 13 narrative: tech leads the
// pre-crash rise, the crash (by sheer weight), the rebound, and the
// September drop; financial crashes harder and never rebounds; energy
// declines throughout; internet retail rises before the crash and
// strongly afterwards.
func spSectorAdj(sector, subcat string, t int) float64 {
	ft := float64(t)
	crashStart := float64(spIndexOf(2, 6))
	trough := float64(spIndexOf(3, 23))
	peak2 := float64(spIndexOf(8, 25))
	adj := 1.0
	switch sector {
	case "technology":
		adj += 0.06 * ramp(ft, 0, crashStart, 1) // pre-crash leadership
		adj += 0.30 * ramp(ft, trough, peak2, 1) // rebound leadership
		adj -= 0.10 * ramp(ft, peak2, 150, 1)    // September drop
	case "communication":
		adj += 0.12 * ramp(ft, trough, peak2, 1)
		adj -= 0.05 * ramp(ft, peak2, 150, 1)
	case "financial":
		adj -= 0.15 * ramp(ft, crashStart, trough, 1) // crashes harder
		// No rebound: the drag persists to the end of the series.
	case "energy":
		adj -= 0.10 * ramp(ft, 0, crashStart, 1) // slides before the crash
		adj -= 0.30 * ramp(ft, crashStart, 150, 1)
	case "consumer cyclical":
		adj += 0.10 * ramp(ft, trough, peak2, 1)
	}
	if subcat == "internet retail" {
		adj += 0.08 * ramp(ft, 0, crashStart, 1)
		adj += 0.25 * ramp(ft, trough, peak2, 1)
	}
	if adj < 0.05 {
		adj = 0.05
	}
	return adj
}

// SP500 generates the simulated index dataset: one row per (date, stock)
// with the stock's weighted contribution price·share/divisor, under the
// three-level hierarchy category → subcategory → stock. Aggregating
// weighted-price with SUM yields the index series of Figure 13.
//
// Because the attributes form a strict hierarchy (every stock belongs to
// exactly one subcategory and category), conjunctions across levels are
// redundant with their finest predicate, so the dataset's MaxOrder is 1
// and ε = 503 + 96 + 11 = 610 as in Table 6.
func SP500() *Dataset {
	spOnce.Do(buildSP500)
	return &Dataset{
		Name:      "sp500",
		Rel:       spRel,
		Measure:   "weighted-price",
		Agg:       relation.Sum,
		ExplainBy: []string{"category", "subcategory", "stock"},
		MaxOrder:  1,
	}
}

var (
	spOnce sync.Once
	spRel  *relation.Relation
)

// buildSP500 materializes the relation once (the generator is
// deterministic).
func buildSP500() {
	rng := rand.New(rand.NewSource(20200102))
	const points = 151
	labels := spacedDateLabels(
		time.Date(2020, 1, 2, 0, 0, 0, 0, time.UTC),
		time.Date(2020, 10, 1, 0, 0, 0, 0, time.UTC),
		points)

	// Build the stock universe with Zipf-skewed index weights so large
	// caps dominate, as in the real index.
	type stock struct {
		ticker, sector, subcat string
		weight                 float64 // share count × base price scale
		beta                   float64 // sensitivity to the market factor
	}
	var stocks []stock
	rank := 1
	for _, sec := range spSectors {
		for i := 0; i < sec.stocks; i++ {
			sub := sec.subcats[i%len(sec.subcats)]
			stocks = append(stocks, stock{
				ticker: fmt.Sprintf("%s%03d", strings3(sec.name), rank),
				sector: sec.name,
				subcat: sub,
				weight: math.Pow(float64(rank), -0.75),
				beta:   0.85 + rng.Float64()*0.5,
			})
			rank++
		}
	}
	// One internet-retail stock carries AMZN-like weight, so the
	// subcategory can surface in the pre-crash segment as in Table 4.
	for i := range stocks {
		if stocks[i].subcat == "internet retail" {
			stocks[i].weight *= 25
			break
		}
	}
	// Normalize weights so the starting index level is about 3230 (the
	// real 2020-01-02 close).
	var wsum float64
	for _, s := range stocks {
		wsum += s.weight
	}
	scale := 3230.0 / wsum

	// Per-stock idiosyncratic random walks, fixed up front so the series
	// is deterministic and smooth.
	idio := make([][]float64, len(stocks))
	for i := range stocks {
		walk := make([]float64, points)
		v := 1.0
		for t := 0; t < points; t++ {
			v *= 1 + rng.NormFloat64()*0.004
			if v < 0.5 {
				v = 0.5
			}
			walk[t] = v
		}
		idio[i] = walk
	}

	b := relation.NewBuilder("sp500", "date",
		[]string{"category", "subcategory", "stock"},
		[]string{"weighted-price"})
	b.SetTimeOrder(labels)
	for t := 0; t < points; t++ {
		market := spMarket(t)
		for i, s := range stocks {
			adj := spSectorAdj(s.sector, s.subcat, t)
			// Blend the market move through the stock's beta.
			factor := (1 + (market-1)*s.beta) * adj * idio[i][t]
			contrib := s.weight * scale * factor
			if err := b.Append(labels[t],
				[]string{s.sector, s.subcat, s.ticker},
				[]float64{contrib}); err != nil {
				panic("datasets: sp500 append: " + err.Error())
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		panic("datasets: sp500 finish: " + err.Error())
	}
	spRel = rel
}

// strings3 returns an uppercase three-letter prefix for ticker synthesis.
func strings3(s string) string {
	out := make([]byte, 0, 3)
	for i := 0; i < len(s) && len(out) < 3; i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			out = append(out, c-'a'+'A')
		}
	}
	for len(out) < 3 {
		out = append(out, 'X')
	}
	return string(out)
}
