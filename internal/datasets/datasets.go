// Package datasets provides deterministic simulated versions of the four
// real-world datasets in the paper's evaluation (Section 7.1 and 8):
// Covid (daily/total confirmed cases by state), S&P 500 (stock index with
// a category → subcategory → stock hierarchy), Liquor (purchase
// transactions with four explain-by attributes), and the weekly Covid
// deaths by age group and vaccination status used in the time-varying
// attribute discussion.
//
// The real datasets cannot be downloaded in this offline build, so each
// generator reproduces the published schema, cardinalities, series
// lengths, and the qualitative driver structure the paper's case studies
// rely on (which slices drive which period). Every generator is
// deterministic: the same call always returns the same relation, so
// experiments and tests are reproducible. The engine consumes these
// relations through exactly the same code path as a CSV loaded from disk.
package datasets

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/relation"
)

// Dataset bundles a generated relation with the query the paper's
// experiments run against it.
type Dataset struct {
	// Name identifies the dataset in experiment output.
	Name string
	// Rel is the generated relation.
	Rel *relation.Relation
	// Measure is the measure attribute the aggregated series uses.
	Measure string
	// Agg is the aggregate function.
	Agg relation.AggFunc
	// ExplainBy lists the explain-by attributes.
	ExplainBy []string
	// Hierarchies lists coarse-to-fine level chains among the explain-by
	// attributes (core.Options.Hierarchies); nil for flat datasets. The
	// generators also pre-declare them on Rel, so passing them through is
	// idempotent.
	Hierarchies [][]string
	// MaxOrder is the explanation order threshold β̄ for this dataset.
	MaxOrder int
	// SmoothWindow is the moving-average window applied before
	// explaining; 0 disables smoothing (Section 7.4 applies smoothing to
	// very fuzzy datasets).
	SmoothWindow int
	// ApproxMaxCandidates and ApproxEpsilon are the dataset's defaults for
	// approximate-mode requests (mode=approx); zero values fall back to
	// the engine defaults (4096 candidates, ε = 0.05). Catalog datasets
	// declare them in their manifests.
	ApproxMaxCandidates int
	ApproxEpsilon       float64
}

// dateLabels returns count consecutive daily labels starting at start, in
// ISO yyyy-mm-dd form.
func dateLabels(start time.Time, count int) []string {
	out := make([]string, count)
	for i := range out {
		out[i] = start.AddDate(0, 0, i).Format("2006-01-02")
	}
	return out
}

// spacedDateLabels returns count labels evenly spaced between start and
// end inclusive, for series whose real-world counterpart skips
// non-trading or non-reporting days.
func spacedDateLabels(start, end time.Time, count int) []string {
	out := make([]string, count)
	total := end.Sub(start)
	for i := range out {
		frac := float64(i) / float64(count-1)
		out[i] = start.Add(time.Duration(frac * float64(total))).Format("2006-01-02")
	}
	return out
}

// bump evaluates a Gaussian bump: amp·exp(−(t−center)²/(2·width²)).
// It is the building block for epidemic waves and demand surges.
func bump(t, center, width, amp float64) float64 {
	d := (t - center) / width
	return amp * math.Exp(-d*d/2)
}

// ramp evaluates a linear ramp that is 0 before from, rises to amp at to,
// and stays at amp afterwards.
func ramp(t, from, to, amp float64) float64 {
	switch {
	case t <= from:
		return 0
	case t >= to:
		return amp
	default:
		return amp * (t - from) / (to - from)
	}
}

// jitter returns a multiplicative noise factor 1 + scale·N(0,1), clamped
// to stay positive.
func jitter(rng *rand.Rand, scale float64) float64 {
	f := 1 + rng.NormFloat64()*scale
	if f < 0.05 {
		f = 0.05
	}
	return f
}
