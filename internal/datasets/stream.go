// Streaming workload: the three-wave epidemic the streaming example,
// the /api/stream demo endpoint, the append-path equivalence tests, and
// the BENCH_streaming.json benchmark all share. Per-county daily case
// counts arrive day by day; NY drives days 0–39, TX days 40–79, CA days
// 80 on — and FL starts reporting only at day 90, so the stream
// introduces a brand-new attribute value (and its county slices)
// mid-flight, exercising delta-born candidate registration.

package datasets

import (
	"fmt"
	"time"

	"repro/internal/relation"
)

// StreamDays is the full length of the streaming demo series.
const StreamDays = 120

// streamState describes one state's wave: cases rise by slope on every
// day transition in (rampFrom, rampTo] and hold outside, split across six
// counties by fixed shares. The waves abut exactly — NY's last rise is
// 38→39, TX's first is 39→40 — so each wave boundary is a single crisp
// cutting point. States with from > 0 report nothing before that day:
// their slices simply do not exist in earlier data.
type streamState struct {
	name             string
	from             int
	base             float64
	slope            float64
	rampFrom, rampTo int
	shares           [6]float64
}

var streamStates = []streamState{
	{name: "NY", base: 50, slope: 30, rampFrom: 0, rampTo: 39,
		shares: [6]float64{0.30, 0.22, 0.16, 0.13, 0.11, 0.08}},
	{name: "TX", base: 50, slope: 40, rampFrom: 39, rampTo: 79,
		shares: [6]float64{0.32, 0.21, 0.17, 0.12, 0.10, 0.08}},
	{name: "CA", base: 50, slope: 55, rampFrom: 79, rampTo: 119,
		shares: [6]float64{0.28, 0.24, 0.15, 0.13, 0.12, 0.08}},
	{name: "FL", from: 90, base: 40, slope: 3, rampFrom: 89, rampTo: 119,
		shares: [6]float64{0.40, 0.25, 0.15, 0.10, 0.06, 0.04}},
}

var streamLabels = dateLabels(time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC), StreamDays)

// streamLevel is state s's total cases on the given day.
func streamLevel(s *streamState, day int) float64 {
	if day > s.rampTo {
		day = s.rampTo
	}
	steps := day - s.rampFrom
	if steps < 0 {
		steps = 0
	}
	return s.base + s.slope*float64(steps)
}

// StreamDelta returns one day's row batch, row-major in the shape
// Relation.AppendRows and Incremental.AppendRows consume.
func StreamDelta(day int) (timeVals []string, dims [][]string, measures [][]float64) {
	label := streamLabels[day]
	for si := range streamStates {
		s := &streamStates[si]
		if day < s.from {
			continue
		}
		level := streamLevel(s, day)
		for c, share := range s.shares {
			timeVals = append(timeVals, label)
			dims = append(dims, []string{s.name, fmt.Sprintf("c%d", c+1)})
			measures = append(measures, []float64{level * share})
		}
	}
	return timeVals, dims, measures
}

// Stream materializes the first days days of the streaming workload as a
// dataset, built through the same Builder path as every other dataset so
// it is byte-for-byte what a batch load of the prefix would produce.
func Stream(days int) *Dataset {
	if days > StreamDays {
		days = StreamDays
	}
	b := relation.NewBuilder("stream", "date", []string{"state", "county"}, []string{"cases"})
	b.SetTimeOrder(streamLabels[:days])
	for day := 0; day < days; day++ {
		timeVals, dims, measures := StreamDelta(day)
		for i := range timeVals {
			if err := b.Append(timeVals[i], dims[i], measures[i]); err != nil {
				panic(err)
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return &Dataset{
		Name:      "stream",
		Rel:       rel,
		Measure:   "cases",
		Agg:       relation.Sum,
		ExplainBy: []string{"state", "county"},
		MaxOrder:  2,
	}
}
