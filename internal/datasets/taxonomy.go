package datasets

import (
	"sync"

	"repro/internal/relation"
	"repro/internal/synth"
)

// The taxonomy dataset is the small deterministic variant of the synth
// taxonomy scenario (6 categories × 4 subcategories × 4 leaves, 64
// points): big enough that the drill-down DAG has real depth and the
// equi-depth price bins split meaningfully, small enough for the golden
// corpus. The full-size scenario (~50k leaves) stays behind
// cmd/datagen -scenario taxonomy and the hierarchy benchmark.

var (
	taxonomyOnce sync.Once
	taxonomyRel  *relation.Relation
)

func buildTaxonomy() {
	d, err := synth.Taxonomy(synth.TaxonomyParams{
		Cats: 6, SubcatsPerCat: 4, LeavesPerSubcat: 4,
		N: 64, Drivers: 6, Seed: 7,
	})
	if err != nil {
		panic("datasets: taxonomy generate: " + err.Error())
	}
	if err := d.Rel.DeclareHierarchy("cat>subcat>leaf", synth.TaxonomyLevels()); err != nil {
		panic("datasets: taxonomy hierarchy: " + err.Error())
	}
	if err := d.Rel.AddRangeBin("price_bin", "price", 4); err != nil {
		panic("datasets: taxonomy price_bin: " + err.Error())
	}
	taxonomyRel = d.Rel
}

// Taxonomy returns the hierarchical drill-down dataset: SUM(sales)
// explained by the three taxonomy levels plus the equi-depth price bin,
// order ≤ 2 (a taxonomy level optionally combined with a price bin —
// two levels of the taxonomy never combine).
func Taxonomy() *Dataset {
	taxonomyOnce.Do(buildTaxonomy)
	return &Dataset{
		Name:        "taxonomy",
		Rel:         taxonomyRel,
		Measure:     "sales",
		Agg:         relation.Sum,
		ExplainBy:   []string{"cat", "subcat", "leaf", "price_bin"},
		MaxOrder:    2,
		Hierarchies: [][]string{synth.TaxonomyLevels()},
	}
}
