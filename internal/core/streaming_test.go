package core

import (
	"fmt"
	"testing"

	"repro/internal/datasets"
	"repro/internal/relation"
)

// replayBuilder reconstructs, from scratch through the Builder path, the
// exact row sequence the incremental engine has ingested so far, so the
// from-scratch comparator explains byte-for-byte the same relation.
type replayBuilder struct {
	timeVals []string
	dims     [][]string
	measures [][]float64
}

func (rb *replayBuilder) append(timeVals []string, dims [][]string, measures [][]float64) {
	rb.timeVals = append(rb.timeVals, timeVals...)
	rb.dims = append(rb.dims, dims...)
	rb.measures = append(rb.measures, measures...)
}

func (rb *replayBuilder) relation(t *testing.T) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("stream", "date", []string{"state", "county"}, []string{"cases"})
	for i := range rb.timeVals {
		if err := b.Append(rb.timeVals[i], rb.dims[i], rb.measures[i]); err != nil {
			t.Fatal(err)
		}
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// sameResults asserts the two results agree on everything a user sees:
// segmentation, labels, series values, and every segment's ranked
// explanations with bit-identical scores.
func sameResults(t *testing.T, ctx string, got, want *Result) {
	t.Helper()
	if got.K != want.K || got.AutoK != want.AutoK {
		t.Fatalf("%s: K=%d autoK=%v, want K=%d autoK=%v", ctx, got.K, got.AutoK, want.K, want.AutoK)
	}
	if gc, wc := fmt.Sprint(got.Cuts()), fmt.Sprint(want.Cuts()); gc != wc {
		t.Fatalf("%s: cuts %s, want %s", ctx, gc, wc)
	}
	if got.TotalVariance != want.TotalVariance {
		t.Fatalf("%s: total variance %v, want %v", ctx, got.TotalVariance, want.TotalVariance)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: series length %d, want %d", ctx, len(got.Series), len(want.Series))
	}
	for i := range got.Series {
		if got.Series[i] != want.Series[i] {
			t.Fatalf("%s: series[%d] = %v, want %v", ctx, i, got.Series[i], want.Series[i])
		}
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: label[%d] = %q, want %q", ctx, i, got.Labels[i], want.Labels[i])
		}
	}
	for s := range got.Segments {
		g, w := got.Segments[s], want.Segments[s]
		if g.StartLabel != w.StartLabel || g.EndLabel != w.EndLabel {
			t.Fatalf("%s: segment %d spans %s~%s, want %s~%s", ctx, s, g.StartLabel, g.EndLabel, w.StartLabel, w.EndLabel)
		}
		if len(g.Top) != len(w.Top) {
			t.Fatalf("%s: segment %d has %d explanations, want %d", ctx, s, len(g.Top), len(w.Top))
		}
		for i := range g.Top {
			ge, we := g.Top[i], w.Top[i]
			if ge.Predicates != we.Predicates || ge.Effect != we.Effect || ge.Gamma != we.Gamma {
				t.Fatalf("%s: segment %d explanation %d = {%s %s γ=%v}, want {%s %s γ=%v}",
					ctx, s, i, ge.Predicates, ge.Effect, ge.Gamma, we.Predicates, we.Effect, we.Gamma)
			}
			for j := range ge.Values {
				if ge.Values[j] != we.Values[j] {
					t.Fatalf("%s: segment %d explanation %d value %d = %v, want %v",
						ctx, s, i, j, ge.Values[j], we.Values[j])
				}
			}
		}
	}
}

// TestIncrementalAppendFilterFlip streams a workload where a slice sits
// below the support-filter threshold for all of history and then crosses
// it mid-stream. The flip changes the selectable set for every segment,
// so the append path must drop its cached explanations (and its position
// restriction) for that update to stay identical to a from-scratch run.
func TestIncrementalAppendFilterFlip(t *testing.T) {
	opts := Options{FilterRatio: 0.01, MaxOrder: 1}
	day := func(d int) (ts []string, dims [][]string, meas [][]float64) {
		label := fmt.Sprintf("d%03d", d)
		big := 1000.0 + 10*float64(d)
		// tiny moves (nonzero γ, so it would be reported if selectable)
		// but stays below 1% of the total for all of history...
		tiny := 0.5 + 0.02*float64(d)
		if d >= 30 {
			// ...then crosses the threshold at day 30, flipping its
			// filter status for every cached early segment too.
			tiny = 400 + 5*float64(d-29)
		}
		for _, r := range []struct {
			s string
			v float64
		}{{"big", big}, {"mid", 200 + 3*float64(d)}, {"tiny", tiny}} {
			ts = append(ts, label)
			dims = append(dims, []string{r.s})
			meas = append(meas, []float64{r.v})
		}
		return
	}
	b := relation.NewBuilder("flip", "day", []string{"state"}, []string{"v"})
	var all struct {
		ts   []string
		dims [][]string
		meas [][]float64
	}
	addAll := func(ts []string, dims [][]string, meas [][]float64) {
		all.ts = append(all.ts, ts...)
		all.dims = append(all.dims, dims...)
		all.meas = append(all.meas, meas...)
	}
	for d := 0; d < 25; d++ {
		ts, dims, meas := day(d)
		addAll(ts, dims, meas)
		for i := range ts {
			if err := b.Append(ts[i], dims[i], meas[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	base, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Measure: "v", Agg: relation.Sum}
	inc, _, err := NewIncremental(base, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The compatibility snapshot path must handle the flip too.
	incSnap, _, err := NewIncremental(base, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for d := 25; d < 40; d++ {
		ts, dims, meas := day(d)
		addAll(ts, dims, meas)
		res, err := inc.AppendRows(ts, dims, meas)
		if err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
		fb := relation.NewBuilder("flip", "day", []string{"state"}, []string{"v"})
		for i := range all.ts {
			if err := fb.Append(all.ts[i], all.dims[i], all.meas[i]); err != nil {
				t.Fatal(err)
			}
		}
		frel, err := fb.Finish()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewEngine(frel, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Explain()
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("day %d", d), res, want)
		snapRes, err := incSnap.Update(frel)
		if err != nil {
			t.Fatalf("day %d snapshot: %v", d, err)
		}
		sameResults(t, fmt.Sprintf("day %d (snapshot)", d), snapRes, want)
		if d == 30 && fresh.FilteredCount() != inc.Engine().FilteredCount() {
			t.Fatalf("day %d: filtered count %d, want %d", d, inc.Engine().FilteredCount(), fresh.FilteredCount())
		}
	}
}

// TestIncrementalAppendMatchesFromScratch replays the streaming workload
// day by day through Incremental.AppendRows and asserts that every
// update's result is identical to a from-scratch Explain over the same
// rows — including the day FL (a brand-new state, with brand-new county
// slices) first appears mid-stream, and a late batch revising the most
// recent day.
func TestIncrementalAppendMatchesFromScratch(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"vanilla", Options{}},
		{"filter+guess", Options{FilterRatio: 0.001, UseGuessVerify: true}},
		{"smoothed", Options{SmoothWindow: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.MaxOrder = 2
			const start = 60
			rb := &replayBuilder{}
			for day := 0; day < start; day++ {
				rb.append(datasets.StreamDelta(day))
			}
			base := rb.relation(t)
			q := Query{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "county"}}
			inc, first, err := NewIncremental(base, q, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if first.K < 2 {
				t.Fatalf("initial K = %d", first.K)
			}

			check := func(day int, res *Result) {
				t.Helper()
				fresh, err := NewEngine(rb.relation(t), q, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Explain()
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, fmt.Sprintf("day %d", day), res, want)
			}

			for day := start; day < datasets.StreamDays; day++ {
				tv, dv, mv := datasets.StreamDelta(day)
				rb.append(tv, dv, mv)
				res, err := inc.AppendRows(tv, dv, mv)
				if err != nil {
					t.Fatalf("day %d: %v", day, err)
				}
				check(day, res)

				if day == 75 {
					// Late-arriving records revising the most recent day.
					late := []string{tv[0]}
					lateDims := [][]string{{"TX", "c9"}}
					lateMeas := [][]float64{{17}}
					rb.append(late, lateDims, lateMeas)
					res, err := inc.AppendRows(late, lateDims, lateMeas)
					if err != nil {
						t.Fatalf("day %d revision: %v", day, err)
					}
					check(day, res)
				}
			}
		})
	}
}
