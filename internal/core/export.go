package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// resultJSON is the stable serialized shape of a Result. Durations are
// exported in milliseconds; the full per-explanation sub-series are
// included so a saved result can be re-plotted without the relation.
type resultJSON struct {
	K             int                `json:"k"`
	AutoK         bool               `json:"autoK"`
	TotalVariance float64            `json:"totalVariance"`
	KVariance     []float64          `json:"kVariance,omitempty"`
	Labels        []string           `json:"labels"`
	Series        []float64          `json:"series"`
	Segments      []segmentJSONFull  `json:"segments"`
	LatencyMs     map[string]float64 `json:"latencyMs"`
	Stats         Stats              `json:"stats"`
}

type segmentJSONFull struct {
	Start      int        `json:"start"`
	End        int        `json:"end"`
	StartLabel string     `json:"startLabel"`
	EndLabel   string     `json:"endLabel"`
	Top        []explFull `json:"top"`
}

type explFull struct {
	Predicates string            `json:"predicates"`
	Attrs      map[string]string `json:"attrs"`
	Gamma      float64           `json:"gamma"`
	Effect     string            `json:"effect"`
	Values     []float64         `json:"values,omitempty"`
}

// WriteJSON serializes the result, a stable format for saving an
// explanation or feeding an external UI.
func (r *Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		K:             r.K,
		AutoK:         r.AutoK,
		TotalVariance: r.TotalVariance,
		Labels:        r.Labels,
		Series:        r.Series,
		Stats:         r.Stats,
		LatencyMs: map[string]float64{
			"precompute":   float64(r.Timings.Precompute.Microseconds()) / 1000,
			"cascading":    float64(r.Timings.Cascading.Microseconds()) / 1000,
			"segmentation": float64(r.Timings.Segmentation.Microseconds()) / 1000,
		},
	}
	for k, v := range r.KVariance {
		if k == 0 {
			continue
		}
		// +Inf is not valid JSON; truncate the curve at the first
		// infeasible K.
		if v != v || v > 1e300 {
			break
		}
		out.KVariance = append(out.KVariance, v)
	}
	for _, seg := range r.Segments {
		sj := segmentJSONFull{
			Start: seg.Start, End: seg.End,
			StartLabel: seg.StartLabel, EndLabel: seg.EndLabel,
		}
		for _, e := range seg.Top {
			sj.Top = append(sj.Top, explFull{
				Predicates: e.Predicates,
				Attrs:      e.Attrs,
				Gamma:      e.Gamma,
				Effect:     e.Effect.String(),
				Values:     e.Values,
			})
		}
		out.Segments = append(out.Segments, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteSegmentsCSV emits one CSV row per (segment, explanation):
// start,end,rank,predicates,effect,gamma — the flat form spreadsheet
// users consume.
func (r *Result) WriteSegmentsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start", "end", "rank", "predicates", "effect", "gamma"}); err != nil {
		return err
	}
	for _, seg := range r.Segments {
		if len(seg.Top) == 0 {
			if err := cw.Write([]string{seg.StartLabel, seg.EndLabel, "", "", "", ""}); err != nil {
				return err
			}
			continue
		}
		for i, e := range seg.Top {
			rec := []string{
				seg.StartLabel,
				seg.EndLabel,
				strconv.Itoa(i + 1),
				e.Predicates,
				e.Effect.String(),
				strconv.FormatFloat(e.Gamma, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("core: writing segments CSV: %w", err)
	}
	return nil
}
