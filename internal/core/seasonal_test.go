package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/relation"
)

// buildSeasonal creates a two-category relation with strong weekly
// seasonality on top of the same two-phase trend as threePhase.
func buildSeasonal(t *testing.T, n int) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("x", "t", []string{"category"}, []string{"v"})
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("%03d", i)
	}
	b.SetTimeOrder(labels)
	for i := 0; i < n; i++ {
		season := 40 * math.Sin(2*math.Pi*float64(i%7)/7)
		a, c := 100.0, 100.0
		if i <= n/2 {
			a += 12 * float64(i)
		} else {
			a += 12 * float64(n/2)
			c += 15 * float64(i-n/2)
		}
		_ = b.Append(labels[i], []string{"a"}, []float64{a + season})
		_ = b.Append(labels[i], []string{"b"}, []float64{c + season})
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExplainSeasonal(t *testing.T) {
	rel := buildSeasonal(t, 70)
	eng, err := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ExplainSeasonal(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.SeasonalShare <= 0.02 {
		t.Errorf("seasonal share = %g, want clearly seasonal", res.SeasonalShare)
	}
	if res.Period != 7 {
		t.Errorf("period = %d", res.Period)
	}
	// The trend explanation should find the phase change near n/2 and
	// attribute the phases to a then b.
	cuts := res.Trend.Cuts()
	if len(cuts) != 3 || cuts[1] < 30 || cuts[1] > 40 {
		t.Errorf("trend cuts = %v, want a cut near 35", cuts)
	}
	if res.Trend.Segments[0].Top[0].Predicates != "category=a" {
		t.Errorf("first trend segment top = %q", res.Trend.Segments[0].Top[0].Predicates)
	}
	if res.Trend.Segments[1].Top[0].Predicates != "category=b" {
		t.Errorf("second trend segment top = %q", res.Trend.Segments[1].Top[0].Predicates)
	}
	// Decomposition reconstructs the series.
	raw := relation.Values(relation.Sum, rel.AggregateSeries(0))
	d := res.Decomposition
	for i := range raw {
		rec := d.Trend[i] + d.Seasonal[i] + d.Residual[i]
		if math.Abs(rec-raw[i]) > 1e-9 {
			t.Fatalf("decomposition does not reconstruct at %d", i)
		}
	}
}

func TestExplainSeasonalErrors(t *testing.T) {
	rel := buildSeasonal(t, 30)
	eng, err := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ExplainSeasonal(1); err == nil {
		t.Error("period 1: want error")
	}
	if _, err := eng.ExplainSeasonal(25); err == nil {
		t.Error("period > n/2: want error")
	}
}
