package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestRecommendExplainBy builds a relation with two dimensions: "driver",
// where one value explains each step's change almost entirely, and
// "noise", where the change is spread evenly over many values. The
// recommender must rank driver first.
func TestRecommendExplainBy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := relation.NewBuilder("x", "t", []string{"noise", "driver"}, []string{"v"})
	labels := make([]string, 30)
	for i := range labels {
		labels[i] = fmt.Sprintf("%02d", i)
	}
	b.SetTimeOrder(labels)
	noiseVals := []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"}
	for i := 0; i < 30; i++ {
		// driver=up carries the trend; driver=flat stays constant.
		// Rows are assigned a random noise value, so slicing by "noise"
		// spreads the movement across its values.
		for r := 0; r < 8; r++ {
			driver := "flat"
			v := 10.0
			if r == 0 {
				driver = "up"
				v = 50 * float64(i)
			}
			if err := b.Append(labels[i],
				[]string{noiseVals[rng.Intn(len(noiseVals))], driver},
				[]float64{v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	scores, err := RecommendExplainBy(rel, Query{Measure: "v", Agg: relation.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %d, want 2", len(scores))
	}
	if scores[0].Attribute != "driver" {
		t.Errorf("top recommendation = %+v, want driver", scores[0])
	}
	if scores[0].Coverage <= scores[1].Coverage {
		t.Errorf("driver coverage %.3f should exceed noise coverage %.3f",
			scores[0].Coverage, scores[1].Coverage)
	}
	if scores[0].Coverage < 0.8 {
		t.Errorf("driver coverage = %.3f, want near 1", scores[0].Coverage)
	}
}

func TestRecommendExplainByErrors(t *testing.T) {
	b := relation.NewBuilder("x", "t", []string{"d"}, []string{"v"})
	_ = b.Append("1", []string{"a"}, []float64{1})
	rel, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecommendExplainBy(rel, Query{Measure: "nope", Agg: relation.Sum}); err == nil {
		t.Error("unknown measure: want error")
	}
	// A 1-point series has no steps; coverage is zero but no error.
	scores, err := RecommendExplainBy(rel, Query{Measure: "v", Agg: relation.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Coverage != 0 {
		t.Errorf("coverage = %g, want 0 for a single point", scores[0].Coverage)
	}
}
