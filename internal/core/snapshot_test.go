package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/datasets"
	"repro/internal/explain"
	"repro/internal/relation"
)

// explainViaSnapshot round-trips the dataset's relation and raw universe
// through the snapshot codecs, builds an engine on the restored state,
// and returns its result — the warm-restart path end to end.
func explainViaSnapshot(t *testing.T, d *datasets.Dataset, opts Options) *Result {
	t.Helper()
	// Snapshot the raw (unsmoothed, default-order) universe, as the
	// catalog's background refresher does.
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	var relBuf, uniBuf bytes.Buffer
	if err := d.Rel.WriteSnapshot(&relBuf); err != nil {
		t.Fatal(err)
	}
	if err := u.WriteSnapshot(&uniBuf); err != nil {
		t.Fatal(err)
	}

	rel2, err := relation.ReadSnapshot(&relBuf)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := explain.ReadUniverseSnapshot(bytes.NewReader(uniBuf.Bytes()), rel2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineFromUniverse(u2, Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resultsIdentical asserts two results agree bit for bit on everything
// the API reports: cuts, K, variances, per-segment explanations and γ.
func resultsIdentical(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if want.K != got.K || want.AutoK != got.AutoK {
		t.Fatalf("%s: K %d/%v vs %d/%v", name, want.K, want.AutoK, got.K, got.AutoK)
	}
	if want.TotalVariance != got.TotalVariance {
		t.Fatalf("%s: total variance %v vs %v", name, want.TotalVariance, got.TotalVariance)
	}
	if !reflect.DeepEqual(want.Cuts(), got.Cuts()) {
		t.Fatalf("%s: cuts %v vs %v", name, want.Cuts(), got.Cuts())
	}
	if !reflect.DeepEqual(want.Series, got.Series) {
		t.Fatalf("%s: series differ", name)
	}
	for k := range want.KVariance {
		wv, gv := want.KVariance[k], got.KVariance[k]
		if wv != gv && !(math.IsInf(wv, 1) && math.IsInf(gv, 1)) {
			t.Fatalf("%s: KVariance[%d] %v vs %v", name, k, wv, gv)
		}
	}
	if len(want.Segments) != len(got.Segments) {
		t.Fatalf("%s: %d segments vs %d", name, len(want.Segments), len(got.Segments))
	}
	for i := range want.Segments {
		ws, gs := want.Segments[i], got.Segments[i]
		if ws.Start != gs.Start || ws.End != gs.End || ws.StartLabel != gs.StartLabel || ws.EndLabel != gs.EndLabel {
			t.Fatalf("%s: segment %d bounds differ", name, i)
		}
		if len(ws.Top) != len(gs.Top) {
			t.Fatalf("%s: segment %d has %d vs %d explanations", name, i, len(ws.Top), len(gs.Top))
		}
		for j := range ws.Top {
			we, ge := ws.Top[j], gs.Top[j]
			if we.Predicates != ge.Predicates || we.Gamma != ge.Gamma || we.Effect != ge.Effect {
				t.Fatalf("%s: segment %d top-%d: (%q, γ=%v, %v) vs (%q, γ=%v, %v)",
					name, i, j, we.Predicates, we.Gamma, we.Effect, ge.Predicates, ge.Gamma, ge.Effect)
			}
			if !reflect.DeepEqual(we.Values, ge.Values) {
				t.Fatalf("%s: segment %d top-%d values differ", name, i, j)
			}
		}
	}
}

// TestSnapshotExplainEquivalence is the property test for the
// warm-restart path: explaining a universe restored from
// load(save(universe)) yields bit-identical cuts, segments, and γ to a
// from-scratch build — on the liquor dataset (smoothed, order 3) and the
// stream dataset (order 2), optimized and vanilla.
func TestSnapshotExplainEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		d       *datasets.Dataset
		vanilla bool
	}{
		{"liquor", datasets.Liquor(), false},
		{"stream", datasets.Stream(90), false},
		{"stream-vanilla", datasets.Stream(60), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			if tc.vanilla {
				opts = Options{}
			}
			opts.MaxOrder = tc.d.MaxOrder
			opts.SmoothWindow = tc.d.SmoothWindow
			q := Query{Measure: tc.d.Measure, Agg: tc.d.Agg, ExplainBy: tc.d.ExplainBy}

			eng, err := NewEngine(tc.d.Rel, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.Explain()
			if err != nil {
				t.Fatal(err)
			}
			got := explainViaSnapshot(t, tc.d, opts)
			resultsIdentical(t, tc.name, want, got)
		})
	}
}

// TestNewEngineFromUniverseRejectsMismatch asserts the restore path
// refuses a universe whose shape differs from the query instead of
// serving wrong explanations.
func TestNewEngineFromUniverseRejectsMismatch(t *testing.T) {
	d := datasets.Stream(30)
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxOrder = d.MaxOrder

	badAgg := Query{Measure: d.Measure, Agg: relation.Avg, ExplainBy: d.ExplainBy}
	if _, err := NewEngineFromUniverse(u, badAgg, opts); err == nil {
		t.Fatal("mismatched aggregate accepted")
	}
	badBy := Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy[:1]}
	if _, err := NewEngineFromUniverse(u, badBy, opts); err == nil {
		t.Fatal("mismatched explain-by set accepted")
	}
	badOrder := opts
	badOrder.MaxOrder = 1
	if _, err := NewEngineFromUniverse(u, Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}, badOrder); err == nil {
		t.Fatal("mismatched order threshold accepted")
	}
}
