package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cascading"
	"repro/internal/explain"
)

// ApproxOptions configures the anytime approximate explanation path for
// high-cardinality datasets. Instead of letting every Cascading Analysts
// solve score all ε candidates, the engine ranks candidates once by a
// cheap segment-independent bound on their difference score (see
// explain.ContributionBounds), keeps only the top-M as selectable, and
// solves against that set — per-segment cost then scales with M, not ε.
// Every pruned candidate's score is bounded by the pruning threshold θ,
// which turns into a reported per-segment attribution-error bound; an
// anytime refinement loop grows M until the bound meets Epsilon, the
// candidate budget is exhausted, or the time budget / request deadline
// runs out — in which case the engine returns the best result so far
// instead of failing.
type ApproxOptions struct {
	// Enabled turns the approximate candidate path on. It requires the
	// absolute-change metric (the paper's default): the contribution bound
	// is only sound for it.
	Enabled bool
	// MaxCandidates caps the selectable candidate set M (default 4096).
	MaxCandidates int
	// Epsilon is the target per-segment relative attribution-error bound
	// (default 0.05). Refinement stops as soon as every reported segment's
	// bound is ≤ Epsilon.
	Epsilon float64
	// TimeBudget bounds the wall-clock time the refinement loop may spend
	// growing M; 0 means unbounded (the request deadline still applies).
	TimeBudget time.Duration
}

// ApproxInfo reports what the approximate path did, attached to Result
// when approximate mode ran.
type ApproxInfo struct {
	// MaxCandidates and Epsilon echo the effective options.
	MaxCandidates int     `json:"maxCandidates"`
	Epsilon       float64 `json:"epsilon"`
	// CandidatesEligible is the candidate count after the support filter,
	// i.e. the set the bound ranking pruned from.
	CandidatesEligible int `json:"candidatesEligible"`
	// CandidatesUsed is the kept top-M of the final refinement round.
	CandidatesUsed int `json:"candidatesUsed"`
	// Theta is the difference-score upper bound of the best pruned
	// candidate — no excluded explanation can score above it on any
	// segment. 0 when nothing was pruned.
	Theta float64 `json:"theta"`
	// MaxErrBound is the worst per-segment relative attribution-error
	// bound of the reported segmentation (see Segment.ErrBound).
	MaxErrBound float64 `json:"maxErrBound"`
	// Rounds counts the refinement rounds that ran.
	Rounds int `json:"rounds"`
	// Truncated reports that the request deadline or TimeBudget stopped
	// refinement before MaxErrBound reached Epsilon; the result is the
	// best one computed so far, with its honest bounds.
	Truncated bool `json:"truncated"`
}

// approxState is the engine's cached candidate ranking for the
// approximate path, built once per (engine, data) state and reused across
// Explain calls and K values. Appends invalidate it — new data shifts the
// bounds.
type approxState struct {
	// sel, when non-nil, is the taxonomy-aware selector: each round's
	// selection comes from a subtree-pruned best-first walk instead of the
	// flat full ranking below (see explain.SubtreeBounds). Engaged when
	// the universe has a multi-level taxonomy and the workload's
	// contribution caps are sound.
	sel *explain.SubtreeBounds

	bounds []float64 // per-candidate γ upper bound over any segment
	// order lists the eligible candidate ids sorted by descending bound
	// (ties by ascending id), computed once; each refinement round's
	// selection is a prefix of it, so growing the budget never re-sorts.
	order    []int
	eligible int // candidates passing the support filter
	m        int // current kept-candidate budget
	m0       int // initial (coarse) budget, the anytime ramp's restart point
	// Installed selection (ids ascending, bitmap mirrors ids) and its
	// pruning threshold.
	ids     []int
	allowed []bool
	theta   float64
	// installedM tracks which budget the explainer currently has
	// installed, so unchanged rounds skip the cache-dropping reinstall.
	installedM int
}

// approxEnsure builds (or returns) the candidate ranking and picks the
// initial budget: every candidate whose bound exceeds Epsilon times the
// overall series' own score bound is kept up front — segments whose
// attribution is on the order of the overall change then meet Epsilon in
// the first round — clamped into [4·M̄(min 32), MaxCandidates], and never
// above an eighth of the eligible set, so the first round is always a
// genuinely coarse anytime answer and a tight Epsilon ramps up through
// refinement instead of starting at full exactness.
func (e *Engine) approxEnsure() *approxState {
	if e.approx != nil {
		return e.approx
	}
	if e.u.HasTaxonomy() {
		if sel := explain.NewSubtreeBounds(e.u); sel != nil {
			// Taxonomy path: no full ranking exists to take the
			// Epsilon-scaled cut from, so the initial budget is just the
			// coarse floor, clamped like the flat path's.
			a := &approxState{sel: sel, installedM: -1}
			a.eligible = e.u.NumCandidates()
			if e.allowed != nil {
				a.eligible = 0
				for _, ok := range e.allowed {
					if ok {
						a.eligible++
					}
				}
			}
			m0 := 4 * e.opts.M
			if m0 < 32 {
				m0 = 32
			}
			if m0 > e.opts.Approx.MaxCandidates {
				m0 = e.opts.Approx.MaxCandidates
			}
			if m0 > a.eligible {
				m0 = a.eligible
			}
			a.m = m0
			a.m0 = m0
			e.approx = a
			return a
		}
	}
	a := &approxState{bounds: e.u.ContributionBounds(), installedM: -1}
	a.order = make([]int, 0, len(a.bounds))
	for id := range a.bounds {
		if e.allowed == nil || e.allowed[id] {
			a.order = append(a.order, id)
		}
	}
	a.eligible = len(a.order)
	sort.Slice(a.order, func(i, j int) bool {
		bi, bj := a.bounds[a.order[i]], a.bounds[a.order[j]]
		if bi != bj {
			return bi > bj
		}
		return a.order[i] < a.order[j]
	})

	totals := e.u.TotalValues()
	scale := 0.0
	if len(totals) > 0 {
		mn, mx := totals[0], totals[0]
		for _, v := range totals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		scale = mx - mn
	}
	cut := e.opts.Approx.Epsilon * scale
	m0 := sort.Search(len(a.order), func(i int) bool { return a.bounds[a.order[i]] <= cut })
	lo := 4 * e.opts.M
	if lo < 32 {
		lo = 32
	}
	if ramp := a.eligible / 8; m0 > ramp {
		m0 = ramp
	}
	if m0 < lo {
		m0 = lo
	}
	if m0 > e.opts.Approx.MaxCandidates {
		m0 = e.opts.Approx.MaxCandidates
	}
	if m0 > a.eligible {
		m0 = a.eligible
	}
	a.m = m0
	a.m0 = m0
	e.approx = a
	return a
}

// approxSupported reports whether the approximate path can run under the
// configured metric: the contribution bound is only sound for the
// absolute-change metric (the paper's default).
func (e *Engine) approxSupported() error {
	if e.opts.Metric != explain.AbsoluteChange {
		return fmt.Errorf("core: approximate mode supports the absolute-change metric only, got %v", e.opts.Metric)
	}
	return nil
}

// installApprox makes the explainer solve against the current top-m
// selection. A changed selection drops every cached per-segment result
// and the persistent variance calculator — they were computed under a
// different selectable set.
func (e *Engine) installApprox(a *approxState) {
	if a.installedM == a.m {
		return
	}
	if a.sel != nil {
		// Subtree-pruned walk: exact bounds are memoized inside the
		// selector, so a grown budget re-scans only newly reached
		// candidates.
		a.ids, a.theta = a.sel.SelectTop(e.allowed, a.m)
	} else {
		// The selection is always a prefix of the precomputed order, so a
		// grown budget costs O(M log M) for the ascending re-sort, not a
		// fresh O(ε log ε) ranking.
		a.ids = append([]int(nil), a.order[:a.m]...)
		sort.Ints(a.ids)
		a.theta = 0
		if a.m < len(a.order) {
			a.theta = a.bounds[a.order[a.m]]
		}
	}
	a.allowed = make([]bool, e.u.NumCandidates())
	for _, id := range a.ids {
		a.allowed[id] = true
	}
	e.exp.SetRestriction(a.allowed, a.ids)
	e.vc = nil
	a.installedM = a.m
}

// explainApproxK is the approximate counterpart of explainExactK: solve
// under the pruned candidate set, annotate the result with its error
// bounds and residuals, and refine (doubling the candidate budget) until
// the bound meets Epsilon or a budget runs out. A deadline that expires
// mid-refinement returns the best completed round instead of an error —
// the serving layer degrades to a coarser answer rather than shedding
// the request.
func (e *Engine) explainApproxK(ctx context.Context, positions []int, fixedK int) (*Result, error) {
	return e.runApproxRounds(ctx, positions, fixedK, false, nil)
}

// annotateApprox attaches the per-segment error bounds and residual
// ("other") explanations plus the run-level ApproxInfo.
//
// The bound, in the style of the guess-and-verify condition (Eq. 12):
// the exact optimum over a segment selects at most M̄ non-overlapping
// explanations, of which some j came from the pruned set. The kept ones
// total at most the approximate DP's Best[M̄−j]; each pruned one scores
// at most θ on any segment. So
//
//	exactBest ≤ max_{0 ≤ j ≤ min(M̄, pruned)} Best[M̄−j] + j·θ,
//
// and whenever the solver's own marginal picks all score above θ the
// bound collapses to zero — pruning provably cost nothing for that
// segment. The relative form reported is A/(Best[M̄] + A) with A the
// excess over Best[M̄], a sound bound on (exact − approx)/exact.
func (e *Engine) annotateApprox(res *Result, a *approxState, rounds int) {
	pruned := a.eligible - len(a.ids)
	maxErr := 0.0
	for i := range res.Segments {
		seg := &res.Segments[i]
		top := e.exp.TopM(seg.Start, seg.End)
		mm := len(top.Best) - 1
		gained := top.Best[mm]
		absBound := 0.0
		jmax := mm
		if pruned < jmax {
			jmax = pruned
		}
		for j := 1; j <= jmax; j++ {
			if excess := top.Best[mm-j] + float64(j)*a.theta - gained; excess > absBound {
				absBound = excess
			}
		}
		if absBound > 0 {
			seg.ErrBound = absBound / (gained + absBound)
		} else {
			seg.ErrBound = 0
		}
		if seg.ErrBound > maxErr {
			maxErr = seg.ErrBound
		}
		seg.Other = e.buildOther(seg.Start, seg.End, top.Explanations)
	}
	res.Approx = &ApproxInfo{
		MaxCandidates:      e.opts.Approx.MaxCandidates,
		Epsilon:            e.opts.Approx.Epsilon,
		CandidatesEligible: a.eligible,
		CandidatesUsed:     len(a.ids),
		Theta:              a.theta,
		MaxErrBound:        maxErr,
		Rounds:             rounds,
	}
}

// buildOther aggregates everything the segment's reported explanations do
// not cover into one exact residual pseudo-explanation: reported
// trendlines plus this one reproduce the overall series over the segment
// exactly, however aggressively candidates were pruned (the reported set
// is non-overlapping, so the decomposed subtraction is the true state of
// the complement slice).
func (e *Engine) buildOther(a, b int, picked []cascading.Picked) *Explanation {
	ids := make([]int, len(picked))
	for i, p := range picked {
		ids[i] = p.ID
	}
	rs := e.u.ResidualSeries(ids)[a : b+1]
	f := e.u.Agg()
	vals := make([]float64, len(rs))
	for i, sc := range rs {
		vals[i] = f.Eval(sc.Sum, sc.Count)
	}
	tot := e.u.TotalSeries()
	gamma, effect := e.opts.Metric.Score(f, tot[a], tot[b], rs[0], rs[len(rs)-1])
	return &Explanation{
		Predicates: "(other)",
		Gamma:      gamma,
		Effect:     effect,
		Values:     vals,
	}
}
