package core

import (
	"context"
	"errors"
	"time"
)

// RoundSink receives one completed progressive round. res is the round's
// result (annotated with per-segment error bounds while refinement is
// still approximate; a plain exact result on the final round); final
// marks the last round of the stream. Returning a non-nil error stops
// the stream — the serving layer uses it when the client hangs up.
type RoundSink func(res *Result, final bool) error

// ExplainProgressive runs one explain as an anytime round stream: yield
// receives every completed refinement round of the approximate path —
// result, per-segment ErrBound, and the run-level ApproxInfo (with its
// Truncated flag) — starting with the coarse first round and refining
// all the way to exactness. Unlike ExplainWithKCtx, the loop does not
// stop at Epsilon or MaxCandidates: once the selection covers every
// eligible candidate the restriction is cleared and the final round is
// the plain exact pipeline, bit-identical to what an exact-mode engine
// reports. A deadline or TimeBudget expiring mid-stream ends it early
// with a final round flagged Truncated instead of an error.
//
// With the approximate path disabled the stream is a single exact round.
// The returned result is the last completed round. Like every Engine
// method, ExplainProgressive must not be called concurrently.
func (e *Engine) ExplainProgressive(ctx context.Context, k int, yield RoundSink) (*Result, error) {
	if yield == nil {
		return nil, errors.New("core: ExplainProgressive requires a yield callback")
	}
	if !e.opts.Approx.Enabled {
		res, err := e.explainExactK(ctx, nil, k)
		if err != nil {
			return nil, err
		}
		return res, yield(res, true)
	}
	return e.runApproxRounds(ctx, nil, k, true, yield)
}

// runApproxRounds drives the anytime refinement loop shared by the
// synchronous approximate path and the progressive stream: solve under
// the pruned candidate set, annotate error bounds, and double the kept
// budget until done. toExact selects the progressive contract — restart
// from the coarse initial budget, refine past Epsilon and MaxCandidates,
// and finish with an unrestricted exact round — while the synchronous
// path stops as soon as the bound meets Epsilon or a budget caps the
// selection. yield, when non-nil, observes every completed round; its
// error aborts the stream. A deadline that expires mid-refinement
// truncates to the best completed round instead of failing.
func (e *Engine) runApproxRounds(ctx context.Context, positions []int, fixedK int, toExact bool, yield RoundSink) (*Result, error) {
	if err := e.approxSupported(); err != nil {
		return nil, err
	}
	a := e.approxEnsure()
	if toExact {
		// A previous run may have left the selection converged; the
		// progressive contract is the coarse-to-exact ramp.
		a.m = a.m0
	}
	var budgetEnd time.Time
	if tb := e.opts.Approx.TimeBudget; tb > 0 {
		budgetEnd = time.Now().Add(tb)
	}
	emit := func(res *Result, final bool) error {
		if yield == nil {
			return nil
		}
		return yield(res, final)
	}

	var best *Result
	for rounds := 1; ; rounds++ {
		if toExact && a.m >= a.eligible {
			// The selection covers everything eligible: clear the
			// restriction entirely and run the plain exact pipeline, so
			// the final round is bit-identical to an exact-mode engine
			// (same solver path, no approximate annotations).
			e.clearApprox(a)
			res, err := e.explainExactK(ctx, positions, fixedK)
			if err != nil {
				return truncateOnDeadline(best, emit, err)
			}
			best = res
			return best, emit(res, true)
		}
		e.installApprox(a)
		res, err := e.explainExactK(ctx, positions, fixedK)
		if err != nil {
			return truncateOnDeadline(best, emit, err)
		}
		e.annotateApprox(res, a, rounds)
		best = res
		done := !toExact &&
			(res.Approx.MaxErrBound <= e.opts.Approx.Epsilon ||
				a.m >= e.opts.Approx.MaxCandidates ||
				a.m >= a.eligible)
		if !done && ((ctx != nil && ctx.Err() != nil) ||
			(!budgetEnd.IsZero() && time.Now().After(budgetEnd))) {
			res.Approx.Truncated = true
			done = true
		}
		if err := emit(res, done); err != nil {
			return best, err
		}
		if done {
			return best, nil
		}
		a.m *= 2
		if !toExact && a.m > e.opts.Approx.MaxCandidates {
			a.m = e.opts.Approx.MaxCandidates
		}
		if a.m > a.eligible {
			a.m = a.eligible
		}
	}
}

// truncateOnDeadline resolves a mid-round explain failure: a deadline or
// cancellation with at least one completed round degrades to that round,
// flagged Truncated and emitted as the stream's final round; anything
// else propagates as the error it is.
func truncateOnDeadline(best *Result, emit RoundSink, err error) (*Result, error) {
	if best == nil || !(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nil, err
	}
	best.Approx.Truncated = true
	if yerr := emit(best, true); yerr != nil {
		return best, yerr
	}
	return best, nil
}

// clearApprox returns the explainer to the unrestricted selectable set
// (dropping every result cached under the pruned one) and resets the
// refinement budget to its initial coarse value, so a later synchronous
// approximate explain restarts the anytime ramp instead of paying a
// full-width first round.
func (e *Engine) clearApprox(a *approxState) {
	e.exp.SetRestriction(e.allowed, nil)
	e.vc = nil
	a.installedM = -1
	a.m = a.m0
}
