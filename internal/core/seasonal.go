package core

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/timeseries"
)

// SeasonalResult is the output of ExplainSeasonal: the trend component's
// evolving explanations plus the decomposition itself, following the
// Section 8 guidance that seasonal series can be decomposed first and the
// trend and seasonality explained separately.
type SeasonalResult struct {
	// Trend is the explanation of the trend component.
	Trend *Result
	// Decomposition holds trend/seasonal/residual of the aggregated
	// series.
	Decomposition timeseries.Decomposition
	// Period is the seasonal period used.
	Period int
	// SeasonalShare is the fraction of the series' variance the seasonal
	// component carries; near-zero means the series was not seasonal and
	// plain Explain would do.
	SeasonalShare float64
}

// ExplainSeasonal decomposes the aggregated series with the given
// seasonal period (e.g. 7 for daily data with weekly texture) and
// explains the deseasonalized series. De-seasonalization is implemented
// by smoothing every slice with a period-length moving average — exactly
// the trend extraction of classical decomposition — so slice-level γ
// scores stay consistent with the displayed trend.
func (e *Engine) ExplainSeasonal(period int) (*SeasonalResult, error) {
	if period < 2 {
		return nil, fmt.Errorf("core: seasonal period %d, need at least 2", period)
	}
	n := e.u.NumTimestamps()
	if period > n/2 {
		return nil, fmt.Errorf("core: seasonal period %d too long for %d points", period, n)
	}

	raw := relation.Values(e.query.aggOf(), e.rel.AggregateSeries(e.rel.MeasureIndex(e.query.Measure)))
	dec := timeseries.DecomposeAdditive(raw, period)

	// Explain the trend: a fresh engine over the same relation with the
	// period as the smoothing window (the moving average of the classical
	// decomposition's trend step).
	opts := e.opts
	opts.SmoothWindow = period
	trendEng, err := NewEngine(e.rel, e.query, opts)
	if err != nil {
		return nil, err
	}
	trendRes, err := trendEng.Explain()
	if err != nil {
		return nil, err
	}

	totalVar := timeseries.Variance(raw)
	share := 0.0
	if totalVar > 0 {
		share = timeseries.Variance(dec.Seasonal) / totalVar
	}
	return &SeasonalResult{
		Trend:         trendRes,
		Decomposition: dec,
		Period:        period,
		SeasonalShare: share,
	}, nil
}

// aggOf returns the aggregate function of the query (helper so seasonal
// code reads naturally).
func (q Query) aggOf() relation.AggFunc { return q.Agg }
