package core

import (
	"context"
	"sort"

	"repro/internal/explain"
	"repro/internal/relation"
)

// AttributeScore reports how explanatory one dimension attribute is for a
// series, for the explain-by recommendation (one of the paper's stated
// future-work directions: "recommending explain-by attributes").
type AttributeScore struct {
	// Attribute is the dimension attribute name.
	Attribute string
	// Coverage is the fraction of the overall |change| along the series
	// that the attribute's single best slice per unit step accounts for,
	// averaged over steps; higher means the attribute's values separate
	// the movement well.
	Coverage float64
	// Cardinality is the number of distinct values (for tie-breaking:
	// lower-cardinality attributes are easier to read).
	Cardinality int
}

// RecommendExplainBy ranks every dimension attribute of the relation by
// how well its order-1 slices explain the per-step changes of the
// aggregated series. It is a lightweight screening pass: for each unit
// step and attribute, the best single slice's γ is compared to the total
// absolute change contributed by that attribute's slices.
//
// Attributes whose top slice consistently captures a large share of each
// step's movement (e.g. "state" for covid) rank high; attributes whose
// movement is spread thinly across many values (e.g. "Vendor Name" for
// liquor) rank low.
func RecommendExplainBy(rel *relation.Relation, q Query) ([]AttributeScore, error) {
	return RecommendExplainByCtx(nil, rel, q)
}

// RecommendExplainByCtx is RecommendExplainBy with a cancellation
// context: the per-attribute universe builds observe ctx, so an expired
// request stops screening instead of building every remaining dimension.
func RecommendExplainByCtx(ctx context.Context, rel *relation.Relation, q Query) ([]AttributeScore, error) {
	var out []AttributeScore
	for d := 0; d < rel.NumDims(); d++ {
		name := rel.Dim(d).Name()
		u, err := explain.NewUniverse(rel, explain.Config{
			Measure:   q.Measure,
			Agg:       q.Agg,
			ExplainBy: []string{name},
			MaxOrder:  1,
			Cancel:    ctxCancelFunc(ctx),
		})
		if err != nil {
			return nil, err
		}
		n := u.NumTimestamps()
		var covSum float64
		var steps int
		for t := 0; t+1 < n; t++ {
			var best, total float64
			for id := 0; id < u.NumCandidates(); id++ {
				g, _ := u.Gamma(id, t, t+1, explain.AbsoluteChange)
				total += g
				if g > best {
					best = g
				}
			}
			if total > 0 {
				covSum += best / total
				steps++
			}
		}
		score := AttributeScore{Attribute: name, Cardinality: rel.Dim(d).Cardinality()}
		if steps > 0 {
			score.Coverage = covSum / float64(steps)
		}
		out = append(out, score)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		return out[i].Cardinality < out[j].Cardinality
	})
	return out, nil
}
