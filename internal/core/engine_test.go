package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/segment"
	"repro/internal/synth"
)

// threePhase builds a relation whose ground-truth segmentation has cuts
// at the given positions: categories take turns rising.
func threePhase(t testing.TB, n int, cuts []int) *relation.Relation {
	t.Helper()
	bounds := append(append([]int{0}, cuts...), n-1)
	cats := []string{"a", "b", "c"}
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("%04d", i)
	}
	b2 := relation.NewBuilder("x", "t", []string{"category"}, []string{"v"})
	b2.SetTimeOrder(labels)
	level := map[string]float64{"a": 100, "b": 100, "c": 100}
	segOf := func(i int) int {
		for s := 1; s < len(bounds); s++ {
			if i <= bounds[s] {
				return s - 1
			}
		}
		return len(bounds) - 2
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			level[cats[segOf(i)%len(cats)]] += 10
		}
		for _, c := range cats {
			if err := b2.Append(labels[i], []string{c}, []float64{level[c]}); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
	}
	r, err := b2.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return r
}

func TestEngineRecoversGroundTruthAutoK(t *testing.T) {
	rel := threePhase(t, 60, []int{20, 40})
	eng, err := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !res.AutoK {
		t.Error("AutoK should be set when K unspecified")
	}
	if res.K != 3 {
		t.Fatalf("elbow chose K=%d, want 3 (cuts %v)", res.K, res.Cuts())
	}
	cuts := res.Cuts()
	if cuts[1] < 19 || cuts[1] > 21 || cuts[2] < 39 || cuts[2] > 41 {
		t.Errorf("cuts = %v, want ≈[0 20 40 59]", cuts)
	}
	// Each segment's top-1 explanation is the rising category.
	wantTop := []string{"category=a", "category=b", "category=c"}
	for i, seg := range res.Segments {
		if len(seg.Top) == 0 {
			t.Fatalf("segment %d has no explanations", i)
		}
		if seg.Top[0].Predicates != wantTop[i] {
			t.Errorf("segment %d top-1 = %q, want %q", i, seg.Top[0].Predicates, wantTop[i])
		}
		if seg.Top[0].Effect != explain.Increase {
			t.Errorf("segment %d effect = %v, want +", i, seg.Top[0].Effect)
		}
	}
}

func TestEngineFixedK(t *testing.T) {
	rel := threePhase(t, 40, []int{20})
	eng, err := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoK {
		t.Error("AutoK should be false for fixed K")
	}
	if res.K != 2 || len(res.Segments) != 2 {
		t.Fatalf("K = %d, segments = %d, want 2", res.K, len(res.Segments))
	}
	if got := res.Cuts()[1]; got < 19 || got > 21 {
		t.Errorf("cut = %d, want ≈20", got)
	}
}

func TestEngineSegmentsTileSeries(t *testing.T) {
	rel := threePhase(t, 50, []int{15, 35})
	eng, err := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments[0].Start != 0 {
		t.Errorf("first segment starts at %d", res.Segments[0].Start)
	}
	if last := res.Segments[len(res.Segments)-1]; last.End != 49 {
		t.Errorf("last segment ends at %d", last.End)
	}
	for i := 1; i < len(res.Segments); i++ {
		if res.Segments[i].Start != res.Segments[i-1].End {
			t.Errorf("segments %d/%d do not tile: %d vs %d",
				i-1, i, res.Segments[i-1].End, res.Segments[i].Start)
		}
	}
	for _, seg := range res.Segments {
		if seg.StartLabel == "" || seg.EndLabel == "" {
			t.Error("segment labels missing")
		}
		for _, e := range seg.Top {
			if len(e.Values) != seg.End-seg.Start+1 {
				t.Errorf("explanation values length %d, want %d",
					len(e.Values), seg.End-seg.Start+1)
			}
			if len(e.Attrs) == 0 || e.Predicates == "" {
				t.Error("explanation attrs/predicates missing")
			}
		}
	}
}

func TestOptimizationsPreserveQuality(t *testing.T) {
	// The paper's Table 7: O1+O2 variance within ~1% of vanilla.
	d, err := synth.Generate(synth.Params{Seed: 21, SNRdB: 40})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Measure: "sales", Agg: relation.Sum}
	vanilla, err := NewEngine(d.Rel, q, Options{K: d.K})
	if err != nil {
		t.Fatal(err)
	}
	rv, err := vanilla.Explain()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewEngine(d.Rel, q, func() Options {
		o := DefaultOptions()
		o.K = d.K
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	ro, err := opt.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if rv.TotalVariance == 0 {
		if ro.TotalVariance > 1e-9 {
			t.Fatalf("optimized variance %g, vanilla 0", ro.TotalVariance)
		}
		return
	}
	ratio := ro.TotalVariance / rv.TotalVariance
	if ratio > 1.15 {
		t.Errorf("optimized variance %.4f vs vanilla %.4f (ratio %.3f), want within 15%%",
			ro.TotalVariance, rv.TotalVariance, ratio)
	}
	if rv.Stats.SketchSize != d.Rel.NumTimestamps() {
		t.Errorf("vanilla sketch size = %d, want n", rv.Stats.SketchSize)
	}
	if ro.Stats.SketchSize >= d.Rel.NumTimestamps() {
		t.Errorf("optimized sketch size = %d, want < n", ro.Stats.SketchSize)
	}
}

func TestGuessVerifyMatchesVanillaExactly(t *testing.T) {
	rel := threePhase(t, 40, []int{20})
	q := Query{Measure: "v", Agg: relation.Sum}
	vanilla, _ := NewEngine(rel, q, Options{K: 2})
	rv, err := vanilla.Explain()
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := NewEngine(rel, q, Options{K: 2, UseGuessVerify: true, GuessInit: 2})
	r1, err := o1.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rv.TotalVariance-r1.TotalVariance) > 1e-12 {
		t.Errorf("guess-and-verify changed the objective: %g vs %g",
			r1.TotalVariance, rv.TotalVariance)
	}
	if fmt.Sprint(rv.Cuts()) != fmt.Sprint(r1.Cuts()) {
		t.Errorf("guess-and-verify changed cuts: %v vs %v", r1.Cuts(), rv.Cuts())
	}
}

func TestFilterDropsTinySlices(t *testing.T) {
	b := relation.NewBuilder("x", "t", []string{"c"}, []string{"v"})
	labels := []string{"0", "1", "2", "3"}
	b.SetTimeOrder(labels)
	for i, l := range labels {
		_ = b.Append(l, []string{"big"}, []float64{1000 + 100*float64(i)})
		_ = b.Append(l, []string{"tiny"}, []float64{0.01})
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{FilterRatio: 0.001, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.FilteredCount(); got != 1 {
		t.Errorf("FilteredCount = %d, want 1", got)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Segments[0].Top {
		if strings.Contains(e.Predicates, "tiny") {
			t.Errorf("filtered slice appeared in explanations: %q", e.Predicates)
		}
	}
	if res.Stats.Epsilon != 2 || res.Stats.FilteredEpsilon != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestSmoothingReducesNoiseSensitivity(t *testing.T) {
	d, err := synth.Generate(synth.Params{Seed: 3, SNRdB: 20})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Measure: "sales", Agg: relation.Sum}
	smooth, err := NewEngine(d.Rel, q, Options{K: d.K, SmoothWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := smooth.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Series) != d.Rel.NumTimestamps() {
		t.Fatalf("smoothed series length changed")
	}
	// The smoothed aggregated series must differ from the raw one.
	raw := relation.Values(relation.Sum, d.Rel.AggregateSeries(0))
	same := true
	for i := range raw {
		if math.Abs(raw[i]-rs.Series[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("smoothing had no effect on the explained series")
	}
}

func TestTimingsAndStatsPopulated(t *testing.T) {
	rel := threePhase(t, 40, []int{20})
	eng, _ := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{K: 2})
	res, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.Precompute <= 0 {
		t.Error("precompute timing missing")
	}
	if res.Timings.Cascading <= 0 {
		t.Error("cascading timing missing")
	}
	if res.Timings.Total() < res.Timings.Cascading {
		t.Error("total timing inconsistent")
	}
	if res.Stats.CASolves == 0 || res.Stats.N != 40 || res.Stats.Epsilon != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestTopExplanationsDirect(t *testing.T) {
	rel := threePhase(t, 30, []int{15})
	eng, _ := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{})
	top, err := eng.TopExplanations(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].Predicates != "category=a" {
		t.Errorf("top explanations = %+v, want category=a first", top)
	}
	if _, err := eng.TopExplanations(10, 5); err == nil {
		t.Error("inverted segment: want error")
	}
	if _, err := eng.TopExplanations(-1, 5); err == nil {
		t.Error("negative start: want error")
	}
}

func TestEngineErrors(t *testing.T) {
	rel := threePhase(t, 20, []int{10})
	if _, err := NewEngine(rel, Query{Measure: "nope", Agg: relation.Sum}, Options{}); err == nil {
		t.Error("unknown measure: want error")
	}
	// Single-point series cannot be explained.
	b := relation.NewBuilder("x", "t", []string{"c"}, []string{"v"})
	_ = b.Append("only", []string{"a"}, []float64{1})
	tiny, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tiny, Query{Measure: "v", Agg: relation.Sum}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(); err == nil {
		t.Error("1-point series: want error")
	}
}

func TestVarianceKindOptionIsHonored(t *testing.T) {
	rel := threePhase(t, 30, []int{15})
	q := Query{Measure: "v", Agg: relation.Sum}
	for _, kind := range []segment.VarianceKind{segment.Tse, segment.Dist1, segment.AllPair} {
		eng, err := NewEngine(rel, q, Options{K: 2, VarianceKind: kind})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Explain()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := res.Cuts()[1]; got < 14 || got > 16 {
			t.Errorf("%v: cut = %d, want ≈15", kind, got)
		}
	}
}

func TestIncrementalMatchesBatchOnAppend(t *testing.T) {
	full := threePhase(t, 60, []int{20, 40})
	// Prefix snapshot: first 45 timestamps.
	prefix := sliceRelation(t, full, 45)

	q := Query{Measure: "v", Agg: relation.Sum}
	inc, first, err := NewIncremental(prefix, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.K < 2 {
		t.Fatalf("initial K = %d", first.K)
	}
	res, err := inc.Update(full)
	if err != nil {
		t.Fatal(err)
	}
	cuts := res.Cuts()
	if cuts[len(cuts)-1] != 59 {
		t.Fatalf("updated cuts %v should end at 59", cuts)
	}
	// The incremental result must still find both regime changes.
	found20, found40 := false, false
	for _, c := range cuts {
		if c >= 19 && c <= 21 {
			found20 = true
		}
		if c >= 39 && c <= 41 {
			found40 = true
		}
	}
	if !found20 || !found40 {
		t.Errorf("incremental cuts %v miss the ground truth {20, 40}", cuts)
	}
}

func TestIncrementalRejectsRewrittenHistory(t *testing.T) {
	full := threePhase(t, 30, []int{15})
	prefix := sliceRelation(t, full, 20)
	q := Query{Measure: "v", Agg: relation.Sum}
	inc, _, err := NewIncremental(full, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Update(prefix); err == nil {
		t.Error("shrinking snapshot: want error")
	}
	// A snapshot with different labels must be rejected.
	other := threePhase(t, 30, []int{15})
	_ = other
	b := relation.NewBuilder("x", "zzz", []string{"category"}, []string{"v"})
	_ = b.Append("x0", []string{"a"}, []float64{1})
	_ = b.Append("x1", []string{"a"}, []float64{2})
	for i := 2; i < 35; i++ {
		_ = b.Append(fmt.Sprintf("x%02d", i), []string{"a"}, []float64{float64(i)})
	}
	weird, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Update(weird); err == nil {
		t.Error("mismatched labels: want error")
	}
}

// sliceRelation rebuilds a relation restricted to the first n timestamps.
func sliceRelation(t testing.TB, r *relation.Relation, n int) *relation.Relation {
	t.Helper()
	labels := r.TimeLabels()[:n]
	keep := make(map[string]bool, n)
	for _, l := range labels {
		keep[l] = true
	}
	b := relation.NewBuilder(r.Name(), r.TimeName(), r.DimNames(), r.MeasureNames())
	b.SetTimeOrder(labels)
	dims := make([]string, r.NumDims())
	meas := make([]float64, r.NumMeasures())
	for row := 0; row < r.NumRows(); row++ {
		l := r.TimeLabel(r.TimeIndex(row))
		if !keep[l] {
			continue
		}
		for d := range dims {
			dims[d] = r.DimValue(d, row)
		}
		for m := range meas {
			meas[m] = r.MeasureValue(m, row)
		}
		if err := b.Append(l, dims, meas); err != nil {
			t.Fatal(err)
		}
	}
	out, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return out
}
