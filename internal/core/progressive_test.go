package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// fingerprint renders a result's analytical content — segmentation,
// variance, attributions, series — with Go's shortest round-trip float
// formatting (%v), so equal fingerprints mean bit-identical float64s.
// Wall clock fields (Timings, Stats) are zeroed out.
func fingerprint(t *testing.T, res *Result) string {
	t.Helper()
	r := *res
	r.Timings = Timings{}
	r.Stats = Stats{}
	return fmt.Sprintf("%+v", r)
}

type roundRec struct {
	res   *Result
	final bool
}

func collectRounds(t *testing.T, eng *Engine, ctx context.Context, k int) ([]roundRec, *Result, error) {
	t.Helper()
	var rounds []roundRec
	res, err := eng.ExplainProgressive(ctx, k, func(r *Result, final bool) error {
		rounds = append(rounds, roundRec{res: r, final: final})
		return nil
	})
	return rounds, res, err
}

// TestProgressiveRefinesToExact is the tentpole contract: the stream
// starts from the coarse anytime round, every later approximate round's
// reported bound is no worse, and the final round is bit-identical to
// what a plain exact engine computes — because it IS the plain exact
// pipeline, restriction cleared.
func TestProgressiveRefinesToExact(t *testing.T) {
	// The flat spike field keeps the error bound provably positive until
	// every candidate is selectable, so the ramp genuinely refines.
	rel := spikeFieldRel(t)
	q := spikeFieldQuery()

	opts := DefaultOptions()
	opts.K = 3
	opts.Approx = ApproxOptions{Enabled: true, MaxCandidates: 64, Epsilon: 0.05}
	eng, err := NewEngine(rel, q, opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rounds, res, err := collectRounds(t, eng, context.Background(), 3)
	if err != nil {
		t.Fatalf("progressive: %v", err)
	}
	if len(rounds) < 2 {
		t.Fatalf("got %d rounds, want at least a coarse round and the exact one", len(rounds))
	}
	for i, r := range rounds {
		if got, want := r.final, i == len(rounds)-1; got != want {
			t.Fatalf("round %d: final = %v, want %v", i, got, want)
		}
	}
	last := rounds[len(rounds)-1]
	if last.res != res {
		t.Fatal("returned result is not the last emitted round")
	}
	if last.res.Approx != nil {
		t.Fatalf("final round still carries ApproxInfo: %+v", last.res.Approx)
	}

	// Approximate rounds refine: bounds never get worse, and the ramp
	// actually tightened somewhere (the coarse start is not already 0).
	prev := -1.0
	for i, r := range rounds[:len(rounds)-1] {
		if r.res.Approx == nil {
			t.Fatalf("non-final round %d carries no ApproxInfo", i)
		}
		if b := r.res.Approx.MaxErrBound; prev >= 0 && b > prev+1e-12 {
			t.Fatalf("round %d bound %g worse than previous %g", i, b, prev)
		} else {
			prev = b
		}
		if r.res.Approx.Truncated {
			t.Fatalf("round %d flagged Truncated without any deadline", i)
		}
	}
	if first := rounds[0].res.Approx; first.MaxErrBound <= 0 {
		t.Fatalf("coarse first round bound %g, want > 0 (scenario too easy to exercise refinement)",
			first.MaxErrBound)
	}

	// Bit-identity: the final round against a fresh exact-mode engine.
	eopts := DefaultOptions()
	eopts.K = 3
	exact, err := NewEngine(rel, q, eopts)
	if err != nil {
		t.Fatalf("exact engine: %v", err)
	}
	want, err := exact.ExplainWithK(3)
	if err != nil {
		t.Fatalf("exact explain: %v", err)
	}
	if got, wantFp := fingerprint(t, last.res), fingerprint(t, want); got != wantFp {
		t.Errorf("final progressive round differs from plain exact explain\n got: %s\nwant: %s", got, wantFp)
	}

	// The engine stays usable afterwards: a synchronous approximate
	// explain restarts the anytime ramp from the coarse budget.
	res2, err := eng.Explain()
	if err != nil {
		t.Fatalf("post-progressive explain: %v", err)
	}
	if res2.Approx == nil {
		t.Fatal("post-progressive approximate explain carries no ApproxInfo")
	}
}

// TestProgressiveExactEngineSingleRound: with the approximate path
// disabled the stream is one exact round, final immediately.
func TestProgressiveExactEngineSingleRound(t *testing.T) {
	eng, err := NewEngine(highCardRel(t), highCardQuery(), highCardOpts())
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rounds, res, err := collectRounds(t, eng, context.Background(), 4)
	if err != nil {
		t.Fatalf("progressive: %v", err)
	}
	if len(rounds) != 1 || !rounds[0].final || rounds[0].res != res {
		t.Fatalf("want exactly one final round, got %d (res match %v)", len(rounds), rounds[0].res == res)
	}
	if res.Approx != nil {
		t.Fatal("exact progressive round carries ApproxInfo")
	}
}

// TestProgressiveYieldErrorAborts: the sink's error stops the stream —
// the serving layer relies on this when the client disconnects.
func TestProgressiveYieldErrorAborts(t *testing.T) {
	opts := highCardOpts()
	opts.Approx = ApproxOptions{Enabled: true, MaxCandidates: 128, Epsilon: 0.05}
	eng, err := NewEngine(highCardRel(t), highCardQuery(), opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	sentinel := errors.New("client gone")
	calls := 0
	_, err = eng.ExplainProgressive(context.Background(), 4, func(r *Result, final bool) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sink's sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after aborting on the first round", calls)
	}
}

// TestProgressiveCancelTruncates: cancelling mid-stream ends it with a
// final round flagged Truncated instead of an error — degraded, not
// dropped.
func TestProgressiveCancelTruncates(t *testing.T) {
	rel := spikeFieldRel(t)
	opts := DefaultOptions()
	opts.K = 3
	opts.Approx = ApproxOptions{Enabled: true, MaxCandidates: 1 << 20, Epsilon: 0.05}
	eng, err := NewEngine(rel, spikeFieldQuery(), opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var rounds []roundRec
	res, err := eng.ExplainProgressive(ctx, 3, func(r *Result, final bool) error {
		rounds = append(rounds, roundRec{res: r, final: final})
		cancel() // hang up after the first delivered round
		return nil
	})
	if err != nil {
		t.Fatalf("progressive after cancel: %v", err)
	}
	if res == nil || len(rounds) == 0 {
		t.Fatal("no rounds delivered before cancellation")
	}
	last := rounds[len(rounds)-1]
	if !last.final {
		t.Fatal("stream ended without a final round")
	}
	if last.res.Approx == nil || !last.res.Approx.Truncated {
		t.Fatalf("cancelled stream's final round not flagged Truncated: %+v", last.res.Approx)
	}
	if res != last.res {
		t.Fatal("returned result is not the truncated final round")
	}
}
