// Package core implements the TSExplain engine: the three-module pipeline
// of Figure 7 (precompute difference scores → Cascading Analysts →
// K-Segmentation), the optimization toggles of Section 5.3 and 7.5.1
// (support filter, guess-and-verify, sketching), the optimal selection of
// K via the elbow method (Section 6), and the real-time incremental
// extension sketched in Section 8.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/segment"
)

// Query identifies the aggregated time series to explain: the group-by
// query SELECT T, f(M) FROM R GROUP BY T plus the explain-by attributes.
type Query struct {
	// Measure is the measure attribute M.
	Measure string
	// Agg is the aggregate function f.
	Agg relation.AggFunc
	// ExplainBy lists the explain-by attributes A; empty means every
	// dimension attribute.
	ExplainBy []string
}

// Options bundles every tunable of the engine. The zero value gives the
// paper's defaults with all optimizations disabled (VanillaTSExplain);
// DefaultOptions returns the fully optimized configuration.
type Options struct {
	// M is the number of explanations per segment (default 3).
	M int
	// MaxOrder is the explanation order threshold β̄ (default 3).
	MaxOrder int
	// Metric is the difference metric γ (default absolute-change).
	Metric explain.Metric
	// K fixes the segment count; 0 selects K automatically with the
	// elbow method.
	K int
	// KMax caps the K considered by the elbow method (default 20, the
	// paper's user-perception limit).
	KMax int
	// VarianceKind selects the within-segment variance design (default
	// tse, the paper's proposal).
	VarianceKind segment.VarianceKind
	// FilterRatio enables the support filter when positive: candidates
	// whose series never reaches FilterRatio of the overall series are
	// dropped (the paper's default optimization uses 0.001).
	FilterRatio float64
	// UseGuessVerify enables optimization O1 (Section 5.3.1).
	UseGuessVerify bool
	// GuessInit is the initial guess size m̄ (default 30).
	GuessInit int
	// UseSketch enables optimization O2 (Section 5.3.2).
	UseSketch bool
	// Sketch tunes the sketching parameters; zero values use the paper's
	// defaults (L = min(0.05n, 20), |S| = 3n/L).
	Sketch segment.SketchConfig
	// SmoothWindow applies a moving average before explaining (Section
	// 7.4); 0 disables.
	SmoothWindow int
	// Parallelism runs the engine's fan-out work with this many
	// goroutines: candidate enumeration's per-subset group-bys in the
	// precompute module, and pre-solving per-segment explanations before
	// segmentation. 0 or 1 keeps the paper's single-threaded execution;
	// results are identical either way, and with parallelism on, the
	// Cascading timing reports summed CPU time.
	Parallelism int
	// Approx enables the anytime approximate explanation path for
	// high-cardinality candidate universes: solves run against a pruned
	// top-M candidate set with a reported per-segment attribution-error
	// bound instead of scoring all ε candidates per segment.
	Approx ApproxOptions
	// Hierarchies declares taxonomies over the relation's dimension
	// columns, each an ordered coarse→fine list of dimension names
	// (["state", "county"]). Hierarchies already declared on the relation
	// (by the catalog's manifest or a restored snapshot) are picked up
	// automatically. When at least two levels of a hierarchy are in the
	// explain-by set, candidate enumeration switches to grouped roll-up
	// form, drill-down follows the taxonomy level by level, reported
	// explanations carry their level Path, and the approximate path prunes
	// whole subtrees by contribution caps where sound.
	Hierarchies [][]string
}

// DefaultOptions returns the paper's fully optimized configuration:
// support filter at 0.001, guess-and-verify, and sketching all enabled.
func DefaultOptions() Options {
	return Options{
		FilterRatio:    0.001,
		UseGuessVerify: true,
		UseSketch:      true,
	}
}

func (o *Options) setDefaults() {
	if o.M <= 0 {
		o.M = 3
	}
	if o.MaxOrder <= 0 {
		o.MaxOrder = 3
	}
	if o.KMax <= 0 {
		o.KMax = 20
	}
	if o.GuessInit <= 0 {
		o.GuessInit = 30
	}
	if o.Approx.Enabled {
		if o.Approx.MaxCandidates <= 0 {
			o.Approx.MaxCandidates = 4096
		}
		if o.Approx.Epsilon <= 0 {
			o.Approx.Epsilon = 0.05
		}
	}
}

// Timings is the latency breakdown of Figure 15.
type Timings struct {
	// Precompute covers candidate enumeration, series construction,
	// smoothing, and the support filter (module a).
	Precompute time.Duration
	// Cascading covers every Cascading Analysts solve (module b).
	Cascading time.Duration
	// Segmentation covers distances, variances, the segmentation DP, and
	// K selection (module c).
	Segmentation time.Duration
}

// Total returns the end-to-end latency.
func (t Timings) Total() time.Duration {
	return t.Precompute + t.Cascading + t.Segmentation
}

// Stats reports the workload statistics of Table 6 plus solver counters.
type Stats struct {
	// Epsilon is the total candidate count ε.
	Epsilon int
	// FilteredEpsilon is the candidate count after the support filter
	// (equal to Epsilon when the filter is off).
	FilteredEpsilon int
	// N is the series length.
	N int
	// CASolves counts distinct segments whose top-explanations were
	// derived.
	CASolves int
	// GuessRounds totals guess-and-verify rounds (0 without O1).
	GuessRounds int
	// SketchSize is the number of candidate cut positions after
	// sketching (N without O2).
	SketchSize int
}

// Explanation is one reported contributor for a segment.
type Explanation struct {
	// Predicates renders the conjunction, e.g. "state=NY" or
	// "Bottle Volume (ml)=1750 & Pack=6".
	Predicates string
	// Attrs holds the attribute=value pairs of the conjunction.
	Attrs map[string]string
	// Path is the root-to-self taxonomy value chain of the explanation's
	// deepest hierarchy predicate (["TX", "Houston"]); nil when the
	// explanation has no predicate over a declared hierarchy.
	Path []string
	// Gamma is the difference score γ(E) over the segment.
	Gamma float64
	// Effect is the change effect τ(E): + or -.
	Effect explain.Effect
	// Values is the explanation's aggregated sub-series over the segment
	// (inclusive endpoints), the trendline of Figure 2.
	Values []float64
}

// Segment is one reported period with consistent top explanations.
type Segment struct {
	// Start and End are point positions into the aggregated series
	// (inclusive).
	Start, End int
	// StartLabel and EndLabel are the corresponding time labels.
	StartLabel, EndLabel string
	// Top holds the top-m non-overlapping explanations, ranked by γ.
	Top []Explanation
	// ErrBound is the reported relative attribution-error bound of the
	// approximate mode: the exact optimal attribution for this segment
	// exceeds the reported one by at most this fraction of itself. Always
	// 0 in exact mode.
	ErrBound float64
	// Other aggregates every record the reported explanations do not
	// cover (the approximate mode's residual): Top plus Other reproduce
	// the overall series over the segment exactly. Nil in exact mode.
	Other *Explanation
}

// Result is the output of one Explain call.
type Result struct {
	// K is the chosen segment count.
	K int
	// AutoK reports whether K was selected by the elbow method.
	AutoK bool
	// Segments holds the K segments in time order.
	Segments []Segment
	// TotalVariance is the objective value of the chosen scheme.
	TotalVariance float64
	// KVariance[k] is the optimal total variance at k segments (the
	// K-Variance curve; index 0 unused, +Inf where infeasible).
	KVariance []float64
	// Series is the aggregated time series that was explained (after
	// smoothing, if any).
	Series []float64
	// Labels are the series' time labels.
	Labels []string
	// Timings is the latency breakdown.
	Timings Timings
	// Stats reports workload statistics.
	Stats Stats
	// Approx reports what the approximate path did; nil in exact mode.
	Approx *ApproxInfo
}

// Cuts returns the result's cut positions including endpoints.
func (r *Result) Cuts() []int {
	if len(r.Segments) == 0 {
		return nil
	}
	out := make([]int, 0, len(r.Segments)+1)
	out = append(out, r.Segments[0].Start)
	for _, s := range r.Segments {
		out = append(out, s.End)
	}
	return out
}

// Engine explains one aggregated time series. Construction runs the
// precompute module; Explain runs Cascading Analysts and K-Segmentation.
// An Engine is not safe for concurrent use.
type Engine struct {
	rel      *relation.Relation
	query    Query
	opts     Options
	u        *explain.Universe
	allowed  []bool
	filtered int // candidates surviving the filter, counted once
	// firstKeep[id] is the first position at which candidate id passes
	// the support filter (-1: filtered out); the append path uses it to
	// refresh the filter by rescanning only the changed suffix.
	firstKeep []int
	exp       *segment.Explainer
	// vc is the persistent variance calculator: variances of committed
	// history survive across Explain calls and streaming appends, so an
	// update only recomputes quantities the new data touches.
	vc *segment.VarCalc
	// approx is the cached candidate ranking of the approximate path;
	// nil until the first approximate explain, dropped on append.
	approx *approxState

	precompute time.Duration
}

// engineConfig selects construction variants shared by the public
// constructors: whether to build the per-segment explanation cache (the
// incremental snapshot path attaches an existing one instead, so building
// a throwaway here would be pure waste) and whether the universe should
// retain its append-path state.
type engineConfig struct {
	explainer bool
	streaming bool
}

// NewEngine builds the engine: it enumerates candidate explanations,
// precomputes their series, applies smoothing and the support filter.
func NewEngine(rel *relation.Relation, q Query, opts Options) (*Engine, error) {
	return newEngine(nil, rel, q, opts, engineConfig{explainer: true})
}

// NewEngineCtx is NewEngine with a cancellation context: candidate
// enumeration polls ctx between units of work and aborts with ctx's error
// when it is cancelled, so a request deadline bounds the expensive
// universe build instead of letting it run to completion.
func NewEngineCtx(ctx context.Context, rel *relation.Relation, q Query, opts Options) (*Engine, error) {
	return newEngine(ctx, rel, q, opts, engineConfig{explainer: true})
}

// ctxCancelFunc adapts a context into the polling hook the lower layers
// take; nil contexts poll as never-cancelled.
func ctxCancelFunc(ctx context.Context) func() error {
	if ctx == nil {
		return nil
	}
	return ctx.Err
}

func newEngine(ctx context.Context, rel *relation.Relation, q Query, opts Options, cfg engineConfig) (*Engine, error) {
	opts.setDefaults()
	start := time.Now()
	u, err := explain.NewUniverse(rel, explain.Config{
		Measure:     q.Measure,
		Agg:         q.Agg,
		ExplainBy:   q.ExplainBy,
		MaxOrder:    opts.MaxOrder,
		Hierarchies: opts.Hierarchies,
		Parallelism: opts.Parallelism,
		Streaming:   cfg.streaming,
		Cancel:      ctxCancelFunc(ctx),
	})
	if err != nil {
		return nil, err
	}
	return finishEngine(u, rel, q, opts, cfg, start)
}

// NewEngineFromUniverse builds an engine around an already materialized
// candidate universe — the warm-restart path. The universe typically
// comes from a catalog snapshot (explain.ReadUniverseSnapshot), so the
// expensive precompute group-by and planning never run; smoothing and the
// support filter still run here, per the requested options, on the
// restored raw series. The universe must match the query exactly (same
// measure, aggregate, explain-by set, and order threshold) — on any
// mismatch an error is returned and the caller should fall back to
// NewEngine. The engine takes ownership of u: it must not be shared with
// another engine (smoothing mutates the universe's active series views).
func NewEngineFromUniverse(u *explain.Universe, q Query, opts Options) (*Engine, error) {
	opts.setDefaults()
	start := time.Now()
	rel := u.Relation()
	if m := rel.MeasureIndex(q.Measure); m < 0 || m != u.MeasureIndex() {
		return nil, fmt.Errorf("core: universe aggregates measure %d, query wants %q", u.MeasureIndex(), q.Measure)
	}
	if u.Agg() != q.Agg {
		return nil, fmt.Errorf("core: universe aggregate %v, query wants %v", u.Agg(), q.Agg)
	}
	wantBy := make([]int, 0, len(q.ExplainBy))
	if len(q.ExplainBy) == 0 {
		for i := 0; i < rel.NumDims(); i++ {
			wantBy = append(wantBy, i)
		}
	} else {
		for _, name := range q.ExplainBy {
			d := rel.DimIndex(name)
			if d < 0 {
				return nil, fmt.Errorf("core: unknown explain-by attribute %q", name)
			}
			wantBy = append(wantBy, d)
		}
		sort.Ints(wantBy)
	}
	gotBy := u.ExplainBy()
	if len(gotBy) != len(wantBy) {
		return nil, fmt.Errorf("core: universe explains by %d attributes, query wants %d", len(gotBy), len(wantBy))
	}
	for i := range gotBy {
		if gotBy[i] != wantBy[i] {
			return nil, fmt.Errorf("core: universe explain-by set differs from the query's")
		}
	}
	wantOrder := opts.MaxOrder
	if wantOrder > len(wantBy) {
		wantOrder = len(wantBy)
	}
	if u.MaxOrder() != wantOrder {
		return nil, fmt.Errorf("core: universe order threshold %d, query wants %d", u.MaxOrder(), wantOrder)
	}
	return finishEngine(u, rel, q, opts, engineConfig{explainer: true}, start)
}

// finishEngine runs everything after universe materialization — the tail
// of the precompute module (smoothing, support filter) plus explainer
// construction — shared by the from-relation constructors and the
// from-snapshot path.
func finishEngine(u *explain.Universe, rel *relation.Relation, q Query, opts Options, cfg engineConfig, start time.Time) (*Engine, error) {
	if opts.SmoothWindow > 1 {
		u.Smooth(opts.SmoothWindow)
	}
	e := &Engine{rel: rel, query: q, opts: opts, u: u, filtered: u.NumCandidates()}
	if opts.FilterRatio > 0 {
		totals := u.TotalValues()
		n := u.NumCandidates()
		e.allowed = make([]bool, n)
		e.firstKeep = make([]int, n)
		e.filtered = 0
		for id := 0; id < n; id++ {
			fk := u.FirstQualifying(id, 0, opts.FilterRatio, totals)
			e.firstKeep[id] = fk
			if fk >= 0 {
				e.allowed[id] = true
				e.filtered++
			}
		}
	}
	if cfg.explainer {
		e.exp = segment.NewExplainer(u, segment.ExplainerConfig{
			M:              opts.M,
			Metric:         opts.Metric,
			Allowed:        e.allowed,
			UseGuessVerify: opts.UseGuessVerify,
			GuessInit:      opts.GuessInit,
		})
	}
	e.precompute = time.Since(start)
	return e, nil
}

// ingestAppended consumes relation rows appended (via Relation.AppendRows)
// since the engine last saw the relation: the universe extends in place
// from just the delta, and the support filter refreshes by rescanning
// only positions the delta could have changed. The per-segment
// explanation cache keeps every still-valid entry — candidate IDs are
// stable under the append path, so no remapping happens.
func (e *Engine) ingestAppended() (explain.AppendInfo, error) {
	start := time.Now()
	info, err := e.u.Append()
	if err != nil {
		return info, err
	}
	nc := e.u.NumCandidates()
	if e.opts.FilterRatio > 0 {
		totals := e.u.TotalValues()
		oldCands := len(e.firstKeep)
		for id := oldCands; id < nc; id++ {
			e.firstKeep = append(e.firstKeep, -1)
		}
		if len(e.allowed) < nc {
			grown := make([]bool, nc)
			copy(grown, e.allowed)
			e.allowed = grown
		}
		e.filtered = 0
		flippedFrom := info.NewTimestamps
		for id := 0; id < nc; id++ {
			fk := e.firstKeep[id]
			if fk < 0 || fk >= info.ChangedFrom {
				fk = e.u.FirstQualifying(id, info.ChangedFrom, e.opts.FilterRatio, totals)
				e.firstKeep[id] = fk
			}
			keep := fk >= 0
			// A candidate crossing the support threshold (either way)
			// invalidates cached explanations — segments solved under the
			// old selectable set may rank differently now — but only from
			// its first position with any mass: while its series is zero
			// its γ is zero at every segment endpoint, so it can neither
			// be selected nor change what was. A slice born in a recent
			// delta (FL appearing mid-stream) that crosses the threshold
			// later therefore invalidates only from its birth, and the
			// usual case — no flip at all — invalidates nothing extra.
			if id < oldCands && e.allowed[id] != keep {
				series := e.u.Candidate(id).Series
				for t := 0; t < info.ChangedFrom && t < flippedFrom; t++ {
					if series[t] != (relation.SumCount{}) {
						flippedFrom = t
						break
					}
				}
			}
			e.allowed[id] = keep
			if keep {
				e.filtered++
			}
		}
		if flippedFrom < info.ChangedFrom {
			info.ChangedFrom = flippedFrom
		}
	} else {
		e.filtered = nc
	}
	e.exp.Rebind(e.u) // same universe: grows caches, remaps nothing
	e.exp.SetAllowed(e.allowed)
	if e.approx != nil {
		// Appended data shifts the contribution bounds, so the pruned
		// selection is stale: clear the restriction (dropping caches
		// solved under it) and let the next approximate explain re-rank.
		e.approx = nil
		e.exp.SetRestriction(e.allowed, nil)
		e.vc = nil
	}
	e.precompute = time.Since(start)
	return info, nil
}

// InvalidateFrom drops every cached per-segment quantity — top
// explanations, ideal DCGs, and variances — touching a position at or
// after p. The real-time extension calls it with the first changed
// position after each append.
func (e *Engine) InvalidateFrom(p int) {
	e.exp.InvalidateFrom(p)
	if e.vc != nil {
		e.vc.InvalidateFrom(p)
	}
}

// Universe exposes the candidate universe (for experiments and examples
// that plot per-slice series).
func (e *Engine) Universe() *explain.Universe { return e.u }

// Explainer exposes the per-segment explanation cache.
func (e *Engine) Explainer() *segment.Explainer { return e.exp }

// FilteredCount returns the number of candidates surviving the filter,
// counted once at construction rather than rescanned per call.
func (e *Engine) FilteredCount() int { return e.filtered }

// MemoryFootprint estimates the engine's heap cost in bytes: the
// candidate universe's series arenas plus the per-segment explanation
// cache's triangle. The serving layer's registry uses it to enforce a
// memory budget across pooled engines; it is an estimate, tuned for
// consistent relative cost rather than byte-exact accounting.
func (e *Engine) MemoryFootprint() int64 {
	b := e.u.ApproxBytes()
	// Flat segment-cache triangle (n ≤ 1024): one generation-tagged slot
	// per (c, t) pair; cached cascading results add to it as segments are
	// solved, estimated at one picked-explanation record per slot.
	n := int64(e.u.NumTimestamps())
	b += n * (n + 1) / 2 * 24
	// Filter bitmaps and first-qualifying positions.
	b += int64(len(e.allowed)) + int64(len(e.firstKeep))*8
	return b
}

// ResidentBytes is the engine's heap-resident cost — MemoryFootprint
// under its charging name. When the candidate arena aliases a snapshot
// mapping, the arena is excluded here and reported by MappedBytes
// instead: resident bytes are charged against the serving memory budget,
// mapped bytes are kernel-evictable and only tracked.
func (e *Engine) ResidentBytes() int64 { return e.MemoryFootprint() }

// MappedBytes reports the size of the candidate arena when it aliases a
// read-only snapshot mapping, and 0 for heap-backed engines.
func (e *Engine) MappedBytes() int64 { return e.u.MappedBytes() }

// ArenaMapped reports whether this engine reads candidate series off a
// memory-mapped snapshot arena.
func (e *Engine) ArenaMapped() bool { return e.u.ArenaMapped() }

// Explain runs the full pipeline and reports the evolving explanations.
func (e *Engine) Explain() (*Result, error) {
	return e.explainWithPositions(nil)
}

// ExplainWithK runs the full pipeline with the given segment-count
// override: k > 0 fixes K, k ≤ 0 selects it with the elbow method. It
// lets one engine serve requests with different K without being rebuilt —
// the per-segment explanation cache is K-independent, so everything after
// the first call reuses it.
func (e *Engine) ExplainWithK(k int) (*Result, error) {
	return e.explainPositionsK(nil, nil, k)
}

// ExplainWithKCtx is ExplainWithK with a cancellation context: the
// pipeline polls ctx between per-segment solves (the unit of expensive
// work) and aborts with ctx's error once it is cancelled. An aborted
// explain leaves the engine consistent — segments solved before the
// cancellation stay cached and benefit the next call.
func (e *Engine) ExplainWithKCtx(ctx context.Context, k int) (*Result, error) {
	return e.explainPositionsK(ctx, nil, k)
}

// explainWithPositions runs segmentation restricted to the given cut
// positions (nil means engine-managed: all positions, or the sketch when
// O2 is on).
func (e *Engine) explainWithPositions(positions []int) (*Result, error) {
	return e.explainPositionsK(nil, positions, e.opts.K)
}

// explainPositionsK routes one explain to the exact pipeline or, under
// Options.Approx, the anytime approximate path (which runs the exact
// pipeline against a pruned candidate set and annotates error bounds).
func (e *Engine) explainPositionsK(ctx context.Context, positions []int, fixedK int) (*Result, error) {
	if e.opts.Approx.Enabled {
		return e.explainApproxK(ctx, positions, fixedK)
	}
	return e.explainExactK(ctx, positions, fixedK)
}

// explainExactK is the pipeline body behind Explain, ExplainWithK,
// and the incremental position-restricted path.
func (e *Engine) explainExactK(ctx context.Context, positions []int, fixedK int) (*Result, error) {
	cancel := ctxCancelFunc(ctx)
	if cancel != nil {
		if err := cancel(); err != nil {
			return nil, err
		}
	}
	n := e.u.NumTimestamps()
	if n < 2 {
		return nil, fmt.Errorf("core: series has %d points, nothing to explain", n)
	}
	if e.vc == nil {
		e.vc = segment.NewVarCalc(e.exp, e.opts.VarianceKind)
	}
	vc := e.vc

	wallStart := time.Now()
	_, caBefore, _ := e.exp.Stats()

	coarsened := false
	if positions == nil && e.opts.UseSketch {
		sketch, err := segment.SelectSketch(vc, e.opts.Sketch)
		if err != nil {
			return nil, err
		}
		positions = sketch
		if at := e.opts.Sketch.CoarsenAt(); at > 0 && n > at && len(sketch) < n {
			// Long series: phase 2 treats sketch intervals as objects.
			vc.SetObjectPositions(sketch)
			coarsened = true
		}
	}
	if !coarsened && vc.HasObjectPositions() {
		// A previous call coarsened the persistent calculator; restore
		// unit objects (this resets its caches).
		vc.SetObjectPositions(nil)
	}
	if e.opts.Parallelism > 1 {
		// Pre-solve every segment the DP will touch across cores. With a
		// position restriction the work list is the position pairs plus
		// unit objects; without one it is all O(n²) pairs.
		pos := positions
		if pos == nil {
			pos = make([]int, n)
			for i := range pos {
				pos[i] = i
			}
		}
		e.exp.PrewarmParallelCancel(segment.SegmentPairs(pos, n, true), e.opts.Parallelism, cancel)
		if cancel != nil {
			if err := cancel(); err != nil {
				return nil, err
			}
		}
	}
	dpRes, err := segment.Optimize(vc, segment.Options{
		KMax:      e.opts.KMax,
		Positions: positions,
		Cancel:    cancel,
	})
	if err != nil {
		return nil, err
	}
	curve := segment.KVarianceCurve(dpRes)

	k := fixedK
	autoK := false
	if k <= 0 {
		k = segment.ElbowK(curve)
		autoK = true
	}
	scheme, ok := dpRes.Scheme(k)
	if !ok {
		// Requested K infeasible under the position restriction: fall
		// back to the largest feasible K.
		for kk := len(dpRes.ByK) - 1; kk >= 1; kk-- {
			if s, feasible := dpRes.Scheme(kk); feasible {
				scheme, k, ok = s, kk, true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("core: no feasible segmentation")
		}
	}

	res := &Result{
		K:             k,
		AutoK:         autoK,
		TotalVariance: scheme.TotalVariance,
		KVariance:     curve,
		Series:        e.u.TotalValues(),
		Labels:        e.rel.TimeLabels(),
	}
	for i := 1; i < len(scheme.Cuts); i++ {
		if cancel != nil {
			if err := cancel(); err != nil {
				return nil, err
			}
		}
		res.Segments = append(res.Segments, e.buildSegment(scheme.Cuts[i-1], scheme.Cuts[i]))
	}

	wall := time.Since(wallStart)
	solves, caTotal, rounds := e.exp.Stats()
	caDelta := caTotal - caBefore
	res.Timings = Timings{
		Precompute:   e.precompute,
		Cascading:    caDelta,
		Segmentation: wall - caDelta,
	}
	res.Stats = Stats{
		Epsilon:         e.u.NumCandidates(),
		FilteredEpsilon: e.FilteredCount(),
		N:               n,
		CASolves:        solves,
		GuessRounds:     rounds,
		SketchSize:      n,
	}
	if positions != nil {
		res.Stats.SketchSize = len(positions)
	}
	return res, nil
}

// buildSegment assembles the reported segment [a, b].
func (e *Engine) buildSegment(a, b int) Segment {
	seg := Segment{
		Start:      a,
		End:        b,
		StartLabel: e.rel.TimeLabel(a),
		EndLabel:   e.rel.TimeLabel(b),
	}
	top := e.exp.TopM(a, b)
	for _, p := range top.Explanations {
		cand := e.u.Candidate(p.ID)
		attrs := make(map[string]string, cand.Conj.Order())
		for _, pr := range cand.Conj {
			attrs[e.rel.Dim(pr.Dim).Name()] = e.rel.Dim(pr.Dim).Value(pr.Value)
		}
		vals := e.u.CandidateValues(p.ID)[a : b+1]
		seg.Top = append(seg.Top, Explanation{
			Predicates: cand.Conj.String(e.rel),
			Attrs:      attrs,
			Path:       e.u.LevelPath(p.ID),
			Gamma:      p.Gamma,
			Effect:     p.Effect,
			Values:     append([]float64(nil), vals...),
		})
	}
	return seg
}

// TopExplanations exposes the two-relations-diff building block
// (Section 3.1): the top-m non-overlapping explanations for the single
// segment [from, to].
func (e *Engine) TopExplanations(from, to int) ([]Explanation, error) {
	n := e.u.NumTimestamps()
	if from < 0 || to >= n || from >= to {
		return nil, fmt.Errorf("core: invalid segment [%d, %d] of %d points", from, to, n)
	}
	return e.buildSegment(from, to).Top, nil
}
