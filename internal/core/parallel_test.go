package core

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// TestParallelismMatchesSequential verifies the multi-core prewarm path
// produces the identical segmentation and explanations.
func TestParallelismMatchesSequential(t *testing.T) {
	rel := threePhase(t, 50, []int{18, 34})
	q := Query{Measure: "v", Agg: relation.Sum}
	seq, err := NewEngine(rel, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := seq.Explain()
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(rel, q, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rs.Cuts()) != fmt.Sprint(rp.Cuts()) {
		t.Errorf("parallel cuts %v != sequential %v", rp.Cuts(), rs.Cuts())
	}
	if rs.TotalVariance != rp.TotalVariance {
		t.Errorf("parallel variance %g != sequential %g", rp.TotalVariance, rs.TotalVariance)
	}
	for i := range rs.Segments {
		a, b := rs.Segments[i], rp.Segments[i]
		if len(a.Top) != len(b.Top) {
			t.Fatalf("segment %d: %d vs %d explanations", i, len(a.Top), len(b.Top))
		}
		for j := range a.Top {
			if a.Top[j].Predicates != b.Top[j].Predicates || a.Top[j].Gamma != b.Top[j].Gamma {
				t.Errorf("segment %d top %d differs: %+v vs %+v", i, j, a.Top[j], b.Top[j])
			}
		}
	}
}

// TestParallelismWithOptimizations exercises the parallel path together
// with filter + guess-and-verify + sketching.
func TestParallelismWithOptimizations(t *testing.T) {
	rel := threePhase(t, 80, []int{25, 55})
	q := Query{Measure: "v", Agg: relation.Sum}
	opts := DefaultOptions()
	opts.Parallelism = 4
	eng, err := NewEngine(rel, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	cuts := res.Cuts()
	found25, found55 := false, false
	for _, c := range cuts {
		if c >= 23 && c <= 27 {
			found25 = true
		}
		if c >= 53 && c <= 57 {
			found55 = true
		}
	}
	if !found25 || !found55 {
		t.Errorf("parallel optimized cuts %v miss ground truth {25, 55}", cuts)
	}
}
