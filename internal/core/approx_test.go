package core

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/synth"
)

func highCardRel(t *testing.T) *relation.Relation {
	t.Helper()
	d, err := synth.HighCardinality(synth.HighCardParams{
		Users: 80, Regions: 10, Whales: 4, N: 64, Seed: 7,
	})
	if err != nil {
		t.Fatalf("highcard: %v", err)
	}
	return d.Rel
}

func highCardQuery() Query {
	return Query{Measure: "events", Agg: relation.Sum, ExplainBy: []string{"user", "region"}}
}

func highCardOpts() Options {
	opts := DefaultOptions()
	opts.MaxOrder = 2
	opts.K = 4
	return opts
}

// TestApproxWithinReportedBound is the core correctness contract of the
// approximate path: for every reported segment, the exact optimal
// attribution exceeds the approximate one by at most the reported
// relative error bound, and the reported explanations plus the residual
// reproduce the overall series exactly.
func TestApproxWithinReportedBound(t *testing.T) {
	rel := highCardRel(t)
	q := highCardQuery()

	exact, err := NewEngine(rel, q, highCardOpts())
	if err != nil {
		t.Fatalf("exact engine: %v", err)
	}
	if _, err := exact.Explain(); err != nil {
		t.Fatalf("exact explain: %v", err)
	}

	aopts := highCardOpts()
	aopts.Approx = ApproxOptions{Enabled: true, MaxCandidates: 128, Epsilon: 0.05}
	approx, err := NewEngine(rel, q, aopts)
	if err != nil {
		t.Fatalf("approx engine: %v", err)
	}
	res, err := approx.Explain()
	if err != nil {
		t.Fatalf("approx explain: %v", err)
	}
	if res.Approx == nil {
		t.Fatal("approx result carries no ApproxInfo")
	}
	if res.Approx.CandidatesUsed > 128 {
		t.Fatalf("CandidatesUsed = %d exceeds the 128 budget", res.Approx.CandidatesUsed)
	}
	if res.Approx.CandidatesUsed >= res.Approx.CandidatesEligible {
		t.Fatalf("nothing pruned (used %d of %d): scenario too small to exercise approx",
			res.Approx.CandidatesUsed, res.Approx.CandidatesEligible)
	}
	if res.Approx.Theta <= 0 {
		t.Fatalf("theta = %g, want > 0 with pruning active", res.Approx.Theta)
	}

	m := len(exact.Explainer().TopM(0, 1).Best) - 1
	for _, seg := range res.Segments {
		// Exact optimal attribution for the approximate run's own segment.
		ge := exact.Explainer().TopM(seg.Start, seg.End).Best[m]
		var ga float64
		for _, e := range seg.Top {
			ga += e.Gamma
		}
		if ge > 0 {
			actual := (ge - ga) / ge
			if actual > seg.ErrBound+1e-9 {
				t.Errorf("segment [%d,%d]: actual error %.6f exceeds reported bound %.6f (exact %g, approx %g)",
					seg.Start, seg.End, actual, seg.ErrBound, ge, ga)
			}
		}
		if seg.ErrBound > res.Approx.MaxErrBound+1e-12 {
			t.Errorf("segment bound %g exceeds reported MaxErrBound %g", seg.ErrBound, res.Approx.MaxErrBound)
		}

		// Totals stay exact: Top + Other reproduce the overall series.
		if seg.Other == nil {
			t.Fatalf("segment [%d,%d]: approx mode reported no residual", seg.Start, seg.End)
		}
		for i := 0; i <= seg.End-seg.Start; i++ {
			sum := seg.Other.Values[i]
			for _, e := range seg.Top {
				sum += e.Values[i]
			}
			want := res.Series[seg.Start+i]
			if math.Abs(sum-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("segment [%d,%d] point %d: top+other = %g, total %g",
					seg.Start, seg.End, i, sum, want)
			}
		}
	}
	if !res.Approx.Truncated && res.Approx.CandidatesUsed < res.Approx.CandidatesEligible &&
		res.Approx.CandidatesUsed < aopts.Approx.MaxCandidates &&
		res.Approx.MaxErrBound > aopts.Approx.Epsilon {
		t.Errorf("refinement stopped early: bound %g > ε %g with budget left",
			res.Approx.MaxErrBound, aopts.Approx.Epsilon)
	}
}

// TestApproxEpsilonRefinement: with an ample candidate budget the
// refinement loop must actually reach the requested epsilon.
func TestApproxEpsilonRefinement(t *testing.T) {
	rel := highCardRel(t)
	opts := highCardOpts()
	opts.Approx = ApproxOptions{Enabled: true, MaxCandidates: 1 << 20, Epsilon: 0.05}
	eng, err := NewEngine(rel, highCardQuery(), opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if res.Approx.MaxErrBound > 0.05 {
		t.Fatalf("MaxErrBound = %g, want ≤ 0.05 with an unbounded candidate budget", res.Approx.MaxErrBound)
	}
	if res.Approx.Truncated {
		t.Fatal("Truncated set without any time budget")
	}

	// K reuse on the same engine: a second explain with another K serves
	// from the already refined selection.
	res2, err := eng.ExplainWithK(6)
	if err != nil {
		t.Fatalf("explain k=6: %v", err)
	}
	if res2.Approx == nil || res2.K != 6 {
		t.Fatalf("k=6 re-explain: approx=%v k=%d", res2.Approx, res2.K)
	}
}

// spikeFieldRel builds a flat field of near-equal single-spike users: no
// candidate dominates, so any pruning leaves a provably positive error
// bound (the solver's marginal picks score below the pruning threshold θ)
// and refinement keeps going until every candidate is kept.
func spikeFieldRel(t *testing.T) *relation.Relation {
	t.Helper()
	const users, n = 200, 40
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("t%02d", i)
	}
	b := relation.NewBuilder("spikes", "T", []string{"user"}, []string{"events"})
	b.SetTimeOrder(labels)
	for i := 0; i < users; i++ {
		tt := 1 + (i*7)%(n-2)
		if err := b.Append(labels[tt], []string{fmt.Sprintf("u%03d", i)}, []float64{10 + 0.01*float64(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return rel
}

func spikeFieldQuery() Query {
	return Query{Measure: "events", Agg: relation.Sum, ExplainBy: []string{"user"}}
}

// TestApproxTimeBudgetTruncates: an exhausted time budget returns the
// best completed round, flagged, instead of an error.
func TestApproxTimeBudgetTruncates(t *testing.T) {
	rel := spikeFieldRel(t)
	opts := DefaultOptions()
	opts.K = 3
	// Epsilon unreachably tight on a flat spike field (the bound stays
	// positive until everything is kept) and a budget that expires
	// immediately: exactly one round runs, then refinement stops
	// gracefully.
	opts.Approx = ApproxOptions{Enabled: true, MaxCandidates: 1 << 20, Epsilon: 1e-12, TimeBudget: time.Nanosecond}
	eng, err := NewEngine(rel, spikeFieldQuery(), opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if res.Approx == nil || !res.Approx.Truncated {
		t.Fatalf("expected a truncated approx result, got %+v", res.Approx)
	}
	if res.Approx.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 under an expired budget", res.Approx.Rounds)
	}
	if len(res.Segments) == 0 {
		t.Fatal("truncated result carries no segments")
	}
}

// TestApproxDeadlineDegradesNotFails: a context that expires between
// refinement rounds yields the best completed round, not an error — the
// serving layer's graceful-degradation contract.
func TestApproxDeadlineDegradesNotFails(t *testing.T) {
	rel := highCardRel(t)
	opts := highCardOpts()
	opts.Approx = ApproxOptions{Enabled: true, MaxCandidates: 1 << 20, Epsilon: 1e-12}
	eng, err := NewEngine(rel, highCardQuery(), opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	// Generous enough for at least one round, far too tight to refine to
	// an impossible epsilon (which needs every candidate).
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := eng.ExplainWithKCtx(ctx, 4)
	if err != nil {
		t.Fatalf("expected graceful degradation, got error: %v", err)
	}
	if res.Approx == nil {
		t.Fatal("no ApproxInfo on degraded result")
	}

	// A context already expired before the first round has nothing to
	// degrade to and must propagate the error.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	eng2, err := NewEngine(rel, highCardQuery(), opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if _, err := eng2.ExplainWithKCtx(expired, 4); err == nil {
		t.Fatal("pre-expired context: want an error, got none")
	}
}

// TestApproxRequiresAbsoluteChange: the contribution bound is only sound
// for the absolute-change metric; other metrics must refuse rather than
// report unsound bounds.
func TestApproxRequiresAbsoluteChange(t *testing.T) {
	rel := highCardRel(t)
	opts := highCardOpts()
	opts.Metric = explain.RelativeChange
	opts.Approx = ApproxOptions{Enabled: true}
	eng, err := NewEngine(rel, highCardQuery(), opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if _, err := eng.Explain(); err == nil {
		t.Fatal("want an error for approx + relative-change, got none")
	}
}

// TestExactModeUnchanged: exact mode carries no approx annotations.
func TestExactModeUnchanged(t *testing.T) {
	rel := highCardRel(t)
	eng, err := NewEngine(rel, highCardQuery(), highCardOpts())
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if res.Approx != nil {
		t.Fatal("exact result carries ApproxInfo")
	}
	for _, seg := range res.Segments {
		if seg.ErrBound != 0 || seg.Other != nil {
			t.Fatal("exact segment carries approx annotations")
		}
	}
}
