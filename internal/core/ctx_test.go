package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/datasets"
)

func TestNewEngineCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := datasets.VaxDeaths()
	_, err := NewEngineCtx(ctx, d.Rel, Query{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
	}, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExplainWithKCtxCancelled(t *testing.T) {
	d := datasets.VaxDeaths()
	eng, err := NewEngine(d.Rel, Query{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ExplainWithKCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abort left the engine consistent: an unbounded explain succeeds.
	if _, err := eng.ExplainWithK(0); err != nil {
		t.Fatalf("explain after aborted call: %v", err)
	}
}

// TestExplainDeadlineMidFlight cancels a liquor explain mid-computation
// (the cold per-segment solve sweep takes far longer than the deadline)
// and checks the engine both observes the deadline and stays usable.
func TestExplainDeadlineMidFlight(t *testing.T) {
	d := datasets.Liquor()
	opts := DefaultOptions()
	opts.MaxOrder = d.MaxOrder
	eng, err := NewEngine(d.Rel, Query{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = eng.ExplainWithKCtx(ctx, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The abort must be prompt — the point of the hook is that an expired
	// request stops consuming its worker slot. Allow generous slack for
	// slow CI machines: the uncancelled explain takes hundreds of ms even
	// on fast hardware.
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("cancelled explain took %v, want prompt abort", took)
	}

	// Solves cached before the abort are kept, and a later uncancelled
	// explain finishes normally on the same engine.
	res, err := eng.ExplainWithK(0)
	if err != nil {
		t.Fatalf("explain after aborted call: %v", err)
	}
	if res.K < 2 || len(res.Segments) != res.K {
		t.Errorf("post-abort result: K=%d segments=%d", res.K, len(res.Segments))
	}
}

// TestCancelledBuildDeterministic checks NewEngineCtx with a deadline in
// the past fails the same way regardless of parallelism (the enumeration
// fan-out polls the hook on every worker).
func TestCancelledBuildDeterministic(t *testing.T) {
	d := datasets.VaxDeaths()
	for _, par := range []int{0, 4} {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		opts := DefaultOptions()
		opts.Parallelism = par
		_, err := NewEngineCtx(ctx, d.Rel, Query{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
		}, opts)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("parallelism %d: err = %v, want DeadlineExceeded", par, err)
		}
	}
}
