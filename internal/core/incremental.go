package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Incremental supports the real-time extension of Section 8: the engine
// explains the series once, caches every scored segment's
// top-explanations, and when new points arrive it recomputes only what
// the new data touches — top explanations involving new points, and a
// segmentation restricted to the previous cutting points plus the newly
// arrived positions.
//
// Append and AppendRows are the true streaming path: the delta flows
// through Relation.AppendRows into Universe.Append, extending every
// candidate's series inside the shared arena and registering candidates
// that first appear in the delta at the tail, so per-update cost scales
// with the delta, not with history. Update remains as a compatibility
// wrapper for callers that re-materialize full snapshots; it rebuilds the
// universe (linear in total history) but still reuses the expensive
// per-segment explanation cache.
type Incremental struct {
	query Query
	opts  Options

	eng      *Engine
	lastCuts []int
	lastN    int
}

// NewIncremental builds the incremental explainer over the initial
// relation snapshot and produces the first result. The relation is
// retained and extended in place by AppendRows/Append; it must not be
// mutated elsewhere afterwards.
func NewIncremental(rel *relation.Relation, q Query, opts Options) (*Incremental, *Result, error) {
	return NewIncrementalCtx(nil, rel, q, opts)
}

// NewIncrementalCtx is NewIncremental with a cancellation context: the
// initial engine build and first explain observe ctx, so a streaming
// client with an expired deadline does not pay for a full cold build.
func NewIncrementalCtx(ctx context.Context, rel *relation.Relation, q Query, opts Options) (*Incremental, *Result, error) {
	eng, err := newEngine(ctx, rel, q, opts, engineConfig{explainer: true, streaming: true})
	if err != nil {
		return nil, nil, err
	}
	res, err := eng.explainPositionsK(ctx, nil, eng.opts.K)
	if err != nil {
		return nil, nil, err
	}
	inc := &Incremental{
		query:    q,
		opts:     opts,
		eng:      eng,
		lastCuts: res.Cuts(),
		lastN:    eng.u.NumTimestamps(),
	}
	return inc, res, nil
}

// AppendRows ingests a batch of raw rows — row-major, exactly the shape
// Relation.AppendRows takes — and returns the refreshed result. Rows must
// land at or after the previously last timestamp; new time labels extend
// the series, new categorical values grow the dictionaries, and slices
// first occurring in the delta become candidates without disturbing any
// existing candidate ID. Per-update cost is O(delta), not O(history).
func (inc *Incremental) AppendRows(timeVals []string, dims [][]string, measures [][]float64) (*Result, error) {
	oldN := inc.lastN
	if err := inc.eng.rel.AppendRows(timeVals, dims, measures); err != nil {
		return nil, err
	}
	return inc.ingest(oldN)
}

// Append ingests a delta relation — same time dimension, dimensions, and
// measures as the base relation, holding only the newly arrived rows —
// and returns the refreshed result. The delta's rows are replayed in its
// own series order, so its time labels extend the base series in order.
func (inc *Incremental) Append(delta *relation.Relation) (*Result, error) {
	rel := inc.eng.rel
	if delta.TimeName() != rel.TimeName() {
		return nil, fmt.Errorf("core: delta time dimension %q, want %q", delta.TimeName(), rel.TimeName())
	}
	if err := sameNames("dimension", delta.DimNames(), rel.DimNames()); err != nil {
		return nil, err
	}
	if err := sameNames("measure", delta.MeasureNames(), rel.MeasureNames()); err != nil {
		return nil, err
	}
	timeVals, dims, measures := delta.RowBatch(delta.RowsByTime(), 0, delta.NumTimestamps())
	return inc.AppendRows(timeVals, dims, measures)
}

func sameNames(kind string, got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("core: delta has %d %s attributes, want %d", len(got), kind, len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("core: delta %s %d is %q, want %q", kind, i, got[i], want[i])
		}
	}
	return nil
}

// ingest runs the post-append refresh: universe/filter extension, cache
// invalidation of just the changed suffix, and the Section 8 restricted
// re-segmentation.
func (inc *Incremental) ingest(oldN int) (*Result, error) {
	info, err := inc.eng.ingestAppended()
	if err != nil {
		return nil, err
	}
	newN := info.NewTimestamps
	// Drop cached segments that touch a changed position. Unlike the
	// snapshot path, the append path knows exactly which positions the
	// delta (and, under smoothing, its window) could have perturbed.
	inc.eng.InvalidateFrom(info.ChangedFrom)

	// ChangedFrom == 0 means everything is fair game again (a candidate
	// with mass from the very start crossed the support threshold, or
	// smoothing reached back to the start): previous cuts carry no
	// authority, so run the unrestricted pipeline for this update instead
	// of the Section 8 restriction.
	var positions []int
	if info.ChangedFrom > 0 {
		positions = appendPositions(oldN, newN, inc.lastCuts, inc.eng.opts.KMax, info.ChangedFrom)
	}
	res, err := inc.eng.explainWithPositions(positions)
	if err != nil {
		return nil, err
	}
	inc.lastCuts = res.Cuts()
	inc.lastN = newN
	return res, nil
}

// appendPositions is the Section 8 position restriction, hardened for
// exact agreement with a from-scratch run on stable data. Candidate cut
// positions are:
//
//   - the previous cuts ("the existing time series' cutting points") and
//     each previous segment's midpoint, which keeps the K-Variance curve
//     deep enough that the elbow method behaves exactly as it does over
//     the unrestricted curve even when the delta is tiny;
//   - every position from the last committed interior cut to the end —
//     the still-open tail segment plus the newly arrived points. A regime
//     change reveals itself only a few points after it happens, so the
//     open tail must stay re-splittable at full resolution; segments
//     before it are committed and only their boundaries stay in play.
//
// Per-update segmentation cost is therefore O(tail²) DP cells over
// mostly cached segments. The open tail is short once cuts have
// committed (the typical streaming regime), but it deliberately spans
// the whole series while the segmentation is still K=1 — exactness
// against a from-scratch run takes precedence over capping the tail, and
// the per-segment caches keep even that case far below a rebuild.
// changedFrom is the first invalidated position: the open tail always
// extends back to it, so a mid-history invalidation (a support-filter
// flip on a candidate born mid-stream) stays re-splittable at full
// resolution. On a plain append it is at or after the previously last
// point and leaves the tail unchanged.
func appendPositions(oldN, newN int, lastCuts []int, kmax, changedFrom int) []int {
	posSet := map[int]bool{0: true, newN - 1: true}
	for _, c := range lastCuts {
		if c < newN-1 {
			posSet[c] = true
		}
	}
	for i := 1; i < len(lastCuts); i++ {
		if mid := (lastCuts[i-1] + lastCuts[i]) / 2; mid > 0 && mid < newN-1 {
			posSet[mid] = true
		}
	}
	// The open tail starts at the last interior cut strictly before the
	// previously last point (0 when the series is still one segment).
	openFrom := 0
	for _, c := range lastCuts {
		if c < oldN-1 && c > openFrom {
			openFrom = c
		}
	}
	if changedFrom < openFrom {
		openFrom = changedFrom
	}
	for p := openFrom; p < newN; p++ {
		if p > 0 {
			posSet[p] = true
		}
	}
	// Pad with a coarse power-of-two grid until the restricted K-Variance
	// curve reaches the same feasible depth (kmax segments) as the
	// unrestricted one — the elbow method normalizes K over the feasible
	// range, so a shallower curve would skew K selection. The grid is a
	// function of the grid stride alone, not of n, so its segments stay
	// cached across updates.
	if len(posSet) <= kmax {
		g := 1
		for (newN-1)/(2*g) >= kmax {
			g *= 2
		}
		for p := g; p < newN-1; p += g {
			posSet[p] = true
		}
	}
	positions := make([]int, 0, len(posSet))
	for p := range posSet {
		positions = append(positions, p)
	}
	sort.Ints(positions)
	return positions
}

// Update consumes a new relation snapshot that extends the previous one
// with later timestamps and returns the refreshed result. The previous
// snapshot's time labels must be an exact prefix of the new snapshot's.
//
// Update rebuilds the universe over the full snapshot (linear in total
// history) and remaps the cached per-segment results onto it; prefer
// Append/AppendRows, which consume only the delta. Update never builds a
// throwaway explanation cache: engine construction skips the explainer
// and the live one is re-attached after rebinding.
func (inc *Incremental) Update(newRel *relation.Relation) (*Result, error) {
	oldRel := inc.eng.rel
	oldN := inc.lastN
	newN := newRel.NumTimestamps()
	if newN < oldN {
		return nil, fmt.Errorf("core: new snapshot has %d timestamps, fewer than the previous %d", newN, oldN)
	}
	for i := 0; i < oldN; i++ {
		if newRel.TimeLabel(i) != oldRel.TimeLabel(i) {
			return nil, fmt.Errorf("core: time label %d changed from %q to %q; snapshots must append",
				i, oldRel.TimeLabel(i), newRel.TimeLabel(i))
		}
	}

	// Rebuild the universe over the extended relation (linear in the new
	// data) while keeping the expensive per-segment explanation cache.
	// engineConfig.explainer is false: the rebuilt engine adopts the live
	// explainer instead of constructing one only to discard it.
	fresh, err := newEngine(nil, newRel, inc.query, inc.opts, engineConfig{streaming: true})
	if err != nil {
		return nil, err
	}
	exp := inc.eng.exp
	exp.Rebind(fresh.u)
	exp.SetAllowed(fresh.allowed)
	// Smoothing looks half a window ahead, so cached segments near the
	// old tail are stale; revised last points likewise invalidate the
	// very end. Drop them and keep the rest.
	invalidFrom := oldN - 1
	if w := inc.opts.SmoothWindow; w > 1 {
		invalidFrom = oldN - 1 - w/2
		if invalidFrom < 0 {
			invalidFrom = 0
		}
	}
	// As on the append path, a candidate crossing the support-filter
	// threshold invalidates cached explanations from its first position
	// with mass: segments solved under the old selectable set may rank
	// differently now. Candidate IDs shift across the rebuild, so flips
	// are detected through the conjunctions.
	if inc.opts.FilterRatio > 0 {
		old := inc.eng
		for id := 0; id < old.u.NumCandidates() && invalidFrom > 0; id++ {
			nid, ok := fresh.u.Lookup(old.u.Candidate(id).Conj)
			if !ok || old.allowed[id] == fresh.allowed[nid] {
				continue
			}
			series := fresh.u.Candidate(nid).Series
			for t := 0; t < invalidFrom; t++ {
				if series[t] != (relation.SumCount{}) {
					invalidFrom = t
					break
				}
			}
		}
	}
	exp.InvalidateFrom(invalidFrom)
	fresh.exp = exp
	inc.eng = fresh

	res, err := inc.eng.explainWithPositions(appendPositions(oldN, newN, inc.lastCuts, inc.eng.opts.KMax, invalidFrom))
	if err != nil {
		return nil, err
	}
	inc.lastCuts = res.Cuts()
	inc.lastN = newN
	return res, nil
}

// Engine returns the current underlying engine.
func (inc *Incremental) Engine() *Engine { return inc.eng }
