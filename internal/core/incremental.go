package core

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Incremental supports the real-time extension of Section 8: the engine
// explains the series once, caches every scored segment's
// top-explanations, and when new points arrive it recomputes only what
// the new data touches — top explanations involving new points, and a
// segmentation restricted to the previous cutting points plus the newly
// arrived positions.
type Incremental struct {
	query Query
	opts  Options

	eng      *Engine
	lastCuts []int
	lastN    int
}

// NewIncremental builds the incremental explainer over the initial
// relation snapshot and produces the first result.
func NewIncremental(rel *relation.Relation, q Query, opts Options) (*Incremental, *Result, error) {
	eng, err := NewEngine(rel, q, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := eng.Explain()
	if err != nil {
		return nil, nil, err
	}
	inc := &Incremental{
		query:    q,
		opts:     opts,
		eng:      eng,
		lastCuts: res.Cuts(),
		lastN:    eng.u.NumTimestamps(),
	}
	return inc, res, nil
}

// Update consumes a new relation snapshot that extends the previous one
// with later timestamps and returns the refreshed result. The previous
// snapshot's time labels must be an exact prefix of the new snapshot's.
func (inc *Incremental) Update(newRel *relation.Relation) (*Result, error) {
	oldRel := inc.eng.rel
	oldN := inc.lastN
	newN := newRel.NumTimestamps()
	if newN < oldN {
		return nil, fmt.Errorf("core: new snapshot has %d timestamps, fewer than the previous %d", newN, oldN)
	}
	for i := 0; i < oldN; i++ {
		if newRel.TimeLabel(i) != oldRel.TimeLabel(i) {
			return nil, fmt.Errorf("core: time label %d changed from %q to %q; snapshots must append",
				i, oldRel.TimeLabel(i), newRel.TimeLabel(i))
		}
	}

	// Rebuild the universe over the extended relation (linear in the new
	// data) while keeping the expensive per-segment explanation cache.
	fresh, err := NewEngine(newRel, inc.query, inc.opts)
	if err != nil {
		return nil, err
	}
	exp := inc.eng.exp
	exp.Rebind(fresh.u)
	exp.SetAllowed(fresh.allowed)
	// Smoothing looks half a window ahead, so cached segments near the
	// old tail are stale; revised last points likewise invalidate the
	// very end. Drop them and keep the rest.
	invalidFrom := oldN - 1
	if w := inc.opts.SmoothWindow; w > 1 {
		invalidFrom = oldN - 1 - w/2
		if invalidFrom < 0 {
			invalidFrom = 0
		}
	}
	exp.InvalidateFrom(invalidFrom)
	fresh.exp = exp
	inc.eng = fresh

	// Candidate cut positions: previous cuts plus every new point
	// (Section 8: "runs the segmentation algorithm based on the existing
	// time series' cutting points and newly arrived data points").
	posSet := map[int]bool{0: true, newN - 1: true}
	for _, c := range inc.lastCuts {
		if c < newN-1 {
			posSet[c] = true
		}
	}
	for p := oldN - 1; p < newN; p++ {
		if p > 0 {
			posSet[p] = true
		}
	}
	positions := make([]int, 0, len(posSet))
	for p := range posSet {
		positions = append(positions, p)
	}
	sort.Ints(positions)

	res, err := inc.eng.explainWithPositions(positions)
	if err != nil {
		return nil, err
	}
	inc.lastCuts = res.Cuts()
	inc.lastN = newN
	return res, nil
}

// Engine returns the current underlying engine.
func (inc *Incremental) Engine() *Engine { return inc.eng }
