package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/relation"
)

func exportResult(t *testing.T) *Result {
	t.Helper()
	rel := threePhase(t, 40, []int{20})
	eng, err := NewEngine(rel, Query{Measure: "v", Agg: relation.Sum}, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteJSON(t *testing.T) {
	res := exportResult(t)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back resultJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.K != res.K || len(back.Segments) != len(res.Segments) {
		t.Errorf("round trip lost structure: %+v", back)
	}
	if len(back.Series) != 40 || len(back.Labels) != 40 {
		t.Errorf("series/labels lengths: %d/%d", len(back.Series), len(back.Labels))
	}
	if back.Segments[0].Top[0].Predicates != "category=a" {
		t.Errorf("first explanation = %q", back.Segments[0].Top[0].Predicates)
	}
	if back.Segments[0].Top[0].Effect != "+" {
		t.Errorf("effect = %q", back.Segments[0].Top[0].Effect)
	}
	// The K-variance curve is exported without infinities.
	for _, v := range back.KVariance {
		if v != v || v > 1e300 {
			t.Error("non-finite value leaked into JSON curve")
		}
	}
	if back.LatencyMs["cascading"] <= 0 {
		t.Error("latency breakdown missing")
	}
}

func TestWriteSegmentsCSV(t *testing.T) {
	res := exportResult(t)
	var buf bytes.Buffer
	if err := res.WriteSegmentsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	wantRows := 1 // header
	for _, seg := range res.Segments {
		if len(seg.Top) == 0 {
			wantRows++
		} else {
			wantRows += len(seg.Top)
		}
	}
	if len(rows) != wantRows {
		t.Errorf("rows = %d, want %d", len(rows), wantRows)
	}
	if rows[0][3] != "predicates" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][3] != "category=a" || rows[1][4] != "+" {
		t.Errorf("first data row = %v", rows[1])
	}
}
