package catalog

import (
	"runtime"
	"testing"
	"unsafe"

	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/synth"
)

var testLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mmapCapable reports whether this platform serves arena snapshots
// zero-copy: a real mapping plus host byte order matching the wire.
func mmapCapable() bool {
	return (runtime.GOOS == "linux" || runtime.GOOS == "darwin") && testLittleEndian
}

// TestSnapshotMmapRestore drives the beyond-RAM restore path end to end:
// an arena-form snapshot is written uncompressed in the v1 container,
// LoadSnapshot memory-maps it, and the restored universe reads candidate
// series straight off the mapping — bit-identical to the built one —
// while a snapshot refresh renaming over the file leaves those pinned
// slices untouched.
func TestSnapshotMmapRestore(t *testing.T) {
	oldThreshold := explain.ArenaSnapshotThreshold
	explain.ArenaSnapshotThreshold = 0
	defer func() { explain.ArenaSnapshotThreshold = oldThreshold }()

	hc, err := synth.HighCardinality(synth.HighCardParams{Users: 120, Regions: 10, N: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	name := "bigdata"
	c := stageDataset(t, name, hc.Rel, hc.Rel.DimNames(), 2)
	fp, err := c.DataFingerprint(name)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.LoadRelation(name)
	if err != nil {
		t.Fatal(err)
	}
	u, err := explain.NewUniverse(rel, explain.Config{
		Measure: rel.MeasureNames()[0], Agg: relation.Sum,
		ExplainBy: rel.DimNames(), MaxOrder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !u.ArenaSnapshotRaw() {
		t.Fatal("threshold 0 did not select the arena snapshot layout")
	}
	if err := c.SaveSnapshot(name, rel, u, fp); err != nil {
		t.Fatal(err)
	}
	// Arena snapshots must stay in the raw v1 container — a compressed
	// payload cannot be aliased off a mapping.
	if v := snapshotContainerVersionOf(t, c, name); v != snapContainerVersion1 {
		t.Fatalf("arena snapshot stored as container v%d, want raw v%d", v, snapContainerVersion1)
	}

	rel2, u2, err := c.LoadSnapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.NumRows() != rel.NumRows() {
		t.Fatalf("restored relation has %d rows, want %d", rel2.NumRows(), rel.NumRows())
	}
	if mmapCapable() {
		if !u2.ArenaMapped() {
			t.Fatal("LoadSnapshot did not alias the arena off the mapping")
		}
		want := int64(u.NumCandidates()) * int64(u.NumTimestamps()) * 16
		if got := u2.MappedBytes(); got != want {
			t.Fatalf("MappedBytes = %d, want %d", got, want)
		}
		if u2.ApproxBytes() >= u.ApproxBytes() {
			t.Fatalf("mapped universe ApproxBytes = %d, want < heap universe's %d", u2.ApproxBytes(), u.ApproxBytes())
		}
	} else if u2.ArenaMapped() {
		t.Fatal("platform without a mapping claims a mapped arena")
	}
	universesBitIdentical(t, u, u2)

	// A background refresh republishes snapshot.bin by rename while u2 is
	// live. The old inode's mapping must keep serving the old bytes.
	if err := c.SaveSnapshot(name, rel, u, fp); err != nil {
		t.Fatal(err)
	}
	universesBitIdentical(t, u, u2)

	// And a fresh load maps the new file.
	_, u3, err := c.LoadSnapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	universesBitIdentical(t, u, u3)
}

// TestSnapshotMmapFallbackToV2 pins that sub-threshold universes keep
// the compact compressed path and restore heap-resident even through the
// mapping-capable loader.
func TestSnapshotMmapFallbackToV2(t *testing.T) {
	hc, err := synth.HighCardinality(synth.HighCardParams{Users: 40, Regions: 6, N: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	name := "smalldata"
	c := stageDataset(t, name, hc.Rel, hc.Rel.DimNames(), 2)
	fp, err := c.DataFingerprint(name)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.LoadRelation(name)
	if err != nil {
		t.Fatal(err)
	}
	u, err := explain.NewUniverse(rel, explain.Config{
		Measure: rel.MeasureNames()[0], Agg: relation.Sum,
		ExplainBy: rel.DimNames(), MaxOrder: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.ArenaSnapshotRaw() {
		t.Fatal("small universe selected the arena layout under the default threshold")
	}
	if err := c.SaveSnapshot(name, rel, u, fp); err != nil {
		t.Fatal(err)
	}
	if v := snapshotContainerVersionOf(t, c, name); v != snapContainerVersion2 {
		t.Fatalf("small snapshot stored as container v%d, want compressed v%d", v, snapContainerVersion2)
	}
	_, u2, err := c.LoadSnapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	if u2.ArenaMapped() || u2.MappedBytes() != 0 {
		t.Fatal("compressed snapshot restore claims a mapped arena")
	}
	universesBitIdentical(t, u, u2)
}
