package catalog

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/datasets"
	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/synth"
)

// stageDataset installs a built relation into a fresh on-disk catalog the
// way the serving layer would: normalized CSV plus manifest.
func stageDataset(t *testing.T, name string, rel *relation.Relation, explainBy []string, maxOrder int) *Catalog {
	t.Helper()
	c := openTestCatalog(t)
	m := Manifest{
		Name:       name,
		TimeCol:    rel.TimeName(),
		DimCols:    rel.DimNames(),
		MeasureCol: rel.MeasureNames()[0],
		Agg:        "SUM",
		ExplainBy:  explainBy,
		MaxOrder:   maxOrder,
	}
	var csvBuf bytes.Buffer
	if err := relation.WriteCSV(&csvBuf, rel); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(m, bytes.NewReader(csvBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	return c
}

// universesBitIdentical compares two universes through the public API:
// same candidates in the same id order, bit-identical series, matching
// index, ancestry, and drill-down adjacency.
func universesBitIdentical(t *testing.T, a, b *explain.Universe) {
	t.Helper()
	if a.NumCandidates() != b.NumCandidates() || a.NumTimestamps() != b.NumTimestamps() {
		t.Fatalf("shape mismatch: (%d, %d) vs (%d, %d)",
			a.NumCandidates(), a.NumTimestamps(), b.NumCandidates(), b.NumTimestamps())
	}
	ta, tb := a.TotalSeries(), b.TotalSeries()
	for i := range ta {
		if math.Float64bits(ta[i].Sum) != math.Float64bits(tb[i].Sum) ||
			math.Float64bits(ta[i].Count) != math.Float64bits(tb[i].Count) {
			t.Fatalf("total series differs at %d", i)
		}
	}
	for id := 0; id < a.NumCandidates(); id++ {
		ca, cb := a.Candidate(id), b.Candidate(id)
		if !reflect.DeepEqual(ca.Conj, cb.Conj) {
			t.Fatalf("candidate %d conjunction %v vs %v", id, ca.Conj, cb.Conj)
		}
		for i := range ca.Series {
			if math.Float64bits(ca.Series[i].Sum) != math.Float64bits(cb.Series[i].Sum) ||
				math.Float64bits(ca.Series[i].Count) != math.Float64bits(cb.Series[i].Count) {
				t.Fatalf("candidate %d series differs at %d", id, i)
			}
		}
		if got, ok := b.Lookup(ca.Conj); !ok || got != id {
			t.Fatalf("candidate %d not resolvable through restored index", id)
		}
		if !reflect.DeepEqual(a.AncestorsOf(id), b.AncestorsOf(id)) {
			t.Fatalf("candidate %d ancestors differ", id)
		}
	}
}

// roundTripDataset saves and restores one dataset's snapshot and checks
// the restored relation and universe against the originals bit for bit.
// It returns the snapshot's on-disk size.
func roundTripDataset(t *testing.T, name string, rel *relation.Relation, explainBy []string, maxOrder int) int64 {
	t.Helper()
	c := stageDataset(t, name, rel, explainBy, maxOrder)
	fp, err := c.DataFingerprint(name)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := c.LoadRelation(name)
	if err != nil {
		t.Fatal(err)
	}
	u, err := explain.NewUniverse(loaded, explain.Config{
		Measure:   loaded.MeasureNames()[0],
		Agg:       relation.Sum,
		ExplainBy: explainBy,
		MaxOrder:  maxOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshot(name, loaded, u, fp); err != nil {
		t.Fatal(err)
	}
	rel2, u2, err := c.LoadSnapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.NumRows() != loaded.NumRows() || rel2.NumTimestamps() != loaded.NumTimestamps() {
		t.Fatalf("restored relation shape: %d rows, %d timestamps", rel2.NumRows(), rel2.NumTimestamps())
	}
	for m := 0; m < loaded.NumMeasures(); m++ {
		for row := 0; row < loaded.NumRows(); row++ {
			if math.Float64bits(loaded.MeasureValue(m, row)) != math.Float64bits(rel2.MeasureValue(m, row)) {
				t.Fatalf("measure %d row %d not bit-identical after restore", m, row)
			}
		}
	}
	for d := 0; d < loaded.NumDims(); d++ {
		for row := 0; row < loaded.NumRows(); row++ {
			if loaded.DimID(d, row) != rel2.DimID(d, row) {
				t.Fatalf("dim %d row %d id changed after restore", d, row)
			}
		}
	}
	universesBitIdentical(t, u, u2)

	st, err := os.Stat(filepath.Join(c.Dir(), name, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// snapshotContainerVersionOf reads the container version byte of a
// dataset's snapshot file.
func snapshotContainerVersionOf(t *testing.T, c *Catalog, name string) byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(c.Dir(), name, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	return raw[len(snapContainerMagic)]
}

func TestSnapshotRoundTripStream(t *testing.T) {
	d := datasets.Stream(datasets.StreamDays)
	size := roundTripDataset(t, "stream", d.Rel, d.ExplainBy, d.MaxOrder)
	// The ISSUE gate: snapshot at most half the CSV. The normalized CSV
	// the catalog serves is what restarts would otherwise parse.
	c := stageDataset(t, "stream2", d.Rel, d.ExplainBy, d.MaxOrder)
	csv, err := os.Stat(filepath.Join(c.Dir(), "stream2", dataFile))
	if err != nil {
		t.Fatal(err)
	}
	if size*2 > csv.Size() {
		t.Fatalf("stream snapshot %dB exceeds half the %dB CSV", size, csv.Size())
	}
}

func TestSnapshotRoundTripHighCard(t *testing.T) {
	hc, err := synth.HighCardinality(synth.HighCardParams{Users: 120, Regions: 10, N: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	roundTripDataset(t, "highcard", hc.Rel, hc.Rel.DimNames(), 2)
}

func TestSnapshotRoundTripLiquor(t *testing.T) {
	if testing.Short() {
		t.Skip("liquor round-trip is a full 400k-row build")
	}
	d := datasets.Liquor()
	size := roundTripDataset(t, "liquor", d.Rel, d.ExplainBy, d.MaxOrder)
	c := stageDataset(t, "liquor2", d.Rel, d.ExplainBy, d.MaxOrder)
	csv, err := os.Stat(filepath.Join(c.Dir(), "liquor2", dataFile))
	if err != nil {
		t.Fatal(err)
	}
	if size*2 > csv.Size() {
		t.Fatalf("liquor snapshot %dB exceeds half the %dB CSV", size, csv.Size())
	}
}

// TestSnapshotContainerCompressionGate pins the size gate: small payloads
// are stored flate-compressed (v2), large ones raw (v1) so the big-dataset
// restore path never pays decompression.
func TestSnapshotContainerCompressionGate(t *testing.T) {
	d := datasets.Stream(datasets.StreamDays)
	name := "gate"
	c := stageDataset(t, name, d.Rel, d.ExplainBy, d.MaxOrder)
	fp, err := c.DataFingerprint(name)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.LoadRelation(name)
	if err != nil {
		t.Fatal(err)
	}
	u, err := explain.NewUniverse(rel, explain.Config{
		Measure: rel.MeasureNames()[0], Agg: relation.Sum, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshot(name, rel, u, fp); err != nil {
		t.Fatal(err)
	}
	if v := snapshotContainerVersionOf(t, c, name); v != snapContainerVersion2 {
		t.Fatalf("small snapshot stored as container v%d, want compressed v%d", v, snapContainerVersion2)
	}
	// A v2 container with a corrupted compressed stream (checksum patched
	// to match) must fail cleanly in the inflater, not panic.
	path := filepath.Join(c.Dir(), name, snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := len(snapContainerMagic) + 1 + 8*5
	if len(raw) > headerLen+10 {
		bad := append([]byte(nil), raw...)
		for i := headerLen + 5; i < len(bad); i++ {
			bad[i] = 0x55
		}
		// Recompute nothing: the checksum now mismatches, which must be
		// reported as an error.
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.LoadSnapshot(name); err == nil {
			t.Fatal("corrupted compressed snapshot loaded without error")
		}
	}
}
