package catalog

import (
	"encoding/json"
	"testing"
)

// FuzzParseManifest drives manifest validation with arbitrary JSON: it
// must never panic, every accepted manifest must satisfy its own
// invariants (valid names, resolvable aggregate, consistent explain-by
// set), and re-encoding an accepted manifest must parse back to an
// accepted manifest (upload → store → reload round-trip stability).
func FuzzParseManifest(f *testing.F) {
	f.Add(`{"name":"sales","timeCol":"day","dimCols":["state"],"measureCol":"value"}`)
	f.Add(`{"name":"x","aliases":["y","z"],"timeCol":"t","dimCols":["a","b"],"measureCol":"m","agg":"AVG","explainBy":["a"],"maxOrder":2,"smoothWindow":7}`)
	f.Add(`{"name":"hc","timeCol":"T","dimCols":["user","region"],"measureCol":"events","approx":{"maxCandidates":4096,"epsilon":0.05}}`)
	f.Add(`{"name":"BAD NAME","timeCol":"t","dimCols":["a"],"measureCol":"m"}`)
	f.Add(`{"name":"dup","timeCol":"t","dimCols":["a","a"],"measureCol":"m"}`)
	f.Add(`{"name":"x","timeCol":"t","dimCols":["a"],"measureCol":"m","unknownField":1}`)
	f.Add(`not json`)
	f.Add(`{"name":"x","timeCol":"t","dimCols":["a"],"measureCol":"m","approx":{"epsilon":0.9}}`)

	f.Fuzz(func(t *testing.T, data string) {
		m, err := ParseManifest([]byte(data))
		if err != nil {
			return
		}
		if !ValidName(m.Name) {
			t.Fatalf("accepted invalid name %q", m.Name)
		}
		for _, a := range m.Aliases {
			if !ValidName(a) {
				t.Fatalf("accepted invalid alias %q", a)
			}
		}
		if _, err := m.AggFunc(); err != nil {
			t.Fatalf("accepted unresolvable aggregate %q: %v", m.Agg, err)
		}
		if o := m.EffectiveMaxOrder(); o < 1 || o > len(m.DimCols) {
			t.Fatalf("effective max order %d out of range for %d dims", o, len(m.DimCols))
		}
		// Round trip: store and reload must accept the same document.
		enc, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := ParseManifest(enc)
		if err != nil {
			t.Fatalf("round-trip rejected: %v\noriginal: %s\nencoded: %s", err, data, enc)
		}
		if m2.Name != m.Name || m2.TimeCol != m.TimeCol || m2.MeasureCol != m.MeasureCol {
			t.Fatalf("round-trip mutated the manifest: %+v vs %+v", m, m2)
		}
	})
}
