package catalog

import (
	"encoding/json"
	"testing"
)

// FuzzParseManifest drives manifest validation with arbitrary JSON: it
// must never panic, every accepted manifest must satisfy its own
// invariants (valid names, resolvable aggregate, consistent explain-by
// set), and re-encoding an accepted manifest must parse back to an
// accepted manifest (upload → store → reload round-trip stability).
func FuzzParseManifest(f *testing.F) {
	f.Add(`{"name":"sales","timeCol":"day","dimCols":["state"],"measureCol":"value"}`)
	f.Add(`{"name":"x","aliases":["y","z"],"timeCol":"t","dimCols":["a","b"],"measureCol":"m","agg":"AVG","explainBy":["a"],"maxOrder":2,"smoothWindow":7}`)
	f.Add(`{"name":"hc","timeCol":"T","dimCols":["user","region"],"measureCol":"events","approx":{"maxCandidates":4096,"epsilon":0.05}}`)
	f.Add(`{"name":"BAD NAME","timeCol":"t","dimCols":["a"],"measureCol":"m"}`)
	f.Add(`{"name":"dup","timeCol":"t","dimCols":["a","a"],"measureCol":"m"}`)
	f.Add(`{"name":"x","timeCol":"t","dimCols":["a"],"measureCol":"m","unknownField":1}`)
	f.Add(`not json`)
	f.Add(`{"name":"x","timeCol":"t","dimCols":["a"],"measureCol":"m","approx":{"epsilon":0.9}}`)
	// Hierarchy and range-bin declarations: the valid shapes…
	f.Add(`{"name":"tax","timeCol":"T","dimCols":["cat","subcat","leaf"],"measureCol":"sales","explainBy":["cat","subcat","leaf"],"hierarchies":[{"name":"taxonomy","levels":["cat","subcat","leaf"]}]}`)
	f.Add(`{"name":"geo","timeCol":"t","dimCols":["path"],"measureCol":"m","explainBy":["state","county"],"hierarchies":[{"name":"geo","levels":["state","county"],"pathCol":"path","delim":"/"}]}`)
	f.Add(`{"name":"rb","timeCol":"t","dimCols":["a"],"measureCol":"m","explainBy":["a","price_bin"],"rangeBins":[{"column":"price","bins":8,"as":"price_bin"}]}`)
	// …and the rejected ones: unknown level, cyclic path (pathCol among
	// its own levels), delim without pathCol, level collisions, bad bins.
	f.Add(`{"name":"bad","timeCol":"t","dimCols":["a"],"measureCol":"m","hierarchies":[{"name":"h","levels":["a","nope"]}]}`)
	f.Add(`{"name":"cyc","timeCol":"t","dimCols":["p"],"measureCol":"m","hierarchies":[{"name":"h","levels":["x","p"],"pathCol":"p"}]}`)
	f.Add(`{"name":"dl","timeCol":"t","dimCols":["a","b"],"measureCol":"m","hierarchies":[{"name":"h","levels":["a","b"],"delim":":"}]}`)
	f.Add(`{"name":"ov","timeCol":"t","dimCols":["a","b","c"],"measureCol":"m","hierarchies":[{"name":"h1","levels":["a","b"]},{"name":"h2","levels":["b","c"]}]}`)
	f.Add(`{"name":"nb","timeCol":"t","dimCols":["a"],"measureCol":"m","rangeBins":[{"column":"price","bins":1}]}`)
	f.Add(`{"name":"cl","timeCol":"t","dimCols":["a"],"measureCol":"m","rangeBins":[{"column":"price","as":"a"}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		m, err := ParseManifest([]byte(data))
		if err != nil {
			return
		}
		if !ValidName(m.Name) {
			t.Fatalf("accepted invalid name %q", m.Name)
		}
		for _, a := range m.Aliases {
			if !ValidName(a) {
				t.Fatalf("accepted invalid alias %q", a)
			}
		}
		if _, err := m.AggFunc(); err != nil {
			t.Fatalf("accepted unresolvable aggregate %q: %v", m.Agg, err)
		}
		nBy := len(m.ExplainBy)
		if nBy == 0 {
			nBy = len(m.DimCols)
		}
		if o := m.EffectiveMaxOrder(); o < 1 || o > nBy {
			t.Fatalf("effective max order %d out of range for %d explain-by attributes", o, nBy)
		}
		// Accepted derived-column declarations must satisfy their own
		// invariants: known, non-cyclic hierarchy inputs and in-range,
		// collision-free range bins.
		dimSet := map[string]bool{}
		for _, d := range m.DimCols {
			dimSet[d] = true
		}
		for _, h := range m.Hierarchies {
			if len(h.Levels) < 2 {
				t.Fatalf("accepted hierarchy %q with %d levels", h.Name, len(h.Levels))
			}
			if h.PathCol != "" {
				if !dimSet[h.PathCol] {
					t.Fatalf("accepted hierarchy %q with unknown pathCol %q", h.Name, h.PathCol)
				}
				for _, l := range h.Levels {
					if l == h.PathCol {
						t.Fatalf("accepted cyclic hierarchy %q: pathCol %q is one of its levels", h.Name, h.PathCol)
					}
				}
			} else {
				if h.Delim != "" {
					t.Fatalf("accepted hierarchy %q with delim but no pathCol", h.Name)
				}
				for _, l := range h.Levels {
					if !dimSet[l] {
						t.Fatalf("accepted hierarchy %q with unknown level %q", h.Name, l)
					}
				}
			}
		}
		for _, rb := range m.RangeBins {
			if b := rb.EffectiveBins(); b < 2 || b > 4096 {
				t.Fatalf("accepted range bin over %q with %d bins", rb.Column, b)
			}
			as := rb.EffectiveAs()
			if as == rb.Column || dimSet[as] || as == m.TimeCol || as == m.MeasureCol {
				t.Fatalf("accepted colliding range-bin column %q", as)
			}
			if rb.Column == m.TimeCol || dimSet[rb.Column] {
				t.Fatalf("accepted range bin over non-numeric column %q", rb.Column)
			}
		}
		// Round trip: store and reload must accept the same document.
		enc, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := ParseManifest(enc)
		if err != nil {
			t.Fatalf("round-trip rejected: %v\noriginal: %s\nencoded: %s", err, data, enc)
		}
		if m2.Name != m.Name || m2.TimeCol != m.TimeCol || m2.MeasureCol != m.MeasureCol {
			t.Fatalf("round-trip mutated the manifest: %+v vs %+v", m, m2)
		}
	})
}
