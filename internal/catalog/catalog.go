package catalog

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/relation"
)

// Sentinel errors the serving layer maps to HTTP statuses.
var (
	// ErrNotFound reports a dataset name the catalog does not hold.
	ErrNotFound = errors.New("catalog: dataset not found")
	// ErrExists reports a Create colliding with an existing dataset name
	// or alias.
	ErrExists = errors.New("catalog: dataset already exists")
)

// File names inside each dataset directory.
const (
	manifestFile = "manifest.json"
	dataFile     = "data.csv"
	snapshotFile = "snapshot.bin"
)

// Catalog manages the datasets under one data directory. All methods are
// safe for concurrent use: the catalog-wide mutex guards the name/alias
// maps, and per-dataset file operations (create, delete, append,
// snapshot writes) serialize on a per-name lock so concurrent admin calls
// for different datasets never block each other.
type Catalog struct {
	dir string

	mu      sync.RWMutex
	byName  map[string]Manifest
	byAlias map[string]string      // alias -> canonical name
	locks   map[string]*sync.Mutex // per-dataset file-operation locks
}

// Open scans dir (creating it if missing) and returns the catalog over
// it. Dataset subdirectories with unreadable or invalid manifests fail
// the open — an operator typo should surface at startup, not as a 404
// later — as do alias collisions between datasets.
func Open(dir string) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: creating data dir: %w", err)
	}
	c := &Catalog{
		dir:     dir,
		byName:  make(map[string]Manifest),
		byAlias: make(map[string]string),
		locks:   make(map[string]*sync.Mutex),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: scanning data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !ValidName(e.Name()) || e.Name() == JobsDirName {
			// Temp staging dirs (".tmp-*"), trash, stray files, and the
			// reserved async-job directory are not datasets.
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name(), manifestFile))
		if err != nil {
			return nil, fmt.Errorf("catalog: dataset %q: %w", e.Name(), err)
		}
		m, err := ParseManifest(data)
		if err != nil {
			return nil, fmt.Errorf("catalog: dataset %q: %w", e.Name(), err)
		}
		if m.Name != e.Name() {
			return nil, fmt.Errorf("catalog: directory %q holds manifest for %q", e.Name(), m.Name)
		}
		if err := c.registerLocked(m); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// registerLocked adds a manifest to the name/alias maps, rejecting
// collisions. Callers hold mu (or have exclusive access during Open).
func (c *Catalog) registerLocked(m Manifest) error {
	if m.Name == JobsDirName {
		return fmt.Errorf("catalog: %q is reserved for the async-job store", m.Name)
	}
	for _, a := range m.Aliases {
		if a == JobsDirName {
			return fmt.Errorf("catalog: alias %q is reserved for the async-job store", a)
		}
	}
	if _, ok := c.byName[m.Name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, m.Name)
	}
	if owner, ok := c.byAlias[m.Name]; ok {
		return fmt.Errorf("%w: %q is an alias of %q", ErrExists, m.Name, owner)
	}
	for _, a := range m.Aliases {
		if _, ok := c.byName[a]; ok {
			return fmt.Errorf("%w: alias %q collides with dataset %q", ErrExists, a, a)
		}
		if owner, ok := c.byAlias[a]; ok {
			return fmt.Errorf("%w: alias %q collides with an alias of %q", ErrExists, a, owner)
		}
	}
	c.byName[m.Name] = m
	for _, a := range m.Aliases {
		c.byAlias[a] = m.Name
	}
	return nil
}

// Dir returns the catalog's data directory.
func (c *Catalog) Dir() string { return c.dir }

// Names returns the canonical dataset names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.byName))
	for n := range c.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Manifest returns the manifest of the named dataset (canonical name, not
// an alias).
func (c *Catalog) Manifest(name string) (Manifest, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.byName[name]
	return m, ok
}

// Resolve maps a request name — canonical or alias — to the canonical
// dataset name.
func (c *Catalog) Resolve(name string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.byName[name]; ok {
		return name, true
	}
	if canon, ok := c.byAlias[name]; ok {
		return canon, true
	}
	return "", false
}

// lockFor returns the per-dataset file-operation lock, creating it on
// first use. The lock outlives dataset deletion so a concurrent append
// and delete still serialize.
func (c *Catalog) lockFor(name string) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.locks[name]
	if !ok {
		l = &sync.Mutex{}
		c.locks[name] = l
	}
	return l
}

// path returns the dataset's directory.
func (c *Catalog) path(name string) string { return filepath.Join(c.dir, name) }

// Create validates the manifest, parses the CSV through it (the parse IS
// the validation: unknown columns, bad numerics, and inconsistent rows
// all fail here, before anything touches disk), and writes the dataset
// atomically: the manifest and a normalized CSV (time column first, then
// dimensions, then the measure — the column order AppendRows persists to)
// are staged in a temp directory and renamed into place. It returns the
// parsed relation so the caller can publish the dataset without re-reading
// the file it just wrote.
func (c *Catalog) Create(m Manifest, csvSrc io.Reader) (*relation.Relation, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rel, err := relation.ReadCSV(csvSrc, m.Spec())
	if err != nil {
		return nil, err
	}
	if rel.NumTimestamps() < 2 {
		return nil, fmt.Errorf("catalog: dataset %q has %d distinct time values, need at least 2", m.Name, rel.NumTimestamps())
	}
	// Derived columns (hierarchies, range bins) validate against the real
	// data here — a path column that is not a single-parent taxonomy or a
	// constant range-bin source fails the upload before anything touches
	// disk. Only base columns persist; loads re-derive.
	if err := m.ApplyDerived(rel); err != nil {
		return nil, err
	}

	lock := c.lockFor(m.Name)
	lock.Lock()
	defer lock.Unlock()

	// Reserve the name and aliases before touching disk; undo on failure.
	c.mu.Lock()
	if err := c.registerLocked(m); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	unregister := func() {
		c.mu.Lock()
		delete(c.byName, m.Name)
		for _, a := range m.Aliases {
			delete(c.byAlias, a)
		}
		c.mu.Unlock()
	}

	if _, err := os.Stat(c.path(m.Name)); err == nil {
		unregister()
		return nil, fmt.Errorf("%w: %q (directory exists)", ErrExists, m.Name)
	}
	stage, err := os.MkdirTemp(c.dir, ".tmp-"+m.Name+"-")
	if err != nil {
		unregister()
		return nil, fmt.Errorf("catalog: staging dataset: %w", err)
	}
	defer os.RemoveAll(stage) // no-op after a successful rename

	manifestJSON, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		unregister()
		return nil, err
	}
	manifestJSON = append(manifestJSON, '\n')
	if err := os.WriteFile(filepath.Join(stage, manifestFile), manifestJSON, 0o644); err != nil {
		unregister()
		return nil, fmt.Errorf("catalog: writing manifest: %w", err)
	}
	f, err := os.Create(filepath.Join(stage, dataFile))
	if err != nil {
		unregister()
		return nil, fmt.Errorf("catalog: writing data: %w", err)
	}
	if err := relation.WriteCSV(f, rel); err != nil {
		f.Close()
		unregister()
		return nil, fmt.Errorf("catalog: writing data: %w", err)
	}
	if err := f.Close(); err != nil {
		unregister()
		return nil, fmt.Errorf("catalog: writing data: %w", err)
	}
	if err := os.Rename(stage, c.path(m.Name)); err != nil {
		unregister()
		return nil, fmt.Errorf("catalog: publishing dataset: %w", err)
	}
	return rel, nil
}

// Delete removes the dataset: its directory is renamed out of the way
// first (so a concurrent scan or load never sees a half-deleted dataset)
// and then removed, and the name and aliases are released.
func (c *Catalog) Delete(name string) error {
	lock := c.lockFor(name)
	lock.Lock()
	defer lock.Unlock()

	c.mu.Lock()
	m, ok := c.byName[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(c.byName, name)
	for _, a := range m.Aliases {
		delete(c.byAlias, a)
	}
	c.mu.Unlock()

	trash, err := os.MkdirTemp(c.dir, ".trash-")
	if err != nil {
		return fmt.Errorf("catalog: deleting %q: %w", name, err)
	}
	defer os.RemoveAll(trash)
	if err := os.Rename(c.path(name), filepath.Join(trash, name)); err != nil {
		return fmt.Errorf("catalog: deleting %q: %w", name, err)
	}
	return nil
}

// LoadRelation parses the dataset's CSV into a relation — the cold path
// a missing or invalid snapshot falls back to.
func (c *Catalog) LoadRelation(name string) (*relation.Relation, error) {
	m, ok := c.Manifest(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	lock := c.lockFor(name)
	lock.Lock()
	defer lock.Unlock()
	f, err := os.Open(filepath.Join(c.path(name), dataFile))
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	rel, err := relation.ReadCSV(f, m.Spec())
	if err != nil {
		return nil, err
	}
	// The CSV persists base columns only; hierarchies and range bins are
	// re-derived on every load (the derivation is deterministic, so a
	// reload reproduces the exact column set Create validated).
	if err := m.ApplyDerived(rel); err != nil {
		return nil, err
	}
	return rel, nil
}

// AppendRows durably appends delta rows to the dataset's CSV, in the same
// row-major shape Relation.AppendRows consumes. Rows are written in the
// normalized column order Create established (time, dimensions, measure).
// The caller is responsible for having validated the rows through a live
// relation's AppendRows first — this method persists, it does not
// re-validate series order.
func (c *Catalog) AppendRows(name string, timeVals []string, dims [][]string, measures [][]float64) error {
	m, ok := c.Manifest(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if len(dims) != len(timeVals) || len(measures) != len(timeVals) {
		return fmt.Errorf("catalog: AppendRows got %d time values, %d dim rows, %d measure rows",
			len(timeVals), len(dims), len(measures))
	}
	lock := c.lockFor(name)
	lock.Lock()
	defer lock.Unlock()
	f, err := os.OpenFile(filepath.Join(c.path(name), dataFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	w := csv.NewWriter(f)
	// Spec().MeasCols lists the primary measure plus every range-bin
	// source column — appended rows persist all of them, in the same
	// column order Create's normalized CSV established.
	measCols := m.Spec().MeasCols
	rec := make([]string, 1+len(m.DimCols)+len(measCols))
	for i := range timeVals {
		if len(dims[i]) != len(m.DimCols) || len(measures[i]) != len(measCols) {
			f.Close()
			return fmt.Errorf("catalog: row %d has %d dims and %d measures, want %d and %d",
				i, len(dims[i]), len(measures[i]), len(m.DimCols), len(measCols))
		}
		rec[0] = timeVals[i]
		copy(rec[1:], dims[i])
		for j, v := range measures[i] {
			rec[1+len(m.DimCols)+j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return fmt.Errorf("catalog: appending row %d: %w", i, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("catalog: appending rows: %w", err)
	}
	return f.Close()
}
