// Package catalog implements the on-disk dataset catalog behind the
// serving layer's bring-your-own-data path.
//
// A catalog is a directory (the server's -data-dir) holding one
// subdirectory per dataset:
//
//	<data-dir>/<name>/manifest.json   query shape: columns, measure,
//	                                  aggregate, explain-by, β̄, smoothing,
//	                                  aliases
//	<data-dir>/<name>/data.csv        the rows, normalized column order
//	<data-dir>/<name>/snapshot.bin    optional warm-restart snapshot
//
// The manifest is the contract between an uploaded CSV and the engine:
// it names the time column, the categorical dimensions, the measure and
// its aggregate, and the per-dataset engine defaults (order threshold β̄,
// smoothing window) that the built-in datasets carry in code. Datasets
// created through Create are written atomically (staged in a temp
// directory, then renamed into place), so a crashed upload never leaves a
// half-written dataset for the next scan to trip over.
//
// The snapshot is the warm-restart path: a checksummed container holding
// the relation's dictionary-encoded columns and the candidate universe's
// conjunctions and raw series arena (the codecs live with their types, in
// internal/relation and internal/explain). Loading it skips CSV parsing,
// dictionary encoding, and — the expensive part — the group-by and
// planning passes of universe construction. Snapshots are advisory:
// LoadSnapshot verifies the container checksum and that data.csv has not
// changed since the snapshot was taken, and any mismatch (corruption,
// truncation, a post-snapshot append) returns an error the caller treats
// as "rebuild from CSV", never as data.
package catalog
