package catalog

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"repro/internal/explain"
	"repro/internal/mmapfile"
	"repro/internal/relation"
)

// The snapshot container wraps the relation and universe codec sections
// in one file with an integrity checksum and a staleness fingerprint:
//
//	magic "TSXSNAP" + version byte
//	u64 size of data.csv when the snapshot was taken
//	u64 mtime (ns) of data.csv when the snapshot was taken
//	u64 payload length
//	u64 CRC-64/ECMA of the payload
//	payload: relation section (internal/relation) then universe section
//	         (internal/explain)
//
// The CSV fingerprint (size + mtime) makes data changes
// self-invalidating: AppendRows grows data.csv, and even a same-size
// offline edit moves its mtime, so the next LoadSnapshot sees the
// mismatch and falls back to the (authoritative) CSV until the
// background refresher writes a fresh snapshot. The checksum catches
// torn writes and bit rot; the section codecs validate structure. Every
// failure mode maps to an error — the serving layer logs it and
// rebuilds, it never serves a suspect snapshot.

const (
	snapContainerMagic = "TSXSNAP"
	// v1 stores the codec payload raw; v2 flate-compresses it and appends
	// the uncompressed length to the header (the checksum still covers the
	// stored bytes, so integrity is verified before inflating). Writers
	// compress only payloads up to snapCompressMaxBytes: small datasets
	// are dominated by entropy the varint codec cannot remove (dictionary
	// strings, near-random mantissas), while large ones (where restore
	// latency is the product constraint) stay raw so the warm path never
	// trades decode speed for disk bytes it does not need.
	snapContainerVersion1 = 1
	snapContainerVersion2 = 2
	snapCompressMaxBytes  = 1 << 20
	snapMaxPayloadBytes   = 1 << 31
	// snapHeaderLen is the v1 container header size: magic + version +
	// csvSize + csvMTime + storedLen + CRC. v2 appends a u64 rawLen.
	snapHeaderLen = len(snapContainerMagic) + 1 + 8 + 8 + 8 + 8
)

// ErrSnapshotStale reports a snapshot whose CSV fingerprint no longer
// matches data.csv — rows were appended (or the file replaced) after the
// snapshot was taken. Callers rebuild from the CSV.
var ErrSnapshotStale = errors.New("catalog: snapshot stale (data.csv changed since it was taken)")

var crcTable = crc64.MakeTable(crc64.ECMA)

// Fingerprint identifies one state of a dataset's data.csv: byte size
// plus modification time. Appends grow the size; offline in-place edits
// (even same-size ones) move the mtime — either way a snapshot built
// from different data stops validating.
type Fingerprint struct {
	Size    int64
	MTimeNS int64
}

// DataFingerprint returns the current fingerprint of the dataset's CSV —
// captured by a snapshot build BEFORE parsing, so a concurrent change
// between the parse and the save is detected.
func (c *Catalog) DataFingerprint(name string) (Fingerprint, error) {
	if _, ok := c.Manifest(name); !ok {
		return Fingerprint{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	st, err := os.Stat(filepath.Join(c.path(name), dataFile))
	if err != nil {
		return Fingerprint{}, fmt.Errorf("catalog: fingerprinting data.csv: %w", err)
	}
	return Fingerprint{Size: st.Size(), MTimeNS: st.ModTime().UnixNano()}, nil
}

// SaveSnapshot atomically writes the dataset's warm-restart snapshot:
// rel's columns and u's candidate universe, checksummed, staged in a temp
// file and renamed over snapshot.bin. u must be the raw (unsmoothed)
// universe built over rel; fp is the DataFingerprint captured before rel
// was parsed. If data.csv has changed since (a concurrent append), the
// save is aborted with ErrSnapshotStale — the appender triggers its own
// refresh, and recording a fresh fingerprint over stale payload would
// make LoadSnapshot serve pre-append data as current.
func (c *Catalog) SaveSnapshot(name string, rel *relation.Relation, u *explain.Universe, fp Fingerprint) error {
	if _, ok := c.Manifest(name); !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	var payload bytes.Buffer
	sw := relation.NewSnapWriter(&payload)
	// The encoder aligns the candidate arena against the absolute file
	// offset so a memory-mapped v1 container can alias []SumCount in
	// place; v1's header is headerLen bytes ahead of the payload.
	sw.SetAbsBase(int64(snapHeaderLen))
	rel.EncodeSnapshot(sw)
	if err := u.EncodeSnapshot(sw); err != nil {
		return err
	}
	if err := sw.Flush(); err != nil {
		return err
	}

	lock := c.lockFor(name)
	lock.Lock()
	defer lock.Unlock()
	st, err := os.Stat(filepath.Join(c.path(name), dataFile))
	if err != nil {
		return fmt.Errorf("catalog: fingerprinting data.csv: %w", err)
	}
	if st.Size() != fp.Size || st.ModTime().UnixNano() != fp.MTimeNS {
		return ErrSnapshotStale
	}

	version := byte(snapContainerVersion1)
	stored := payload.Bytes()
	// Arena-form snapshots (raw contiguous candidate series) must stay in
	// the v1 container: LoadSnapshot memory-maps them and aliases the
	// arena off the mapping, which a compressed payload cannot support.
	// They are normally far above snapCompressMaxBytes anyway; the
	// explicit gate keeps threshold-overridden tests and small arena
	// datasets on the mappable path.
	if payload.Len() <= snapCompressMaxBytes && !u.ArenaSnapshotRaw() {
		var comp bytes.Buffer
		fw, err := flate.NewWriter(&comp, flate.BestCompression)
		if err == nil {
			_, werr := fw.Write(stored)
			if werr == nil && fw.Close() == nil && comp.Len() < payload.Len() {
				version = snapContainerVersion2
				stored = comp.Bytes()
			}
		}
	}

	var header bytes.Buffer
	header.WriteString(snapContainerMagic)
	header.WriteByte(version)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(fp.Size))
	header.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(fp.MTimeNS))
	header.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(len(stored)))
	header.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], crc64.Checksum(stored, crcTable))
	header.Write(b[:])
	if version == snapContainerVersion2 {
		binary.LittleEndian.PutUint64(b[:], uint64(payload.Len()))
		header.Write(b[:])
	}

	tmp, err := os.CreateTemp(c.path(name), ".snap-")
	if err != nil {
		return fmt.Errorf("catalog: staging snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(header.Bytes()); err == nil {
		_, err = tmp.Write(stored)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: writing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.path(name), snapshotFile)); err != nil {
		return fmt.Errorf("catalog: publishing snapshot: %w", err)
	}
	return nil
}

// validateSnapshot checks the container bytes — header, checksum, and
// CSV fingerprint — and returns the codec payload. For a v1 container
// the payload sub-slices raw (aliasable reports true): callers decoding
// from a memory mapping may alias sections in place. v2 payloads are
// inflated onto the heap. Callers hold the dataset's lock.
func (c *Catalog) validateSnapshot(name string, raw []byte) (payload []byte, aliasable bool, err error) {
	if len(raw) < snapHeaderLen {
		return nil, false, fmt.Errorf("catalog: snapshot truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(snapContainerMagic)]) != snapContainerMagic {
		return nil, false, fmt.Errorf("catalog: snapshot has bad magic")
	}
	off := len(snapContainerMagic)
	version := raw[off]
	if version != snapContainerVersion1 && version != snapContainerVersion2 {
		return nil, false, fmt.Errorf("catalog: snapshot version %d unsupported (want %d or %d)",
			version, snapContainerVersion1, snapContainerVersion2)
	}
	off++
	csvSize := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	csvMTime := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	storedLen := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	sum := binary.LittleEndian.Uint64(raw[off:])
	off += 8
	var rawLen uint64
	if version == snapContainerVersion2 {
		if len(raw) < off+8 {
			return nil, false, fmt.Errorf("catalog: snapshot truncated (%d bytes)", len(raw))
		}
		rawLen = binary.LittleEndian.Uint64(raw[off:])
		off += 8
		if rawLen > snapMaxPayloadBytes {
			return nil, false, fmt.Errorf("catalog: snapshot payload length %d exceeds sanity cap", rawLen)
		}
	}
	if uint64(len(raw)-off) != storedLen {
		return nil, false, fmt.Errorf("catalog: snapshot payload is %d bytes, header says %d", len(raw)-off, storedLen)
	}
	payload = raw[off:]
	if got := crc64.Checksum(payload, crcTable); got != sum {
		return nil, false, fmt.Errorf("catalog: snapshot checksum mismatch (%x != %x)", got, sum)
	}
	st, err := os.Stat(filepath.Join(c.path(name), dataFile))
	if err != nil {
		return nil, false, fmt.Errorf("catalog: fingerprinting data.csv: %w", err)
	}
	if uint64(st.Size()) != csvSize || uint64(st.ModTime().UnixNano()) != csvMTime {
		return nil, false, ErrSnapshotStale
	}
	if version == snapContainerVersion2 {
		fr := flate.NewReader(bytes.NewReader(payload))
		defer fr.Close()
		inflated := make([]byte, rawLen)
		if _, err := io.ReadFull(fr, inflated); err != nil {
			return nil, false, fmt.Errorf("catalog: inflating snapshot payload: %w", err)
		}
		var extra [1]byte
		if n, _ := fr.Read(extra[:]); n != 0 {
			return nil, false, fmt.Errorf("catalog: snapshot payload longer than header says")
		}
		return inflated, false, nil
	}
	return payload, true, nil
}

// loadSnapshotPayload reads the snapshot container, validates the
// header, checksum, and CSV fingerprint, and returns the codec payload.
// Callers hold the dataset's lock.
func (c *Catalog) loadSnapshotPayload(name string) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(c.path(name), snapshotFile))
	if err != nil {
		return nil, fmt.Errorf("catalog: reading snapshot: %w", err)
	}
	payload, _, err := c.validateSnapshot(name, raw)
	return payload, err
}

// LoadSnapshot reads and fully validates the dataset's snapshot,
// returning the restored relation and raw universe. Any problem — no
// snapshot, bad magic or version, payload checksum mismatch, truncation,
// structural invalidity, or a CSV fingerprint that no longer matches
// data.csv — is an error; the caller falls back to LoadRelation and a
// fresh universe build.
//
// The container is opened through a read-only memory mapping (where the
// platform supports one). When the payload is an uncompressed v1
// container holding an arena-form universe section, the universe's
// candidate series alias the mapping in place — the kernel pages them on
// demand and may evict them under pressure, so a dataset far larger than
// the Go heap budget still restores and serves. The mapping's owner is
// pinned to the universe (Universe.SetBacking) and unmapped by finalizer
// once the universe is collected; because snapshots publish via rename,
// a background refresh re-bases new loads onto the new inode while live
// universes keep reading the old one — re-basing never invalidates
// pinned slices. Callers observe which path was taken via
// Universe.ArenaMapped.
func (c *Catalog) LoadSnapshot(name string) (*relation.Relation, *explain.Universe, error) {
	if _, ok := c.Manifest(name); !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	lock := c.lockFor(name)
	lock.Lock()
	defer lock.Unlock()
	f, err := mmapfile.Open(filepath.Join(c.path(name), snapshotFile))
	if err != nil {
		return nil, nil, fmt.Errorf("catalog: reading snapshot: %w", err)
	}
	payload, aliasable, err := c.validateSnapshot(name, f.Data())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	alias := aliasable && f.Mapped()
	sr := relation.NewSnapReaderBytes(payload)
	rel := relation.DecodeSnapshot(sr)
	if err := sr.Err(); err != nil {
		f.Close()
		return nil, nil, err
	}
	u, err := explain.DecodeUniverseSnapshotAlias(sr, rel, alias)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if u.ArenaMapped() {
		u.SetBacking(f)
	} else {
		f.Close()
	}
	return rel, u, nil
}

// LoadSnapshotRelation is LoadSnapshot restricted to the relation
// section: the (dominant) universe payload is never decoded. The serving
// layer uses it to materialize a dataset's relation on restart; engine
// builds decode the full snapshot separately.
func (c *Catalog) LoadSnapshotRelation(name string) (*relation.Relation, error) {
	if _, ok := c.Manifest(name); !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	lock := c.lockFor(name)
	lock.Lock()
	defer lock.Unlock()
	payload, err := c.loadSnapshotPayload(name)
	if err != nil {
		return nil, err
	}
	sr := relation.NewSnapReaderBytes(payload)
	rel := relation.DecodeSnapshot(sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}

// HasSnapshot reports whether a snapshot file exists for the dataset
// (without validating it).
func (c *Catalog) HasSnapshot(name string) bool {
	_, err := os.Stat(filepath.Join(c.path(name), snapshotFile))
	return err == nil
}
