package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/explain"
	"repro/internal/relation"
)

const testCSV = `date,state,county,cases,ignored
2020-01-01,NY,a,5,x
2020-01-01,CA,b,3,x
2020-01-02,NY,a,7,x
2020-01-02,CA,b,4,x
2020-01-03,NY,a,9,x
2020-01-03,CA,b,6,x
`

func testManifest() Manifest {
	return Manifest{
		Name:       "epidemic",
		Aliases:    []string{"epi", "cases"},
		TimeCol:    "date",
		DimCols:    []string{"state", "county"},
		MeasureCol: "cases",
		Agg:        "SUM",
		MaxOrder:   2,
	}
}

func openTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestManifestValidation(t *testing.T) {
	good := testManifest()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Manifest)
		wantIn string
	}{
		{func(m *Manifest) { m.Name = "Bad Name" }, "bad dataset name"},
		{func(m *Manifest) { m.Name = "../escape" }, "bad dataset name"},
		{func(m *Manifest) { m.Aliases = []string{"epidemic"} }, "repeats"},
		{func(m *Manifest) { m.Aliases = []string{"x", "x"} }, "repeats"},
		{func(m *Manifest) { m.TimeCol = "" }, "timeCol"},
		{func(m *Manifest) { m.DimCols = nil }, "dimCols"},
		{func(m *Manifest) { m.DimCols = []string{"state", "state"} }, "repeated"},
		{func(m *Manifest) { m.MeasureCol = "" }, "measureCol"},
		{func(m *Manifest) { m.MeasureCol = "state" }, "repeated"},
		{func(m *Manifest) { m.Agg = "MEDIAN" }, "unknown aggregate"},
		{func(m *Manifest) { m.ExplainBy = []string{"nope"} }, "not a dimCols entry"},
		{func(m *Manifest) { m.ExplainBy = []string{"state", "state"} }, "repeated"},
		{func(m *Manifest) { m.MaxOrder = 99 }, "maxOrder"},
		{func(m *Manifest) { m.SmoothWindow = -1 }, "smoothWindow"},
	}
	for i, tc := range cases {
		m := testManifest()
		tc.mutate(&m)
		err := m.Validate()
		if err == nil {
			t.Errorf("case %d: invalid manifest accepted", i)
		} else if !strings.Contains(err.Error(), tc.wantIn) {
			t.Errorf("case %d: error %q does not mention %q", i, err, tc.wantIn)
		}
	}
	if _, err := ParseManifest([]byte(`{"name":"x","timecolumn":"date"}`)); err == nil {
		t.Error("unknown manifest field accepted")
	}
}

func TestCreateListLoadDelete(t *testing.T) {
	c := openTestCatalog(t)
	rel, err := c.Create(testManifest(), strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 6 || rel.NumTimestamps() != 3 || rel.NumDims() != 2 {
		t.Fatalf("parsed relation shape: %d rows, %d timestamps, %d dims", rel.NumRows(), rel.NumTimestamps(), rel.NumDims())
	}
	if got := c.Names(); len(got) != 1 || got[0] != "epidemic" {
		t.Fatalf("Names = %v", got)
	}
	for _, alias := range []string{"epidemic", "epi", "cases"} {
		if canon, ok := c.Resolve(alias); !ok || canon != "epidemic" {
			t.Fatalf("Resolve(%q) = %q, %v", alias, canon, ok)
		}
	}
	if _, ok := c.Resolve("nope"); ok {
		t.Fatal("Resolve accepted an unknown name")
	}

	// The normalized CSV drops unmapped columns and reloads identically.
	loaded, err := c.LoadRelation("epidemic")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRows() != rel.NumRows() || loaded.NumTimestamps() != rel.NumTimestamps() {
		t.Fatalf("reloaded relation differs: %d rows, %d timestamps", loaded.NumRows(), loaded.NumTimestamps())
	}
	for row := 0; row < rel.NumRows(); row++ {
		if loaded.DimValue(0, row) != rel.DimValue(0, row) || loaded.MeasureValue(0, row) != rel.MeasureValue(0, row) {
			t.Fatalf("reloaded row %d differs", row)
		}
	}

	// Create collisions: same name, alias vs name, name vs alias.
	if _, err := c.Create(testManifest(), strings.NewReader(testCSV)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	m2 := testManifest()
	m2.Name = "epi" // collides with an alias of epidemic
	m2.Aliases = nil
	if _, err := c.Create(m2, strings.NewReader(testCSV)); !errors.Is(err, ErrExists) {
		t.Fatalf("alias-colliding create: %v", err)
	}

	// A fresh Open over the same dir rediscovers the dataset.
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if canon, ok := c2.Resolve("epi"); !ok || canon != "epidemic" {
		t.Fatalf("rescan lost the dataset: %q, %v", canon, ok)
	}

	if err := c.Delete("epidemic"); err != nil {
		t.Fatal(err)
	}
	if len(c.Names()) != 0 {
		t.Fatal("Delete left the dataset listed")
	}
	if _, ok := c.Resolve("epi"); ok {
		t.Fatal("Delete left an alias resolvable")
	}
	if _, err := c.LoadRelation("epidemic"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LoadRelation after delete: %v", err)
	}
	if err := c.Delete("epidemic"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	// The name is reusable after deletion.
	if _, err := c.Create(testManifest(), strings.NewReader(testCSV)); err != nil {
		t.Fatalf("re-create after delete: %v", err)
	}
}

func TestCreateRejectsBadCSV(t *testing.T) {
	c := openTestCatalog(t)
	// Missing measure column.
	bad := "date,state\n2020-01-01,NY\n"
	if _, err := c.Create(testManifest(), strings.NewReader(bad)); err == nil {
		t.Fatal("CSV without mapped columns accepted")
	}
	// Non-numeric measure.
	bad = "date,state,county,cases\n2020-01-01,NY,a,notanumber\n"
	if _, err := c.Create(testManifest(), strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric measure accepted")
	}
	// A failed create leaves nothing behind: no registration, no files.
	if len(c.Names()) != 0 {
		t.Fatalf("failed create registered a dataset: %v", c.Names())
	}
	entries, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if ValidName(e.Name()) {
			t.Fatalf("failed create left %q on disk", e.Name())
		}
	}
}

func TestAppendRowsPersists(t *testing.T) {
	c := openTestCatalog(t)
	if _, err := c.Create(testManifest(), strings.NewReader(testCSV)); err != nil {
		t.Fatal(err)
	}
	err := c.AppendRows("epidemic",
		[]string{"2020-01-04", "2020-01-04"},
		[][]string{{"NY", "a"}, {"FL", "c"}},
		[][]float64{{11}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.LoadRelation("epidemic")
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 8 || rel.NumTimestamps() != 4 {
		t.Fatalf("after append: %d rows, %d timestamps", rel.NumRows(), rel.NumTimestamps())
	}
	if _, ok := rel.Dim(0).ID("FL"); !ok {
		t.Fatal("appended dictionary value FL missing after reload")
	}
}

// buildUniverse builds the raw universe for a catalog dataset the way the
// serving layer's snapshot refresher does.
func buildUniverse(t *testing.T, m Manifest, rel *relation.Relation) *explain.Universe {
	t.Helper()
	agg, err := m.AggFunc()
	if err != nil {
		t.Fatal(err)
	}
	u, err := explain.NewUniverse(rel, explain.Config{
		Measure: m.MeasureCol, Agg: agg, ExplainBy: m.ExplainBy, MaxOrder: m.EffectiveMaxOrder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// mustFingerprint fetches the dataset's current CSV fingerprint.
func mustFingerprint(t *testing.T, c *Catalog, name string) Fingerprint {
	t.Helper()
	fp, err := c.DataFingerprint(name)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestSaveSnapshotAbortsOnConcurrentAppend pins the refresher race rule:
// a snapshot built from a pre-append parse must not be saved once the CSV
// has grown, or LoadSnapshot would serve pre-append data as current.
func TestSaveSnapshotAbortsOnConcurrentAppend(t *testing.T) {
	c := openTestCatalog(t)
	m := testManifest()
	rel, err := c.Create(m, strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	fp := mustFingerprint(t, c, "epidemic")
	u := buildUniverse(t, m, rel)
	// An append lands between the build and the save.
	if err := c.AppendRows("epidemic",
		[]string{"2020-01-04"}, [][]string{{"NY", "a"}}, [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshot("epidemic", rel, u, fp); !errors.Is(err, ErrSnapshotStale) {
		t.Fatalf("stale save: %v, want ErrSnapshotStale", err)
	}
	if c.HasSnapshot("epidemic") {
		t.Fatal("aborted save left a snapshot file")
	}
}

func TestSnapshotSaveLoad(t *testing.T) {
	c := openTestCatalog(t)
	m := testManifest()
	rel, err := c.Create(m, strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	if c.HasSnapshot("epidemic") {
		t.Fatal("snapshot reported before one was saved")
	}
	u := buildUniverse(t, m, rel)
	if err := c.SaveSnapshot("epidemic", rel, u, mustFingerprint(t, c, "epidemic")); err != nil {
		t.Fatal(err)
	}
	if !c.HasSnapshot("epidemic") {
		t.Fatal("snapshot not reported after save")
	}
	rel2, u2, err := c.LoadSnapshot("epidemic")
	if err != nil {
		t.Fatal(err)
	}
	if rel2.NumRows() != rel.NumRows() || u2.NumCandidates() != u.NumCandidates() {
		t.Fatalf("restored shape: %d rows, %d candidates (want %d, %d)",
			rel2.NumRows(), u2.NumCandidates(), rel.NumRows(), u.NumCandidates())
	}
}

func TestSnapshotStaleAfterAppend(t *testing.T) {
	c := openTestCatalog(t)
	m := testManifest()
	rel, err := c.Create(m, strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshot("epidemic", rel, buildUniverse(t, m, rel), mustFingerprint(t, c, "epidemic")); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows("epidemic",
		[]string{"2020-01-04"}, [][]string{{"NY", "a"}}, [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.LoadSnapshot("epidemic"); !errors.Is(err, ErrSnapshotStale) {
		t.Fatalf("post-append snapshot load: %v, want ErrSnapshotStale", err)
	}
}

func TestSnapshotCorruptionAndTruncation(t *testing.T) {
	c := openTestCatalog(t)
	m := testManifest()
	rel, err := c.Create(m, strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshot("epidemic", rel, buildUniverse(t, m, rel), mustFingerprint(t, c, "epidemic")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), "epidemic", "snapshot.bin")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte: the checksum must catch it.
	bad := append([]byte(nil), full...)
	bad[len(bad)-3] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.LoadSnapshot("epidemic"); err == nil || errors.Is(err, ErrSnapshotStale) {
		t.Fatalf("corrupted snapshot load: %v, want checksum error", err)
	}

	// Truncate at several points: header, mid-payload, last byte.
	for _, cut := range []int{0, 5, 20, len(full) / 2, len(full) - 1} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.LoadSnapshot("epidemic"); err == nil {
			t.Fatalf("snapshot truncated at %d of %d loaded without error", cut, len(full))
		}
	}

	// Restore the intact file: load works again (the failure path did not
	// poison anything).
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.LoadSnapshot("epidemic"); err != nil {
		t.Fatalf("restored snapshot load: %v", err)
	}
}

func TestConcurrentCreates(t *testing.T) {
	c := openTestCatalog(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := testManifest()
			_, errs[i] = c.Create(m, strings.NewReader(testCSV))
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, err := range errs {
		if err == nil {
			ok++
		} else if !errors.Is(err, ErrExists) {
			t.Fatalf("unexpected create error: %v", err)
		}
	}
	if ok != 1 {
		t.Fatalf("%d concurrent creates of one name succeeded, want exactly 1", ok)
	}
}

const derivedCSV = `date,loc,sales,price
2020-01-01,TX/hou,5,10
2020-01-01,TX/aus,3,40
2020-01-01,CA/la,2,90
2020-01-02,TX/hou,7,12
2020-01-02,TX/aus,4,45
2020-01-02,CA/la,6,80
2020-01-03,TX/hou,9,11
2020-01-03,CA/la,8,85
`

func derivedManifest() Manifest {
	return Manifest{
		Name:       "geo",
		TimeCol:    "date",
		DimCols:    []string{"loc"},
		MeasureCol: "sales",
		Agg:        "SUM",
		ExplainBy:  []string{"state", "county", "price_bin"},
		MaxOrder:   2,
		Hierarchies: []HierarchySpec{
			{Name: "geo", Levels: []string{"state", "county"}, PathCol: "loc"},
		},
		RangeBins: []RangeBinSpec{
			{Column: "price", Bins: 2, As: "price_bin"},
		},
	}
}

// TestCreateWithDerivedColumns: Create derives hierarchy levels and range
// bins, persists base columns only, and LoadRelation re-derives the exact
// same column set — edges included — so snapshot restores and cold loads
// agree bit for bit.
func TestCreateWithDerivedColumns(t *testing.T) {
	c := openTestCatalog(t)
	m := derivedManifest()
	rel, err := c.Create(m, strings.NewReader(derivedCSV))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumBaseDims() != 1 || rel.NumDims() != 4 {
		t.Fatalf("derived relation has %d base / %d total dims, want 1 / 4", rel.NumBaseDims(), rel.NumDims())
	}
	if len(rel.Hierarchies()) != 1 {
		t.Fatalf("hierarchies = %d, want 1", len(rel.Hierarchies()))
	}
	edges, ok := rel.RangeBinEdges("price_bin")
	if !ok || len(edges) == 0 {
		t.Fatalf("price_bin edges = %v, %v", edges, ok)
	}

	// The persisted CSV holds base columns only (loc, not the derived
	// state/county/price_bin), plus every measure Spec() loads.
	raw, err := os.ReadFile(filepath.Join(c.Dir(), "geo", dataFile))
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(raw), "\n", 2)[0]
	if strings.Contains(header, "state") || strings.Contains(header, "price_bin") {
		t.Fatalf("derived columns leaked into the persisted CSV header %q", header)
	}
	if !strings.Contains(header, "price") {
		t.Fatalf("range-bin source column missing from persisted CSV header %q", header)
	}

	loaded, err := c.LoadRelation("geo")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDims() != rel.NumDims() || loaded.NumRows() != rel.NumRows() {
		t.Fatalf("reload shape differs: %d dims %d rows vs %d dims %d rows",
			loaded.NumDims(), loaded.NumRows(), rel.NumDims(), rel.NumRows())
	}
	loadedEdges, ok := loaded.RangeBinEdges("price_bin")
	if !ok || len(loadedEdges) != len(edges) {
		t.Fatalf("reloaded edges %v, want %v", loadedEdges, edges)
	}
	for i := range edges {
		if loadedEdges[i] != edges[i] {
			t.Fatalf("edge %d: reloaded %v, created %v", i, loadedEdges[i], edges[i])
		}
	}
	for row := 0; row < rel.NumRows(); row++ {
		for d := 0; d < rel.NumDims(); d++ {
			if loaded.DimValue(d, row) != rel.DimValue(d, row) {
				t.Fatalf("row %d dim %d: reloaded %q, created %q", row, d, loaded.DimValue(d, row), rel.DimValue(d, row))
			}
		}
	}

	// The derived columns are valid explain-by attributes.
	u := buildUniverse(t, m, rel)
	if u.NumCandidates() == 0 {
		t.Fatal("no candidates over derived explain-by attributes")
	}

	// Appends persist every Spec() measure and re-derive on reload.
	if err := c.AppendRows("geo",
		[]string{"2020-01-04"}, [][]string{{"TX/hou"}}, [][]float64{{11, 13}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows("geo",
		[]string{"2020-01-05"}, [][]string{{"TX/hou"}}, [][]float64{{11}}); err == nil {
		t.Fatal("append with missing range-bin source measure accepted")
	}
	again, err := c.LoadRelation("geo")
	if err != nil {
		t.Fatal(err)
	}
	if again.NumRows() != rel.NumRows()+1 || again.NumDims() != 4 {
		t.Fatalf("after append: %d rows %d dims", again.NumRows(), again.NumDims())
	}
}

// TestCreateRejectsBadDerivedData: derivation failures (a path value with
// the wrong segment count, a multi-parent taxonomy) surface at Create and
// leave nothing on disk.
func TestCreateRejectsBadDerivedData(t *testing.T) {
	c := openTestCatalog(t)
	bad := `date,loc,sales,price
2020-01-01,TX/hou,5,10
2020-01-02,notapath,7,12
`
	if _, err := c.Create(derivedManifest(), strings.NewReader(bad)); err == nil {
		t.Fatal("bad path data accepted")
	}
	entries, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if ValidName(e.Name()) {
			t.Fatalf("failed create left %q on disk", e.Name())
		}
	}
	if _, ok := c.Resolve("geo"); ok {
		t.Fatal("failed create left the name registered")
	}
}
