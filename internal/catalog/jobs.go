package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// JobsDirName is the subdirectory of a server's data directory that holds
// persisted async-explain jobs. The name is reserved: the catalog scan
// skips it and Create refuses datasets (or aliases) named after it.
const JobsDirName = "jobs"

// ErrJobNotFound reports a job ID the store does not hold.
var ErrJobNotFound = errors.New("catalog: job not found")

// Job lifecycle states. A job is queued on submission, running while a
// worker computes it, and done or failed terminally; the TTL sweeper
// removes terminal jobs after they age out.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobRecord is one async explain job, as persisted (one JSON file per
// job) and as served by the job API. Timestamps are Unix milliseconds so
// records are portable across restarts and machines.
type JobRecord struct {
	// ID is the server-assigned job identifier (16 hex digits).
	ID string `json:"id"`
	// Query is the raw explain query string the job will run, exactly as
	// submitted (e.g. "dataset=liquor&k=5&mode=approx").
	Query string `json:"query"`
	// Status is one of JobQueued, JobRunning, JobDone, JobFailed.
	Status string `json:"status"`
	// Error holds the failure message of a JobFailed job.
	Error string `json:"error,omitempty"`
	// SubmittedAtMs and FinishedAtMs bracket the job's lifetime;
	// FinishedAtMs is zero until the job reaches a terminal state.
	SubmittedAtMs int64 `json:"submittedAtMs"`
	FinishedAtMs  int64 `json:"finishedAtMs,omitempty"`
	// Result is the completed job's explain response document, verbatim.
	Result json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the job has finished (successfully or not).
func (j *JobRecord) Terminal() bool { return j.Status == JobDone || j.Status == JobFailed }

// jobIDRE is the shape of job IDs: fixed-width lowercase hex, so an ID
// is always a safe file name and never a path.
var jobIDRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// ValidJobID reports whether s is a well-formed job ID.
func ValidJobID(s string) bool { return jobIDRE.MatchString(s) }

// JobStore persists async jobs as one JSON document per job under a
// dedicated directory, surviving server restarts. All methods are safe
// for concurrent use; writes are atomic (temp file + rename) so a crash
// mid-write never leaves a torn record. The store holds no clock — the
// caller passes time in — which keeps TTL behavior deterministic in
// tests.
type JobStore struct {
	dir string
	mu  sync.Mutex
}

// OpenJobStore opens (creating if needed) the job directory.
func OpenJobStore(dir string) (*JobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: creating jobs dir: %w", err)
	}
	return &JobStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *JobStore) Dir() string { return s.dir }

func (s *JobStore) path(id string) string { return filepath.Join(s.dir, id+".json") }

// Put persists the record, replacing any previous version of the job.
func (s *JobStore) Put(j *JobRecord) error {
	if !ValidJobID(j.ID) {
		return fmt.Errorf("catalog: invalid job id %q", j.ID)
	}
	data, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("catalog: encoding job %s: %w", j.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, ".tmp-job-")
	if err != nil {
		return fmt.Errorf("catalog: staging job %s: %w", j.ID, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("catalog: writing job %s: %w", j.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("catalog: writing job %s: %w", j.ID, err)
	}
	if err := os.Rename(name, s.path(j.ID)); err != nil {
		os.Remove(name)
		return fmt.Errorf("catalog: publishing job %s: %w", j.ID, err)
	}
	return nil
}

// Get loads one job by ID.
func (s *JobStore) Get(id string) (*JobRecord, error) {
	if !ValidJobID(id) {
		return nil, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	data, err := os.ReadFile(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: reading job %s: %w", id, err)
	}
	var j JobRecord
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("catalog: decoding job %s: %w", id, err)
	}
	return &j, nil
}

// List loads every stored job, sorted by submission time then ID.
// Unreadable or torn records are skipped, not fatal: one bad file must
// not take the whole job API down.
func (s *JobStore) List() ([]*JobRecord, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: scanning jobs dir: %w", err)
	}
	var out []*JobRecord
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if e.IsDir() || !ok || !ValidJobID(id) {
			continue
		}
		j, err := s.Get(id)
		if err != nil {
			continue
		}
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].SubmittedAtMs != out[k].SubmittedAtMs {
			return out[i].SubmittedAtMs < out[k].SubmittedAtMs
		}
		return out[i].ID < out[k].ID
	})
	return out, nil
}

// Delete removes one job; deleting an absent job reports ErrJobNotFound.
func (s *JobStore) Delete(id string) error {
	if !ValidJobID(id) {
		return fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return err
}

// Sweep removes terminal jobs older than ttl (by finish time) and
// returns how many it removed. Queued and running jobs are never swept —
// age alone does not cancel work — so a job is only garbage once it has
// delivered (or definitively failed) and the client had ttl to fetch it.
func (s *JobStore) Sweep(now time.Time, ttl time.Duration) (int, error) {
	jobs, err := s.List()
	if err != nil {
		return 0, err
	}
	cutoff := now.Add(-ttl).UnixMilli()
	removed := 0
	for _, j := range jobs {
		if !j.Terminal() || j.FinishedAtMs > cutoff {
			continue
		}
		if err := s.Delete(j.ID); err == nil {
			removed++
		}
	}
	return removed, nil
}
