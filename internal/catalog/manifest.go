package catalog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"

	"repro/internal/relation"
)

// Manifest describes one catalog dataset: how its CSV maps onto a
// relation, which aggregated series to explain, and the per-dataset
// engine defaults. It is the JSON document uploaded next to the CSV and
// stored as manifest.json.
type Manifest struct {
	// Name is the dataset's canonical identifier: a lowercase path-safe
	// slug, unique within the catalog (and disjoint from the built-in
	// dataset names when served).
	Name string `json:"name"`
	// Aliases lists alternative request names resolving to this dataset.
	// Aliased requests share the canonical dataset's cache keys and pooled
	// engines — the generalization of the server's old hardcoded
	// "covid-total" → "covid" normalization.
	Aliases []string `json:"aliases,omitempty"`
	// TimeCol is the CSV header of the time dimension. Its values must
	// sort lexicographically in series order (ISO dates, zero-padded
	// numerals).
	TimeCol string `json:"timeCol"`
	// DimCols are the CSV headers of the categorical dimension columns.
	DimCols []string `json:"dimCols"`
	// MeasureCol is the CSV header of the numeric measure column.
	MeasureCol string `json:"measureCol"`
	// Agg is the aggregate function over MeasureCol: "SUM" (default),
	// "COUNT", or "AVG".
	Agg string `json:"agg,omitempty"`
	// ExplainBy lists the explain-by attributes; empty means all DimCols.
	ExplainBy []string `json:"explainBy,omitempty"`
	// MaxOrder is the explanation order threshold β̄ (default 3, capped at
	// len(ExplainBy)).
	MaxOrder int `json:"maxOrder,omitempty"`
	// SmoothWindow is the default moving-average window applied before
	// explaining; 0 disables.
	SmoothWindow int `json:"smoothWindow,omitempty"`
	// Approx holds the dataset's defaults for approximate-mode requests
	// (?mode=approx); nil applies the engine defaults.
	Approx *ApproxDefaults `json:"approx,omitempty"`
}

// ApproxDefaults is a manifest's default configuration for the anytime
// approximate explanation path. A request's explicit epsilon parameter
// overrides Epsilon; MaxCandidates is always taken from here (or the
// engine default when 0).
type ApproxDefaults struct {
	// MaxCandidates caps the selectable candidate set (0: engine default
	// 4096).
	MaxCandidates int `json:"maxCandidates,omitempty"`
	// Epsilon is the default per-segment relative attribution-error
	// target (0: engine default 0.05).
	Epsilon float64 `json:"epsilon,omitempty"`
}

// nameRE is the shape of dataset names and aliases: a filesystem- and
// URL-safe slug. Keeping names this tight is what makes using them as
// directory names safe (no separators, no dots, no traversal).
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// ValidName reports whether s is an acceptable dataset name or alias.
func ValidName(s string) bool { return nameRE.MatchString(s) }

// ParseManifest decodes and validates a manifest document. Unknown JSON
// fields are rejected so a typoed field name ("measure" for "measureCol")
// fails the upload instead of silently applying a default.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return m, fmt.Errorf("catalog: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

// Validate checks the manifest's internal consistency: name and alias
// shapes, non-empty column mapping, no duplicate or unknown explain-by
// attributes, a known aggregate, and sane engine defaults.
func (m *Manifest) Validate() error {
	if !ValidName(m.Name) {
		return fmt.Errorf("catalog: bad dataset name %q (want %s)", m.Name, nameRE)
	}
	seen := map[string]bool{m.Name: true}
	for _, a := range m.Aliases {
		if !ValidName(a) {
			return fmt.Errorf("catalog: bad alias %q (want %s)", a, nameRE)
		}
		if seen[a] {
			return fmt.Errorf("catalog: alias %q repeats the dataset name or another alias", a)
		}
		seen[a] = true
	}
	if m.TimeCol == "" {
		return fmt.Errorf("catalog: manifest needs a timeCol")
	}
	if len(m.DimCols) == 0 {
		return fmt.Errorf("catalog: manifest needs at least one dimCols entry")
	}
	cols := map[string]bool{m.TimeCol: true}
	for _, d := range m.DimCols {
		if d == "" {
			return fmt.Errorf("catalog: empty dimCols entry")
		}
		if cols[d] {
			return fmt.Errorf("catalog: column %q repeated in manifest", d)
		}
		cols[d] = true
	}
	if m.MeasureCol == "" {
		return fmt.Errorf("catalog: manifest needs a measureCol")
	}
	if cols[m.MeasureCol] {
		return fmt.Errorf("catalog: column %q repeated in manifest", m.MeasureCol)
	}
	if _, err := m.AggFunc(); err != nil {
		return err
	}
	dimSet := make(map[string]bool, len(m.DimCols))
	for _, d := range m.DimCols {
		dimSet[d] = true
	}
	ebSeen := make(map[string]bool, len(m.ExplainBy))
	for _, e := range m.ExplainBy {
		if !dimSet[e] {
			return fmt.Errorf("catalog: explainBy attribute %q is not a dimCols entry", e)
		}
		if ebSeen[e] {
			return fmt.Errorf("catalog: explainBy attribute %q repeated", e)
		}
		ebSeen[e] = true
	}
	if m.MaxOrder < 0 || m.MaxOrder > 8 {
		return fmt.Errorf("catalog: maxOrder %d out of range (0..8)", m.MaxOrder)
	}
	if m.SmoothWindow < 0 || m.SmoothWindow > 365 {
		return fmt.Errorf("catalog: smoothWindow %d out of range (0..365)", m.SmoothWindow)
	}
	if m.Approx != nil {
		if m.Approx.MaxCandidates < 0 || m.Approx.MaxCandidates > 1<<20 {
			return fmt.Errorf("catalog: approx.maxCandidates %d out of range (0..%d)", m.Approx.MaxCandidates, 1<<20)
		}
		if m.Approx.Epsilon < 0 || m.Approx.Epsilon > 0.5 {
			return fmt.Errorf("catalog: approx.epsilon %g out of range (0..0.5]", m.Approx.Epsilon)
		}
	}
	return nil
}

// Spec returns the CSV column mapping the manifest describes.
func (m *Manifest) Spec() relation.CSVSpec {
	return relation.CSVSpec{
		Name:     m.Name,
		TimeCol:  m.TimeCol,
		DimCols:  m.DimCols,
		MeasCols: []string{m.MeasureCol},
	}
}

// AggFunc resolves the manifest's aggregate name; empty defaults to SUM.
func (m *Manifest) AggFunc() (relation.AggFunc, error) {
	if m.Agg == "" {
		return relation.Sum, nil
	}
	f, err := relation.ParseAggFunc(m.Agg)
	if err != nil {
		return 0, fmt.Errorf("catalog: %w", err)
	}
	return f, nil
}

// EffectiveMaxOrder returns the order threshold β̄ after defaults: 3,
// capped at the number of explain-by attributes.
func (m *Manifest) EffectiveMaxOrder() int {
	o := m.MaxOrder
	if o <= 0 {
		o = 3
	}
	nBy := len(m.ExplainBy)
	if nBy == 0 {
		nBy = len(m.DimCols)
	}
	if o > nBy {
		o = nBy
	}
	return o
}
