package catalog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"

	"repro/internal/relation"
)

// Manifest describes one catalog dataset: how its CSV maps onto a
// relation, which aggregated series to explain, and the per-dataset
// engine defaults. It is the JSON document uploaded next to the CSV and
// stored as manifest.json.
type Manifest struct {
	// Name is the dataset's canonical identifier: a lowercase path-safe
	// slug, unique within the catalog (and disjoint from the built-in
	// dataset names when served).
	Name string `json:"name"`
	// Aliases lists alternative request names resolving to this dataset.
	// Aliased requests share the canonical dataset's cache keys and pooled
	// engines — the generalization of the server's old hardcoded
	// "covid-total" → "covid" normalization.
	Aliases []string `json:"aliases,omitempty"`
	// TimeCol is the CSV header of the time dimension. Its values must
	// sort lexicographically in series order (ISO dates, zero-padded
	// numerals).
	TimeCol string `json:"timeCol"`
	// DimCols are the CSV headers of the categorical dimension columns.
	DimCols []string `json:"dimCols"`
	// MeasureCol is the CSV header of the numeric measure column.
	MeasureCol string `json:"measureCol"`
	// Agg is the aggregate function over MeasureCol: "SUM" (default),
	// "COUNT", or "AVG".
	Agg string `json:"agg,omitempty"`
	// ExplainBy lists the explain-by attributes; empty means all DimCols.
	ExplainBy []string `json:"explainBy,omitempty"`
	// MaxOrder is the explanation order threshold β̄ (default 3, capped at
	// len(ExplainBy)).
	MaxOrder int `json:"maxOrder,omitempty"`
	// SmoothWindow is the default moving-average window applied before
	// explaining; 0 disables.
	SmoothWindow int `json:"smoothWindow,omitempty"`
	// Approx holds the dataset's defaults for approximate-mode requests
	// (?mode=approx); nil applies the engine defaults.
	Approx *ApproxDefaults `json:"approx,omitempty"`
	// Hierarchies declares taxonomies over the dataset's dimensions, each
	// either tying existing dimCols together coarse→fine or deriving new
	// level columns from a path-delimited dimension. Declared hierarchies
	// persist in the dataset's snapshots and make the level columns valid
	// explainBy attributes.
	Hierarchies []HierarchySpec `json:"hierarchies,omitempty"`
	// RangeBins derives categorical bin columns from numeric CSV columns
	// by equi-depth binning; the resulting columns are valid explainBy
	// attributes and their bin edges are frozen with the dataset.
	RangeBins []RangeBinSpec `json:"rangeBins,omitempty"`
}

// HierarchySpec declares one taxonomy. Either Levels names ≥ 2 existing
// dimCols (coarse → fine), or PathCol names a path-delimited dimCols
// entry ("electronics/audio/iem") whose segments become new columns named
// by Levels.
type HierarchySpec struct {
	// Name identifies the hierarchy within the dataset.
	Name string `json:"name"`
	// Levels lists the level column names, coarsest first. Without
	// PathCol they must be existing dimCols; with PathCol they are new
	// columns derived by splitting it.
	Levels []string `json:"levels"`
	// PathCol, when set, derives the levels by splitting this dimCols
	// entry on Delim. Every value must split into exactly len(Levels)
	// non-empty segments.
	PathCol string `json:"pathCol,omitempty"`
	// Delim is the path separator (default "/"); only valid with PathCol.
	Delim string `json:"delim,omitempty"`
}

// EffectiveDelim returns the path separator after defaults.
func (h *HierarchySpec) EffectiveDelim() string {
	if h.Delim == "" {
		return "/"
	}
	return h.Delim
}

// RangeBinSpec derives one categorical column by equi-depth binning a
// numeric CSV column.
type RangeBinSpec struct {
	// Column is the numeric CSV column to bin. It may be the measureCol
	// or any other numeric column; it cannot be the time column or a
	// dimension.
	Column string `json:"column"`
	// Bins is the maximum bin count (default 8, range 2..4096). Heavy
	// duplicates may collapse bins.
	Bins int `json:"bins,omitempty"`
	// As names the derived column (default Column + "_bin").
	As string `json:"as,omitempty"`
}

// EffectiveBins returns the bin count after defaults.
func (rb *RangeBinSpec) EffectiveBins() int {
	if rb.Bins == 0 {
		return 8
	}
	return rb.Bins
}

// EffectiveAs returns the derived column name after defaults.
func (rb *RangeBinSpec) EffectiveAs() string {
	if rb.As == "" {
		return rb.Column + "_bin"
	}
	return rb.As
}

// ApproxDefaults is a manifest's default configuration for the anytime
// approximate explanation path. A request's explicit epsilon parameter
// overrides Epsilon; MaxCandidates is always taken from here (or the
// engine default when 0).
type ApproxDefaults struct {
	// MaxCandidates caps the selectable candidate set (0: engine default
	// 4096).
	MaxCandidates int `json:"maxCandidates,omitempty"`
	// Epsilon is the default per-segment relative attribution-error
	// target (0: engine default 0.05).
	Epsilon float64 `json:"epsilon,omitempty"`
}

// nameRE is the shape of dataset names and aliases: a filesystem- and
// URL-safe slug. Keeping names this tight is what makes using them as
// directory names safe (no separators, no dots, no traversal).
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]{0,63}$`)

// ValidName reports whether s is an acceptable dataset name or alias.
func ValidName(s string) bool { return nameRE.MatchString(s) }

// ParseManifest decodes and validates a manifest document. Unknown JSON
// fields are rejected so a typoed field name ("measure" for "measureCol")
// fails the upload instead of silently applying a default.
func ParseManifest(data []byte) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return m, fmt.Errorf("catalog: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

// Validate checks the manifest's internal consistency: name and alias
// shapes, non-empty column mapping, no duplicate or unknown explain-by
// attributes, a known aggregate, and sane engine defaults.
func (m *Manifest) Validate() error {
	if !ValidName(m.Name) {
		return fmt.Errorf("catalog: bad dataset name %q (want %s)", m.Name, nameRE)
	}
	seen := map[string]bool{m.Name: true}
	for _, a := range m.Aliases {
		if !ValidName(a) {
			return fmt.Errorf("catalog: bad alias %q (want %s)", a, nameRE)
		}
		if seen[a] {
			return fmt.Errorf("catalog: alias %q repeats the dataset name or another alias", a)
		}
		seen[a] = true
	}
	if m.TimeCol == "" {
		return fmt.Errorf("catalog: manifest needs a timeCol")
	}
	if len(m.DimCols) == 0 {
		return fmt.Errorf("catalog: manifest needs at least one dimCols entry")
	}
	cols := map[string]bool{m.TimeCol: true}
	for _, d := range m.DimCols {
		if d == "" {
			return fmt.Errorf("catalog: empty dimCols entry")
		}
		if cols[d] {
			return fmt.Errorf("catalog: column %q repeated in manifest", d)
		}
		cols[d] = true
	}
	if m.MeasureCol == "" {
		return fmt.Errorf("catalog: manifest needs a measureCol")
	}
	if cols[m.MeasureCol] {
		return fmt.Errorf("catalog: column %q repeated in manifest", m.MeasureCol)
	}
	if _, err := m.AggFunc(); err != nil {
		return err
	}
	dimSet := make(map[string]bool, len(m.DimCols))
	for _, d := range m.DimCols {
		dimSet[d] = true
	}
	derived, err := m.validateDerived(cols, dimSet)
	if err != nil {
		return err
	}
	ebSeen := make(map[string]bool, len(m.ExplainBy))
	for _, e := range m.ExplainBy {
		if !dimSet[e] && !derived[e] {
			return fmt.Errorf("catalog: explainBy attribute %q is not a dimCols entry or derived column", e)
		}
		if ebSeen[e] {
			return fmt.Errorf("catalog: explainBy attribute %q repeated", e)
		}
		ebSeen[e] = true
	}
	if m.MaxOrder < 0 || m.MaxOrder > 8 {
		return fmt.Errorf("catalog: maxOrder %d out of range (0..8)", m.MaxOrder)
	}
	if m.SmoothWindow < 0 || m.SmoothWindow > 365 {
		return fmt.Errorf("catalog: smoothWindow %d out of range (0..365)", m.SmoothWindow)
	}
	if m.Approx != nil {
		if m.Approx.MaxCandidates < 0 || m.Approx.MaxCandidates > 1<<20 {
			return fmt.Errorf("catalog: approx.maxCandidates %d out of range (0..%d)", m.Approx.MaxCandidates, 1<<20)
		}
		if m.Approx.Epsilon < 0 || m.Approx.Epsilon > 0.5 {
			return fmt.Errorf("catalog: approx.epsilon %g out of range (0..0.5]", m.Approx.Epsilon)
		}
	}
	return nil
}

// validateDerived checks the hierarchies and rangeBins sections and
// returns the set of derived column names they introduce. cols holds the
// time and dimension columns, dimSet the dimensions alone.
func (m *Manifest) validateDerived(cols, dimSet map[string]bool) (map[string]bool, error) {
	derived := make(map[string]bool)
	taken := func(name string) bool {
		return cols[name] || name == m.MeasureCol || derived[name]
	}
	hierNames := make(map[string]bool, len(m.Hierarchies))
	dimInHier := make(map[string]string)
	for i := range m.Hierarchies {
		h := &m.Hierarchies[i]
		if h.Name == "" {
			return nil, fmt.Errorf("catalog: hierarchies entry %d needs a name", i)
		}
		if hierNames[h.Name] {
			return nil, fmt.Errorf("catalog: hierarchy %q declared twice", h.Name)
		}
		hierNames[h.Name] = true
		if len(h.Levels) < 2 {
			return nil, fmt.Errorf("catalog: hierarchy %q needs at least 2 levels, got %d", h.Name, len(h.Levels))
		}
		lvlSeen := make(map[string]bool, len(h.Levels))
		for _, lv := range h.Levels {
			if lv == "" {
				return nil, fmt.Errorf("catalog: hierarchy %q has an empty level name", h.Name)
			}
			if lvlSeen[lv] {
				return nil, fmt.Errorf("catalog: hierarchy %q repeats level %q", h.Name, lv)
			}
			lvlSeen[lv] = true
		}
		if h.PathCol != "" {
			if !dimSet[h.PathCol] {
				return nil, fmt.Errorf("catalog: hierarchy %q pathCol %q is not a dimCols entry", h.Name, h.PathCol)
			}
			if lvlSeen[h.PathCol] {
				return nil, fmt.Errorf("catalog: hierarchy %q pathCol %q is also one of its levels — the hierarchy would derive from itself", h.Name, h.PathCol)
			}
			for _, lv := range h.Levels {
				if taken(lv) {
					return nil, fmt.Errorf("catalog: hierarchy %q level %q collides with an existing column", h.Name, lv)
				}
				derived[lv] = true
			}
		} else {
			if h.Delim != "" {
				return nil, fmt.Errorf("catalog: hierarchy %q sets delim without pathCol", h.Name)
			}
			for _, lv := range h.Levels {
				if !dimSet[lv] {
					return nil, fmt.Errorf("catalog: hierarchy %q level %q is not a dimCols entry", h.Name, lv)
				}
				if prev, ok := dimInHier[lv]; ok {
					return nil, fmt.Errorf("catalog: dimension %q is in hierarchies %q and %q", lv, prev, h.Name)
				}
				dimInHier[lv] = h.Name
			}
		}
	}
	for i := range m.RangeBins {
		rb := &m.RangeBins[i]
		if rb.Column == "" {
			return nil, fmt.Errorf("catalog: rangeBins entry %d needs a column", i)
		}
		if rb.Column == m.TimeCol || dimSet[rb.Column] {
			return nil, fmt.Errorf("catalog: rangeBins column %q must be a numeric column, not the time or a dimension column", rb.Column)
		}
		if b := rb.EffectiveBins(); b < 2 || b > 4096 {
			return nil, fmt.Errorf("catalog: rangeBins column %q bins %d out of range (2..4096)", rb.Column, b)
		}
		as := rb.EffectiveAs()
		if taken(as) || as == rb.Column {
			return nil, fmt.Errorf("catalog: rangeBins derived column %q collides with an existing column", as)
		}
		derived[as] = true
	}
	return derived, nil
}

// Spec returns the CSV column mapping the manifest describes. Range-bin
// source columns load as additional measures so the bins can be derived
// (and appended rows re-binned) engine-side.
func (m *Manifest) Spec() relation.CSVSpec {
	meas := []string{m.MeasureCol}
	for i := range m.RangeBins {
		src := m.RangeBins[i].Column
		dup := false
		for _, prev := range meas {
			if prev == src {
				dup = true
				break
			}
		}
		if !dup {
			meas = append(meas, src)
		}
	}
	return relation.CSVSpec{
		Name:     m.Name,
		TimeCol:  m.TimeCol,
		DimCols:  m.DimCols,
		MeasCols: meas,
	}
}

// ApplyDerived materializes the manifest's derived structure on a freshly
// loaded relation: hierarchies are declared (path variants derive their
// level columns first) and range-bin columns are computed with freshly
// fitted edges. Derived state rides the relation from here on — snapshots
// persist it, and appended base-schema rows re-derive against it.
func (m *Manifest) ApplyDerived(r *relation.Relation) error {
	for i := range m.Hierarchies {
		h := &m.Hierarchies[i]
		var err error
		if h.PathCol != "" {
			err = r.DeriveHierarchyFromPath(h.Name, h.PathCol, h.EffectiveDelim(), h.Levels)
		} else {
			err = r.DeclareHierarchy(h.Name, h.Levels)
		}
		if err != nil {
			return fmt.Errorf("catalog: dataset %q: %w", m.Name, err)
		}
	}
	for i := range m.RangeBins {
		rb := &m.RangeBins[i]
		if err := r.AddRangeBin(rb.EffectiveAs(), rb.Column, rb.EffectiveBins()); err != nil {
			return fmt.Errorf("catalog: dataset %q: %w", m.Name, err)
		}
	}
	return nil
}

// AggFunc resolves the manifest's aggregate name; empty defaults to SUM.
func (m *Manifest) AggFunc() (relation.AggFunc, error) {
	if m.Agg == "" {
		return relation.Sum, nil
	}
	f, err := relation.ParseAggFunc(m.Agg)
	if err != nil {
		return 0, fmt.Errorf("catalog: %w", err)
	}
	return f, nil
}

// EffectiveMaxOrder returns the order threshold β̄ after defaults: 3,
// capped at the number of explain-by attributes.
func (m *Manifest) EffectiveMaxOrder() int {
	o := m.MaxOrder
	if o <= 0 {
		o = 3
	}
	nBy := len(m.ExplainBy)
	if nBy == 0 {
		nBy = len(m.DimCols)
	}
	if o > nBy {
		o = nBy
	}
	return o
}
