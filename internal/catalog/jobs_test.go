package catalog

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJobStoreRoundTrip(t *testing.T) {
	st, err := OpenJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := &JobRecord{
		ID:            "00112233aabbccdd",
		Query:         "dataset=liquor&k=3",
		Status:        JobQueued,
		SubmittedAtMs: 1000,
	}
	if err := st.Put(j); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Query != j.Query || got.Status != JobQueued || got.SubmittedAtMs != 1000 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	// Update in place: results persist verbatim.
	j.Status = JobDone
	j.FinishedAtMs = 2000
	j.Result = json.RawMessage(`{"k":3}`)
	if err := st.Put(j); err != nil {
		t.Fatal(err)
	}
	got, err = st.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != JobDone || string(got.Result) != `{"k":3}` {
		t.Errorf("updated record = %+v", got)
	}
	if err := st.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(j.ID); !errors.Is(err, ErrJobNotFound) {
		t.Errorf("get after delete: err = %v, want ErrJobNotFound", err)
	}
	if err := st.Delete(j.ID); !errors.Is(err, ErrJobNotFound) {
		t.Errorf("double delete: err = %v, want ErrJobNotFound", err)
	}
}

func TestJobStoreRejectsBadIDs(t *testing.T) {
	st, err := OpenJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "short", "../../etc/passwd", "00112233AABBCCDD", "00112233aabbccdd0"} {
		if err := st.Put(&JobRecord{ID: id}); err == nil {
			t.Errorf("Put accepted invalid id %q", id)
		}
		if _, err := st.Get(id); !errors.Is(err, ErrJobNotFound) {
			t.Errorf("Get(%q): err = %v, want ErrJobNotFound", id, err)
		}
	}
}

func TestJobStoreListSkipsTornRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := &JobRecord{ID: "aaaaaaaaaaaaaaaa", Status: JobQueued, SubmittedAtMs: 5}
	if err := st.Put(good); err != nil {
		t.Fatal(err)
	}
	// A torn write (invalid JSON) and a stray file must not break List.
	if err := os.WriteFile(filepath.Join(dir, "bbbbbbbbbbbbbbbb.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a job"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != good.ID {
		t.Fatalf("List = %+v, want just the good record", jobs)
	}
}

func TestJobStoreSweep(t *testing.T) {
	st, err := OpenJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	now := time.UnixMilli(100_000)
	ttl := 10 * time.Second
	put := func(id, status string, finished int64) {
		t.Helper()
		if err := st.Put(&JobRecord{ID: id, Status: status, FinishedAtMs: finished}); err != nil {
			t.Fatal(err)
		}
	}
	put("000000000000000a", JobDone, 10_000)    // old and done: swept
	put("000000000000000b", JobFailed, 10_000)  // old and failed: swept
	put("000000000000000c", JobDone, 95_000)    // done but fresh: kept
	put("000000000000000d", JobQueued, 0)       // never swept while pending
	put("000000000000000e", JobRunning, 10_000) // never swept while running

	n, err := st.Sweep(now, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("Sweep removed %d, want 2", n)
	}
	jobs, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, j := range jobs {
		left = append(left, j.ID)
	}
	want := []string{"000000000000000e", "000000000000000d", "000000000000000c"}
	// List sorts by SubmittedAtMs (all zero here) then ID; just check membership.
	if len(left) != 3 {
		t.Fatalf("after sweep: %v, want the 3 unswept ids %v", left, want)
	}
	for _, id := range want {
		if _, err := st.Get(id); err != nil {
			t.Errorf("job %s swept, want kept: %v", id, err)
		}
	}
}

// TestCatalogReservesJobsDir pins the reservation: a jobs/ directory
// inside the data dir is not a dataset, and no dataset or alias may
// claim the name.
func TestCatalogReservesJobsDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, JobsDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	// Open must skip the manifest-less jobs dir instead of failing.
	c, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with jobs/ present: %v", err)
	}
	if names := c.Names(); len(names) != 0 {
		t.Errorf("Names = %v, want empty (jobs/ is not a dataset)", names)
	}
	if err := c.registerLocked(Manifest{Name: JobsDirName}); err == nil {
		t.Error("registering a dataset named jobs succeeded, want reserved-name error")
	}
	if err := c.registerLocked(Manifest{Name: "ok", Aliases: []string{JobsDirName}}); err == nil {
		t.Error("registering an alias named jobs succeeded, want reserved-name error")
	}
}
