package baseline

import (
	"math/rand"
	"testing"
)

func TestSlidingWindowTolerance(t *testing.T) {
	v := piecewise(0, [2]float64{40, 2}, [2]float64{40, -1})
	// Tiny tolerance: many segments; huge tolerance: one segment.
	tight, err := SlidingWindow(v, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := SlidingWindow(v, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) <= len(loose) {
		t.Errorf("tight tolerance gave %d cuts, loose %d", len(tight), len(loose))
	}
	if len(loose) != 2 {
		t.Errorf("loose cuts = %v, want endpoints only", loose)
	}
	checkCutShape(t, tight, len(v))
}

func TestSlidingWindowKFindsBreak(t *testing.T) {
	// A sharp kink: the anchored window's fit degrades quickly past 50.
	// (Sliding window famously lags behind breakpoints — Keogh et al.
	// rank it below Bottom-Up — so the tolerance here is generous.)
	v := piecewise(0, [2]float64{50, 1}, [2]float64{50, -8})
	cuts, err := SlidingWindowK(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkCutShape(t, cuts, len(v))
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v, want 3 entries", cuts)
	}
	// Sliding window anchors left and extends while the fit holds, so the
	// perfect line over [0, 50] guarantees the cut lands at or after the
	// kink — the characteristic overshoot that makes Bottom-Up the better
	// baseline. Assert that behaviour rather than exact recovery.
	if cut := cuts[1]; cut < 50 {
		t.Errorf("cuts = %v, sliding window cannot cut before the kink", cuts)
	}
}

func TestTopDownExactBreakpoints(t *testing.T) {
	v := piecewise(100, [2]float64{40, 1}, [2]float64{40, -2}, [2]float64{40, 3})
	cuts, err := TopDown(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkCutShape(t, cuts, len(v))
	if len(cuts) != 4 {
		t.Fatalf("cuts = %v, want 4 entries", cuts)
	}
	// Greedy binary splitting does not guarantee exact kink recovery
	// (the survey's reason for preferring Bottom-Up), so allow slack.
	if !hasCutNear(cuts, 40, 10) || !hasCutNear(cuts, 80, 10) {
		t.Errorf("cuts = %v, want cuts near 40 and 80", cuts)
	}
}

func TestTopDownK1(t *testing.T) {
	v := piecewise(0, [2]float64{30, 1})
	cuts, err := TopDown(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 2 {
		t.Errorf("K=1 cuts = %v", cuts)
	}
}

func TestTopDownNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := piecewise(300, [2]float64{60, 2}, [2]float64{60, -2})
	for i := range v {
		v[i] += rng.NormFloat64() * 2
	}
	cuts, err := TopDown(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCutNear(cuts, 60, 5) {
		t.Errorf("cuts = %v, want a cut near 60", cuts)
	}
}

func TestSlidingWindowArgErrors(t *testing.T) {
	if _, err := SlidingWindow([]float64{1}, 5); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := SlidingWindowK([]float64{1, 2, 3}, 9); err == nil {
		t.Error("K too large: want error")
	}
	if _, err := TopDown([]float64{1, 2, 3}, 9); err == nil {
		t.Error("K too large: want error")
	}
}
