// Package baseline implements the explanation-agnostic segmentation
// baselines of Section 7.2, all from scratch:
//
//   - Bottom-Up piecewise-linear segmentation (Keogh et al., "Segmenting
//     time series: a survey and novel approach", 2004), the strongest
//     baseline in the paper's comparison;
//   - FLUSS (Gharghabi et al., ICDM 2017), the matrix-profile semantic
//     segmentation with the corrected arc curve;
//   - NNSegment (Sivill & Flach, LIMESegment, AISTATS 2022), a
//     nearest-neighbour window dissimilarity segmenter.
//
// Each returns a full cut list (including both endpoints) like
// segment.Scheme.Cuts, so outputs are directly comparable with TSExplain.
package baseline

import (
	"container/heap"
	"fmt"
)

// buSeg is one live segment in the Bottom-Up merge list.
type buSeg struct {
	start, end int
	prev, next int // indexes into the segment arena, -1 at the ends
	alive      bool
}

// version summarizes the segment's extent so stale heap entries can be
// detected after merges.
func (s buSeg) version() int { return s.start<<20 | s.end }

// BottomUp segments v into k pieces by piecewise-linear approximation:
// it starts from the finest two-point segments and greedily merges the
// adjacent pair whose merged linear fit increases the total squared error
// the least, until k segments remain.
func BottomUp(v []float64, k int) ([]int, error) {
	n := len(v)
	if err := checkArgs(n, k); err != nil {
		return nil, err
	}

	// Doubly linked list of segments, initially [i, i+1].
	segs := make([]buSeg, n-1)
	for i := range segs {
		segs[i] = buSeg{start: i, end: i + 1, prev: i - 1, next: i + 1, alive: true}
	}
	segs[len(segs)-1].next = -1
	alive := len(segs)

	// Priority queue of candidate merges keyed by cost; stale entries are
	// skipped on pop (lazy deletion).
	pq := &mergeHeap{}
	push := func(left int) {
		right := segs[left].next
		if right < 0 {
			return
		}
		cost := linearSSE(v, segs[left].start, segs[right].end)
		heap.Push(pq, merge{cost: cost, left: left, right: right,
			lv: segs[left].version(), rv: segs[right].version()})
	}
	for i := range segs {
		push(i)
	}

	for alive > k {
		if pq.Len() == 0 {
			break
		}
		m := heap.Pop(pq).(merge)
		l, r := m.left, m.right
		if !segs[l].alive || !segs[r].alive ||
			segs[l].version() != m.lv || segs[r].version() != m.rv ||
			segs[l].next != r {
			continue // stale
		}
		// Merge r into l.
		segs[l].end = segs[r].end
		segs[l].next = segs[r].next
		if segs[r].next >= 0 {
			segs[segs[r].next].prev = l
		}
		segs[r].alive = false
		alive--
		// Refresh the merge candidates that involve l.
		push(l)
		if segs[l].prev >= 0 {
			push(segs[l].prev)
		}
	}

	// Walk the list and emit boundaries. Segment 0 always survives as the
	// leftmost list head because merges fold right neighbours into left.
	cuts := []int{0}
	for i := 0; i >= 0; i = segs[i].next {
		cuts = append(cuts, segs[i].end)
	}
	return cuts, nil
}

type merge struct {
	cost   float64
	left   int
	right  int
	lv, rv int
}

type mergeHeap []merge

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(merge)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// linearSSE returns the squared error of the best least-squares line over
// v[start..end] (inclusive).
func linearSSE(v []float64, start, end int) float64 {
	n := float64(end - start + 1)
	if n < 3 {
		return 0 // two points fit exactly
	}
	var sx, sy, sxx, sxy, syy float64
	for i := start; i <= end; i++ {
		x := float64(i - start)
		y := v[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// SSE = Σ(y − a − bx)² expanded to avoid a second pass.
	sse := syy - 2*a*sy - 2*b*sxy + n*a*a + 2*a*b*sx + b*b*sxx
	if sse < 0 {
		sse = 0 // numerical noise
	}
	return sse
}

// checkArgs validates the shared (series, K) contract of all baselines.
func checkArgs(n, k int) error {
	if n < 2 {
		return fmt.Errorf("baseline: series has %d points, need at least 2", n)
	}
	if k < 1 {
		return fmt.Errorf("baseline: K = %d, need at least 1", k)
	}
	if k > n-1 {
		return fmt.Errorf("baseline: K = %d exceeds the %d available segments", k, n-1)
	}
	return nil
}
