package baseline

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// piecewise builds a series from (length, slope) legs starting at start.
func piecewise(start float64, legs ...[2]float64) []float64 {
	out := []float64{start}
	v := start
	for _, leg := range legs {
		n := int(leg[0])
		slope := leg[1]
		for i := 0; i < n; i++ {
			v += slope
			out = append(out, v)
		}
	}
	return out
}

func checkCutShape(t *testing.T, cuts []int, n int) {
	t.Helper()
	if len(cuts) < 2 {
		t.Fatalf("cuts = %v, want at least endpoints", cuts)
	}
	if cuts[0] != 0 || cuts[len(cuts)-1] != n-1 {
		t.Fatalf("cuts %v must span [0,%d]", cuts, n-1)
	}
	if !sort.IntsAreSorted(cuts) {
		t.Fatalf("cuts %v not sorted", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] == cuts[i-1] {
			t.Fatalf("duplicate cut in %v", cuts)
		}
	}
}

func hasCutNear(cuts []int, pos, tol int) bool {
	for _, c := range cuts {
		if abs(c-pos) <= tol {
			return true
		}
	}
	return false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestBottomUpExactBreakpoint(t *testing.T) {
	// Slope changes at position 50: /\ shape.
	v := piecewise(0, [2]float64{50, 2}, [2]float64{50, -3})
	cuts, err := BottomUp(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkCutShape(t, cuts, len(v))
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v, want 3 entries", cuts)
	}
	if !hasCutNear(cuts, 50, 1) {
		t.Errorf("cuts = %v, want a cut near 50", cuts)
	}
}

func TestBottomUpThreeSegments(t *testing.T) {
	v := piecewise(100, [2]float64{40, 1}, [2]float64{40, -2}, [2]float64{40, 3})
	cuts, err := BottomUp(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkCutShape(t, cuts, len(v))
	if len(cuts) != 4 {
		t.Fatalf("cuts = %v, want 4 entries", cuts)
	}
	if !hasCutNear(cuts, 40, 2) || !hasCutNear(cuts, 80, 2) {
		t.Errorf("cuts = %v, want cuts near 40 and 80", cuts)
	}
}

func TestBottomUpK1(t *testing.T) {
	v := piecewise(0, [2]float64{20, 1})
	cuts, err := BottomUp(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 2 {
		t.Errorf("K=1 cuts = %v, want just endpoints", cuts)
	}
}

func TestBottomUpNoisyRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := piecewise(500, [2]float64{60, 2}, [2]float64{60, -2})
	for i := range v {
		v[i] += rng.NormFloat64() * 2
	}
	cuts, err := BottomUp(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCutNear(cuts, 60, 5) {
		t.Errorf("noisy cuts = %v, want a cut near 60", cuts)
	}
}

func TestBaselineArgErrors(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if _, err := BottomUp(v, 0); err == nil {
		t.Error("K=0: want error")
	}
	if _, err := BottomUp(v, 10); err == nil {
		t.Error("K>n-1: want error")
	}
	if _, err := BottomUp([]float64{1}, 1); err == nil {
		t.Error("n=1: want error")
	}
	if _, err := FLUSS([]float64{1, 2, 3, 4}, 2, 3); err == nil {
		t.Error("FLUSS too short: want error")
	}
	if _, err := NNSegment(v, 2, 10); err == nil {
		t.Error("NNSegment window too large: want error")
	}
}

// flussRegimes builds a series with two very different regimes: a fast
// sine followed by a slow triangle wave, the kind of semantic change
// FLUSS is designed for.
func flussRegimes(n1, n2 int) []float64 {
	var v []float64
	for i := 0; i < n1; i++ {
		v = append(v, math.Sin(float64(i)*0.9)*10)
	}
	for i := 0; i < n2; i++ {
		phase := i % 40
		tri := float64(phase)
		if phase >= 20 {
			tri = float64(40 - phase)
		}
		v = append(v, tri)
	}
	return v
}

func TestFLUSSFindsRegimeChange(t *testing.T) {
	v := flussRegimes(200, 200)
	cuts, err := FLUSS(v, 2, 25)
	if err != nil {
		t.Fatal(err)
	}
	checkCutShape(t, cuts, len(v))
	if !hasCutNear(cuts, 200, 40) {
		t.Errorf("FLUSS cuts = %v, want a cut near 200", cuts)
	}
}

func TestFLUSSCutCountBounded(t *testing.T) {
	v := flussRegimes(150, 150)
	cuts, err := FLUSS(v, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	checkCutShape(t, cuts, len(v))
	if len(cuts) > 5 {
		t.Errorf("FLUSS returned %d cuts for K=4: %v", len(cuts), cuts)
	}
}

func TestFLUSSTinyWindowClamped(t *testing.T) {
	v := flussRegimes(100, 100)
	if _, err := FLUSS(v, 2, 1); err != nil {
		t.Errorf("window clamp failed: %v", err)
	}
}

func TestMatrixProfileIndexSelfConsistent(t *testing.T) {
	v := flussRegimes(80, 80)
	w := 16
	idx := matrixProfileIndex(v, w)
	m := len(v) - w + 1
	if len(idx) != m {
		t.Fatalf("index length = %d, want %d", len(idx), m)
	}
	excl := w / 2
	for i, j := range idx {
		if j < 0 || j >= m {
			t.Fatalf("index[%d] = %d out of range", i, j)
		}
		if i != j && abs(i-j) < excl {
			t.Errorf("index[%d] = %d violates exclusion zone %d", i, j, excl)
		}
	}
}

func TestRollingStats(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6}
	mu, sigma := rollingStats(v, 3)
	wantMu := []float64{2, 3, 4, 5}
	for i := range wantMu {
		if math.Abs(mu[i]-wantMu[i]) > 1e-12 {
			t.Errorf("mu[%d] = %g, want %g", i, mu[i], wantMu[i])
		}
		want := math.Sqrt(2.0 / 3.0)
		if math.Abs(sigma[i]-want) > 1e-12 {
			t.Errorf("sigma[%d] = %g, want %g", i, sigma[i], want)
		}
	}
}

func TestNNSegmentFindsLevelShift(t *testing.T) {
	// Strong change in local shape at 100: rising then falling slopes.
	v := piecewise(0, [2]float64{100, 1.5}, [2]float64{100, -1.5})
	cuts, err := NNSegment(v, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	checkCutShape(t, cuts, len(v))
	if !hasCutNear(cuts, 100, 20) {
		t.Errorf("NNSegment cuts = %v, want a cut near 100", cuts)
	}
}

func TestNNSegmentExclusionZone(t *testing.T) {
	v := piecewise(0, [2]float64{60, 1}, [2]float64{60, -1}, [2]float64{60, 1})
	cuts, err := NNSegment(v, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	interior := cuts[1 : len(cuts)-1]
	for i := 1; i < len(interior); i++ {
		if interior[i]-interior[i-1] <= 15 {
			t.Errorf("cuts %v violate the exclusion zone", cuts)
		}
	}
}

func TestLinearSSE(t *testing.T) {
	// A perfect line has zero SSE.
	v := []float64{1, 3, 5, 7, 9}
	if got := linearSSE(v, 0, 4); math.Abs(got) > 1e-9 {
		t.Errorf("perfect line SSE = %g, want 0", got)
	}
	// A V shape fits poorly.
	vv := []float64{4, 2, 0, 2, 4}
	if got := linearSSE(vv, 0, 4); got < 1 {
		t.Errorf("V-shape SSE = %g, want large", got)
	}
	// Two points always fit exactly.
	if got := linearSSE(vv, 1, 2); got != 0 {
		t.Errorf("two-point SSE = %g, want 0", got)
	}
	// Constant series.
	if got := linearSSE([]float64{5, 5, 5, 5}, 0, 3); math.Abs(got) > 1e-9 {
		t.Errorf("constant SSE = %g, want 0", got)
	}
}

func TestFullCutsDedup(t *testing.T) {
	got := fullCuts([]int{5, 5, 0, 9, 3}, 10)
	want := []int{0, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("fullCuts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fullCuts = %v, want %v", got, want)
		}
	}
}
