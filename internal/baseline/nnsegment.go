package baseline

import (
	"fmt"
	"math"

	"repro/internal/timeseries"
)

// NNSegment segments v into k pieces following the NNSegment procedure of
// the LIMESegment paper: slide a window of length w across the series,
// score each interior position by the z-normalized Euclidean
// dissimilarity between the window ending there and the window starting
// there, and report the k−1 highest-scoring positions as change points,
// suppressing neighbours within w of a chosen point.
func NNSegment(v []float64, k, w int) ([]int, error) {
	n := len(v)
	if err := checkArgs(n, k); err != nil {
		return nil, err
	}
	if w < 2 {
		w = 2
	}
	if 2*w >= n {
		return nil, fmt.Errorf("baseline: window %d too large for series length %d", w, n)
	}

	// score[i]: dissimilarity of the windows [i−w, i) and [i, i+w).
	score := make([]float64, n)
	for i := w; i+w <= n; i++ {
		left := timeseries.ZNormalize(v[i-w : i])
		right := timeseries.ZNormalize(v[i : i+w])
		var ss float64
		for t := 0; t < w; t++ {
			d := left[t] - right[t]
			ss += d * d
		}
		score[i] = math.Sqrt(ss)
	}

	// Pick the k−1 highest peaks with an exclusion zone of w.
	var picked []int
	taken := make([]bool, n)
	for len(picked) < k-1 {
		bestPos, bestVal := -1, 0.0
		for i := w; i+w <= n; i++ {
			if !taken[i] && score[i] > bestVal {
				bestVal = score[i]
				bestPos = i
			}
		}
		if bestPos < 0 || bestVal == 0 {
			break
		}
		picked = append(picked, bestPos)
		for i := bestPos - w; i <= bestPos+w; i++ {
			if i >= 0 && i < n {
				taken[i] = true
			}
		}
	}
	return fullCuts(picked, n), nil
}
