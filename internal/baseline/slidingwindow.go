package baseline

// SlidingWindow segments v by the classic sliding-window algorithm
// (Koski et al. 1995; surveyed in Keogh et al. 2004): anchor the left
// end of a segment and grow it rightward until the linear-fit error of
// the candidate segment exceeds maxError, then cut and re-anchor.
//
// Unlike BottomUp it cannot target an exact K, so callers either pass a
// tolerance directly or use SlidingWindowK, which binary-searches the
// tolerance to land on K segments. The paper's survey reference finds
// Bottom-Up superior; this implementation exists to make that comparison
// reproducible.
func SlidingWindow(v []float64, maxError float64) ([]int, error) {
	n := len(v)
	if err := checkArgs(n, 1); err != nil {
		return nil, err
	}
	cuts := []int{0}
	anchor := 0
	for anchor < n-1 {
		end := anchor + 1
		for end+1 < n && linearSSE(v, anchor, end+1) <= maxError {
			end++
		}
		cuts = append(cuts, end)
		anchor = end
	}
	return cuts, nil
}

// SlidingWindowK runs SlidingWindow with a tolerance binary-searched so
// the result has exactly k segments where possible; if no tolerance hits
// k exactly (the segment count is not monotone in rare tie cases), the
// closest achievable cut list is returned.
func SlidingWindowK(v []float64, k int) ([]int, error) {
	n := len(v)
	if err := checkArgs(n, k); err != nil {
		return nil, err
	}
	// The total SSE of one segment spanning everything bounds the search.
	hi := linearSSE(v, 0, n-1) + 1
	lo := 0.0
	best, _ := SlidingWindow(v, hi)
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		cuts, err := SlidingWindow(v, mid)
		if err != nil {
			return nil, err
		}
		got := len(cuts) - 1
		if absInt(got-k) <= absInt(len(best)-1-k) {
			best = cuts
		}
		switch {
		case got == k:
			return cuts, nil
		case got > k:
			lo = mid // too many segments: loosen
		default:
			hi = mid // too few: tighten
		}
	}
	return best, nil
}

// TopDown segments v by recursive binary splitting (Douglas & Peucker
// 1973; Ramer 1972): repeatedly split the segment whose best single split
// reduces the total linear-fit error the most, until k segments exist.
func TopDown(v []float64, k int) ([]int, error) {
	n := len(v)
	if err := checkArgs(n, k); err != nil {
		return nil, err
	}
	type span struct{ start, end int }
	segs := []span{{0, n - 1}}
	for len(segs) < k {
		// Find the globally best split.
		bestGain := -1.0
		bestSeg, bestAt := -1, -1
		for si, s := range segs {
			if s.end-s.start < 2 {
				continue
			}
			whole := linearSSE(v, s.start, s.end)
			for at := s.start + 1; at < s.end; at++ {
				gain := whole - linearSSE(v, s.start, at) - linearSSE(v, at, s.end)
				if gain > bestGain {
					bestGain = gain
					bestSeg, bestAt = si, at
				}
			}
		}
		if bestSeg < 0 {
			break // nothing splittable
		}
		s := segs[bestSeg]
		segs = append(segs[:bestSeg], append([]span{{s.start, bestAt}, {bestAt, s.end}}, segs[bestSeg+1:]...)...)
	}
	cuts := []int{0}
	for _, s := range segs {
		cuts = append(cuts, s.end)
	}
	sortInts(cuts)
	return cuts, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
