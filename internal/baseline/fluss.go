package baseline

import (
	"fmt"
	"math"
)

// FLUSS segments v into k pieces with the Fast Low-cost Unipotent
// Semantic Segmentation algorithm: compute the matrix profile index for
// subsequence length w, count nearest-neighbour arcs crossing each
// position (the arc curve), normalize by the idealized arc curve of a
// structureless series (the corrected arc curve, CAC), and report the
// k−1 deepest CAC valleys as regime boundaries, suppressing neighbours
// within an exclusion zone of 5·w as the original paper does.
func FLUSS(v []float64, k, w int) ([]int, error) {
	n := len(v)
	if err := checkArgs(n, k); err != nil {
		return nil, err
	}
	if w < 3 {
		w = 3
	}
	if n-w+1 < 4 {
		return nil, fmt.Errorf("baseline: series length %d too short for subsequence length %d", n, w)
	}

	mpIndex := matrixProfileIndex(v, w)
	cac := correctedArcCurve(mpIndex, w)

	cuts := pickValleys(cac, k-1, 5*w)
	return fullCuts(cuts, n), nil
}

// matrixProfileIndex returns, for each subsequence start i, the start of
// its z-normalized nearest neighbour, with a trivial-match exclusion zone
// of w/2 around i. It walks diagonals so each dot product updates in
// O(1), giving O(n²) total.
func matrixProfileIndex(v []float64, w int) []int {
	m := len(v) - w + 1
	mu, sigma := rollingStats(v, w)

	best := make([]float64, m)
	idx := make([]int, m)
	for i := range best {
		best[i] = math.Inf(1)
		idx[i] = i
	}
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	for lag := excl; lag < m; lag++ {
		// dot = Σ v[i+t]·v[i+lag+t] along the diagonal.
		var dot float64
		for t := 0; t < w; t++ {
			dot += v[t] * v[lag+t]
		}
		for i := 0; ; i++ {
			j := i + lag
			d := znDist(dot, mu[i], mu[j], sigma[i], sigma[j], w)
			if d < best[i] {
				best[i] = d
				idx[i] = j
			}
			if d < best[j] {
				best[j] = d
				idx[j] = i
			}
			if j+1 >= m {
				break
			}
			dot += v[i+w] * v[j+w]
			dot -= v[i] * v[j]
		}
	}
	return idx
}

// znDist converts a raw dot product into the z-normalized Euclidean
// distance between two subsequences. Flat subsequences (σ = 0) are
// treated as maximally distant from non-flat ones and identical to other
// flat ones, matching common matrix-profile implementations.
func znDist(dot, muI, muJ, sigI, sigJ float64, w int) float64 {
	fw := float64(w)
	if sigI == 0 || sigJ == 0 {
		if sigI == 0 && sigJ == 0 {
			return 0
		}
		return math.Sqrt(2 * fw)
	}
	corr := (dot - fw*muI*muJ) / (fw * sigI * sigJ)
	if corr > 1 {
		corr = 1
	}
	if corr < -1 {
		corr = -1
	}
	return math.Sqrt(2 * fw * (1 - corr))
}

// rollingStats returns the mean and standard deviation of every length-w
// window of v.
func rollingStats(v []float64, w int) (mu, sigma []float64) {
	m := len(v) - w + 1
	mu = make([]float64, m)
	sigma = make([]float64, m)
	var sum, sumsq float64
	for i := 0; i < w; i++ {
		sum += v[i]
		sumsq += v[i] * v[i]
	}
	for i := 0; i < m; i++ {
		fw := float64(w)
		mu[i] = sum / fw
		varc := sumsq/fw - mu[i]*mu[i]
		if varc < 0 {
			varc = 0
		}
		sigma[i] = math.Sqrt(varc)
		if i+w < len(v) {
			sum += v[i+w] - v[i]
			sumsq += v[i+w]*v[i+w] - v[i]*v[i]
		}
	}
	return mu, sigma
}

// correctedArcCurve computes CAC[i] = min(1, AC[i]/IAC[i]), where AC
// counts nearest-neighbour arcs crossing position i and IAC is the
// expected count 2·i·(m−i)/m for a structureless series. The first and
// last w positions are pinned to 1 so boundary artifacts never win.
func correctedArcCurve(mpIndex []int, w int) []float64 {
	m := len(mpIndex)
	// Arc counting by difference array: an arc (i, j) covers crossings in
	// (min, max).
	diff := make([]float64, m+1)
	for i, j := range mpIndex {
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		diff[lo]++
		diff[hi]--
	}
	cac := make([]float64, m)
	var run float64
	for i := 0; i < m; i++ {
		run += diff[i]
		ideal := 2 * float64(i) * float64(m-i) / float64(m)
		if ideal < 1e-9 {
			cac[i] = 1
			continue
		}
		c := run / ideal
		if c > 1 {
			c = 1
		}
		cac[i] = c
	}
	for i := 0; i < m && i < w; i++ {
		cac[i] = 1
		cac[m-1-i] = 1
	}
	return cac
}

// pickValleys selects up to count positions with the lowest curve values,
// suppressing any position within excl of an already-selected one.
func pickValleys(curve []float64, count, excl int) []int {
	type cand struct {
		pos int
		val float64
	}
	cands := make([]cand, len(curve))
	for i, v := range curve {
		cands[i] = cand{i, v}
	}
	// Selection sort over a copy is O(count·n), plenty for n here; a full
	// sort would also be fine but this keeps ties resolved left-to-right.
	var picked []int
	taken := make([]bool, len(curve))
	for len(picked) < count {
		bestPos, bestVal := -1, math.Inf(1)
		for _, c := range cands {
			if !taken[c.pos] && c.val < bestVal {
				bestVal = c.val
				bestPos = c.pos
			}
		}
		if bestPos < 0 || bestVal >= 1 {
			break // only flat regions remain
		}
		picked = append(picked, bestPos)
		for i := bestPos - excl; i <= bestPos+excl; i++ {
			if i >= 0 && i < len(taken) {
				taken[i] = true
			}
		}
	}
	return picked
}

// fullCuts converts interior cut positions into a full cut list with
// endpoints, sorted and deduplicated.
func fullCuts(interior []int, n int) []int {
	seen := map[int]bool{0: true, n - 1: true}
	out := []int{0, n - 1}
	for _, c := range interior {
		if c <= 0 || c >= n-1 || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
