// Package render draws TSExplain results as standalone SVG documents:
// the Figure 2-style evolving-explanations trendline (the aggregated
// series with segment boundaries and each segment's top-explanation
// sub-series) and the K-Variance curve with its elbow. Only the standard
// library is used; the output opens in any browser.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
)

// palette cycles through distinguishable explanation colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf",
}

// svgPlot accumulates SVG elements with a data-space to screen-space
// transform.
type svgPlot struct {
	sb            strings.Builder
	width, height float64
	left, right   float64
	top, bottom   float64
	xMin, xMax    float64
	yMin, yMax    float64
}

func newPlot(width, height float64) *svgPlot {
	return &svgPlot{
		width: width, height: height,
		left: 60, right: 20, top: 30, bottom: 40,
	}
}

func (p *svgPlot) setRange(xMin, xMax, yMin, yMax float64) {
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	p.xMin, p.xMax, p.yMin, p.yMax = xMin, xMax, yMin, yMax
}

func (p *svgPlot) x(v float64) float64 {
	return p.left + (v-p.xMin)/(p.xMax-p.xMin)*(p.width-p.left-p.right)
}

func (p *svgPlot) y(v float64) float64 {
	return p.height - p.bottom - (v-p.yMin)/(p.yMax-p.yMin)*(p.height-p.top-p.bottom)
}

// polyline draws a series of (x, y) data-space points.
func (p *svgPlot) polyline(xs, ys []float64, color string, width float64, dashed bool) {
	if len(xs) == 0 {
		return
	}
	var pts strings.Builder
	for i := range xs {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", p.x(xs[i]), p.y(ys[i]))
	}
	dash := ""
	if dashed {
		dash = ` stroke-dasharray="4 3"`
	}
	fmt.Fprintf(&p.sb,
		`<polyline fill="none" stroke="%s" stroke-width="%.1f"%s points="%s"/>`+"\n",
		color, width, dash, pts.String())
}

// vline draws a vertical marker at data-space x.
func (p *svgPlot) vline(xv float64, color string) {
	fmt.Fprintf(&p.sb,
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="2 3"/>`+"\n",
		p.x(xv), p.y(p.yMin), p.x(xv), p.y(p.yMax), color)
}

// text places a label at screen coordinates.
func (p *svgPlot) text(x, y float64, size int, anchor, color, s string) {
	fmt.Fprintf(&p.sb,
		`<text x="%.1f" y="%.1f" font-size="%d" text-anchor="%s" fill="%s" font-family="sans-serif">%s</text>`+"\n",
		x, y, size, anchor, color, escape(s))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// axes draws the frame and min/max tick labels.
func (p *svgPlot) axes(xLabels []string) {
	fmt.Fprintf(&p.sb,
		`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#999"/>`+"\n",
		p.left, p.top, p.width-p.left-p.right, p.height-p.top-p.bottom)
	p.text(p.left-6, p.y(p.yMin)+4, 11, "end", "#333", fmtNum(p.yMin))
	p.text(p.left-6, p.y(p.yMax)+4, 11, "end", "#333", fmtNum(p.yMax))
	if len(xLabels) > 0 {
		p.text(p.left, p.height-p.bottom+16, 11, "start", "#333", xLabels[0])
		p.text(p.width-p.right, p.height-p.bottom+16, 11, "end", "#333", xLabels[len(xLabels)-1])
	}
}

func fmtNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func (p *svgPlot) finish(w io.Writer, title string) error {
	head := fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		p.width, p.height, p.width, p.height)
	if _, err := io.WriteString(w, head); err != nil {
		return err
	}
	titleEl := fmt.Sprintf(
		`<text x="%.1f" y="18" font-size="14" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n",
		p.width/2, escape(title))
	if _, err := io.WriteString(w, titleEl); err != nil {
		return err
	}
	if _, err := io.WriteString(w, p.sb.String()); err != nil {
		return err
	}
	_, err := io.WriteString(w, "</svg>\n")
	return err
}

// Trendlines writes the Figure 2 visualization: the aggregated series in
// grey, a dashed boundary at every cut, and within each segment the top
// explanations' sub-series in color, labelled with predicate and effect.
func Trendlines(w io.Writer, res *core.Result, title string) error {
	n := len(res.Series)
	if n == 0 {
		return fmt.Errorf("render: empty result")
	}
	p := newPlot(980, 360)
	yMin, yMax := res.Series[0], res.Series[0]
	for _, v := range res.Series {
		yMin = math.Min(yMin, v)
		yMax = math.Max(yMax, v)
	}
	for _, seg := range res.Segments {
		for _, e := range seg.Top {
			for _, v := range e.Values {
				yMin = math.Min(yMin, v)
				yMax = math.Max(yMax, v)
			}
		}
	}
	p.setRange(0, float64(n-1), yMin, yMax)
	p.axes(res.Labels)

	// Aggregated series.
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	p.polyline(xs, res.Series, "#888", 2.5, false)

	// Segment boundaries with date labels.
	for _, seg := range res.Segments {
		p.vline(float64(seg.Start), "#555")
		p.text(p.x(float64(seg.Start))+2, p.top+12, 10, "start", "#555", seg.StartLabel)
	}
	p.vline(float64(n-1), "#555")

	// Per-segment explanation trendlines.
	color := 0
	for _, seg := range res.Segments {
		for _, e := range seg.Top {
			sub := make([]float64, len(e.Values))
			subX := make([]float64, len(e.Values))
			for i := range e.Values {
				sub[i] = e.Values[i]
				subX[i] = float64(seg.Start + i)
			}
			c := palette[color%len(palette)]
			color++
			p.polyline(subX, sub, c, 1.6, false)
			mid := (seg.Start + seg.End) / 2
			p.text(p.x(float64(mid)), p.y(sub[len(sub)/2])-4, 10, "middle", c,
				e.Predicates+" "+e.Effect.String())
		}
	}
	return p.finish(w, title)
}

// KVarianceCurve writes the K-Variance curve of Figures 11-14's left
// panels, marking the chosen elbow K.
func KVarianceCurve(w io.Writer, res *core.Result, title string) error {
	var ks, vars []float64
	for k := 1; k < len(res.KVariance); k++ {
		v := res.KVariance[k]
		if math.IsInf(v, 1) || math.IsNaN(v) {
			continue
		}
		ks = append(ks, float64(k))
		vars = append(vars, v)
	}
	if len(ks) == 0 {
		return fmt.Errorf("render: no feasible K in curve")
	}
	p := newPlot(420, 300)
	maxV := vars[0]
	minV := vars[len(vars)-1]
	p.setRange(ks[0], ks[len(ks)-1], minV, maxV)
	p.axes(nil)
	p.polyline(ks, vars, palette[0], 2, false)
	p.vline(float64(res.K), "#d62728")
	p.text(p.x(float64(res.K))+4, p.top+14, 11, "start", "#d62728",
		fmt.Sprintf("K*=%d", res.K))
	p.text(p.width/2, p.height-8, 11, "middle", "#333", "segment number K")
	return p.finish(w, title)
}
