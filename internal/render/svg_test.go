package render

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

func explained(t *testing.T) *core.Result {
	t.Helper()
	b := relation.NewBuilder("x", "t", []string{"c"}, []string{"v"})
	labels := make([]string, 30)
	for i := range labels {
		labels[i] = fmt.Sprintf("%02d", i)
	}
	b.SetTimeOrder(labels)
	for i := 0; i < 30; i++ {
		a, c := 10.0, 10.0
		if i <= 15 {
			a += 5 * float64(i)
		} else {
			a += 75
			c += 8 * float64(i-15)
		}
		_ = b.Append(labels[i], []string{"a"}, []float64{a})
		_ = b.Append(labels[i], []string{"b"}, []float64{c})
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(rel, core.Query{Measure: "v", Agg: relation.Sum}, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Explain()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTrendlinesSVG(t *testing.T) {
	res := explained(t)
	var buf bytes.Buffer
	if err := Trendlines(&buf, res, "test & <plot>"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// The title must be escaped.
	if !strings.Contains(out, "test &amp; &lt;plot&gt;") {
		t.Error("title not escaped")
	}
	// One polyline for the aggregate plus one per explanation.
	want := 1
	for _, seg := range res.Segments {
		want += len(seg.Top)
	}
	if got := strings.Count(out, "<polyline"); got != want {
		t.Errorf("polylines = %d, want %d", got, want)
	}
	// Explanation labels appear.
	if !strings.Contains(out, "c=a +") {
		t.Errorf("missing explanation label in SVG")
	}
	// No NaN coordinates.
	if strings.Contains(out, "NaN") {
		t.Error("NaN coordinates in SVG")
	}
}

func TestKVarianceCurveSVG(t *testing.T) {
	res := explained(t)
	var buf bytes.Buffer
	if err := KVarianceCurve(&buf, res, "K-Variance"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "K*=2") {
		t.Errorf("elbow marker missing:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("non-finite coordinates in SVG")
	}
}

func TestRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Trendlines(&buf, &core.Result{}, "x"); err == nil {
		t.Error("empty result: want error")
	}
	if err := KVarianceCurve(&buf, &core.Result{}, "x"); err == nil {
		t.Error("empty curve: want error")
	}
}
