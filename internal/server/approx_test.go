package server

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestExplainApproxMode(t *testing.T) {
	s := New()
	rec := get(t, s, "/api/explain?dataset=stream&mode=approx&epsilon=0.1")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "approx" {
		t.Errorf("mode = %q, want approx", out.Mode)
	}
	if out.Approx == nil {
		t.Fatal("approx block missing from response")
	}
	if out.Approx.Epsilon != 0.1 {
		t.Errorf("epsilon = %g, want 0.1", out.Approx.Epsilon)
	}
	if out.Approx.MaxErrBound > 0.1 && !out.Approx.Truncated &&
		out.Approx.CandidatesUsed < out.Approx.MaxCandidates &&
		out.Approx.CandidatesUsed < out.Approx.CandidatesEligible {
		t.Errorf("bound %g > ε with refinement budget left", out.Approx.MaxErrBound)
	}
	for i, seg := range out.Segments {
		if seg.Other == nil {
			t.Errorf("segment %d: approx response missing the residual (other)", i)
		}
	}

	// Exact mode stays unannotated and keeps its own cache entries.
	rec = get(t, s, "/api/explain?dataset=stream")
	var exact explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Mode != "exact" || exact.Approx != nil {
		t.Errorf("exact response carries approx state: mode=%q approx=%v", exact.Mode, exact.Approx)
	}
	for i, seg := range exact.Segments {
		if seg.Other != nil || seg.ErrBound != 0 {
			t.Errorf("exact segment %d carries approx annotations", i)
		}
	}

	// The approx metrics surfaced.
	rec = get(t, s, "/metrics")
	body := rec.Body.String()
	if !strings.Contains(body, "tsexplain_approx_requests_total 1") {
		t.Errorf("metrics missing approx request counter:\n%s", grepLines(body, "approx"))
	}
	if !strings.Contains(body, "tsexplain_approx_error_bound_count 1") {
		t.Errorf("metrics missing approx error histogram:\n%s", grepLines(body, "approx"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func TestExplainApproxParamValidation(t *testing.T) {
	s := New()
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/api/explain?dataset=stream&mode=nope", 400},
		{"/api/explain?dataset=stream&epsilon=0.1", 400},
		{"/api/explain?dataset=stream&mode=approx&epsilon=0", 400},
		{"/api/explain?dataset=stream&mode=approx&epsilon=0.7", 400},
		{"/api/explain?dataset=stream&mode=approx&epsilon=abc", 400},
		{"/api/explain?dataset=stream&mode=approx&epsilon=NaN", 400},
		{"/api/explain?dataset=stream&mode=exact", 200},
	} {
		if rec := get(t, s, tc.path); rec.Code != tc.code {
			t.Errorf("%s: status = %d, want %d (%s)", tc.path, rec.Code, tc.code, rec.Body.String())
		}
	}
}

// TestApproxDistinctCacheKeys: approx and exact requests for the same
// dataset must not share cached results or pooled engines.
func TestApproxDistinctCacheKeys(t *testing.T) {
	a := params{dataset: "stream"}
	b := params{dataset: "stream", approx: true, epsilon: 0.05}
	c := params{dataset: "stream", approx: true, epsilon: 0.01}
	if a.key() == b.key() || b.key() == c.key() {
		t.Errorf("cache keys collide: %q %q %q", a.key(), b.key(), c.key())
	}
	if a.engineKey() == b.engineKey() || b.engineKey() == c.engineKey() {
		t.Errorf("engine keys collide: %q %q %q", a.engineKey(), b.engineKey(), c.engineKey())
	}
}
