// Package server exposes TSExplain over HTTP, grown from the shape of
// the paper's interactive demo (SIGMOD 2021 companion) into a production
// serving layer: a JSON API for explaining the built-in and
// catalog-uploaded datasets with adjustable K / smoothing / optimization
// toggles, SVG endpoints for the Figure 2 trendline and the K-Variance
// curve, a self-contained HTML page that drives them, and a dataset
// admin API (upload CSV + manifest, append NDJSON deltas through the
// streaming ingestion path, delete) — all served through a sharded
// dataset registry with lazy loading and warm-restart snapshot restores,
// per-shard bounded worker pools with 429/503 back-pressure, per-request
// deadlines that the engine observes, and a dependency-free Prometheus
// /metrics endpoint.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/render"
)

// Config tunes the serving layer. The zero value of every field selects
// a production-ready default; negative QueueDepth disables queueing
// entirely (requests are rejected the moment every worker is busy).
type Config struct {
	// Shards is the number of registry shards. Engines pool inside the
	// shard owning their (dataset, smoothing, optimization) key, so
	// requests for different shards share no lock. Default 4.
	Shards int
	// WorkersPerShard bounds concurrently computing requests per shard.
	// Default: GOMAXPROCS spread across the shards, at least 1.
	WorkersPerShard int
	// QueueDepth bounds requests waiting for a worker slot per shard;
	// beyond it requests are shed with 429. Default 64; negative means 0.
	QueueDepth int
	// RequestTimeout is the per-request deadline. The engine observes the
	// deadline mid-compute: an expired request aborts its explain instead
	// of running to completion. Default 30s.
	RequestTimeout time.Duration
	// MemoryBudgetBytes bounds the estimated footprint of pooled engines
	// (split across shards); cold engines are LRU-evicted beyond it, but
	// never an engine with in-flight requests. Default 1 GiB.
	MemoryBudgetBytes int64
	// ResultCacheSize bounds cached explain results (split across
	// shards). Default 256.
	ResultCacheSize int
	// AccessLog, when non-nil, receives one structured (JSON) log line
	// per request: endpoint, status, latency. Nil disables logging.
	AccessLog io.Writer
	// DataDir, when non-empty, enables the on-disk dataset catalog: the
	// directory is scanned for uploaded datasets at startup, and the
	// admin endpoints (POST /api/datasets, DELETE /api/datasets/{name},
	// POST /api/datasets/{name}/append) operate on it. Empty serves the
	// built-in datasets only.
	DataDir string
	// DisableSnapshots turns off the warm-restart snapshot path for
	// catalog datasets: no snapshots are written or read, and every cold
	// load parses the CSV and rebuilds the candidate universe. The
	// default (false) restores from snapshots when they are valid.
	DisableSnapshots bool
	// JobsDir, when non-empty, enables the async job API (POST /api/jobs
	// and friends) persisting jobs there. Empty defaults to
	// <DataDir>/jobs when DataDir is set; with neither, the job API is
	// disabled.
	JobsDir string
	// JobTTL is how long finished jobs (and their results) stay on disk
	// before the sweeper garbage-collects them. Default 1h.
	JobTTL time.Duration
	// JobWorkers bounds concurrently running async jobs. Each running job
	// still draws a regular shard worker slot (patiently — jobs queue
	// rather than shed), so this caps how much background work can
	// compete with interactive traffic. Default 2.
	JobWorkers int
	// JobTimeout is the per-job compute deadline, deliberately far above
	// RequestTimeout: jobs exist for explains too slow for a synchronous
	// request. Default 5m.
	JobTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = (runtime.GOMAXPROCS(0) + c.Shards - 1) / c.Shards
		if c.WorkersPerShard < 1 {
			c.WorkersPerShard = 1
		}
	}
	switch {
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	case c.QueueDepth == 0:
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MemoryBudgetBytes <= 0 {
		c.MemoryBudgetBytes = 1 << 30
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 256
	}
	if c.JobsDir == "" && c.DataDir != "" {
		c.JobsDir = filepath.Join(c.DataDir, catalog.JobsDirName)
	}
	if c.JobTTL <= 0 {
		c.JobTTL = time.Hour
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	return c
}

// Server handles the demo endpoints. Results are cached per parameter
// combination (bounded LRU, sharded) so repeated requests are instant,
// mirroring the interactivity requirement of Section 1 (challenge b);
// concurrent cold requests for the same key are deduplicated
// singleflight-style so a thundering herd runs one explain, not N; and
// engines are pooled per (dataset, smoothing, optimization) so requests
// that differ only in K reuse the expensive universe and per-segment
// explanation cache.
type Server struct {
	mux    *http.ServeMux
	cfg    Config
	met    *metrics
	reg    *registry
	jobs   *jobManager // nil when the job API is disabled
	logger *slog.Logger
}

// New returns a ready-to-serve handler with default configuration.
func New() *Server { return NewWithConfig(Config{}) }

// NewWithConfig returns a ready-to-serve handler. It panics when the
// catalog data directory cannot be opened; use Open where that failure
// should be handled instead (the commands do).
func NewWithConfig(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open returns a ready-to-serve handler, surfacing catalog
// initialization failures (unreadable data directory, invalid manifest,
// alias collisions between stored datasets).
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		mux: http.NewServeMux(),
		cfg: cfg,
		met: newMetrics(),
	}
	var cat *catalog.Catalog
	if cfg.DataDir != "" {
		var err error
		if cat, err = catalog.Open(cfg.DataDir); err != nil {
			return nil, err
		}
	}
	s.reg = newRegistry(cfg, s.met, cat)
	if cfg.AccessLog != nil {
		s.logger = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	s.handle("/", s.handleIndex)
	s.handle("GET /api/datasets", s.handleDatasets)
	s.handle("POST /api/datasets", s.handleDatasetUpload)
	s.handle("DELETE /api/datasets/{name}", s.handleDatasetDelete)
	s.handle("POST /api/datasets/{name}/append", s.handleDatasetAppend)
	s.handle("/api/explain", s.handleExplain)
	s.handle("POST /api/jobs", s.handleJobSubmit)
	s.handle("GET /api/jobs", s.handleJobList)
	s.handle("GET /api/jobs/{id}", s.handleJobGet)
	s.handle("DELETE /api/jobs/{id}", s.handleJobDelete)
	s.handle("/api/recommend", s.handleRecommend)
	s.handle("/api/slice", s.handleSlice)
	s.handle("/api/diff", s.handleDiff)
	s.handle("/api/stream", s.handleStream)
	s.handle("/svg/trendlines", s.handleTrendlines)
	s.handle("/svg/kvariance", s.handleKVariance)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.JobsDir != "" {
		store, err := catalog.OpenJobStore(cfg.JobsDir)
		if err != nil {
			return nil, err
		}
		s.jobs = newJobManager(s, store)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the async-job workers and TTL sweeper, waiting for any
// in-flight job to finish persisting its state. The HTTP handlers stay
// usable (job submissions after Close fail with 503); call it when the
// process is shutting down.
func (s *Server) Close() {
	if s.jobs != nil {
		s.jobs.close()
	}
}

// handle registers an instrumented endpoint: per-request deadline,
// status/latency metrics, and an access-log line. /metrics itself stays
// uninstrumented so scrapes don't pollute the request counters.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		// Shed accounting is centralized here, on the final status: an
		// overloaded request that was rescued by the degraded lane ends
		// 200 and counts as degraded (in explainDegradable), not shed.
		switch sw.status() {
		case http.StatusTooManyRequests:
			s.met.shedQueueFull.Add(1)
		case http.StatusServiceUnavailable:
			s.met.shedDeadline.Add(1)
		}
		s.met.observe(pattern, sw.status(), elapsed.Seconds())
		if s.logger != nil {
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("endpoint", pattern),
				slog.String("query", r.URL.RawQuery),
				slog.Int("status", sw.status()),
				slog.Float64("ms", ms(elapsed)),
			)
		}
	})
}

// statusWriter captures the response code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming endpoints keep
// working through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Render into a buffer first: write holds the metrics mutex, and a
	// slow scraper must not be able to stall it (and with it every
	// request's metrics.observe) on a blocked TCP write.
	var buf bytes.Buffer
	s.met.write(&buf, s.reg.gauges())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// statusErr carries the HTTP status a failure should map to.
type statusErr struct {
	code int
	err  error
}

func (e *statusErr) Error() string { return e.err.Error() }
func (e *statusErr) Unwrap() error { return e.err }

func httpErrf(code int, format string, args ...any) error {
	return &statusErr{code: code, err: fmt.Errorf(format, args...)}
}

// errorCode normalizes any serving-path failure to its HTTP status:
// malformed input 400, unknown resources 404, queue-full 429, expired
// deadlines and cancellations 503, everything else 500.
func errorCode(err error) int {
	var se *statusErr
	switch {
	case errors.As(err, &se):
		return se.code
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the normalized JSON error shape on every failure path
// (no handler returns 200 with an empty body on bad input).
func writeError(w http.ResponseWriter, err error) {
	code := errorCode(err)
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		// Derive Retry-After from the shard's observed service time when
		// the shed carried one (see shard.retryAfterSeconds); a blind
		// constant teaches well-behaved clients to hammer an overloaded
		// server once a second regardless of how deep the queue is.
		retry := 1
		var oe *overloadedError
		if errors.As(err, &oe) && oe.retryAfter > 0 {
			retry = oe.retryAfter
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// httpError keeps the legacy explicit-status shape used by handlers that
// classify their own errors.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// builtinNames lists the compiled-in demo datasets.
var builtinNames = []string{"covid", "covid-daily", "sp500", "liquor", "vax-deaths", "stream"}

// builtinAliases maps alternative request names for built-in datasets to
// their canonical name, so every alias shares one cache key and one
// pooled engine ("covid-total" used to be cached — and computed —
// separately from "covid"). Catalog datasets declare their aliases in
// their manifests instead of here; both kinds resolve through
// Server.resolveDataset before any cache key is formed.
var builtinAliases = map[string]string{"covid-total": "covid"}

func isBuiltinDataset(name string) bool {
	for _, n := range builtinNames {
		if n == name {
			return true
		}
	}
	return false
}

// isReservedDatasetName reports whether a catalog upload may not claim
// the name (built-in names and their aliases stay routable to the
// built-ins).
func isReservedDatasetName(name string) bool {
	if isBuiltinDataset(name) {
		return true
	}
	_, ok := builtinAliases[name]
	return ok
}

// resolveDataset canonicalizes a request's dataset parameter: the empty
// default, built-in aliases, built-in names, then catalog names and
// manifest-declared aliases. The canonical name is what every cache key,
// engine-pool key, and registry lookup uses, so an alias and its target
// always share one engine and one cached result.
func (s *Server) resolveDataset(raw string) (string, error) {
	if raw == "" {
		return "covid", nil
	}
	if canon, ok := builtinAliases[raw]; ok {
		return canon, nil
	}
	if isBuiltinDataset(raw) {
		return raw, nil
	}
	if s.reg.cat != nil {
		if canon, ok := s.reg.cat.Resolve(raw); ok {
			return canon, nil
		}
	}
	return "", httpErrf(http.StatusNotFound, "unknown dataset %q", raw)
}

func demoDataset(name string) (*datasets.Dataset, error) {
	switch name {
	case "covid":
		return datasets.CovidTotal(), nil
	case "covid-daily":
		return datasets.CovidDaily(), nil
	case "sp500":
		return datasets.SP500(), nil
	case "liquor":
		return datasets.Liquor(), nil
	case "vax-deaths":
		return datasets.VaxDeaths(), nil
	case "stream":
		return datasets.Stream(datasets.StreamDays), nil
	default:
		return nil, httpErrf(http.StatusNotFound, "unknown dataset %q", name)
	}
}

// params decodes the shared query parameters. dataset is always in
// canonical (alias-resolved) form.
type params struct {
	dataset string
	k       int
	smooth  int
	vanilla bool
	// approx selects the anytime approximate explanation path
	// (?mode=approx); epsilon is the requested per-segment error target
	// (0: the dataset's manifest default, falling back to 0.05).
	approx  bool
	epsilon float64
	// deg marks the degraded overload lane: never parsed from a query,
	// only set by degraded() when a handler retries an overloaded
	// approx-eligible request with a coarser epsilon on the separate
	// degraded worker pool.
	deg bool
	// patient marks async-job computes: never parsed from a query, only
	// set by the job worker. Patient requests wait for a worker slot
	// instead of shedding on queue depth; it does not affect cache keys
	// (the computed result is identical to the synchronous one).
	patient bool
	// admitGrace, when positive, bounds how long this request waits for
	// admission (engine lock, worker slot, or a deduped in-flight
	// compute) before the registry reports the wait as overload. Never
	// parsed from a query and not part of any cache key; set by the
	// degradable handlers so "deadline near" turns into a degraded answer
	// instead of a long queue wait.
	admitGrace time.Duration
}

// degradedEpsilon is the error target the server picks when it degrades
// an overloaded request instead of shedding it: coarse enough that the
// first anytime round usually satisfies it, honest enough to be useful.
const degradedEpsilon = 0.25

// degradable reports whether overload may serve this request a degraded
// bounded answer instead of a 429/503: the optimized path is required
// (vanilla engines have no candidate ranking to prune), and a request
// already on the degraded lane has nothing further to fall back to.
func (p params) degradable() bool { return !p.vanilla && !p.deg }

// degraded returns the request's degraded-lane twin: approximate mode at
// the server-picked coarse epsilon, keyed (and admitted) separately from
// normal traffic.
func (p params) degraded() params {
	p.deg = true
	p.approx = true
	p.epsilon = degradedEpsilon
	// The degraded lane is the last resort: it waits patiently for its
	// (small) pool rather than racing a grace timer it has no fallback
	// for.
	p.admitGrace = 0
	return p
}

func (s *Server) parseParams(r *http.Request) (params, error) {
	return s.paramsFromQuery(r.URL.Query())
}

// paramsFromQuery decodes the shared explain parameters from raw query
// values. It exists apart from parseParams because async-job workers
// re-parse a job's persisted query string long after its submitting
// request is gone.
func (s *Server) paramsFromQuery(q url.Values) (params, error) {
	var p params
	var err error
	if p.dataset, err = s.resolveDataset(q.Get("dataset")); err != nil {
		return p, err
	}
	if v := q.Get("k"); v != "" {
		if p.k, err = strconv.Atoi(v); err != nil || p.k < 0 || p.k > 20 {
			return p, httpErrf(http.StatusBadRequest, "bad k %q (want 0..20)", v)
		}
	}
	if v := q.Get("smooth"); v != "" {
		if p.smooth, err = strconv.Atoi(v); err != nil || p.smooth < 0 || p.smooth > 60 {
			return p, httpErrf(http.StatusBadRequest, "bad smooth %q (want 0..60)", v)
		}
	}
	p.vanilla = q.Get("vanilla") == "1"
	switch v := q.Get("mode"); v {
	case "", "exact":
	case "approx":
		p.approx = true
	default:
		return p, httpErrf(http.StatusBadRequest, "bad mode %q (want exact or approx)", v)
	}
	if v := q.Get("epsilon"); v != "" {
		if !p.approx {
			return p, httpErrf(http.StatusBadRequest, "epsilon requires mode=approx")
		}
		// The inverted comparison also rejects NaN, which would otherwise
		// slip past a `<= 0 || > 0.5` pair and never satisfy the
		// refinement loop's convergence test.
		if p.epsilon, err = strconv.ParseFloat(v, 64); err != nil || !(p.epsilon > 0 && p.epsilon <= 0.5) {
			return p, httpErrf(http.StatusBadRequest, "bad epsilon %q (want 0 < epsilon <= 0.5)", v)
		}
	}
	return p, nil
}

// mode names the explanation mode for responses.
func (p params) mode() string {
	if p.approx {
		return "approx"
	}
	return "exact"
}

// modeKey renders the cache-key component of the explanation mode: the
// approximate path and every distinct requested epsilon get their own
// cached results and pooled engines (an approx engine's per-segment
// cache is solved under its pruned candidate set and must never serve
// exact traffic, and vice versa; epsilon 0 — "use the dataset default" —
// keys separately from any explicit value). The degraded lane keys
// separately again, so its engines and cached coarse results never mix
// with — or wait behind — normal traffic's.
func (p params) modeKey() string {
	if p.deg {
		return "deg"
	}
	if !p.approx {
		return "exact"
	}
	return fmt.Sprintf("approx:%g", p.epsilon)
}

func (p params) key() string {
	return fmt.Sprintf("%s|%d|%d|%v|%s", p.dataset, p.k, p.smooth, p.vanilla, p.modeKey())
}

// engineKey identifies the pooled engine: everything but K, which only
// steers segmentation and is overridden per explain call.
func (p params) engineKey() string {
	return fmt.Sprintf("%s|%d|%v|%s", p.dataset, p.smooth, p.vanilla, p.modeKey())
}

// options assembles the engine options for the request (K excluded; it is
// passed to ExplainWithK so one engine serves every K).
func (p params) options(d *datasets.Dataset) core.Options {
	var opts core.Options
	if !p.vanilla {
		opts = core.DefaultOptions()
	}
	opts.MaxOrder = d.MaxOrder
	opts.SmoothWindow = d.SmoothWindow
	if p.smooth > 0 {
		opts.SmoothWindow = p.smooth
	}
	if p.approx {
		eps := p.epsilon
		if eps == 0 {
			eps = d.ApproxEpsilon // 0 falls through to the engine default
		}
		opts.Approx = core.ApproxOptions{
			Enabled:       true,
			MaxCandidates: d.ApproxMaxCandidates,
			Epsilon:       eps,
		}
		if p.deg {
			// The degraded lane trades accuracy for certainty of an
			// answer: coarse target, and a refinement time budget well
			// inside the lane's short compute deadline.
			opts.Approx.TimeBudget = degradedComputeTimeout / 4
		}
	}
	return opts
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	names := append([]string(nil), builtinNames...)
	catalogNames := []string{}
	if s.reg.cat != nil {
		catalogNames = s.reg.cat.Names()
		names = append(names, catalogNames...)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"datasets": names,
		"builtin":  builtinNames,
		"catalog":  catalogNames,
	})
}

// explainResponse is the JSON shape of /api/explain.
type explainResponse struct {
	Dataset string `json:"dataset"`
	Mode    string `json:"mode"`
	K       int    `json:"k"`
	AutoK   bool   `json:"autoK"`
	// Degraded marks an answer served from the degraded overload lane
	// (coarser epsilon, bound reported in approx.maxErrBound) instead of
	// a 429/503 shed; Truncated is the response-level flag for any answer
	// that stopped short of its requested accuracy — degraded-lane
	// answers and refinement runs cut off by a deadline or time budget.
	Degraded  bool             `json:"degraded,omitempty"`
	Truncated bool             `json:"truncated,omitempty"`
	Variance  float64          `json:"totalVariance"`
	Latency   latencyBreakdown `json:"latencyMs"`
	Approx    *core.ApproxInfo `json:"approx,omitempty"`
	Segments  []segmentJSON    `json:"segments"`
}

type latencyBreakdown struct {
	Precompute   float64 `json:"precompute"`
	Cascading    float64 `json:"cascading"`
	Segmentation float64 `json:"segmentation"`
}

type segmentJSON struct {
	Start string     `json:"start"`
	End   string     `json:"end"`
	Top   []explJSON `json:"top"`
	// Approximate-mode extras: the reported relative attribution-error
	// bound and the exact residual of everything outside Top.
	ErrBound float64   `json:"errBound,omitempty"`
	Other    *explJSON `json:"other,omitempty"`
}

type explJSON struct {
	Predicates string  `json:"predicates"`
	Effect     string  `json:"effect"`
	Gamma      float64 `json:"gamma"`
	// Path is the hierarchy drill-down path of the explanation's deepest
	// taxonomy predicate, coarse to fine (e.g. ["TX", "Houston"]); only
	// present for datasets that declare hierarchies.
	Path []string `json:"path,omitempty"`
}

// overloadError reports whether an explain failure is an overload signal
// the degraded lane can absorb: a full admission queue, or a deadline /
// cancellation that expired the attempt.
func overloadError(err error) bool {
	return errors.Is(err, errQueueFull) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// explainDegradable serves one explain with the degrade-never-shed
// contract: the normal attempt first; if it fails on overload and the
// request is approx-eligible (and the client is still connected), retry
// once on the degraded lane — separate worker pool, coarse epsilon,
// short deadline — and flag the answer degraded. Only non-degradable
// requests (vanilla engines) still surface 429/503.
func (s *Server) explainDegradable(r *http.Request, p params) (res *core.Result, degraded bool, err error) {
	ctx := r.Context()
	if p.degradable() {
		// Deadline-near trigger: cap how long the normal attempt may sit
		// in admission waits. A request that cannot start promptly
		// degrades now, with most of its deadline still ahead of it,
		// instead of shedding 503 after waiting the deadline out.
		p.admitGrace = degradeAfterWait
	}
	res, err = s.reg.explain(ctx, p)
	if err == nil || !p.degradable() || !overloadError(err) {
		return res, false, err
	}
	// The server-side request timeout counts as overload to degrade
	// through; an actual client hang-up does not — nobody is left to
	// read the degraded answer.
	if errors.Is(context.Cause(ctx), context.Canceled) {
		return nil, false, err
	}
	if errors.Is(err, errQueueFull) {
		s.met.degradedQueueFull.Add(1)
	} else {
		s.met.degradedDeadline.Add(1)
	}
	// Detach from the (possibly already expired) request deadline: the
	// client is still waiting on the connection, and each degraded
	// compute is separately capped at degradedComputeTimeout by the
	// registry. The window here bounds compute PLUS the wait for a
	// degraded-lane slot — a whole overload burst funnels through that
	// small pool, so the tail needs the full patience the client already
	// signed up for (never less than one compute's worth).
	window := s.cfg.RequestTimeout
	if min := degradedComputeTimeout + time.Second; window < min {
		window = min
	}
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), window)
	defer cancel()
	dres, derr := s.reg.explain(dctx, p.degraded())
	if derr != nil {
		return nil, false, err // surface the original overload error
	}
	return dres, true, nil
}

// buildExplainResponse renders one explain result to the API shape.
// degraded answers are flagged, and any truncation — the degraded lane
// itself, or a refinement loop cut off mid-ramp — sets the response-level
// truncated flag. The shared (possibly cached) result is never mutated.
func buildExplainResponse(p params, res *core.Result, degraded bool) explainResponse {
	resp := explainResponse{
		Dataset:  p.dataset,
		Mode:     p.mode(),
		K:        res.K,
		AutoK:    res.AutoK,
		Degraded: degraded,
		Variance: res.TotalVariance,
		Latency: latencyBreakdown{
			Precompute:   ms(res.Timings.Precompute),
			Cascading:    ms(res.Timings.Cascading),
			Segmentation: ms(res.Timings.Segmentation),
		},
		Approx: res.Approx,
	}
	if res.Approx != nil {
		resp.Truncated = degraded || res.Approx.Truncated
	}
	for _, seg := range res.Segments {
		sj := segmentJSON{Start: seg.StartLabel, End: seg.EndLabel, ErrBound: seg.ErrBound}
		for _, e := range seg.Top {
			sj.Top = append(sj.Top, explJSON{
				Predicates: e.Predicates,
				Effect:     e.Effect.String(),
				Gamma:      e.Gamma,
				Path:       e.Path,
			})
		}
		if seg.Other != nil {
			sj.Other = &explJSON{
				Predicates: seg.Other.Predicates,
				Effect:     seg.Other.Effect.String(),
				Gamma:      seg.Other.Gamma,
			}
		}
		resp.Segments = append(resp.Segments, sj)
	}
	return resp
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("progressive") == "1" {
		s.serveProgressive(w, r, p)
		return
	}
	res, degraded, err := s.explainDegradable(r, p)
	if err != nil {
		writeError(w, err)
		return
	}
	if degraded {
		p = p.degraded() // report the mode actually served
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(buildExplainResponse(p, res, degraded))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	sh := s.reg.shardFor(p.dataset)
	release, err := sh.admit(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	d, err := s.reg.dataset(p.dataset)
	if err != nil {
		writeError(w, err)
		return
	}
	scores, err := core.RecommendExplainByCtx(r.Context(), d.Rel, core.Query{Measure: d.Measure, Agg: d.Agg})
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"dataset": p.dataset, "attributes": scores})
}

func (s *Server) handleTrendlines(w http.ResponseWriter, r *http.Request) {
	s.serveSVG(w, r, func(buf *bytes.Buffer, res *core.Result, title string) error {
		return render.Trendlines(buf, res, title)
	})
}

func (s *Server) handleKVariance(w http.ResponseWriter, r *http.Request) {
	s.serveSVG(w, r, func(buf *bytes.Buffer, res *core.Result, title string) error {
		return render.KVarianceCurve(buf, res, title)
	})
}

func (s *Server) serveSVG(w http.ResponseWriter, r *http.Request,
	draw func(*bytes.Buffer, *core.Result, string) error) {
	p, err := s.parseParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	res, _, err := s.explainDegradable(r, p)
	if err != nil {
		writeError(w, err)
		return
	}
	var buf bytes.Buffer
	if err := draw(&buf, res, p.dataset); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
