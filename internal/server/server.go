// Package server exposes TSExplain over HTTP, the shape of the paper's
// interactive demo (SIGMOD 2021 companion): a JSON API for explaining the
// built-in datasets with adjustable K / smoothing / optimization toggles,
// SVG endpoints for the Figure 2 trendline and the K-Variance curve, and
// a self-contained HTML page that drives them.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/render"
)

// Server handles the demo endpoints. Results are cached per parameter
// combination (bounded LRU) so repeated requests are instant, mirroring
// the interactivity requirement of Section 1 (challenge b); concurrent
// cold requests for the same key are deduplicated singleflight-style so a
// thundering herd runs one explain, not N; and engines are pooled per
// (dataset, smoothing, optimization) so requests that differ only in K
// reuse the expensive universe and per-segment explanation cache.
type Server struct {
	mux *http.ServeMux

	mu       sync.Mutex
	cache    *lruCache[*core.Result]
	inflight map[string]*inflightCall
	engines  *lruCache[*pooledEngine]
	computes int // full explain computations run (observed by tests)

	slices *sliceAPI
}

// inflightCall tracks one in-progress explain; late arrivals for the same
// key wait on done instead of recomputing.
type inflightCall struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// pooledEngine serializes use of one cached engine (engines are not safe
// for concurrent use; distinct parameter combinations still explain in
// parallel).
type pooledEngine struct {
	mu  sync.Mutex
	eng *core.Engine
}

// resultCacheSize and enginePoolSize bound the caches: results are small,
// engines hold full candidate universes.
const (
	resultCacheSize = 256
	enginePoolSize  = 16
)

// New returns a ready-to-serve handler.
func New() *Server {
	s := &Server{
		mux:      http.NewServeMux(),
		cache:    newLRU[*core.Result](resultCacheSize),
		inflight: make(map[string]*inflightCall),
		engines:  newLRU[*pooledEngine](enginePoolSize),
		slices:   newSliceAPI(),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/datasets", s.handleDatasets)
	s.mux.HandleFunc("/api/explain", s.handleExplain)
	s.mux.HandleFunc("/api/recommend", s.handleRecommend)
	s.mux.HandleFunc("/api/slice", s.handleSlice)
	s.mux.HandleFunc("/api/diff", s.handleDiff)
	s.mux.HandleFunc("/api/stream", s.handleStream)
	s.mux.HandleFunc("/svg/trendlines", s.handleTrendlines)
	s.mux.HandleFunc("/svg/kvariance", s.handleKVariance)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// demoNames lists the selectable datasets.
var demoNames = []string{"covid", "covid-daily", "sp500", "liquor", "vax-deaths", "stream"}

// normalizeDataset canonicalizes dataset aliases so every alias shares
// one cache key and one pooled engine ("covid-total" used to be cached —
// and computed — separately from "covid").
func normalizeDataset(name string) string {
	switch name {
	case "":
		return "covid"
	case "covid-total":
		return "covid"
	default:
		return name
	}
}

func validDataset(name string) bool {
	for _, n := range demoNames {
		if n == name {
			return true
		}
	}
	return false
}

func demoDataset(name string) (*datasets.Dataset, error) {
	switch normalizeDataset(name) {
	case "covid":
		return datasets.CovidTotal(), nil
	case "covid-daily":
		return datasets.CovidDaily(), nil
	case "sp500":
		return datasets.SP500(), nil
	case "liquor":
		return datasets.Liquor(), nil
	case "vax-deaths":
		return datasets.VaxDeaths(), nil
	case "stream":
		return datasets.Stream(datasets.StreamDays), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// params decodes the shared query parameters. dataset is always in
// normalized form.
type params struct {
	dataset string
	k       int
	smooth  int
	vanilla bool
}

func parseParams(r *http.Request) (params, error) {
	q := r.URL.Query()
	p := params{dataset: normalizeDataset(q.Get("dataset"))}
	if !validDataset(p.dataset) {
		return p, fmt.Errorf("unknown dataset %q", q.Get("dataset"))
	}
	var err error
	if v := q.Get("k"); v != "" {
		if p.k, err = strconv.Atoi(v); err != nil || p.k < 0 || p.k > 20 {
			return p, fmt.Errorf("bad k %q", v)
		}
	}
	if v := q.Get("smooth"); v != "" {
		if p.smooth, err = strconv.Atoi(v); err != nil || p.smooth < 0 || p.smooth > 60 {
			return p, fmt.Errorf("bad smooth %q", v)
		}
	}
	p.vanilla = q.Get("vanilla") == "1"
	return p, nil
}

func (p params) key() string {
	return fmt.Sprintf("%s|%d|%d|%v", p.dataset, p.k, p.smooth, p.vanilla)
}

// engineKey identifies the pooled engine: everything but K, which only
// steers segmentation and is overridden per explain call.
func (p params) engineKey() string {
	return fmt.Sprintf("%s|%d|%v", p.dataset, p.smooth, p.vanilla)
}

// options assembles the engine options for the request (K excluded; it is
// passed to ExplainWithK so one engine serves every K).
func (p params) options(d *datasets.Dataset) core.Options {
	var opts core.Options
	if !p.vanilla {
		opts = core.DefaultOptions()
	}
	opts.MaxOrder = d.MaxOrder
	opts.SmoothWindow = d.SmoothWindow
	if p.smooth > 0 {
		opts.SmoothWindow = p.smooth
	}
	return opts
}

// explainFor runs (or serves from cache) one explanation. Concurrent
// requests for the same cold key share a single computation.
func (s *Server) explainFor(p params) (*core.Result, error) {
	key := p.key()
	s.mu.Lock()
	if res, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		return res, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &inflightCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	// Deregister and wake waiters even if the computation panics (the
	// HTTP server recovers per-connection panics; without the defer the
	// key would stay in-flight forever and every later request for it
	// would block on done).
	defer func() {
		if c.res == nil && c.err == nil {
			// Reached only when computeExplain panicked: give waiters an
			// error instead of a nil result.
			c.err = fmt.Errorf("explain computation aborted")
		}
		s.mu.Lock()
		delete(s.inflight, key)
		if c.err == nil {
			s.cache.add(key, c.res)
		}
		s.mu.Unlock()
		close(c.done)
	}()
	c.res, c.err = s.computeExplain(p)
	return c.res, c.err
}

// computeExplain resolves the pooled engine for the request (building it
// on first use) and runs one explain under the engine's lock.
func (s *Server) computeExplain(p params) (*core.Result, error) {
	ekey := p.engineKey()
	s.mu.Lock()
	pe, ok := s.engines.get(ekey)
	if !ok {
		pe = &pooledEngine{}
		s.engines.add(ekey, pe)
	}
	s.computes++
	s.mu.Unlock()

	pe.mu.Lock()
	defer pe.mu.Unlock()
	if pe.eng == nil {
		d, err := demoDataset(p.dataset)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(d.Rel, core.Query{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
		}, p.options(d))
		if err != nil {
			return nil, err
		}
		pe.eng = eng
	}
	return pe.eng.ExplainWithK(p.k)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"datasets": demoNames})
}

// explainResponse is the JSON shape of /api/explain.
type explainResponse struct {
	Dataset  string           `json:"dataset"`
	K        int              `json:"k"`
	AutoK    bool             `json:"autoK"`
	Variance float64          `json:"totalVariance"`
	Latency  latencyBreakdown `json:"latencyMs"`
	Segments []segmentJSON    `json:"segments"`
}

type latencyBreakdown struct {
	Precompute   float64 `json:"precompute"`
	Cascading    float64 `json:"cascading"`
	Segmentation float64 `json:"segmentation"`
}

type segmentJSON struct {
	Start string     `json:"start"`
	End   string     `json:"end"`
	Top   []explJSON `json:"top"`
}

type explJSON struct {
	Predicates string  `json:"predicates"`
	Effect     string  `json:"effect"`
	Gamma      float64 `json:"gamma"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.explainFor(p)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := explainResponse{
		Dataset:  p.dataset,
		K:        res.K,
		AutoK:    res.AutoK,
		Variance: res.TotalVariance,
		Latency: latencyBreakdown{
			Precompute:   ms(res.Timings.Precompute),
			Cascading:    ms(res.Timings.Cascading),
			Segmentation: ms(res.Timings.Segmentation),
		},
	}
	for _, seg := range res.Segments {
		sj := segmentJSON{Start: seg.StartLabel, End: seg.EndLabel}
		for _, e := range seg.Top {
			sj.Top = append(sj.Top, explJSON{
				Predicates: e.Predicates,
				Effect:     e.Effect.String(),
				Gamma:      e.Gamma,
			})
		}
		resp.Segments = append(resp.Segments, sj)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	d, err := demoDataset(p.dataset)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := core.RecommendExplainBy(d.Rel, core.Query{Measure: d.Measure, Agg: d.Agg})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"dataset": p.dataset, "attributes": scores})
}

func (s *Server) handleTrendlines(w http.ResponseWriter, r *http.Request) {
	s.serveSVG(w, r, func(buf *bytes.Buffer, res *core.Result, title string) error {
		return render.Trendlines(buf, res, title)
	})
}

func (s *Server) handleKVariance(w http.ResponseWriter, r *http.Request) {
	s.serveSVG(w, r, func(buf *bytes.Buffer, res *core.Result, title string) error {
		return render.KVarianceCurve(buf, res, title)
	})
}

func (s *Server) serveSVG(w http.ResponseWriter, r *http.Request,
	draw func(*bytes.Buffer, *core.Result, string) error) {
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.explainFor(p)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var buf bytes.Buffer
	if err := draw(&buf, res, p.dataset); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
