// Package server exposes TSExplain over HTTP, the shape of the paper's
// interactive demo (SIGMOD 2021 companion): a JSON API for explaining the
// built-in datasets with adjustable K / smoothing / optimization toggles,
// SVG endpoints for the Figure 2 trendline and the K-Variance curve, and
// a self-contained HTML page that drives them.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/render"
)

// Server handles the demo endpoints. Results are cached per parameter
// combination so repeated requests are instant, mirroring the
// interactivity requirement of Section 1 (challenge b).
type Server struct {
	mux *http.ServeMux

	mu     sync.Mutex
	cache  map[string]*core.Result
	slices *sliceAPI
}

// New returns a ready-to-serve handler.
func New() *Server {
	s := &Server{
		mux:    http.NewServeMux(),
		cache:  make(map[string]*core.Result),
		slices: newSliceAPI(),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/datasets", s.handleDatasets)
	s.mux.HandleFunc("/api/explain", s.handleExplain)
	s.mux.HandleFunc("/api/recommend", s.handleRecommend)
	s.mux.HandleFunc("/api/slice", s.handleSlice)
	s.mux.HandleFunc("/api/diff", s.handleDiff)
	s.mux.HandleFunc("/svg/trendlines", s.handleTrendlines)
	s.mux.HandleFunc("/svg/kvariance", s.handleKVariance)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// demoNames lists the selectable datasets.
var demoNames = []string{"covid", "covid-daily", "sp500", "liquor", "vax-deaths"}

func demoDataset(name string) (*datasets.Dataset, error) {
	switch name {
	case "covid", "covid-total":
		return datasets.CovidTotal(), nil
	case "covid-daily":
		return datasets.CovidDaily(), nil
	case "sp500":
		return datasets.SP500(), nil
	case "liquor":
		return datasets.Liquor(), nil
	case "vax-deaths":
		return datasets.VaxDeaths(), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// params decodes the shared query parameters.
type params struct {
	dataset string
	k       int
	smooth  int
	vanilla bool
}

func parseParams(r *http.Request) (params, error) {
	q := r.URL.Query()
	p := params{dataset: q.Get("dataset")}
	if p.dataset == "" {
		p.dataset = "covid"
	}
	var err error
	if v := q.Get("k"); v != "" {
		if p.k, err = strconv.Atoi(v); err != nil || p.k < 0 || p.k > 20 {
			return p, fmt.Errorf("bad k %q", v)
		}
	}
	if v := q.Get("smooth"); v != "" {
		if p.smooth, err = strconv.Atoi(v); err != nil || p.smooth < 0 || p.smooth > 60 {
			return p, fmt.Errorf("bad smooth %q", v)
		}
	}
	p.vanilla = q.Get("vanilla") == "1"
	return p, nil
}

func (p params) key() string {
	return fmt.Sprintf("%s|%d|%d|%v", p.dataset, p.k, p.smooth, p.vanilla)
}

// explainFor runs (or serves from cache) one explanation.
func (s *Server) explainFor(p params) (*core.Result, error) {
	s.mu.Lock()
	if res, ok := s.cache[p.key()]; ok {
		s.mu.Unlock()
		return res, nil
	}
	s.mu.Unlock()

	d, err := demoDataset(p.dataset)
	if err != nil {
		return nil, err
	}
	var opts core.Options
	if !p.vanilla {
		opts = core.DefaultOptions()
	}
	opts.MaxOrder = d.MaxOrder
	opts.K = p.k
	opts.SmoothWindow = d.SmoothWindow
	if p.smooth > 0 {
		opts.SmoothWindow = p.smooth
	}
	eng, err := core.NewEngine(d.Rel, core.Query{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
	}, opts)
	if err != nil {
		return nil, err
	}
	res, err := eng.Explain()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[p.key()] = res
	s.mu.Unlock()
	return res, nil
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"datasets": demoNames})
}

// explainResponse is the JSON shape of /api/explain.
type explainResponse struct {
	Dataset  string           `json:"dataset"`
	K        int              `json:"k"`
	AutoK    bool             `json:"autoK"`
	Variance float64          `json:"totalVariance"`
	Latency  latencyBreakdown `json:"latencyMs"`
	Segments []segmentJSON    `json:"segments"`
}

type latencyBreakdown struct {
	Precompute   float64 `json:"precompute"`
	Cascading    float64 `json:"cascading"`
	Segmentation float64 `json:"segmentation"`
}

type segmentJSON struct {
	Start string     `json:"start"`
	End   string     `json:"end"`
	Top   []explJSON `json:"top"`
}

type explJSON struct {
	Predicates string  `json:"predicates"`
	Effect     string  `json:"effect"`
	Gamma      float64 `json:"gamma"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.explainFor(p)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp := explainResponse{
		Dataset:  p.dataset,
		K:        res.K,
		AutoK:    res.AutoK,
		Variance: res.TotalVariance,
		Latency: latencyBreakdown{
			Precompute:   ms(res.Timings.Precompute),
			Cascading:    ms(res.Timings.Cascading),
			Segmentation: ms(res.Timings.Segmentation),
		},
	}
	for _, seg := range res.Segments {
		sj := segmentJSON{Start: seg.StartLabel, End: seg.EndLabel}
		for _, e := range seg.Top {
			sj.Top = append(sj.Top, explJSON{
				Predicates: e.Predicates,
				Effect:     e.Effect.String(),
				Gamma:      e.Gamma,
			})
		}
		resp.Segments = append(resp.Segments, sj)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	d, err := demoDataset(p.dataset)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := core.RecommendExplainBy(d.Rel, core.Query{Measure: d.Measure, Agg: d.Agg})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"dataset": p.dataset, "attributes": scores})
}

func (s *Server) handleTrendlines(w http.ResponseWriter, r *http.Request) {
	s.serveSVG(w, r, func(buf *bytes.Buffer, res *core.Result, title string) error {
		return render.Trendlines(buf, res, title)
	})
}

func (s *Server) handleKVariance(w http.ResponseWriter, r *http.Request) {
	s.serveSVG(w, r, func(buf *bytes.Buffer, res *core.Result, title string) error {
		return render.KVarianceCurve(buf, res, title)
	})
}

func (s *Server) serveSVG(w http.ResponseWriter, r *http.Request,
	draw func(*bytes.Buffer, *core.Result, string) error) {
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.explainFor(p)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var buf bytes.Buffer
	if err := draw(&buf, res, p.dataset); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
