package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestOverloadDegradesNeverSheds is the PR's headline invariant, driven
// end to end: with the only worker slot pinned by a long-running stream
// and no queue, a burst of concurrent approx-eligible explains must ALL
// come back 200 — degraded answers with an honest error bound — and not
// one 429 or 503.
func TestOverloadDegradesNeverSheds(t *testing.T) {
	s := NewWithConfig(Config{Shards: 1, WorkersPerShard: 1, QueueDepth: -1})
	sh := s.reg.shards[0]

	// Pin the worker slot for the whole burst.
	streamCtx, cancelStream := context.WithCancel(bg())
	var streamWG sync.WaitGroup
	streamWG.Add(1)
	go func() {
		defer streamWG.Done()
		req := httptest.NewRequest("GET", "/api/stream?dataset=stream&start=2&step=1", nil).WithContext(streamCtx)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sh.busy.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("stream request never occupied the worker slot")
		}
		time.Sleep(time.Millisecond)
	}
	defer func() {
		cancelStream()
		streamWG.Wait()
	}()

	// Vary the datasets so the burst isn't collapsed by the result cache
	// or singleflight: distinct keys genuinely contend for admission.
	paths := []string{
		"/api/explain?dataset=vax-deaths",
		"/api/explain?dataset=vax-deaths&k=3",
		"/api/explain?dataset=covid",
		"/api/explain?dataset=covid&k=2",
		"/api/explain?dataset=sp500",
		"/api/explain?dataset=sp500&mode=approx",
		"/api/explain?dataset=covid-daily",
		"/api/explain?dataset=vax-deaths&smooth=7",
	}
	const perPath = 2
	type outcome struct {
		code      int
		degraded  bool
		truncated bool
		hasBound  bool
		body      string
	}
	results := make(chan outcome, len(paths)*perPath)
	var wg sync.WaitGroup
	for _, path := range paths {
		for i := 0; i < perPath; i++ {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				var body struct {
					Degraded  bool `json:"degraded"`
					Truncated bool `json:"truncated"`
					Approx    *struct {
						MaxErrBound float64 `json:"maxErrBound"`
					} `json:"approx"`
				}
				_ = json.Unmarshal(rec.Body.Bytes(), &body)
				results <- outcome{
					code:      rec.Code,
					degraded:  body.Degraded,
					truncated: body.Truncated,
					hasBound:  body.Approx != nil,
					body:      rec.Body.String(),
				}
			}(path)
		}
	}
	wg.Wait()
	close(results)

	var shed, degraded int
	for o := range results {
		switch o.code {
		case 200:
			if o.degraded {
				degraded++
				if !o.truncated || !o.hasBound {
					t.Errorf("degraded 200 without truncated flag + bound: %s", o.body)
				}
			}
		default:
			shed++
			t.Errorf("approx-eligible request shed with %d under overload: %s", o.code, o.body)
		}
	}
	if shed != 0 {
		t.Fatalf("%d approx-eligible requests shed, want 0 (degrade, never shed)", shed)
	}
	if degraded == 0 {
		t.Error("no request was served degraded while the worker slot was pinned; the test exercised nothing")
	}
	if s.met.shedQueueFull.Load() != 0 || s.met.shedDeadline.Load() != 0 {
		t.Errorf("shed counters = %d/%d, want 0/0 — degraded 200s must not count as sheds",
			s.met.shedQueueFull.Load(), s.met.shedDeadline.Load())
	}
	if got := s.met.degradedQueueFull.Load() + s.met.degradedDeadline.Load(); got == 0 {
		t.Error("degraded counters never moved")
	}
}

// TestDegradedDeadlineRescue pins the 503 path of the same contract: a
// request whose server-side deadline expires while the slot is pinned is
// rescued by the degraded lane (the client is still connected), instead
// of surfacing 503.
func TestDegradedDeadlineRescue(t *testing.T) {
	cfg := Config{Shards: 1, WorkersPerShard: 1, QueueDepth: 8, RequestTimeout: 60 * time.Millisecond}
	s := NewWithConfig(cfg)
	sh := s.reg.shards[0]

	// Pin the only worker slot directly (a stream request would be killed
	// by the short request timeout this test needs).
	release, err := sh.admit(bg())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// With a queue, the explain waits until the 60ms request deadline
	// expires — a 503 before this PR — and must now degrade to 200.
	rec := get(t, s, "/api/explain?dataset=vax-deaths")
	if rec.Code != 200 {
		t.Fatalf("deadline-expired degradable explain = %d, want 200 (%s)", rec.Code, rec.Body.String())
	}
	var body struct {
		Degraded  bool `json:"degraded"`
		Truncated bool `json:"truncated"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Degraded || !body.Truncated {
		t.Errorf("rescue flags = %+v, want degraded and truncated", body)
	}
	if got := s.met.degradedDeadline.Load(); got != 1 {
		t.Errorf("deadline-degraded counter = %d, want 1", got)
	}
	if got := s.met.shedDeadline.Load(); got != 0 {
		t.Errorf("deadline shed counter = %d, want 0 after a successful rescue", got)
	}
}
