package server

import "container/list"

// lruCache is a minimal string-keyed LRU used to bound the server's
// result cache and engine pool. It is not safe for concurrent use; the
// Server guards it with its mutex.
type lruCache[V any] struct {
	capacity int
	ll       *list.List
	items    map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached value and marks it most recently used.
//
//tsexplain:locked shard.mu
func (c *lruCache[V]) get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts (or refreshes) a value and evicts the least recently used
// entries beyond capacity.
//
//tsexplain:locked shard.mu
func (c *lruCache[V]) add(key string, val V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.capacity {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*lruEntry[V]).key)
	}
}

// len returns the number of cached entries.
//
//tsexplain:locked shard.mu
func (c *lruCache[V]) len() int { return c.ll.Len() }

// removeMatching removes every entry whose key satisfies match and
// returns the removed values. The registry uses it to drop a deleted (or
// appended-to) dataset's pooled engines and cached results in one sweep.
//
//tsexplain:locked shard.mu
func (c *lruCache[V]) removeMatching(match func(key string) bool) []V {
	var out []V
	var next *list.Element
	for el := c.ll.Back(); el != nil; el = next {
		next = el.Prev()
		ent := el.Value.(*lruEntry[V])
		if match(ent.key) {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			out = append(out, ent.val)
		}
	}
	return out
}

// evictOldest removes and returns the least recently used entry for which
// evictable returns true, scanning from cold to hot. The registry uses it
// for memory-budget eviction: pinned engines (in-flight requests) report
// not-evictable and are skipped, so shedding memory never yanks an engine
// out from under a request.
//
//tsexplain:locked shard.mu
func (c *lruCache[V]) evictOldest(evictable func(V) bool) (V, bool) {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*lruEntry[V])
		if evictable(ent.val) {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			return ent.val, true
		}
	}
	var zero V
	return zero, false
}
