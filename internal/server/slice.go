package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/relation"
)

// The slice and diff endpoints share one pooled "ad-hoc" engine per
// dataset: a default-options, unsmoothed engine whose candidate universe
// is the in-memory data cube of Section 5.2 (slices read the universe,
// diffs run TopExplanations on the engine). Pooling it in the registry —
// rather than a side map — makes it budget-counted, pinned while in use,
// evictable when cold, and cancellable while building. Slices take it
// shared (the post-build universe is immutable, so readers neither
// serialize nor occupy worker slots once it is warm); diffs take it
// exclusive (solves mutate the engine's caches).
func adhocKey(dataset string) string { return dataset + "|adhoc" }

func (s *Server) adhocBuilder(dataset string) func(context.Context) (*core.Engine, error) {
	return s.reg.engineBuilder(dataset, func(d *datasets.Dataset) core.Options {
		opts := core.DefaultOptions()
		opts.MaxOrder = d.MaxOrder
		return opts
	})
}

// parseConjunction decodes "attr=value&attr2=value2" against a relation.
// An empty expression denotes the root (whole relation).
func parseConjunction(r *relation.Relation, expr string) (relation.Conjunction, error) {
	if expr == "" {
		return nil, nil
	}
	pairs := make(map[string]string)
	for _, part := range strings.Split(expr, "&") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, httpErrf(http.StatusBadRequest, "bad predicate %q (want attr=value)", part)
		}
		if _, dup := pairs[kv[0]]; dup {
			return nil, httpErrf(http.StatusBadRequest, "attribute %q repeated", kv[0])
		}
		pairs[kv[0]] = kv[1]
	}
	conj, err := relation.NewConjunction(r, pairs)
	if err != nil {
		return nil, httpErrf(http.StatusBadRequest, "%v", err)
	}
	return conj, nil
}

// sliceResponse is the JSON shape of /api/slice.
type sliceResponse struct {
	Dataset   string          `json:"dataset"`
	Expr      string          `json:"expr"`
	Labels    []string        `json:"labels"`
	Series    []float64       `json:"series"`
	Share     float64         `json:"shareOfTotal"`
	DrillDown []drillDownJSON `json:"drillDown"`
}

type drillDownJSON struct {
	Attribute string   `json:"attribute"`
	Children  []string `json:"children"`
}

// handleSlice serves the OLAP navigation of Section 1 ("users can freely
// perform drill-down, roll-up, slicing and dicing, and visualize what
// has happened"): given a dataset and a conjunction like
// "state=New York" or "Pack=12&Bottle Volume (ml)=750", it returns that
// slice's aggregated series plus the drill-down children available under
// each remaining explain-by attribute.
func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name, err := s.resolveDataset(q.Get("dataset"))
	if err != nil {
		writeError(w, err)
		return
	}
	eng, release, err := s.reg.engineShared(r.Context(), adhocKey(name), s.adhocBuilder(name))
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	u := eng.Universe()
	rel := u.Relation()
	conj, err := parseConjunction(rel, q.Get("expr"))
	if err != nil {
		writeError(w, err)
		return
	}

	resp := sliceResponse{
		Dataset: name,
		Expr:    q.Get("expr"),
		Labels:  rel.TimeLabels(),
	}
	nodeID := -1
	if len(conj) > 0 {
		id, ok := u.Lookup(conj)
		if !ok {
			writeError(w, httpErrf(http.StatusNotFound, "slice %q has no data", q.Get("expr")))
			return
		}
		nodeID = id
		resp.Series = u.CandidateValues(id)
	} else {
		resp.Series = u.TotalValues()
	}

	// Share of the overall aggregate (summed over time, SUM semantics).
	var sliceSum, totalSum float64
	total := u.TotalValues()
	for i := range resp.Series {
		sliceSum += resp.Series[i]
		totalSum += total[i]
	}
	if totalSum != 0 {
		resp.Share = sliceSum / totalSum
	}

	// Drill-down children grouped by the free explain-by attributes.
	for _, dim := range u.ExplainBy() {
		if conj.HasDim(dim) {
			continue
		}
		kids := u.ChildrenOf(nodeID, dim)
		if len(kids) == 0 {
			continue
		}
		dd := drillDownJSON{Attribute: rel.Dim(dim).Name()}
		for _, kid := range kids {
			v, _ := u.Candidate(int(kid)).Conj.ValueFor(dim)
			dd.Children = append(dd.Children, rel.Dim(dim).Value(v))
		}
		resp.DrillDown = append(resp.DrillDown, dd)
	}

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleDiff is the engine-free comparison endpoint:
// /api/diff?dataset=...&from=<label>&to=<label> runs the two-relations
// diff building block between two timestamps on the shared ad-hoc engine.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p, err := s.parseParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	eng, release, err := s.reg.engineExclusive(r.Context(), adhocKey(p.dataset), s.adhocBuilder(p.dataset))
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	rel := eng.Universe().Relation()
	from, to := -1, -1
	for i := 0; i < rel.NumTimestamps(); i++ {
		switch rel.TimeLabel(i) {
		case q.Get("from"):
			from = i
		case q.Get("to"):
			to = i
		}
	}
	if from < 0 || to < 0 || from >= to {
		writeError(w, httpErrf(http.StatusBadRequest,
			"need from/to labels with from before to"))
		return
	}
	top, err := eng.TopExplanations(from, to)
	if err != nil {
		writeError(w, httpErrf(http.StatusBadRequest, "%v", err))
		return
	}
	out := map[string]any{
		"dataset": p.dataset,
		"from":    q.Get("from"),
		"to":      q.Get("to"),
	}
	var tops []explJSON
	for _, e := range top {
		tops = append(tops, explJSON{Predicates: e.Predicates, Effect: e.Effect.String(), Gamma: e.Gamma, Path: e.Path})
	}
	out["top"] = tops
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
