package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/explain"
	"repro/internal/relation"
)

// sliceAPI serves the OLAP navigation of Section 1 ("users can freely
// perform drill-down, roll-up, slicing and dicing, and visualize what
// has happened"): given a dataset and a conjunction like
// "state=New York" or "Pack=12&Bottle Volume (ml)=750", it returns that
// slice's aggregated series plus the drill-down children available under
// each remaining explain-by attribute. The per-dataset candidate
// universe (the in-memory data cube of Section 5.2) is built once and
// shared across requests.
type sliceAPI struct {
	mu        sync.Mutex
	universes map[string]*explain.Universe
	relations map[string]*datasets.Dataset
	engines   map[string]*core.Engine
}

func newSliceAPI() *sliceAPI {
	return &sliceAPI{
		universes: make(map[string]*explain.Universe),
		relations: make(map[string]*datasets.Dataset),
		engines:   make(map[string]*core.Engine),
	}
}

// engineFor builds (once) a default-options engine for ad-hoc diffs.
func (a *sliceAPI) engineFor(name string) (*core.Engine, *datasets.Dataset, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.engines[name]; ok {
		return e, a.relations[name], nil
	}
	d, err := demoDataset(name)
	if err != nil {
		return nil, nil, err
	}
	opts := core.DefaultOptions()
	opts.MaxOrder = d.MaxOrder
	eng, err := core.NewEngine(d.Rel, core.Query{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
	}, opts)
	if err != nil {
		return nil, nil, err
	}
	a.engines[name] = eng
	a.relations[name] = d
	return eng, d, nil
}

// universeFor builds (once) the universe for a dataset.
func (a *sliceAPI) universeFor(name string) (*explain.Universe, *datasets.Dataset, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if u, ok := a.universes[name]; ok {
		return u, a.relations[name], nil
	}
	d, err := demoDataset(name)
	if err != nil {
		return nil, nil, err
	}
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		return nil, nil, err
	}
	a.universes[name] = u
	a.relations[name] = d
	return u, d, nil
}

// parseConjunction decodes "attr=value&attr2=value2" against a relation.
// An empty expression denotes the root (whole relation).
func parseConjunction(r *relation.Relation, expr string) (relation.Conjunction, error) {
	if expr == "" {
		return nil, nil
	}
	pairs := make(map[string]string)
	for _, part := range strings.Split(expr, "&") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("bad predicate %q (want attr=value)", part)
		}
		if _, dup := pairs[kv[0]]; dup {
			return nil, fmt.Errorf("attribute %q repeated", kv[0])
		}
		pairs[kv[0]] = kv[1]
	}
	return relation.NewConjunction(r, pairs)
}

// sliceResponse is the JSON shape of /api/slice.
type sliceResponse struct {
	Dataset   string          `json:"dataset"`
	Expr      string          `json:"expr"`
	Labels    []string        `json:"labels"`
	Series    []float64       `json:"series"`
	Share     float64         `json:"shareOfTotal"`
	DrillDown []drillDownJSON `json:"drillDown"`
}

type drillDownJSON struct {
	Attribute string   `json:"attribute"`
	Children  []string `json:"children"`
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("dataset")
	if name == "" {
		name = "covid"
	}
	u, d, err := s.slices.universeFor(name)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	conj, err := parseConjunction(d.Rel, q.Get("expr"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	resp := sliceResponse{
		Dataset: name,
		Expr:    q.Get("expr"),
		Labels:  d.Rel.TimeLabels(),
	}
	nodeID := -1
	if len(conj) > 0 {
		id, ok := u.Lookup(conj)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("slice %q has no data", q.Get("expr")))
			return
		}
		nodeID = id
		resp.Series = u.CandidateValues(id)
	} else {
		resp.Series = u.TotalValues()
	}

	// Share of the overall aggregate (summed over time, SUM semantics).
	var sliceSum, totalSum float64
	total := u.TotalValues()
	for i := range resp.Series {
		sliceSum += resp.Series[i]
		totalSum += total[i]
	}
	if totalSum != 0 {
		resp.Share = sliceSum / totalSum
	}

	// Drill-down children grouped by the free explain-by attributes.
	for _, dim := range u.ExplainBy() {
		if conj.HasDim(dim) {
			continue
		}
		kids := u.ChildrenOf(nodeID, dim)
		if len(kids) == 0 {
			continue
		}
		dd := drillDownJSON{Attribute: d.Rel.Dim(dim).Name()}
		for _, kid := range kids {
			v, _ := u.Candidate(kid).Conj.ValueFor(dim)
			dd.Children = append(dd.Children, d.Rel.Dim(dim).Value(v))
		}
		resp.DrillDown = append(resp.DrillDown, dd)
	}

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// Slice series support also powers the engine-free comparison endpoint:
// /api/diff?dataset=...&from=<label>&to=<label> runs the two-relations
// diff building block between two timestamps.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p, err := parseParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	eng, d, err := s.slices.engineFor(p.dataset)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	from, to := -1, -1
	for i := 0; i < d.Rel.NumTimestamps(); i++ {
		switch d.Rel.TimeLabel(i) {
		case q.Get("from"):
			from = i
		case q.Get("to"):
			to = i
		}
	}
	if from < 0 || to < 0 || from >= to {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("need from/to labels with from before to"))
		return
	}
	top, err := eng.TopExplanations(from, to)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := map[string]any{
		"dataset": p.dataset,
		"from":    q.Get("from"),
		"to":      q.Get("to"),
	}
	var tops []explJSON
	for _, e := range top {
		tops = append(tops, explJSON{Predicates: e.Predicates, Effect: e.Effect.String(), Gamma: e.Gamma})
	}
	out["top"] = tops
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
