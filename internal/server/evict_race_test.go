package server

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"repro/internal/explain"
)

// checkMemAccounting asserts the registry's engine-pool bookkeeping
// invariants at quiescence: the shard's memUsed equals the sum of its
// charged entries' costs (an append/evict race that leaked a charge
// would starve the pool forever), no dead entry is still pooled, and no
// pin outlived its request.
func checkMemAccounting(t *testing.T, s *Server) {
	t.Helper()
	for i, sh := range s.reg.shards {
		sh.mu.Lock()
		var sum, mapped int64
		for _, el := range sh.engines.items {
			ent := el.Value.(*lruEntry[*engineEntry]).val
			if ent.charged {
				sum += ent.cost
				mapped += ent.mapped
			}
			if ent.dead {
				t.Errorf("shard %d: dead entry %q still pooled", i, ent.key)
			}
			if p := ent.pins.Load(); p != 0 {
				t.Errorf("shard %d: entry %q leaked %d pins", i, ent.key, p)
			}
		}
		if sum != sh.memUsed {
			t.Errorf("shard %d: memUsed %d != charged cost sum %d", i, sh.memUsed, sum)
		}
		if mapped != sh.memMapped {
			t.Errorf("shard %d: memMapped %d != charged mapped sum %d", i, sh.memMapped, mapped)
		}
		sh.mu.Unlock()
	}
}

// TestEvictionConcurrentWithAppend hammers one catalog dataset with
// explains under a 1-byte memory budget (so every build immediately
// triggers an eviction pass) while appending NDJSON deltas to the same
// dataset (each append invalidates the dataset's engines). The pin and
// charge accounting must survive: engines in use are never freed
// mid-request, and no charge leaks into memUsed. Run with -race in CI.
func TestEvictionConcurrentWithAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{
		Shards:            2,
		WorkersPerShard:   4,
		QueueDepth:        64,
		DataDir:           dir,
		MemoryBudgetBytes: 1, // every engine is over budget: constant eviction
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := upload(t, s, catalogTestManifest, catalogTestCSV(12), false); rec.Code != 201 {
		t.Fatalf("upload: %d: %s", rec.Code, rec.Body.String())
	}

	const (
		explainers = 4
		appenders  = 2
		iters      = 25
	)
	var day atomic.Int64
	var badCodes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < explainers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Vary smoothing and mode so builds keep happening on
				// distinct engine keys (and keep evicting each other).
				url := fmt.Sprintf("/api/explain?dataset=mydata&k=%d&smooth=%d", 2+i%3, (g+i)%4)
				if i%5 == 0 {
					url += "&mode=approx&epsilon=0.1"
				}
				rec := get(t, s, url)
				switch rec.Code {
				case 200, 404, 429, 503:
				default:
					badCodes.Add(1)
					t.Errorf("explain: unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}(g)
	}
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d := day.Add(1)
				body := fmt.Sprintf(`{"time":"2021-04-%04d","dims":{"state":"NY","county":"kings"},"measure":%d}`+"\n", d, 10+d%7)
				rec := appendNDJSON(t, s, "mydata", body, false)
				switch rec.Code {
				// Concurrent appenders race on the tail label: the loser's
				// batch no longer extends the series and is rejected with
				// 400, which must leave the engine untouched.
				case 200, 400, 429, 503:
				default:
					badCodes.Add(1)
					t.Errorf("append: unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}()
	}
	wg.Wait()

	if badCodes.Load() > 0 {
		t.Fatalf("%d requests failed with unexpected statuses", badCodes.Load())
	}
	// The dataset must still serve consistent results after the storm.
	rec := get(t, s, "/api/explain?dataset=mydata&k=3")
	if rec.Code != 200 {
		t.Fatalf("post-storm explain: %d: %s", rec.Code, rec.Body.String())
	}
	var out explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.K != 3 {
		t.Fatalf("post-storm K = %d", out.K)
	}
	checkMemAccounting(t, s)
}

// mmapCapableHost reports whether engine restores on this platform can
// serve the candidate arena zero-copy off a snapshot mapping.
func mmapCapableHost() bool {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		return false
	}
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// TestEvictionConcurrentWithAppendMapped is the mapped-arena variant of
// the storm above: the dataset's snapshot is forced into the arena (v3)
// layout, so engine builds restore off a memory mapping while appends
// invalidate them and background refreshes rename new snapshots over the
// mapped file. Under -race this pins three contracts at once: the
// resident/mapped split never leaks a charge (memUsed == Σ cost and
// memMapped == Σ mapped over charged entries), eviction sweeps uncharge
// both figures, and re-basing the snapshot mid-explain never invalidates
// the pinned slices a live engine is reading.
func TestEvictionConcurrentWithAppendMapped(t *testing.T) {
	oldThreshold := explain.ArenaSnapshotThreshold
	explain.ArenaSnapshotThreshold = 0
	defer func() { explain.ArenaSnapshotThreshold = oldThreshold }()

	dir := t.TempDir()
	s, err := Open(Config{
		Shards:            2,
		WorkersPerShard:   4,
		QueueDepth:        64,
		DataDir:           dir,
		MemoryBudgetBytes: 1, // every engine is over budget: constant eviction
	})
	if err != nil {
		t.Fatal(err)
	}
	// wait=1 blocks until the upload's snapshot refresh lands, so the
	// very first engine build already takes the snapshot-restore path.
	if rec := upload(t, s, catalogTestManifest, catalogTestCSV(12), true); rec.Code != 201 {
		t.Fatalf("upload: %d: %s", rec.Code, rec.Body.String())
	}

	const (
		explainers = 4
		appenders  = 2
		iters      = 20
	)
	var day atomic.Int64
	var badCodes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < explainers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				url := fmt.Sprintf("/api/explain?dataset=mydata&k=%d&smooth=%d", 2+i%3, (g+i)%4)
				if i%5 == 0 {
					url += "&mode=approx&epsilon=0.1"
				}
				rec := get(t, s, url)
				switch rec.Code {
				case 200, 404, 429, 503:
				default:
					badCodes.Add(1)
					t.Errorf("explain: unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}(g)
	}
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d := day.Add(1)
				body := fmt.Sprintf(`{"time":"2021-04-%04d","dims":{"state":"NY","county":"kings"},"measure":%d}`+"\n", d, 10+d%7)
				// wait=1 forces a snapshot refresh per accepted append:
				// each one renames a new snapshot.bin over the file that
				// live mapped engines are still reading.
				rec := appendNDJSON(t, s, "mydata", body, true)
				switch rec.Code {
				case 200, 400, 429, 503:
				default:
					badCodes.Add(1)
					t.Errorf("append: unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}()
	}
	wg.Wait()

	if badCodes.Load() > 0 {
		t.Fatalf("%d requests failed with unexpected statuses", badCodes.Load())
	}
	rec := get(t, s, "/api/explain?dataset=mydata&k=3")
	if rec.Code != 200 {
		t.Fatalf("post-storm explain: %d: %s", rec.Code, rec.Body.String())
	}
	var out explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.K != 3 {
		t.Fatalf("post-storm K = %d", out.K)
	}
	checkMemAccounting(t, s)
	if mmapCapableHost() {
		if got := s.met.snapshotMmapRestores.Load(); got == 0 {
			t.Error("no engine restore served its arena off a mapped snapshot during the storm")
		}
	}
}
