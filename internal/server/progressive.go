package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
)

// Progressive explain streaming: GET /api/explain?progressive=1 serves
// the anytime refinement loop round by round — the coarse first answer
// flushes immediately, every later round tightens the reported error
// bound, and the final round is the exact answer (bit-identical to a
// synchronous mode=exact explain). The stream is NDJSON by default and
// Server-Sent Events when the client asks via Accept: text/event-stream.

// progressiveRound is one streamed refinement round: the standard
// explain response plus the round's position in the stream and its
// latency (time since the previous round flushed).
type progressiveRound struct {
	Round     int     `json:"round"`
	Final     bool    `json:"final"`
	ElapsedMs float64 `json:"elapsedMs"`
	explainResponse
}

// roundWriter streams progressive events in the negotiated framing.
type roundWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	sse     bool
}

func newRoundWriter(w http.ResponseWriter, r *http.Request) *roundWriter {
	rw := &roundWriter{w: w}
	rw.sse = strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if rw.sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	rw.flusher, _ = w.(http.Flusher)
	return rw
}

func (rw *roundWriter) writeEvent(event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if rw.sse {
		if _, err := fmt.Fprintf(rw.w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(rw.w, "%s\n", b); err != nil {
			return err
		}
	}
	if rw.flusher != nil {
		rw.flusher.Flush()
	}
	return nil
}

// serveProgressive streams one explain as refinement rounds. The engine
// is held exclusively — lock and worker slot — for the whole stream,
// exactly like the streaming-replay endpoint: a progressive stream IS
// one long compute. Results are not cached (every round is interim state
// except the last, and exact-mode traffic has its own lane and key).
// Under overload the stream obeys the same degrade-never-shed contract
// as synchronous explains: if the engine cannot be acquired within the
// admission grace, the response is a single degraded-lane round instead
// of a 429/503.
func (s *Server) serveProgressive(w http.ResponseWriter, r *http.Request, p params) {
	// An unspecified mode upgrades to the approximate path: a progressive
	// stream over an exact engine would be a single round, which is legal
	// (and what mode=exact requests get) but defeats the point.
	if !p.approx && !p.vanilla && r.URL.Query().Get("mode") == "" {
		p.approx = true
	}
	grace := time.Duration(0)
	if p.degradable() {
		grace = degradeAfterWait
	}
	eng, release, err := s.reg.engineExclusiveGrace(r.Context(), grace, p.engineKey(),
		s.reg.engineBuilder(p.dataset, p.options))
	if err != nil {
		// The same rescue explainDegradable applies, minus the retry of
		// the full stream: one degraded round IS a valid (truncated)
		// progressive stream. A client that already hung up gets neither.
		if p.degradable() && overloadError(err) &&
			!errors.Is(context.Cause(r.Context()), context.Canceled) {
			s.serveProgressiveDegraded(w, r, p, err)
			return
		}
		writeError(w, err)
		return
	}
	defer release()

	rw := newRoundWriter(w, r)
	round := 0
	lastFlush := time.Now()
	_, err = eng.ExplainProgressive(r.Context(), p.k, func(res *core.Result, final bool) error {
		round++
		elapsed := time.Since(lastFlush)
		s.met.observeProgressiveRound(elapsed.Seconds())
		pr := progressiveRound{
			Round:           round,
			Final:           final,
			ElapsedMs:       ms(elapsed),
			explainResponse: buildExplainResponse(p, res, false),
		}
		lastFlush = time.Now()
		return rw.writeEvent("round", pr)
	})
	if err != nil {
		if round == 0 {
			writeError(w, err)
			return
		}
		// The stream already carries rounds (and a 200): report the
		// failure in-band, mirroring the replay stream's contract.
		_ = rw.writeEvent("error", map[string]string{"error": err.Error()})
	}
}

// serveProgressiveDegraded serves an overloaded progressive request its
// degraded answer: a single round — flagged degraded, truncated, and
// final — computed on the degraded lane with the coarse epsilon. The
// original overload error surfaces only if even the degraded lane fails.
func (s *Server) serveProgressiveDegraded(w http.ResponseWriter, r *http.Request, p params, cause error) {
	if errors.Is(cause, errQueueFull) {
		s.met.degradedQueueFull.Add(1)
	} else {
		s.met.degradedDeadline.Add(1)
	}
	// Same detach-and-wait window as explainDegradable: the client is
	// still on the connection, and the whole overload burst funnels
	// through the small degraded pool.
	window := s.cfg.RequestTimeout
	if min := degradedComputeTimeout + time.Second; window < min {
		window = min
	}
	dctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), window)
	defer cancel()
	start := time.Now()
	dp := p.degraded()
	res, err := s.reg.explain(dctx, dp)
	if err != nil {
		writeError(w, cause)
		return
	}
	rw := newRoundWriter(w, r)
	s.met.observeProgressiveRound(time.Since(start).Seconds())
	_ = rw.writeEvent("round", progressiveRound{
		Round:           1,
		Final:           true,
		ElapsedMs:       ms(time.Since(start)),
		explainResponse: buildExplainResponse(dp, res, true),
	})
}
