package server

// indexHTML is the self-contained demo page: pick a dataset, optionally
// fix K or the smoothing window, and see the Figure 2 trendline, the
// K-Variance curve, the per-segment explanation table, and the latency
// breakdown.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>TSExplain demo</title>
<style>
  body { font-family: sans-serif; margin: 24px; color: #222; }
  h1 { font-size: 20px; }
  .controls { margin-bottom: 14px; }
  .controls label { margin-right: 14px; }
  .plots { display: flex; gap: 18px; flex-wrap: wrap; align-items: flex-start; }
  table { border-collapse: collapse; margin-top: 14px; }
  td, th { border: 1px solid #ccc; padding: 4px 10px; font-size: 13px; }
  th { background: #f3f3f3; }
  .lat { color: #666; font-size: 13px; margin-top: 8px; }
  .err { color: #b00; }
</style>
</head>
<body>
<h1>TSExplain — explaining aggregated time series by surfacing evolving contributors</h1>
<div class="controls">
  <label>dataset
    <select id="dataset"></select>
  </label>
  <label>K (0 = auto)
    <input id="k" type="number" min="0" max="20" value="0" style="width:4em">
  </label>
  <label>smoothing window (0 = dataset default)
    <input id="smooth" type="number" min="0" max="60" value="0" style="width:4em">
  </label>
  <label><input id="vanilla" type="checkbox"> vanilla (no optimizations)</label>
  <button id="go">Explain</button>
</div>
<div class="plots">
  <img id="trend" alt="trendlines">
  <img id="kvar" alt="k-variance curve">
</div>
<div class="lat" id="lat"></div>
<div id="out"></div>
<script>
async function loadDatasets() {
  const r = await fetch('/api/datasets');
  const j = await r.json();
  const sel = document.getElementById('dataset');
  for (const d of j.datasets) {
    const o = document.createElement('option');
    o.value = d; o.textContent = d;
    sel.appendChild(o);
  }
}
function qs() {
  const d = document.getElementById('dataset').value;
  const k = document.getElementById('k').value;
  const s = document.getElementById('smooth').value;
  const v = document.getElementById('vanilla').checked ? 1 : 0;
  return 'dataset=' + encodeURIComponent(d) + '&k=' + k + '&smooth=' + s + '&vanilla=' + v;
}
async function explain() {
  const out = document.getElementById('out');
  out.innerHTML = 'running…';
  const r = await fetch('/api/explain?' + qs());
  const j = await r.json();
  if (j.error) { out.innerHTML = '<span class="err">' + j.error + '</span>'; return; }
  document.getElementById('trend').src = '/svg/trendlines?' + qs();
  document.getElementById('kvar').src = '/svg/kvariance?' + qs();
  document.getElementById('lat').textContent =
    'K=' + j.k + (j.autoK ? ' (elbow)' : '') +
    ' · variance ' + j.totalVariance.toFixed(3) +
    ' · latency: precompute ' + j.latencyMs.precompute.toFixed(1) + 'ms, ' +
    'cascading ' + j.latencyMs.cascading.toFixed(1) + 'ms, ' +
    'segmentation ' + j.latencyMs.segmentation.toFixed(1) + 'ms';
  let html = '<table><tr><th>period</th><th>top-1</th><th>top-2</th><th>top-3</th></tr>';
  for (const s of j.segments) {
    html += '<tr><td>' + s.start + ' ~ ' + s.end + '</td>';
    for (let i = 0; i < 3; i++) {
      const e = (s.top || [])[i];
      html += '<td>' + (e ? (e.predicates + ' ' + e.effect) : '') + '</td>';
    }
    html += '</tr>';
  }
  html += '</table>';
  out.innerHTML = html;
}
document.getElementById('go').addEventListener('click', explain);
loadDatasets().then(explain);
</script>
</body>
</html>
`
