package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/catalog"
)

// Async job API: POST /api/jobs accepts the same query parameters as
// /api/explain, persists the job under <jobs-dir>/<id>.json, and returns
// 202 with the job ID immediately; GET /api/jobs/{id} polls the status
// and (once done) the full explain response. Jobs survive restarts —
// queued and interrupted jobs are re-enqueued on startup — and finished
// jobs are garbage-collected after Config.JobTTL. A small bounded worker
// pool runs jobs through the regular registry (patient admission: a job
// waits for a shard worker slot instead of shedding), so background work
// can never occupy more than JobWorkers slots of interactive capacity.

// jobQueueDepth bounds jobs waiting for a worker. It is deliberately
// large — jobs are cheap to hold (an ID in a channel; state lives on
// disk) — and exists only so a submission flood fails fast instead of
// accumulating without bound.
const jobQueueDepth = 1024

type jobManager struct {
	s       *Server
	store   *catalog.JobStore
	queue   chan string
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// newJobManager starts the worker pool and TTL sweeper, re-enqueuing
// every non-terminal job found on disk: queued jobs simply wait again,
// and jobs persisted as running were interrupted mid-compute by a crash
// or shutdown, so they restart from scratch (explains are pure —
// rerunning one is always safe).
//
//tsexplain:ctxroot job workers outlive any single request; shutdown cancels via Server.Close
func newJobManager(s *Server, store *catalog.JobStore) *jobManager {
	m := &jobManager{
		s:     s,
		store: store,
		queue: make(chan string, jobQueueDepth),
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	if jobs, err := store.List(); err == nil {
		for _, j := range jobs {
			if j.Terminal() {
				continue
			}
			select {
			case m.queue <- j.ID:
			default: // deeper than the queue: left for a later restart
			}
		}
	}
	for i := 0; i < s.cfg.JobWorkers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.sweeper()
	return m
}

// close stops the workers and sweeper. In-flight jobs are interrupted
// (their contexts cancel) and left persisted as running, which the next
// startup treats as "interrupted, re-enqueue".
func (m *jobManager) close() {
	m.closeMu.Lock()
	m.closed = true
	m.closeMu.Unlock()
	m.cancel()
	m.wg.Wait()
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for {
		select {
		case id := <-m.queue:
			m.run(id)
		case <-m.ctx.Done():
			return
		}
	}
}

// sweeper garbage-collects terminal jobs older than the TTL. The
// interval tracks the TTL (a quarter of it) but stays within [1s, 1m] so
// tests with tiny TTLs sweep promptly and long TTLs don't scan rarely
// enough to matter.
func (m *jobManager) sweeper() {
	defer m.wg.Done()
	interval := m.s.cfg.JobTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n, err := m.store.Sweep(time.Now(), m.s.cfg.JobTTL); err == nil && n > 0 {
				m.s.met.jobsExpired.Add(int64(n))
			}
		case <-m.ctx.Done():
			return
		}
	}
}

// run executes one job end to end: mark running, recompute its params
// from the persisted query, explain through the registry with patient
// admission and the long job deadline, and persist the outcome. A job
// interrupted by shutdown is reverted to queued so the next startup
// re-runs it instead of reporting a spurious failure.
func (m *jobManager) run(id string) {
	j, err := m.store.Get(id)
	if err != nil || j.Terminal() {
		return // deleted or already finished; nothing to do
	}
	j.Status = catalog.JobRunning
	if err := m.store.Put(j); err != nil {
		return
	}

	res, rerr := m.compute(j.Query)
	if rerr != nil && m.ctx.Err() != nil {
		j.Status = catalog.JobQueued // interrupted by shutdown, not failed
		_ = m.store.Put(j)
		return
	}
	j.FinishedAtMs = time.Now().UnixMilli()
	if rerr != nil {
		j.Status = catalog.JobFailed
		j.Error = rerr.Error()
		m.s.met.jobsFailed.Add(1)
	} else {
		j.Status = catalog.JobDone
		j.Result = res
		m.s.met.jobsCompleted.Add(1)
	}
	_ = m.store.Put(j)
}

// compute runs the job's explain and renders the same response document
// the synchronous endpoint would have served.
func (m *jobManager) compute(query string) (json.RawMessage, error) {
	q, err := url.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	p, err := m.s.paramsFromQuery(q)
	if err != nil {
		return nil, err // e.g. the dataset was deleted after submission
	}
	p.patient = true
	ctx, cancel := context.WithTimeout(m.ctx, m.s.cfg.JobTimeout)
	defer cancel()
	res, err := m.s.reg.explain(ctx, p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(buildExplainResponse(p, res, false))
}

// submit validates, persists, and enqueues a new job.
func (m *jobManager) submit(query string) (*catalog.JobRecord, error) {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if m.closed {
		return nil, httpErrf(http.StatusServiceUnavailable, "server shutting down")
	}
	j := &catalog.JobRecord{
		ID:            newJobID(),
		Query:         query,
		Status:        catalog.JobQueued,
		SubmittedAtMs: time.Now().UnixMilli(),
	}
	if err := m.store.Put(j); err != nil {
		return nil, err
	}
	select {
	case m.queue <- j.ID:
	default:
		_ = m.store.Delete(j.ID)
		return nil, httpErrf(http.StatusTooManyRequests, "job queue full (%d pending)", jobQueueDepth)
	}
	m.s.met.jobsSubmitted.Add(1)
	return j, nil
}

// newJobID returns a fresh 16-hex-digit random job ID.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// jobsEnabled fails job-API requests uniformly when no jobs directory is
// configured.
func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.jobs == nil {
		writeError(w, httpErrf(http.StatusNotImplemented,
			"job API disabled: start the server with a data or jobs directory"))
		return false
	}
	return true
}

// handleJobSubmit serves POST /api/jobs: the explain parameters come in
// the query string exactly as /api/explain takes them, are validated
// synchronously (bad requests fail with 400 now, not as a failed job
// later), and the job runs in the background.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	if _, err := s.parseParams(r); err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("progressive") == "1" {
		writeError(w, httpErrf(http.StatusBadRequest,
			"progressive streaming does not compose with async jobs; use GET /api/explain?progressive=1"))
		return
	}
	j, err := s.jobs.submit(r.URL.RawQuery)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/api/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(j)
}

// handleJobGet serves GET /api/jobs/{id}: the full record, including the
// explain response document once the job is done.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	j, err := s.jobs.store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, jobErr(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(j)
}

// handleJobList serves GET /api/jobs: every stored job, oldest first,
// with result payloads elided (poll the job itself for its document).
func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	jobs, err := s.jobs.store.List()
	if err != nil {
		writeError(w, err)
		return
	}
	slim := make([]catalog.JobRecord, 0, len(jobs))
	for _, j := range jobs {
		c := *j
		c.Result = nil
		slim = append(slim, c)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"jobs": slim})
}

// handleJobDelete serves DELETE /api/jobs/{id}. Deleting a queued job
// cancels it effectively: the worker finds no record and skips it. A
// running job finishes its compute, and its final Put resurrects the
// record — acceptable, the sweeper reclaims it.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	if err := s.jobs.store.Delete(r.PathValue("id")); err != nil {
		writeError(w, jobErr(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "deleted"})
}

// jobErr maps store failures to HTTP statuses.
func jobErr(err error) error {
	if errors.Is(err, catalog.ErrJobNotFound) {
		return httpErrf(http.StatusNotFound, "%s", err.Error())
	}
	return err
}
