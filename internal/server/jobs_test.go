package server

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/catalog"
)

// jobView decodes job-API responses in tests.
type jobView struct {
	ID            string          `json:"id"`
	Query         string          `json:"query"`
	Status        string          `json:"status"`
	Error         string          `json:"error"`
	SubmittedAtMs int64           `json:"submittedAtMs"`
	FinishedAtMs  int64           `json:"finishedAtMs"`
	Result        json.RawMessage `json:"result"`
}

func jobsTestConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig()
	cfg.JobsDir = t.TempDir()
	cfg.JobWorkers = 1
	return cfg
}

func post(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", path, nil))
	return rec
}

// pollJob polls GET /api/jobs/{id} until the job reaches a terminal
// state.
func pollJob(t *testing.T, s *Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		rec := get(t, s, "/api/jobs/"+id)
		if rec.Code != 200 {
			t.Fatalf("poll status = %d (%s)", rec.Code, rec.Body.String())
		}
		var j jobView
		if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
			t.Fatal(err)
		}
		if j.Status == catalog.JobDone || j.Status == catalog.JobFailed {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, j.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycle walks the whole async path: submit returns 202 with
// an ID immediately, polling reaches done, the persisted result matches
// the synchronous explain, and delete removes the record.
func TestJobLifecycle(t *testing.T) {
	s := NewWithConfig(jobsTestConfig(t))
	defer s.Close()

	rec := post(t, s, "/api/jobs?dataset=vax-deaths&k=2")
	if rec.Code != 202 {
		t.Fatalf("submit status = %d (%s)", rec.Code, rec.Body.String())
	}
	var j jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	if !catalog.ValidJobID(j.ID) {
		t.Fatalf("submit returned invalid id %q", j.ID)
	}
	if j.Status != catalog.JobQueued || j.Result != nil {
		t.Errorf("fresh job = %+v, want queued with no result", j)
	}
	if loc := rec.Header().Get("Location"); loc != "/api/jobs/"+j.ID {
		t.Errorf("Location = %q, want /api/jobs/%s", loc, j.ID)
	}

	done := pollJob(t, s, j.ID)
	if done.Status != catalog.JobDone {
		t.Fatalf("job finished %q (error %q), want done", done.Status, done.Error)
	}
	if done.FinishedAtMs == 0 || done.Result == nil {
		t.Fatalf("done job missing finish time or result: %+v", done)
	}

	// The job result is the same document the synchronous endpoint
	// serves (modulo per-run latency timings).
	sync := get(t, s, "/api/explain?dataset=vax-deaths&k=2")
	if sync.Code != 200 {
		t.Fatalf("sync explain status = %d", sync.Code)
	}
	type doc struct {
		Dataset  string  `json:"dataset"`
		Mode     string  `json:"mode"`
		K        int     `json:"k"`
		Variance float64 `json:"totalVariance"`
		Segments any     `json:"segments"`
	}
	var jobDoc, syncDoc doc
	if err := json.Unmarshal(done.Result, &jobDoc); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sync.Body.Bytes(), &syncDoc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobDoc, syncDoc) {
		t.Errorf("job result differs from synchronous explain:\njob:  %+v\nsync: %+v", jobDoc, syncDoc)
	}

	// The list view carries the job without its (possibly large) result.
	rec = get(t, s, "/api/jobs")
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID || list.Jobs[0].Result != nil {
		t.Errorf("job list = %+v, want the one job, result elided", list.Jobs)
	}

	// Delete, then the job is gone.
	delRec := httptest.NewRecorder()
	s.ServeHTTP(delRec, httptest.NewRequest("DELETE", "/api/jobs/"+j.ID, nil))
	if delRec.Code != 200 {
		t.Fatalf("delete status = %d", delRec.Code)
	}
	if rec := get(t, s, "/api/jobs/"+j.ID); rec.Code != 404 {
		t.Errorf("get after delete = %d, want 404", rec.Code)
	}
}

// TestJobSubmitValidation: malformed submissions fail synchronously with
// the normal error envelope instead of becoming failed jobs.
func TestJobSubmitValidation(t *testing.T) {
	s := NewWithConfig(jobsTestConfig(t))
	defer s.Close()
	for path, want := range map[string]int{
		"/api/jobs?dataset=vax-deaths&k=999":          400,
		"/api/jobs?dataset=no-such-dataset":           404,
		"/api/jobs?dataset=vax-deaths&progressive=1":  400,
		"/api/jobs?dataset=vax-deaths&epsilon=0.1":    400, // epsilon requires mode=approx
		"/api/jobs?dataset=vax-deaths&mode=bogus":     400,
		"/api/jobs?dataset=vax-deaths&mode=approx":    202,
		"/api/jobs?dataset=covid-total&k=3&smooth=14": 202,
	} {
		if rec := post(t, s, path); rec.Code != want {
			t.Errorf("POST %s = %d, want %d (%s)", path, rec.Code, want, rec.Body.String())
		}
	}
}

// TestJobAPIDisabled: without a jobs (or data) directory the endpoints
// answer 501, not 404 — the routes exist, the feature is off.
func TestJobAPIDisabled(t *testing.T) {
	s := NewWithConfig(testConfig())
	if rec := post(t, s, "/api/jobs?dataset=vax-deaths"); rec.Code != 501 {
		t.Errorf("submit with jobs disabled = %d, want 501", rec.Code)
	}
	if rec := get(t, s, "/api/jobs"); rec.Code != 501 {
		t.Errorf("list with jobs disabled = %d, want 501", rec.Code)
	}
}

// TestJobSurvivesRestart: a job persisted as queued (or interrupted as
// running) by a previous process is picked up and completed by a fresh
// server pointed at the same directory.
func TestJobSurvivesRestart(t *testing.T) {
	cfg := jobsTestConfig(t)
	store, err := catalog.OpenJobStore(cfg.JobsDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*catalog.JobRecord{
		{ID: "00000000000000aa", Query: "dataset=vax-deaths&k=2", Status: catalog.JobQueued, SubmittedAtMs: 1},
		// Persisted as running: the previous process died mid-compute.
		{ID: "00000000000000bb", Query: "dataset=vax-deaths&k=3", Status: catalog.JobRunning, SubmittedAtMs: 2},
	} {
		if err := store.Put(j); err != nil {
			t.Fatal(err)
		}
	}

	s := NewWithConfig(cfg) // "restart"
	defer s.Close()
	for _, id := range []string{"00000000000000aa", "00000000000000bb"} {
		if j := pollJob(t, s, id); j.Status != catalog.JobDone {
			t.Errorf("restarted job %s finished %q (error %q), want done", id, j.Status, j.Error)
		}
	}
}

// TestJobTTLGC: finished jobs disappear after the TTL via the sweeper.
func TestJobTTLGC(t *testing.T) {
	cfg := jobsTestConfig(t)
	cfg.JobTTL = 50 * time.Millisecond // sweeper clamps its interval to 1s
	s := NewWithConfig(cfg)
	defer s.Close()

	rec := post(t, s, "/api/jobs?dataset=vax-deaths&k=2")
	if rec.Code != 202 {
		t.Fatalf("submit status = %d", rec.Code)
	}
	var j jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	pollJob(t, s, j.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if rec := get(t, s, "/api/jobs/"+j.ID); rec.Code == 404 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never garbage-collected past its TTL")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := s.met.jobsExpired.Load(); got < 1 {
		t.Errorf("jobs expired counter = %d, want >= 1", got)
	}
}
