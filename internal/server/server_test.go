package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestIndexPage(t *testing.T) {
	s := New()
	rec := get(t, s, "/")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "TSExplain") {
		t.Error("index page missing title")
	}
	if rec := get(t, s, "/nope"); rec.Code != 404 {
		t.Errorf("unknown path status = %d, want 404", rec.Code)
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	s := New()
	rec := get(t, s, "/api/datasets")
	var out struct {
		Datasets []string `json:"datasets"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Datasets) != 6 {
		t.Errorf("datasets = %v", out.Datasets)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s := New()
	rec := get(t, s, "/api/explain?dataset=vax-deaths")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.K < 2 || len(out.Segments) != out.K {
		t.Errorf("K = %d with %d segments", out.K, len(out.Segments))
	}
	if out.Segments[0].Top[0].Predicates == "" {
		t.Error("empty explanation predicates")
	}
	// Fixed K round-trips.
	rec = get(t, s, "/api/explain?dataset=vax-deaths&k=3")
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	if out.K != 3 || out.AutoK {
		t.Errorf("fixed K: got K=%d autoK=%v", out.K, out.AutoK)
	}
}

func TestExplainCaching(t *testing.T) {
	s := New()
	get(t, s, "/api/explain?dataset=vax-deaths")
	if n := s.reg.resultEntries(); n != 1 {
		t.Fatalf("cache size = %d, want 1", n)
	}
	get(t, s, "/api/explain?dataset=vax-deaths")
	if n := s.reg.resultEntries(); n != 1 {
		t.Errorf("repeated request grew the cache (%d entries)", n)
	}
	if n := s.reg.computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1", n)
	}
	get(t, s, "/api/explain?dataset=vax-deaths&k=2")
	if n := s.reg.resultEntries(); n != 2 {
		t.Errorf("distinct params should add a cache entry (got %d)", n)
	}
	// The k=2 request must have reused the pooled engine, not built a
	// second one.
	if n := s.reg.engineEntries(); n != 1 {
		t.Errorf("engine pool size = %d, want 1", n)
	}
}

func TestDatasetAliasSharesCache(t *testing.T) {
	s := New()
	rec := get(t, s, "/api/explain?dataset=covid-total")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var aliased explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &aliased); err != nil {
		t.Fatal(err)
	}
	if aliased.Dataset != "covid" {
		t.Errorf("alias reported dataset %q, want normalized \"covid\"", aliased.Dataset)
	}
	rec = get(t, s, "/api/explain?dataset=covid")
	var canonical explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &canonical); err != nil {
		t.Fatal(err)
	}
	if n := s.reg.resultEntries(); n != 1 {
		t.Errorf("cache size = %d, want 1 (alias must share the canonical key)", n)
	}
	if n := s.reg.computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1 (alias must not recompute)", n)
	}
	if canonical.K != aliased.K || canonical.Variance != aliased.Variance {
		t.Errorf("alias result differs: %+v vs %+v", aliased, canonical)
	}
}

func TestConcurrentColdExplainsComputeOnce(t *testing.T) {
	s := New()
	const clients = 16
	var wg sync.WaitGroup
	codes := make([]int, clients)
	bodies := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/api/explain?dataset=vax-deaths", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.String()
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if codes[i] != 200 {
			t.Fatalf("client %d: status %d: %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("client %d got a different body", i)
		}
	}
	if n := s.reg.computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1 (thundering herd must share one explain)", n)
	}
	if n := s.reg.resultEntries(); n != 1 {
		t.Errorf("cache size = %d, want 1", n)
	}
}

func TestStreamEndpoint(t *testing.T) {
	s := New()
	rec := get(t, s, "/api/stream?dataset=stream&start=100&step=5")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	// Initial snapshot plus ceil(20/5) updates.
	if len(lines) != 5 {
		t.Fatalf("got %d NDJSON lines, want 5: %s", len(lines), rec.Body.String())
	}
	var first, last streamUpdate
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if !first.Initial || first.N != 100 {
		t.Errorf("first line = %+v, want initial snapshot at n=100", first)
	}
	if last.Error != "" || last.N != 120 || last.K < 2 {
		t.Errorf("last line = %+v, want final update at n=120", last)
	}
	if len(last.Top) == 0 {
		t.Errorf("last update reports no explanations")
	}

	for _, path := range []string{
		"/api/stream?dataset=stream&start=1",
		"/api/stream?dataset=stream&start=999",
		"/api/stream?dataset=stream&step=0",
	} {
		if rec := get(t, s, path); rec.Code != 400 {
			t.Errorf("%s: status = %d, want 400", path, rec.Code)
		}
	}
	if rec := get(t, s, "/api/stream?dataset=bogus"); rec.Code != 404 {
		t.Errorf("unknown dataset: status = %d, want 404", rec.Code)
	}
}

func TestExplainBadParams(t *testing.T) {
	s := New()
	// Malformed parameters are 400s; unknown resources are 404s. Every
	// error path answers with the JSON error shape, never an empty 200.
	cases := []struct {
		path string
		code int
	}{
		{"/api/explain?dataset=bogus", 404},
		{"/api/explain?k=99", 400},
		{"/api/explain?k=abc", 400},
		{"/api/explain?smooth=-2", 400},
		{"/api/recommend?dataset=bogus", 404},
		{"/svg/trendlines?dataset=bogus", 404},
		{"/svg/kvariance?k=oops", 400},
		{"/api/diff?dataset=bogus", 404},
	}
	for _, tc := range cases {
		rec := get(t, s, tc.path)
		if rec.Code != tc.code {
			t.Errorf("%s: status = %d, want %d", tc.path, rec.Code, tc.code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type = %q, want JSON error body", tc.path, ct)
		}
		var out struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Error == "" {
			t.Errorf("%s: body %q is not the JSON error shape", tc.path, rec.Body.String())
		}
	}
}

func TestSVGEndpoints(t *testing.T) {
	s := New()
	for _, path := range []string{
		"/svg/trendlines?dataset=vax-deaths",
		"/svg/kvariance?dataset=vax-deaths",
	} {
		rec := get(t, s, path)
		if rec.Code != 200 {
			t.Fatalf("%s: status = %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
			t.Errorf("%s: content type = %q", path, ct)
		}
		if !strings.HasPrefix(rec.Body.String(), "<svg") {
			t.Errorf("%s: not SVG", path)
		}
	}
}

func TestRecommendEndpoint(t *testing.T) {
	s := New()
	rec := get(t, s, "/api/recommend?dataset=vax-deaths")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Attributes []struct {
			Attribute string  `json:"Attribute"`
			Coverage  float64 `json:"Coverage"`
		} `json:"attributes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Attributes) != 2 {
		t.Errorf("attributes = %+v", out.Attributes)
	}
}

func TestSliceEndpoint(t *testing.T) {
	s := New()
	rec := get(t, s, "/api/slice?dataset=vax-deaths&expr=vaccinated%3DNO")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Series    []float64 `json:"series"`
		Share     float64   `json:"shareOfTotal"`
		DrillDown []struct {
			Attribute string   `json:"attribute"`
			Children  []string `json:"children"`
		} `json:"drillDown"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 39 {
		t.Errorf("series length = %d, want 39", len(out.Series))
	}
	if out.Share <= 0.4 || out.Share >= 1 {
		t.Errorf("unvaccinated share = %g, want a majority share below 1", out.Share)
	}
	// Drill-down offered on the remaining attribute only.
	if len(out.DrillDown) != 1 || out.DrillDown[0].Attribute != "age-group" {
		t.Errorf("drill-down = %+v, want age-group", out.DrillDown)
	}
	if len(out.DrillDown[0].Children) != 3 {
		t.Errorf("age-group children = %v", out.DrillDown[0].Children)
	}

	// Root slice returns the total and both drill-down attributes.
	rec = get(t, s, "/api/slice?dataset=vax-deaths")
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Share != 1 {
		t.Errorf("root share = %g, want 1", out.Share)
	}
	if len(out.DrillDown) != 2 {
		t.Errorf("root drill-down attrs = %d, want 2", len(out.DrillDown))
	}
}

func TestSliceEndpointErrors(t *testing.T) {
	s := New()
	cases := []struct {
		path string
		code int
	}{
		{"/api/slice?dataset=bogus", 404},
		{"/api/slice?dataset=vax-deaths&expr=oops", 400},
		{"/api/slice?dataset=vax-deaths&expr=age-group%3Dnope", 400},
		{"/api/slice?dataset=vax-deaths&expr=age-group%3D50%2B%26age-group%3D%3C30", 400},
	}
	for _, tc := range cases {
		if rec := get(t, s, tc.path); rec.Code != tc.code {
			t.Errorf("%s: status = %d, want %d (%s)", tc.path, rec.Code, tc.code, rec.Body.String())
		}
	}
}

func TestDiffEndpoint(t *testing.T) {
	s := New()
	rec := get(t, s, "/api/diff?dataset=vax-deaths&from=w25&to=w38")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Top []struct {
			Predicates string `json:"predicates"`
			Effect     string `json:"effect"`
		} `json:"top"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Top) == 0 {
		t.Fatal("no explanations returned")
	}
	// The delta-wave rise is driven by age-group=50+.
	if !strings.Contains(out.Top[0].Predicates, "50+") || out.Top[0].Effect != "+" {
		t.Errorf("top diff explanation = %+v", out.Top[0])
	}
	// Bad ranges.
	for _, path := range []string{
		"/api/diff?dataset=vax-deaths&from=w38&to=w25",
		"/api/diff?dataset=vax-deaths&from=nope&to=w38",
	} {
		if rec := get(t, s, path); rec.Code != 400 {
			t.Errorf("%s: status = %d, want 400", path, rec.Code)
		}
	}
}
