package server

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
)

// Back-pressure sentinels. errQueueFull maps to 429 (the client should
// retry with backoff); context errors map to 503 (the request's deadline
// expired while queued or mid-compute).
var errQueueFull = errors.New("server overloaded: admission queue full")

// registry is the sharded serving substrate behind every compute
// endpoint: datasets load lazily on first request, engines pool per
// (dataset, smoothing, optimization) key inside the shard that owns the
// key, and each shard bounds its concurrent work with a worker pool and
// admission queue. Sharding cuts lock contention — requests for different
// shards never touch the same mutex — and gives eviction and admission
// natural local scope.
type registry struct {
	shards []*shard
	met    *metrics

	// requestTimeout bounds detached singleflight computes (see explain).
	requestTimeout time.Duration

	// computes counts full explain computations (observed by tests and
	// the singleflight assertions).
	computes atomic.Int64

	// datasets are materialized once and kept forever: they are small
	// relative to engines, and every engine for a dataset shares one
	// relation. dmu guards only the map; each entry materializes under
	// its own once, so a slow cold load (liquor) never stalls requests
	// for other datasets behind a global lock.
	dmu   sync.Mutex
	dsets map[string]*datasetEntry
}

// datasetEntry is one lazily materialized dataset.
type datasetEntry struct {
	once sync.Once
	d    *datasets.Dataset
	err  error
}

// shard owns a disjoint slice of the key space.
type shard struct {
	met *metrics

	mu        sync.Mutex
	engines   *lruCache[*engineEntry]
	results   *lruCache[*core.Result]
	inflight  map[string]*inflightCall
	memUsed   int64
	memBudget int64

	// Admission: sem holds one token per running request; waiting counts
	// requests queued for a token, capped at queueLimit.
	sem        chan struct{}
	queueLimit int64
	waiting    atomic.Int64
	busy       atomic.Int64
}

// engineEntry is one pooled engine. lock serializes use (engines are not
// safe for concurrent use) and, unlike a mutex, can be abandoned when the
// waiter's context expires. pins counts requests holding or waiting for
// the entry; eviction skips pinned entries, so an engine is never dropped
// with a request in flight.
type engineEntry struct {
	key  string
	lock chan struct{}
	eng  *core.Engine
	cost int64
	pins atomic.Int32
}

// inflightCall tracks one in-progress explain; late arrivals for the same
// key wait on done instead of recomputing.
type inflightCall struct {
	done chan struct{}
	res  *core.Result
	err  error
}

func newRegistry(cfg Config, met *metrics) *registry {
	g := &registry{
		met:            met,
		requestTimeout: cfg.RequestTimeout,
		dsets:          make(map[string]*datasetEntry),
	}
	perShardResults := cfg.ResultCacheSize / cfg.Shards
	if perShardResults < 8 {
		perShardResults = 8
	}
	perShardBudget := cfg.MemoryBudgetBytes / int64(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		g.shards = append(g.shards, &shard{
			met: met,
			// The engine pool is bounded by the memory budget, not an
			// entry count; give the LRU effectively unbounded capacity.
			engines:    newLRU[*engineEntry](1 << 30),
			results:    newLRU[*core.Result](perShardResults),
			inflight:   make(map[string]*inflightCall),
			memBudget:  perShardBudget,
			sem:        make(chan struct{}, cfg.WorkersPerShard),
			queueLimit: int64(cfg.QueueDepth),
		})
	}
	return g
}

// shardFor maps a key to its owning shard (FNV-1a).
func (g *registry) shardFor(key string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return g.shards[int(h.Sum32())%len(g.shards)]
}

// dataset returns the named demo dataset, materializing it on first
// request. Unlike the old eager path, a server that never sees liquor
// traffic never pays for building the liquor relation. Concurrent first
// requests for the same dataset share one materialization; different
// datasets materialize independently.
func (g *registry) dataset(name string) (*datasets.Dataset, error) {
	g.dmu.Lock()
	e, ok := g.dsets[name]
	if !ok {
		e = &datasetEntry{}
		g.dsets[name] = e
	}
	g.dmu.Unlock()
	e.once.Do(func() {
		e.d, e.err = demoDataset(name)
		if e.err == nil {
			g.met.datasetLoads.Add(1)
		}
	})
	return e.d, e.err
}

// admit reserves one worker slot on the shard, queueing when all slots
// are busy. It fails fast with errQueueFull once queueLimit requests are
// already waiting, and with ctx's error if the request's deadline expires
// while queued. The returned release must be called exactly once.
func (sh *shard) admit(ctx context.Context) (release func(), err error) {
	select {
	case sh.sem <- struct{}{}:
		sh.busy.Add(1)
		return sh.release, nil
	default:
	}
	if sh.waiting.Add(1) > sh.queueLimit {
		sh.waiting.Add(-1)
		sh.met.shedQueueFull.Add(1)
		return nil, errQueueFull
	}
	defer sh.waiting.Add(-1)
	select {
	case sh.sem <- struct{}{}:
		sh.busy.Add(1)
		return sh.release, nil
	case <-ctx.Done():
		sh.met.shedDeadline.Add(1)
		return nil, ctx.Err()
	}
}

func (sh *shard) release() {
	sh.busy.Add(-1)
	<-sh.sem
}

// explain serves one explanation: result cache, then singleflight, then
// an admitted compute on a pooled engine. Warm hits return without
// touching admission at all, so cached traffic never occupies a worker
// slot.
func (g *registry) explain(ctx context.Context, p params) (*core.Result, error) {
	sh := g.shardFor(p.engineKey())
	key := p.key()

	sh.mu.Lock()
	if res, ok := sh.results.get(key); ok {
		sh.mu.Unlock()
		g.met.cacheHits.Add(1)
		return res, nil
	}
	g.met.cacheMisses.Add(1)
	if c, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		g.met.dedups.Add(1)
		select {
		case <-c.done:
			return c.res, c.err
		case <-ctx.Done():
			g.met.shedDeadline.Add(1)
			return nil, ctx.Err()
		}
	}
	c := &inflightCall{done: make(chan struct{})}
	sh.inflight[key] = c
	sh.mu.Unlock()

	// Deregister and wake waiters even if the computation panics (the
	// HTTP server recovers per-connection panics; without the defer the
	// key would stay in-flight forever and every later request for it
	// would block on done).
	defer func() {
		if c.res == nil && c.err == nil {
			c.err = errors.New("explain computation aborted")
		}
		sh.mu.Lock()
		delete(sh.inflight, key)
		if c.err == nil {
			sh.results.add(key, c.res)
		}
		sh.mu.Unlock()
		close(c.done)
	}()

	// The compute is shared by every deduped waiter, so it must not die
	// with the leader's client: it runs detached from the leader's
	// cancellation, bounded by its own RequestTimeout-length deadline. A
	// leader that hangs up leaves the compute finishing (and caching) for
	// the waiters; a genuine deadline still aborts it mid-engine.
	cctx, ccancel := context.WithTimeout(context.WithoutCancel(ctx), g.requestTimeout)
	defer ccancel()
	c.res, c.err = g.compute(cctx, sh, p)
	if c.err != nil {
		return nil, c.err
	}
	// The leader's own client may have expired while the shared compute
	// ran; report that truthfully without poisoning the cached result.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.res, nil
}

// countIfDeadline attributes a compute-phase abort (engine build or
// explain cancelled by the request's context) to the deadline-shed
// counter; the queued-wait paths count themselves at their select sites.
func (g *registry) countIfDeadline(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		g.met.shedDeadline.Add(1)
	}
}

// compute resolves the pooled engine for the request (building it on
// first use, under the compute context) and runs one explain. Lock
// ordering matters for admission fairness: the engine's serialization
// lock is acquired BEFORE a worker slot, so a request queued behind a
// busy engine waits without occupying a slot — one slow cold engine
// cannot absorb a shard's whole worker pool while the CPU sits idle.
// Every slot-taking path orders entry-lock → slot, so there is no cycle.
func (g *registry) compute(ctx context.Context, sh *shard, p params) (*core.Result, error) {
	ent, unlock, err := g.lockEntry(ctx, sh, p.engineKey())
	if err != nil {
		return nil, err
	}
	defer unlock()
	releaseSlot, err := sh.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer releaseSlot()
	if err := g.buildLocked(ctx, sh, ent, func(ctx context.Context) (*core.Engine, error) {
		d, err := g.dataset(p.dataset)
		if err != nil {
			return nil, err
		}
		return core.NewEngineCtx(ctx, d.Rel, core.Query{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
		}, p.options(d))
	}); err != nil {
		return nil, err
	}
	g.computes.Add(1)
	res, err := ent.eng.ExplainWithKCtx(ctx, p.k)
	if err != nil {
		g.countIfDeadline(err)
	}
	return res, err
}

// engineExclusive resolves a pooled engine for a request that drives it
// directly (diff): entry lock, then worker slot, then build if cold. The
// engine stays locked — and the slot held — until release is called. The
// deferred cleanups make a panicking build release the lock, pin, and
// slot instead of leaking them past net/http's recover.
func (g *registry) engineExclusive(ctx context.Context, ekey string, build func(context.Context) (*core.Engine, error)) (*core.Engine, func(), error) {
	sh := g.shardFor(ekey)
	ent, unlock, err := g.lockEntry(ctx, sh, ekey)
	if err != nil {
		return nil, nil, err
	}
	acquired := false
	defer func() {
		if !acquired {
			unlock()
		}
	}()
	releaseSlot, err := sh.admit(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if !acquired {
			releaseSlot()
		}
	}()
	if err := g.buildLocked(ctx, sh, ent, build); err != nil {
		return nil, nil, err
	}
	acquired = true
	return ent.eng, func() { releaseSlot(); unlock() }, nil
}

// engineShared resolves a pooled engine for read-only use of its
// immutable post-build state (slice traffic reads the candidate
// universe). A cold engine is built under the entry lock and a worker
// slot; once built, the lock and slot are released immediately and only
// the pin is kept for the request's duration, so concurrent readers
// share the engine without serializing on it or occupying slots.
func (g *registry) engineShared(ctx context.Context, ekey string, build func(context.Context) (*core.Engine, error)) (*core.Engine, func(), error) {
	sh := g.shardFor(ekey)
	ent, unlock, err := g.lockEntry(ctx, sh, ekey)
	if err != nil {
		return nil, nil, err
	}
	shared := false
	defer func() {
		if !shared {
			unlock() // error or panicking build: release lock and pin
		}
	}()
	if ent.eng == nil {
		releaseSlot, err := sh.admit(ctx)
		if err != nil {
			return nil, nil, err
		}
		err = func() error {
			defer releaseSlot()
			return g.buildLocked(ctx, sh, ent, build)
		}()
		if err != nil {
			return nil, nil, err
		}
	}
	eng := ent.eng
	shared = true
	// Drop the lock but keep the pin: the engine cannot be evicted while
	// the reader holds it, and writers (diff) still serialize on the lock.
	<-ent.lock
	return eng, func() { ent.pins.Add(-1) }, nil
}

// lockEntry returns the shard's entry for ekey with its lock held and a
// pin taken. The pin spans the lock wait as well, so an entry a request
// is queued on cannot be evicted either. unlock releases both.
func (g *registry) lockEntry(ctx context.Context, sh *shard, ekey string) (*engineEntry, func(), error) {
	sh.mu.Lock()
	ent, ok := sh.engines.get(ekey)
	if !ok {
		ent = &engineEntry{key: ekey, lock: make(chan struct{}, 1)}
		sh.engines.add(ekey, ent)
	}
	ent.pins.Add(1)
	sh.mu.Unlock()

	select {
	case ent.lock <- struct{}{}:
	case <-ctx.Done():
		ent.pins.Add(-1)
		g.met.shedDeadline.Add(1)
		return nil, nil, ctx.Err()
	}
	unlock := func() {
		<-ent.lock
		ent.pins.Add(-1)
	}
	return ent, unlock, nil
}

// buildLocked materializes the entry's engine if it is still cold. It
// must be called with the entry lock held and a worker slot admitted;
// the freshly charged cost triggers an eviction pass on the shard.
func (g *registry) buildLocked(ctx context.Context, sh *shard, ent *engineEntry, build func(context.Context) (*core.Engine, error)) error {
	if ent.eng != nil {
		return nil
	}
	eng, err := build(ctx)
	if err != nil {
		g.countIfDeadline(err)
		return err
	}
	ent.eng = eng
	ent.cost = eng.MemoryFootprint()
	sh.mu.Lock()
	sh.memUsed += ent.cost
	sh.evictOverBudgetLocked()
	sh.mu.Unlock()
	return nil
}

// evictOverBudgetLocked sheds cold engines until the shard is back under
// its memory budget. Pinned entries (requests in flight or queued on the
// engine) are never evicted, so a shard whose budget is exceeded entirely
// by pinned engines temporarily stays over budget and converges once the
// requests drain.
func (sh *shard) evictOverBudgetLocked() {
	for sh.memUsed > sh.memBudget {
		ent, ok := sh.engines.evictOldest(func(e *engineEntry) bool {
			return e.pins.Load() == 0
		})
		if !ok {
			return
		}
		sh.memUsed -= ent.cost
		sh.met.evictions.Add(1)
	}
}

// gauges snapshots per-shard state for the /metrics scrape.
func (g *registry) gauges() []shardGauges {
	out := make([]shardGauges, len(g.shards))
	for i, sh := range g.shards {
		sh.mu.Lock()
		out[i] = shardGauges{
			engines:    sh.engines.len(),
			memBytes:   sh.memUsed,
			results:    sh.results.len(),
			queueDepth: sh.waiting.Load(),
			busy:       sh.busy.Load(),
		}
		sh.mu.Unlock()
	}
	return out
}

// resultEntries and engineEntries sum cache sizes across shards
// (observed by tests).
func (g *registry) resultEntries() int {
	n := 0
	for _, sh := range g.shards {
		sh.mu.Lock()
		n += sh.results.len()
		sh.mu.Unlock()
	}
	return n
}

func (g *registry) engineEntries() int {
	n := 0
	for _, sh := range g.shards {
		sh.mu.Lock()
		n += sh.engines.len()
		sh.mu.Unlock()
	}
	return n
}
