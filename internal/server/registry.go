package server

import (
	"context"
	"errors"
	"hash/fnv"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/explain"
)

// Back-pressure sentinels. errQueueFull maps to 429 (the client should
// retry with backoff); context errors map to 503 (the request's deadline
// expired while queued or mid-compute). Approx-eligible explain traffic
// never surfaces either: the handlers catch both and retry on the
// degraded lane (see Server.explainDegradable).
var errQueueFull = errors.New("server overloaded: admission queue full")

// degradedComputeTimeout bounds a degraded-lane compute: the whole point
// of degrading is a fast bounded answer, so the detached compute gets a
// short deadline instead of the full request timeout.
const degradedComputeTimeout = 2 * time.Second

// degradeAfterWait is the "deadline near" trigger: how long a degradable
// request is willing to WAIT — for the engine lock, a worker slot, or a
// deduped leader's in-flight compute — before its handler gives up on
// the normal lane and degrades it. Only waits are capped: once a slot is
// held and the compute is running, it keeps its full deadline, so an
// idle server's cold exact explain never spuriously degrades. The value
// trades exactness under load for tail latency: every queued degradable
// request resolves (to the degraded lane, usually a cached coarse
// answer) within this bound instead of waiting out the request timeout.
const degradeAfterWait = 200 * time.Millisecond

// registry is the sharded serving substrate behind every compute
// endpoint: datasets load lazily on first request, engines pool per
// (dataset, smoothing, optimization) key inside the shard that owns the
// key, and each shard bounds its concurrent work with a worker pool and
// admission queue. Sharding cuts lock contention — requests for different
// shards never touch the same mutex — and gives eviction and admission
// natural local scope.
type registry struct {
	shards []*shard
	met    *metrics

	// cat is the on-disk dataset catalog behind the bring-your-own-data
	// path; nil when the server runs without a data directory. snapshots
	// gates the warm-restart path: when false, catalog datasets always
	// rebuild from their CSV.
	cat       *catalog.Catalog
	snapshots bool

	// requestTimeout bounds detached singleflight computes (see explain).
	requestTimeout time.Duration

	// computes counts full explain computations (observed by tests and
	// the singleflight assertions).
	computes atomic.Int64

	// datasets are materialized once and kept until invalidated (catalog
	// deletes and appends drop the entry; built-ins live forever): they
	// are small relative to engines, and every engine for a dataset
	// shares one relation. dmu guards only the map; each entry
	// materializes under its own lock, so a slow cold load (liquor) never
	// stalls requests for other datasets behind a global lock.
	//
	// gens[name] counts the dataset's invalidations (also under dmu). A
	// compute records the generation it started under and only caches its
	// result if the generation is unchanged when it finishes — without
	// this, an explain in flight across an append would re-insert its
	// pre-append result into the cache invalidateDataset just swept, and
	// serve stale data until the next eviction.
	dmu   sync.Mutex
	dsets map[string]*datasetEntry //tsexplain:guardedby dmu
	gens  map[string]uint64        //tsexplain:guardedby dmu

	// live holds the per-dataset streaming ingestion state behind the
	// append endpoint (livemu guards the map; each liveStream has its own
	// lock).
	livemu sync.Mutex
	live   map[string]*liveStream //tsexplain:guardedby livemu

	// refreshing coalesces background snapshot refreshes: at most one
	// refresh per dataset runs at a time, and a burst of appends queues a
	// single re-run instead of a goroutine per append.
	refreshMu  sync.Mutex
	refreshing map[string]*refreshJob //tsexplain:guardedby refreshMu
}

// refreshJob is one dataset's in-flight snapshot refresh. queued marks a
// request that arrived mid-run (the job re-runs once more so the refresh
// covers data persisted after the current run started); waiters are
// closed when the job fully drains.
type refreshJob struct {
	queued  bool            //tsexplain:guardedby registry.refreshMu
	waiters []chan struct{} //tsexplain:guardedby registry.refreshMu
}

// datasetEntry is one lazily materialized dataset. Published relations
// are immutable: an append never mutates an entry's relation, it swaps in
// a fresh entry (see publishDataset), so concurrent readers of the old
// entry are always safe.
type datasetEntry struct {
	mu     sync.Mutex
	loaded bool              //tsexplain:guardedby mu
	d      *datasets.Dataset //tsexplain:guardedby mu
	err    error             //tsexplain:guardedby mu
}

// liveStream is one catalog dataset's streaming ingestion state: a
// persistent incremental engine whose relation the append endpoint
// extends in place through the O(delta) append path. It is lazily built
// on the first append and owns its relation — pooled serving engines
// never share it, they read immutable published clones.
type liveStream struct {
	mu  sync.Mutex
	inc *core.Incremental //tsexplain:guardedby mu
}

// shard owns a disjoint slice of the key space.
type shard struct {
	met *metrics

	mu        sync.Mutex
	engines   *lruCache[*engineEntry]  //tsexplain:guardedby mu
	results   *lruCache[*core.Result]  //tsexplain:guardedby mu
	inflight  map[string]*inflightCall //tsexplain:guardedby mu
	memUsed   int64                    //tsexplain:guardedby mu
	memBudget int64

	// memMapped tracks bytes the shard's engines read through snapshot
	// memory mappings. Mapped bytes are kernel-evictable (they page in on
	// demand and drop under memory pressure), so they are NOT charged
	// against memBudget — memUsed stays heap-resident-only — but they are
	// accounted and exported so operators can see how much of a dataset
	// is being served off disk.
	memMapped int64 //tsexplain:guardedby mu

	// avgServiceNS is an EWMA (α=1/8) of how long admitted requests hold
	// a worker slot, in nanoseconds. Shed responses derive Retry-After
	// from it: queue-ahead × service time ÷ workers, clamped to [1, 30]s.
	avgServiceNS atomic.Int64

	// Admission: sem holds one token per running request; waiting counts
	// requests queued for a token, capped at queueLimit. degSem is the
	// degraded lane's separate (smaller) worker pool: overload retries of
	// approx-eligible requests run here, so a saturated normal lane can
	// never starve the lane that exists to absorb its overflow.
	sem        chan struct{}
	degSem     chan struct{}
	queueLimit int64
	waiting    atomic.Int64
	busy       atomic.Int64
}

// engineEntry is one pooled engine. lock serializes use (engines are not
// safe for concurrent use) and, unlike a mutex, can be abandoned when the
// waiter's context expires. pins counts requests holding or waiting for
// the entry; eviction skips pinned entries, so an engine is never dropped
// with a request in flight.
type engineEntry struct {
	key  string
	lock chan struct{}
	eng  *core.Engine
	cost int64 // heap-resident bytes, charged against the shard budget
	// mapped is the engine's kernel-evictable mapped-arena size; tracked
	// in the shard's memMapped alongside cost but never charged against
	// the budget (the kernel reclaims those pages itself).
	mapped int64
	pins   atomic.Int32

	// dead and charged are guarded by the shard mutex. dead marks an
	// entry removed from the pool by dataset invalidation while a request
	// was still using it: the request finishes on the entry safely, but
	// its build cost is never charged to the shard (the entry can no
	// longer be evicted to reclaim it). charged tracks whether the
	// entry's cost is currently counted in the shard's memUsed.
	dead    bool //tsexplain:guardedby shard.mu
	charged bool //tsexplain:guardedby shard.mu
}

// inflightCall tracks one in-progress explain; late arrivals for the same
// key wait on done instead of recomputing.
type inflightCall struct {
	done chan struct{}
	res  *core.Result
	err  error
}

func newRegistry(cfg Config, met *metrics, cat *catalog.Catalog) *registry {
	g := &registry{
		met:            met,
		cat:            cat,
		snapshots:      cat != nil && !cfg.DisableSnapshots,
		requestTimeout: cfg.RequestTimeout,
		dsets:          make(map[string]*datasetEntry),
		gens:           make(map[string]uint64),
		live:           make(map[string]*liveStream),
		refreshing:     make(map[string]*refreshJob),
	}
	perShardResults := cfg.ResultCacheSize / cfg.Shards
	if perShardResults < 8 {
		perShardResults = 8
	}
	perShardBudget := cfg.MemoryBudgetBytes / int64(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		g.shards = append(g.shards, &shard{
			met: met,
			// The engine pool is bounded by the memory budget, not an
			// entry count; give the LRU effectively unbounded capacity.
			engines:    newLRU[*engineEntry](1 << 30),
			results:    newLRU[*core.Result](perShardResults),
			inflight:   make(map[string]*inflightCall),
			memBudget:  perShardBudget,
			sem:        make(chan struct{}, cfg.WorkersPerShard),
			degSem:     make(chan struct{}, degradedWorkers(cfg.WorkersPerShard)),
			queueLimit: int64(cfg.QueueDepth),
		})
	}
	return g
}

// shardFor maps a key to its owning shard (FNV-1a).
func (g *registry) shardFor(key string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return g.shards[int(h.Sum32())%len(g.shards)]
}

// dataset returns the named dataset (built-in or catalog), materializing
// it on first request. Unlike the old eager path, a server that never
// sees liquor traffic never pays for building the liquor relation.
// Concurrent first requests for the same dataset share one
// materialization; different datasets materialize independently. Catalog
// load failures are not memoized — a transient file problem heals on the
// next request instead of pinning the dataset broken.
func (g *registry) dataset(name string) (*datasets.Dataset, error) {
	g.dmu.Lock()
	e, ok := g.dsets[name]
	if !ok {
		e = &datasetEntry{}
		g.dsets[name] = e
	}
	g.dmu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.loaded {
		return e.d, e.err
	}
	e.d, e.err = g.loadDataset(name)
	e.loaded = e.err == nil || !g.isCatalogDataset(name)
	if e.err == nil {
		g.met.datasetLoads.Add(1)
	}
	return e.d, e.err
}

// isCatalogDataset reports whether name resolves to a catalog dataset
// (canonical names only; aliases are resolved before the registry).
func (g *registry) isCatalogDataset(name string) bool {
	if g.cat == nil {
		return false
	}
	_, ok := g.cat.Manifest(name)
	return ok
}

// loadDataset materializes a dataset: built-in generators first, then the
// catalog. Catalog datasets prefer the warm-restart snapshot (skipping
// the CSV parse and dictionary encoding) and fall back to the CSV when
// the snapshot is missing, stale, or fails validation.
func (g *registry) loadDataset(name string) (*datasets.Dataset, error) {
	if isBuiltinDataset(name) {
		return demoDataset(name)
	}
	if g.cat == nil {
		return nil, httpErrf(http.StatusNotFound, "unknown dataset %q", name)
	}
	m, ok := g.cat.Manifest(name)
	if !ok {
		return nil, httpErrf(http.StatusNotFound, "unknown dataset %q", name)
	}
	agg, err := m.AggFunc()
	if err != nil {
		return nil, err
	}
	d := &datasets.Dataset{
		Name:         m.Name,
		Measure:      m.MeasureCol,
		Agg:          agg,
		ExplainBy:    m.ExplainBy,
		MaxOrder:     m.EffectiveMaxOrder(),
		SmoothWindow: m.SmoothWindow,
	}
	if m.Approx != nil {
		d.ApproxMaxCandidates = m.Approx.MaxCandidates
		d.ApproxEpsilon = m.Approx.Epsilon
	}
	if g.snapshots && g.cat.HasSnapshot(name) {
		start := time.Now()
		rel, err := g.cat.LoadSnapshotRelation(name)
		if err == nil {
			g.met.snapshotRelRestores.Add(1)
			log.Printf("catalog: dataset %q restored from snapshot in %v (CSV parse skipped)", name, time.Since(start).Round(time.Microsecond))
			d.Rel = rel
			return d, nil
		}
		g.met.snapshotFallbacks.Add(1)
		log.Printf("catalog: dataset %q snapshot unusable (%v); rebuilding from CSV", name, err)
	}
	rel, err := g.cat.LoadRelation(name)
	if err != nil {
		return nil, err
	}
	d.Rel = rel
	return d, nil
}

// degradedWorkers sizes the degraded lane's pool from the normal one:
// half the workers, at least one — enough to absorb overflow without
// letting degraded traffic outcompete normal traffic for CPU.
func degradedWorkers(workersPerShard int) int {
	if n := workersPerShard / 2; n > 1 {
		return n
	}
	return 1
}

// admit reserves one worker slot on the shard, queueing when all slots
// are busy. It fails fast with errQueueFull once queueLimit requests are
// already waiting, and with ctx's error if the request's deadline expires
// while queued. The returned release must be called exactly once.
// (Shed accounting happens once per request in Server.handle, from the
// final response status — not here — so an overload that ends in a
// degraded 200 never counts as a shed.)
func (sh *shard) admit(ctx context.Context) (release func(), err error) {
	select {
	case sh.sem <- struct{}{}:
		sh.busy.Add(1)
		return sh.releaseTimed(time.Now()), nil
	default:
	}
	if sh.waiting.Add(1) > sh.queueLimit {
		sh.waiting.Add(-1)
		return nil, &overloadedError{retryAfter: sh.retryAfterSeconds()}
	}
	defer sh.waiting.Add(-1)
	select {
	case sh.sem <- struct{}{}:
		sh.busy.Add(1)
		return sh.releaseTimed(time.Now()), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admitDegraded reserves a slot on the shard's degraded lane. The lane
// has no queue limit — its requests already survived one shed decision,
// and a bounded coarse answer is the whole contract — so the only way
// out without a slot is the context expiring.
func (sh *shard) admitDegraded(ctx context.Context) (release func(), err error) {
	select {
	case sh.degSem <- struct{}{}:
		return func() { <-sh.degSem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admitPatient reserves a normal worker slot but never sheds on queue
// depth: async-job workers use it, because a job's whole contract is
// "computed eventually" — the worker waits out contention instead of
// failing a persisted job with a transient queue-full. The job-worker
// pool itself is bounded, so at most JobWorkers requests can be waiting
// here at once.
func (sh *shard) admitPatient(ctx context.Context) (release func(), err error) {
	sh.waiting.Add(1)
	defer sh.waiting.Add(-1)
	select {
	case sh.sem <- struct{}{}:
		sh.busy.Add(1)
		return sh.releaseTimed(time.Now()), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (sh *shard) release() {
	sh.busy.Add(-1)
	<-sh.sem
}

// releaseTimed wraps release so the slot's hold time also lands in the
// shard's service-time EWMA — the signal Retry-After is derived from.
func (sh *shard) releaseTimed(start time.Time) func() {
	return func() {
		sh.observeService(time.Since(start))
		sh.release()
	}
}

// observeService folds one observed service time into the EWMA (α=1/8;
// the first observation seeds it).
func (sh *shard) observeService(d time.Duration) {
	if d < 0 {
		return
	}
	for {
		old := sh.avgServiceNS.Load()
		next := int64(d)
		if old != 0 {
			next = old + (int64(d)-old)/8
		}
		if next <= 0 {
			next = 1
		}
		if sh.avgServiceNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds estimates when a shed client can expect a worker
// slot: the queue ahead of it (plus itself) times the observed average
// service time, spread across the worker pool, rounded up and clamped
// to [1, 30] seconds. With no observations yet it reports the old
// static 1s floor.
func (sh *shard) retryAfterSeconds() int {
	avg := sh.avgServiceNS.Load()
	if avg <= 0 {
		return 1
	}
	workers := int64(cap(sh.sem))
	if workers < 1 {
		workers = 1
	}
	estNS := (sh.waiting.Load() + 1) * avg / workers
	secs := (estNS + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return int(secs)
}

// overloadedError is errQueueFull carrying the derived Retry-After so
// the HTTP layer can tell the client when a retry is actually worth
// making. errors.Is(err, errQueueFull) keeps matching through Unwrap,
// so status mapping and the degraded-lane retry logic are unchanged.
type overloadedError struct{ retryAfter int }

func (e *overloadedError) Error() string { return errQueueFull.Error() }
func (e *overloadedError) Unwrap() error { return errQueueFull }

// graceCtx derives the wait-bounding context for a request's admission
// grace; a zero grace means unbounded (the parent context alone).
func graceCtx(ctx context.Context, grace time.Duration) (context.Context, context.CancelFunc) {
	if grace <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, grace)
}

// explain serves one explanation: result cache, then singleflight, then
// an admitted compute on a pooled engine. Warm hits return without
// touching admission at all, so cached traffic never occupies a worker
// slot.
func (g *registry) explain(ctx context.Context, p params) (*core.Result, error) {
	if p.approx {
		g.met.approxRequests.Add(1)
	}
	sh := g.shardFor(p.engineKey())
	key := p.key()
	gen := g.datasetGen(p.dataset)

	sh.mu.Lock()
	if res, ok := sh.results.get(key); ok {
		sh.mu.Unlock()
		g.met.cacheHits.Add(1)
		return res, nil
	}
	g.met.cacheMisses.Add(1)
	if c, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		g.met.dedups.Add(1)
		// Waiting on another request's compute is a wait like any other:
		// a degradable request's grace caps it, and the handler degrades
		// instead of riding out a slow leader (whose result still lands in
		// the cache for the next request).
		wctx, wcancel := graceCtx(ctx, p.admitGrace)
		defer wcancel()
		select {
		case <-c.done:
			return c.res, c.err
		case <-wctx.Done():
			return nil, wctx.Err()
		}
	}
	c := &inflightCall{done: make(chan struct{})}
	sh.inflight[key] = c
	sh.mu.Unlock()

	// Deregister and wake waiters even if the computation panics (the
	// HTTP server recovers per-connection panics; without the defer the
	// key would stay in-flight forever and every later request for it
	// would block on done).
	defer func() {
		if c.res == nil && c.err == nil {
			c.err = errors.New("explain computation aborted")
		}
		// Cache only if the dataset was not invalidated (deleted or
		// appended to) while this compute ran — a stale result cached
		// here would outlive the sweep invalidateDataset just did. The
		// deduped waiters still receive the result either way.
		cacheable := c.err == nil && g.datasetGen(p.dataset) == gen
		sh.mu.Lock()
		delete(sh.inflight, key)
		if cacheable {
			sh.results.add(key, c.res)
		}
		sh.mu.Unlock()
		close(c.done)
	}()

	// The compute is shared by every deduped waiter, so it must not die
	// with the leader's client: it runs detached from the leader's
	// cancellation, bounded by its own RequestTimeout-length deadline. A
	// leader that hangs up leaves the compute finishing (and caching) for
	// the waiters; a genuine deadline still aborts it mid-engine. (The
	// degraded lane's much shorter compute leash is applied inside
	// compute, after admission — an overload burst queues for the small
	// degraded pool, and that wait must not eat the compute budget.)
	cctx, ccancel := context.WithTimeout(context.WithoutCancel(ctx), g.requestTimeout)
	defer ccancel()
	c.res, c.err = g.compute(cctx, sh, p)
	if c.err != nil {
		return nil, c.err
	}
	// The leader's own client may have expired while the shared compute
	// ran; report that truthfully without poisoning the cached result.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.res, nil
}

// compute resolves the pooled engine for the request (building it on
// first use, under the compute context) and runs one explain. Lock
// ordering matters for admission fairness: the engine's serialization
// lock is acquired BEFORE a worker slot, so a request queued behind a
// busy engine waits without occupying a slot — one slow cold engine
// cannot absorb a shard's whole worker pool while the CPU sits idle.
// Every slot-taking path orders entry-lock → slot, so there is no cycle.
// Degraded requests draw from the degraded lane's own pool (their engine
// keys are disjoint from the normal lane's, so the ordering still holds).
func (g *registry) compute(ctx context.Context, sh *shard, p params) (*core.Result, error) {
	// The deadline-near grace spans both admission waits (entry lock, then
	// worker slot) but NOT the build or the explain: a degradable request
	// that cannot even start within its grace degrades, while one that got
	// its slot computes under the full deadline.
	actx, acancel := graceCtx(ctx, p.admitGrace)
	defer acancel()
	ent, unlock, err := g.lockEntry(actx, sh, p.engineKey())
	if err != nil {
		return nil, err
	}
	defer unlock()
	admit := sh.admit
	switch {
	case p.deg:
		admit = sh.admitDegraded
	case p.patient:
		admit = sh.admitPatient
	}
	releaseSlot, err := admit(actx)
	if err != nil {
		return nil, err
	}
	defer releaseSlot()
	if p.deg {
		// The short leash starts once a degraded slot is held: a degraded
		// answer is build + one coarse refinement round, never more than
		// degradedComputeTimeout of actual work — but however long a wait
		// behind the rest of the overload burst.
		dctx, dcancel := context.WithTimeout(ctx, degradedComputeTimeout)
		defer dcancel()
		ctx = dctx
	}
	if err := g.buildLocked(ctx, sh, ent, g.engineBuilder(p.dataset, p.options)); err != nil {
		return nil, err
	}
	g.computes.Add(1)
	res, err := ent.eng.ExplainWithKCtx(ctx, p.k)
	if err == nil && res.Approx != nil {
		g.met.observeApproxErr(res.Approx.MaxErrBound)
	}
	return res, err
}

// engineBuilder returns the build function for a pooled engine: resolve
// the dataset, then construct the engine — from the warm-restart snapshot
// universe when the dataset is catalog-backed and a valid snapshot
// exists (skipping the group-by and planning passes), from the relation
// otherwise. A snapshot that fails to load or to match the requested
// options falls back to the full build; restores are never required for
// correctness, only for speed.
func (g *registry) engineBuilder(name string, opts func(*datasets.Dataset) core.Options) func(context.Context) (*core.Engine, error) {
	return func(ctx context.Context) (*core.Engine, error) {
		d, err := g.dataset(name)
		if err != nil {
			return nil, err
		}
		q := core.Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}
		o := opts(d)
		if g.snapshots && g.isCatalogDataset(name) && g.cat.HasSnapshot(name) {
			if _, u, err := g.cat.LoadSnapshot(name); err == nil {
				if eng, err := core.NewEngineFromUniverse(u, q, o); err == nil {
					g.met.snapshotEngRestores.Add(1)
					if eng.ArenaMapped() {
						g.met.snapshotMmapRestores.Add(1)
						log.Printf("catalog: engine for %q serves candidate arena from mapped snapshot (mapped=%d resident=%d bytes)",
							name, eng.MappedBytes(), eng.ResidentBytes())
					}
					return eng, nil
				}
			}
			// Fall through: the relation-level load already logged and
			// counted the snapshot problem if there was one; an options
			// mismatch here is normal (e.g. a custom smoothing window is
			// fine — smoothing reruns on the restored arena — but a stale
			// snapshot mid-append is not).
		}
		return core.NewEngineCtx(ctx, d.Rel, q, o)
	}
}

// engineExclusive resolves a pooled engine for a request that drives it
// directly (diff): entry lock, then worker slot, then build if cold. The
// engine stays locked — and the slot held — until release is called. The
// deferred cleanups make a panicking build release the lock, pin, and
// slot instead of leaking them past net/http's recover.
func (g *registry) engineExclusive(ctx context.Context, ekey string, build func(context.Context) (*core.Engine, error)) (*core.Engine, func(), error) {
	return g.engineExclusiveGrace(ctx, 0, ekey, build)
}

// engineExclusiveGrace is engineExclusive with a deadline-near admission
// grace: the lock and slot waits are bounded by grace (progressive
// streams use it so an overloaded stream degrades instead of queueing),
// while a cold build still runs under the full request context.
func (g *registry) engineExclusiveGrace(ctx context.Context, grace time.Duration, ekey string, build func(context.Context) (*core.Engine, error)) (*core.Engine, func(), error) {
	sh := g.shardFor(ekey)
	actx, acancel := graceCtx(ctx, grace)
	defer acancel()
	ent, unlock, err := g.lockEntry(actx, sh, ekey)
	if err != nil {
		return nil, nil, err
	}
	acquired := false
	defer func() {
		if !acquired {
			unlock()
		}
	}()
	releaseSlot, err := sh.admit(actx)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if !acquired {
			releaseSlot()
		}
	}()
	if err := g.buildLocked(ctx, sh, ent, build); err != nil {
		return nil, nil, err
	}
	acquired = true
	return ent.eng, func() { releaseSlot(); unlock() }, nil
}

// engineShared resolves a pooled engine for read-only use of its
// immutable post-build state (slice traffic reads the candidate
// universe). A cold engine is built under the entry lock and a worker
// slot; once built, the lock and slot are released immediately and only
// the pin is kept for the request's duration, so concurrent readers
// share the engine without serializing on it or occupying slots.
func (g *registry) engineShared(ctx context.Context, ekey string, build func(context.Context) (*core.Engine, error)) (*core.Engine, func(), error) {
	sh := g.shardFor(ekey)
	ent, unlock, err := g.lockEntry(ctx, sh, ekey)
	if err != nil {
		return nil, nil, err
	}
	shared := false
	defer func() {
		if !shared {
			unlock() // error or panicking build: release lock and pin
		}
	}()
	if ent.eng == nil {
		releaseSlot, err := sh.admit(ctx)
		if err != nil {
			return nil, nil, err
		}
		err = func() error {
			defer releaseSlot()
			return g.buildLocked(ctx, sh, ent, build)
		}()
		if err != nil {
			return nil, nil, err
		}
	}
	eng := ent.eng
	shared = true
	// Drop the lock but keep the pin: the engine cannot be evicted while
	// the reader holds it, and writers (diff) still serialize on the lock.
	<-ent.lock
	return eng, func() { ent.pins.Add(-1) }, nil
}

// lockEntry returns the shard's entry for ekey with its lock held and a
// pin taken. The pin spans the lock wait as well, so an entry a request
// is queued on cannot be evicted either. unlock releases both.
func (g *registry) lockEntry(ctx context.Context, sh *shard, ekey string) (*engineEntry, func(), error) {
	sh.mu.Lock()
	ent, ok := sh.engines.get(ekey)
	if !ok {
		ent = &engineEntry{key: ekey, lock: make(chan struct{}, 1)}
		sh.engines.add(ekey, ent)
	}
	ent.pins.Add(1)
	sh.mu.Unlock()

	select {
	case ent.lock <- struct{}{}:
	case <-ctx.Done():
		ent.pins.Add(-1)
		return nil, nil, ctx.Err()
	}
	unlock := func() {
		<-ent.lock
		ent.pins.Add(-1)
	}
	return ent, unlock, nil
}

// buildLocked materializes the entry's engine if it is still cold. It
// must be called with the entry lock held and a worker slot admitted;
// the freshly charged cost triggers an eviction pass on the shard.
func (g *registry) buildLocked(ctx context.Context, sh *shard, ent *engineEntry, build func(context.Context) (*core.Engine, error)) error {
	if ent.eng != nil {
		return nil
	}
	eng, err := build(ctx)
	if err != nil {
		return err
	}
	ent.eng = eng
	sh.mu.Lock()
	ent.cost = eng.ResidentBytes()
	ent.mapped = eng.MappedBytes()
	// A dead entry (its dataset was deleted or appended to while this
	// request held it) is no longer in the pool and can never be evicted;
	// charging its cost would inflate memUsed forever.
	if !ent.dead {
		ent.charged = true
		sh.memUsed += ent.cost
		sh.memMapped += ent.mapped
		sh.evictOverBudgetLocked()
	}
	sh.mu.Unlock()
	return nil
}

// invalidateDataset drops every cached artifact of a dataset after an
// admin mutation (delete, append): the materialized dataset entry, every
// pooled engine whose key belongs to the dataset, and every cached
// result. Pins are respected in the only way that matters — an entry is
// removed from the pool, never yanked from the request using it: in-
// flight requests keep their reference and finish on the pre-mutation
// data, while new requests materialize fresh state.
// datasetGen returns the dataset's current invalidation generation.
func (g *registry) datasetGen(name string) uint64 {
	g.dmu.Lock()
	defer g.dmu.Unlock()
	return g.gens[name]
}

func (g *registry) invalidateDataset(name string) {
	g.dmu.Lock()
	delete(g.dsets, name)
	g.gens[name]++
	g.dmu.Unlock()

	prefix := name + "|"
	owns := func(key string) bool { return strings.HasPrefix(key, prefix) }
	for _, sh := range g.shards {
		sh.mu.Lock()
		for _, ent := range sh.engines.removeMatching(owns) {
			ent.dead = true
			if ent.charged {
				ent.charged = false
				sh.memUsed -= ent.cost
				sh.memMapped -= ent.mapped
			}
			g.met.catalogEvictions.Add(1)
		}
		sh.results.removeMatching(owns)
		sh.mu.Unlock()
	}
}

// publishDataset installs a ready-made dataset entry, replacing whatever
// the registry held for the name. The upload and append paths use it so
// the very next request serves the new data without re-reading the file
// that was just written. d's relation must be immutable from here on
// (appends clone the live relation before publishing).
func (g *registry) publishDataset(name string, d *datasets.Dataset) {
	e := &datasetEntry{loaded: true, d: d}
	g.dmu.Lock()
	g.dsets[name] = e
	g.dmu.Unlock()
}

// evictOverBudgetLocked sheds cold engines until the shard is back under
// its memory budget. Pinned entries (requests in flight or queued on the
// engine) are never evicted, so a shard whose budget is exceeded entirely
// by pinned engines temporarily stays over budget and converges once the
// requests drain.
//
//tsexplain:locked mu
func (sh *shard) evictOverBudgetLocked() {
	for sh.memUsed > sh.memBudget {
		ent, ok := sh.engines.evictOldest(func(e *engineEntry) bool {
			return e.pins.Load() == 0
		})
		if !ok {
			return
		}
		ent.charged = false
		sh.memUsed -= ent.cost
		sh.memMapped -= ent.mapped
		sh.met.evictions.Add(1)
	}
}

// liveFor returns the dataset's streaming ingestion state, creating it
// on first use.
func (g *registry) liveFor(name string) *liveStream {
	g.livemu.Lock()
	defer g.livemu.Unlock()
	ls, ok := g.live[name]
	if !ok {
		ls = &liveStream{}
		g.live[name] = ls
	}
	return ls
}

// dropLive discards the dataset's streaming state (after a delete, or
// when the live engine diverged from disk).
func (g *registry) dropLive(name string) {
	g.livemu.Lock()
	delete(g.live, name)
	g.livemu.Unlock()
}

// catalogOptions is the engine configuration a catalog dataset's manifest
// implies: the paper's optimized defaults with the manifest's order
// threshold and smoothing window.
func catalogOptions(d *datasets.Dataset) core.Options {
	opts := core.DefaultOptions()
	opts.MaxOrder = d.MaxOrder
	opts.SmoothWindow = d.SmoothWindow
	return opts
}

// appendDelta ingests one batch of delta rows into a catalog dataset:
// the rows flow through the persistent incremental engine's O(delta)
// append path (relation → universe → restricted re-segmentation — the
// same three layers the streaming endpoint demonstrates), are persisted
// to the dataset's CSV, and a fresh immutable clone of the extended
// relation is published for pooled serving engines. The returned result
// is the refreshed segmentation over the extended series. The caller
// still owns triggering the background snapshot refresh.
func (g *registry) appendDelta(ctx context.Context, name string, timeVals []string, dims [][]string, measures [][]float64) (*core.Result, error) {
	ls := g.liveFor(name)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.inc == nil {
		d, err := g.dataset(name)
		if err != nil {
			return nil, err
		}
		// The incremental engine owns its relation: parse a private copy
		// from disk (the published entry's relation must stay immutable).
		rel, err := g.cat.LoadRelation(name)
		if err != nil {
			return nil, err
		}
		inc, _, err := core.NewIncrementalCtx(ctx, rel, core.Query{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
		}, catalogOptions(d))
		if err != nil {
			return nil, err
		}
		ls.inc = inc
	}
	// The relation layer orders NEW time labels by arrival, but a catalog
	// dataset's CSV reload sorts labels lexicographically — an unseen
	// label that sorts before the current tail would make the restarted
	// series disagree with the live one. Enforce lexicographic order for
	// catalog appends before any state mutates.
	rel := ls.inc.Engine().Universe().Relation()
	last := rel.TimeLabel(rel.NumTimestamps() - 1)
	maxSeen := last
	staged := make(map[string]bool)
	for i, tv := range timeVals {
		if tv == last || staged[tv] {
			continue
		}
		if tv > maxSeen {
			staged[tv] = true
			maxSeen = tv
			continue
		}
		return nil, httpErrf(http.StatusBadRequest,
			"row %d: timestamp %q does not extend the series (last %q, batch max %q); catalog time labels must be lexicographically non-decreasing",
			i, tv, last, maxSeen)
	}

	res, err := ls.inc.AppendRows(timeVals, dims, measures)
	if err != nil {
		// Remaining validation failures (revisions of pre-tail labels,
		// arity mismatches) leave the engine untouched; report as 400.
		return nil, httpErrf(http.StatusBadRequest, "%v", err)
	}
	// Persist the accepted delta. If the durable write fails, the live
	// engine is ahead of disk: drop it so the next append rebuilds from
	// the authoritative CSV, and surface the failure.
	if err := g.cat.AppendRows(name, timeVals, dims, measures); err != nil {
		ls.inc = nil
		g.dropLive(name)
		return nil, err
	}
	g.met.catalogAppendRows.Add(int64(len(timeVals)))

	// Publish the extended data for the serving path: drop every engine
	// and cached result built over the pre-append relation —
	// unconditionally, now that the delta is durable — then install a
	// fresh immutable clone so the next request doesn't re-parse the CSV
	// we just wrote. If the query shape can't be resolved, the
	// invalidation alone is still correct: the next request reloads from
	// the (post-append) CSV.
	d, derr := g.dataset(name) // pre-invalidation entry; only used for the query shape
	liveRel := ls.inc.Engine().Universe().Relation()
	g.invalidateDataset(name)
	if derr == nil {
		fresh := *d
		fresh.Rel = liveRel.Clone()
		g.publishDataset(name, &fresh)
	}
	return res, nil
}

// refreshSnapshot rebuilds the dataset's warm-restart snapshot in the
// background: parse the CSV, build the raw universe, save — with the
// pre-parse fingerprint, so a concurrent append aborts the save instead
// of publishing a stale snapshot as current. Refreshes coalesce: one
// worker per dataset, and a request arriving mid-run queues exactly one
// re-run (which then covers everything persisted before it started). The
// returned channel closes when the dataset's refresh work fully drains
// (the admin handlers expose it via ?wait=1; fire-and-forget callers
// ignore it).
func (g *registry) refreshSnapshot(name string) <-chan struct{} {
	done := make(chan struct{})
	if g.cat == nil || !g.snapshots || !g.isCatalogDataset(name) {
		close(done)
		return done
	}
	g.refreshMu.Lock()
	if j, running := g.refreshing[name]; running {
		j.queued = true
		j.waiters = append(j.waiters, done)
		g.refreshMu.Unlock()
		return done
	}
	j := &refreshJob{waiters: []chan struct{}{done}}
	g.refreshing[name] = j
	g.refreshMu.Unlock()
	go func() {
		for {
			g.snapshotNow(name)
			g.refreshMu.Lock()
			if j.queued {
				j.queued = false
				g.refreshMu.Unlock()
				continue
			}
			delete(g.refreshing, name)
			waiters := j.waiters
			g.refreshMu.Unlock()
			for _, w := range waiters {
				close(w)
			}
			return
		}
	}()
	return done
}

// snapshotNow is the refresh body; failures are logged, never fatal —
// the snapshot is an optimization, the CSV stays authoritative.
func (g *registry) snapshotNow(name string) {
	m, ok := g.cat.Manifest(name)
	if !ok {
		return
	}
	agg, err := m.AggFunc()
	if err != nil {
		return
	}
	fp, err := g.cat.DataFingerprint(name)
	if err != nil {
		log.Printf("catalog: snapshot refresh for %q: %v", name, err)
		return
	}
	start := time.Now()
	rel, err := g.cat.LoadRelation(name)
	if err != nil {
		log.Printf("catalog: snapshot refresh for %q: %v", name, err)
		return
	}
	u, err := explain.NewUniverse(rel, explain.Config{
		Measure: m.MeasureCol, Agg: agg, ExplainBy: m.ExplainBy, MaxOrder: m.EffectiveMaxOrder(),
	})
	if err != nil {
		log.Printf("catalog: snapshot refresh for %q: %v", name, err)
		return
	}
	if err := g.cat.SaveSnapshot(name, rel, u, fp); err != nil {
		if errors.Is(err, catalog.ErrSnapshotStale) {
			// A concurrent append won the race; its own refresh follows.
			return
		}
		log.Printf("catalog: snapshot refresh for %q: %v", name, err)
		return
	}
	g.met.snapshotSaves.Add(1)
	log.Printf("catalog: snapshot for %q refreshed in %v", name, time.Since(start).Round(time.Millisecond))
}

// gauges snapshots per-shard state for the /metrics scrape.
func (g *registry) gauges() []shardGauges {
	out := make([]shardGauges, len(g.shards))
	for i, sh := range g.shards {
		sh.mu.Lock()
		out[i] = shardGauges{
			engines:     sh.engines.len(),
			memBytes:    sh.memUsed,
			mappedBytes: sh.memMapped,
			results:     sh.results.len(),
			queueDepth:  sh.waiting.Load(),
			busy:        sh.busy.Load(),
		}
		sh.mu.Unlock()
	}
	return out
}

// resultEntries and engineEntries sum cache sizes across shards
// (observed by tests).
func (g *registry) resultEntries() int {
	n := 0
	for _, sh := range g.shards {
		sh.mu.Lock()
		n += sh.results.len()
		sh.mu.Unlock()
	}
	return n
}

func (g *registry) engineEntries() int {
	n := 0
	for _, sh := range g.shards {
		sh.mu.Lock()
		n += sh.engines.len()
		sh.mu.Unlock()
	}
	return n
}
