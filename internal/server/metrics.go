package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// metrics is the server's observability spine: request counters and
// latency histograms per endpoint, cache/singleflight/eviction counters,
// and load-shedding totals, exported in Prometheus text format from
// /metrics without any dependency beyond the standard library. Gauges
// (pool occupancy, queue depth, memory use) are read from the registry at
// scrape time rather than tracked here.
type metrics struct {
	mu       sync.Mutex
	reqCount map[string]map[int]int64 // endpoint -> status code -> count
	latency  map[string]*latencyHist  // endpoint -> histogram (seconds)

	cacheHits     atomic.Int64 // result-cache hits
	cacheMisses   atomic.Int64 // result-cache misses (explain computed or deduped)
	dedups        atomic.Int64 // singleflight waiters served by another request's compute
	evictions     atomic.Int64 // engines evicted under the memory budget
	datasetLoads  atomic.Int64 // lazy dataset materializations
	shedQueueFull atomic.Int64 // requests rejected with 429 (queue full)
	shedDeadline  atomic.Int64 // requests failed with 503 (deadline/cancel)

	// Degradation counters: approx-eligible requests that hit overload and
	// were served a coarser bounded answer instead of being shed.
	degradedQueueFull atomic.Int64 // degraded after a full admission queue
	degradedDeadline  atomic.Int64 // degraded after a deadline/cancellation

	// Progressive-stream counters: refinement rounds delivered, plus a
	// per-round latency histogram (under mu).
	progressiveRounds  atomic.Int64
	progressiveRoundsH latencyHist

	// Async job counters, by lifecycle event.
	jobsSubmitted atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsExpired   atomic.Int64 // jobs removed by the TTL sweeper

	// Catalog admin-path counters.
	catalogUploads    atomic.Int64 // datasets created through POST /api/datasets
	catalogDeletes    atomic.Int64 // datasets removed through DELETE /api/datasets/{name}
	catalogAppendRows atomic.Int64 // delta rows ingested through the append endpoint
	catalogEvictions  atomic.Int64 // engines dropped by dataset invalidation (delete/append)

	// Warm-restart snapshot counters.
	snapshotRelRestores  atomic.Int64 // dataset relations restored from snapshot
	snapshotEngRestores  atomic.Int64 // engines built from a snapshot universe
	snapshotMmapRestores atomic.Int64 // engine restores serving the candidate arena off a memory-mapped snapshot
	snapshotFallbacks    atomic.Int64 // snapshot loads that failed (stale/corrupt) and fell back to rebuild
	snapshotSaves        atomic.Int64 // snapshots written by the background refresher

	// Approximate-mode counters: requests served in mode=approx, and a
	// histogram of the reported per-request MaxErrBound (observed once per
	// computed result, under mu).
	approxRequests atomic.Int64
	approxErrHist  latencyHist
}

// approxErrBuckets are the error-bound histogram upper bounds, spanning
// "provably exact" through the 0.05 default to badly truncated runs.
var approxErrBuckets = []float64{0, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}

// observeApproxErr records one computed approximate result's reported
// error bound.
func (m *metrics) observeApproxErr(bound float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.approxErrHist.buckets == nil {
		m.approxErrHist.buckets = make([]int64, len(approxErrBuckets))
	}
	for i, ub := range approxErrBuckets {
		if bound <= ub {
			m.approxErrHist.buckets[i]++
		}
	}
	m.approxErrHist.count++
	m.approxErrHist.sum += bound
}

// observeProgressiveRound records one delivered refinement round and its
// latency (seconds since the previous round, or since stream start for
// the first).
func (m *metrics) observeProgressiveRound(seconds float64) {
	m.progressiveRounds.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.progressiveRoundsH.buckets == nil {
		m.progressiveRoundsH.buckets = make([]int64, len(latencyBuckets))
	}
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			m.progressiveRoundsH.buckets[i]++
		}
	}
	m.progressiveRoundsH.count++
	m.progressiveRoundsH.sum += seconds
}

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// sub-millisecond warm-cache path to multi-second cold builds.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type latencyHist struct {
	buckets []int64 // one counter per latencyBuckets entry
	count   int64
	sum     float64
}

func newMetrics() *metrics {
	return &metrics{
		reqCount: make(map[string]map[int]int64),
		latency:  make(map[string]*latencyHist),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.reqCount[endpoint]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.reqCount[endpoint] = byCode
	}
	byCode[code]++
	h := m.latency[endpoint]
	if h == nil {
		h = &latencyHist{buckets: make([]int64, len(latencyBuckets))}
		m.latency[endpoint] = h
	}
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.buckets[i]++
		}
	}
	h.count++
	h.sum += seconds
}

// shardGauges is one shard's point-in-time state, read at scrape.
type shardGauges struct {
	engines     int   // pooled engines resident
	memBytes    int64 // estimated heap bytes used by resident engines
	mappedBytes int64 // kernel-evictable snapshot-mapping bytes read by engines
	queueDepth  int64 // requests waiting for a worker slot
	busy        int64 // worker slots in use
	results     int   // result-cache entries
}

// write renders everything in Prometheus text exposition format.
func (m *metrics) write(w io.Writer, shards []shardGauges) {
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.reqCount))
	for ep := range m.reqCount {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)

	fmt.Fprintln(w, "# HELP tsexplain_http_requests_total Finished HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE tsexplain_http_requests_total counter")
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.reqCount[ep]))
		for c := range m.reqCount[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "tsexplain_http_requests_total{endpoint=%q,code=%q} %d\n",
				ep, strconv.Itoa(c), m.reqCount[ep][c])
		}
	}

	fmt.Fprintln(w, "# HELP tsexplain_http_request_duration_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE tsexplain_http_request_duration_seconds histogram")
	hists := make([]string, 0, len(m.latency))
	for ep := range m.latency {
		hists = append(hists, ep)
	}
	sort.Strings(hists)
	for _, ep := range hists {
		h := m.latency[ep]
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "tsexplain_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(ub, 'g', -1, 64), h.buckets[i])
		}
		fmt.Fprintf(w, "tsexplain_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.count)
		fmt.Fprintf(w, "tsexplain_http_request_duration_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "tsexplain_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}

	fmt.Fprintln(w, "# HELP tsexplain_progressive_round_seconds Latency of delivered progressive refinement rounds.")
	fmt.Fprintln(w, "# TYPE tsexplain_progressive_round_seconds histogram")
	ph := m.progressiveRoundsH
	for i, ub := range latencyBuckets {
		var v int64
		if ph.buckets != nil {
			v = ph.buckets[i]
		}
		fmt.Fprintf(w, "tsexplain_progressive_round_seconds_bucket{le=%q} %d\n",
			strconv.FormatFloat(ub, 'g', -1, 64), v)
	}
	fmt.Fprintf(w, "tsexplain_progressive_round_seconds_bucket{le=\"+Inf\"} %d\n", ph.count)
	fmt.Fprintf(w, "tsexplain_progressive_round_seconds_sum %g\n", ph.sum)
	fmt.Fprintf(w, "tsexplain_progressive_round_seconds_count %d\n", ph.count)

	fmt.Fprintln(w, "# HELP tsexplain_approx_error_bound Reported per-request attribution-error bound of computed approximate explains.")
	fmt.Fprintln(w, "# TYPE tsexplain_approx_error_bound histogram")
	eh := m.approxErrHist
	for i, ub := range approxErrBuckets {
		var v int64
		if eh.buckets != nil {
			v = eh.buckets[i]
		}
		fmt.Fprintf(w, "tsexplain_approx_error_bound_bucket{le=%q} %d\n",
			strconv.FormatFloat(ub, 'g', -1, 64), v)
	}
	fmt.Fprintf(w, "tsexplain_approx_error_bound_bucket{le=\"+Inf\"} %d\n", eh.count)
	fmt.Fprintf(w, "tsexplain_approx_error_bound_sum %g\n", eh.sum)
	fmt.Fprintf(w, "tsexplain_approx_error_bound_count %d\n", eh.count)
	m.mu.Unlock()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("tsexplain_approx_requests_total", "Explain requests served in approximate mode (mode=approx).", m.approxRequests.Load())
	counter("tsexplain_result_cache_hits_total", "Explain results served from the result cache.", m.cacheHits.Load())
	counter("tsexplain_result_cache_misses_total", "Explain requests that missed the result cache.", m.cacheMisses.Load())
	counter("tsexplain_singleflight_dedup_total", "Requests that waited on another request's in-flight compute.", m.dedups.Load())
	counter("tsexplain_engine_evictions_total", "Engines evicted to stay within the memory budget.", m.evictions.Load())
	counter("tsexplain_dataset_loads_total", "Datasets materialized lazily on first request.", m.datasetLoads.Load())
	counter("tsexplain_catalog_uploads_total", "Datasets created through the catalog upload endpoint.", m.catalogUploads.Load())
	counter("tsexplain_catalog_deletes_total", "Datasets removed through the catalog delete endpoint.", m.catalogDeletes.Load())
	counter("tsexplain_catalog_append_rows_total", "Delta rows ingested through the catalog append endpoint.", m.catalogAppendRows.Load())
	counter("tsexplain_catalog_evictions_total", "Engines dropped by dataset invalidation after a delete or append.", m.catalogEvictions.Load())
	fmt.Fprintln(w, "# HELP tsexplain_snapshot_restores_total Warm-restart snapshot restores, by kind.")
	fmt.Fprintln(w, "# TYPE tsexplain_snapshot_restores_total counter")
	fmt.Fprintf(w, "tsexplain_snapshot_restores_total{kind=\"relation\"} %d\n", m.snapshotRelRestores.Load())
	fmt.Fprintf(w, "tsexplain_snapshot_restores_total{kind=\"engine\"} %d\n", m.snapshotEngRestores.Load())
	fmt.Fprintf(w, "tsexplain_snapshot_restores_total{kind=\"engine_mmap\"} %d\n", m.snapshotMmapRestores.Load())
	counter("tsexplain_snapshot_fallbacks_total", "Snapshot loads that failed validation and fell back to a rebuild.", m.snapshotFallbacks.Load())
	counter("tsexplain_snapshot_saves_total", "Warm-restart snapshots written by the background refresher.", m.snapshotSaves.Load())
	fmt.Fprintln(w, "# HELP tsexplain_shed_total Requests shed by admission control, by reason.")
	fmt.Fprintln(w, "# TYPE tsexplain_shed_total counter")
	fmt.Fprintf(w, "tsexplain_shed_total{reason=\"queue_full\"} %d\n", m.shedQueueFull.Load())
	fmt.Fprintf(w, "tsexplain_shed_total{reason=\"deadline\"} %d\n", m.shedDeadline.Load())
	fmt.Fprintln(w, "# HELP tsexplain_degraded_total Overloaded requests served a degraded bounded answer instead of being shed, by trigger.")
	fmt.Fprintln(w, "# TYPE tsexplain_degraded_total counter")
	fmt.Fprintf(w, "tsexplain_degraded_total{reason=\"queue_full\"} %d\n", m.degradedQueueFull.Load())
	fmt.Fprintf(w, "tsexplain_degraded_total{reason=\"deadline\"} %d\n", m.degradedDeadline.Load())
	counter("tsexplain_progressive_rounds_total", "Refinement rounds delivered over progressive explain streams.", m.progressiveRounds.Load())
	fmt.Fprintln(w, "# HELP tsexplain_jobs_total Async explain jobs, by lifecycle event.")
	fmt.Fprintln(w, "# TYPE tsexplain_jobs_total counter")
	fmt.Fprintf(w, "tsexplain_jobs_total{event=\"submitted\"} %d\n", m.jobsSubmitted.Load())
	fmt.Fprintf(w, "tsexplain_jobs_total{event=\"completed\"} %d\n", m.jobsCompleted.Load())
	fmt.Fprintf(w, "tsexplain_jobs_total{event=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "tsexplain_jobs_total{event=\"expired\"} %d\n", m.jobsExpired.Load())

	gauge := func(name, help string, per func(shardGauges) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for i, g := range shards {
			fmt.Fprintf(w, "%s{shard=%q} %d\n", name, strconv.Itoa(i), per(g))
		}
	}
	gauge("tsexplain_engine_pool_engines", "Pooled engines resident per shard.",
		func(g shardGauges) int64 { return int64(g.engines) })
	gauge("tsexplain_engine_pool_bytes", "Estimated heap-resident bytes held by pooled engines per shard (charged against the memory budget).",
		func(g shardGauges) int64 { return g.memBytes })
	gauge("tsexplain_engine_pool_mapped_bytes", "Kernel-evictable snapshot-mapping bytes read by pooled engines per shard (not charged against the memory budget).",
		func(g shardGauges) int64 { return g.mappedBytes })
	gauge("tsexplain_queue_depth", "Requests waiting for a worker slot per shard.",
		func(g shardGauges) int64 { return g.queueDepth })
	gauge("tsexplain_workers_busy", "Worker slots in use per shard.",
		func(g shardGauges) int64 { return g.busy })
	gauge("tsexplain_result_cache_entries", "Result-cache entries per shard.",
		func(g shardGauges) int64 { return int64(g.results) })
}
