package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

// handleStream demonstrates the real-time extension end to end: it
// replays the chosen dataset through the incremental append path, feeding
// the engine one batch of timestamps at a time, and streams one NDJSON
// line per update with the refreshed segmentation and the update's
// latency — each update costs O(delta), not O(history).
//
//	GET /api/stream?dataset=stream&start=60&step=1
//
// start is the number of timestamps explained up front (default: half the
// series); step is how many timestamps each update appends (default 1).
// The usual dataset/smooth/vanilla/k parameters apply.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	p, err := s.parseParams(r)
	if err != nil {
		writeError(w, err)
		return
	}
	// The whole replay holds one worker slot: a streaming client is a
	// long-lived compute consumer, and admission must see it as such.
	sh := s.reg.shardFor(p.dataset)
	release, err := sh.admit(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	d, err := s.reg.dataset(p.dataset)
	if err != nil {
		writeError(w, err)
		return
	}
	n := d.Rel.NumTimestamps()
	start := n / 2
	if start < 2 {
		start = 2
	}
	q := r.URL.Query()
	if v := q.Get("start"); v != "" {
		if start, err = strconv.Atoi(v); err != nil || start < 2 || start >= n {
			writeError(w, httpErrf(http.StatusBadRequest, "bad start %q (want 2..%d)", v, n-1))
			return
		}
	}
	step := 1
	if v := q.Get("step"); v != "" {
		if step, err = strconv.Atoi(v); err != nil || step < 1 {
			writeError(w, httpErrf(http.StatusBadRequest, "bad step %q", v))
			return
		}
	}

	byTime := d.Rel.RowsByTime()
	prefix, err := prefixRelation(d.Rel, byTime, start)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	opts := p.options(d)
	opts.K = p.k
	buildStart := time.Now()
	inc, res, err := core.NewIncrementalCtx(r.Context(), prefix, core.Query{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
	}, opts)
	if err != nil {
		writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeUpdate := func(u streamUpdate) {
		_ = enc.Encode(u)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeUpdate(newStreamUpdate(d.Rel, res, start, time.Since(buildStart), true))

	for t := start; t < n; t += step {
		// Stop replaying into a dead connection or past the request
		// deadline — a client that hung up must not keep the server
		// computing updates to completion. The headers already went out
		// as 200, so a deadline-truncated replay is marked with a final
		// NDJSON error line instead of silently looking complete.
		if err := r.Context().Err(); err != nil {
			writeUpdate(streamUpdate{Error: "replay aborted: " + err.Error()})
			return
		}
		hi := t + step
		if hi > n {
			hi = n
		}
		timeVals, dims, measures := d.Rel.RowBatch(byTime, t, hi)
		upStart := time.Now()
		res, err = inc.AppendRows(timeVals, dims, measures)
		if err != nil {
			writeUpdate(streamUpdate{Error: err.Error()})
			return
		}
		writeUpdate(newStreamUpdate(d.Rel, res, hi, time.Since(upStart), false))
	}
}

// streamUpdate is one NDJSON line of /api/stream.
type streamUpdate struct {
	Day     string   `json:"day,omitempty"`
	N       int      `json:"n,omitempty"`
	Initial bool     `json:"initial,omitempty"`
	K       int      `json:"k,omitempty"`
	Cuts    []int    `json:"cuts,omitempty"`
	Top     []string `json:"top,omitempty"`
	Ms      float64  `json:"ms"`
	Error   string   `json:"error,omitempty"`
}

func newStreamUpdate(rel *relation.Relation, res *core.Result, n int, took time.Duration, initial bool) streamUpdate {
	u := streamUpdate{
		Day:     rel.TimeLabel(n - 1),
		N:       n,
		Initial: initial,
		K:       res.K,
		Cuts:    res.Cuts(),
		Ms:      ms(took),
	}
	if len(res.Segments) > 0 {
		last := res.Segments[len(res.Segments)-1]
		for _, e := range last.Top {
			u.Top = append(u.Top, fmt.Sprintf("%s (%s)", e.Predicates, e.Effect))
		}
	}
	return u
}

// prefixRelation materializes the first n timestamps of rel through the
// Builder path, yielding the stream's starting snapshot.
func prefixRelation(rel *relation.Relation, byTime [][]int, n int) (*relation.Relation, error) {
	labels := rel.TimeLabels()[:n]
	b := relation.NewBuilder(rel.Name()+"-stream", rel.TimeName(), rel.DimNames(), rel.MeasureNames())
	b.SetTimeOrder(labels)
	timeVals, dims, measures := rel.RowBatch(byTime, 0, n)
	for i := range timeVals {
		if err := b.Append(timeVals[i], dims[i], measures[i]); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}
