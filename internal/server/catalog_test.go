package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// catalogTestCSV is a small dataset with a clear driver structure: NY
// drives the ramp, CA stays flat.
func catalogTestCSV(days int) string {
	var b strings.Builder
	b.WriteString("day,state,county,cases\n")
	for d := 1; d <= days; d++ {
		ny := 10
		if d > days/2 {
			ny = 10 + 20*(d-days/2)
		}
		fmt.Fprintf(&b, "2021-03-%02d,NY,kings,%d\n", d, ny)
		fmt.Fprintf(&b, "2021-03-%02d,NY,queens,%d\n", d, ny/2)
		fmt.Fprintf(&b, "2021-03-%02d,CA,la,8\n", d)
	}
	return b.String()
}

const catalogTestManifest = `{
  "name": "mydata",
  "aliases": ["md", "mine"],
  "timeCol": "day",
  "dimCols": ["state", "county"],
  "measureCol": "cases",
  "agg": "SUM",
  "maxOrder": 2
}`

func newCatalogServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := Open(Config{Shards: 2, WorkersPerShard: 2, QueueDepth: 8, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// upload posts a multipart dataset (manifest JSON + CSV) and returns the
// recorder. wait=1 blocks until the snapshot refresh lands, so a restart
// immediately after upload finds a snapshot.
func upload(t *testing.T, s *Server, manifest, csvData string, wait bool) *httptest.ResponseRecorder {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	fw, err := mw.CreateFormField("manifest")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write([]byte(manifest)); err != nil {
		t.Fatal(err)
	}
	cw, err := mw.CreateFormFile("csv", "data.csv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write([]byte(csvData)); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	url := "/api/datasets"
	if wait {
		url += "?wait=1"
	}
	req := httptest.NewRequest("POST", url, &body)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func appendNDJSON(t *testing.T, s *Server, dataset, ndjson string, wait bool) *httptest.ResponseRecorder {
	t.Helper()
	url := "/api/datasets/" + dataset + "/append"
	if wait {
		url += "?wait=1"
	}
	req := httptest.NewRequest("POST", url, strings.NewReader(ndjson))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestCatalogUploadExplainDelete(t *testing.T) {
	dir := t.TempDir()
	s := newCatalogServer(t, dir)

	// Admin API is disabled without a data dir.
	noCat := New()
	if rec := upload(t, noCat, catalogTestManifest, catalogTestCSV(10), false); rec.Code != 403 {
		t.Fatalf("upload without data dir: %d", rec.Code)
	}

	rec := upload(t, s, catalogTestManifest, catalogTestCSV(12), false)
	if rec.Code != 201 {
		t.Fatalf("upload: %d: %s", rec.Code, rec.Body.String())
	}
	var created struct {
		Dataset    string `json:"dataset"`
		Rows       int    `json:"rows"`
		Timestamps int    `json:"timestamps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Dataset != "mydata" || created.Rows != 36 || created.Timestamps != 12 {
		t.Fatalf("created = %+v", created)
	}

	// Listed alongside the built-ins.
	var listing struct {
		Datasets []string `json:"datasets"`
		Catalog  []string `json:"catalog"`
	}
	if err := json.Unmarshal(get(t, s, "/api/datasets").Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Catalog) != 1 || listing.Catalog[0] != "mydata" {
		t.Fatalf("catalog listing = %v", listing.Catalog)
	}

	// Explain the uploaded dataset; NY should surface as the driver of
	// the later segment.
	erec := get(t, s, "/api/explain?dataset=mydata")
	if erec.Code != 200 {
		t.Fatalf("explain: %d: %s", erec.Code, erec.Body.String())
	}
	var res explainResponse
	if err := json.Unmarshal(erec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) < 2 {
		t.Fatalf("segments = %d, want >= 2", len(res.Segments))
	}
	last := res.Segments[len(res.Segments)-1]
	if len(last.Top) == 0 || !strings.Contains(last.Top[0].Predicates, "state=NY") {
		t.Fatalf("last segment top = %+v, want state=NY driver", last.Top)
	}

	// Slice and diff work on catalog datasets through the adhoc engine.
	if rec := get(t, s, "/api/slice?dataset=mydata&expr=state=NY"); rec.Code != 200 {
		t.Fatalf("slice: %d: %s", rec.Code, rec.Body.String())
	}

	// Duplicate upload: 409.
	if rec := upload(t, s, catalogTestManifest, catalogTestCSV(12), false); rec.Code != 409 {
		t.Fatalf("duplicate upload: %d", rec.Code)
	}
	// Reserved name: 400.
	reserved := strings.Replace(catalogTestManifest, `"mydata"`, `"liquor"`, 1)
	if rec := upload(t, s, reserved, catalogTestCSV(10), false); rec.Code != 400 {
		t.Fatalf("reserved-name upload: %d", rec.Code)
	}

	// Delete; the dataset stops resolving and its engines are gone.
	req := httptest.NewRequest("DELETE", "/api/datasets/mydata", nil)
	drec := httptest.NewRecorder()
	s.ServeHTTP(drec, req)
	if drec.Code != 200 {
		t.Fatalf("delete: %d: %s", drec.Code, drec.Body.String())
	}
	if rec := get(t, s, "/api/explain?dataset=mydata"); rec.Code != 404 {
		t.Fatalf("explain after delete: %d", rec.Code)
	}
	if n := s.reg.engineEntries(); n != 0 {
		t.Fatalf("engines after delete: %d, want 0", n)
	}
	if rec := get(t, s, "/api/datasets"); strings.Contains(rec.Body.String(), "mydata") {
		t.Fatal("deleted dataset still listed")
	}
	// Deleting a built-in is refused.
	req = httptest.NewRequest("DELETE", "/api/datasets/covid", nil)
	drec = httptest.NewRecorder()
	s.ServeHTTP(drec, req)
	if drec.Code != 400 {
		t.Fatalf("delete built-in: %d", drec.Code)
	}
}

func TestCatalogManifestAliases(t *testing.T) {
	s := newCatalogServer(t, t.TempDir())
	if rec := upload(t, s, catalogTestManifest, catalogTestCSV(10), false); rec.Code != 201 {
		t.Fatalf("upload: %d", rec.Code)
	}
	canonical := get(t, s, "/api/explain?dataset=mydata")
	if canonical.Code != 200 {
		t.Fatalf("canonical explain: %d", canonical.Code)
	}
	computesAfterCanonical := s.reg.computes.Load()
	for _, alias := range []string{"md", "mine"} {
		rec := get(t, s, "/api/explain?dataset="+alias)
		if rec.Code != 200 {
			t.Fatalf("alias %q explain: %d", alias, rec.Code)
		}
		var a, c explainResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(canonical.Body.Bytes(), &c); err != nil {
			t.Fatal(err)
		}
		// Latency differs between computed and cached responses; compare
		// everything else.
		a.Latency, c.Latency = latencyBreakdown{}, latencyBreakdown{}
		if !reflect.DeepEqual(a, c) {
			t.Fatalf("alias %q result differs from canonical", alias)
		}
	}
	// The aliases hit the canonical cache entry: no extra computes ran.
	if n := s.reg.computes.Load(); n != computesAfterCanonical {
		t.Fatalf("aliases recomputed: %d computes, want %d", n, computesAfterCanonical)
	}
	// The alias dataset name in the response is canonical (one cache key).
	if n := s.reg.resultEntries(); n != 1 {
		t.Fatalf("result entries = %d, want 1 shared across aliases", n)
	}
}

func TestCatalogAppendFlow(t *testing.T) {
	s := newCatalogServer(t, t.TempDir())
	if rec := upload(t, s, catalogTestManifest, catalogTestCSV(12), false); rec.Code != 201 {
		t.Fatalf("upload: %d", rec.Code)
	}
	// Warm the serving path.
	if rec := get(t, s, "/api/explain?dataset=mydata"); rec.Code != 200 {
		t.Fatalf("explain: %d", rec.Code)
	}

	// Append two new days, including a brand-new state (dictionary
	// growth through the streaming path).
	delta := `{"time":"2021-03-13","dims":{"state":"NY","county":"kings"},"measure":140}
{"time":"2021-03-13","dims":{"state":"FL","county":"dade"},"measure":60}
{"time":"2021-03-14","dims":{"state":"NY","county":"kings"},"measure":150}
{"time":"2021-03-14","dims":{"state":"FL","county":"dade"},"measure":80}
`
	rec := appendNDJSON(t, s, "mydata", delta, false)
	if rec.Code != 200 {
		t.Fatalf("append: %d: %s", rec.Code, rec.Body.String())
	}
	var ap struct {
		Rows int   `json:"rows"`
		N    int   `json:"n"`
		Cuts []int `json:"cuts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ap); err != nil {
		t.Fatal(err)
	}
	if ap.Rows != 4 || ap.N != 14 {
		t.Fatalf("append response = %+v, want 4 rows over 14 days", ap)
	}

	// The serving path sees the appended days and the new FL slice.
	erec := get(t, s, "/api/explain?dataset=mydata")
	var res explainResponse
	if err := json.Unmarshal(erec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if got := res.Segments[len(res.Segments)-1].End; got != "2021-03-14" {
		t.Fatalf("explain after append ends at %q, want 2021-03-14", got)
	}
	if rec := get(t, s, "/api/slice?dataset=mydata&expr=state=FL"); rec.Code != 200 {
		t.Fatalf("FL slice after append: %d: %s", rec.Code, rec.Body.String())
	}

	// Rows before the last timestamp are rejected and change nothing.
	bad := `{"time":"2021-03-01","dims":{"state":"NY","county":"kings"},"measure":1}` + "\n"
	if rec := appendNDJSON(t, s, "mydata", bad, false); rec.Code != 400 {
		t.Fatalf("past-append: %d: %s", rec.Code, rec.Body.String())
	}
	// An UNSEEN label that sorts before the tail is just as invalid: the
	// relation layer would order it by arrival, but the CSV reload sorts
	// lexicographically — accepting it would make a restarted series
	// disagree with the live one.
	bad = `{"time":"2020-12-31","dims":{"state":"NY","county":"kings"},"measure":1}` + "\n"
	if rec := appendNDJSON(t, s, "mydata", bad, false); rec.Code != 400 {
		t.Fatalf("unseen-past append: %d: %s", rec.Code, rec.Body.String())
	}
	// Out-of-order new labels within one batch are rejected for the same
	// reason (2021-03-16 staged, then 2021-03-15 would land after it in
	// arrival order but before it after a reload).
	bad = `{"time":"2021-03-16","dims":{"state":"NY","county":"kings"},"measure":1}` + "\n" +
		`{"time":"2021-03-15","dims":{"state":"NY","county":"kings"},"measure":1}` + "\n"
	if rec := appendNDJSON(t, s, "mydata", bad, false); rec.Code != 400 {
		t.Fatalf("out-of-order batch append: %d: %s", rec.Code, rec.Body.String())
	}
	// The rejected batches left no trace: the series still ends at the
	// last good append.
	if rec := get(t, s, "/api/explain?dataset=mydata"); !strings.Contains(rec.Body.String(), "2021-03-14") {
		t.Fatalf("rejected appends disturbed the series: %s", rec.Body.String())
	}
	// Malformed rows: missing dims, unknown fields, empty body.
	for _, b := range []string{
		`{"time":"2021-03-15","measure":1}` + "\n",
		`{"time":"2021-03-15","dims":{"state":"NY","county":"kings"},"measure":1,"nope":2}` + "\n",
		"",
	} {
		if rec := appendNDJSON(t, s, "mydata", b, false); rec.Code != 400 {
			t.Fatalf("bad append body %q: %d", b, rec.Code)
		}
	}
	// Appending to a built-in or unknown dataset fails cleanly.
	if rec := appendNDJSON(t, s, "covid", delta, false); rec.Code != 400 {
		t.Fatalf("append to built-in: %d", rec.Code)
	}
	if rec := appendNDJSON(t, s, "nope", delta, false); rec.Code != 404 {
		t.Fatalf("append to unknown: %d", rec.Code)
	}
}

// TestCatalogWarmRestart uploads with a synchronous snapshot refresh,
// then opens a second server over the same data dir and asserts the
// dataset and its engines restore from the snapshot — and that the
// explanations match the first server's bit for bit.
func TestCatalogWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newCatalogServer(t, dir)
	if rec := upload(t, s1, catalogTestManifest, catalogTestCSV(12), true); rec.Code != 201 {
		t.Fatalf("upload: %d", rec.Code)
	}
	first := get(t, s1, "/api/explain?dataset=mydata")
	if first.Code != 200 {
		t.Fatalf("first explain: %d", first.Code)
	}

	// "Restart": a fresh server over the same directory.
	s2 := newCatalogServer(t, dir)
	second := get(t, s2, "/api/explain?dataset=mydata")
	if second.Code != 200 {
		t.Fatalf("post-restart explain: %d: %s", second.Code, second.Body.String())
	}
	var a, b explainResponse
	if err := json.Unmarshal(first.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	a.Latency, b.Latency = latencyBreakdown{}, latencyBreakdown{}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("post-restart explanations differ from pre-restart")
	}
	if n := s2.met.snapshotRelRestores.Load(); n < 1 {
		t.Fatalf("relation snapshot restores = %d, want >= 1", n)
	}
	if n := s2.met.snapshotEngRestores.Load(); n < 1 {
		t.Fatalf("engine snapshot restores = %d, want >= 1", n)
	}
	// The restore counters surface on /metrics for the smoke script.
	if body := get(t, s2, "/metrics").Body.String(); !strings.Contains(body, `tsexplain_snapshot_restores_total{kind="engine"} 1`) {
		t.Fatal("metrics missing snapshot restore counter")
	}

	// With snapshots disabled, the same directory still serves — via the
	// CSV rebuild path — and no restore is counted.
	s3, err := Open(Config{DataDir: dir, DisableSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, s3, "/api/explain?dataset=mydata"); rec.Code != 200 {
		t.Fatalf("snapshot-disabled explain: %d", rec.Code)
	}
	if n := s3.met.snapshotRelRestores.Load() + s3.met.snapshotEngRestores.Load(); n != 0 {
		t.Fatalf("snapshot restores with snapshots disabled: %d", n)
	}
}

// TestCatalogSnapshotStaleAfterOfflineAppend covers the fallback: rows
// appended while the snapshot existed (fingerprint mismatch) must force a
// CSV rebuild that sees the new rows, not a stale restore.
func TestCatalogSnapshotStaleAfterOfflineAppend(t *testing.T) {
	dir := t.TempDir()
	s1 := newCatalogServer(t, dir)
	if rec := upload(t, s1, catalogTestManifest, catalogTestCSV(12), true); rec.Code != 201 {
		t.Fatalf("upload: %d", rec.Code)
	}
	// Append WITHOUT waiting for the snapshot refresh on a throwaway
	// server, then immediately restart: the snapshot on disk may predate
	// the append, and the fingerprint must catch it.
	if rec := appendNDJSON(t, s1, "mydata",
		`{"time":"2021-03-13","dims":{"state":"NY","county":"kings"},"measure":999}`+"\n", false); rec.Code != 200 {
		t.Fatalf("append: %d", rec.Code)
	}

	s2 := newCatalogServer(t, dir)
	rec := get(t, s2, "/api/explain?dataset=mydata")
	if rec.Code != 200 {
		t.Fatalf("explain: %d", rec.Code)
	}
	var res explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if got := res.Segments[len(res.Segments)-1].End; got != "2021-03-13" {
		t.Fatalf("post-restart series ends at %q, want the appended 2021-03-13", got)
	}
}

// TestCatalogConcurrentUploadWhileExplaining drives uploads, appends,
// explains, slices, and deletes concurrently (run under -race in CI).
func TestCatalogConcurrentUploadWhileExplaining(t *testing.T) {
	s := newCatalogServer(t, t.TempDir())
	if rec := upload(t, s, catalogTestManifest, catalogTestCSV(12), false); rec.Code != 201 {
		t.Fatalf("seed upload: %d", rec.Code)
	}

	var wg sync.WaitGroup
	// Explainers and slicers hammer the dataset across the mutations.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 15; j++ {
				rec := get(t, s, "/api/explain?dataset=mydata&k=2")
				if rec.Code != 200 && rec.Code != 404 && rec.Code != 429 && rec.Code != 503 {
					t.Errorf("explain status %d: %s", rec.Code, rec.Body.String())
					return
				}
				get(t, s, "/api/slice?dataset=mydata")
			}
		}()
	}
	// One appender extends the series.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := 13; d < 20; d++ {
			body := fmt.Sprintf(`{"time":"2021-03-%02d","dims":{"state":"NY","county":"kings"},"measure":%d}`+"\n", d, 100+d)
			rec := appendNDJSON(t, s, "mydata", body, false)
			if rec.Code != 200 && rec.Code != 429 && rec.Code != 503 {
				t.Errorf("append status %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	// Other datasets come and go concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			mf := fmt.Sprintf(`{"name":"scratch%d","timeCol":"day","dimCols":["state","county"],"measureCol":"cases"}`, i)
			if rec := upload(t, s, mf, catalogTestCSV(8), false); rec.Code != 201 {
				t.Errorf("scratch upload: %d", rec.Code)
				return
			}
			get(t, s, fmt.Sprintf("/api/explain?dataset=scratch%d", i))
			req := httptest.NewRequest("DELETE", fmt.Sprintf("/api/datasets/scratch%d", i), nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Errorf("scratch delete: %d", rec.Code)
				return
			}
		}
	}()
	wg.Wait()

	// The dataset is intact and serves the final appended day.
	rec := get(t, s, "/api/explain?dataset=mydata")
	if rec.Code != 200 {
		t.Fatalf("final explain: %d", rec.Code)
	}
	var res explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if got := res.Segments[len(res.Segments)-1].End; got != "2021-03-19" {
		t.Fatalf("final series ends at %q, want 2021-03-19", got)
	}
}
