package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/relation"
)

// This file implements the catalog admin surface — the bring-your-own-
// data API:
//
//	POST   /api/datasets               multipart upload: "manifest" (JSON)
//	                                   + "csv" (file) → dataset created
//	DELETE /api/datasets/{name}        dataset removed, engines evicted
//	POST   /api/datasets/{name}/append NDJSON delta rows → O(delta)
//	                                   streaming ingestion
//
// All three require a catalog (-data-dir); without one they return 403.
// Upload and append accept ?wait=1 to block until the background
// warm-restart snapshot refresh finishes — tests and scripted restarts
// use it; interactive callers get the response as soon as the durable
// CSV write lands.

// uploadLimitBytes bounds one multipart upload (manifest + CSV).
const uploadLimitBytes = 256 << 20

// appendLimitBytes bounds one NDJSON append batch.
const appendLimitBytes = 64 << 20

// errNoCatalog is returned by the admin endpoints on a server running
// without -data-dir.
func errNoCatalog() error {
	return httpErrf(http.StatusForbidden, "this server runs without a data directory (-data-dir); the dataset admin API is disabled")
}

// handleDatasetUpload serves POST /api/datasets: a multipart form with a
// "manifest" part (the catalog.Manifest JSON) and a "csv" part (the data,
// header row required). The CSV is parsed through the manifest before
// anything is written — a bad upload fails with 400 and leaves no trace —
// and the dataset is written atomically, published to the registry, and
// snapshotted in the background.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	if s.reg.cat == nil {
		writeError(w, errNoCatalog())
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, uploadLimitBytes)
	mr, err := r.MultipartReader()
	if err != nil {
		writeError(w, httpErrf(http.StatusBadRequest, "expected a multipart upload: %v", err))
		return
	}
	var manifest *catalog.Manifest
	var rel *relation.Relation
	// Parts must arrive manifest-first so the CSV can stream straight
	// into the parser without buffering the whole file.
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, httpErrf(http.StatusBadRequest, "reading upload: %v", err))
			return
		}
		switch part.FormName() {
		case "manifest":
			m, err := readManifestPart(part)
			if err != nil {
				writeError(w, httpErrf(http.StatusBadRequest, "%v", err))
				return
			}
			manifest = m
		case "csv":
			if manifest == nil {
				writeError(w, httpErrf(http.StatusBadRequest, "the manifest part must precede the csv part"))
				return
			}
			created, err := s.reg.cat.Create(*manifest, part)
			if err != nil {
				writeError(w, uploadErr(err))
				return
			}
			rel = created
		default:
			part.Close()
		}
	}
	if manifest == nil || rel == nil {
		writeError(w, httpErrf(http.StatusBadRequest, "upload needs a manifest part and a csv part"))
		return
	}

	// Publish the parsed relation straight into the registry — the next
	// request serves it without re-reading the CSV that was just written —
	// and refresh the warm-restart snapshot off the request path.
	agg, err := manifest.AggFunc()
	if err != nil {
		writeError(w, httpErrf(http.StatusBadRequest, "%v", err))
		return
	}
	s.reg.publishDataset(manifest.Name, &datasets.Dataset{
		Name:         manifest.Name,
		Rel:          rel,
		Measure:      manifest.MeasureCol,
		Agg:          agg,
		ExplainBy:    manifest.ExplainBy,
		MaxOrder:     manifest.EffectiveMaxOrder(),
		SmoothWindow: manifest.SmoothWindow,
	})
	s.met.catalogUploads.Add(1)
	done := s.reg.refreshSnapshot(manifest.Name)
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-done:
		case <-r.Context().Done():
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"dataset":    manifest.Name,
		"aliases":    manifest.Aliases,
		"rows":       rel.NumRows(),
		"timestamps": rel.NumTimestamps(),
	})
}

// readManifestPart decodes and validates the manifest part, additionally
// rejecting names and aliases that would shadow a built-in dataset.
func readManifestPart(part *multipart.Part) (*catalog.Manifest, error) {
	defer part.Close()
	data, err := io.ReadAll(io.LimitReader(part, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("reading manifest: %w", err)
	}
	m, err := catalog.ParseManifest(data)
	if err != nil {
		return nil, err
	}
	if isReservedDatasetName(m.Name) {
		return nil, fmt.Errorf("dataset name %q is reserved by a built-in dataset", m.Name)
	}
	for _, a := range m.Aliases {
		if isReservedDatasetName(a) {
			return nil, fmt.Errorf("alias %q is reserved by a built-in dataset", a)
		}
	}
	return &m, nil
}

// uploadErr maps catalog errors to their HTTP status.
func uploadErr(err error) error {
	switch {
	case errors.Is(err, catalog.ErrExists):
		return httpErrf(http.StatusConflict, "%v", err)
	case errors.Is(err, catalog.ErrNotFound):
		return httpErrf(http.StatusNotFound, "%v", err)
	default:
		return httpErrf(http.StatusBadRequest, "%v", err)
	}
}

// handleDatasetDelete serves DELETE /api/datasets/{name}: the dataset is
// removed from disk, its pooled engines and cached results are dropped
// (in-flight requests finish on their pinned engines — eviction removes
// from the pool, it never yanks an engine out from under a request), and
// its streaming ingestion state is discarded.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	if s.reg.cat == nil {
		writeError(w, errNoCatalog())
		return
	}
	name := r.PathValue("name")
	if isReservedDatasetName(name) {
		writeError(w, httpErrf(http.StatusBadRequest, "built-in dataset %q cannot be deleted", name))
		return
	}
	canon, ok := s.reg.cat.Resolve(name)
	if !ok {
		writeError(w, httpErrf(http.StatusNotFound, "unknown dataset %q", name))
		return
	}
	if err := s.reg.cat.Delete(canon); err != nil {
		writeError(w, uploadErr(err))
		return
	}
	s.reg.dropLive(canon)
	s.reg.invalidateDataset(canon)
	s.met.catalogDeletes.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"deleted": canon})
}

// appendRow is one NDJSON line of the append body: the time label, the
// dimension values by attribute name, and the measure value.
type appendRow struct {
	Time     string             `json:"time"`
	Dims     map[string]string  `json:"dims"`
	Measure  *float64           `json:"measure"`
	Measures map[string]float64 `json:"measures,omitempty"` // alternative keyed form
}

// handleDatasetAppend serves POST /api/datasets/{name}/append: an NDJSON
// body, one row per line, fed through the dataset's persistent
// incremental engine (Relation.AppendRows → Universe.Append → restricted
// re-segmentation — the PR 3 streaming path, O(delta) per batch),
// persisted to the dataset's CSV, and published to the serving path. The
// response carries the refreshed segmentation. Rows must land at or after
// the dataset's current last timestamp; earlier rows are rejected with
// 400 and nothing is applied.
func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	if s.reg.cat == nil {
		writeError(w, errNoCatalog())
		return
	}
	name := r.PathValue("name")
	canon, ok := s.reg.cat.Resolve(name)
	if !ok {
		if isReservedDatasetName(name) {
			writeError(w, httpErrf(http.StatusBadRequest, "built-in dataset %q does not accept appends", name))
			return
		}
		writeError(w, httpErrf(http.StatusNotFound, "unknown dataset %q", name))
		return
	}
	m, _ := s.reg.cat.Manifest(canon)
	// MaxBytesReader (not a silent LimitReader) so an oversize batch
	// fails deterministically instead of being truncated mid-stream —
	// a truncation landing on a line boundary would otherwise ingest a
	// prefix of the batch and report success.
	r.Body = http.MaxBytesReader(w, r.Body, appendLimitBytes)
	timeVals, dims, measures, err := parseAppendNDJSON(r.Body, &m)
	if err != nil {
		writeError(w, err)
		return
	}

	// Ingestion is compute (a cold first append builds the streaming
	// engine; every append re-segments): take a worker slot like any
	// other compute request.
	sh := s.reg.shardFor(canon)
	release, err := sh.admit(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := func() (*core.Result, error) {
		defer release()
		return s.reg.appendDelta(r.Context(), canon, timeVals, dims, measures)
	}()
	if err != nil {
		// A concurrent delete can race the append; surface it as 404
		// rather than a generic 500.
		if errors.Is(err, catalog.ErrNotFound) {
			err = uploadErr(err)
		}
		writeError(w, err)
		return
	}

	done := s.reg.refreshSnapshot(canon)
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-done:
		case <-r.Context().Done():
		}
	}
	resp := map[string]any{
		"dataset": canon,
		"rows":    len(timeVals),
		"n":       len(res.Labels),
		"k":       res.K,
		"cuts":    res.Cuts(),
	}
	if len(res.Segments) > 0 {
		last := res.Segments[len(res.Segments)-1]
		var top []string
		for _, e := range last.Top {
			top = append(top, fmt.Sprintf("%s (%s)", e.Predicates, e.Effect))
		}
		resp["top"] = top
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// overLimitErr maps a MaxBytesReader overflow to its 413 response; nil
// for any other (or no) error.
func overLimitErr(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return httpErrf(http.StatusRequestEntityTooLarge,
			"append body exceeds %d bytes; split the batch", mbe.Limit)
	}
	return nil
}

// parseAppendNDJSON decodes the append body into the row-major shape
// Relation.AppendRows consumes, resolving dimension values through the
// manifest's attribute names so row order in the JSON object does not
// matter.
func parseAppendNDJSON(body io.Reader, m *catalog.Manifest) (timeVals []string, dims [][]string, measures [][]float64, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var row appendRow
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&row); err != nil {
			// The scanner hands over its final token BEFORE reporting the
			// read error, so an over-limit body surfaces here as a
			// truncated last line — report the size limit, not a
			// misleading parse error.
			if tooBig := overLimitErr(sc.Err()); tooBig != nil {
				return nil, nil, nil, tooBig
			}
			return nil, nil, nil, httpErrf(http.StatusBadRequest, "append line %d: %v", line, err)
		}
		if row.Time == "" {
			return nil, nil, nil, httpErrf(http.StatusBadRequest, "append line %d: missing time", line)
		}
		dv := make([]string, len(m.DimCols))
		for i, col := range m.DimCols {
			v, ok := row.Dims[col]
			if !ok {
				return nil, nil, nil, httpErrf(http.StatusBadRequest, "append line %d: missing dimension %q", line, col)
			}
			dv[i] = v
		}
		if len(row.Dims) != len(m.DimCols) {
			return nil, nil, nil, httpErrf(http.StatusBadRequest, "append line %d: %d dimension values, want %d", line, len(row.Dims), len(m.DimCols))
		}
		// Datasets with range bins carry extra measure columns (the bin
		// sources); those rows must use the keyed form so every column is
		// named explicitly.
		measCols := m.Spec().MeasCols
		mvs := make([]float64, len(measCols))
		switch {
		case row.Measure != nil && len(measCols) == 1:
			mvs[0] = *row.Measure
		case row.Measure != nil:
			return nil, nil, nil, httpErrf(http.StatusBadRequest,
				"append line %d: dataset has %d measure columns; use the keyed \"measures\" form", line, len(measCols))
		case row.Measures != nil:
			for i, col := range measCols {
				v, ok := row.Measures[col]
				if !ok {
					return nil, nil, nil, httpErrf(http.StatusBadRequest, "append line %d: missing measure %q", line, col)
				}
				mvs[i] = v
			}
		default:
			return nil, nil, nil, httpErrf(http.StatusBadRequest, "append line %d: missing measure", line)
		}
		timeVals = append(timeVals, row.Time)
		dims = append(dims, dv)
		measures = append(measures, mvs)
	}
	if err := sc.Err(); err != nil {
		if tooBig := overLimitErr(err); tooBig != nil {
			return nil, nil, nil, tooBig
		}
		return nil, nil, nil, httpErrf(http.StatusBadRequest, "reading append body: %v", err)
	}
	if len(timeVals) == 0 {
		return nil, nil, nil, httpErrf(http.StatusBadRequest, "append body holds no rows")
	}
	return timeVals, dims, measures, nil
}
