package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// streamedRound is the client-side decoding of one progressive round.
type streamedRound struct {
	Round     int     `json:"round"`
	Final     bool    `json:"final"`
	ElapsedMs float64 `json:"elapsedMs"`
	Dataset   string  `json:"dataset"`
	Mode      string  `json:"mode"`
	K         int     `json:"k"`
	Truncated bool    `json:"truncated"`
	Variance  float64 `json:"totalVariance"`
	Approx    *struct {
		MaxErrBound float64 `json:"maxErrBound"`
		Candidates  int     `json:"candidates"`
		Considered  int     `json:"considered"`
	} `json:"approx"`
	Segments json.RawMessage `json:"segments"`
}

func decodeNDJSONRounds(t *testing.T, body []byte) []streamedRound {
	t.Helper()
	var rounds []streamedRound
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r streamedRound
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		rounds = append(rounds, r)
	}
	return rounds
}

// checkRoundInvariants asserts the streaming contract shared by both
// framings: rounds numbered from 1, exactly the last one final, error
// bounds never loosening, and the final round exact (no approx block,
// not truncated).
func checkRoundInvariants(t *testing.T, rounds []streamedRound) {
	t.Helper()
	if len(rounds) < 2 {
		t.Fatalf("got %d rounds, want at least 2 (a coarse round and the exact final)", len(rounds))
	}
	prevBound := -1.0
	for i, r := range rounds {
		if r.Round != i+1 {
			t.Errorf("round %d numbered %d", i+1, r.Round)
		}
		if got, want := r.Final, i == len(rounds)-1; got != want {
			t.Errorf("round %d final = %v, want %v", r.Round, got, want)
		}
		if r.Truncated {
			t.Errorf("round %d flagged truncated on an unhurried stream", r.Round)
		}
		if i < len(rounds)-1 {
			if r.Approx == nil {
				t.Fatalf("interim round %d missing approx info", r.Round)
			}
			if prevBound >= 0 && r.Approx.MaxErrBound > prevBound {
				t.Errorf("round %d bound %g looser than previous %g", r.Round, r.Approx.MaxErrBound, prevBound)
			}
			prevBound = r.Approx.MaxErrBound
		}
	}
	if final := rounds[len(rounds)-1]; final.Approx != nil {
		t.Errorf("final round still carries approx info %+v, want exact", final.Approx)
	}
}

// TestProgressiveStreamNDJSON drives GET /api/explain?progressive=1 end
// to end: the stream refines round by round and the final round's
// explanation is bit-identical to the synchronous exact explain.
func TestProgressiveStreamNDJSON(t *testing.T) {
	s := NewWithConfig(testConfig())
	rec := get(t, s, "/api/explain?dataset=liquor&k=3&progressive=1")
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	rounds := decodeNDJSONRounds(t, rec.Body.Bytes())
	checkRoundInvariants(t, rounds)

	// The final round must match a plain synchronous exact explain
	// bit-for-bit on everything the explanation consists of. (Latency
	// timings naturally differ run to run and are excluded.)
	exact := get(t, s, "/api/explain?dataset=liquor&k=3&mode=exact")
	if exact.Code != 200 {
		t.Fatalf("sync exact explain: status = %d", exact.Code)
	}
	var syncResp struct {
		K        int             `json:"k"`
		Variance float64         `json:"totalVariance"`
		Segments json.RawMessage `json:"segments"`
	}
	if err := json.Unmarshal(exact.Body.Bytes(), &syncResp); err != nil {
		t.Fatal(err)
	}
	final := rounds[len(rounds)-1]
	if final.K != syncResp.K || final.Variance != syncResp.Variance {
		t.Errorf("final round k/variance = %d/%v, sync exact = %d/%v",
			final.K, final.Variance, syncResp.K, syncResp.Variance)
	}
	var finalSegs, syncSegs any
	if err := json.Unmarshal(final.Segments, &finalSegs); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(syncResp.Segments, &syncSegs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(finalSegs, syncSegs) {
		t.Errorf("final progressive round differs from synchronous exact explain:\nprogressive: %s\nexact:       %s",
			final.Segments, syncResp.Segments)
	}
}

// TestProgressiveStreamSSE asks for the same stream with
// Accept: text/event-stream and checks the SSE framing carries the same
// rounds.
func TestProgressiveStreamSSE(t *testing.T) {
	s := NewWithConfig(testConfig())
	req := httptest.NewRequest("GET", "/api/explain?dataset=liquor&k=3&progressive=1", nil)
	req.Header.Set("Accept", "text/event-stream")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	var rounds []streamedRound
	for _, event := range strings.Split(rec.Body.String(), "\n\n") {
		event = strings.TrimSpace(event)
		if event == "" {
			continue
		}
		lines := strings.SplitN(event, "\n", 2)
		if lines[0] != "event: round" {
			t.Fatalf("unexpected SSE event %q", lines[0])
		}
		data := strings.TrimPrefix(lines[1], "data: ")
		var r streamedRound
		if err := json.Unmarshal([]byte(data), &r); err != nil {
			t.Fatalf("bad SSE data %q: %v", data, err)
		}
		rounds = append(rounds, r)
	}
	checkRoundInvariants(t, rounds)
}

// TestProgressiveExactModeSingleRound pins the explicit-mode contract: a
// mode=exact progressive stream is legal and yields exactly one final
// round (no auto-upgrade overrides an explicit mode choice).
func TestProgressiveExactModeSingleRound(t *testing.T) {
	s := NewWithConfig(testConfig())
	rec := get(t, s, "/api/explain?dataset=vax-deaths&k=2&progressive=1&mode=exact")
	if rec.Code != 200 {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	rounds := decodeNDJSONRounds(t, rec.Body.Bytes())
	if len(rounds) != 1 || !rounds[0].Final || rounds[0].Approx != nil {
		t.Fatalf("exact progressive stream = %+v, want a single final exact round", rounds)
	}
}

// TestProgressiveRoundMetrics checks the per-round counter moves with
// the stream.
func TestProgressiveRoundMetrics(t *testing.T) {
	s := NewWithConfig(testConfig())
	before := s.met.progressiveRounds.Load()
	rec := get(t, s, "/api/explain?dataset=liquor&k=3&progressive=1")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	n := int64(len(decodeNDJSONRounds(t, rec.Body.Bytes())))
	if got := s.met.progressiveRounds.Load() - before; got != n {
		t.Errorf("tsexplain_progressive_rounds_total moved by %d, want %d (one per streamed round)", got, n)
	}
}
