package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// testConfig returns a single-shard config so tests can reason about one
// worker pool and one engine pool without hashing surprises.
func testConfig() Config {
	return Config{Shards: 1, WorkersPerShard: 1, QueueDepth: -1}
}

func bg() context.Context { return context.Background() }

func TestAdmitQueueFull(t *testing.T) {
	s := NewWithConfig(Config{Shards: 1, WorkersPerShard: 1, QueueDepth: 1})
	sh := s.reg.shards[0]

	rel1, err := sh.admit(bg())
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	// Second request queues (async; it will get the slot when rel1 runs).
	var wg sync.WaitGroup
	wg.Add(1)
	queuedDone := make(chan struct{})
	go func() {
		defer wg.Done()
		rel2, err := sh.admit(bg())
		if err != nil {
			t.Errorf("queued admit: %v", err)
			return
		}
		close(queuedDone)
		rel2()
	}()
	// Wait for the goroutine to be counted as waiting.
	deadline := time.Now().Add(2 * time.Second)
	for sh.waiting.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never registered as waiting")
		}
		time.Sleep(time.Millisecond)
	}
	// Third request exceeds the queue limit and is shed immediately. (The
	// shed counter is maintained centrally in Server.handle from the final
	// response status, not here — admit only returns the sentinel.)
	if _, err := sh.admit(bg()); !errors.Is(err, errQueueFull) {
		t.Fatalf("over-limit admit: err = %v, want errQueueFull", err)
	} else {
		var oe *overloadedError
		if !errors.As(err, &oe) {
			t.Fatalf("over-limit admit: err = %T, want *overloadedError carrying Retry-After", err)
		}
		if oe.retryAfter < 1 || oe.retryAfter > 30 {
			t.Fatalf("over-limit admit: retryAfter = %d, want within [1, 30]", oe.retryAfter)
		}
	}
	rel1()
	wg.Wait()
	select {
	case <-queuedDone:
	default:
		t.Error("queued request never acquired the released slot")
	}
}

func TestAdmitDeadlineWhileQueued(t *testing.T) {
	s := NewWithConfig(Config{Shards: 1, WorkersPerShard: 1, QueueDepth: 4})
	sh := s.reg.shards[0]
	release, err := sh.admit(bg())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(bg(), 20*time.Millisecond)
	defer cancel()
	if _, err := sh.admit(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued admit past deadline: err = %v, want DeadlineExceeded", err)
	}
}

// TestEvictionRespectsBudgetAndPins drives the registry over a tiny
// memory budget and checks that cold engines are evicted while pinned
// engines (in-flight requests) never are.
func TestEvictionRespectsBudgetAndPins(t *testing.T) {
	cfg := testConfig()
	cfg.MemoryBudgetBytes = 1 // every engine build exceeds the budget
	s := NewWithConfig(cfg)
	sh := s.reg.shards[0]

	p1 := params{dataset: "vax-deaths"}
	p2 := params{dataset: "stream"}
	if _, err := s.reg.explain(bg(), p1); err != nil {
		t.Fatal(err)
	}
	// p1's engine was pinned during its own build, so it survives its own
	// eviction pass and is evictable only once the request finished.
	if n := s.reg.engineEntries(); n != 1 {
		t.Fatalf("after first explain: %d engines, want 1", n)
	}
	if _, err := s.reg.explain(bg(), p2); err != nil {
		t.Fatal(err)
	}
	// p2's build evicted the now-cold p1 engine.
	if n := s.reg.engineEntries(); n != 1 {
		t.Errorf("after second explain: %d engines, want 1 (cold engine evicted)", n)
	}
	if got := s.met.evictions.Load(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	sh.mu.Lock()
	_, p1Resident := sh.engines.get(p1.engineKey())
	ent2, p2Resident := sh.engines.get(p2.engineKey())
	sh.mu.Unlock()
	if p1Resident || !p2Resident {
		t.Fatalf("resident engines: p1=%v p2=%v, want only p2", p1Resident, p2Resident)
	}

	// Pin p2's engine as an in-flight request would, then build a third
	// engine: the eviction pass must skip the pinned entry even though the
	// shard is over budget.
	ent2.pins.Add(1)
	if _, err := s.reg.explain(bg(), p1); err != nil {
		t.Fatal(err)
	}
	sh.mu.Lock()
	_, p2StillThere := sh.engines.get(p2.engineKey())
	sh.mu.Unlock()
	if !p2StillThere {
		t.Fatal("pinned engine was evicted with a request in flight")
	}
	// Unpinned, it becomes evictable on the next pass.
	ent2.pins.Add(-1)
	if _, err := s.reg.explain(bg(), params{dataset: "covid-daily"}); err != nil {
		t.Fatal(err)
	}
	sh.mu.Lock()
	_, p2Gone := sh.engines.get(p2.engineKey())
	sh.mu.Unlock()
	if p2Gone {
		t.Error("unpinned cold engine survived an over-budget eviction pass")
	}
}

// TestStreamHoldsWorkerSlotBackpressure exercises end-to-end
// back-pressure under the degrade-never-shed contract: with one worker
// and no queue, a streaming replay occupies the only slot. A concurrent
// vanilla explain (not approx-eligible) is shed with 429 and a JSON
// error; a concurrent optimized explain is rescued by the degraded lane
// and answers 200, flagged degraded and truncated with its bound.
func TestStreamHoldsWorkerSlotBackpressure(t *testing.T) {
	s := NewWithConfig(Config{Shards: 1, WorkersPerShard: 1, QueueDepth: -1})
	sh := s.reg.shards[0]

	ctx, cancelStream := context.WithCancel(bg())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("GET", "/api/stream?dataset=stream&start=2&step=1", nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sh.busy.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("stream request never occupied the worker slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Vanilla engines have no approximate path to degrade onto: shed.
	rec := get(t, s, "/api/explain?dataset=vax-deaths&vanilla=1")
	if rec.Code != 429 {
		t.Fatalf("vanilla explain while saturated: status = %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 30 {
		t.Errorf("429 Retry-After = %q, want an integer in [1, 30] derived from observed service time", ra)
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Error == "" {
		t.Errorf("429 body %q is not the JSON error shape", rec.Body.String())
	}
	if got := s.met.shedQueueFull.Load(); got != 1 {
		t.Errorf("queue-full shed counter = %d, want 1 (the vanilla request)", got)
	}

	// An approx-eligible explain degrades instead: 200 with the flags.
	rec = get(t, s, "/api/explain?dataset=vax-deaths")
	if rec.Code != 200 {
		t.Fatalf("degradable explain while saturated: status = %d, want 200 (%s)", rec.Code, rec.Body.String())
	}
	var deg struct {
		Degraded  bool `json:"degraded"`
		Truncated bool `json:"truncated"`
		Approx    *struct {
			MaxErrBound float64 `json:"maxErrBound"`
			Epsilon     float64 `json:"epsilon"`
		} `json:"approx"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &deg); err != nil {
		t.Fatalf("decoding degraded response: %v", err)
	}
	if !deg.Degraded || !deg.Truncated || deg.Approx == nil {
		t.Fatalf("degraded response flags = %+v, want degraded+truncated with an approx bound", deg)
	}
	if got := s.met.degradedQueueFull.Load(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}
	if got := s.met.shedQueueFull.Load(); got != 1 {
		t.Errorf("queue-full shed counter moved to %d after a degraded 200; a rescue must not count as a shed", got)
	}

	cancelStream()
	wg.Wait()
	// With the slot free again, the same request succeeds normally.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if rec := get(t, s, "/api/explain?dataset=vax-deaths&vanilla=1"); rec.Code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("explain still shed after stream released its slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRequestDeadlineSheds503 gives the server a deadline far shorter
// than a cold liquor build: the engine observes the cancellation
// mid-precompute and the request fails with 503, not a hung worker.
// (vanilla=1 keeps the request off the degraded lane; an optimized
// explain would be rescued with a degraded answer instead — see
// degrade_test.go.)
func TestRequestDeadlineSheds503(t *testing.T) {
	cfg := testConfig()
	cfg.RequestTimeout = 30 * time.Millisecond
	s := NewWithConfig(cfg)
	rec := get(t, s, "/api/explain?dataset=liquor&vanilla=1")
	if rec.Code != 503 {
		t.Fatalf("status = %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Error == "" {
		t.Errorf("503 body %q is not the JSON error shape", rec.Body.String())
	}
	if got := s.met.shedDeadline.Load(); got == 0 {
		t.Error("deadline shed counter not incremented")
	}
	// The worker slot was released despite the abort.
	if busy := s.reg.shards[0].busy.Load(); busy != 0 {
		t.Errorf("busy workers = %d after aborted request, want 0", busy)
	}
}

func TestDatasetsLoadLazily(t *testing.T) {
	s := New()
	if got := s.met.datasetLoads.Load(); got != 0 {
		t.Fatalf("datasets loaded at construction = %d, want 0 (lazy)", got)
	}
	get(t, s, "/api/explain?dataset=vax-deaths")
	if got := s.met.datasetLoads.Load(); got != 1 {
		t.Errorf("dataset loads after one explain = %d, want 1", got)
	}
	get(t, s, "/api/explain?dataset=vax-deaths&k=2")
	if got := s.met.datasetLoads.Load(); got != 1 {
		t.Errorf("dataset loads after warm engine reuse = %d, want 1", got)
	}
}

func TestShardForIsStable(t *testing.T) {
	s := NewWithConfig(Config{Shards: 4})
	for _, key := range []string{"covid|0|false", "liquor|7|true", "stream|0|false"} {
		a, b := s.reg.shardFor(key), s.reg.shardFor(key)
		if a != b {
			t.Errorf("shardFor(%q) not stable", key)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := NewWithConfig(testConfig())
	get(t, s, "/api/explain?dataset=vax-deaths")
	get(t, s, "/api/explain?dataset=vax-deaths") // warm: cache hit
	get(t, s, "/api/explain?dataset=bogus")      // 404

	rec := get(t, s, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`tsexplain_http_requests_total{endpoint="/api/explain",code="200"} 2`,
		`tsexplain_http_requests_total{endpoint="/api/explain",code="404"} 1`,
		`tsexplain_http_request_duration_seconds_bucket{endpoint="/api/explain",le="+Inf"} 3`,
		`tsexplain_http_request_duration_seconds_count{endpoint="/api/explain"} 3`,
		`tsexplain_result_cache_hits_total 1`,
		`tsexplain_result_cache_misses_total 1`,
		`tsexplain_dataset_loads_total 1`,
		`tsexplain_shed_total{reason="queue_full"} 0`,
		`tsexplain_engine_pool_engines{shard="0"} 1`,
		`tsexplain_result_cache_entries{shard="0"} 1`,
		`tsexplain_queue_depth{shard="0"} 0`,
		`tsexplain_workers_busy{shard="0"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Engine pool bytes reflect the resident engine's footprint.
	if !strings.Contains(body, `tsexplain_engine_pool_bytes{shard="0"} `) {
		t.Error("metrics output missing engine pool bytes gauge")
	}
}

// TestLeaderDisconnectDoesNotFailWaiters cancels the singleflight
// leader's context while a waiter is deduped onto the same compute: the
// detached compute must finish and serve the waiter regardless.
func TestLeaderDisconnectDoesNotFailWaiters(t *testing.T) {
	s := NewWithConfig(Config{Shards: 1, WorkersPerShard: 1, QueueDepth: 4})
	p := params{dataset: "vax-deaths"}
	sh := s.reg.shardFor(p.engineKey())

	// Occupy the only worker slot so the leader's compute queues
	// deterministically while registered in flight.
	releaseSlot, err := sh.admit(bg())
	if err != nil {
		t.Fatal(err)
	}
	leaderCtx, cancelLeader := context.WithCancel(bg())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.reg.explain(leaderCtx, p)
		leaderDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sh.waiting.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never queued for the worker slot")
		}
		time.Sleep(time.Millisecond)
	}
	waiterDone := make(chan error, 1)
	go func() {
		_, err := s.reg.explain(bg(), p)
		waiterDone <- err
	}()
	for s.met.dedups.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never deduped onto the leader's compute")
		}
		time.Sleep(time.Millisecond)
	}
	// Hang up the leader's client, then let the compute run: it is
	// detached from the leader's cancellation, so the waiter still gets
	// the real result.
	cancelLeader()
	releaseSlot()
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter failed with leader's cancellation: %v", err)
	}
	if err := <-leaderDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v, want nil or context.Canceled", err)
	}
	if n := s.reg.computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1 (waiter must reuse the detached compute)", n)
	}
}

// TestEngineSharedAllowsConcurrentReaders takes the ad-hoc engine shared
// twice without releasing: the second acquisition must not block on the
// first (readers share the immutable universe), and an exclusive user
// still works once the readers are done.
func TestEngineSharedAllowsConcurrentReaders(t *testing.T) {
	s := NewWithConfig(testConfig())
	key := adhocKey("vax-deaths")
	build := s.adhocBuilder("vax-deaths")
	e1, rel1, err := s.reg.engineShared(bg(), key, build)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e2, rel2, err := s.reg.engineShared(bg(), key, build)
		if err != nil {
			t.Errorf("second shared acquisition: %v", err)
			return
		}
		if e2 != e1 {
			t.Error("shared readers got different engines")
		}
		rel2()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second shared reader blocked behind the first")
	}
	rel1()
	_, relX, err := s.reg.engineExclusive(bg(), key, build)
	if err != nil {
		t.Fatalf("exclusive after readers: %v", err)
	}
	relX()
}

// TestFailedBuildLeavesPoolUsable cancels an engine build mid-flight and
// checks the stub entry rebuilds cleanly on the next request.
func TestFailedBuildLeavesPoolUsable(t *testing.T) {
	s := NewWithConfig(testConfig())
	ctx, cancel := context.WithCancel(bg())
	cancel() // already expired
	p := params{dataset: "vax-deaths"}
	if _, err := s.reg.explain(ctx, p); err == nil {
		t.Fatal("explain with cancelled context succeeded, want error")
	}
	res, err := s.reg.explain(bg(), p)
	if err != nil || res == nil {
		t.Fatalf("explain after aborted build: %v", err)
	}
}

func TestAccessLogWritesJSONLines(t *testing.T) {
	var buf syncBuffer
	cfg := testConfig()
	cfg.AccessLog = &buf
	s := NewWithConfig(cfg)
	get(t, s, "/api/explain?dataset=vax-deaths&k=3")
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no access log line written")
	}
	var entry struct {
		Msg      string  `json:"msg"`
		Endpoint string  `json:"endpoint"`
		Status   int     `json:"status"`
		Ms       float64 `json:"ms"`
	}
	if err := json.Unmarshal([]byte(strings.Split(line, "\n")[0]), &entry); err != nil {
		t.Fatalf("access log line %q is not JSON: %v", line, err)
	}
	if entry.Msg != "request" || entry.Endpoint != "/api/explain" || entry.Status != 200 {
		t.Errorf("access log entry = %+v", entry)
	}
}

// syncBuffer is a mutex-guarded buffer (the logger writes from handler
// goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
