package server

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

// FuzzParseAppendNDJSON drives the NDJSON append decoder with arbitrary
// bodies: it must never panic, and on success the row-major output it
// hands to Relation.AppendRows must be internally consistent (equal
// lengths, full dimension arity, one measure per row).
func FuzzParseAppendNDJSON(f *testing.F) {
	f.Add(`{"time":"2024-01-01","dims":{"state":"NY","region":"east"},"measure":3}`)
	f.Add(`{"time":"2024-01-01","dims":{"state":"NY","region":"east"},"measures":{"value":1.5}}`)
	f.Add("{\"time\":\"a\",\"dims\":{\"state\":\"x\",\"region\":\"y\"},\"measure\":1}\n\n{\"time\":\"b\",\"dims\":{\"state\":\"x\",\"region\":\"y\"},\"measure\":2}")
	f.Add(`{"time":"","dims":{},"measure":null}`)
	f.Add(`{"unknown":true}`)
	f.Add("not json at all")
	f.Add(`{"time":"t","dims":{"state":"NY","region":"east","extra":"boom"},"measure":1}`)

	m := &catalog.Manifest{
		Name:       "fuzz",
		TimeCol:    "day",
		DimCols:    []string{"state", "region"},
		MeasureCol: "value",
	}
	f.Fuzz(func(t *testing.T, body string) {
		timeVals, dims, measures, err := parseAppendNDJSON(strings.NewReader(body), m)
		if err != nil {
			if timeVals != nil || dims != nil || measures != nil {
				t.Fatalf("error return leaks partial rows: %v", err)
			}
			return
		}
		if len(timeVals) == 0 {
			t.Fatal("nil error with zero rows")
		}
		if len(dims) != len(timeVals) || len(measures) != len(timeVals) {
			t.Fatalf("row-major shapes diverge: %d times, %d dims, %d measures",
				len(timeVals), len(dims), len(measures))
		}
		for i := range timeVals {
			if timeVals[i] == "" {
				t.Fatalf("row %d: empty time accepted", i)
			}
			if len(dims[i]) != len(m.DimCols) {
				t.Fatalf("row %d: %d dimension values, want %d", i, len(dims[i]), len(m.DimCols))
			}
			if len(measures[i]) != 1 {
				t.Fatalf("row %d: %d measures, want 1", i, len(measures[i]))
			}
		}
	})
}
