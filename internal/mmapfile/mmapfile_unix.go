//go:build linux || darwin

package mmapfile

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// Open maps path read-only. Empty files and mmap failures fall back to
// a heap copy so the caller always gets usable bytes; Mapped reports
// which path won. The mapping is MAP_SHARED off the page cache, so N
// processes (or N engines in one process) mapping the same snapshot
// share one set of physical pages.
func Open(path string) (*File, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &File{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapfile: %s is %d bytes, too large to map on this platform", path, size)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readFallback(path)
	}
	f := &File{data: data, mapped: true}
	// The finalizer makes dropping the last reference equivalent to
	// Close: engines hold their Universe, the Universe holds this File,
	// and eviction simply unpins the chain — the region is unmapped when
	// the GC collects it, never while a pinned slice can still reach it.
	runtime.SetFinalizer(f, (*File).Close)
	return f, nil
}

// Close unmaps a mapped file (or drops the heap copy). It is safe to
// call more than once; the finalizer calls it on collected files.
func (f *File) Close() error {
	data := f.data
	f.data = nil
	if !f.mapped || data == nil {
		return nil
	}
	f.mapped = false
	runtime.SetFinalizer(f, nil)
	return syscall.Munmap(data)
}
