package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestOpenReadsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte("tsexplain"), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !bytes.Equal(f.Data(), want) {
		t.Fatalf("Data() = %d bytes, want %d matching bytes", len(f.Data()), len(want))
	}
	if f.Size() != int64(len(want)) {
		t.Fatalf("Size() = %d, want %d", f.Size(), len(want))
	}
	if (runtime.GOOS == "linux" || runtime.GOOS == "darwin") && !f.Mapped() {
		t.Fatalf("Open on %s did not memory-map", runtime.GOOS)
	}
}

func TestOpenEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(f.Data()) != 0 || f.Size() != 0 {
		t.Fatalf("empty file: Data()=%d Size()=%d, want 0/0", len(f.Data()), f.Size())
	}
	if f.Mapped() {
		t.Fatal("empty file must not claim a mapping (mmap of length 0 is invalid)")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}

func TestCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if f.Data() != nil {
		t.Fatal("Data() non-nil after Close")
	}
}

// TestRenameKeepsOldMapping pins the re-base contract: a snapshot
// published by rename(2) over a mapped file must not disturb the open
// mapping — readers of the old inode keep seeing the old bytes.
func TestRenameKeepsOldMapping(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xAA}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	next := filepath.Join(dir, "snap-next")
	if err := os.WriteFile(next, bytes.Repeat([]byte{0xBB}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(next, path); err != nil {
		t.Fatal(err)
	}
	for i, b := range f.Data() {
		if b != 0xAA {
			t.Fatalf("byte %d changed to %#x after rename over the mapped file", i, b)
		}
	}
	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Data()[0] != 0xBB {
		t.Fatal("fresh Open after rename did not see the new bytes")
	}
}
