//go:build !linux && !darwin

package mmapfile

// Open reads path into a heap slice on platforms without mmap support.
// Mapped reports false, so callers charge the bytes as resident.
func Open(path string) (*File, error) { return readFallback(path) }

// Close drops the heap copy.
func (f *File) Close() error {
	f.data = nil
	return nil
}
