// Package mmapfile maps whole files read-only into memory so large
// snapshot payloads can back runtime data structures without living on
// the Go heap: the kernel pages cold ranges out under memory pressure
// and faults them back in on access, which is what lets the serving
// layer hold datasets several times larger than its resident-memory
// budget.
//
// On platforms without mmap support (or when the caller asks for a
// materialized copy) Open falls back to reading the file into an
// ordinary heap slice; Mapped reports which path was taken so callers
// can account the bytes as resident or kernel-evictable.
package mmapfile

// File is one opened file: either a read-only memory mapping or a heap
// copy of the file's contents. The zero value is unusable; use Open.
//
// A mapped File's Data slice stays valid until Close. Callers that hand
// sub-slices of Data to long-lived structures must keep the File
// reachable for as long as those slices are; a finalizer unmaps the
// region once the File is garbage-collected, so dropping the last
// reference is a safe (if lazy) close. Because the snapshot publisher
// replaces files by rename(2), an already-open mapping keeps reading
// the old inode — re-basing onto a fresh snapshot never invalidates
// slices pinned by in-flight readers.
type File struct {
	data   []byte
	mapped bool
}

// Data returns the file contents. For a mapped file this aliases the
// mapping; for the fallback path it is an ordinary heap slice. Callers
// must not write through it either way.
func (f *File) Data() []byte { return f.data }

// Mapped reports whether the contents are backed by a kernel memory
// mapping (true) or a heap copy (false).
func (f *File) Mapped() bool { return f.mapped }

// Size returns the length of the file contents in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }
