package mmapfile

import "os"

// readFallback materializes the file on the heap, the portable path
// shared by non-mmap platforms and by mmap failures.
func readFallback(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &File{data: data}, nil
}
