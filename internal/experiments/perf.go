package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/explain"
	"repro/internal/segment"
)

// perfDatasets returns the four real-world series of the efficiency
// experiments, in the paper's order. Quick mode keeps the two fastest so
// smoke runs stay short.
func perfDatasets(cfg Config) []*datasets.Dataset {
	if cfg.Quick {
		return []*datasets.Dataset{
			datasets.CovidTotal(),
			datasets.SP500(),
		}
	}
	return []*datasets.Dataset{
		datasets.CovidTotal(),
		datasets.CovidDaily(),
		datasets.SP500(),
		datasets.Liquor(),
	}
}

// Table6 prints the dataset statistics of Table 6: candidate count ε,
// filtered ε (support ratio 0.001), and series length n.
func Table6(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Table 6 — dataset statistics")
	fmt.Fprintf(w, "  %-24s %8s %12s %6s\n", "dataset", "ε", "filtered ε", "n")
	for _, d := range perfDatasets(cfg) {
		u, err := explain.NewUniverse(d.Rel, explain.Config{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-24s %8d %12d %6d\n",
			d.Name, u.NumCandidates(), len(u.FilterLowSupport(0.001)), u.NumTimestamps())
	}
	return nil
}

// optimizationVariants lists the five engine configurations of Figure 15.
func optimizationVariants(d *datasets.Dataset) []struct {
	Name string
	Opts core.Options
} {
	base := engineOptions(d, false)
	withFilter := base
	withFilter.FilterRatio = 0.001
	o1 := withFilter
	o1.UseGuessVerify = true
	o2 := withFilter
	o2.UseSketch = true
	o12 := withFilter
	o12.UseGuessVerify = true
	o12.UseSketch = true
	return []struct {
		Name string
		Opts core.Options
	}{
		{"Vanilla", base},
		{"w filter", withFilter},
		{"O1", o1},
		{"O2", o2},
		{"O1+O2", o12},
	}
}

// Fig15 runs the latency-breakdown experiment: each dataset under the
// five optimization variants, reporting precompute / cascading analysts /
// segmentation time. Returns timings[dataset][variant].
func Fig15(w io.Writer, cfg Config) (map[string]map[string]core.Timings, error) {
	out := make(map[string]map[string]core.Timings)
	fmt.Fprintln(w, "Figure 15 — latency breakdown (seconds)")
	fmt.Fprintf(w, "  %-24s %-9s %10s %10s %10s %10s\n",
		"dataset", "variant", "precomp", "cascading", "segment", "total")
	for _, d := range perfDatasets(cfg) {
		out[d.Name] = make(map[string]core.Timings)
		for _, v := range optimizationVariants(d) {
			res, err := runDataset(d, v.Opts)
			if err != nil {
				return nil, err
			}
			out[d.Name][v.Name] = res.Timings
			fmt.Fprintf(w, "  %-24s %-9s %10.3f %10.3f %10.3f %10.3f\n",
				d.Name, v.Name,
				res.Timings.Precompute.Seconds(),
				res.Timings.Cascading.Seconds(),
				res.Timings.Segmentation.Seconds(),
				res.Timings.Total().Seconds())
		}
	}
	return out, nil
}

// Table7 compares the segmentation quality (total variance and cut
// positions) of Vanilla against O1+O2, the Table 7 experiment. The K used
// is the one Vanilla's elbow picks, so the objectives are comparable.
func Table7(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "Table 7 — quality of optimization strategies")
	fmt.Fprintf(w, "  %-24s %16s %16s\n", "dataset", "Var(Vanilla)", "Var(O1+O2)")
	for _, d := range perfDatasets(cfg) {
		vOpts := engineOptions(d, false)
		rv, err := runDataset(d, vOpts)
		if err != nil {
			return err
		}
		oOpts := engineOptions(d, true)
		oOpts.K = rv.K
		ro, err := runDataset(d, oOpts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-24s %16.4f %16.4f\n", d.Name, rv.TotalVariance, ro.TotalVariance)
	}
	return nil
}

// Fig16 runs the end-to-end comparison with the baselines: each baseline
// segments the series and is then given the explanation module (top-m per
// segment via Cascading Analysts), while TSExplain interleaves both.
// Returns seconds[dataset][method].
func Fig16(w io.Writer, cfg Config) (map[string]map[string]float64, error) {
	// The paper's Figure 16 uses the covid pair and Liquor.
	sets := []*datasets.Dataset{
		datasets.CovidTotal(),
		datasets.CovidDaily(),
		datasets.Liquor(),
	}
	if cfg.Quick {
		sets = sets[:1]
	}
	out := make(map[string]map[string]float64)
	fmt.Fprintln(w, "Figure 16 — end-to-end latency vs baselines (seconds)")
	fmt.Fprintf(w, "  %-24s %-18s %10s %12s %10s\n",
		"dataset", "method", "segment", "explanation", "overall")
	for _, d := range sets {
		out[d.Name] = make(map[string]float64)

		// TSExplain finds its K; baselines reuse it (Section 7.5.2).
		optRes, err := runDataset(d, engineOptions(d, true))
		if err != nil {
			return nil, err
		}
		k := optRes.K
		vals := aggregatedSeries(d)

		for _, method := range []string{"Bottom-Up", "FLUSS", "NNSegment"} {
			segStart := time.Now()
			cuts, err := baselineCuts(vals, k) // segmentation only
			if err != nil {
				return nil, err
			}
			_ = cuts[method]
			segDur := time.Since(segStart) / 3 // one method's share of the shared helper

			explStart := time.Now()
			if err := explainCuts(d, cuts[method]); err != nil {
				return nil, err
			}
			explDur := time.Since(explStart)
			total := segDur + explDur
			out[d.Name][method] = total.Seconds()
			fmt.Fprintf(w, "  %-24s %-18s %10.3f %12.3f %10.3f\n",
				d.Name, method, segDur.Seconds(), explDur.Seconds(), total.Seconds())
		}

		// VanillaTSExplain and optimized TSExplain, overall time.
		for _, variant := range []struct {
			name      string
			optimized bool
		}{{"VanillaTSExplain", false}, {"TSExplain", true}} {
			opts := engineOptions(d, variant.optimized)
			opts.K = k
			start := time.Now()
			if _, err := runDataset(d, opts); err != nil {
				return nil, err
			}
			total := time.Since(start)
			out[d.Name][variant.name] = total.Seconds()
			fmt.Fprintf(w, "  %-24s %-18s %10s %12s %10.3f\n",
				d.Name, variant.name, "-", "-", total.Seconds())
		}
	}
	return out, nil
}

// explainCuts runs the explanation module over a fixed segmentation, the
// add-on that makes baselines comparable in Figure 16 (including the
// precompute they need).
func explainCuts(d *datasets.Dataset, cuts []int) error {
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		return err
	}
	if d.SmoothWindow > 1 {
		u.Smooth(d.SmoothWindow)
	}
	exp := segment.NewExplainer(u, segment.ExplainerConfig{M: 3})
	for i := 1; i < len(cuts); i++ {
		exp.TopM(cuts[i-1], cuts[i])
	}
	return nil
}
