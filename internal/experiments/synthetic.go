package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/evalmetrics"
	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/segment"
	"repro/internal/synth"
	"repro/internal/timeseries"
)

// corpusSeed fixes the synthetic corpus across experiments so Figures 4,
// 6, and 10 all describe the same 20 datasets, as in the paper.
const corpusSeed = 1

// Fig4 prints the distribution of the ground-truth segment count K and
// of segment lengths across the synthetic corpus (paper Figure 4:
// K ∈ 2..10, lengths 6..84).
func Fig4(w io.Writer, cfg Config) error {
	corpus, err := synth.Corpus(cfg.datasets(), corpusSeed, 0)
	if err != nil {
		return err
	}
	kHist := map[int]int{}
	lenHist := map[int]int{} // bucketed by 10
	minLen, maxLen := 1<<30, 0
	for _, d := range corpus {
		kHist[d.K]++
		full := d.GroundTruthScheme()
		for i := 1; i < len(full); i++ {
			l := full[i] - full[i-1]
			lenHist[l/10*10]++
			if l < minLen {
				minLen = l
			}
			if l > maxLen {
				maxLen = l
			}
		}
	}
	fmt.Fprintf(w, "Figure 4 — synthetic corpus (%d datasets, n=100)\n", len(corpus))
	fmt.Fprintln(w, "segment number K     frequency")
	for k := 2; k <= 10; k++ {
		if kHist[k] > 0 {
			fmt.Fprintf(w, "  K=%-2d               %d\n", k, kHist[k])
		}
	}
	fmt.Fprintln(w, "segment length       frequency")
	var buckets []int
	for b := range lenHist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		fmt.Fprintf(w, "  [%2d,%2d)            %d\n", b, b+10, lenHist[b])
	}
	fmt.Fprintf(w, "length range: [%d, %d] (paper: [6, 84])\n", minLen, maxLen)
	return nil
}

// Fig5 prints one synthetic dataset at SNR=35: the three per-category
// series, the aggregate, and the ground-truth cutting points (paper
// Figure 5).
func Fig5(w io.Writer, cfg Config) error {
	d, err := synth.Generate(synth.Params{Seed: corpusSeed + 2*7919, SNRdB: 35})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 5 — one synthetic dataset at SNR=35")
	for _, cat := range d.Categories {
		fmt.Fprintf(w, "  %-4s %s\n", cat, sparkline(d.Noisy[cat], 80))
	}
	fmt.Fprintf(w, "  %-4s %s\n", "agg", sparkline(d.AggregateValues(), 80))
	fmt.Fprintf(w, "  ground-truth cuts: %v (K=%d)\n", d.Cuts, d.K)
	return nil
}

// Fig6 runs the variance-design comparison of Section 4.2.2: for every
// SNR level and dataset, the rank of the ground-truth segmentation among
// randomly sampled schemes is computed under all eight variance designs;
// designs are then ranked 1 (best) to 8 per dataset and averaged. It
// returns avgRank[kind.String()][snrIdx].
func Fig6(w io.Writer, cfg Config) (map[string][]float64, error) {
	kinds := segment.AllVarianceKinds()
	levels := synth.SNRLevels()
	avg := make(map[string][]float64, len(kinds))
	for _, k := range kinds {
		avg[k.String()] = make([]float64, len(levels))
	}

	for si, snr := range levels {
		corpus, err := synth.Corpus(cfg.datasets(), corpusSeed, snr)
		if err != nil {
			return nil, err
		}
		sums := make([]float64, len(kinds))
		for di, d := range corpus {
			u, err := explain.NewUniverse(d.Rel, explain.Config{
				Measure: "sales", Agg: relation.Sum,
			})
			if err != nil {
				return nil, err
			}
			exp := segment.NewExplainer(u, segment.ExplainerConfig{M: 3})
			n := d.Rel.NumTimestamps()
			truth := d.GroundTruthScheme()

			// One scheme sample set shared by all designs keeps the
			// comparison paired.
			rng := rand.New(rand.NewSource(int64(1000*si + di)))
			schemes := make([][]int, cfg.samples())
			for i := range schemes {
				schemes[i] = evalmetrics.RandomScheme(rng, n, d.K)
			}

			gtRanks := make([]float64, len(kinds))
			for ki, kind := range kinds {
				vc := segment.NewVarCalc(exp, kind)
				truthVar := vc.TotalVariance(truth)
				rank := 1
				for _, s := range schemes {
					if vc.TotalVariance(s) < truthVar-1e-12 {
						rank++
					}
				}
				gtRanks[ki] = float64(rank)
			}
			for ki, r := range evalmetrics.CompetitionRanks(gtRanks) {
				sums[ki] += r
			}
		}
		for ki, k := range kinds {
			avg[k.String()][si] = sums[ki] / float64(len(corpus))
		}
	}

	fmt.Fprintln(w, "Figure 6 — average rank of variance designs by SNR (1 = best of 8)")
	fmt.Fprintf(w, "  %-9s", "metric")
	for _, snr := range levels {
		fmt.Fprintf(w, "  SNR=%2.0f", snr)
	}
	fmt.Fprintln(w)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-9s", k.String())
		for si := range levels {
			fmt.Fprintf(w, "  %6.2f", avg[k.String()][si])
		}
		fmt.Fprintln(w)
	}
	return avg, nil
}

// Fig10 compares TSExplain against the three explanation-agnostic
// baselines on the synthetic corpus using the distance-percent metric of
// Section 7.3, with the oracle K. It returns avgDist[method][snrIdx].
func Fig10(w io.Writer, cfg Config) (map[string][]float64, error) {
	methods := []string{"TSExplain", "Bottom-Up", "FLUSS", "NNSegment"}
	levels := synth.SNRLevels()
	avg := make(map[string][]float64, len(methods))
	for _, m := range methods {
		avg[m] = make([]float64, len(levels))
	}

	for si, snr := range levels {
		corpus, err := synth.Corpus(cfg.datasets(), corpusSeed, snr)
		if err != nil {
			return nil, err
		}
		sums := map[string]float64{}
		for _, d := range corpus {
			n := d.Rel.NumTimestamps()
			truth := d.GroundTruthScheme()

			vals := d.AggregateValues()
			eng, err := core.NewEngine(d.Rel, core.Query{Measure: "sales", Agg: relation.Sum},
				core.Options{K: d.K, SmoothWindow: timeseries.AutoSmoothWindow(vals)})
			if err != nil {
				return nil, err
			}
			res, err := eng.Explain()
			if err != nil {
				return nil, err
			}
			sums["TSExplain"] += evalmetrics.DistancePercent(res.Cuts(), truth, n)

			const window = 10 // best of the sweep {5, 8, 10, 12}, as in §7.3
			if cuts, err := baseline.BottomUp(vals, d.K); err == nil {
				sums["Bottom-Up"] += evalmetrics.DistancePercent(cuts, truth, n)
			}
			if cuts, err := baseline.FLUSS(vals, d.K, window); err == nil {
				sums["FLUSS"] += evalmetrics.DistancePercent(cuts, truth, n)
			}
			if cuts, err := baseline.NNSegment(vals, d.K, window); err == nil {
				sums["NNSegment"] += evalmetrics.DistancePercent(cuts, truth, n)
			}
		}
		for _, m := range methods {
			avg[m][si] = sums[m] / float64(len(corpus))
		}
	}

	fmt.Fprintln(w, "Figure 10 — distance percent (%) vs SNR (lower is better)")
	fmt.Fprintf(w, "  %-10s", "method")
	for _, snr := range levels {
		fmt.Fprintf(w, "  SNR=%2.0f", snr)
	}
	fmt.Fprintln(w)
	for _, m := range methods {
		fmt.Fprintf(w, "  %-10s", m)
		for si := range levels {
			fmt.Fprintf(w, "  %6.2f", avg[m][si])
		}
		fmt.Fprintln(w)
	}
	return avg, nil
}

// Fig17 runs the scalability sweep of Section 7.5.3: synthetic series of
// increasing length, VanillaTSExplain vs fully optimized TSExplain,
// terminating a configuration once it exceeds the latency budget (the
// paper terminates at 100 s). Returns latencies[method][lengthIdx] in
// seconds (-1 where skipped).
func Fig17(w io.Writer, cfg Config) (map[string][]float64, error) {
	lengths := []int{100, 200, 400, 800, 1600, 3200, 6400}
	seeds := 5
	budget := 100 * time.Second
	if cfg.Quick {
		lengths = []int{100, 200, 400, 800}
		seeds = 1
		budget = 20 * time.Second
	}
	out := map[string][]float64{
		"VanillaTSExplain": make([]float64, len(lengths)),
		"TSExplain":        make([]float64, len(lengths)),
	}
	dead := map[string]bool{}
	for li, n := range lengths {
		for _, method := range []string{"VanillaTSExplain", "TSExplain"} {
			if dead[method] {
				out[method][li] = -1
				continue
			}
			var total time.Duration
			ran := 0
			for s := 0; s < seeds; s++ {
				d, err := synth.Generate(synth.Params{
					Seed:      int64(100*s + li),
					SNRdB:     35,
					N:         n,
					MinSegLen: max(6, n/16),
				})
				if err != nil {
					return nil, err
				}
				var opts core.Options
				if method == "TSExplain" {
					opts = core.DefaultOptions()
				}
				start := time.Now()
				eng, err := core.NewEngine(d.Rel, core.Query{Measure: "sales", Agg: relation.Sum}, opts)
				if err != nil {
					return nil, err
				}
				if _, err := eng.Explain(); err != nil {
					return nil, err
				}
				el := time.Since(start)
				total += el
				ran++
				if el > budget {
					dead[method] = true
					break
				}
			}
			out[method][li] = (total / time.Duration(ran)).Seconds()
		}
	}

	fmt.Fprintf(w, "Figure 17 — scalability (avg seconds; %d seed(s), budget %v; -1 = terminated)\n", seeds, budget)
	fmt.Fprintf(w, "  %-18s", "length")
	for _, n := range lengths {
		fmt.Fprintf(w, "  %8d", n)
	}
	fmt.Fprintln(w)
	for _, m := range []string{"VanillaTSExplain", "TSExplain"} {
		fmt.Fprintf(w, "  %-18s", m)
		for li := range lengths {
			fmt.Fprintf(w, "  %8.3f", out[m][li])
		}
		fmt.Fprintln(w)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
