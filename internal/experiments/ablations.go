package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/datasets"
	"repro/internal/evalmetrics"
	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/segment"
	"repro/internal/synth"
)

// AblationRectification quantifies the rectified-relevance design of
// Table 2: on the synthetic corpus at SNR=35, the ground-truth rank of
// the tse objective with and without zeroing opposite-effect relevance.
// Rectification matters because a slice that pushes the KPI up in one
// object but down in another must not count as a consistent explanation.
func AblationRectification(w io.Writer, cfg Config) error {
	corpus, err := synth.Corpus(cfg.datasets(), corpusSeed, 35)
	if err != nil {
		return err
	}
	samples := cfg.samples() / 10
	if samples < 100 {
		samples = 100
	}
	var withSum, withoutSum float64
	for di, d := range corpus {
		u, err := explain.NewUniverse(d.Rel, explain.Config{Measure: "sales", Agg: relation.Sum})
		if err != nil {
			return err
		}
		exp := segment.NewExplainer(u, segment.ExplainerConfig{M: 3})
		truth := d.GroundTruthScheme()
		n := d.Rel.NumTimestamps()
		rng := rand.New(rand.NewSource(int64(di)))
		schemes := make([][]int, samples)
		for i := range schemes {
			schemes[i] = evalmetrics.RandomScheme(rng, n, d.K)
		}
		rank := func(rectify bool) float64 {
			vc := segment.NewVarCalc(exp, segment.Tse)
			vc.SetRectify(rectify)
			truthVar := vc.TotalVariance(truth)
			r := 1
			for _, s := range schemes {
				if vc.TotalVariance(s) < truthVar-1e-12 {
					r++
				}
			}
			return float64(r)
		}
		withSum += rank(true)
		withoutSum += rank(false)
	}
	nd := float64(len(corpus))
	fmt.Fprintln(w, "Ablation — rectified relevance (ground-truth rank, lower is better)")
	fmt.Fprintf(w, "  with rectification:    %.2f\n", withSum/nd)
	fmt.Fprintf(w, "  without rectification: %.2f\n", withoutSum/nd)
	return nil
}

// AblationGuessInit sweeps the guess-and-verify initial m̄ on the Liquor
// dataset: too small wastes rounds on re-guessing, too large wastes DP
// work per segment.
func AblationGuessInit(w io.Writer, cfg Config) error {
	d := datasets.Liquor()
	fmt.Fprintln(w, "Ablation — guess-and-verify initial m̄ (Liquor)")
	fmt.Fprintf(w, "  %-6s %12s %12s %10s\n", "m̄", "cascading(s)", "rounds/seg", "variance")
	for _, init := range []int{8, 30, 120} {
		opts := engineOptions(d, true)
		opts.GuessInit = init
		res, err := runDataset(d, opts)
		if err != nil {
			return err
		}
		perSeg := float64(res.Stats.GuessRounds) / float64(res.Stats.CASolves)
		fmt.Fprintf(w, "  %-6d %12.3f %12.2f %10.3f\n",
			init, res.Timings.Cascading.Seconds(), perSeg, res.TotalVariance)
	}
	return nil
}

// AblationSketchSize sweeps the sketch budget |S| on the covid
// total-confirmed-cases dataset: smaller sketches are faster but risk
// missing good cut positions.
func AblationSketchSize(w io.Writer, cfg Config) error {
	d := datasets.CovidTotal()
	n := d.Rel.NumTimestamps()
	L := n / 20
	if L > 20 {
		L = 20
	}
	fmt.Fprintln(w, "Ablation — sketch budget |S| (covid total-confirmed-cases)")
	fmt.Fprintf(w, "  %-10s %10s %12s %10s\n", "|S|", "total(s)", "segment(s)", "variance")
	for _, mult := range []int{1, 3, 6} {
		opts := engineOptions(d, true)
		opts.Sketch = segment.SketchConfig{Size: mult * n / (2 * L) * 2} // ≈ mult·n/L
		res, err := runDataset(d, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10d %10.3f %12.3f %10.3f\n",
			res.Stats.SketchSize,
			res.Timings.Total().Seconds(),
			res.Timings.Segmentation.Seconds(),
			res.TotalVariance)
	}
	return nil
}

// AblationFilterRatio sweeps the support-filter ratio on Liquor: higher
// ratios prune more candidates (faster Cascading Analysts) but may drop
// legitimate explanations.
func AblationFilterRatio(w io.Writer, cfg Config) error {
	d := datasets.Liquor()
	fmt.Fprintln(w, "Ablation — support filter ratio (Liquor)")
	fmt.Fprintf(w, "  %-10s %12s %12s %10s\n", "ratio", "filtered ε", "cascading(s)", "variance")
	for _, ratio := range []float64{0.0001, 0.001, 0.01} {
		opts := engineOptions(d, true)
		opts.FilterRatio = ratio
		res, err := runDataset(d, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10g %12d %12.3f %10.3f\n",
			ratio, res.Stats.FilteredEpsilon,
			res.Timings.Cascading.Seconds(), res.TotalVariance)
	}
	return nil
}
