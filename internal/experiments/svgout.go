package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/render"
)

// WriteCaseStudySVGs renders the Figure 2/11-14/18 visualizations as SVG
// files in dir: for each real-world dataset, the evolving-explanation
// trendlines and the K-Variance curve. It returns the files written.
func WriteCaseStudySVGs(w io.Writer, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sets := []*datasets.Dataset{
		datasets.CovidTotal(),
		datasets.CovidDaily(),
		datasets.SP500(),
		datasets.Liquor(),
		datasets.VaxDeaths(),
	}
	var written []string
	for _, d := range sets {
		res, err := runDataset(d, engineOptions(d, true))
		if err != nil {
			return nil, err
		}
		for _, out := range []struct {
			suffix string
			draw   func(io.Writer, *core.Result, string) error
		}{
			{"trendlines", render.Trendlines},
			{"kvariance", render.KVarianceCurve},
		} {
			path := filepath.Join(dir, fmt.Sprintf("%s-%s.svg", d.Name, out.suffix))
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			err = out.draw(f, res, fmt.Sprintf("%s (%s)", d.Name, out.suffix))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, err
			}
			written = append(written, path)
			fmt.Fprintf(w, "wrote %s\n", path)
		}
	}
	return written, nil
}
