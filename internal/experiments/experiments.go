// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 4.2, 7, and 8). Each experiment prints the same
// rows/series the paper reports, so EXPERIMENTS.md can record
// paper-vs-measured side by side. cmd/experiments dispatches to these
// functions; the root bench_test.go benchmarks them.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/relation"
	"repro/internal/timeseries"
)

// Config tunes how heavy the experiment runs are. The zero value uses the
// paper's full settings.
type Config struct {
	// Samples is the random-scheme sample count of Figure 6 (default
	// 10000, the paper's setting).
	Samples int
	// Datasets is the synthetic corpus size (default 20).
	Datasets int
	// Quick trims the scalability sweep for smoke runs.
	Quick bool
}

func (c Config) samples() int {
	if c.Samples <= 0 {
		return 10000
	}
	return c.Samples
}

func (c Config) datasets() int {
	if c.Datasets <= 0 {
		return 20
	}
	return c.Datasets
}

// engineOptions builds the engine options for a real-world dataset, with
// the dataset's β̄ and smoothing window applied.
func engineOptions(d *datasets.Dataset, optimized bool) core.Options {
	var o core.Options
	if optimized {
		o = core.DefaultOptions()
	}
	o.MaxOrder = d.MaxOrder
	o.SmoothWindow = d.SmoothWindow
	return o
}

// runDataset explains one real-world dataset.
func runDataset(d *datasets.Dataset, opts core.Options) (*core.Result, error) {
	eng, err := core.NewEngine(d.Rel, core.Query{
		Measure:   d.Measure,
		Agg:       d.Agg,
		ExplainBy: d.ExplainBy,
	}, opts)
	if err != nil {
		return nil, err
	}
	return eng.Explain()
}

// aggregatedSeries returns the (optionally smoothed) aggregated series a
// dataset's baselines segment, matching what the engine explains.
func aggregatedSeries(d *datasets.Dataset) []float64 {
	m := d.Rel.MeasureIndex(d.Measure)
	vals := relation.Values(d.Agg, d.Rel.AggregateSeries(m))
	if d.SmoothWindow > 1 {
		vals = timeseries.MovingAverage(vals, d.SmoothWindow)
	}
	return vals
}

// renderResult prints one engine result as the trendline tables of
// Figures 11-14: one row per segment with the top-m explanations and
// their effects.
func renderResult(w io.Writer, res *core.Result) {
	fmt.Fprintf(w, "  K = %d (auto=%v), total variance = %.3f\n", res.K, res.AutoK, res.TotalVariance)
	fmt.Fprintf(w, "  cut positions: %v\n", cutsWithLabels(res))
	for _, seg := range res.Segments {
		fmt.Fprintf(w, "  %s ~ %s\n", seg.StartLabel, seg.EndLabel)
		if len(seg.Top) == 0 {
			fmt.Fprintln(w, "    (no slice moved in this period)")
		}
		for i, e := range seg.Top {
			fmt.Fprintf(w, "    top-%d  %-48s %s  γ=%.4g\n", i+1, e.Predicates, e.Effect, e.Gamma)
		}
	}
}

// cutsWithLabels renders cut positions with their time labels.
func cutsWithLabels(res *core.Result) string {
	var sb strings.Builder
	for i, c := range res.Cuts() {
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "%s", res.Labels[c])
	}
	return sb.String()
}

// renderBaselineCuts prints the cut dates a baseline chooses.
func renderBaselineCuts(w io.Writer, name string, cuts []int, labels []string) {
	var sb strings.Builder
	for i, c := range cuts {
		if i > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString(labels[c])
	}
	fmt.Fprintf(w, "  %-10s %s\n", name+":", sb.String())
}

// baselineCuts runs all three baselines with the given K on a series.
// Window parameters follow Section 7.2's tuning (roughly 8% of the series,
// clamped to a sensible range).
func baselineCuts(vals []float64, k int) (map[string][]int, error) {
	n := len(vals)
	w := n / 12
	if w < 5 {
		w = 5
	}
	if w > 25 {
		w = 25
	}
	out := make(map[string][]int, 3)
	bu, err := baseline.BottomUp(vals, k)
	if err != nil {
		return nil, fmt.Errorf("bottom-up: %w", err)
	}
	out["Bottom-Up"] = bu
	fl, err := baseline.FLUSS(vals, k, w)
	if err != nil {
		return nil, fmt.Errorf("fluss: %w", err)
	}
	out["FLUSS"] = fl
	nn, err := baseline.NNSegment(vals, k, w)
	if err != nil {
		return nil, fmt.Errorf("nnsegment: %w", err)
	}
	out["NNSegment"] = nn
	return out, nil
}

// sparkline renders a coarse text plot of a series, for the "figure"
// halves of the case studies.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if width > len(vals) {
		width = len(vals)
	}
	var sb strings.Builder
	for i := 0; i < width; i++ {
		v := vals[i*len(vals)/width]
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
