package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
)

// caseStudy runs one real-world dataset with the optimized engine and the
// three baselines, printing the Figure 11-14 style comparison: the
// aggregated trend, TSExplain's segmentation with top-3 explanations per
// segment (the Table 3-5 content), and each baseline's cut dates.
func caseStudy(w io.Writer, d *datasets.Dataset, figure string) (*core.Result, error) {
	fmt.Fprintf(w, "%s — %s\n", figure, d.Name)
	vals := aggregatedSeries(d)
	fmt.Fprintf(w, "  trend  %s\n", sparkline(vals, 80))

	res, err := runDataset(d, engineOptions(d, true))
	if err != nil {
		return nil, err
	}
	renderResult(w, res)

	cuts, err := baselineCuts(vals, res.K)
	if err != nil {
		return nil, err
	}
	labels := d.Rel.TimeLabels()
	for _, name := range []string{"Bottom-Up", "FLUSS", "NNSegment"} {
		renderBaselineCuts(w, name, cuts[name], labels)
	}
	return res, nil
}

// Fig11 reproduces the covid total-confirmed-cases case study (Figure 11
// and the Figure 2 legend).
func Fig11(w io.Writer, cfg Config) (*core.Result, error) {
	return caseStudy(w, datasets.CovidTotal(), "Figure 11")
}

// Fig12 reproduces the covid daily-confirmed-cases case study (Figure 12
// and Table 3).
func Fig12(w io.Writer, cfg Config) (*core.Result, error) {
	return caseStudy(w, datasets.CovidDaily(), "Figure 12 / Table 3")
}

// Fig13 reproduces the S&P 500 case study (Figure 13 and Table 4).
func Fig13(w io.Writer, cfg Config) (*core.Result, error) {
	return caseStudy(w, datasets.SP500(), "Figure 13 / Table 4")
}

// Fig14 reproduces the Liquor case study (Figure 14 and Table 5).
func Fig14(w io.Writer, cfg Config) (*core.Result, error) {
	return caseStudy(w, datasets.Liquor(), "Figure 14 / Table 5")
}

// Fig18 reproduces the time-varying-attribute discussion (Section 8,
// Figure 18): weekly covid deaths explained by age-group and vaccination
// status.
func Fig18(w io.Writer, cfg Config) (*core.Result, error) {
	d := datasets.VaxDeaths()
	fmt.Fprintf(w, "Figure 18 — %s (time-varying attribute)\n", d.Name)
	vals := aggregatedSeries(d)
	fmt.Fprintf(w, "  trend  %s\n", sparkline(vals, 78))
	res, err := runDataset(d, engineOptions(d, true))
	if err != nil {
		return nil, err
	}
	renderResult(w, res)
	return res, nil
}
