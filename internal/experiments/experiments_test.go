package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// quickCfg keeps experiment tests fast while exercising the full paths.
var quickCfg = Config{Samples: 200, Datasets: 3, Quick: true}

func TestFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf, quickCfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "segment number K") || !strings.Contains(out, "length range") {
		t.Errorf("unexpected fig4 output:\n%s", out)
	}
}

func TestFig5(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, quickCfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ground-truth cuts") {
		t.Errorf("unexpected fig5 output:\n%s", buf.String())
	}
}

func TestFig6TseWins(t *testing.T) {
	var buf bytes.Buffer
	// Larger than quickCfg: the rank comparison needs enough datasets for
	// the averages to stabilize.
	avg, err := Fig6(&buf, Config{Samples: 400, Datasets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(avg) != 8 {
		t.Fatalf("fig6 returned %d metrics, want 8", len(avg))
	}
	// The paper's takeaway (with the full 20×10000 configuration): tse has
	// the best average rank at every SNR. The quick configuration is far
	// smaller, so assert the robust form: tse is best when averaged over
	// all SNR levels, and strictly best at the cleaner levels.
	mean := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	tse := avg["tse"]
	for name, ranks := range avg {
		if mean(tse) > mean(ranks)+0.25 {
			t.Errorf("tse mean rank %.2f worse than %s mean rank %.2f", mean(tse), name, mean(ranks))
		}
	}
	// At the cleanest level everything finds the ground truth optimal and
	// ties at rank 1 (the paper's SNR=50 observation).
	last := len(tse) - 1
	if tse[last] > 1.5 {
		t.Errorf("tse rank at SNR=50 = %.2f, want ≈1", tse[last])
	}
}

func TestFig10TSExplainBeatsShapeBaselines(t *testing.T) {
	var buf bytes.Buffer
	avg, err := Fig10(&buf, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// At the cleanest level TSExplain must be near-perfect and far below
	// FLUSS/NNSegment everywhere.
	last := len(avg["TSExplain"]) - 1
	if avg["TSExplain"][last] > 1.0 {
		t.Errorf("TSExplain at SNR=50: %.2f%%, want ≈0", avg["TSExplain"][last])
	}
	for si := range avg["TSExplain"] {
		if avg["TSExplain"][si] >= avg["FLUSS"][si] {
			t.Errorf("SNR idx %d: TSExplain %.2f not better than FLUSS %.2f",
				si, avg["TSExplain"][si], avg["FLUSS"][si])
		}
		if avg["TSExplain"][si] >= avg["NNSegment"][si] {
			t.Errorf("SNR idx %d: TSExplain %.2f not better than NNSegment %.2f",
				si, avg["TSExplain"][si], avg["NNSegment"][si])
		}
	}
}

func TestFig18Narrative(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig18(&buf, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 {
		t.Fatalf("fig18 K = %d, want ≥ 2", res.K)
	}
	// Early segment driven by vaccination status, a later one by age 50+.
	first := res.Segments[0]
	if len(first.Top) == 0 || !strings.Contains(first.Top[0].Predicates, "vaccinated=NO") {
		t.Errorf("first segment top = %+v, want vaccinated=NO", first.Top)
	}
	foundAge := false
	for _, seg := range res.Segments[1:] {
		if len(seg.Top) > 0 && strings.Contains(seg.Top[0].Predicates, "age-group=50+") {
			foundAge = true
		}
	}
	if !foundAge {
		t.Error("no later segment driven by age-group=50+")
	}
}

func TestTable6(t *testing.T) {
	var buf bytes.Buffer
	// Full config: the test checks all four datasets appear.
	if err := Table6(&buf, Config{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"total-confirmed-cases", "daily-confirmed-cases", "sp500", "liquor"} {
		if !strings.Contains(out, name) {
			t.Errorf("table6 missing dataset %s:\n%s", name, out)
		}
	}
}

func TestCaseStudyCovidTotal(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig11(&buf, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 4 || res.K > 12 {
		t.Errorf("covid total K = %d, want a handful of segments", res.K)
	}
	out := buf.String()
	// The spring wave must be attributed to New York somewhere.
	if !strings.Contains(out, "state=New York") {
		t.Errorf("covid explanation never mentions New York:\n%s", out)
	}
	// California must drive the last (winter) segment.
	lastSeg := res.Segments[len(res.Segments)-1]
	if len(lastSeg.Top) == 0 || lastSeg.Top[0].Attrs["state"] != "California" {
		t.Errorf("winter segment top = %+v, want California", lastSeg.Top)
	}
	if !strings.Contains(out, "Bottom-Up:") || !strings.Contains(out, "FLUSS:") {
		t.Error("baseline cuts missing from case study output")
	}
}

func TestCaseStudySP500(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig13(&buf, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Crash segment: technology leads the decrease; rebound: technology
	// leads the increase.
	var crashSeen, reboundSeen bool
	for _, seg := range res.Segments {
		if len(seg.Top) == 0 {
			continue
		}
		top := seg.Top[0]
		if top.Attrs["category"] == "technology" {
			if top.Effect.String() == "-" && seg.StartLabel < "2020-03-25" && seg.EndLabel <= "2020-03-25" {
				crashSeen = true
			}
			if top.Effect.String() == "+" && seg.StartLabel >= "2020-03-01" && seg.EndLabel > "2020-06-01" {
				reboundSeen = true
			}
		}
	}
	if !crashSeen {
		t.Error("no tech-led crash segment found")
	}
	if !reboundSeen {
		t.Error("no tech-led rebound segment found")
	}
}

func TestCaseStudyLiquor(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig14(&buf, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The pandemic narrative: large packs and the BV=1000 collapse.
	if !strings.Contains(out, "Pack=12") {
		t.Errorf("liquor output missing Pack=12:\n%s", out)
	}
	if !strings.Contains(out, "Bottle Volume (ml)=1000") {
		t.Errorf("liquor output missing BV=1000:\n%s", out)
	}
	// Explanations stay within BV/P; Vendor Name and Category Name are
	// the uninteresting attributes (Section 7.4.3).
	for _, seg := range res.Segments {
		for _, e := range seg.Top {
			if strings.Contains(e.Predicates, "Vendor Name") {
				t.Errorf("vendor surfaced as a top explanation: %s", e.Predicates)
			}
		}
	}
}

func TestFig15AndTable7(t *testing.T) {
	if testing.Short() {
		t.Skip("latency breakdown is slow")
	}
	var buf bytes.Buffer
	timings, err := Fig15(&buf, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for ds, byVariant := range timings {
		v := byVariant["Vanilla"].Total()
		o := byVariant["O1+O2"].Total()
		if o >= v {
			t.Errorf("%s: O1+O2 (%v) not faster than Vanilla (%v)", ds, o, v)
		}
	}
	var buf2 bytes.Buffer
	if err := Table7(&buf2, quickCfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "Var(Vanilla)") {
		t.Errorf("table7 output:\n%s", buf2.String())
	}
}

func TestFig17Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep is slow")
	}
	var buf bytes.Buffer
	cfg := quickCfg
	out, err := Fig17(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := out["VanillaTSExplain"]
	o := out["TSExplain"]
	// At the largest length both ran, optimized must be faster.
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] > 0 && o[i] > 0 {
			if o[i] > v[i] {
				t.Errorf("length idx %d: optimized %.3fs slower than vanilla %.3fs", i, o[i], v[i])
			}
			break
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	var buf bytes.Buffer
	cfg := Config{Samples: 300, Datasets: 2, Quick: true}
	if err := AblationRectification(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "with rectification") {
		t.Errorf("ablation output:\n%s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 3}, 4)
	if len([]rune(got)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(got)))
	}
	flat := sparkline([]float64{5, 5, 5}, 3)
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline = %q", flat)
		}
	}
}

func TestWriteCaseStudySVGs(t *testing.T) {
	if testing.Short() {
		t.Skip("renders all five case studies")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	files, err := WriteCaseStudySVGs(&buf, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 10 {
		t.Fatalf("wrote %d files, want 10", len(files))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not SVG", f)
		}
	}
}
