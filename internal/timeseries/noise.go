package timeseries

import (
	"math"
	"math/rand"
)

// SNRdB computes the signal-to-noise ratio in decibels between a clean
// signal and its noisy version: 10·log10(P_signal / P_noise), where the
// noise is the element-wise difference. It returns +Inf when the two are
// identical.
func SNRdB(clean, noisy []float64) float64 {
	n := len(clean)
	if len(noisy) < n {
		n = len(noisy)
	}
	var noisePower float64
	for i := 0; i < n; i++ {
		d := noisy[i] - clean[i]
		noisePower += d * d
	}
	if n > 0 {
		noisePower /= float64(n)
	}
	sigPower := Power(clean[:n])
	if noisePower == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sigPower/noisePower)
}

// NoiseSigmaFor returns the standard deviation of zero-mean Gaussian noise
// that yields the target SNR (in dB) against a signal with the given
// power: σ² = P_signal / 10^(SNR/10).
func NoiseSigmaFor(signalPower, snrDB float64) float64 {
	if signalPower <= 0 {
		return 0
	}
	return math.Sqrt(signalPower / math.Pow(10, snrDB/10))
}

// AddGaussianNoise returns a copy of v with N(0, σ²) noise added, where σ
// is chosen so the expected SNR equals snrDB (Section 4.2.1). The rng
// makes the corruption deterministic for a fixed seed.
func AddGaussianNoise(v []float64, snrDB float64, rng *rand.Rand) []float64 {
	sigma := NoiseSigmaFor(Power(v), snrDB)
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x + rng.NormFloat64()*sigma
	}
	return out
}

// EstimateSNRdB estimates a series' signal-to-noise ratio by treating a
// centered moving average as the signal and the residual as noise. It is
// the heuristic behind automatic smoothing-window selection: fuzzy series
// (low estimated SNR) get smoothed before explaining (Section 7.4).
func EstimateSNRdB(v []float64) float64 {
	if len(v) < 8 {
		return math.Inf(1)
	}
	smooth := MovingAverage(v, 5)
	var noisePower float64
	for i := range v {
		d := v[i] - smooth[i]
		noisePower += d * d
	}
	noisePower /= float64(len(v))
	// The residual of a width-w centered average underestimates the noise
	// by the factor (1 − 1/w); correct for it.
	noisePower /= 1 - 1.0/5
	if noisePower == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(Power(smooth)/noisePower)
}

// AutoSmoothWindow picks a moving-average window from the estimated SNR:
// clean series are left alone, fuzzy ones get progressively stronger
// smoothing.
func AutoSmoothWindow(v []float64) int {
	snr := EstimateSNRdB(v)
	switch {
	case snr >= 38:
		return 0
	case snr >= 30:
		return 3
	default:
		return 5
	}
}
