// Package timeseries provides the aggregated-time-series type and the
// signal utilities TSExplain needs: moving-average smoothing, Gaussian
// noise injection at a target signal-to-noise ratio, classical seasonal
// decomposition, and summary statistics.
package timeseries

import (
	"fmt"
	"math"
)

// Series is an aggregated time series (Definition 3.6): values indexed by
// time position, with optional human-readable labels per position.
type Series struct {
	// Values holds p_i.v for each point, in time order.
	Values []float64
	// Labels optionally holds p_i.t (e.g. dates). Either nil or the same
	// length as Values.
	Labels []string
}

// New returns a Series over the given values with no labels. The slice is
// used directly, not copied.
func New(values []float64) Series { return Series{Values: values} }

// NewLabeled returns a Series with labels. It panics if the lengths
// disagree, since that is always a programming error.
func NewLabeled(values []float64, labels []string) Series {
	if labels != nil && len(labels) != len(values) {
		panic(fmt.Sprintf("timeseries: %d values but %d labels", len(values), len(labels)))
	}
	return Series{Values: values, Labels: labels}
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.Values) }

// Label returns the label of point i, or its index rendered as text when
// the series is unlabeled.
func (s Series) Label(i int) string {
	if s.Labels != nil {
		return s.Labels[i]
	}
	return fmt.Sprintf("%d", i)
}

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	out := Series{Values: append([]float64(nil), s.Values...)}
	if s.Labels != nil {
		out.Labels = append([]string(nil), s.Labels...)
	}
	return out
}

// Slice returns the sub-series over point positions [from, to] inclusive.
// The result shares backing arrays with s.
func (s Series) Slice(from, to int) Series {
	out := Series{Values: s.Values[from : to+1]}
	if s.Labels != nil {
		out.Labels = s.Labels[from : to+1]
	}
	return out
}

// Delta returns the total change over the series, v[n-1] − v[0]. An empty
// series has zero delta.
func (s Series) Delta() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1] - s.Values[0]
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// Variance returns the population variance, or 0 for series shorter than
// one point.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var ss float64
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(v))
}

// Power returns the mean squared value of the signal (the "signal power"
// used in SNR computations).
func Power(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	return ss / float64(len(v))
}

// MovingAverage returns a centered moving average with the given window
// (clamped near the edges), which is the smoothing TSExplain applies to
// very fuzzy datasets before explaining them (Section 7.4). window <= 1
// returns a copy.
func MovingAverage(v []float64, window int) []float64 {
	out := make([]float64, len(v))
	if window <= 1 {
		copy(out, v)
		return out
	}
	half := window / 2
	// Prefix sums make each output O(1).
	prefix := make([]float64, len(v)+1)
	for i, x := range v {
		prefix[i+1] = prefix[i] + x
	}
	for i := range v {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(v) {
			hi = len(v) - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}

// CumSum returns the running total of v, converting a "daily" series into
// a "total" series (e.g. daily-confirmed-cases into total-confirmed-cases).
func CumSum(v []float64) []float64 {
	out := make([]float64, len(v))
	var run float64
	for i, x := range v {
		run += x
		out[i] = run
	}
	return out
}

// Diff returns the first difference of v (length len(v)-1), the inverse of
// CumSum up to the initial value.
func Diff(v []float64) []float64 {
	if len(v) == 0 {
		return nil
	}
	out := make([]float64, len(v)-1)
	for i := 1; i < len(v); i++ {
		out[i-1] = v[i] - v[i-1]
	}
	return out
}

// ZNormalize returns (v − mean)/std. A constant series normalizes to all
// zeros rather than NaNs, matching the convention of matrix-profile
// implementations.
func ZNormalize(v []float64) []float64 {
	out := make([]float64, len(v))
	m := Mean(v)
	sd := math.Sqrt(Variance(v))
	if sd == 0 {
		return out
	}
	for i, x := range v {
		out[i] = (x - m) / sd
	}
	return out
}
