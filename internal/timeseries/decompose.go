package timeseries

// Decomposition holds the classical additive decomposition of a series
// into trend + seasonal + residual components (Section 8, "Seasonal
// Datasets": users can decompose a seasonal series and explain trend and
// seasonality separately).
type Decomposition struct {
	Trend    []float64
	Seasonal []float64
	Residual []float64
}

// DecomposeAdditive performs classical additive decomposition with the
// given seasonal period:
//
//  1. trend = centered moving average with window = period,
//  2. seasonal[i] = mean of (v − trend) over all points with the same
//     phase i mod period, centered to sum to zero over one period,
//  3. residual = v − trend − seasonal.
//
// period must be ≥ 2 and ≤ len(v); otherwise the whole signal is treated
// as trend.
func DecomposeAdditive(v []float64, period int) Decomposition {
	n := len(v)
	d := Decomposition{
		Trend:    make([]float64, n),
		Seasonal: make([]float64, n),
		Residual: make([]float64, n),
	}
	if period < 2 || period > n {
		copy(d.Trend, v)
		return d
	}
	d.Trend = MovingAverage(v, period)

	// Average detrended values by phase.
	phaseSum := make([]float64, period)
	phaseCnt := make([]int, period)
	for i := 0; i < n; i++ {
		p := i % period
		phaseSum[p] += v[i] - d.Trend[i]
		phaseCnt[p]++
	}
	phaseAvg := make([]float64, period)
	var total float64
	for p := 0; p < period; p++ {
		if phaseCnt[p] > 0 {
			phaseAvg[p] = phaseSum[p] / float64(phaseCnt[p])
		}
		total += phaseAvg[p]
	}
	// Center the seasonal component so it sums to zero over one period.
	center := total / float64(period)
	for p := range phaseAvg {
		phaseAvg[p] -= center
	}
	for i := 0; i < n; i++ {
		d.Seasonal[i] = phaseAvg[i%period]
		d.Residual[i] = v[i] - d.Trend[i] - d.Seasonal[i]
	}
	return d
}
