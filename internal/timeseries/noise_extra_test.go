package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimateSNRdB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	signal := make([]float64, 4000)
	for i := range signal {
		signal[i] = 200 + 0.05*float64(i) + 80*math.Sin(float64(i)/150)
	}
	for _, target := range []float64{20, 30, 40} {
		noisy := AddGaussianNoise(signal, target, rng)
		got := EstimateSNRdB(noisy)
		if math.Abs(got-target) > 4 {
			t.Errorf("target %g dB: estimated %g dB", target, got)
		}
	}
	if got := EstimateSNRdB(signal); got < 38 {
		t.Errorf("clean signal estimated at %g dB, want high", got)
	}
	if got := EstimateSNRdB([]float64{1, 2, 3}); !math.IsInf(got, 1) {
		t.Errorf("short series estimate = %g, want +Inf", got)
	}
}

func TestAutoSmoothWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	signal := make([]float64, 4000)
	for i := range signal {
		signal[i] = 200 + 0.05*float64(i) + 80*math.Sin(float64(i)/150)
	}
	if got := AutoSmoothWindow(signal); got != 0 {
		t.Errorf("clean series window = %d, want 0", got)
	}
	fuzzy := AddGaussianNoise(signal, 20, rng)
	if got := AutoSmoothWindow(fuzzy); got != 5 {
		t.Errorf("very fuzzy series window = %d, want 5", got)
	}
	mid := AddGaussianNoise(signal, 33, rng)
	if got := AutoSmoothWindow(mid); got != 3 {
		t.Errorf("mildly fuzzy series window = %d, want 3", got)
	}
}
