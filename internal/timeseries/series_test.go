package timeseries

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSeriesBasics(t *testing.T) {
	s := NewLabeled([]float64{1, 2, 4}, []string{"a", "b", "c"})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Label(1) != "b" {
		t.Errorf("Label(1) = %q, want b", s.Label(1))
	}
	if got := New([]float64{5}).Label(0); got != "0" {
		t.Errorf("unlabeled Label(0) = %q, want 0", got)
	}
	if got := s.Delta(); got != 3 {
		t.Errorf("Delta = %g, want 3", got)
	}
	if got := (Series{}).Delta(); got != 0 {
		t.Errorf("empty Delta = %g, want 0", got)
	}
	sub := s.Slice(1, 2)
	if !reflect.DeepEqual(sub.Values, []float64{2, 4}) || sub.Label(0) != "b" {
		t.Errorf("Slice = %+v", sub)
	}
	c := s.Clone()
	c.Values[0] = 99
	c.Labels[0] = "z"
	if s.Values[0] != 1 || s.Labels[0] != "a" {
		t.Error("Clone shares storage with original")
	}
}

func TestNewLabeledPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on length mismatch")
		}
	}()
	NewLabeled([]float64{1}, []string{"a", "b"})
}

func TestMeanVariancePower(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(v); got != 4 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := Power([]float64{3, 4}); got != 12.5 {
		t.Errorf("Power = %g, want 12.5", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Power(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
}

func TestMovingAverage(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(v, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("MA[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if !reflect.DeepEqual(MovingAverage(v, 1), v) {
		t.Error("window 1 should copy input")
	}
	cp := MovingAverage(v, 0)
	cp[0] = 42
	if v[0] != 1 {
		t.Error("MovingAverage must not alias its input")
	}
}

func TestMovingAveragePreservesConstant(t *testing.T) {
	f := func(raw uint8, val float64) bool {
		n := int(raw%50) + 2
		if math.IsNaN(val) || math.IsInf(val, 0) {
			val = 1
		}
		// Bound magnitude so the prefix-sum accumulator cannot overflow.
		val = math.Mod(val, 1e12)
		v := make([]float64, n)
		for i := range v {
			v[i] = val
		}
		for _, w := range []int{2, 3, 5, n} {
			got := MovingAverage(v, w)
			for _, g := range got {
				if !almostEqual(g, val, math.Abs(val)*1e-9+1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCumSumDiffRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				v[i] = float64(i)
			}
			// Keep magnitudes sane so float error stays bounded.
			v[i] = math.Mod(v[i], 1e6)
		}
		c := CumSum(v)
		d := Diff(c)
		if len(v) == 0 {
			return len(c) == 0 && d == nil
		}
		if len(d) != len(v)-1 {
			return false
		}
		for i := range d {
			if !almostEqual(d[i], v[i+1], 1e-6) {
				return false
			}
		}
		return almostEqual(c[0], v[0], 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZNormalize(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	z := ZNormalize(v)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("normalized mean = %g", Mean(z))
	}
	if !almostEqual(Variance(z), 1, 1e-12) {
		t.Errorf("normalized variance = %g", Variance(z))
	}
	flat := ZNormalize([]float64{7, 7, 7})
	for _, x := range flat {
		if x != 0 {
			t.Errorf("constant series should normalize to zeros, got %v", flat)
		}
	}
}

func TestSNRAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	signal := make([]float64, 5000)
	for i := range signal {
		signal[i] = 100 + 50*math.Sin(float64(i)/20)
	}
	for _, target := range []float64{20, 35, 50} {
		noisy := AddGaussianNoise(signal, target, rng)
		got := SNRdB(signal, noisy)
		if !almostEqual(got, target, 1.0) {
			t.Errorf("target SNR %g dB: measured %g dB", target, got)
		}
	}
	if got := SNRdB(signal, signal); !math.IsInf(got, 1) {
		t.Errorf("identical signals: SNR = %g, want +Inf", got)
	}
	if NoiseSigmaFor(0, 30) != 0 {
		t.Error("zero-power signal should need zero noise")
	}
}

func TestDecomposeAdditive(t *testing.T) {
	period := 7
	n := 9 * period
	v := make([]float64, n)
	for i := range v {
		trend := 0.5 * float64(i)
		seasonal := 10 * math.Sin(2*math.Pi*float64(i%period)/float64(period))
		v[i] = trend + seasonal
	}
	d := DecomposeAdditive(v, period)
	// Reconstruction must be exact by construction of the residual.
	for i := range v {
		rec := d.Trend[i] + d.Seasonal[i] + d.Residual[i]
		if !almostEqual(rec, v[i], 1e-9) {
			t.Fatalf("reconstruction[%d] = %g, want %g", i, rec, v[i])
		}
	}
	// Seasonal component sums to ~0 over one period.
	var sum float64
	for p := 0; p < period; p++ {
		sum += d.Seasonal[p]
	}
	if !almostEqual(sum, 0, 1e-9) {
		t.Errorf("seasonal sum over period = %g, want 0", sum)
	}
	// In the interior the residual should be small relative to the signal.
	for i := period; i < n-period; i++ {
		if math.Abs(d.Residual[i]) > 3 {
			t.Errorf("residual[%d] = %g, too large", i, d.Residual[i])
		}
	}
}

func TestDecomposeDegenerate(t *testing.T) {
	v := []float64{1, 2, 3}
	d := DecomposeAdditive(v, 0)
	if !reflect.DeepEqual(d.Trend, v) {
		t.Errorf("degenerate period: trend = %v, want input", d.Trend)
	}
	for i := range v {
		if d.Seasonal[i] != 0 || d.Residual[i] != 0 {
			t.Errorf("degenerate period: nonzero seasonal/residual at %d", i)
		}
	}
	d = DecomposeAdditive(v, 10)
	if !reflect.DeepEqual(d.Trend, v) {
		t.Errorf("period > n: trend = %v, want input", d.Trend)
	}
}
