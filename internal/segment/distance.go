package segment

import (
	"fmt"
	"math"

	"repro/internal/cascading"
)

// VarianceKind selects one of the eight within-segment variance designs
// compared in Section 4.2.2. Tse is the paper's proposal; the others are
// the alternatives it is evaluated against.
type VarianceKind int

const (
	// Tse averages both NDCG directions between object and centroid
	// (Eq. 6 inside Eq. 7). This is TSExplain's metric.
	Tse VarianceKind = iota
	// Dist1 only asks how well each object's explanations explain the
	// centroid (Eq. 8).
	Dist1
	// Dist2 only asks how well the centroid's explanations explain each
	// object (Eq. 9).
	Dist2
	// AllPair averages the Tse distance over every object pair in the
	// segment instead of object-vs-centroid (Eq. 10).
	AllPair
	// STse is Tse with squared NDCG terms (l2 instead of l1 averaging).
	STse
	// SDist1 is Dist1 with a squared NDCG term.
	SDist1
	// SDist2 is Dist2 with a squared NDCG term.
	SDist2
	// SAllPair is AllPair built from the squared-term distance.
	SAllPair

	numVarianceKinds
)

// AllVarianceKinds lists every variance design, in the order used by the
// Figure 6 experiment.
func AllVarianceKinds() []VarianceKind {
	out := make([]VarianceKind, numVarianceKinds)
	for i := range out {
		out[i] = VarianceKind(i)
	}
	return out
}

// String returns the metric name used in the paper's plots.
func (k VarianceKind) String() string {
	switch k {
	case Tse:
		return "tse"
	case Dist1:
		return "dist1"
	case Dist2:
		return "dist2"
	case AllPair:
		return "allpair"
	case STse:
		return "Stse"
	case SDist1:
		return "Sdist1"
	case SDist2:
		return "Sdist2"
	case SAllPair:
		return "Sallpair"
	default:
		return fmt.Sprintf("VarianceKind(%d)", int(k))
	}
}

// discounts[r] is 1/log2(r+2), the DCG discount of rank r (0-based),
// precomputed for the ranks any reasonable m uses.
var discounts = func() [64]float64 {
	var d [64]float64
	for r := range d {
		d[r] = 1 / math.Log2(float64(r)+2)
	}
	return d
}()

func discount(r int) float64 {
	if r < len(discounts) {
		return discounts[r]
	}
	return 1 / math.Log2(float64(r)+2)
}

// dcg computes the discounted cumulative gain of the ranked explanation
// list expl (derived on its home segment) against the target segment
// [c, t] (Eq. 3): relevance is γ(E, target), rectified to zero when E's
// change effect differs between its home segment and the target
// (Table 2). rectify=false disables rectification, which the ablation
// bench uses to show the rectification matters.
func (e *Explainer) dcg(expl []cascading.Picked, c, t int, rectify bool) float64 {
	var sum float64
	metric := e.solver.Metric()
	for r, p := range expl {
		gamma, effect := e.u.Gamma(p.ID, c, t, metric)
		if rectify && effect != p.Effect {
			gamma = 0
		}
		sum += gamma * discount(r)
	}
	return sum
}

// idealDCG returns DCG(target, E*_m(target)) (Eq. 4), cached per segment:
// a segment's own explanations need no rectification and their γ over the
// segment is already in the ranked list.
func (e *Explainer) idealDCG(c, t int) float64 {
	key := segKey(c, t)
	if v, ok := e.idealCache.get(key); ok {
		return v
	}
	target := e.TopM(c, t)
	var sum float64
	for r, p := range target.Explanations {
		sum += p.Gamma * discount(r)
	}
	e.idealCache.put(t, key, sum)
	return sum
}

// ndcg computes NDCG(target, E*_m(source)) (Eq. 5): how well the source
// segment's explanations explain the target segment. The result is
// clamped to [0, 1]; a target whose own ideal DCG is zero (no slice moves
// at all) is defined to be perfectly explained by anything.
func (e *Explainer) ndcg(targetC, targetT int, source *cascading.Result, rectify bool) float64 {
	ideal := e.idealDCG(targetC, targetT)
	if ideal == 0 {
		return 1
	}
	got := e.dcg(source.Explanations, targetC, targetT, rectify)
	if got >= ideal {
		return 1
	}
	return got / ideal
}

// Dist computes the explanation distance between segments [ac, at] and
// [bc, bt] under the given kind's directionality (Eqs. 6, 8, 9 and their
// squared variants). For Dist1/Dist2 the first segment plays the centroid
// role, matching Eq. 8/9. The result lies in [0, 1].
func (e *Explainer) Dist(kind VarianceKind, ac, at, bc, bt int) float64 {
	return e.dist(kind, ac, at, bc, bt, true)
}

func (e *Explainer) dist(kind VarianceKind, ac, at, bc, bt int, rectify bool) float64 {
	return e.distPrepared(kind,
		ac, at, e.TopM(ac, at), e.idealDCG(ac, at),
		bc, bt, e.TopM(bc, bt), e.idealDCG(bc, bt),
		rectify)
}

// ndcgPrepared is ndcg with the target's ideal DCG already in hand, so
// the hot loops of the variance calculator avoid every map lookup.
func (e *Explainer) ndcgPrepared(targetC, targetT int, targetIdeal float64, source *cascading.Result, rectify bool) float64 {
	if targetIdeal == 0 {
		return 1
	}
	got := e.dcg(source.Explanations, targetC, targetT, rectify)
	if got >= targetIdeal {
		return 1
	}
	return got / targetIdeal
}

// distPrepared is dist with both segments' top explanations and ideal
// DCGs pre-fetched.
func (e *Explainer) distPrepared(kind VarianceKind,
	ac, at int, a *cascading.Result, aIdeal float64,
	bc, bt int, b *cascading.Result, bIdeal float64,
	rectify bool) float64 {
	switch kind {
	case Tse, AllPair:
		nab := e.ndcgPrepared(ac, at, aIdeal, b, rectify) // b's expl explain a
		nba := e.ndcgPrepared(bc, bt, bIdeal, a, rectify) // a's expl explain b
		return 1 - (nab+nba)/2
	case STse, SAllPair:
		nab := e.ndcgPrepared(ac, at, aIdeal, b, rectify)
		nba := e.ndcgPrepared(bc, bt, bIdeal, a, rectify)
		return 1 - (nab*nab+nba*nba)/2
	case Dist1:
		// How well the object's explanations explain the centroid (a).
		return 1 - e.ndcgPrepared(ac, at, aIdeal, b, rectify)
	case SDist1:
		n := e.ndcgPrepared(ac, at, aIdeal, b, rectify)
		return 1 - n*n
	case Dist2:
		// How well the centroid's explanations explain the object (b).
		return 1 - e.ndcgPrepared(bc, bt, bIdeal, a, rectify)
	case SDist2:
		n := e.ndcgPrepared(bc, bt, bIdeal, a, rectify)
		return 1 - n*n
	default:
		panic("segment: invalid VarianceKind")
	}
}
