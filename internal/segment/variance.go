package segment

import (
	"sort"

	"repro/internal/cascading"
)

// VarCalc computes (and caches) within-segment variances var(P_i) under
// one VarianceKind, following Eq. 7: a segment [a, b] contains the unit
// objects [x, x+1] for a ≤ x < b, its centroid is the segment itself, and
// the variance averages the explanation distance between each object and
// the centroid (or between all object pairs for the AllPair designs).
//
// Two performance structures keep the quantity cheap at scale:
//
//   - the AllPair designs build a 2-D prefix-sum table over the unit-pair
//     distance matrix once, making any segment's pair sum O(1);
//   - SetObjectPositions coarsens objects to sketch intervals, the phase-2
//     granularity the sketching optimization uses on long series.
type VarCalc struct {
	e    *Explainer
	kind VarianceKind
	// rectify toggles the opposite-effect rectification inside DCG; the
	// ablation study disables it.
	rectify bool

	cache *endCache

	// objPos, when non-nil, replaces unit objects with the intervals
	// between consecutive positions (sketch intervals).
	objPos []int

	// pairPrefix[i*ppStride+j] = Σ_{x ≤ i, y ≤ j} D[x][y] with D the
	// strict upper-triangle pair-distance matrix over unit objects; built
	// on first AllPair use. The table is one flat row-major allocation so
	// rectSum's four probes hit contiguous memory with O(1) indexing and
	// no per-row pointer chase.
	pairPrefix []float64
	ppStride   int

	// Dense per-object caches of top explanations and ideal DCGs, built
	// lazily; objRes[i] covers the i-th object.
	objRes   []*cascading.Result
	objIdeal []float64
}

// NewVarCalc returns a variance calculator over the explainer.
func NewVarCalc(e *Explainer, kind VarianceKind) *VarCalc {
	return &VarCalc{e: e, kind: kind, rectify: true, cache: newEndCache()}
}

// SetRectify toggles the rectified-relevance rule (Table 2). It is on by
// default; only the ablation experiment turns it off.
func (vc *VarCalc) SetRectify(on bool) {
	vc.rectify = on
	vc.cache.reset()
	vc.pairPrefix = nil
	vc.objRes, vc.objIdeal = nil, nil
}

// objPrepared returns the cached top explanations and ideal DCG of the
// object starting at bound index oi of the global object list.
func (vc *VarCalc) objPrepared(oi, oc, ot int) (*cascading.Result, float64) {
	count := vc.e.u.NumTimestamps() - 1
	if vc.objPos != nil {
		count = len(vc.objPos) - 1
	}
	if len(vc.objRes) < count {
		// The series grew since the caches were built (streaming append);
		// keep the prefix, add empty slots for the new objects.
		grownRes := make([]*cascading.Result, count)
		copy(grownRes, vc.objRes)
		grownIdeal := make([]float64, count)
		copy(grownIdeal, vc.objIdeal)
		vc.objRes, vc.objIdeal = grownRes, grownIdeal
	}
	if r := vc.objRes[oi]; r != nil {
		return r, vc.objIdeal[oi]
	}
	r := vc.e.TopM(oc, ot)
	ideal := vc.e.idealDCG(oc, ot)
	vc.objRes[oi] = r
	vc.objIdeal[oi] = ideal
	return r, ideal
}

// objIndexOf maps an object's start bound to its index in the global
// object list.
func (vc *VarCalc) objIndexOf(start int) int {
	if vc.objPos == nil {
		return start
	}
	return sort.SearchInts(vc.objPos, start)
}

// SetObjectPositions coarsens the objects of Eq. 7 from unit segments to
// the intervals between consecutive positions (which must be sorted and
// include both endpoints of the series). The sketching optimization uses
// this in phase 2 on long series: each sketch interval was already deemed
// internally consistent by the constrained phase-1 pass. Passing nil
// restores unit objects.
func (vc *VarCalc) SetObjectPositions(pos []int) {
	if pos == nil {
		vc.objPos = nil
	} else {
		vc.objPos = append([]int(nil), pos...)
		sort.Ints(vc.objPos)
	}
	vc.cache.reset()
	vc.pairPrefix = nil
	vc.objRes, vc.objIdeal = nil, nil
}

// HasObjectPositions reports whether the calculator currently coarsens
// objects to sketch intervals.
func (vc *VarCalc) HasObjectPositions() bool { return vc.objPos != nil }

// InvalidateFrom drops every cached quantity that touches a position at
// or after p: weighted variances of segments reaching p, per-object
// caches of objects reaching p, and the AllPair prefix table. The
// real-time extension calls this after an append so a VarCalc kept across
// updates recomputes only the changed suffix — variances of committed
// history stay cached.
func (vc *VarCalc) InvalidateFrom(p int) {
	vc.cache.invalidateFrom(p)
	for i := range vc.objRes {
		if vc.objRes[i] == nil {
			continue
		}
		end := i + 1
		if vc.objPos != nil {
			end = vc.objPos[i+1]
		}
		if end >= p {
			vc.objRes[i] = nil
			vc.objIdeal[i] = 0
		}
	}
	vc.pairPrefix = nil
}

// Explainer returns the underlying explainer.
func (vc *VarCalc) Explainer() *Explainer { return vc.e }

// Kind returns the variance design in use.
func (vc *VarCalc) Kind() VarianceKind { return vc.kind }

// Var returns var(P) for the segment [a, b] (Eq. 7), in [0, 1].
func (vc *VarCalc) Var(a, b int) float64 {
	if b-a <= 0 {
		return 0
	}
	return vc.Weighted(a, b) / float64(b-a)
}

// objects returns the object boundaries covering [a, b]: consecutive
// entries delimit one object. With unit objects that is a..b; with
// coarsened objects it is the positions between a and b inclusive.
func (vc *VarCalc) objects(a, b int) []int {
	if vc.objPos == nil {
		out := make([]int, b-a+1)
		for i := range out {
			out[i] = a + i
		}
		return out
	}
	lo := sort.SearchInts(vc.objPos, a)
	hi := sort.SearchInts(vc.objPos, b)
	if hi < len(vc.objPos) && vc.objPos[hi] == b {
		hi++
	}
	return vc.objPos[lo:hi]
}

// Weighted returns |P|·var(P), the quantity the segmentation objective
// (Problem 1) sums, where |P| = b − a counts unit objects (so objectives
// stay comparable across object granularities).
//
//tsexplain:hotpath
func (vc *VarCalc) Weighted(a, b int) float64 {
	if b-a <= 1 {
		return 0 // a single object is its own centroid
	}
	key := segKey(a, b)
	if v, ok := vc.cache.get(key); ok {
		return v
	}
	var total float64
	switch vc.kind {
	case AllPair, SAllPair:
		total = vc.weightedAllPair(a, b)
	default:
		// Centroid designs: average dist(centroid, object) over objects,
		// weighted by |P|. The centroid plays the first-argument role
		// (Eq. 8/9 direction). The centroid's explanations and every
		// object's are fetched once, so the loop is map-free.
		bounds := vc.objects(a, b)
		cRes := vc.e.TopM(a, b)
		cIdeal := vc.e.idealDCG(a, b)
		base := vc.objIndexOf(bounds[0])
		var sum float64
		for i := 0; i+1 < len(bounds); i++ {
			oRes, oIdeal := vc.objPrepared(base+i, bounds[i], bounds[i+1])
			sum += vc.e.distPrepared(vc.kind,
				a, b, cRes, cIdeal,
				bounds[i], bounds[i+1], oRes, oIdeal,
				vc.rectify)
		}
		if len(bounds) > 1 {
			total = float64(b-a) * sum / float64(len(bounds)-1)
		}
	}
	vc.cache.put(b, key, total)
	return total
}

// weightedAllPair computes the AllPair designs. With unit objects it
// answers from the prefix-sum table in O(1); with coarsened objects the
// pair count is small enough to iterate directly.
//
//tsexplain:hotpath
func (vc *VarCalc) weightedAllPair(a, b int) float64 {
	if vc.objPos != nil {
		bounds := vc.objects(a, b)
		base := vc.objIndexOf(bounds[0])
		var sum float64
		var pairs int
		for i := 0; i+1 < len(bounds); i++ {
			iRes, iIdeal := vc.objPrepared(base+i, bounds[i], bounds[i+1])
			for j := i + 1; j+1 < len(bounds); j++ {
				jRes, jIdeal := vc.objPrepared(base+j, bounds[j], bounds[j+1])
				sum += vc.e.distPrepared(vc.kind,
					bounds[i], bounds[i+1], iRes, iIdeal,
					bounds[j], bounds[j+1], jRes, jIdeal,
					vc.rectify)
				pairs++
			}
		}
		if pairs == 0 {
			return 0
		}
		return float64(b-a) * sum / float64(pairs)
	}
	vc.buildPairPrefix()
	// Pair sum over a ≤ x < y < b via the 2-D prefix rectangle
	// [a..b-2] × [a..b-1]; entries on/below the diagonal are zero.
	sum := vc.rectSum(a, b-2, a, b-1)
	objs := b - a
	pairs := objs * (objs - 1) / 2
	if pairs == 0 {
		return 0
	}
	return float64(objs) * sum / float64(pairs)
}

// buildPairPrefix materializes the unit-pair distance matrix and its 2-D
// prefix sums, O(n²) once, into one flat row-major table.
func (vc *VarCalc) buildPairPrefix() {
	if vc.pairPrefix != nil {
		return
	}
	n := vc.e.u.NumTimestamps()
	objs := n - 1
	pp := make([]float64, objs*objs)
	for x := 0; x < objs; x++ {
		row := pp[x*objs : (x+1)*objs]
		xRes, xIdeal := vc.objPrepared(x, x, x+1)
		for y := x + 1; y < objs; y++ {
			yRes, yIdeal := vc.objPrepared(y, y, y+1)
			row[y] = vc.e.distPrepared(vc.kind, x, x+1, xRes, xIdeal, y, y+1, yRes, yIdeal, vc.rectify)
		}
	}
	// In-place 2-D prefix sums. The accumulation order (up, then left,
	// minus diagonal) is kept exactly as the nested-slice implementation
	// had it so every prefix value — and every variance derived from one —
	// stays bit-identical to the committed golden corpus.
	for x := 0; x < objs; x++ {
		row := pp[x*objs : (x+1)*objs]
		if x == 0 {
			for y := 1; y < objs; y++ {
				row[y] += row[y-1]
			}
			continue
		}
		prev := pp[(x-1)*objs : x*objs]
		row[0] += prev[0]
		for y := 1; y < objs; y++ {
			row[y] = row[y] + prev[y] + row[y-1] - prev[y-1]
		}
	}
	vc.pairPrefix = pp
	vc.ppStride = objs
}

// rectSum returns Σ D[x][y] over x in [x0, x1], y in [y0, y1].
//
//tsexplain:hotpath
func (vc *VarCalc) rectSum(x0, x1, y0, y1 int) float64 {
	if x1 < x0 || y1 < y0 {
		return 0
	}
	pp, s := vc.pairPrefix, vc.ppStride
	v := pp[x1*s+y1]
	if x0 > 0 {
		v -= pp[(x0-1)*s+y1]
	}
	if y0 > 0 {
		v -= pp[x1*s+y0-1]
	}
	if x0 > 0 && y0 > 0 {
		v += pp[(x0-1)*s+y0-1]
	}
	return v
}

// TotalVariance evaluates the segmentation objective Σ |P_i|·var(P_i)
// (Problem 1) for the cut positions cuts, which must start at 0 and end
// at n−1.
func (vc *VarCalc) TotalVariance(cuts []int) float64 {
	var total float64
	for i := 1; i < len(cuts); i++ {
		total += vc.Weighted(cuts[i-1], cuts[i])
	}
	return total
}
