package segment

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cascading"
)

// PrewarmParallel computes and caches the top-m explanations for every
// given segment using worker goroutines, each with its own Cascading
// Analysts solver (solvers reuse scratch buffers and are not safe to
// share). The paper's engine is single-threaded; this is the natural Go
// extension for multi-core machines — results are identical, only the
// wall-clock time changes.
//
// workers ≤ 0 uses GOMAXPROCS. Already-cached segments are skipped. The
// summed per-worker solve time is added to the explainer's cascading
// counter, so the Figure 15 breakdown reports CPU time when parallelism
// is on.
func (e *Explainer) PrewarmParallel(segs [][2]int, workers int) int {
	return e.PrewarmParallelCancel(segs, workers, nil)
}

// PrewarmParallelCancel is PrewarmParallel with a cancellation hook:
// cancel (when non-nil) is polled before each segment solve, and a
// non-nil return makes every worker stop picking up new segments.
// Segments solved before the cancellation are still cached — the cache
// stays consistent, the work simply stops early — and the count of
// completed solves is returned. The caller is expected to surface the
// cancellation error itself.
//
//tsexplain:cancellable
func (e *Explainer) PrewarmParallelCancel(segs [][2]int, workers int, cancel func() error) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cancel == nil {
		cancel = func() error { return nil }
	}
	var todo [][2]int
	for _, s := range segs {
		if e.cache.get(s[0], s[1]) == nil {
			todo = append(todo, s)
		}
	}
	if len(todo) == 0 {
		return 0
	}
	if workers > len(todo) {
		workers = len(todo)
	}

	type done struct {
		seg [2]int
		res cascading.Result
		ok  bool
	}
	results := make([]done, len(todo))
	var caTimes = make([]time.Duration, workers)
	var rounds = make([]int, workers)
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			solver := cascading.NewSolver(e.u, e.solver.Metric(), e.m)
			start := time.Now() //tsexplain:nondet per-worker latency stat; never feeds explanation output
			for i := w; i < len(todo); i += workers {
				if stopped.Load() {
					break
				}
				if cancel() != nil {
					stopped.Store(true)
					break
				}
				seg := todo[i]
				res, r := e.solveOne(solver, seg[0], seg[1])
				rounds[w] += r
				results[i] = done{seg: seg, res: res, ok: true}
			}
			caTimes[w] = time.Since(start) //tsexplain:nondet per-worker latency stat; never feeds explanation output
		}(w)
	}
	wg.Wait()

	solved := 0
	for i := range results {
		if !results[i].ok {
			continue
		}
		e.cache.put(results[i].seg[0], results[i].seg[1], results[i].res)
		solved++
	}
	for w := 0; w < workers; w++ {
		e.caTime += caTimes[w]
		e.caRounds += rounds[w]
	}
	e.caSolves += solved
	return solved
}

// SegmentPairs enumerates every segment the segmentation DP will need
// over the given candidate cut positions: all position pairs plus the
// unit objects in between (the objects of Eq. 7). It is the work list
// PrewarmParallel consumes.
func SegmentPairs(positions []int, n int, unitObjects bool) [][2]int {
	var out [][2]int
	for i := 0; i < len(positions); i++ {
		for j := i + 1; j < len(positions); j++ {
			out = append(out, [2]int{positions[i], positions[j]})
		}
	}
	if unitObjects {
		for x := 0; x+1 < n; x++ {
			out = append(out, [2]int{x, x + 1})
		}
	}
	return out
}
