package segment

import "math"

// ElbowK picks the optimal segment count from a K-Variance curve using
// the normalized "kneedle" rule (Section 6, Satopää et al. 2011): the
// curve is normalized into the unit square and the chosen K is the point
// furthest below the descending diagonal — the knee of the decreasing
// convex curve. byK[k] is the total variance at k segments (index 0
// unused); infeasible entries (+Inf) are skipped.
//
// Degenerate curves (fewer than three feasible K, or a flat curve) fall
// back to the smallest feasible K, since adding segments buys nothing.
func ElbowK(byK []float64) int {
	type pt struct {
		k int
		v float64
	}
	var pts []pt
	for k := 1; k < len(byK); k++ {
		if !math.IsInf(byK[k], 1) && !math.IsNaN(byK[k]) {
			pts = append(pts, pt{k, byK[k]})
		}
	}
	if len(pts) == 0 {
		return 1
	}
	if len(pts) < 3 {
		return pts[0].k
	}
	minV, maxV := pts[0].v, pts[0].v
	for _, p := range pts {
		minV = math.Min(minV, p.v)
		maxV = math.Max(maxV, p.v)
	}
	if maxV == minV {
		return pts[0].k
	}
	loK, hiK := float64(pts[0].k), float64(pts[len(pts)-1].k)
	bestK := pts[0].k
	bestGap := math.Inf(-1)
	for _, p := range pts {
		x := (float64(p.k) - loK) / (hiK - loK)
		y := (p.v - minV) / (maxV - minV)
		// Distance below the diagonal y = 1 − x.
		gap := (1 - x) - y
		if gap > bestGap {
			bestGap = gap
			bestK = p.k
		}
	}
	return bestK
}

// KVarianceCurve extracts the total-variance-by-K curve from a DP result,
// ready for ElbowK and for the K-Variance plots of Figures 11–14.
func KVarianceCurve(res DPResult) []float64 {
	out := make([]float64, len(res.ByK))
	out[0] = math.Inf(1)
	for k := 1; k < len(res.ByK); k++ {
		out[k] = res.ByK[k].TotalVariance
	}
	return out
}
