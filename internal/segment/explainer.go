// Package segment implements TSExplain's K-Segmentation: the NDCG-based
// explanation distance (Section 4.1), the within-segment variance and its
// seven alternative designs (Section 4.2.2), the segmentation dynamic
// program (Section 5.1), the elbow-method selection of K (Section 6), and
// the sketching optimization (Section 5.3.2).
package segment

import (
	"time"

	"repro/internal/cascading"
	"repro/internal/explain"
)

// Explainer derives and caches top-m non-overlapping explanations per
// segment. Every module that needs E*_m for a segment — distance,
// variance, and the DP — goes through one Explainer so each segment's
// Cascading Analysts run happens at most once per query.
type Explainer struct {
	u      *explain.Universe
	solver *cascading.Solver
	m      int

	// allowed restricts selectable candidates (the filter optimization's
	// survivor set); nil allows everything.
	allowed []bool
	// allowedIDs, when non-nil, is the budgeted approximate mode's pruned
	// selectable set as an id list: per-solve scoring walks just these ids
	// instead of every candidate, so segment cost scales with the kept
	// top-M rather than ε. It always mirrors allowed (bitmap form).
	allowedIDs []int
	// useGuess enables the guess-and-verify optimization.
	useGuess  bool
	guessInit int

	cache      *segCache
	idealCache *endCache

	// stats accumulate across calls for the latency-breakdown experiment.
	caSolves int
	caTime   time.Duration
	caRounds int
}

// ExplainerConfig configures an Explainer.
type ExplainerConfig struct {
	// M is the number of explanations per segment (default 3).
	M int
	// Metric is the difference metric γ (default absolute-change).
	Metric explain.Metric
	// Allowed restricts selectable candidates; nil allows all.
	Allowed []bool
	// UseGuessVerify enables the guess-and-verify optimization.
	UseGuessVerify bool
	// GuessInit is the initial guess size m̄ (default 30, the paper's
	// choice for m = 3).
	GuessInit int
}

// NewExplainer returns an Explainer over the given universe.
func NewExplainer(u *explain.Universe, cfg ExplainerConfig) *Explainer {
	m := cfg.M
	if m <= 0 {
		m = 3
	}
	gi := cfg.GuessInit
	if gi <= 0 {
		gi = 30
	}
	return &Explainer{
		u:          u,
		solver:     cascading.NewSolver(u, cfg.Metric, m),
		m:          m,
		allowed:    cfg.Allowed,
		useGuess:   cfg.UseGuessVerify,
		guessInit:  gi,
		cache:      newSegCache(u.NumTimestamps()),
		idealCache: newEndCache(),
	}
}

// Universe returns the underlying candidate universe.
func (e *Explainer) Universe() *explain.Universe { return e.u }

// M returns the per-segment explanation count m.
func (e *Explainer) M() int { return e.m }

// TopM returns the top-m non-overlapping explanations for segment [c, t],
// computing them on first use and serving the cache afterwards.
func (e *Explainer) TopM(c, t int) *cascading.Result {
	if r := e.cache.get(c, t); r != nil {
		return r
	}
	start := time.Now() //tsexplain:nondet latency stat only; never feeds explanation output
	res, rounds := e.solveOne(e.solver, c, t)
	e.caRounds += rounds
	e.caTime += time.Since(start) //tsexplain:nondet latency stat only; never feeds explanation output
	e.caSolves++
	return e.cache.put(c, t, res)
}

// solveOne runs one segment solve on the given solver under the
// explainer's current configuration — restricted id list (approximate
// mode), guess-and-verify, or the plain DP. It is the single dispatch
// point shared by TopM and the parallel prewarm workers, so a new solver
// mode cannot reach one path and miss the other. rounds is 0 unless
// guess-and-verify ran.
func (e *Explainer) solveOne(solver *cascading.Solver, c, t int) (res cascading.Result, rounds int) {
	switch {
	case e.allowedIDs != nil && e.useGuess:
		return solver.GuessVerifyRestricted(c, t, e.guessInit, e.allowed, e.allowedIDs)
	case e.allowedIDs != nil:
		return solver.SolveRestricted(c, t, e.allowed, e.allowedIDs), 0
	case e.useGuess:
		return solver.GuessVerify(c, t, e.guessInit, e.allowed)
	default:
		return solver.Solve(c, t, e.allowed), 0
	}
}

// Stats reports how many Cascading Analysts solves ran, the total time
// they took, and (under guess-and-verify) the total guess rounds.
func (e *Explainer) Stats() (solves int, caTime time.Duration, rounds int) {
	return e.caSolves, e.caTime, e.caRounds
}

// ResetCache clears the per-segment cache and statistics. The incremental
// (real-time) extension keeps the cache instead and only recomputes
// segments that touch newly arrived points.
func (e *Explainer) ResetCache() {
	e.cache.reset()
	e.idealCache.reset()
	e.caSolves, e.caTime, e.caRounds = 0, 0, 0
}

// InvalidateFrom drops every cached segment that touches a point at or
// after position p. The real-time extension (Section 8) calls this when
// points after p changed (e.g. a revised last day) so stale explanations
// are recomputed while the unchanged prefix stays cached.
func (e *Explainer) InvalidateFrom(p int) {
	e.cache.invalidateFrom(p)
	e.idealCache.invalidateFrom(p)
}

// segKeyShift sizes the packed (c, t) cache key; series up to 2^21 points
// are supported, far beyond anything the engine handles.
const segKeyShift = 21

// segKey packs segment endpoints into a cache key that stays valid when
// the series grows, which the real-time extension relies on.
func segKey(c, t int) int64 { return int64(c)<<segKeyShift | int64(t) }

// Grow retargets the explainer's caches at a series of length n without
// touching any cached result. The flat cache extends in place while its
// headroom lasts; past that, entries migrate verbatim into a fresh cache
// allocated with new headroom.
func (e *Explainer) Grow(n int) {
	if e.cache.grow(n) {
		return
	}
	next := newSegCacheCap(n, n+n/2)
	e.cache.forEach(func(c, t int, res *cascading.Result) {
		next.put(c, t, *res)
	})
	e.cache = next
}

// Rebind points the explainer at a new universe while keeping the cached
// per-segment results. It is only safe when the new universe extends the
// old one with later timestamps (the shared prefix must be unchanged),
// which is exactly the real-time append scenario of Section 8.
//
// Rebinding to the explainer's current universe — the append path, which
// grows the universe in place and registers delta-born candidates at the
// tail — is a no-op apart from cache growth: candidate IDs are stable, so
// every cached result stays valid verbatim and the solver just grows its
// scratch on demand.
//
// A genuinely new universe (the snapshot-rebuild path) re-enumerates
// candidates, so IDs shift: every cached result's IDs are remapped
// through the conjunctions; entries that cannot be remapped are dropped
// and will simply be recomputed.
func (e *Explainer) Rebind(u *explain.Universe) {
	old := e.u
	if old == u {
		e.Grow(u.NumTimestamps())
		return
	}
	{
		remap := func(c, t int, res *cascading.Result) bool {
			remapped, ok := remapResult(res, old, u)
			if !ok {
				e.idealCache.remove(segKey(c, t))
				return false
			}
			*res = *remapped
			return true
		}
		n := u.NumTimestamps()
		if e.cache.grow(n) {
			// The triangle (or map) accommodates the grown series:
			// remap entries in place, no reallocation.
			e.cache.rewrite(remap)
		} else {
			// Migrate into a fresh cache sized with headroom so the
			// following appends of a streaming series grow in place
			// instead of re-allocating the triangle per update.
			next := newSegCacheCap(n, n+n/2)
			e.cache.forEach(func(c, t int, res *cascading.Result) {
				if remap(c, t, res) {
					next.put(c, t, *res)
				}
			})
			e.cache = next
		}
	}
	e.u = u
	e.solver = cascading.NewSolver(u, e.solver.Metric(), e.m)
}

// remapResult translates a cached result's candidate IDs from one
// universe to another via their conjunctions.
func remapResult(res *cascading.Result, old, next *explain.Universe) (*cascading.Result, bool) {
	out := cascading.Result{
		Best:         append([]float64(nil), res.Best...),
		Explanations: make([]cascading.Picked, len(res.Explanations)),
	}
	for i, p := range res.Explanations {
		id, ok := next.Lookup(old.Candidate(p.ID).Conj)
		if !ok {
			return nil, false
		}
		out.Explanations[i] = cascading.Picked{ID: id, Gamma: p.Gamma, Effect: p.Effect}
	}
	return &out, true
}

// SetAllowed replaces the selectable-candidate restriction for future
// solves. Cached segments keep the results they were computed with.
func (e *Explainer) SetAllowed(allowed []bool) { e.allowed = allowed }

// SetRestriction installs the budgeted approximate mode's pruned
// selectable set: allowed is the membership bitmap, ids the same set as a
// sorted list (nil ids clears the restriction and returns to full-ε
// scoring). Unlike SetAllowed it drops every cached per-segment result —
// entries solved under a different selectable set would otherwise leak a
// differently pruned optimum into this configuration's answers.
func (e *Explainer) SetRestriction(allowed []bool, ids []int) {
	e.allowed = allowed
	e.allowedIDs = ids
	e.ResetCache()
}
