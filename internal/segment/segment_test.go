package segment

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/explain"
	"repro/internal/relation"
)

// makeCatRelation builds a relation with one "category" dimension whose
// per-category time series are given explicitly, so segmentation ground
// truth is known by construction.
func makeCatRelation(t testing.TB, series map[string][]float64) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("synthetic", "t", []string{"category"}, []string{"v"})
	n := -1
	for cat, vals := range series {
		if n == -1 {
			n = len(vals)
		}
		if len(vals) != n {
			t.Fatalf("category %s has %d points, want %d", cat, len(vals), n)
		}
	}
	var labels []string
	for i := 0; i < n; i++ {
		labels = append(labels, fmt.Sprintf("%04d", i))
	}
	b.SetTimeOrder(labels)
	for cat, vals := range series {
		for i, v := range vals {
			if err := b.Append(labels[i], []string{cat}, []float64{v}); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return r
}

// twoPhase builds the canonical test dataset: category a rises during
// [0, cut], category b rises during [cut, n-1]; the ground-truth
// 2-segmentation cuts exactly at cut.
func twoPhase(t testing.TB, n, cut int) *explain.Universe {
	t.Helper()
	a := make([]float64, n)
	bseries := make([]float64, n)
	for i := 0; i < n; i++ {
		if i <= cut {
			a[i] = float64(10 * i)
			bseries[i] = 5
		} else {
			a[i] = float64(10 * cut)
			bseries[i] = 5 + float64(10*(i-cut))
		}
	}
	r := makeCatRelation(t, map[string][]float64{"a": a, "b": bseries})
	u, err := explain.NewUniverse(r, explain.Config{Measure: "v", Agg: relation.Sum})
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	return u
}

func newExplainer(t testing.TB, u *explain.Universe, cfg ExplainerConfig) *Explainer {
	t.Helper()
	return NewExplainer(u, cfg)
}

func TestUnitObjectVarianceIsZero(t *testing.T) {
	u := twoPhase(t, 20, 10)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	for x := 0; x < 19; x++ {
		if got := vc.Weighted(x, x+1); got != 0 {
			t.Errorf("Weighted(%d,%d) = %g, want 0", x, x+1, got)
		}
	}
	if got := vc.Var(3, 3); got != 0 {
		t.Errorf("Var of empty segment = %g, want 0", got)
	}
}

func TestDistSelfIsZeroAndSymmetric(t *testing.T) {
	u := twoPhase(t, 20, 10)
	e := newExplainer(t, u, ExplainerConfig{M: 2})
	if got := e.Dist(Tse, 0, 5, 0, 5); got != 0 {
		t.Errorf("self distance = %g, want 0", got)
	}
	d1 := e.Dist(Tse, 0, 5, 12, 18)
	d2 := e.Dist(Tse, 12, 18, 0, 5)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("tse distance asymmetric: %g vs %g", d1, d2)
	}
}

func TestDistBounds(t *testing.T) {
	u := twoPhase(t, 30, 15)
	e := newExplainer(t, u, ExplainerConfig{M: 2})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(28)
		b := a + 1 + rng.Intn(29-a)
		c := rng.Intn(28)
		d := c + 1 + rng.Intn(29-c)
		for _, kind := range AllVarianceKinds() {
			got := e.Dist(kind, a, b, c, d)
			if got < -1e-12 || got > 1+1e-12 || math.IsNaN(got) {
				t.Fatalf("%v dist([%d,%d],[%d,%d]) = %g out of [0,1]", kind, a, b, c, d, got)
			}
		}
	}
}

func TestDistOppositePhasesIsLarge(t *testing.T) {
	u := twoPhase(t, 30, 15)
	e := newExplainer(t, u, ExplainerConfig{M: 1})
	// Phase 1 is explained by a, phase 2 by b: distance should be large.
	d := e.Dist(Tse, 0, 14, 16, 29)
	if d < 0.5 {
		t.Errorf("cross-phase distance = %g, want large", d)
	}
	within := e.Dist(Tse, 0, 7, 7, 14)
	if within > 0.2 {
		t.Errorf("within-phase distance = %g, want small", within)
	}
}

func TestVarianceLowWithinPhaseHighAcross(t *testing.T) {
	u := twoPhase(t, 30, 15)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 1}), Tse)
	within := vc.Var(0, 15)
	across := vc.Var(0, 29)
	if within > 0.15 {
		t.Errorf("within-phase var = %g, want near 0", within)
	}
	if across <= within {
		t.Errorf("across var %g should exceed within var %g", across, within)
	}
}

func TestOptimizeRecoversGroundTruthCut(t *testing.T) {
	for _, kind := range []VarianceKind{Tse, STse, Dist1, Dist2} {
		u := twoPhase(t, 30, 15)
		vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), kind)
		res, err := Optimize(vc, Options{KMax: 2})
		if err != nil {
			t.Fatalf("%v: Optimize: %v", kind, err)
		}
		s, ok := res.Scheme(2)
		if !ok {
			t.Fatalf("%v: no 2-scheme", kind)
		}
		if len(s.Cuts) != 3 || s.Cuts[0] != 0 || s.Cuts[2] != 29 {
			t.Fatalf("%v: cuts = %v", kind, s.Cuts)
		}
		if got := s.Cuts[1]; got < 14 || got > 16 {
			t.Errorf("%v: middle cut = %d, want ≈15", kind, got)
		}
	}
}

func TestOptimizeAllPairRecoversCut(t *testing.T) {
	u := twoPhase(t, 24, 12)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), AllPair)
	res, err := Optimize(vc, Options{KMax: 2})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	s, ok := res.Scheme(2)
	if !ok {
		t.Fatal("no 2-scheme")
	}
	if got := s.Cuts[1]; got < 11 || got > 13 {
		t.Errorf("allpair middle cut = %d, want ≈12", got)
	}
}

func TestDPMatchesExhaustiveSearch(t *testing.T) {
	u := twoPhase(t, 14, 7)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	res, err := Optimize(vc, Options{KMax: 4})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	n := 14
	for k := 1; k <= 4; k++ {
		want := math.Inf(1)
		var wantCuts []int
		// Enumerate all (k-1)-subsets of interior positions.
		var rec func(start int, cuts []int)
		rec = func(start int, cuts []int) {
			if len(cuts) == k-1 {
				full := append([]int{0}, cuts...)
				full = append(full, n-1)
				v := vc.TotalVariance(full)
				if v < want {
					want = v
					wantCuts = append([]int(nil), full...)
				}
				return
			}
			for p := start; p < n-1; p++ {
				rec(p+1, append(cuts, p))
			}
		}
		rec(1, nil)
		s, ok := res.Scheme(k)
		if !ok {
			t.Fatalf("k=%d: no scheme", k)
		}
		if math.Abs(s.TotalVariance-want) > 1e-9 {
			t.Errorf("k=%d: DP=%g exhaustive=%g (DP cuts %v, best %v)",
				k, s.TotalVariance, want, s.Cuts, wantCuts)
		}
		if math.Abs(vc.TotalVariance(s.Cuts)-s.TotalVariance) > 1e-9 {
			t.Errorf("k=%d: scheme variance %g inconsistent with TotalVariance %g",
				k, s.TotalVariance, vc.TotalVariance(s.Cuts))
		}
	}
}

func TestKVarianceCurveMonotone(t *testing.T) {
	u := twoPhase(t, 20, 10)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	res, err := Optimize(vc, Options{KMax: 8})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	curve := KVarianceCurve(res)
	for k := 2; k < len(curve); k++ {
		if curve[k] > curve[k-1]+1e-9 {
			t.Errorf("K-variance curve not non-increasing at k=%d: %g > %g",
				k, curve[k], curve[k-1])
		}
	}
}

func TestOptimizeMaxLenConstraint(t *testing.T) {
	u := twoPhase(t, 20, 10)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	res, err := Optimize(vc, Options{KMax: 6, MaxSegmentLen: 5})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	// 19 units / 5 per segment needs at least 4 segments.
	for k := 1; k <= 3; k++ {
		if _, ok := res.Scheme(k); ok {
			t.Errorf("k=%d should be infeasible under maxLen=5", k)
		}
	}
	s, ok := res.Scheme(4)
	if !ok {
		t.Fatal("k=4 should be feasible under maxLen=5")
	}
	for i := 1; i < len(s.Cuts); i++ {
		if s.Cuts[i]-s.Cuts[i-1] > 5 {
			t.Errorf("segment [%d,%d] exceeds maxLen", s.Cuts[i-1], s.Cuts[i])
		}
	}
}

func TestOptimizePositionsRestricted(t *testing.T) {
	u := twoPhase(t, 20, 10)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	res, err := Optimize(vc, Options{KMax: 2, Positions: []int{0, 5, 10, 19}})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	s, ok := res.Scheme(2)
	if !ok {
		t.Fatal("no 2-scheme")
	}
	if s.Cuts[1] != 10 {
		t.Errorf("restricted cut = %d, want 10 (the only good candidate)", s.Cuts[1])
	}
}

func TestOptimizeErrors(t *testing.T) {
	u := twoPhase(t, 20, 10)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	cases := []Options{
		{Positions: []int{0}},             // too few
		{Positions: []int{1, 19}},         // must start at 0
		{Positions: []int{0, 10}},         // must end at n-1
		{Positions: []int{0, 10, 10, 19}}, // not strictly increasing
		{Positions: []int{0, 25, 19}},     // out of range and unsorted
	}
	for i, opt := range cases {
		if _, err := Optimize(vc, opt); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestElbowK(t *testing.T) {
	// A curve with an obvious knee at k=3.
	curve := []float64{math.Inf(1), 100, 40, 8, 6, 5, 4.5, 4.2}
	if got := ElbowK(curve); got != 3 {
		t.Errorf("ElbowK = %d, want 3", got)
	}
	// Degenerate curves.
	if got := ElbowK([]float64{math.Inf(1)}); got != 1 {
		t.Errorf("empty curve ElbowK = %d, want 1", got)
	}
	if got := ElbowK([]float64{math.Inf(1), 5}); got != 1 {
		t.Errorf("single-point curve ElbowK = %d, want 1", got)
	}
	if got := ElbowK([]float64{math.Inf(1), 5, 5, 5}); got != 1 {
		t.Errorf("flat curve ElbowK = %d, want smallest k", got)
	}
	// Infeasible prefix is skipped.
	if got := ElbowK([]float64{math.Inf(1), math.Inf(1), 100, 10, 9, 8.5}); got != 3 {
		t.Errorf("ElbowK with infeasible k=1: got %d, want 3", got)
	}
}

func TestSelectSketchKeepsGroundTruthCut(t *testing.T) {
	u := twoPhase(t, 60, 30)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	sketch, err := SelectSketch(vc, SketchConfig{MaxSegmentLen: 6, Size: 20})
	if err != nil {
		t.Fatalf("SelectSketch: %v", err)
	}
	if sketch[0] != 0 || sketch[len(sketch)-1] != 59 {
		t.Fatalf("sketch must include endpoints: %v", sketch)
	}
	found := false
	for _, p := range sketch {
		if p >= 29 && p <= 31 {
			found = true
		}
	}
	if !found {
		t.Errorf("sketch %v misses the ground-truth cut ≈30", sketch)
	}
	// Phase 2 over the sketch recovers the cut.
	res, err := Optimize(vc, Options{KMax: 2, Positions: sketch})
	if err != nil {
		t.Fatalf("phase-2 Optimize: %v", err)
	}
	s, _ := res.Scheme(2)
	if s.Cuts[1] < 29 || s.Cuts[1] > 31 {
		t.Errorf("sketched cut = %d, want ≈30", s.Cuts[1])
	}
}

func TestSelectSketchDefaultsAndSmallSeries(t *testing.T) {
	u := twoPhase(t, 20, 10)
	vc := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	// Default |S| = 3n/L with L = max(2, n/20): for n=20, L=2 so |S|=30 ≥
	// n-1: the sketch degenerates to all positions.
	sketch, err := SelectSketch(vc, SketchConfig{})
	if err != nil {
		t.Fatalf("SelectSketch: %v", err)
	}
	want := make([]int, 20)
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(sketch, want) {
		t.Errorf("small-series sketch = %v, want all positions", sketch)
	}
}

func TestExplainerCacheAndStats(t *testing.T) {
	u := twoPhase(t, 20, 10)
	e := newExplainer(t, u, ExplainerConfig{M: 2})
	r1 := e.TopM(0, 10)
	r2 := e.TopM(0, 10)
	if r1 != r2 {
		t.Error("TopM not cached")
	}
	solves, _, _ := e.Stats()
	if solves != 1 {
		t.Errorf("solves = %d, want 1", solves)
	}
	e.ResetCache()
	if s, _, _ := e.Stats(); s != 0 {
		t.Errorf("stats not reset: %d", s)
	}
	// The flat cache reuses storage slots, so detect the recompute through
	// the solve counter rather than pointer identity.
	e.TopM(0, 10)
	if s, _, _ := e.Stats(); s != 1 {
		t.Errorf("cache not cleared: %d solves after reset, want 1", s)
	}
}

func TestExplainerInvalidateFrom(t *testing.T) {
	u := twoPhase(t, 20, 10)
	e := newExplainer(t, u, ExplainerConfig{M: 2})
	e.TopM(0, 5)
	e.TopM(12, 19)
	e.InvalidateFrom(10)
	// The flat cache reuses storage slots, so pointer identity proves
	// nothing; detect retention vs recompute through the solve counter.
	solvesBefore, _, _ := e.Stats()
	e.TopM(0, 5)
	if solves, _, _ := e.Stats(); solves != solvesBefore {
		t.Error("prefix segment should stay cached")
	}
	e.TopM(12, 19)
	if solves, _, _ := e.Stats(); solves != solvesBefore+1 {
		t.Error("suffix segment should have been invalidated")
	}
}

func TestGuessVerifyPathGivesSameSegmentation(t *testing.T) {
	u := twoPhase(t, 30, 15)
	exact := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2}), Tse)
	guess := NewVarCalc(newExplainer(t, u, ExplainerConfig{M: 2, UseGuessVerify: true, GuessInit: 2}), Tse)
	re, err := Optimize(exact, Options{KMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Optimize(guess, Options{KMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		se, _ := re.Scheme(k)
		sg, _ := rg.Scheme(k)
		if math.Abs(se.TotalVariance-sg.TotalVariance) > 1e-9 {
			t.Errorf("k=%d: exact %g vs guess-verify %g", k, se.TotalVariance, sg.TotalVariance)
		}
	}
}

func TestVarianceKindStrings(t *testing.T) {
	want := []string{"tse", "dist1", "dist2", "allpair", "Stse", "Sdist1", "Sdist2", "Sallpair"}
	kinds := AllVarianceKinds()
	if len(kinds) != len(want) {
		t.Fatalf("AllVarianceKinds = %d entries, want %d", len(kinds), len(want))
	}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k, want[i])
		}
	}
}

func TestRectificationMatters(t *testing.T) {
	// Category a rises then falls symmetrically: its effect flips between
	// the two halves, so with rectification the cross-half distance is
	// large, while without rectification the halves look identical.
	n := 21
	a := make([]float64, n)
	bse := make([]float64, n)
	for i := 0; i < n; i++ {
		if i <= 10 {
			a[i] = float64(10 * i)
		} else {
			a[i] = float64(10 * (20 - i))
		}
		bse[i] = 3
	}
	r := makeCatRelation(t, map[string][]float64{"a": a, "b": bse})
	u, err := explain.NewUniverse(r, explain.Config{Measure: "v", Agg: relation.Sum})
	if err != nil {
		t.Fatal(err)
	}
	e := newExplainer(t, u, ExplainerConfig{M: 1})
	rectified := e.dist(Tse, 0, 9, 11, 20, true)
	raw := e.dist(Tse, 0, 9, 11, 20, false)
	if rectified <= raw {
		t.Errorf("rectified dist %g should exceed unrectified %g across an effect flip",
			rectified, raw)
	}
	if raw > 0.01 {
		t.Errorf("unrectified dist = %g, want ≈0 (same explanation, opposite effect)", raw)
	}
}

// universeOf builds a universe over a category relation, for tests in
// other files of this package.
func universeOf(r *relation.Relation) (*explain.Universe, error) {
	return explain.NewUniverse(r, explain.Config{Measure: "v", Agg: relation.Sum})
}
