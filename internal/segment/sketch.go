package segment

import "sort"

// SketchConfig controls the sketching optimization (Section 5.3.2).
type SketchConfig struct {
	// MaxSegmentLen is L, the length cap during sketch selection; 0 means
	// the paper's default L = min(⌈0.05n⌉, 20) (at least 2).
	MaxSegmentLen int
	// Size is |S|, the sketch budget; 0 means the paper's default
	// |S| = 3n/L.
	Size int
	// CoarseObjectsAbove switches phase 2 from unit objects to sketch-
	// interval objects when the series is longer than this, keeping the
	// phase-2 variance cost O(|S|³) instead of O(|S|²·n) on long series;
	// 0 means the default threshold of 400 points. Set negative to never
	// coarsen.
	CoarseObjectsAbove int
}

// CoarsenAt resolves the coarse-object threshold.
func (c SketchConfig) CoarsenAt() int {
	if c.CoarseObjectsAbove == 0 {
		return 400
	}
	return c.CoarseObjectsAbove
}

// resolve fills in the paper's defaults for a series of length n.
func (c SketchConfig) resolve(n int) (L, size int) {
	L = c.MaxSegmentLen
	if L <= 0 {
		L = n / 20 // 0.05·n
		if L > 20 {
			L = 20
		}
	}
	if L < 2 {
		L = 2
	}
	size = c.Size
	if size <= 0 {
		size = 3 * n / L
	}
	return L, size
}

// SelectSketch runs phase I of the sketching optimization: it solves a
// length-constrained K-segmentation with K = |S| and every segment at
// most L points long, and returns the resulting cut positions (including
// the two endpoints) as the sketch. Only O(L·n) segments get scored, so
// this is far cheaper than the unconstrained pipeline, while the selected
// points are exactly the boundaries a small-variance segmentation wants
// to cut at.
func SelectSketch(vc *VarCalc, cfg SketchConfig) ([]int, error) {
	n := vc.e.u.NumTimestamps()
	L, size := cfg.resolve(n)
	if size >= n-1 {
		// Sketch as large as the series: keep every position.
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	// Feasibility: K segments of length ≤ L must cover n−1 units.
	minK := (n - 1 + L - 1) / L
	if size < minK {
		size = minK
	}
	res, err := Optimize(vc, Options{KMax: size, MaxSegmentLen: L})
	if err != nil {
		return nil, err
	}
	// The K = size scheme's cuts are the sketch; if it is infeasible
	// (capped KMax < minK cannot happen by construction) fall back to the
	// largest feasible K.
	for k := size; k >= 1; k-- {
		if s, ok := res.Scheme(k); ok {
			cuts := append([]int(nil), s.Cuts...)
			sort.Ints(cuts)
			return cuts, nil
		}
	}
	// No feasible constrained scheme at all: degenerate, keep endpoints.
	return []int{0, n - 1}, nil
}
