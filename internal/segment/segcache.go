package segment

import "repro/internal/cascading"

// segCache stores one cascading.Result per segment (c, t), 0 ≤ c < t < n.
//
// For series up to flatCacheMaxN points it is a flat upper-triangular
// table of n(n-1)/2 Result values with a generation tag per entry: probes
// are an index computation instead of a map hash, results are stored
// unboxed, and ResetCache is a generation bump instead of a reallocation.
// Longer series fall back to the original map form, which also keeps
// sketched runs over huge series (sparse position sets) from paying for
// an enormous triangle. The flat form is selected on length alone, so a
// sketched run over a short series still allocates its (small) triangle.
type segCache struct {
	n    int // logical series length; flat when > 0
	capN int // series length the triangle was allocated for (≥ n)
	flat []cascading.Result
	gen  []uint32
	cur  uint32

	m map[int64]*cascading.Result
}

// flatCacheMaxN bounds the flat form: 1024 points means at most ~523k
// entries (~25 MB), past which the triangle's footprint outgrows the map's
// overhead for the densities the DP produces.
const flatCacheMaxN = 1024

func newSegCache(n int) *segCache { return newSegCacheCap(n, n) }

// newSegCacheCap allocates the triangle for capN points while logically
// serving n — the headroom lets grow() extend a streaming series in place.
func newSegCacheCap(n, capN int) *segCache {
	if capN < n {
		capN = n
	}
	if capN > flatCacheMaxN {
		// Headroom is an optimization; never let it push an otherwise
		// flat-eligible length into the map form.
		capN = flatCacheMaxN
	}
	if n >= 2 && n <= flatCacheMaxN {
		size := capN * (capN - 1) / 2
		return &segCache{
			n:    n,
			capN: capN,
			flat: make([]cascading.Result, size),
			gen:  make([]uint32, size),
			cur:  1,
		}
	}
	return &segCache{m: make(map[int64]*cascading.Result)}
}

// flatIdx maps the segment (c, t), c < t, onto the upper triangle. The
// stride is the allocated capacity so indexes stay stable when the
// logical length grows.
func (sc *segCache) flatIdx(c, t int) int {
	return c*(2*sc.capN-c-1)/2 + (t - c - 1)
}

// grow retargets the cache to a series of length n without moving any
// entry. It reports false when the flat triangle lacks the capacity (the
// caller must then migrate into a fresh cache). Map-backed caches are
// length-independent and always succeed.
func (sc *segCache) grow(n int) bool {
	if sc.n == 0 {
		return true
	}
	if n > sc.capN {
		return false
	}
	if n > sc.n {
		sc.n = n
	}
	return true
}

// rewrite visits every live entry, letting fn mutate the result in place;
// returning false drops the entry.
func (sc *segCache) rewrite(fn func(c, t int, r *cascading.Result) bool) {
	if sc.n > 0 {
		for c := 0; c < sc.n; c++ {
			for t := c + 1; t < sc.n; t++ {
				if i := sc.flatIdx(c, t); sc.gen[i] == sc.cur && !fn(c, t, &sc.flat[i]) {
					sc.gen[i] = 0
				}
			}
		}
	}
	//tsexplain:unordered per-entry rewrite/drop of a segment-keyed cache; entries are independent
	for key, r := range sc.m {
		if !fn(int(key>>segKeyShift), int(key&(1<<segKeyShift-1)), r) {
			delete(sc.m, key)
		}
	}
}

// get returns the cached result for [c, t], or nil. Segments outside a
// flat cache's triangle (API misuse) are probed in the side map put
// maintains for them.
func (sc *segCache) get(c, t int) *cascading.Result {
	if sc.n > 0 && c >= 0 && t < sc.n && c < t {
		i := sc.flatIdx(c, t)
		if sc.gen[i] != sc.cur {
			return nil
		}
		return &sc.flat[i]
	}
	return sc.m[segKey(c, t)]
}

// put stores the result for [c, t] and returns a pointer that stays valid
// until the entry is invalidated or overwritten.
func (sc *segCache) put(c, t int, r cascading.Result) *cascading.Result {
	if sc.n > 0 && c >= 0 && t < sc.n && c < t {
		i := sc.flatIdx(c, t)
		sc.flat[i] = r
		sc.gen[i] = sc.cur
		return &sc.flat[i]
	}
	if sc.m == nil {
		// A flat cache asked to store an out-of-range segment (only
		// possible through API misuse); keep it anyway in a side map.
		sc.m = make(map[int64]*cascading.Result)
	}
	sc.m[segKey(c, t)] = &r
	return &r
}

// reset invalidates every entry. For the flat form this is a generation
// bump — O(1), no allocation, no clearing.
func (sc *segCache) reset() {
	if sc.n > 0 {
		sc.cur++
		if sc.cur == 0 { // generation counter wrapped: clear tags once
			for i := range sc.gen {
				sc.gen[i] = 0
			}
			sc.cur = 1
		}
	}
	if sc.m != nil {
		sc.m = make(map[int64]*cascading.Result)
	}
}

// invalidateFrom drops every segment touching a point at or after p.
// Segments satisfy c < t, so touching ≥ p is exactly t ≥ p; the flat scan
// covers only those entries — O(n·(n−p)), which the streaming append path
// (invalidating a short tail every update) relies on.
func (sc *segCache) invalidateFrom(p int) {
	if sc.n > 0 {
		for c := 0; c < sc.n; c++ {
			lo := p
			if lo <= c {
				lo = c + 1
			}
			for t := lo; t < sc.n; t++ {
				sc.gen[sc.flatIdx(c, t)] = 0
			}
		}
	}
	//tsexplain:unordered per-entry predicate delete; entries are independent
	for key := range sc.m {
		c, t := key>>segKeyShift, key&(1<<segKeyShift-1)
		if t >= int64(p) || c >= int64(p) {
			delete(sc.m, key)
		}
	}
}

// endCache is a segment-keyed float cache with a per-end-position key
// index, so dropping every entry at or past a position touches only the
// affected entries instead of scanning the whole map — again what the
// per-update tail invalidation of the streaming path needs.
type endCache struct {
	m     map[int64]float64
	byEnd [][]int64
}

func newEndCache() *endCache { return &endCache{m: make(map[int64]float64)} }

func (c *endCache) get(key int64) (float64, bool) {
	v, ok := c.m[key]
	return v, ok
}

// put stores a value for a segment ending at t. Callers only put after a
// get miss, so the end index never holds duplicate live keys.
func (c *endCache) put(t int, key int64, v float64) {
	c.m[key] = v
	for len(c.byEnd) <= t {
		c.byEnd = append(c.byEnd, nil)
	}
	c.byEnd[t] = append(c.byEnd[t], key)
}

func (c *endCache) remove(key int64) { delete(c.m, key) }

// invalidateFrom drops every entry whose segment touches a position ≥ p
// (segment keys satisfy c < t, so that is exactly t ≥ p).
func (c *endCache) invalidateFrom(p int) {
	if p < 0 {
		p = 0
	}
	for t := p; t < len(c.byEnd); t++ {
		for _, key := range c.byEnd[t] {
			delete(c.m, key)
		}
		c.byEnd[t] = nil
	}
}

func (c *endCache) reset() {
	c.m = make(map[int64]float64)
	c.byEnd = c.byEnd[:0]
}

// forEach visits every live entry. The visited pointers obey put's
// validity rule; mutating the cache during iteration is not allowed.
func (sc *segCache) forEach(fn func(c, t int, r *cascading.Result)) {
	if sc.n > 0 {
		for c := 0; c < sc.n; c++ {
			for t := c + 1; t < sc.n; t++ {
				if i := sc.flatIdx(c, t); sc.gen[i] == sc.cur {
					fn(c, t, &sc.flat[i])
				}
			}
		}
	}
	//tsexplain:unordered forEach contract: fn must be order-insensitive (stats, rescans)
	for key, r := range sc.m {
		fn(int(key>>segKeyShift), int(key&(1<<segKeyShift-1)), r)
	}
}
