package segment

import (
	"math"
	"math/rand"
	"testing"
)

// TestAllPairPrefixMatchesDirect cross-checks the O(1) prefix-sum path of
// the AllPair variance against a direct double loop over unit objects.
func TestAllPairPrefixMatchesDirect(t *testing.T) {
	u := twoPhase(t, 25, 12)
	for _, kind := range []VarianceKind{AllPair, SAllPair} {
		e := newExplainer(t, u, ExplainerConfig{M: 2})
		vc := NewVarCalc(e, kind)
		rng := rand.New(rand.NewSource(8))
		for trial := 0; trial < 40; trial++ {
			a := rng.Intn(22)
			b := a + 2 + rng.Intn(24-a-1)
			got := vc.Weighted(a, b)

			// Direct evaluation via Dist.
			var sum float64
			var pairs int
			for x := a; x < b; x++ {
				for y := x + 1; y < b; y++ {
					sum += e.Dist(kind, x, x+1, y, y+1)
					pairs++
				}
			}
			want := 0.0
			if pairs > 0 {
				want = float64(b-a) * sum / float64(pairs)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v Weighted(%d,%d) = %g, direct = %g", kind, a, b, got, want)
			}
		}
	}
}

// TestCoarseObjectsRecoverCut verifies that phase-2 segmentation over
// sketch-interval objects still finds the ground-truth cut.
func TestCoarseObjectsRecoverCut(t *testing.T) {
	u := twoPhase(t, 60, 30)
	e := newExplainer(t, u, ExplainerConfig{M: 2})
	vc := NewVarCalc(e, Tse)
	sketch, err := SelectSketch(vc, SketchConfig{MaxSegmentLen: 6, Size: 20})
	if err != nil {
		t.Fatal(err)
	}
	vc.SetObjectPositions(sketch)
	res, err := Optimize(vc, Options{KMax: 2, Positions: sketch})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.Scheme(2)
	if !ok {
		t.Fatal("no 2-scheme under coarse objects")
	}
	if s.Cuts[1] < 28 || s.Cuts[1] > 32 {
		t.Errorf("coarse-object cut = %d, want ≈30", s.Cuts[1])
	}
	// Unit-object variance of a segment differs in general but stays in
	// the same scale; the weighted value must remain finite and bounded.
	if w := vc.Weighted(0, 59); w < 0 || w > 59 {
		t.Errorf("coarse Weighted(0,59) = %g out of range", w)
	}
	// Restore unit objects.
	vc.SetObjectPositions(nil)
	if got := len(vc.objects(0, 59)); got != 60 {
		t.Errorf("unit objects after reset = %d bounds, want 60", got)
	}
}

// TestCoarseAllPair exercises the coarse-object AllPair path.
func TestCoarseAllPair(t *testing.T) {
	u := twoPhase(t, 40, 20)
	e := newExplainer(t, u, ExplainerConfig{M: 2})
	vc := NewVarCalc(e, AllPair)
	vc.SetObjectPositions([]int{0, 10, 20, 30, 39})
	w := vc.Weighted(0, 39)
	if w <= 0 || math.IsNaN(w) {
		t.Errorf("coarse AllPair Weighted = %g, want positive", w)
	}
	// A single-interval segment has no pairs.
	if got := vc.Weighted(0, 10); got != 0 {
		t.Errorf("one-object segment Weighted = %g, want 0", got)
	}
}

// TestSetRectifyInvalidatesCaches ensures toggling rectification clears
// cached values so results change.
func TestSetRectifyInvalidatesCaches(t *testing.T) {
	// Effect-flipping dataset: category a rises then falls.
	n := 21
	a := make([]float64, n)
	bse := make([]float64, n)
	for i := 0; i < n; i++ {
		if i <= 10 {
			a[i] = float64(10 * i)
		} else {
			a[i] = float64(10 * (20 - i))
		}
		bse[i] = 3
	}
	r := makeCatRelation(t, map[string][]float64{"a": a, "b": bse})
	u, err := universeOf(r)
	if err != nil {
		t.Fatal(err)
	}
	e := newExplainer(t, u, ExplainerConfig{M: 1})
	vc := NewVarCalc(e, Tse)
	// The segment [0, 13] spans the flip at 10: category a still nets an
	// increase over the segment, but the last objects see it decreasing.
	// With rectification those objects' relevance is zeroed, so the
	// variance must be strictly larger than without it.
	with := vc.Weighted(0, 13)
	vc.SetRectify(false)
	without := vc.Weighted(0, 13)
	if with <= without {
		t.Errorf("rectified variance %g should exceed unrectified %g on an effect flip", with, without)
	}
}
