package segment

import (
	"fmt"
	"math"
)

// Scheme is one K-segmentation scheme P_K: cut positions into the
// aggregated series, always starting at 0 and ending at n−1, so K
// segments need K+1 entries.
type Scheme struct {
	// Cuts holds the segment boundaries c_1 < c_2 < ... < c_{K+1} as point
	// positions (c_1 = 0, c_{K+1} = n−1).
	Cuts []int
	// TotalVariance is the objective value Σ |P_i|·var(P_i).
	TotalVariance float64
}

// K returns the number of segments in the scheme.
func (s Scheme) K() int { return len(s.Cuts) - 1 }

// DPResult holds the optimal scheme for every K from 1 to KMax, which the
// elbow method consumes: the DP for K = KMax yields all smaller K for
// free (Section 6).
type DPResult struct {
	// ByK[k] is the optimal scheme with exactly k segments (index 0
	// unused). Infeasible k (more segments than candidate positions, or a
	// max-length constraint that cannot be met) have TotalVariance +Inf
	// and nil Cuts.
	ByK []Scheme
}

// Scheme returns the optimal scheme for k segments, or false when k is
// out of range or infeasible.
func (r DPResult) Scheme(k int) (Scheme, bool) {
	if k < 1 || k >= len(r.ByK) || r.ByK[k].Cuts == nil {
		return Scheme{}, false
	}
	return r.ByK[k], true
}

// Options controls the segmentation DP.
type Options struct {
	// KMax is the largest segment count to solve for (default 20, the
	// paper's user-perception cap).
	KMax int
	// Positions restricts cut points to these point positions; it must
	// include 0 and n−1 and be strictly increasing. Nil allows every
	// point (the vanilla pipeline); the sketching optimization passes the
	// sketch here.
	Positions []int
	// MaxSegmentLen bounds the length (in points) of any segment; 0 means
	// unbounded. Sketch selection uses L = min(0.05n, 20).
	MaxSegmentLen int
	// Cancel, when non-nil, is polled between variance evaluations (each
	// may trigger a Cascading Analysts solve); a non-nil return aborts the
	// DP with that error so a request deadline stops the O(q²) solve
	// sweep instead of letting it run to completion.
	Cancel func() error
}

// Optimize solves the K-Segmentation problem (Problem 1) with the dynamic
// program of Eq. 11 over the given variance calculator. It returns the
// optimal scheme for every K in 1..KMax.
//
//tsexplain:cancellable
func Optimize(vc *VarCalc, opts Options) (DPResult, error) {
	n := vc.e.u.NumTimestamps()
	if n < 2 {
		return DPResult{}, fmt.Errorf("segment: series has %d points, need at least 2", n)
	}
	pos := opts.Positions
	if pos == nil {
		pos = make([]int, n)
		for i := range pos {
			pos[i] = i
		}
	}
	if err := validatePositions(pos, n); err != nil {
		return DPResult{}, err
	}
	kmax := opts.KMax
	if kmax <= 0 {
		kmax = 20
	}
	if kmax > len(pos)-1 {
		kmax = len(pos) - 1
	}
	maxLen := opts.MaxSegmentLen

	q := len(pos)
	// Precompute the weighted variances into dense per-endpoint rows so
	// the DP's inner loop reads a slice instead of hitting the cache map
	// K times per pair. wt[i][i-1-j] = |P|·var over [pos[j], pos[i]] for
	// every admissible predecessor j (jlo[i] ≤ j < i).
	cancel := opts.Cancel
	if cancel == nil {
		cancel = func() error { return nil }
	}
	jlo := make([]int, q)
	wt := make([][]float64, q)
	for i := 1; i < q; i++ {
		lo := 0
		if maxLen > 0 {
			for lo < i && pos[i]-pos[lo] > maxLen {
				lo++
			}
		}
		jlo[i] = lo
		row := make([]float64, i-lo)
		for j := i - 1; j >= lo; j-- {
			if err := cancel(); err != nil {
				return DPResult{}, err
			}
			row[i-1-j] = vc.Weighted(pos[j], pos[i])
		}
		wt[i] = row
	}

	// D[k][i]: minimal total variance covering [pos[0], pos[i]] with k
	// segments whose boundaries are all candidate positions.
	inf := math.Inf(1)
	D := make([][]float64, kmax+1)
	par := make([][]int, kmax+1)
	//tsexplain:nopoll O(kmax*q) zero-fill with no variance computations
	for k := 0; k <= kmax; k++ {
		D[k] = make([]float64, q)
		par[k] = make([]int, q)
		for i := range D[k] {
			D[k][i] = inf
			par[k][i] = -1
		}
	}
	for i := 1; i < q; i++ {
		if jlo[i] > 0 {
			continue // first segment cannot reach pos[0] under maxLen
		}
		D[1][i] = wt[i][i-1]
		par[1][i] = 0
	}
	for k := 2; k <= kmax; k++ {
		if err := cancel(); err != nil {
			return DPResult{}, err
		}
		Dprev := D[k-1]
		for i := k; i < q; i++ {
			// The j-sweep below makes each k-round O(q²); poll per row so
			// a cancellation lands within O(q) work instead of O(q²).
			if err := cancel(); err != nil {
				return DPResult{}, err
			}
			best := inf
			arg := -1
			row := wt[i]
			lo := jlo[i]
			if lo < k-1 {
				lo = k - 1
			}
			// Enumerate the last cut position pos[j] (Eq. 11).
			for j := i - 1; j >= lo; j-- {
				dp := Dprev[j]
				if dp == inf {
					continue
				}
				if v := dp + row[i-1-j]; v < best {
					best = v
					arg = j
				}
			}
			D[k][i] = best
			par[k][i] = arg
		}
	}

	res := DPResult{ByK: make([]Scheme, kmax+1)}
	last := q - 1
	//tsexplain:nopoll reconstruction is O(kmax^2) parent-pointer chasing, kmax is a small constant
	for k := 1; k <= kmax; k++ {
		res.ByK[k].TotalVariance = D[k][last]
		if math.IsInf(D[k][last], 1) {
			continue
		}
		cuts := make([]int, k+1)
		i := last
		for kk := k; kk >= 1; kk-- {
			cuts[kk] = pos[i]
			i = par[kk][i]
		}
		cuts[0] = pos[0]
		res.ByK[k].Cuts = cuts
	}
	return res, nil
}

func validatePositions(pos []int, n int) error {
	if len(pos) < 2 {
		return fmt.Errorf("segment: need at least 2 candidate positions, got %d", len(pos))
	}
	if pos[0] != 0 || pos[len(pos)-1] != n-1 {
		return fmt.Errorf("segment: positions must span [0, %d], got [%d, %d]",
			n-1, pos[0], pos[len(pos)-1])
	}
	for i := 1; i < len(pos); i++ {
		if pos[i] <= pos[i-1] {
			return fmt.Errorf("segment: positions not strictly increasing at index %d", i)
		}
		if pos[i] >= n {
			return fmt.Errorf("segment: position %d out of range", pos[i])
		}
	}
	return nil
}
