package segment

import (
	"testing"

	"repro/internal/cascading"
)

func cacheModes(n int) map[string]*segCache {
	flat := newSegCache(n)
	mapped := &segCache{m: make(map[int64]*cascading.Result)}
	return map[string]*segCache{"flat": flat, "map": mapped}
}

func resWith(g float64) cascading.Result {
	return cascading.Result{Best: []float64{0, g}}
}

func TestSegCacheFlatIdxIsBijective(t *testing.T) {
	const n = 17
	sc := newSegCache(n)
	if sc.n != n {
		t.Fatal("expected flat mode")
	}
	seen := make([]bool, n*(n-1)/2)
	for c := 0; c < n; c++ {
		for tt := c + 1; tt < n; tt++ {
			i := sc.flatIdx(c, tt)
			if i < 0 || i >= len(seen) || seen[i] {
				t.Fatalf("flatIdx(%d,%d) = %d: out of range or duplicate", c, tt, i)
			}
			seen[i] = true
		}
	}
}

func TestSegCacheBasicOps(t *testing.T) {
	for name, sc := range cacheModes(20) {
		t.Run(name, func(t *testing.T) {
			if sc.get(1, 5) != nil {
				t.Fatal("empty cache hit")
			}
			p := sc.put(1, 5, resWith(42))
			if p == nil || p.Best[1] != 42 {
				t.Fatal("put did not return the stored result")
			}
			if got := sc.get(1, 5); got == nil || got.Best[1] != 42 {
				t.Fatal("get after put missed")
			}
			sc.put(0, 19, resWith(7))

			count := 0
			sc.forEach(func(c, tt int, r *cascading.Result) { count++ })
			if count != 2 {
				t.Fatalf("forEach visited %d entries, want 2", count)
			}

			sc.invalidateFrom(10)
			if sc.get(1, 5) == nil {
				t.Error("prefix entry should survive invalidateFrom(10)")
			}
			if sc.get(0, 19) != nil {
				t.Error("suffix entry should be invalidated")
			}

			sc.reset()
			if sc.get(1, 5) != nil {
				t.Error("entry survived reset")
			}
			// The cache stays usable after reset.
			sc.put(2, 3, resWith(1))
			if sc.get(2, 3) == nil {
				t.Error("put after reset missed")
			}
		})
	}
}

// TestSegCacheFlatOutOfRange: segments outside a flat cache's triangle
// must still round-trip through the side map instead of vanishing.
func TestSegCacheFlatOutOfRange(t *testing.T) {
	sc := newSegCache(10)
	sc.put(3, 12, resWith(9)) // t beyond n
	if got := sc.get(3, 12); got == nil || got.Best[1] != 9 {
		t.Error("out-of-range entry not retrievable")
	}
	count := 0
	sc.forEach(func(c, tt int, r *cascading.Result) { count++ })
	if count != 1 {
		t.Errorf("forEach visited %d entries, want 1", count)
	}
	sc.invalidateFrom(11)
	if sc.get(3, 12) != nil {
		t.Error("out-of-range entry survived invalidateFrom")
	}
}

func TestSegCacheModeSelection(t *testing.T) {
	if sc := newSegCache(flatCacheMaxN); sc.n == 0 {
		t.Error("n at the threshold should be flat")
	}
	if sc := newSegCache(flatCacheMaxN + 1); sc.n != 0 {
		t.Error("n past the threshold should fall back to the map")
	}
	if sc := newSegCache(1); sc.n != 0 {
		t.Error("degenerate series should fall back to the map")
	}
}

func TestSegCacheGrowAndRewrite(t *testing.T) {
	sc := newSegCacheCap(10, 15)
	sc.put(2, 8, resWith(5))
	sc.put(0, 9, resWith(6))
	if sc.get(2, 12) != nil {
		t.Fatal("segment beyond logical length should miss")
	}
	if !sc.grow(14) {
		t.Fatal("grow within capacity refused")
	}
	if got := sc.get(2, 8); got == nil || got.Best[1] != 5 {
		t.Fatal("entry lost across grow")
	}
	sc.put(2, 12, resWith(7)) // now in range
	if got := sc.get(2, 12); got == nil || got.Best[1] != 7 {
		t.Fatal("post-grow segment not cached")
	}
	if sc.grow(16) {
		t.Fatal("grow past capacity should refuse")
	}

	sc.rewrite(func(c, tt int, r *cascading.Result) bool {
		if c == 0 {
			return false // drop
		}
		r.Best[1] *= 10
		return true
	})
	if sc.get(0, 9) != nil {
		t.Error("rewrite did not drop the entry")
	}
	if got := sc.get(2, 8); got == nil || got.Best[1] != 50 {
		t.Error("rewrite did not mutate in place")
	}

	// Headroom never forces map mode for flat-eligible lengths.
	if sc := newSegCacheCap(800, 1200); sc.n == 0 {
		t.Error("clamped headroom should keep the flat form")
	}
}

func TestSegCacheGenerationWrap(t *testing.T) {
	sc := newSegCache(8)
	sc.cur = ^uint32(0) // one bump from wrapping
	sc.put(0, 1, resWith(3))
	sc.reset()
	if sc.cur == 0 {
		t.Fatal("generation wrapped to the zero tag")
	}
	if sc.get(0, 1) != nil {
		t.Error("entry survived wrapping reset")
	}
	sc.put(0, 1, resWith(4))
	if got := sc.get(0, 1); got == nil || got.Best[1] != 4 {
		t.Error("cache unusable after generation wrap")
	}
}
