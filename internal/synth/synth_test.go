package synth

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/timeseries"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Params{Seed: 42, SNRdB: 35})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Params{Seed: 42, SNRdB: 35})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cuts, b.Cuts) {
		t.Errorf("cuts differ across identical seeds: %v vs %v", a.Cuts, b.Cuts)
	}
	for _, cat := range a.Categories {
		if !reflect.DeepEqual(a.Noisy[cat], b.Noisy[cat]) {
			t.Errorf("category %s series differ across identical seeds", cat)
		}
	}
	c, err := Generate(Params{Seed: 43, SNRdB: 35})
	if err != nil {
		t.Fatal(err)
	}
	same := reflect.DeepEqual(a.Cuts, c.Cuts)
	for _, cat := range a.Categories {
		same = same && reflect.DeepEqual(a.Noisy[cat], c.Noisy[cat])
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateStructure(t *testing.T) {
	d, err := Generate(Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Rel.NumTimestamps(); got != 100 {
		t.Errorf("N = %d, want 100", got)
	}
	if len(d.Categories) != 3 {
		t.Errorf("categories = %d, want 3", len(d.Categories))
	}
	if d.K != len(d.Cuts)+1 {
		t.Errorf("K = %d, cuts = %d", d.K, len(d.Cuts))
	}
	if d.K < 2 || d.K > 10 {
		t.Errorf("K = %d outside the paper's 2..10 range", d.K)
	}
	// All cuts separated by ≥ MinSegLen (6) including endpoints.
	full := d.GroundTruthScheme()
	for i := 1; i < len(full); i++ {
		if full[i]-full[i-1] < 6 {
			t.Errorf("segment [%d,%d] shorter than 6", full[i-1], full[i])
		}
	}
	// Clean series stay positive.
	for cat, s := range d.Clean {
		for i, v := range s {
			if v <= 0 {
				t.Errorf("category %s clean[%d] = %g, want > 0", cat, i, v)
			}
		}
	}
}

func TestCleanSeriesPiecewiseLinearWithAlternation(t *testing.T) {
	d, err := Generate(Params{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregated series from the relation equals the sum of categories.
	agg := relation.Values(relation.Sum, d.Rel.AggregateSeries(0))
	want := d.AggregateValues()
	for i := range agg {
		if math.Abs(agg[i]-want[i]) > 1e-6 {
			t.Fatalf("aggregate mismatch at %d: %g vs %g", i, agg[i], want[i])
		}
	}
	// Within each clean category the slope sign is constant between that
	// category's own cut structure; verify piecewise linearity by second
	// differences being ~0 away from cuts.
	for cat, s := range d.Clean {
		cutSet := map[int]bool{}
		for _, c := range d.Cuts {
			cutSet[c] = true
		}
		for i := 2; i < len(s); i++ {
			if cutSet[i-1] || cutSet[i] || cutSet[i-2] {
				continue
			}
			dd := s[i] - 2*s[i-1] + s[i-2]
			if math.Abs(dd) > 1e-6 {
				t.Errorf("category %s: nonlinear second difference %g at %d", cat, dd, i)
				break
			}
		}
	}
}

func TestNoiseMatchesSNR(t *testing.T) {
	d, err := Generate(Params{Seed: 5, SNRdB: 30, N: 2000, MinSegLen: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range d.Categories {
		got := timeseries.SNRdB(d.Clean[cat], d.Noisy[cat])
		if math.Abs(got-30) > 2 {
			t.Errorf("category %s: SNR = %g dB, want ≈30", cat, got)
		}
	}
}

func TestZeroSNRKeepsClean(t *testing.T) {
	d, err := Generate(Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range d.Categories {
		if !reflect.DeepEqual(d.Clean[cat], d.Noisy[cat]) {
			t.Errorf("category %s: noiseless dataset has noise", cat)
		}
	}
}

func TestGenerateTooShort(t *testing.T) {
	if _, err := Generate(Params{N: 10, MinSegLen: 6}); err == nil {
		t.Error("want error for series too short")
	}
}

func TestCorpus(t *testing.T) {
	corpus, err := Corpus(5, 1, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 5 {
		t.Fatalf("corpus size = %d, want 5", len(corpus))
	}
	// Same base seed and SNR reproduce the same cut structures.
	again, err := Corpus(5, 1, 35)
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus {
		if !reflect.DeepEqual(corpus[i].Cuts, again[i].Cuts) {
			t.Errorf("dataset %d cuts not reproducible", i)
		}
	}
	// Different SNR keeps the same ground truth (cut placement is sampled
	// before noise).
	clean, err := Corpus(5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus {
		if !reflect.DeepEqual(corpus[i].Cuts, clean[i].Cuts) {
			t.Errorf("dataset %d: cuts change with SNR", i)
		}
	}
}

func TestSNRLevels(t *testing.T) {
	levels := SNRLevels()
	if len(levels) != 7 || levels[0] != 20 || levels[6] != 50 {
		t.Errorf("SNRLevels = %v", levels)
	}
}

func TestKDistributionAcrossCorpus(t *testing.T) {
	corpus, err := Corpus(20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	minK, maxK := 100, 0
	for _, d := range corpus {
		if d.K < minK {
			minK = d.K
		}
		if d.K > maxK {
			maxK = d.K
		}
	}
	// The corpus should exhibit diverse K, per Figure 4.
	if maxK-minK < 3 {
		t.Errorf("K range [%d,%d] too narrow for a diverse corpus", minK, maxK)
	}
	if minK < 2 || maxK > 10 {
		t.Errorf("K range [%d,%d] outside 2..10", minK, maxK)
	}
}
