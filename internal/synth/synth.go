// Package synth generates the synthetic datasets of Section 4.2.1: one
// relation R(T, sales, category) whose aggregated series is the sum of
// three categories' piecewise-linear time series. Each category has its
// own random cutting points; within each category, adjacent segments
// alternate between upward and downward linear trends, so every cut is
// necessary; the ground-truth segmentation of the aggregate is the union
// of the categories' cutting points. Gaussian noise at a target SNR(dB)
// simulates real-world fuzziness.
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/relation"
	"repro/internal/timeseries"
)

// Params controls dataset generation.
type Params struct {
	// N is the series length (default 100, the paper's choice).
	N int
	// Categories is the number of explanation categories (default 3).
	Categories int
	// MaxCutsPerCategory bounds each category's own cutting points
	// (default 3, which keeps the union K within the paper's 2–10 range).
	MaxCutsPerCategory int
	// MinSegLen is the minimum distance between any two ground-truth cuts
	// and between a cut and an endpoint (default 6, matching the paper's
	// shortest segment).
	MinSegLen int
	// SNRdB adds Gaussian noise at this signal-to-noise ratio; 0 keeps
	// the clean signal.
	SNRdB float64
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
}

func (p *Params) setDefaults() {
	if p.N <= 0 {
		p.N = 100
	}
	if p.Categories <= 0 {
		p.Categories = 3
	}
	if p.MaxCutsPerCategory <= 0 {
		p.MaxCutsPerCategory = 3
	}
	if p.MinSegLen <= 0 {
		p.MinSegLen = 6
	}
}

// Dataset is one generated dataset with its ground truth.
type Dataset struct {
	// Rel is the relation R(T, category, sales); the aggregated series is
	// SELECT T, SUM(sales) GROUP BY T.
	Rel *relation.Relation
	// Categories lists the category names (a1, a2, ...).
	Categories []string
	// Clean[cat] is the noise-free per-category series.
	Clean map[string][]float64
	// Noisy[cat] is the per-category series after noise (equal to Clean
	// when SNRdB is 0); these are the values stored in Rel.
	Noisy map[string][]float64
	// Cuts is the ground-truth segmentation: interior cutting points of
	// the aggregate (the union of the categories' cuts), sorted.
	Cuts []int
	// K is the ground-truth segment count, len(Cuts)+1.
	K int
}

// GroundTruthScheme returns the full ground-truth cut list including both
// endpoints, the shape segment.Scheme.Cuts uses.
func (d *Dataset) GroundTruthScheme() []int {
	out := make([]int, 0, len(d.Cuts)+2)
	out = append(out, 0)
	out = append(out, d.Cuts...)
	out = append(out, d.Rel.NumTimestamps()-1)
	return out
}

// AggregateValues returns the aggregated (noisy) series Σ_cat series.
func (d *Dataset) AggregateValues() []float64 {
	n := d.Rel.NumTimestamps()
	out := make([]float64, n)
	for _, s := range d.Noisy {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// Generate builds one synthetic dataset.
func Generate(p Params) (*Dataset, error) {
	p.setDefaults()
	if p.N < 4*p.MinSegLen {
		return nil, fmt.Errorf("synth: series length %d too short for MinSegLen %d", p.N, p.MinSegLen)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	d := &Dataset{
		Clean: make(map[string][]float64),
		Noisy: make(map[string][]float64),
	}
	for i := 0; i < p.Categories; i++ {
		d.Categories = append(d.Categories, fmt.Sprintf("a%d", i+1))
	}

	// Sample per-category cut sets until the union respects the minimum
	// segment length (so every ground-truth cut is well separated).
	var perCat [][]int
	for attempt := 0; ; attempt++ {
		if attempt > 1000 {
			return nil, fmt.Errorf("synth: could not place cuts for N=%d MinSegLen=%d", p.N, p.MinSegLen)
		}
		perCat = perCat[:0]
		for range d.Categories {
			perCat = append(perCat, sampleCuts(rng, p))
		}
		union := unionCuts(perCat)
		if separated(union, p.N, p.MinSegLen) && len(union) >= 1 {
			d.Cuts = union
			break
		}
	}
	d.K = len(d.Cuts) + 1

	// Build each category's piecewise-linear series with alternating
	// up/down trends. Starting values and magnitudes keep every series
	// positive: with at most MaxCutsPerCategory+1 alternating segments and
	// drop magnitude ≤ 150, a start ≥ 320 can never go below 20.
	for ci, cat := range d.Categories {
		d.Clean[cat] = pwLinear(rng, p.N, perCat[ci])
	}

	// Corrupt with Gaussian noise at the requested SNR.
	for _, cat := range d.Categories {
		if p.SNRdB > 0 {
			d.Noisy[cat] = timeseries.AddGaussianNoise(d.Clean[cat], p.SNRdB, rng)
		} else {
			d.Noisy[cat] = append([]float64(nil), d.Clean[cat]...)
		}
	}

	// Materialize the relation: one row per (timestamp, category).
	labels := make([]string, p.N)
	for i := range labels {
		labels[i] = fmt.Sprintf("%04d", i)
	}
	b := relation.NewBuilder("synthetic", "T", []string{"category"}, []string{"sales"})
	b.SetTimeOrder(labels)
	for _, cat := range d.Categories {
		for i, v := range d.Noisy[cat] {
			if err := b.Append(labels[i], []string{cat}, []float64{v}); err != nil {
				return nil, err
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		return nil, err
	}
	d.Rel = rel
	return d, nil
}

// sampleCuts picks 1..MaxCutsPerCategory interior cut positions for one
// category, each at least MinSegLen away from the endpoints and from each
// other.
func sampleCuts(rng *rand.Rand, p Params) []int {
	want := 1 + rng.Intn(p.MaxCutsPerCategory)
	var cuts []int
	for attempt := 0; len(cuts) < want && attempt < 200; attempt++ {
		c := p.MinSegLen + rng.Intn(p.N-2*p.MinSegLen)
		ok := true
		for _, e := range cuts {
			if abs(c-e) < p.MinSegLen {
				ok = false
				break
			}
		}
		if ok {
			cuts = append(cuts, c)
		}
	}
	sort.Ints(cuts)
	return cuts
}

// unionCuts merges the categories' cut sets, dropping duplicates.
func unionCuts(perCat [][]int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, cuts := range perCat {
		for _, c := range cuts {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Ints(out)
	return out
}

// separated reports whether all cuts keep MinSegLen distance from each
// other and the endpoints.
func separated(cuts []int, n, minLen int) bool {
	prev := 0
	for _, c := range cuts {
		if c-prev < minLen {
			return false
		}
		prev = c
	}
	return n-1-prev >= minLen
}

// pwLinear builds one piecewise-linear series over segments delimited by
// cuts, with alternating up/down directions and per-segment magnitudes in
// [100, 350], like the large swings of the paper's Figure 5 example. The
// starting level is derived from the sampled deltas so the series never
// drops below 30 while keeping the DC offset (and therefore the noise
// power at a given SNR) small.
func pwLinear(rng *rand.Rand, n int, cuts []int) []float64 {
	bounds := append(append([]int{0}, cuts...), n-1)
	segs := len(bounds) - 1

	dir := 1.0
	if rng.Intn(2) == 0 {
		dir = -1
	}
	deltas := make([]float64, segs)
	for s := range deltas {
		deltas[s] = dir * (100 + rng.Float64()*250)
		dir = -dir
	}
	// Start just high enough that the lowest cumulative point sits at 30.
	minCum, cum := 0.0, 0.0
	for _, d := range deltas {
		cum += d
		if cum < minCum {
			minCum = cum
		}
	}
	v := 30 - minCum + rng.Float64()*60

	out := make([]float64, n)
	out[0] = v
	for s := 0; s+1 < len(bounds); s++ {
		from, to := bounds[s], bounds[s+1]
		for i := from + 1; i <= to; i++ {
			out[i] = v + deltas[s]*float64(i-from)/float64(to-from)
		}
		v += deltas[s]
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Corpus generates the experiment corpus: count datasets with seeds
// derived from baseSeed. The paper uses 20 base datasets, each corrupted
// at 7 SNR levels; callers regenerate the same base dataset at different
// SNRs by varying only SNRdB.
func Corpus(count int, baseSeed int64, snrDB float64) ([]*Dataset, error) {
	out := make([]*Dataset, 0, count)
	for i := 0; i < count; i++ {
		d, err := Generate(Params{Seed: baseSeed + int64(i)*7919, SNRdB: snrDB})
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// SNRLevels returns the paper's seven noise levels: 20, 25, ..., 50 dB.
func SNRLevels() []float64 {
	return []float64{20, 25, 30, 35, 40, 45, 50}
}
