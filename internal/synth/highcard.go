package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// HighCardParams controls the high-cardinality scenario generator: a
// relation R(T, user, region, events) whose aggregated series is shaped
// by a handful of dominant "whale" users with piecewise-linear trends
// (the explainable signal, whose cut union is the ground-truth
// segmentation), buried under a long tail of (user, region) pairs that
// each contribute a single short spike. Every long-tail pair occurs, so
// the candidate axis carries Users·Regions conjunctions — the regime the
// anytime approximate path targets, where exact per-segment scoring is
// linear in a candidate count the support filter cannot meaningfully
// shrink (each spike clears the 0.001 support threshold at its own
// timestamp).
type HighCardParams struct {
	// Users is the user-dimension cardinality (default 1288, of which
	// Whales are dominant).
	Users int
	// Regions is the region-dimension cardinality (default 40). Long-tail
	// candidate pairs number (Users−Whales)·Regions.
	Regions int
	// N is the series length (default 128).
	N int
	// Whales is the number of dominant users (default 8). Each whale has
	// a piecewise-linear series with 1..3 trend breaks; the union of the
	// breaks is the ground-truth segmentation.
	Whales int
	// SpikeBase scales the long-tail spikes (default 5); each spike value
	// is uniform in [0.8, 1.2]·SpikeBase.
	SpikeBase float64
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
}

func (p *HighCardParams) setDefaults() {
	if p.Users <= 0 {
		p.Users = 1288
	}
	if p.Regions <= 0 {
		p.Regions = 40
	}
	if p.N <= 0 {
		p.N = 128
	}
	if p.Whales <= 0 {
		p.Whales = 8
	}
	if p.Whales > p.Users/2 {
		p.Whales = p.Users / 2
	}
	if p.SpikeBase <= 0 {
		p.SpikeBase = 5
	}
}

// WithDefaults returns the params with every zero field resolved to the
// generator default, so callers can report the effective configuration.
func (p HighCardParams) WithDefaults() HighCardParams {
	p.setDefaults()
	return p
}

// ScaleHighCard resolves p's defaults and multiplies the user
// cardinality by factor. Rows and order-2 candidate conjunctions both
// grow linearly in Users (one long-tail spike per (user, region) pair),
// so this is the single knob the beyond-RAM benchmark and datagen
// -scale use to grow a dataset past any memory budget.
func ScaleHighCard(p HighCardParams, factor int) HighCardParams {
	p.setDefaults()
	if factor > 1 {
		p.Users *= factor
	}
	return p
}

// HighCardDataset is one generated high-cardinality dataset.
type HighCardDataset struct {
	// Rel is the relation R(T, user, region, events); the aggregated
	// series is SELECT T, SUM(events) GROUP BY T.
	Rel *relation.Relation
	// Cuts is the ground-truth segmentation: the union of the whales'
	// trend breaks, sorted interior positions.
	Cuts []int
	// K is the ground-truth segment count, len(Cuts)+1.
	K int
	// Pairs counts the long-tail (user, region) pairs, the candidate-axis
	// cardinality driver.
	Pairs int
}

// HighCardinality generates one high-cardinality scenario dataset. The
// order-2 candidate universe over (user, region) holds roughly
// Users·Regions + Users + Regions conjunctions (~52k at the defaults).
func HighCardinality(p HighCardParams) (*HighCardDataset, error) {
	p.setDefaults()
	minSeg := p.N / 16
	if minSeg < 6 {
		minSeg = 6
	}
	if p.N < 4*minSeg {
		return nil, fmt.Errorf("synth: high-card series length %d too short", p.N)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Ground-truth cuts: jittered evenly spaced interior positions (so
	// separation always holds, unlike sampling per-whale cut sets whose
	// union would almost never stay admissible at this whale count). Each
	// whale then breaks its trend at a random non-empty subset of them;
	// every global cut is covered by whales with overwhelming probability,
	// and the union of the whales' breaks is exactly the cut list.
	nCuts := (p.N - 2*minSeg) / (2 * minSeg)
	if nCuts > 6 {
		nCuts = 6
	}
	if nCuts < 1 {
		nCuts = 1
	}
	span := float64(p.N-2*minSeg) / float64(nCuts)
	cuts := make([]int, nCuts)
	for i := range cuts {
		jitter := (rng.Float64() - 0.5) * span / 2
		cuts[i] = minSeg + int((float64(i)+0.5)*span+jitter)
	}
	perWhale := make([][]int, p.Whales)
	for w := range perWhale {
		for _, c := range cuts {
			if rng.Float64() < 0.5 {
				perWhale[w] = append(perWhale[w], c)
			}
		}
		if len(perWhale[w]) == 0 {
			perWhale[w] = append(perWhale[w], cuts[rng.Intn(len(cuts))])
		}
	}

	labels := make([]string, p.N)
	for i := range labels {
		labels[i] = fmt.Sprintf("%04d", i)
	}
	b := relation.NewBuilder("highcard", "T", []string{"user", "region"}, []string{"events"})
	b.SetTimeOrder(labels)

	// Whales: daily rows in region r00 with piecewise-linear values scaled
	// up so their swings dominate every segment's attribution (the top
	// explanations the approximate path must not lose).
	for w := 0; w < p.Whales; w++ {
		user := fmt.Sprintf("u%05d", w)
		series := pwLinear(rng, p.N, perWhale[w])
		for t := 0; t < p.N; t++ {
			if err := b.Append(labels[t], []string{user, "r00"}, []float64{series[t] * 1.6}); err != nil {
				return nil, err
			}
		}
	}

	// Long tail: every non-whale (user, region) pair contributes exactly
	// one spike at an rng-spread timestamp. Each spike is large enough to
	// clear the default support filter at its own timestamp, so the
	// filter cannot collapse the candidate axis — only pruning by
	// contribution bound can.
	pairs := 0
	for u := p.Whales; u < p.Users; u++ {
		user := fmt.Sprintf("u%05d", u)
		for r := 0; r < p.Regions; r++ {
			region := fmt.Sprintf("r%02d", r)
			t := 1 + rng.Intn(p.N-2)
			v := p.SpikeBase * (0.8 + 0.4*rng.Float64())
			if err := b.Append(labels[t], []string{user, region}, []float64{v}); err != nil {
				return nil, err
			}
			pairs++
		}
	}

	rel, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &HighCardDataset{Rel: rel, Cuts: cuts, K: len(cuts) + 1, Pairs: pairs}, nil
}
