package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// TaxonomyParams controls the taxonomy scenario generator: a relation
// R(T, cat, subcat, leaf, sales, price, weight) whose leaf dimension is
// the bottom of a three-level single-parent taxonomy (cat → subcat →
// leaf, globally unique labels c07 / c07s03 / c07s03l11). A handful of
// driver leaves — concentrated in a few categories — carry
// piecewise-linear trends whose break union is the ground-truth
// segmentation; every other leaf contributes one short spike, so the
// candidate axis holds every level-grouped conjunction (cats + subcats +
// leaves ≈ 52k at the defaults) while the attribution mass sits in a few
// subtrees. That shape is exactly what subtree bound-pruning exploits:
// the best-first walk descends the driver categories and prunes the
// spike-only subtrees by their parents' caps. The extra price and weight
// measures are numeric-range material for equi-depth binning.
type TaxonomyParams struct {
	// Cats, SubcatsPerCat, and LeavesPerSubcat set the taxonomy fan-out
	// (defaults 40, 35, 36 — ~50400 leaves).
	Cats            int
	SubcatsPerCat   int
	LeavesPerSubcat int
	// N is the series length (default 96).
	N int
	// Drivers is the number of trend-carrying leaves (default 6), placed
	// in the first max(1, Cats/16) categories so the mass concentrates.
	Drivers int
	// SpikeBase scales the long-tail spikes (default 5).
	SpikeBase float64
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
}

func (p *TaxonomyParams) setDefaults() {
	if p.Cats <= 0 {
		p.Cats = 40
	}
	if p.SubcatsPerCat <= 0 {
		p.SubcatsPerCat = 35
	}
	if p.LeavesPerSubcat <= 0 {
		p.LeavesPerSubcat = 36
	}
	if p.N <= 0 {
		p.N = 96
	}
	if p.Drivers <= 0 {
		p.Drivers = 6
	}
	if max := p.Cats * p.SubcatsPerCat; p.Drivers > max {
		p.Drivers = max
	}
	if p.SpikeBase <= 0 {
		p.SpikeBase = 5
	}
}

// WithDefaults returns the params with every zero field resolved to the
// generator default, so callers can report the effective configuration.
func (p TaxonomyParams) WithDefaults() TaxonomyParams {
	p.setDefaults()
	return p
}

// TaxonomyLevels is the coarse-to-fine dimension list of the generated
// taxonomy, the value Options.Hierarchies and manifest "hierarchies"
// entries declare.
func TaxonomyLevels() []string { return []string{"cat", "subcat", "leaf"} }

// TaxonomyDataset is one generated taxonomy scenario dataset.
type TaxonomyDataset struct {
	// Rel is the relation R(T, cat, subcat, leaf, sales, price, weight);
	// the aggregated series is SELECT T, SUM(sales) GROUP BY T.
	Rel *relation.Relation
	// Cuts is the ground-truth segmentation (sorted interior positions)
	// and K its segment count, len(Cuts)+1.
	Cuts []int
	K    int
	// Leaves counts the taxonomy's leaf labels.
	Leaves int
}

// Taxonomy generates one taxonomy scenario dataset. Sales values are all
// non-negative, so the SUM workload is subtree-prunable
// (explain.NewSubtreeBounds accepts it).
func Taxonomy(p TaxonomyParams) (*TaxonomyDataset, error) {
	p.setDefaults()
	minSeg := p.N / 16
	if minSeg < 6 {
		minSeg = 6
	}
	if p.N < 4*minSeg {
		return nil, fmt.Errorf("synth: taxonomy series length %d too short", p.N)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Ground-truth cuts and per-driver break subsets, the same jittered
	// even-spacing construction the high-cardinality scenario uses.
	nCuts := (p.N - 2*minSeg) / (2 * minSeg)
	if nCuts > 6 {
		nCuts = 6
	}
	if nCuts < 1 {
		nCuts = 1
	}
	span := float64(p.N-2*minSeg) / float64(nCuts)
	cuts := make([]int, nCuts)
	for i := range cuts {
		jitter := (rng.Float64() - 0.5) * span / 2
		cuts[i] = minSeg + int((float64(i)+0.5)*span+jitter)
	}
	perDriver := make([][]int, p.Drivers)
	for d := range perDriver {
		for _, c := range cuts {
			if rng.Float64() < 0.5 {
				perDriver[d] = append(perDriver[d], c)
			}
		}
		if len(perDriver[d]) == 0 {
			perDriver[d] = append(perDriver[d], cuts[rng.Intn(len(cuts))])
		}
	}

	labels := make([]string, p.N)
	for i := range labels {
		labels[i] = fmt.Sprintf("%04d", i)
	}
	b := relation.NewBuilder("taxonomy", "T",
		[]string{"cat", "subcat", "leaf"}, []string{"sales", "price", "weight"})
	b.SetTimeOrder(labels)

	catL := func(c int) string { return fmt.Sprintf("c%02d", c) }
	subL := func(c, s int) string { return fmt.Sprintf("c%02ds%02d", c, s) }
	leafL := func(c, s, l int) string { return fmt.Sprintf("c%02ds%02dl%02d", c, s, l) }
	aux := func() []float64 {
		return []float64{0, 1 + rng.Float64()*199, 0.1 + rng.Float64()*9.9}
	}

	// Drivers: leaf l00 of distinct subcats inside the first few
	// categories, each a full daily series scaled to dominate its
	// segments' attributions.
	nDriverCats := p.Cats / 16
	if nDriverCats < 1 {
		nDriverCats = 1
	}
	driverOf := make(map[[3]int]bool, p.Drivers)
	for d := 0; d < p.Drivers; d++ {
		c := d % nDriverCats
		s := (d / nDriverCats) % p.SubcatsPerCat
		driverOf[[3]int{c, s, 0}] = true
		dims := []string{catL(c), subL(c, s), leafL(c, s, 0)}
		series := pwLinear(rng, p.N, perDriver[d])
		for t := 0; t < p.N; t++ {
			meas := aux()
			meas[0] = series[t] * 1.6
			if err := b.Append(labels[t], dims, meas); err != nil {
				return nil, err
			}
		}
	}

	// Long tail: every non-driver leaf contributes exactly one spike, so
	// every taxonomy label occurs (the hierarchy is total) and the
	// support filter cannot collapse the candidate axis.
	leaves := 0
	for c := 0; c < p.Cats; c++ {
		for s := 0; s < p.SubcatsPerCat; s++ {
			for l := 0; l < p.LeavesPerSubcat; l++ {
				leaves++
				if driverOf[[3]int{c, s, l}] {
					continue
				}
				t := 1 + rng.Intn(p.N-2)
				meas := aux()
				meas[0] = p.SpikeBase * (0.8 + 0.4*rng.Float64())
				dims := []string{catL(c), subL(c, s), leafL(c, s, l)}
				if err := b.Append(labels[t], dims, meas); err != nil {
					return nil, err
				}
			}
		}
	}

	rel, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &TaxonomyDataset{Rel: rel, Cuts: cuts, K: len(cuts) + 1, Leaves: leaves}, nil
}
