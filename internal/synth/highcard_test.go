package synth

import (
	"testing"

	"repro/internal/relation"
)

func TestHighCardinalityShape(t *testing.T) {
	p := HighCardParams{Users: 80, Regions: 10, Whales: 4, N: 64, Seed: 7}
	d, err := HighCardinality(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if got, want := d.Rel.NumTimestamps(), 64; got != want {
		t.Errorf("timestamps = %d, want %d", got, want)
	}
	if got, want := d.Pairs, (80-4)*10; got != want {
		t.Errorf("pairs = %d, want %d", got, want)
	}
	if got, want := d.Rel.NumRows(), 4*64+(80-4)*10; got != want {
		t.Errorf("rows = %d, want %d", got, want)
	}
	if d.K != len(d.Cuts)+1 {
		t.Errorf("K = %d with %d cuts", d.K, len(d.Cuts))
	}
	minSeg := 64 / 16
	if minSeg < 6 {
		minSeg = 6
	}
	prev := 0
	for _, c := range d.Cuts {
		if c-prev < minSeg {
			t.Errorf("cuts %v not separated by %d", d.Cuts, minSeg)
			break
		}
		prev = c
	}
	if 64-1-prev < minSeg {
		t.Errorf("last cut %d too close to the end", prev)
	}
}

// TestHighCardinalityDeterministic: equal seeds give bit-identical data,
// the property the committed benchmark baseline depends on.
func TestHighCardinalityDeterministic(t *testing.T) {
	p := HighCardParams{Users: 60, Regions: 8, Whales: 3, N: 64, Seed: 99}
	a, err := HighCardinality(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, err := HighCardinality(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if a.Rel.NumRows() != b.Rel.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.Rel.NumRows(), b.Rel.NumRows())
	}
	m := a.Rel.MeasureIndex("events")
	as, bs := a.Rel.AggregateSeries(m), b.Rel.AggregateSeries(m)
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("aggregate series differs at %d: %+v vs %+v", i, as[i], bs[i])
		}
	}
}

// TestHighCardinalitySurvivesSupportFilter: the long tail must largely
// clear the default support filter — otherwise the filter would collapse
// the candidate axis and the scenario would not stress the approximate
// path at all.
func TestHighCardinalitySurvivesSupportFilter(t *testing.T) {
	d, err := HighCardinality(HighCardParams{Users: 80, Regions: 10, Whales: 4, N: 64, Seed: 7})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	m := d.Rel.MeasureIndex("events")
	tot := d.Rel.AggregateSeries(m)
	totVals := make([]float64, len(tot))
	for i, sc := range tot {
		totVals[i] = relation.Sum.Eval(sc.Sum, sc.Count)
	}
	// Count spike rows clearing 0.001 of the total at their own day: the
	// generator's invariant is that the long tail is not statically
	// prunable.
	maxTot := 0.0
	for _, v := range totVals {
		if v > maxTot {
			maxTot = v
		}
	}
	minSpike := 0.8 * 5 // SpikeBase default 5, low end of the jitter
	if minSpike < 0.001*maxTot {
		t.Errorf("spikes (%g) fall below the support threshold at the loudest day (%g): the filter would prune the tail",
			minSpike, 0.001*maxTot)
	}
}
