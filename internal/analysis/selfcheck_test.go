package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

// TestRepoClean builds cmd/tsexplain-vet and runs it over the whole
// module the same way CI does, asserting the repo carries zero
// invariant violations. A new map-ordered loop in a kernel package, an
// unguarded touch of a //tsexplain:guardedby field, or a minted root
// context on the request path fails this test before it reaches CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a vet tool and re-type-checks the module; skipped in -short")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "tsexplain-vet")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	build := exec.Command("go", "build", "-o", bin, "./cmd/tsexplain-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tsexplain-vet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("tsexplain-vet is not clean over ./...: %v\n%s", err, out)
	}
}

// moduleRoot walks up from the test's directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
