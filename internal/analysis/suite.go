// Package analysis assembles tsexplain-vet: the project-specific
// go/analysis suite that machine-checks the engine's invariants. The
// golden corpus and the race detector catch violations after the fact;
// these analyzers catch them at vet time, before the ROADMAP's
// concurrency-heavy items (multi-node fan-out, progressive explains,
// mmap arenas) multiply the ways to violate them. See
// ARCHITECTURE.md "Invariants & static analysis" for the analyzer ↔
// invariant map.
package analysis

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/lostcancel"

	"repro/internal/analysis/annotcheck"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lockguard"
)

// Suite is every analyzer cmd/tsexplain-vet runs: the five
// project-specific ones plus the upstream passes worth promoting into
// the standard vet run. lostcancel is bundled because the server mints
// WithTimeout/WithCancel contexts on every request path; nilness is NOT
// bundled — it needs go/ssa, which the offline toolchain vendor does not
// carry (see vendor/modules.txt; revisit when the module proxy is
// reachable).
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		annotcheck.Analyzer,
		determinism.Analyzer,
		lockguard.Analyzer,
		ctxflow.Analyzer,
		hotpathalloc.Analyzer,
		lostcancel.Analyzer,
	}
}
