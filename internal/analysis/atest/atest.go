// Package atest is a self-contained analysistest substitute: it loads a
// fixture package from testdata/src/<dir>, type-checks it against the
// standard library with the stdlib source importer (no go/packages, no
// network, no GOPATH setup), runs an analyzer — resolving its Requires
// graph — and matches the diagnostics against analysistest-style
// expectation comments:
//
//	m := map[string]int{}
//	for k := range m { order = append(order, k) } // want `map iteration order`
//
// Each `// want` comment carries one or more back-quoted or double-quoted
// regexps; every pattern must match exactly one diagnostic on its line
// and every diagnostic must be claimed by a pattern. The upstream
// analysistest needs go/packages (absent from the offline toolchain
// vendor); this driver covers what the suite's fixtures actually need.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<dir> (relative to the test's working
// directory), runs a on it, and reports mismatches between diagnostics
// and `// want` expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgDir := filepath.Join("testdata", "src", dir)
	fset := token.NewFileSet()
	files, err := parseDir(fset, pkgDir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := typecheck(fset, dir, files)
	if err != nil {
		t.Fatalf("type-checking %s: %v", pkgDir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := runRequires(pass, a); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	match(t, fset, files, diags)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return files, nil
}

func typecheck(fset *token.FileSet, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		// The source importer compiles stdlib imports from GOROOT source:
		// fixture packages may import context, fmt, sync, time, math/rand
		// without any export data or network.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(path, fset, files, info)
	return pkg, info, err
}

// runRequires executes the analyzer's Requires graph depth-first,
// filling pass.ResultOf the way a real driver would.
func runRequires(pass *analysis.Pass, a *analysis.Analyzer) error {
	for _, req := range a.Requires {
		if _, done := pass.ResultOf[req]; done {
			continue
		}
		if err := runRequires(pass, req); err != nil {
			return err
		}
		sub := *pass
		sub.Analyzer = req
		res, err := req.Run(&sub)
		if err != nil {
			return fmt.Errorf("required analyzer %s: %v", req.Name, err)
		}
		pass.ResultOf[req] = res
	}
	return nil
}

// want is one expectation: a pattern attached to a file line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// collectWants parses `// want ...` comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment or trail another one
				// (e.g. after a //tsexplain: directive under test).
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				text := c.Text[i+len("// want "):]
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Errorf("%s: malformed want comment (no quoted pattern): %s", pos, c.Text)
					continue
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// match reconciles diagnostics against expectations 1:1.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}
