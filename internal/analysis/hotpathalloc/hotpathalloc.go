// Package hotpathalloc defines the tsexplain-vet analyzer that keeps the
// zero-alloc kernels zero-alloc. The PR 1/PR 7 hot loops (group-by fill,
// the VarCalc prefix queries, the cascading solve and guess-verify, the
// snapshot fast paths) earned their allocs/op = 0 benchmarks the hard
// way; this analyzer stops the cheap ways of losing them. A function
// annotated //tsexplain:hotpath may not contain:
//
//   - any fmt call (Sprintf and friends allocate; even their arguments
//     box into ...any);
//   - string concatenation or string<->[]byte/[]rune conversions inside
//     a loop;
//   - function literals (a capturing closure allocates per construction
//     — hoist it to a method or a package function);
//   - implicit interface boxing at call sites (a concrete value passed
//     to an interface parameter escapes);
//   - map literals or make(map...).
//
// An allocation that is intentional — a cold fallback branch, one-time
// growth — carries //tsexplain:allowalloc <reason> on its line. The
// analyzer is the reviewer that never gets tired; the allocs/op
// benchmarks in BENCH_engine.json remain the ground truth.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "tsexhotpathalloc",
	Doc:  "flag known-allocating constructs inside //tsexplain:hotpath kernels",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if annot.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		lines := annot.FileLines(pass.Fset, f)
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := annot.FuncDirective(fn, annot.Hotpath); !ok {
				continue
			}
			check(pass, lines, fn)
		}
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	lines annot.Lines
	fn    *ast.FuncDecl
	depth int // enclosing loop depth
	// skip holds conversion calls excused by their context: the compiler
	// recognizes m[string(b)] lookups and elides the copy.
	skip map[*ast.CallExpr]bool
}

func check(pass *analysis.Pass, lines annot.Lines, fn *ast.FuncDecl) {
	c := &checker{pass: pass, lines: lines, fn: fn, skip: make(map[*ast.CallExpr]bool)}
	c.walk(fn.Body)
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if _, ok := c.lines.At(pos, annot.AllowAlloc); ok {
		return
	}
	args = append(args, c.fn.Name.Name)
	c.pass.Reportf(pos, format+" in //tsexplain:hotpath %s", args...)
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "function literal (a capturing closure allocates; hoist it)")
			return false // the closure body is cold by definition once flagged
		case *ast.ForStmt:
			c.walkLoop(n.Body, n.Init, n.Cond, n.Post)
			return false
		case *ast.RangeStmt:
			c.checkExprShallow(n.X)
			c.walkLoop(n.Body, nil, nil, nil)
			return false
		case *ast.IndexExpr:
			// m[string(b)] is a compiler-recognized lookup: the
			// conversion's copy is elided, no allocation happens.
			if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if call, ok := ast.Unparen(n.Index).(*ast.CallExpr); ok {
						c.skip[call] = true
					}
				}
			}
		case *ast.CompositeLit:
			if t := c.pass.TypesInfo.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.BinaryExpr:
			c.checkBinary(n)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && c.depth > 0 && len(n.Lhs) == 1 {
				if t := c.pass.TypesInfo.TypeOf(n.Lhs[0]); t != nil && isString(t) {
					c.report(n.TokPos, "string concatenation inside a loop allocates per iteration")
				}
			}
		}
		return true
	})
}

// walkLoop walks a loop's clauses and body with the loop depth raised,
// activating the in-loop string checks.
func (c *checker) walkLoop(body *ast.BlockStmt, parts ...ast.Node) {
	c.depth++
	for _, p := range parts {
		if p != nil {
			c.walk(p)
		}
	}
	c.walk(body)
	c.depth--
}

// checkExprShallow re-checks an expression without changing loop depth
// (range X evaluates once, before the loop).
func (c *checker) checkExprShallow(e ast.Expr) {
	d := c.depth
	c.depth = 0
	c.walk(e)
	c.depth = d
}

func (c *checker) checkBinary(b *ast.BinaryExpr) {
	if b.Op != token.ADD || c.depth == 0 {
		return
	}
	if t := c.pass.TypesInfo.TypeOf(b.X); t != nil && isString(t) {
		c.report(b.OpPos, "string concatenation inside a loop allocates per iteration")
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Conversion? (T)(x) with T a type.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	if fn := calleeFunc(c.pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "fmt.%s allocates (and boxes its arguments)", fn.Name())
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "make" && len(call.Args) > 0 {
				if t := c.pass.TypesInfo.TypeOf(call.Args[0]); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						c.report(call.Pos(), "make(map) allocates")
					}
				}
			}
			return
		}
	}
	c.checkBoxing(call)
}

// checkConversion flags string<->bytes/runes conversions in loops (they
// copy) — conversions between string-kinded types or numeric types are
// free.
func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	if c.depth == 0 || len(call.Args) != 1 || c.skip[call] {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	toStr, fromStr := isString(to), isString(from)
	if toStr == fromStr {
		return // string->string or non-string conversion: no copy
	}
	if isByteOrRuneSlice(to) || isByteOrRuneSlice(from) {
		c.report(call.Pos(), "string conversion inside a loop copies and allocates")
	}
	// string(int)/string(rune) single-rune conversions also allocate.
	if toStr {
		if b, ok := from.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			c.report(call.Pos(), "string(rune) conversion inside a loop allocates")
		}
	}
}

// checkBoxing flags concrete values passed to interface parameters.
func (c *checker) checkBoxing(call *ast.CallExpr) {
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := c.pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(c.pass, arg) {
			continue
		}
		if isPointerShaped(at) {
			continue // a single-word referent fits the iface data word: no alloc
		}
		c.report(arg.Pos(), "passing concrete %s to interface parameter boxes (escapes)", at.String())
	}
}

// isPointerShaped reports whether boxing t into an interface stores the
// value directly in the data word instead of allocating.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
