// Package determinism defines the tsexplain-vet analyzer that keeps the
// engine's output bit-identical run to run. The golden corpus
// (testdata/golden) pins WHAT the engine answers; this analyzer pins the
// two code patterns that historically break such pins silently:
//
//   - ranging over a map where the loop body is order-sensitive (appends,
//     last-writer-wins assignments, argmax with ties, arbitrary calls) —
//     Go randomizes map iteration order, so any such loop feeding ordered
//     output is a latent golden-corpus flake;
//   - reading the wall clock (time.Now/Since/Until) or the global
//     math/rand generators inside kernel code.
//
// Order-insensitive map loops (pure accumulation, delete sweeps,
// set-by-distinct-key) are recognized and allowed automatically; anything
// beyond that needs an explicit `//tsexplain:unordered <reason>`
// annotation, and clock/rand reads that provably never feed output (stats
// counters) need `//tsexplain:nondet <reason>`.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/annot"
)

// DefaultScope is the set of deterministic-output packages: the four
// kernel layers whose results the golden corpus pins bit-identically.
const DefaultScope = "repro/internal/explain,repro/internal/segment,repro/internal/cascading,repro/internal/relation"

var Analyzer = &analysis.Analyzer{
	Name: "tsexdeterminism",
	Doc: "flag map-iteration-order and clock/rand nondeterminism in the deterministic kernel packages\n\n" +
		"Scoped by -tsexdeterminism.pkgs (comma-separated package paths; empty = all).",
	Run: run,
}

var scope = DefaultScope

func init() {
	Analyzer.Flags.StringVar(&scope, "pkgs", DefaultScope,
		"comma-separated package paths to check (empty = every package)")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !annot.PkgScope(scope).Match(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if annot.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		lines := annot.FileLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, lines, n)
			case *ast.CallExpr:
				checkCall(pass, lines, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkRange flags order-sensitive iteration over a map.
func checkRange(pass *analysis.Pass, lines annot.Lines, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// `for range m` uses nothing iteration-order-dependent.
	if isBlank(rng.Key) && isBlank(rng.Value) {
		return
	}
	if _, ok := lines.At(rng.Pos(), annot.Unordered); ok {
		return
	}
	keyName := identName(rng.Key)
	if commutativeBlock(pass, rng.Body, keyName) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order reaches this loop's effects; sort the keys first or annotate //tsexplain:unordered with a reason")
}

func isBlank(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func identName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// commutativeBlock reports whether every statement in the loop body has
// the same net effect regardless of iteration order: pure accumulations
// (x += v, x++), deletes, writes keyed by the (distinct) iteration key,
// and branches over those. Anything else — appends, plain assignments
// (last writer wins), argmax updates (ties), calls with unknown effects
// — is order-sensitive.
func commutativeBlock(pass *analysis.Pass, b *ast.BlockStmt, keyName string) bool {
	for _, s := range b.List {
		if !commutativeStmt(pass, s, keyName) {
			return false
		}
	}
	return true
}

func commutativeStmt(pass *analysis.Pass, s ast.Stmt, keyName string) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			// Commutative accumulation, as long as no operand hides a call.
			return !anyCalls(s.Lhs) && !anyCalls(s.Rhs)
		case token.ASSIGN:
			// m2[k] = expr keyed by the iteration key writes distinct
			// cells; order cannot matter. Any other plain assignment is
			// last-writer-wins.
			if len(s.Lhs) != 1 || keyName == "" {
				return false
			}
			ix, ok := s.Lhs[0].(*ast.IndexExpr)
			if !ok || identName(ix.Index) != keyName {
				return false
			}
			return !anyCalls(s.Rhs)
		}
		return false
	case *ast.IncDecStmt:
		return !hasCall(s.X)
	case *ast.ExprStmt:
		// delete(m, k) is the one allowed call: removal is unordered.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				return !anyCalls(call.Args)
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil || hasCall(s.Cond) {
			return false
		}
		if !commutativeBlock(pass, s.Body, keyName) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return commutativeBlock(pass, e, keyName)
		case *ast.IfStmt:
			return commutativeStmt(pass, e, keyName)
		}
		return false
	case *ast.BlockStmt:
		return commutativeBlock(pass, s, keyName)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

func anyCalls(es []ast.Expr) bool {
	for _, e := range es {
		if hasCall(e) {
			return true
		}
	}
	return false
}

func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// checkCall flags wall-clock reads and global math/rand draws.
func checkCall(pass *analysis.Pass, lines annot.Lines, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	var what string
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			what = "wall-clock read time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		// Package-level draws share a global, impossible-to-seed-per-query
		// source; a locally seeded *rand.Rand (method call) is fine.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			what = "global " + fn.Pkg().Path() + "." + fn.Name()
		}
	}
	if what == "" {
		return
	}
	if _, ok := lines.At(call.Pos(), annot.Nondet); ok {
		return
	}
	pass.Reportf(call.Pos(),
		"%s in deterministic kernel code; thread the value in from the caller or annotate //tsexplain:nondet with the reason it never feeds output", what)
}

// calleeFunc resolves the called *types.Func, if the callee is a
// plain function or method reference.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
