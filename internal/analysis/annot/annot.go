// Package annot parses the //tsexplain: directive comments that turn the
// engine's prose invariants into machine-checked annotations. The
// tsexplain-vet analyzers (internal/analysis/...) consume them:
//
//	//tsexplain:guardedby mu        struct field: only touch while holding
//	                                the sibling mutex field "mu"
//	//tsexplain:guardedby shard.mu  struct field: guarded by the mutex field
//	                                "mu" of some (other) struct "shard"
//	//tsexplain:locked mu           function: the caller already holds the
//	                                receiver's "mu" (or "T.mu" for an
//	                                external guard) on entry
//	//tsexplain:hotpath             function: zero-alloc kernel; known
//	                                allocating constructs are diagnostics
//	//tsexplain:cancellable         function: long-running solver loop; must
//	                                poll its cancellation hook
//	//tsexplain:ctxroot <reason>    function: allowed to mint a root context
//	//tsexplain:unordered <reason>  statement: this map iteration is
//	                                order-insensitive on purpose
//	//tsexplain:nondet <reason>     statement: this clock/rand read never
//	                                feeds deterministic output
//	//tsexplain:nopoll <reason>     statement: this nested loop is bounded
//	                                and may skip cancellation polling
//	//tsexplain:allowalloc <reason> statement: this allocation on a hot path
//	                                is intentional (cold branch, one-time)
//
// Directives follow Go's directive-comment shape (no space after the
// slashes) so they never leak into godoc. Statement-level directives
// attach to the statement on the same line or the line directly above.
package annot

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the directive comment prefix.
const Prefix = "//tsexplain:"

// Verbs every analyzer agrees on; annotcheck flags anything else.
const (
	GuardedBy   = "guardedby"
	Locked      = "locked"
	Hotpath     = "hotpath"
	Cancellable = "cancellable"
	CtxRoot     = "ctxroot"
	Unordered   = "unordered"
	Nondet      = "nondet"
	NoPoll      = "nopoll"
	AllowAlloc  = "allowalloc"
)

// Known reports whether verb is a directive the suite defines.
func Known(verb string) bool {
	switch verb {
	case GuardedBy, Locked, Hotpath, Cancellable, CtxRoot, Unordered, Nondet, NoPoll, AllowAlloc:
		return true
	}
	return false
}

// Directive is one parsed //tsexplain: comment.
type Directive struct {
	Verb string
	Args string // rest of the line, space-trimmed; the reason for suppressions
	Pos  token.Pos
}

// Parse extracts the directive from a single comment, if it is one.
func Parse(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, Prefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, Prefix)
	// A trailing "// ..." comment is not part of the directive (the
	// analyzer fixtures hang "// want" expectations there).
	if i := strings.Index(rest, " //"); i >= 0 {
		rest = rest[:i]
	}
	verb, args, _ := strings.Cut(rest, " ")
	return Directive{Verb: verb, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// group collects the directives in a comment group.
func group(g *ast.CommentGroup) []Directive {
	if g == nil {
		return nil
	}
	var out []Directive
	for _, c := range g.List {
		if d, ok := Parse(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// FuncDirectives returns the directives in a function's doc comment.
func FuncDirectives(fn *ast.FuncDecl) []Directive { return group(fn.Doc) }

// FuncDirective returns the first directive with the given verb on fn.
func FuncDirective(fn *ast.FuncDecl, verb string) (Directive, bool) {
	for _, d := range FuncDirectives(fn) {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// FieldDirectives returns the directives attached to a struct field,
// from its doc comment or its trailing line comment.
func FieldDirectives(f *ast.Field) []Directive {
	return append(group(f.Doc), group(f.Comment)...)
}

// Lines indexes a file's statement-level directives by line, so
// analyzers can ask "is this statement suppressed?".
type Lines struct {
	fset   *token.FileSet
	byLine map[int][]Directive
}

// FileLines indexes every directive comment in the file by its line.
func FileLines(fset *token.FileSet, f *ast.File) Lines {
	l := Lines{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := Parse(c); ok {
				line := fset.Position(c.Pos()).Line
				l.byLine[line] = append(l.byLine[line], d)
			}
		}
	}
	return l
}

// At returns the directive with the given verb attached to pos: on the
// same line (trailing comment) or the line directly above it.
func (l Lines) At(pos token.Pos, verb string) (Directive, bool) {
	line := l.fset.Position(pos).Line
	for _, d := range l.byLine[line] {
		if d.Verb == verb {
			return d, true
		}
	}
	for _, d := range l.byLine[line-1] {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// GuardRef is a parsed guard argument: either a sibling mutex field
// ("mu") or an external guard ("shard.mu") naming a struct type in the
// same package and its mutex field.
type GuardRef struct {
	Type  string // empty for sibling guards
	Field string
}

// ParseGuardRef parses a guardedby/locked argument. ok is false for an
// empty or malformed (more than one dot) argument.
func ParseGuardRef(arg string) (GuardRef, bool) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return GuardRef{}, false
	}
	parts := strings.Split(arg, ".")
	switch len(parts) {
	case 1:
		if parts[0] == "" {
			return GuardRef{}, false
		}
		return GuardRef{Field: parts[0]}, true
	case 2:
		if parts[0] == "" || parts[1] == "" {
			return GuardRef{}, false
		}
		return GuardRef{Type: parts[0], Field: parts[1]}, true
	}
	return GuardRef{}, false
}

// IsTestFile reports whether the file at pos is a _test.go file; the
// suite's invariants are about production code, so analyzers skip test
// files wholesale.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PkgScope is the comma-separated package-path scoping flag shared by
// the analyzers that only apply to specific layers (determinism,
// ctxflow). An empty scope matches every package; otherwise a package
// matches when its import path equals an entry or is under it.
type PkgScope string

// Match reports whether the package path is in scope.
func (s PkgScope) Match(path string) bool {
	if s == "" {
		return true
	}
	for _, p := range strings.Split(string(s), ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
