// Package ctxf is the tsexctxflow fixture: minted root contexts must be
// flagged unless the function is a declared ctxroot, and cancellable
// functions must poll their hook — in the body, and in every nested
// loop not excused by //tsexplain:nopoll.
package ctxf

import "context"

func handler(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() // want `mints a root context`
}

//tsexplain:ctxroot detached background job with its own timeout
func detached() context.Context {
	return context.Background()
}

//tsexplain:cancellable
func solve(n int, cancel func() error) int {
	total := 0
	for i := 0; i < n; i++ {
		if cancel() != nil {
			return total
		}
		for j := 0; j < n; j++ {
			total += j
		}
	}
	return total
}

//tsexplain:cancellable
func neverPolls(n int) int { // want `never polls a cancellation hook`
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

//tsexplain:cancellable
func unpolledNested(n int, cancel func() error) int {
	if cancel() != nil {
		return 0
	}
	total := 0
	for i := 0; i < n; i++ { // want `nested loop .* never polls`
		for j := 0; j < n; j++ {
			total += j
		}
	}
	return total
}

//tsexplain:cancellable
func boundedNested(n int, cancel func() error) int {
	if cancel() != nil {
		return 0
	}
	total := 0
	//tsexplain:nopoll inner bound is a constant 8
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ {
			total += j
		}
	}
	return total
}

//tsexplain:cancellable
func pollsViaDone(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		for j := 0; j < n; j++ {
			total += j
		}
	}
	return total
}
