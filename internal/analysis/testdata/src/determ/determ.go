// Package determ is the tsexdeterminism fixture: order-sensitive map
// loops and clock/rand reads must be flagged; commutative loops, keyed
// writes, annotated suppressions, and seeded sources must stay clean.
package determ

import (
	"math/rand"
	"sort"
	"time"
)

func appendOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order`
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sumValues is pure accumulation: order-insensitive, clean.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// countAndDelete mixes a delete sweep with counting: still commutative.
func countAndDelete(m map[string]int) int {
	n := 0
	for k, v := range m {
		if v == 0 {
			delete(m, k)
			continue
		}
		n++
	}
	return n
}

// copyByKey writes cells keyed by the (distinct) iteration key: clean.
func copyByKey(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// argmax is the classic tie-breaking flake: last writer wins on ties.
func argmax(m map[string]float64) string {
	bestK := ""
	best := 0.0
	for k, v := range m { // want `map iteration order`
		if v > best {
			best = v
			bestK = k
		}
	}
	return bestK
}

// annotated would be flagged (plain assignment) but carries a reasoned
// suppression.
func annotated(m map[string]int) int {
	max := 0
	//tsexplain:unordered max of ints is order-independent
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

func clock() time.Duration {
	start := time.Now()      // want `wall-clock read time.Now`
	return time.Since(start) // want `wall-clock read time.Since`
}

// statsClock reads the clock for a stat that never feeds output.
func statsClock() int64 {
	t := time.Now().UnixNano() //tsexplain:nondet stats only, never feeds output
	return t
}

func draw() int {
	return rand.Intn(10) // want `global math/rand`
}

// seeded draws from a locally seeded source: reproducible, clean.
func seeded(r *rand.Rand) int {
	return r.Intn(10)
}
