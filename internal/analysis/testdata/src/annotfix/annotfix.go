// Package annotfix is the tsexannotcheck fixture: typo'd verbs,
// unresolvable guards, reason-less suppressions, and misplaced
// directives must be flagged; well-formed annotations must stay clean.
package annotfix

import "sync"

type shard struct {
	mu sync.Mutex
	n  int //tsexplain:guardedby mu
	d  int //tsexplain:guardedby shard.mu
}

type orphan struct {
	a int //tsexplain:guardedby missing // want `no sibling field "missing"`
	b int //tsexplain:guardedby a // want `is not a sync.Mutex`
	c int //tsexplain:guardedby nosuch.mu // want `no struct type "nosuch"`
	d int //tsexplain:guardedby shard.zzz // want `has no sync.Mutex/RWMutex field "zzz"`
	//tsexplain:hotpath // want `belongs on a function declaration`
	e int
}

//tsexplain:locked mu
func (s *shard) incLocked() { s.n++ }

//tsexplain:locked shard.mu
func touch(s *shard) { s.d++ }

//tsexplain:locked shard.zzz // want `has no sync.Mutex/RWMutex field "zzz"`
func badLocked() {}

//tsexplain:hotpath extra words // want `takes no argument`
func badHotpath() {}

//tsexplain:ctxroot // want `needs a reason`
func badCtxRoot() {}

//tsexplain:guardedby mu // want `belongs on a struct field`
func badGuardPlacement() {}

//tsexplain:gaurdedby mu // want `unknown //tsexplain: directive`
func typoVerb() {}

func sweepNoReason(m map[string]int) {
	//tsexplain:unordered // want `must carry a reason`
	for k := range m {
		delete(m, k)
	}
}

func sweepReasoned(m map[string]int) int {
	n := 0
	//tsexplain:unordered counting only, order-free
	for range m {
		n++
	}
	return n
}

func floatingDirective() {
	//tsexplain:cancellable // want `not attached to a function declaration`
	_ = 0
}
