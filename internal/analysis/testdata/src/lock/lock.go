// Package lock is the tsexlockguard fixture: guarded-field accesses
// without the mutex, locked-function calls without the lock, and
// goroutine closures inheriting nothing must be flagged; proper
// Lock/Unlock pairing, deferred unlocks, early-return branches, and
// //tsexplain:locked entry states must stay clean.
package lock

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //tsexplain:guardedby mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) bad() {
	c.n++ // want `guardedby mu`
}

func (c *counter) deferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

//tsexplain:locked mu
func (c *counter) incLocked() {
	c.n++
}

func (c *counter) callsLocked() {
	c.incLocked() // want `requires //tsexplain:locked mu`
}

func (c *counter) callsLockedHeld() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incLocked()
}

func (c *counter) earlyReturn(cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return
	}
	c.n++ // clean: the branch that unlocked also returned
	c.mu.Unlock()
}

func (c *counter) branchLeak(cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
	}
	c.n++ // want `guardedby mu`
}

func (c *counter) goroutineLeak() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `guardedby mu`
	}()
}

func (c *counter) selectExhaustive(ch chan int, cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		select {
		case <-ch:
			return
		default:
			return
		}
	}
	c.n++ // clean: every select case returns, so the branch never falls through
	c.mu.Unlock()
}

// External guards: entry fields guarded by some pool's mutex.

type pool struct {
	mu sync.Mutex
}

type entry struct {
	dead bool //tsexplain:guardedby pool.mu
}

func mark(p *pool, e *entry) {
	p.mu.Lock()
	e.dead = true
	p.mu.Unlock()
	e.dead = false // want `guardedby pool.mu`
}

//tsexplain:locked pool.mu
func markLocked(e *entry) {
	e.dead = true
}
