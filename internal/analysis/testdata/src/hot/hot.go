// Package hot is the tsexhotpathalloc fixture: fmt calls, in-loop
// string concatenation/conversions, closures, interface boxing, and map
// allocations inside //tsexplain:hotpath functions must be flagged;
// plain arithmetic kernels, un-annotated functions, and reasoned
// //tsexplain:allowalloc lines must stay clean.
package hot

import "fmt"

type cell struct {
	sum float64
	cnt int64
}

// fill is the shape of the real group-by kernel: index arithmetic into
// preallocated arenas, nothing else. Clean.
//
//tsexplain:hotpath
func fill(dst []cell, idx []int32, vals []float64) {
	for i, v := range vals {
		c := &dst[idx[i]]
		c.sum += v
		c.cnt++
	}
}

//tsexplain:hotpath
func label(ids []int) string {
	out := ""
	for _, id := range ids {
		out += fmt.Sprintf("%d", id) // want `string concatenation` `fmt.Sprintf allocates`
	}
	return out
}

//tsexplain:hotpath
func keyString(b []byte) string {
	s := ""
	for len(b) > 4 {
		s = string(b[:4]) // want `string conversion inside a loop`
		b = b[4:]
	}
	return s
}

//tsexplain:hotpath
func closureCapture(vals []float64) float64 {
	total := 0.0
	add := func(v float64) { total += v } // want `function literal`
	for _, v := range vals {
		add(v)
	}
	return total
}

//tsexplain:hotpath
func boxes(v int) {
	sink(v) // want `interface parameter boxes`
}

func sink(x interface{}) { _ = x }

//tsexplain:hotpath
func table() map[string]int {
	return map[string]int{"a": 1} // want `map literal`
}

//tsexplain:hotpath
func coldInit() map[string]int {
	m := make(map[string]int) //tsexplain:allowalloc cold fallback, runs once per dataset
	return m
}

//tsexplain:hotpath
func mapLookup(m map[string]int, b []byte) int {
	total := 0
	for len(b) > 4 {
		total += m[string(b[:4])] // clean: compiler elides the lookup conversion
		b = b[4:]
	}
	return total
}

//tsexplain:hotpath
func pointerIface(p *cell) {
	sink(p) // clean: a pointer fits the interface data word, no boxing alloc
}

// notHot allocates freely: no annotation, no diagnostics.
func notHot(ids []int) string {
	out := ""
	for _, id := range ids {
		out += fmt.Sprint(id)
	}
	return out
}
