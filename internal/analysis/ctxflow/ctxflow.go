// Package ctxflow defines the tsexplain-vet analyzer that keeps
// cancellation threaded through the request path. The engine's deadline
// story depends on an unbroken chain — ctx → explain.Config.Cancel →
// segment.Options.Cancel — through every long-running loop; one
// context.Background() or one unpolled O(n²) sweep quietly turns a
// 30-second request timeout into advisory fiction.
//
// Two checks:
//
//   - context.Background()/context.TODO() may not be minted inside the
//     request-path packages (-tsexctxflow.pkgs); a function that
//     legitimately roots a new context (a detached background job, main)
//     declares so with //tsexplain:ctxroot <reason>;
//   - a function annotated //tsexplain:cancellable must poll its
//     cancellation hook: at least once somewhere in the body, and inside
//     every nested (quadratic-or-worse) loop. A bounded nested loop that
//     need not poll carries //tsexplain:nopoll <reason>.
//
// A poll is any call whose final name contains "cancel" (cancel(),
// opts.Cancel(), ccancel()) or a ctx.Done()/ctx.Err() read.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/annot"
)

// DefaultScope covers the layers between an HTTP request and the solver:
// everything there either handles a live request or builds an engine on
// behalf of one.
const DefaultScope = "repro/internal/server,repro/internal/core"

var Analyzer = &analysis.Analyzer{
	Name: "tsexctxflow",
	Doc: "check context/cancellation flow: no minted root contexts on the request path, " +
		"and //tsexplain:cancellable solvers really poll their cancel hook",
	Run: run,
}

var scope = DefaultScope

func init() {
	Analyzer.Flags.StringVar(&scope, "pkgs", DefaultScope,
		"comma-separated package paths where minting context.Background/TODO is flagged (empty = every package)")
}

func run(pass *analysis.Pass) (interface{}, error) {
	inScope := annot.PkgScope(scope).Match(pass.Pkg.Path())
	for _, f := range pass.Files {
		if annot.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		lines := annot.FileLines(pass.Fset, f)
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inScope {
				if _, root := annot.FuncDirective(fn, annot.CtxRoot); !root {
					checkNoRootCtx(pass, fn)
				}
			}
			if _, ok := annot.FuncDirective(fn, annot.Cancellable); ok {
				checkCancellable(pass, lines, fn)
			}
		}
	}
	return nil, nil
}

// checkNoRootCtx flags context.Background()/TODO() calls in fn.
func checkNoRootCtx(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			return true
		}
		if name := obj.Name(); name == "Background" || name == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s() mints a root context on the request path, detaching it from the caller's deadline; "+
					"thread the request ctx through, or annotate the function //tsexplain:ctxroot with a reason", name)
		}
		return true
	})
}

// checkCancellable enforces the polling obligations of one annotated
// function.
func checkCancellable(pass *analysis.Pass, lines annot.Lines, fn *ast.FuncDecl) {
	if !pollsCancel(fn.Body) {
		pass.Reportf(fn.Pos(),
			"%s is //tsexplain:cancellable but never polls a cancellation hook", fn.Name.Name)
		return
	}
	// Every nested loop (a loop containing another loop — the quadratic
	// sweeps a deadline exists to interrupt) must poll somewhere in its
	// own subtree.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Worker-goroutine bodies are their own loops; checked via
			// their own subtree when reached below.
			return true
		}
		body := loopBody(n)
		if body == nil {
			return true
		}
		if !containsLoop(body) {
			return true
		}
		if pollsCancel(body) {
			return true
		}
		if _, ok := lines.At(n.Pos(), annot.NoPoll); ok {
			return true
		}
		pass.Reportf(n.Pos(),
			"nested loop in //tsexplain:cancellable %s never polls the cancellation hook; "+
				"poll it in the loop or annotate //tsexplain:nopoll with the bound that makes it cheap", fn.Name.Name)
		return true
	})
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if loopBody(n) != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// pollsCancel reports whether the subtree contains a cancellation poll.
func pollsCancel(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.Contains(strings.ToLower(name), "cancel") || name == "Done" || name == "Err" {
			found = true
			return false
		}
		return true
	})
	return found
}
