package analysis_test

import (
	"testing"

	"repro/internal/analysis/annotcheck"
	"repro/internal/analysis/atest"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/lockguard"
)

// The scoped analyzers default to repro/internal/... package paths; the
// fixtures live under synthetic paths, so widen the scope for the test
// and restore it after.
func unscoped(t *testing.T, set func(string) error, def string) {
	t.Helper()
	if err := set(""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := set(def); err != nil {
			t.Error(err)
		}
	})
}

func TestDeterminism(t *testing.T) {
	unscoped(t, func(v string) error {
		return determinism.Analyzer.Flags.Set("pkgs", v)
	}, determinism.DefaultScope)
	atest.Run(t, determinism.Analyzer, "determ")
}

func TestLockguard(t *testing.T) {
	atest.Run(t, lockguard.Analyzer, "lock")
}

func TestCtxflow(t *testing.T) {
	unscoped(t, func(v string) error {
		return ctxflow.Analyzer.Flags.Set("pkgs", v)
	}, ctxflow.DefaultScope)
	atest.Run(t, ctxflow.Analyzer, "ctxf")
}

func TestHotpathAlloc(t *testing.T) {
	atest.Run(t, hotpathalloc.Analyzer, "hot")
}

func TestAnnotCheck(t *testing.T) {
	atest.Run(t, annotcheck.Analyzer, "annotfix")
}
