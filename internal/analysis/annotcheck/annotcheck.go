// Package annotcheck defines the tsexplain-vet analyzer that vets the
// //tsexplain: annotations themselves. The other analyzers are
// annotation-driven, so a typo'd verb ("guardedy"), a guard naming a
// nonexistent mutex, or a suppression without a reason silently disables
// the very check it was meant to configure. This analyzer makes the
// annotation layer fail closed:
//
//   - every //tsexplain: comment must use a known verb;
//   - guardedby must sit on a struct field and name a sync.Mutex/RWMutex
//     — a sibling field, or Type.field for a struct in the same package;
//   - locked must sit on a function and name a resolvable guard;
//   - hotpath/cancellable/ctxroot must sit on a function declaration;
//   - unordered/nondet/nopoll/allowalloc must carry a reason — they
//     suppress a diagnostic, and a suppression nobody can re-audit is a
//     suppression that outlives its justification.
package annotcheck

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "tsexannotcheck",
	Doc:  "validate //tsexplain: annotations: known verbs, resolvable guards, reasons on suppressions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Struct types by name, for resolving external Type.field guards.
	structs := collectStructs(pass)
	for _, f := range pass.Files {
		attached := make(map[posKey]bool)
		// Verbs with placement requirements, validated at their anchors.
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, dir := range annot.FuncDirectives(fn) {
				attached[posKey(dir.Pos)] = true
				switch dir.Verb {
				case annot.Hotpath, annot.Cancellable:
					if dir.Args != "" {
						pass.Reportf(dir.Pos, "//tsexplain:%s takes no argument", dir.Verb)
					}
				case annot.CtxRoot:
					if dir.Args == "" {
						pass.Reportf(dir.Pos, "//tsexplain:ctxroot needs a reason: why may this function mint a root context?")
					}
				case annot.Locked:
					checkGuardRef(pass, structs, dir, nil)
				case annot.GuardedBy:
					pass.Reportf(dir.Pos, "//tsexplain:guardedby belongs on a struct field, not a function")
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, dir := range annot.FieldDirectives(field) {
					attached[posKey(dir.Pos)] = true
					switch dir.Verb {
					case annot.GuardedBy:
						checkGuardRef(pass, structs, dir, st)
					case annot.Hotpath, annot.Cancellable, annot.Locked, annot.CtxRoot:
						pass.Reportf(dir.Pos, "//tsexplain:%s belongs on a function declaration, not a struct field", dir.Verb)
					}
				}
			}
			return true
		})
		// Every directive comment anywhere: known verb, and reasons on
		// the suppression verbs.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := annot.Parse(c)
				if !ok {
					continue
				}
				if !annot.Known(dir.Verb) {
					pass.Reportf(dir.Pos, "unknown //tsexplain: directive %q (known: guardedby, locked, hotpath, cancellable, ctxroot, unordered, nondet, nopoll, allowalloc)", dir.Verb)
					continue
				}
				switch dir.Verb {
				case annot.Unordered, annot.Nondet, annot.NoPoll, annot.AllowAlloc:
					if dir.Args == "" {
						pass.Reportf(dir.Pos, "//tsexplain:%s suppresses a diagnostic and must carry a reason", dir.Verb)
					}
				case annot.GuardedBy, annot.Locked, annot.Hotpath, annot.Cancellable, annot.CtxRoot:
					if !attached[posKey(dir.Pos)] {
						pass.Reportf(dir.Pos, "//tsexplain:%s is not attached to a %s; move it into the declaration's doc comment", dir.Verb, anchorFor(dir.Verb))
					}
				}
			}
		}
	}
	return nil, nil
}

// posKey keys attachment positions (a plain int to keep the map tidy).
type posKey int

func anchorFor(verb string) string {
	if verb == annot.GuardedBy {
		return "struct field"
	}
	return "function declaration"
}

// collectStructs maps each named struct type in the package to its
// struct type, for resolving Type.field guards.
func collectStructs(pass *analysis.Pass) map[string]*types.Struct {
	out := make(map[string]*types.Struct)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if s, ok := tn.Type().Underlying().(*types.Struct); ok {
			out[name] = s
		}
	}
	return out
}

// checkGuardRef validates a guardedby/locked argument. owner is the
// annotated field's struct for sibling guards; nil for locked (sibling
// locked guards resolve against the receiver at check time, so only the
// external form is resolvable here).
func checkGuardRef(pass *analysis.Pass, structs map[string]*types.Struct, dir annot.Directive, owner *ast.StructType) {
	ref, ok := annot.ParseGuardRef(dir.Args)
	if !ok {
		pass.Reportf(dir.Pos, "//tsexplain:%s needs a guard: a sibling mutex field name, or Type.field", dir.Verb)
		return
	}
	if ref.Type != "" {
		s, ok := structs[ref.Type]
		if !ok {
			pass.Reportf(dir.Pos, "//tsexplain:%s %s: no struct type %q in this package", dir.Verb, dir.Args, ref.Type)
			return
		}
		if !structHasMutex(s, ref.Field) {
			pass.Reportf(dir.Pos, "//tsexplain:%s %s: %s has no sync.Mutex/RWMutex field %q", dir.Verb, dir.Args, ref.Type, ref.Field)
		}
		return
	}
	if owner == nil {
		return // sibling locked guard: resolved against the receiver by lockguard
	}
	for _, f := range owner.Fields.List {
		for _, n := range f.Names {
			if n.Name == ref.Field {
				if !isMutexExpr(pass, f.Type) {
					pass.Reportf(dir.Pos, "//tsexplain:%s %s: sibling field %q is not a sync.Mutex/RWMutex", dir.Verb, dir.Args, ref.Field)
				}
				return
			}
		}
	}
	pass.Reportf(dir.Pos, "//tsexplain:%s %s: no sibling field %q in this struct", dir.Verb, dir.Args, ref.Field)
}

func structHasMutex(s *types.Struct, field string) bool {
	for i := 0; i < s.NumFields(); i++ {
		if s.Field(i).Name() == field {
			return isMutexType(s.Field(i).Type())
		}
	}
	return false
}

func isMutexExpr(pass *analysis.Pass, e ast.Expr) bool {
	return isMutexType(pass.TypesInfo.TypeOf(e))
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
