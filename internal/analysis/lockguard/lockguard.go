// Package lockguard defines the tsexplain-vet analyzer that turns the
// server's prose lock-discipline comments ("dead and charged are guarded
// by the shard mutex") into checked annotations:
//
//	//tsexplain:guardedby mu        on a struct field: access only while
//	                                holding the sibling mutex field mu
//	//tsexplain:guardedby shard.mu  on a struct field: access only while
//	                                holding the mu of some shard value
//	//tsexplain:locked mu           on a function: the caller holds the
//	                                receiver's mu on entry (…Locked helpers)
//	//tsexplain:locked shard.mu     on a function: the caller holds some
//	                                shard's mu on entry
//
// The checker is a source-order scan with branch awareness, not a full
// dominance analysis: Lock()/RLock() acquires, Unlock()/RUnlock()
// releases, deferred unlocks hold to function exit, and an early-return
// branch that unlocks does not leak its release into the fallthrough
// path. Function literals are separate scopes — a goroutine or deferred
// closure never inherits its creator's locks and must lock for itself.
// Calls to //tsexplain:locked functions are checked at every call site,
// so the annotation propagates the obligation instead of erasing it.
package lockguard

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/annot"
)

var Analyzer = &analysis.Analyzer{
	Name: "tsexlockguard",
	Doc:  "check //tsexplain:guardedby field annotations against the locks actually held",
	Run:  run,
}

// held is one lock the scanner believes is held: the lock call's
// receiver rendered as source ("sh" for sh.mu.Lock()), its named type,
// and the mutex field name. Entries seeded from //tsexplain:locked T.mu
// have an empty baseStr and match on type alone.
type held struct {
	baseStr string
	typName string
	field   string
}

type state map[held]bool

func (st state) clone() state {
	c := make(state, len(st))
	for h := range st {
		c[h] = true
	}
	return c
}

// intersect drops entries not present in both (used after a branch that
// may or may not have run).
func (st state) intersect(other state) {
	for h := range st {
		if !other[h] {
			delete(st, h)
		}
	}
}

type checker struct {
	pass    *analysis.Pass
	guards  map[*types.Var]annot.GuardRef // annotated field -> its guard
	lockedD map[*types.Func][]annot.GuardRef
	queue   []*ast.FuncLit // nested scopes to scan with a fresh state
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:    pass,
		guards:  make(map[*types.Var]annot.GuardRef),
		lockedD: make(map[*types.Func][]annot.GuardRef),
	}
	// Pass 1: collect annotated fields and locked functions.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if s, ok := n.(*ast.StructType); ok {
				c.collectFields(s)
			}
			return true
		})
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			for _, dir := range annot.FuncDirectives(fn) {
				if dir.Verb != annot.Locked {
					continue
				}
				if ref, ok := annot.ParseGuardRef(dir.Args); ok {
					c.lockedD[obj] = append(c.lockedD[obj], ref)
				}
			}
		}
	}
	if len(c.guards) == 0 && len(c.lockedD) == 0 {
		return nil, nil
	}
	// Pass 2: scan every function body.
	for _, f := range pass.Files {
		if annot.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			st := c.entryState(fn)
			c.scanStmts(fn.Body.List, st)
			c.drainQueue()
		}
	}
	return nil, nil
}

// collectFields records every //tsexplain:guardedby field.
func (c *checker) collectFields(s *ast.StructType) {
	for _, f := range s.Fields.List {
		var ref annot.GuardRef
		found := false
		for _, d := range annot.FieldDirectives(f) {
			if d.Verb == annot.GuardedBy {
				ref, found = annot.ParseGuardRef(d.Args)
				break
			}
		}
		if !found {
			continue
		}
		for _, name := range f.Names {
			if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
				c.guards[v] = ref
			}
		}
	}
}

// entryState seeds the held set from the function's locked annotations.
func (c *checker) entryState(fn *ast.FuncDecl) state {
	st := make(state)
	obj, _ := c.pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if obj == nil {
		return st
	}
	recvName, recvType := "", ""
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if names := fn.Recv.List[0].Names; len(names) == 1 {
			recvName = names[0].Name
		}
		if v, ok := c.pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]].(*types.Var); ok {
			recvType = namedName(v.Type())
		}
	}
	for _, ref := range c.lockedD[obj] {
		if ref.Type != "" {
			st[held{typName: ref.Type, field: ref.Field}] = true
		} else if recvName != "" {
			st[held{baseStr: recvName, typName: recvType, field: ref.Field}] = true
		}
	}
	return st
}

func (c *checker) drainQueue() {
	for len(c.queue) > 0 {
		lit := c.queue[0]
		c.queue = c.queue[1:]
		// Closures never inherit the creator's locks: a goroutine or a
		// deferred cleanup runs when those locks may be long released.
		c.scanStmts(lit.Body.List, make(state))
	}
}

// scanStmts walks a statement list in source order, checking guarded
// accesses against st and applying lock/unlock effects. It reports
// whether control cannot flow past the list.
func (c *checker) scanStmts(stmts []ast.Stmt, st state) bool {
	for _, s := range stmts {
		if c.scanStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) scanStmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		c.checkExpr(s.X, st)
		if isPanic(s.X) {
			return true
		}
		c.applyLockEffect(s.X, st)
		return false
	case *ast.DeferStmt:
		// A deferred unlock holds the lock to function exit (no release
		// seen); a deferred closure is a fresh scope; argument
		// expressions evaluate now and are checked now.
		if _, _, op := lockEffect(c.pass, s.Call); op != 0 {
			return false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.queue = append(c.queue, lit)
		}
		for _, a := range s.Call.Args {
			c.checkExpr(a, st)
		}
		return false
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.queue = append(c.queue, lit)
		}
		for _, a := range s.Call.Args {
			c.checkExpr(a, st)
		}
		return false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, st)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, st)
		}
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IncDecStmt:
		c.checkExpr(s.X, st)
		return false
	case *ast.SendStmt:
		c.checkExpr(s.Chan, st)
		c.checkExpr(s.Value, st)
		return false
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.checkExpr(e, st)
				return false
			}
			return true
		})
		return false
	case *ast.LabeledStmt:
		return c.scanStmt(s.Stmt, st)
	case *ast.BlockStmt:
		return c.scanStmts(s.List, st)
	case *ast.IfStmt:
		c.scanStmt(s.Init, st)
		c.checkExpr(s.Cond, st)
		bodySt := st.clone()
		bodyTerm := c.scanStmts(s.Body.List, bodySt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.scanStmt(s.Else, elseSt)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			// Only the else path continues: adopt its state.
			replace(st, elseSt)
		case elseTerm:
			replace(st, bodySt)
		default:
			// Either path may have run: only locks held on both survive.
			bodySt.intersect(elseSt)
			replace(st, bodySt)
		}
		return false
	case *ast.ForStmt:
		c.scanStmt(s.Init, st)
		if s.Cond != nil {
			c.checkExpr(s.Cond, st)
		}
		bodySt := st.clone()
		c.scanStmts(s.Body.List, bodySt)
		c.scanStmt(s.Post, bodySt)
		// The loop may run zero times; keep only locks held either way.
		st.intersect(bodySt)
		return false
	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		bodySt := st.clone()
		c.scanStmts(s.Body.List, bodySt)
		st.intersect(bodySt)
		return false
	case *ast.SwitchStmt:
		c.scanStmt(s.Init, st)
		if s.Tag != nil {
			c.checkExpr(s.Tag, st)
		}
		allTerm, hasDefault := c.scanCases(s.Body, st)
		// Only an exhaustive switch with every case terminating stops
		// control flow; without a default the zero-match path falls out.
		return allTerm && hasDefault
	case *ast.TypeSwitchStmt:
		c.scanStmt(s.Init, st)
		allTerm, hasDefault := c.scanCases(s.Body, st)
		return allTerm && hasDefault
	case *ast.SelectStmt:
		// A blocking select always takes some case: if every case
		// terminates, control never flows past it.
		allTerm, _ := c.scanCases(s.Body, st)
		return allTerm && len(s.Body.List) > 0
	}
	return false
}

// scanCases runs each case body on a private clone; the conservative
// post-state keeps only what every non-terminating branch preserves. It
// reports whether every case terminated and whether a default exists.
func (c *checker) scanCases(body *ast.BlockStmt, st state) (allTerm, hasDefault bool) {
	merged := (state)(nil)
	allTerm = true
	for _, cc := range body.List {
		caseSt := st.clone()
		var list []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				c.checkExpr(e, caseSt)
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			c.scanStmt(cc.Comm, caseSt)
			list = cc.Body
		}
		if term := c.scanStmts(list, caseSt); term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = caseSt
		} else {
			merged.intersect(caseSt)
		}
	}
	if merged != nil {
		replace(st, merged)
	}
	return allTerm, hasDefault
}

func replace(dst, src state) {
	for h := range dst {
		delete(dst, h)
	}
	for h := range src {
		dst[h] = true
	}
}

// checkExpr verifies every guarded-field access and locked-function call
// in the expression. Function literals are not entered here; they are
// queued as independent scopes.
func (c *checker) checkExpr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.queue = append(c.queue, n)
			return false
		case *ast.SelectorExpr:
			c.checkAccess(n, st)
		case *ast.CallExpr:
			c.checkLockedCall(n, st)
		}
		return true
	})
}

// checkAccess flags a guarded field touched without its mutex.
func (c *checker) checkAccess(se *ast.SelectorExpr, st state) {
	sel := c.pass.TypesInfo.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok {
		return
	}
	ref, ok := c.guards[v]
	if !ok {
		return
	}
	if c.satisfied(ref, se.X, st) {
		return
	}
	c.pass.Reportf(se.Sel.Pos(),
		"%s is //tsexplain:guardedby %s, which is not held here; lock it or annotate the function //tsexplain:locked %s",
		v.Name(), guardString(ref), guardString(ref))
}

// checkLockedCall flags a call to a //tsexplain:locked function made
// without the lock its callees assume.
func (c *checker) checkLockedCall(call *ast.CallExpr, st state) {
	var id *ast.Ident
	var recv ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id, recv = fun.Sel, fun.X
	default:
		return
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil {
		return
	}
	// Methods on generic types resolve to per-instantiation objects;
	// lockedD is keyed by the declared (origin) method.
	fn = fn.Origin()
	for _, ref := range c.lockedD[fn] {
		target := recv
		if ref.Type != "" {
			target = nil
		}
		if target == nil && ref.Type == "" {
			continue // sibling annotation on a non-method: nothing to check
		}
		if !c.satisfied(ref, target, st) {
			c.pass.Reportf(call.Pos(),
				"call to %s requires //tsexplain:locked %s to be held", fn.Name(), guardString(ref))
		}
	}
}

// satisfied reports whether the guard is held for an access whose base
// expression is base (nil for type-only external guards).
func (c *checker) satisfied(ref annot.GuardRef, base ast.Expr, st state) bool {
	if ref.Type != "" {
		for h := range st {
			if h.field == ref.Field && h.typName == ref.Type {
				return true
			}
		}
		return false
	}
	baseStr := types.ExprString(base)
	baseType := namedName(c.pass.TypesInfo.TypeOf(base))
	for h := range st {
		if h.field != ref.Field {
			continue
		}
		if h.baseStr == baseStr {
			return true
		}
		// A //tsexplain:locked T.mu entry covers sibling guards on any T.
		if h.baseStr == "" && h.typName != "" && h.typName == baseType {
			return true
		}
	}
	return false
}

// applyLockEffect updates the held set for x.mu.Lock()-shaped calls.
func (c *checker) applyLockEffect(e ast.Expr, st state) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	base, field, op := lockEffect(c.pass, call)
	if op == 0 {
		return
	}
	h := held{
		baseStr: types.ExprString(base),
		typName: namedName(c.pass.TypesInfo.TypeOf(base)),
		field:   field,
	}
	if op > 0 {
		st[h] = true
	} else {
		delete(st, h)
	}
}

// lockEffect recognizes x.mu.Lock/RLock (+1) and Unlock/RUnlock (-1)
// where mu is a sync.Mutex or sync.RWMutex field; op 0 means "not a
// lock operation".
func lockEffect(pass *analysis.Pass, call *ast.CallExpr) (base ast.Expr, field string, op int) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", 0
	}
	switch fun.Sel.Name {
	case "Lock", "RLock":
		op = 1
	case "Unlock", "RUnlock":
		op = -1
	default:
		return nil, "", 0
	}
	if !isMutex(pass.TypesInfo.TypeOf(fun.X)) {
		return nil, "", 0
	}
	mu, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !ok {
		return nil, "", 0 // bare mutex variable; nothing to bind a guard to
	}
	return mu.X, mu.Sel.Name, op
}

func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// namedName returns the named type's name behind pointers, or "".
func namedName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func guardString(ref annot.GuardRef) string {
	if ref.Type != "" {
		return ref.Type + "." + ref.Field
	}
	return ref.Field
}
