package cascading

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSelectTop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		gamma := make([]float64, n)
		for i := range gamma {
			gamma[i] = float64(rng.Intn(20)) // ties on purpose
		}
		ids := rng.Perm(n)
		k := 1 + rng.Intn(n)
		selectTop(ids, gamma, k)

		// The k-th largest value overall.
		sorted := append([]float64(nil), gamma...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		kth := sorted[k-1]

		// Every entry in the prefix must be ≥ kth, every entry after ≤ kth.
		for i := 0; i < k; i++ {
			if gamma[ids[i]] < kth {
				t.Fatalf("trial %d: prefix[%d] = %g below k-th value %g", trial, i, gamma[ids[i]], kth)
			}
		}
		for i := k; i < n; i++ {
			if gamma[ids[i]] > kth {
				t.Fatalf("trial %d: suffix[%d] = %g above k-th value %g", trial, i, gamma[ids[i]], kth)
			}
		}
		// Still a permutation.
		seen := make([]bool, n)
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("trial %d: duplicate id %d", trial, id)
			}
			seen[id] = true
		}
	}
}

func TestSelectTopEdgeCases(t *testing.T) {
	// k = len and k = 0 must not panic or reorder invalidly.
	gamma := []float64{3, 1, 2}
	ids := []int{0, 1, 2}
	selectTop(ids, gamma, 3)
	selectTop(ids, gamma, 0)
	selectTop([]int{}, nil, 0)
	selectTop([]int{0}, []float64{5}, 1)
}
