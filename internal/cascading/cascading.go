// Package cascading implements the Cascading Analysts algorithm (Ruhl,
// Sundararajan, Yan; SIGMOD 2018) that TSExplain uses to derive the top-m
// non-overlapping explanations E*_m for a segment (Definition 3.5 and
// Section 5.2 module b).
//
// The algorithm mirrors how an analyst drills down: starting from the
// whole relation, pick a dimension, split into that dimension's values,
// and within each value either report the slice as an explanation or
// drill further. A dynamic program over (node, quota) chooses the
// drill-down dimensions and distributes the m quota so the total
// difference score Σ γ(E) is maximized; non-overlap is guaranteed because
// sibling slices are disjoint and a reported slice is never refined
// further.
package cascading

import (
	"sort"

	"repro/internal/explain"
)

// Picked is one explanation in a result, with its difference score and
// change effect over the scored segment.
type Picked struct {
	// ID is the candidate ID within the Universe.
	ID int
	// Gamma is the difference score γ(E) over the segment.
	Gamma float64
	// Effect is the change effect τ(E) over the segment.
	Effect explain.Effect
}

// Result is the output of the algorithm for one segment.
type Result struct {
	// Explanations holds the selected non-overlapping explanations,
	// ranked by descending γ (the ranked list E*_m used by NDCG).
	Explanations []Picked
	// Best[q] is the maximal total difference score achievable with at
	// most q non-overlapping explanations, for q = 0..m. Best[m] is the
	// score of Explanations; the smaller entries are the DP side products
	// the guess-and-verify condition (Eq. 12) needs.
	Best []float64
}

// TotalGamma returns Σ γ(E) over the selected explanations.
func (r Result) TotalGamma() float64 {
	var s float64
	for _, p := range r.Explanations {
		s += p.Gamma
	}
	return s
}

// Solver runs the Cascading Analysts DP against one Universe and metric.
// A Solver reuses internal scratch buffers across Solve calls, so it is
// cheap per call but not safe for concurrent use.
type Solver struct {
	u      *explain.Universe
	metric explain.Metric
	m      int
	dims   []int // explain-by dims, fetched once (ExplainBy copies)

	// Reusable per-solve scratch: score buffers and a generation-tagged
	// memo that avoids reallocating or clearing ε-sized arrays on every
	// segment.
	gammaBuf  []float64
	effectBuf []explain.Effect
	memoBuf   [][]float64
	memoGen   []uint32
	curGen    uint32
	reachBuf  []bool
	marked    []int32
	zeroVec   []float64

	// Allocation-free hot path: memo DP vectors are carved out of one
	// arena per solve instead of one make per node; the knapsack scratch
	// of best() and the parent-pointer tables of extract() live in small
	// per-recursion-depth stacks (drill-down depth is bounded by β̄).
	vecArena []float64
	arenaOff int
	dpStack  [][]float64
	exDP     [][]float64
	exTake   [][]int

	// GuessVerify scratch, reused across rounds and calls.
	chiBuf     []int
	allowedBuf []bool
}

// NewSolver returns a Solver that selects up to m non-overlapping
// explanations under the given metric.
func NewSolver(u *explain.Universe, metric explain.Metric, m int) *Solver {
	if m < 1 {
		m = 1
	}
	return &Solver{u: u, metric: metric, m: m, dims: u.ExplainBy()}
}

// Metric returns the difference metric the solver scores with.
func (s *Solver) Metric() explain.Metric { return s.metric }

// M returns the explanation quota m.
func (s *Solver) M() int { return s.m }

// segmentScores holds per-candidate γ and τ for one segment, computed once
// per Solve (O(ε) thanks to the precompute module). The slices alias the
// Solver's scratch buffers and are only valid until the next Solve.
type segmentScores struct {
	gamma  []float64
	effect []explain.Effect
}

// scoreSegment fills the score buffers for segment [c, t]. When base is
// non-nil only the selectable candidates are scored — the DP never reads
// γ of a candidate it cannot select, so skipping the rest keeps the
// per-segment cost at O(filtered ε).
//
//tsexplain:hotpath
func (s *Solver) scoreSegment(c, t int, base []bool) segmentScores {
	n := s.u.NumCandidates()
	if cap(s.gammaBuf) < n {
		s.gammaBuf = make([]float64, n)
		s.effectBuf = make([]explain.Effect, n)
	}
	sc := segmentScores{gamma: s.gammaBuf[:n], effect: s.effectBuf[:n]}
	for id := 0; id < n; id++ {
		if base != nil && !base[id] {
			sc.gamma[id], sc.effect[id] = 0, 0
			continue
		}
		sc.gamma[id], sc.effect[id] = s.u.Gamma(id, c, t, s.metric)
	}
	return sc
}

// scoreSegmentIDs fills the score buffers for segment [c, t] scoring ONLY
// the listed candidate ids — the budgeted approximate mode, where the
// selectable set is a pruned top-M and per-segment cost must scale with M
// rather than ε. Entries outside ids may hold stale values from earlier
// solves; that is safe because the DP and extraction only ever read the
// score of a selectable candidate, and the caller restricts selection to
// exactly ids.
//
//tsexplain:hotpath
func (s *Solver) scoreSegmentIDs(c, t int, ids []int) segmentScores {
	n := s.u.NumCandidates()
	if cap(s.gammaBuf) < n {
		s.gammaBuf = make([]float64, n)
		s.effectBuf = make([]explain.Effect, n)
	}
	sc := segmentScores{gamma: s.gammaBuf[:n], effect: s.effectBuf[:n]}
	for _, id := range ids {
		sc.gamma[id], sc.effect[id] = s.u.Gamma(id, c, t, s.metric)
	}
	return sc
}

// SolveRestricted is Solve with the selectable set given in both forms:
// allowed is the membership bitmap the DP tests in O(1), ids the same set
// as a list so scoring touches M candidates instead of all ε. allowed[id]
// must be true exactly for the entries of ids.
func (s *Solver) SolveRestricted(c, t int, allowed []bool, ids []int) Result {
	return s.solveScoredIDs(s.scoreSegmentIDs(c, t, ids), allowed, ids)
}

// solveState carries the memoized DP for one segment solve. The memo is
// indexed by node ID + 1 (0 is the root) so the hot path never builds
// string keys.
type solveState struct {
	s       *Solver
	scores  segmentScores
	allowed []bool // nil means every candidate is selectable
	// reach marks nodes (index id+1) whose subtree contains a selectable
	// candidate; nil disables pruning.
	reach []bool
}

// memoGet returns the cached DP vector for nodeID, or nil.
func (st *solveState) memoGet(nodeID int) []float64 {
	s := st.s
	if s.memoGen[nodeID+1] == s.curGen {
		return s.memoBuf[nodeID+1]
	}
	return nil
}

// memoPut stores the DP vector for nodeID under the current generation.
func (st *solveState) memoPut(nodeID int, v []float64) {
	s := st.s
	s.memoBuf[nodeID+1] = v
	s.memoGen[nodeID+1] = s.curGen
}

// Solve returns the top-m non-overlapping explanations for the segment
// with control endpoint c and test endpoint t (positions into the
// aggregated series). allowed optionally restricts which candidates may be
// *selected* (drill-down may still pass through disallowed nodes); nil
// allows every candidate.
func (s *Solver) Solve(c, t int, allowed []bool) Result {
	return s.solveScored(s.scoreSegment(c, t, allowed), allowed)
}

// dpAt returns the zeroed knapsack scratch vector for the given recursion
// depth. Depth is bounded by the drill-down depth (β̄ + 1), so the stack
// stays tiny and no per-node allocation happens.
func (s *Solver) dpAt(depth int) []float64 {
	for len(s.dpStack) <= depth {
		s.dpStack = append(s.dpStack, make([]float64, s.m+1))
	}
	dp := s.dpStack[depth]
	for i := range dp {
		dp[i] = 0
	}
	return dp
}

// exBufs returns extract()'s parent-pointer tables for the given recursion
// depth, as flat (rows × (m+1)) arrays grown on demand and reused across
// solves.
func (s *Solver) exBufs(depth, rows int) ([]float64, []int) {
	for len(s.exDP) <= depth {
		s.exDP = append(s.exDP, nil)
		s.exTake = append(s.exTake, nil)
	}
	need := rows * (s.m + 1)
	if cap(s.exDP[depth]) < need {
		s.exDP[depth] = make([]float64, need)
		s.exTake[depth] = make([]int, need)
	}
	return s.exDP[depth][:need], s.exTake[depth][:need]
}

// carveVec takes the next (m+1)-sized zeroed vector from the per-solve
// arena. Each node is memoized at most once per generation, so the arena
// sized at (ε+1)×(m+1) never overflows.
func (st *solveState) carveVec() []float64 {
	s := st.s
	out := s.vecArena[s.arenaOff : s.arenaOff+s.m+1 : s.arenaOff+s.m+1]
	s.arenaOff += s.m + 1
	for i := range out {
		out[i] = 0
	}
	return out
}

//tsexplain:hotpath
func (s *Solver) solveScored(scores segmentScores, allowed []bool) Result {
	return s.solveScoredIDs(scores, allowed, nil)
}

// solveScoredIDs is solveScored with the allowed set optionally given as
// an id list too: reachability marking then walks just the list instead
// of scanning all ε candidates, which is what keeps a solve restricted to
// M candidates at O(M)-ish cost overall. ids must enumerate exactly the
// true entries of allowed (nil falls back to the scan).
//
//tsexplain:hotpath
func (s *Solver) solveScoredIDs(scores segmentScores, allowed []bool, ids []int) Result {
	n := s.u.NumCandidates() + 1
	if cap(s.memoBuf) < n {
		s.memoBuf = make([][]float64, n)
		s.memoGen = make([]uint32, n)
	}
	if need := n * (s.m + 1); cap(s.vecArena) < need {
		s.vecArena = make([]float64, need)
	}
	s.arenaOff = 0
	s.curGen++
	st := &solveState{
		s:       s,
		scores:  scores,
		allowed: allowed,
	}
	// Reachability pruning: when selection is restricted, only subtrees
	// containing a selectable candidate can contribute, so mark every
	// allowed candidate and its ancestors and let best() return zero for
	// everything else without descending.
	if allowed != nil {
		if cap(s.reachBuf) < n {
			s.reachBuf = make([]bool, n)
		}
		reach := s.reachBuf[:n]
		for _, id := range s.marked {
			reach[int(id)+1] = false
		}
		s.marked = s.marked[:0]
		//tsexplain:allowalloc one prologue closure per solve; non-escaping, stack-allocated
		mark := func(id int) {
			for _, anc := range s.u.AncestorsOf(id) {
				if !reach[anc+1] {
					reach[anc+1] = true
					s.marked = append(s.marked, int32(anc))
				}
			}
		}
		if ids != nil {
			for _, id := range ids {
				mark(id)
			}
		} else {
			for id := 0; id < n-1; id++ {
				if allowed[id] {
					mark(id)
				}
			}
		}
		st.reach = reach
	}
	if s.zeroVec == nil || len(s.zeroVec) != s.m+1 {
		s.zeroVec = make([]float64, s.m+1)
	}
	// Result.Best escapes the solve (callers cache Results), so copy it
	// out of the reusable arena.
	best := append([]float64(nil), st.best(-1, 0)...)
	picked := make([]int, 0, s.m)
	st.extract(-1, s.m, 0, &picked)
	res := Result{Best: best}
	for _, id := range picked {
		res.Explanations = append(res.Explanations, Picked{
			ID:     id,
			Gamma:  scores.gamma[id],
			Effect: scores.effect[id],
		})
	}
	//tsexplain:allowalloc result assembly; Result escapes the solve by design
	sort.SliceStable(res.Explanations, func(i, j int) bool {
		return res.Explanations[i].Gamma > res.Explanations[j].Gamma
	})
	return res
}

// selectable reports whether candidate id may be reported as an
// explanation.
func (st *solveState) selectable(id int) bool {
	return st.allowed == nil || st.allowed[id]
}

// best computes the DP vector for the subtree rooted at the given node:
// best[q] = max total γ selecting at most q non-overlapping explanations
// within the node's slice. nodeID is the candidate ID, or -1 for the root;
// depth is the drill-down recursion depth, which indexes the reusable
// knapsack scratch.
//
//tsexplain:hotpath
func (st *solveState) best(nodeID, depth int) []float64 {
	if st.reach != nil && nodeID >= 0 && !st.reach[nodeID+1] {
		return st.s.zeroVec
	}
	if v := st.memoGet(nodeID); v != nil {
		return v
	}
	m := st.s.m
	out := st.carveVec()

	// Option 1: drill down on any dimension the node leaves free and
	// distribute quota among that dimension's children by a small
	// knapsack. Child lists are pre-sorted by the universe, keeping
	// extraction deterministic.
	for _, dim := range st.s.dims {
		if nodeID >= 0 && st.s.u.Candidate(nodeID).Conj.HasDim(dim) {
			continue
		}
		kids := st.s.u.ChildrenOf(nodeID, dim)
		if len(kids) == 0 {
			continue
		}
		dp := st.s.dpAt(depth)
		for _, kid := range kids {
			// An unreachable subtree contributes a zero vector, which can
			// never raise the (monotone) knapsack row: skip it entirely
			// instead of running the quota loop against zeros. Under a
			// tight restriction (guess rounds, the approximate top-M) this
			// skips almost every child.
			if st.reach != nil && !st.reach[kid+1] {
				continue
			}
			kb := st.best(int(kid), depth+1)
			for q := m; q >= 1; q-- {
				for take := 1; take <= q; take++ {
					if v := dp[q-take] + kb[take]; v > dp[q] {
						dp[q] = v
					}
				}
			}
		}
		for q := 1; q <= m; q++ {
			if dp[q] > out[q] {
				out[q] = dp[q]
			}
		}
	}

	// Option 2: report this node itself (uses one quota, forecloses the
	// whole subtree since every descendant overlaps the node).
	if nodeID >= 0 && st.selectable(nodeID) {
		g := st.scores.gamma[nodeID]
		for q := 1; q <= m; q++ {
			if g > out[q] {
				out[q] = g
			}
		}
	}

	// Enforce monotonicity in q (at-most semantics).
	for q := 1; q <= m; q++ {
		if out[q] < out[q-1] {
			out[q] = out[q-1]
		}
	}
	st.memoPut(nodeID, out)
	return out
}

// extract re-walks the DP decisions to recover which explanations achieve
// best[q] at the given node, appending candidate IDs to picked. depth
// indexes the reusable parent-pointer tables, which stay live across the
// recursive calls below (the recursion only ever uses deeper buffers).
//
//tsexplain:hotpath
func (st *solveState) extract(nodeID, q, depth int, picked *[]int) {
	if q <= 0 {
		return
	}
	target := st.memoGet(nodeID)[q]
	if target == 0 {
		return
	}

	// Does reporting the node itself achieve the target?
	if nodeID >= 0 && st.selectable(nodeID) && st.scores.gamma[nodeID] >= target {
		*picked = append(*picked, nodeID)
		return
	}

	// Otherwise some drill-down does. Find the dimension and re-run its
	// knapsack with parent pointers to recover the quota split.
	for _, dim := range st.s.dims {
		if nodeID >= 0 && st.s.u.Candidate(nodeID).Conj.HasDim(dim) {
			continue
		}
		kids := st.s.u.ChildrenOf(nodeID, dim)
		if len(kids) == 0 {
			continue
		}
		m := st.s.m
		w := m + 1
		// dp[k*w+j]: best total over the first k children using quota j.
		dp, take := st.s.exBufs(depth, len(kids)+1)
		for j := 0; j <= m; j++ {
			dp[j] = 0
		}
		for k, kid := range kids {
			kb := st.best(int(kid), depth+1)
			prev, cur := dp[k*w:(k+1)*w], dp[(k+1)*w:(k+2)*w]
			curTake := take[(k+1)*w : (k+2)*w]
			for j := 0; j <= m; j++ {
				cur[j] = prev[j]
				curTake[j] = 0
				for x := 1; x <= j; x++ {
					if v := prev[j-x] + kb[x]; v > cur[j] {
						cur[j] = v
						curTake[j] = x
					}
				}
			}
		}
		if dp[len(kids)*w+q] >= target {
			j := q
			for k := len(kids); k >= 1; k-- {
				x := take[k*w+j]
				if x > 0 {
					st.extract(int(kids[k-1]), x, depth+1, picked)
					j -= x
				}
			}
			return
		}
	}
	// target > 0 but no branch reproduces it: impossible by construction.
	panic("cascading: extraction failed to reproduce DP value")
}
