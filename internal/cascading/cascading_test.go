package cascading

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/explain"
	"repro/internal/relation"
)

// buildTwoDim builds a relation over two days where slices change by known
// amounts so optimal top-m sets can be computed by hand:
//
//	state=NY: +100  (east)
//	state=CA: +60   (west)   CA&cat=a: +50, CA&cat=b: +10
//	state=WA: +5    (west)
func buildTwoDim(t *testing.T) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("x", "d", []string{"state", "cat"}, []string{"m"})
	add := func(day, state, cat string, v float64) {
		if err := b.Append(day, []string{state, cat}, []float64{v}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	add("1", "NY", "a", 10)
	add("1", "CA", "a", 5)
	add("1", "CA", "b", 5)
	add("1", "WA", "a", 5)
	add("2", "NY", "a", 110)
	add("2", "CA", "a", 55)
	add("2", "CA", "b", 15)
	add("2", "WA", "a", 10)
	r, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return r
}

func universeFor(t *testing.T, r *relation.Relation) *explain.Universe {
	t.Helper()
	u, err := explain.NewUniverse(r, explain.Config{Measure: "m", Agg: relation.Sum})
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	return u
}

func names(u *explain.Universe, res Result) []string {
	out := make([]string, len(res.Explanations))
	for i, p := range res.Explanations {
		out[i] = u.Describe(p.ID)
	}
	return out
}

func TestTop1PicksLargestSlice(t *testing.T) {
	r := buildTwoDim(t)
	u := universeFor(t, r)
	res := NewSolver(u, explain.AbsoluteChange, 1).Solve(0, 1, nil)
	if len(res.Explanations) != 1 {
		t.Fatalf("got %d explanations, want 1", len(res.Explanations))
	}
	// cat=a aggregates the a-slices of every state: +155, the single
	// largest mover across both explain-by attributes.
	if got := u.Describe(res.Explanations[0].ID); got != "cat=a" {
		t.Errorf("top-1 = %q, want cat=a", got)
	}
	if res.Explanations[0].Gamma != 155 {
		t.Errorf("γ = %g, want 155", res.Explanations[0].Gamma)
	}
	if res.Explanations[0].Effect != explain.Increase {
		t.Errorf("effect = %v, want +", res.Explanations[0].Effect)
	}
}

func TestTop3IsOptimalAndNonOverlapping(t *testing.T) {
	r := buildTwoDim(t)
	u := universeFor(t, r)
	res := NewSolver(u, explain.AbsoluteChange, 3).Solve(0, 1, nil)
	// Optimal: NY(100) + CA&a(50) + CA&b(10) = 160 beats NY+CA+WA = 165?
	// NY+CA+WA = 100+60+5 = 165 > 160, so the optimum keeps CA whole.
	got := names(u, res)
	want := []string{"state=NY", "state=CA", "state=WA"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("top-3 = %v, want %v", got, want)
	}
	if res.Best[3] != 165 {
		t.Errorf("Best[3] = %g, want 165", res.Best[3])
	}
	assertNonOverlapping(t, u, res)
}

func TestDrillDownBeatsWholeSliceWhenSplitHelps(t *testing.T) {
	// Every order-1 slice nets out to +10, but inside each state the two
	// categories move by ±80/∓70: the DP must drill to order-2 pairs.
	b := relation.NewBuilder("x", "d", []string{"state", "cat"}, []string{"m"})
	add := func(day, state, cat string, v float64) { _ = b.Append(day, []string{state, cat}, []float64{v}) }
	add("1", "CA", "a", 100)
	add("1", "CA", "b", 100)
	add("1", "NY", "a", 100)
	add("1", "NY", "b", 100)
	add("2", "CA", "a", 180) // +80
	add("2", "CA", "b", 30)  // -70, so CA net +10
	add("2", "NY", "a", 30)  // -70
	add("2", "NY", "b", 180) // +80, so NY net +10; cats also net +10 each
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u := universeFor(t, r)
	res := NewSolver(u, explain.AbsoluteChange, 2).Solve(0, 1, nil)
	got := names(u, res)
	sort.Strings(got)
	want := []string{"state=CA & cat=a", "state=NY & cat=b"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("top-2 = %v, want %v", got, want)
	}
	if res.Best[2] != 160 {
		t.Errorf("Best[2] = %g, want 160", res.Best[2])
	}
	// Both picks are increases.
	if res.Explanations[0].Effect != explain.Increase || res.Explanations[1].Effect != explain.Increase {
		t.Errorf("effects = %v,%v, want +,+",
			res.Explanations[0].Effect, res.Explanations[1].Effect)
	}
	assertNonOverlapping(t, u, res)
}

func TestBestVectorMonotone(t *testing.T) {
	r := buildTwoDim(t)
	u := universeFor(t, r)
	res := NewSolver(u, explain.AbsoluteChange, 3).Solve(0, 1, nil)
	if res.Best[0] != 0 {
		t.Errorf("Best[0] = %g, want 0", res.Best[0])
	}
	for q := 1; q < len(res.Best); q++ {
		if res.Best[q] < res.Best[q-1] {
			t.Errorf("Best not monotone: Best[%d]=%g < Best[%d]=%g",
				q, res.Best[q], q-1, res.Best[q-1])
		}
	}
	if math.Abs(res.TotalGamma()-res.Best[3]) > 1e-9 {
		t.Errorf("TotalGamma = %g, Best[3] = %g", res.TotalGamma(), res.Best[3])
	}
}

func TestAllowedRestrictsSelection(t *testing.T) {
	r := buildTwoDim(t)
	u := universeFor(t, r)
	s := NewSolver(u, explain.AbsoluteChange, 1)
	// Forbid state=NY; the best selectable is state=CA (60).
	allowed := make([]bool, u.NumCandidates())
	for i := range allowed {
		allowed[i] = true
	}
	ny, _ := relation.NewConjunction(r, map[string]string{"state": "NY"})
	nyID, ok := u.Lookup(ny)
	if !ok {
		t.Fatal("NY not a candidate")
	}
	allowed[nyID] = false
	res := s.Solve(0, 1, allowed)
	if got := u.Describe(res.Explanations[0].ID); got == "state=NY" {
		t.Errorf("picked forbidden candidate %q", got)
	}
}

func TestDrillThroughDisallowedIntermediate(t *testing.T) {
	// Only leaf conjunctions are selectable; the DP must still reach them
	// through their (disallowed) order-1 ancestors.
	r := buildTwoDim(t)
	u := universeFor(t, r)
	allowed := make([]bool, u.NumCandidates())
	for id := 0; id < u.NumCandidates(); id++ {
		if u.Candidate(id).Conj.Order() == 2 {
			allowed[id] = true
		}
	}
	res := NewSolver(u, explain.AbsoluteChange, 2).Solve(0, 1, allowed)
	if len(res.Explanations) != 2 {
		t.Fatalf("got %d explanations, want 2", len(res.Explanations))
	}
	for _, p := range res.Explanations {
		if u.Candidate(p.ID).Conj.Order() != 2 {
			t.Errorf("picked %q, want only order-2 leaves", u.Describe(p.ID))
		}
	}
	// Best leaves: NY&a(100) + CA&a(50).
	if res.Best[2] != 150 {
		t.Errorf("Best[2] = %g, want 150", res.Best[2])
	}
}

func TestGuessVerifyMatchesExactOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	states := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}
	cats := []string{"c0", "c1", "c2", "c3"}
	for trial := 0; trial < 20; trial++ {
		b := relation.NewBuilder("x", "d", []string{"state", "cat"}, []string{"m"})
		for _, s := range states {
			for _, c := range cats {
				v1 := float64(rng.Intn(1000))
				v2 := float64(rng.Intn(1000))
				_ = b.Append("1", []string{s, c}, []float64{v1})
				_ = b.Append("2", []string{s, c}, []float64{v2})
			}
		}
		r, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		u := universeFor(t, r)
		solver := NewSolver(u, explain.AbsoluteChange, 3)
		exact := solver.Solve(0, 1, nil)
		for _, init := range []int{3, 5, 30} {
			gv, rounds := solver.GuessVerify(0, 1, init, nil)
			if math.Abs(gv.Best[3]-exact.Best[3]) > 1e-9 {
				t.Errorf("trial %d init %d: guess-verify Best[3]=%g, exact=%g (rounds=%d)",
					trial, init, gv.Best[3], exact.Best[3], rounds)
			}
		}
	}
}

func TestGuessVerifyLargeInitIsOneRound(t *testing.T) {
	r := buildTwoDim(t)
	u := universeFor(t, r)
	solver := NewSolver(u, explain.AbsoluteChange, 3)
	_, rounds := solver.GuessVerify(0, 1, 10000, nil)
	if rounds != 1 {
		t.Errorf("rounds = %d, want 1 when m̄ ≥ ε", rounds)
	}
}

func TestSolverMinimumM(t *testing.T) {
	r := buildTwoDim(t)
	u := universeFor(t, r)
	res := NewSolver(u, explain.AbsoluteChange, 0).Solve(0, 1, nil)
	if len(res.Explanations) != 1 {
		t.Errorf("m<1 should clamp to 1, got %d picks", len(res.Explanations))
	}
}

func TestRankedByGammaDescending(t *testing.T) {
	r := buildTwoDim(t)
	u := universeFor(t, r)
	res := NewSolver(u, explain.AbsoluteChange, 3).Solve(0, 1, nil)
	if !sort.SliceIsSorted(res.Explanations, func(i, j int) bool {
		return res.Explanations[i].Gamma > res.Explanations[j].Gamma
	}) {
		t.Errorf("explanations not ranked by γ: %+v", res.Explanations)
	}
}

// Exhaustive cross-check: on small random instances, the DP's Best[m]
// must match brute-force search over all non-overlapping candidate sets.
func TestDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		b := relation.NewBuilder("x", "d", []string{"a", "b"}, []string{"m"})
		avals := []string{"a0", "a1", "a2"}
		bvals := []string{"b0", "b1"}
		for _, av := range avals {
			for _, bv := range bvals {
				_ = b.Append("1", []string{av, bv}, []float64{float64(rng.Intn(50))})
				_ = b.Append("2", []string{av, bv}, []float64{float64(rng.Intn(50))})
			}
		}
		r, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		u := universeFor(t, r)
		m := 2 + rng.Intn(2)
		res := NewSolver(u, explain.AbsoluteChange, m).Solve(0, 1, nil)
		want := bruteForceBest(u, 0, 1, m)
		if math.Abs(res.Best[m]-want) > 1e-9 {
			t.Errorf("trial %d m=%d: DP=%g brute=%g", trial, m, res.Best[m], want)
		}
	}
}

// bruteForceBest enumerates all subsets of candidates of size ≤ m that are
// pairwise non-overlapping and returns the best total γ.
func bruteForceBest(u *explain.Universe, c, t, m int) float64 {
	n := u.NumCandidates()
	gammas := make([]float64, n)
	for id := 0; id < n; id++ {
		gammas[id], _ = u.Gamma(id, c, t, explain.AbsoluteChange)
	}
	var best float64
	var rec func(start int, chosen []int, total float64)
	rec = func(start int, chosen []int, total float64) {
		if total > best {
			best = total
		}
		if len(chosen) == m {
			return
		}
		for id := start; id < n; id++ {
			ok := true
			for _, o := range chosen {
				if u.Candidate(id).Conj.Overlaps(u.Candidate(o).Conj) {
					ok = false
					break
				}
			}
			if ok {
				rec(id+1, append(chosen, id), total+gammas[id])
			}
		}
	}
	rec(0, nil, 0)
	return best
}

func assertNonOverlapping(t *testing.T, u *explain.Universe, res Result) {
	t.Helper()
	for i := 0; i < len(res.Explanations); i++ {
		for j := i + 1; j < len(res.Explanations); j++ {
			a := u.Candidate(res.Explanations[i].ID).Conj
			b := u.Candidate(res.Explanations[j].ID).Conj
			if a.Overlaps(b) {
				t.Errorf("overlapping picks: %q and %q", u.Describe(res.Explanations[i].ID), u.Describe(res.Explanations[j].ID))
			}
		}
	}
}
