package cascading

import "sort"

// GuessVerify runs the guess-and-verify optimization of Section 5.3.1:
// instead of letting the DP consider all ε candidates, it restricts the
// selectable set to the m̄ candidates with the highest γ over the segment,
// doubles m̄ until the sufficient optimality condition of Eq. 12 holds,
// and returns a result guaranteed equal to the unrestricted Solve.
//
// initGuess is the initial m̄ (the paper initializes m̄ = 30 for m = 3);
// values < m are raised to m. base optionally restricts the selectable
// candidates before guessing (the filter optimization's survivor set); nil
// means all. The second return value reports how many guess rounds ran
// (1 means the first guess verified), which the experiments use to
// characterize the optimization.
func (s *Solver) GuessVerify(c, t int, initGuess int, base []bool) (Result, int) {
	scores := s.scoreSegment(c, t, base)
	n := len(scores.gamma)

	// χ: selectable candidate IDs. Rather than fully sorting all ε of
	// them per segment, each round partially selects just the prefix it
	// needs (the guess plus the verification lookahead). The slice is
	// solver scratch, reused across segments.
	if cap(s.chiBuf) < n {
		s.chiBuf = make([]int, 0, n)
	}
	chi := s.chiBuf[:0]
	for i := 0; i < n; i++ {
		if base == nil || base[i] {
			chi = append(chi, i)
		}
	}
	return s.guessVerifyScored(scores, chi, base, initGuess)
}

// GuessVerifyRestricted is GuessVerify over an explicit selectable id
// list (the budgeted approximate mode): scoring walks just ids, and the
// guess rounds partition ids instead of all ε candidates. allowed must be
// the bitmap form of ids, exactly as for SolveRestricted.
func (s *Solver) GuessVerifyRestricted(c, t int, initGuess int, allowed []bool, ids []int) (Result, int) {
	scores := s.scoreSegmentIDs(c, t, ids)
	if cap(s.chiBuf) < len(scores.gamma) {
		s.chiBuf = make([]int, 0, len(scores.gamma))
	}
	chi := append(s.chiBuf[:0], ids...)
	return s.guessVerifyScored(scores, chi, allowed, initGuess)
}

// guessVerifyScored runs the guess-and-verify rounds over a prepared
// score buffer and selectable id list. chi must alias solver scratch or a
// caller-owned list; it is reordered in place.
func (s *Solver) guessVerifyScored(scores segmentScores, chi []int, base []bool, initGuess int) (Result, int) {
	n := len(scores.gamma)
	mbar := initGuess
	if mbar < s.m {
		mbar = s.m
	}
	rounds := 0
	sorted := 0 // prefix of chi already in descending-γ order
	for {
		rounds++
		if mbar >= len(chi) {
			// Every selectable candidate is in the guess; the result is
			// trivially optimal. chi lists exactly base's true entries, so
			// it doubles as the reach-marking id list.
			return s.solveScoredIDs(scores, base, chi), rounds
		}
		if need := mbar + s.m; need > sorted {
			if need > len(chi) {
				need = len(chi)
			}
			selectTop(chi, scores.gamma, need)
			sort.SliceStable(chi[:need], func(i, j int) bool {
				return scores.gamma[chi[i]] > scores.gamma[chi[j]]
			})
			sorted = need
		}
		// allowedBuf stays all-false between rounds and calls: only the
		// guessed prefix is marked, and unmarked again below, so a guess
		// round costs O(m̄) rather than an O(ε) buffer clear.
		if cap(s.allowedBuf) < n {
			s.allowedBuf = make([]bool, n)
		}
		allowed := s.allowedBuf[:n]
		for _, id := range chi[:mbar] {
			allowed[id] = true
		}
		res := s.solveScoredIDs(scores, allowed, chi[:mbar])
		for _, id := range chi[:mbar] {
			allowed[id] = false
		}
		if s.verified(res, scores, chi, mbar) {
			return res, rounds
		}
		mbar *= 2
	}
}

// selectTop partially partitions ids so the k entries with the highest
// gamma occupy ids[:k] (in arbitrary order), via iterative quickselect
// with median-of-three pivoting. O(len(ids)) expected.
//
//tsexplain:hotpath
func selectTop(ids []int, gamma []float64, k int) {
	lo, hi := 0, len(ids)
	for hi-lo > 1 && k > lo && k < hi {
		// Median-of-three pivot on gamma values.
		mid := lo + (hi-lo)/2
		a, b, c := gamma[ids[lo]], gamma[ids[mid]], gamma[ids[hi-1]]
		pv := b
		switch {
		case (a >= b) == (a <= c):
			pv = a
		case (c >= a) == (c <= b):
			pv = c
		}
		// Partition: entries with gamma > pv first, == pv middle, < pv last.
		i, j, eq := lo, hi-1, lo
		for i <= j {
			g := gamma[ids[i]]
			switch {
			case g > pv:
				ids[i], ids[eq] = ids[eq], ids[i]
				i++
				eq++
			case g < pv:
				ids[i], ids[j] = ids[j], ids[i]
				j--
			default:
				i++
			}
		}
		// [lo, eq) greater, [eq, i) equal, [i, hi) less.
		switch {
		case k <= eq:
			hi = eq
		case k < i:
			return // boundary falls inside the equal block
		default:
			lo = i
		}
	}
}

// verified checks the sufficient condition of Eq. 12: for every
// 0 ≤ m' < m,
//
//	Best[m] ≥ Best[m'] + Σ_{1 ≤ j ≤ m−m'} γ(E_{r_{m̄+j}}),
//
// i.e. even if the remaining m−m' picks all came from beyond the guessed
// prefix at the highest conceivable scores, they could not beat the
// current solution.
//
//tsexplain:hotpath
func (s *Solver) verified(res Result, scores segmentScores, chi []int, mbar int) bool {
	for mp := 0; mp < s.m; mp++ {
		bound := res.Best[mp]
		for j := 1; j <= s.m-mp; j++ {
			if idx := mbar + j - 1; idx < len(chi) {
				bound += scores.gamma[chi[idx]]
			}
		}
		if res.Best[s.m] < bound-1e-12 {
			return false
		}
	}
	return true
}
