package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVSpec describes how to map a CSV file with a header row onto a
// Relation: which column is the time dimension, which columns are
// categorical dimensions, and which are numeric measures. Columns not
// listed are ignored.
type CSVSpec struct {
	Name     string   // relation name (informational)
	TimeCol  string   // header of the time column
	DimCols  []string // headers of dimension columns
	MeasCols []string // headers of measure columns
}

// ReadCSV loads a relation from CSV data with a header row.
func ReadCSV(src io.Reader, spec CSVSpec) (*Relation, error) {
	cr := csv.NewReader(src)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	colAt := make(map[string]int, len(header))
	for i, h := range header {
		colAt[h] = i
	}
	timeAt, ok := colAt[spec.TimeCol]
	if !ok {
		return nil, fmt.Errorf("relation: CSV has no time column %q", spec.TimeCol)
	}
	dimAt := make([]int, len(spec.DimCols))
	for i, name := range spec.DimCols {
		at, ok := colAt[name]
		if !ok {
			return nil, fmt.Errorf("relation: CSV has no dimension column %q", name)
		}
		dimAt[i] = at
	}
	measAt := make([]int, len(spec.MeasCols))
	for i, name := range spec.MeasCols {
		at, ok := colAt[name]
		if !ok {
			return nil, fmt.Errorf("relation: CSV has no measure column %q", name)
		}
		measAt[i] = at
	}

	b := NewBuilder(spec.Name, spec.TimeCol, spec.DimCols, spec.MeasCols)
	dims := make([]string, len(dimAt))
	meas := make([]float64, len(measAt))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV: %w", err)
		}
		line++
		for i, at := range dimAt {
			dims[i] = rec[at]
		}
		for i, at := range measAt {
			v, err := strconv.ParseFloat(rec[at], 64)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d, column %q: %w", line, spec.MeasCols[i], err)
			}
			meas[i] = v
		}
		if err := b.Append(rec[timeAt], dims, meas); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// WriteCSV writes the relation as CSV with a header row: time column
// first, then dimensions, then measures. Derived dimension columns (path
// hierarchy levels, range bins) are skipped — they are recomputed from the
// base columns on load, so the on-disk CSV always keeps the base schema.
func WriteCSV(dst io.Writer, r *Relation) error {
	cw := csv.NewWriter(dst)
	nd := r.NumBaseDims()
	header := append([]string{r.TimeName()}, r.DimNames()[:nd]...)
	header = append(header, r.MeasureNames()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	rec := make([]string, len(header))
	for row := 0; row < r.NumRows(); row++ {
		rec[0] = r.TimeLabel(r.TimeIndex(row))
		for d := 0; d < nd; d++ {
			rec[1+d] = r.DimValue(d, row)
		}
		for m := 0; m < r.NumMeasures(); m++ {
			rec[1+nd+m] = strconv.FormatFloat(r.MeasureValue(m, row), 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: writing CSV row %d: %w", row, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
