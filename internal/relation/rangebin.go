package relation

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file derives categorical range-bin columns from numeric columns by
// equi-depth split refinement: the ideal equi-depth cut ranks i·n/bins are
// refined rightward past duplicate runs until each edge is a strict
// boundary (some value below it, some at or above it), so heavy duplicates
// collapse bins instead of producing empty or ill-defined ones. The edges
// are frozen at derivation time and persisted with the relation's binary
// snapshot, so appended rows bin identically and restores are
// bit-identical; values outside the observed range fall into the outer
// bins, and NaN gets its own bin.

// EquiDepthEdges returns strictly increasing, finite bin edges cutting
// vals into at most bins left-closed bins [e_{i-1}, e_i): the ideal
// equi-depth cut ranks over the sorted finite values, each refined to the
// next strict value boundary when duplicates straddle it. NaN values are
// ignored; ±Inf values sort into the outer bins and never become edges.
// Fewer than bins−1 edges come back when duplicates or infinities leave
// nothing to cut.
func EquiDepthEdges(vals []float64, bins int) []float64 {
	s := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	n := len(s)
	if n == 0 || bins < 2 {
		return nil
	}
	sort.Float64s(s)
	edges := make([]float64, 0, bins-1)
	lo := 0 // rank of the previous edge; the next one must cut strictly after it
	for i := 1; i < bins; i++ {
		r := i * n / bins
		if r <= lo {
			r = lo + 1
		}
		// Split refinement: a cut inside a duplicate run is no boundary at
		// all — slide right to the first index whose value strictly exceeds
		// its predecessor's.
		for r < n && s[r] == s[r-1] {
			r++
		}
		if r >= n || math.IsInf(s[r], 1) {
			break
		}
		edges = append(edges, s[r])
		lo = r
	}
	return edges
}

// AssignBin returns the bin index of v under the given edges: the number
// of edges ≤ v, so bin i spans [edges[i-1], edges[i]). NaN returns −1 (the
// dedicated NaN bin); −Inf lands in bin 0 and +Inf in the last bin.
//
//tsexplain:hotpath
func AssignBin(edges []float64, v float64) int {
	if math.IsNaN(v) {
		return -1
	}
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if edges[mid] > v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BinLabel renders the bin's dictionary value: "NaN" for the NaN bin,
// otherwise the half-open interval with the exact 'g'/-1 float rendering
// used everywhere else values round-trip.
func BinLabel(edges []float64, bin int) string {
	if bin < 0 {
		return "NaN"
	}
	lo, hi := "-inf", "+inf"
	if bin > 0 {
		lo = strconv.FormatFloat(edges[bin-1], 'g', -1, 64)
	}
	if bin < len(edges) {
		hi = strconv.FormatFloat(edges[bin], 'g', -1, 64)
	}
	return "[" + lo + "," + hi + ")"
}

// derivedCol kinds.
const (
	derivedPathLevel = uint8(1) // level column split from a path-delimited dim
	derivedRangeBin  = uint8(2) // bin column over a numeric measure
)

// derivedCol records how a derived dimension column is recomputed for
// appended base-width rows: path levels re-split their source dimension,
// range bins re-assign against the frozen edges.
type derivedCol struct {
	dim    int   // index of the derived DimColumn
	kind   uint8 // derivedPathLevel or derivedRangeBin
	source int   // dim index (path level) or measure index (range bin)
	level  int   // path level position
	nparts int   // path segment count the source must split into
	delim  string
	edges  []float64
}

// NumBaseDims returns the number of non-derived dimension columns — the
// width AppendRows accepts when derived columns should be recomputed
// engine-side.
func (r *Relation) NumBaseDims() int { return len(r.dims) - len(r.derived) }

// AddRangeBin derives a categorical column named as by equi-depth binning
// the named numeric measure into at most bins bins, appends it to the
// relation, and freezes its edges. Appended rows bin against the frozen
// edges, so out-of-range future values fall into the outer bins.
func (r *Relation) AddRangeBin(as, measure string, bins int) error {
	if as == "" {
		return fmt.Errorf("relation: range bin needs a column name")
	}
	if r.DimIndex(as) >= 0 || r.MeasureIndex(as) >= 0 || as == r.timeName {
		return fmt.Errorf("relation: range bin column %q collides with an existing column", as)
	}
	mi := r.MeasureIndex(measure)
	if mi < 0 {
		return fmt.Errorf("relation: unknown range bin source measure %q", measure)
	}
	if bins < 2 || bins > 4096 {
		return fmt.Errorf("relation: range bin count %d out of range (2..4096)", bins)
	}
	vals := r.measures[mi].vals
	edges := EquiDepthEdges(vals, bins)
	col := &DimColumn{
		name:  as,
		ids:   make([]uint32, r.numRows),
		index: make(map[string]uint32),
	}
	for row := 0; row < r.numRows; row++ {
		v := BinLabel(edges, AssignBin(edges, vals[row]))
		id, ok := col.index[v]
		if !ok {
			id = uint32(len(col.dict))
			col.dict = append(col.dict, v)
			col.index[v] = id
		}
		col.ids[row] = id
	}
	r.dimByName[as] = len(r.dims)
	r.dims = append(r.dims, col)
	r.derived = append(r.derived, derivedCol{
		dim: len(r.dims) - 1, kind: derivedRangeBin, source: mi, edges: edges,
	})
	return nil
}

// RangeBinEdges returns the frozen edges of the named range-bin column.
func (r *Relation) RangeBinEdges(name string) ([]float64, bool) {
	d := r.DimIndex(name)
	if d < 0 {
		return nil, false
	}
	for i := range r.derived {
		if r.derived[i].dim == d && r.derived[i].kind == derivedRangeBin {
			return append([]float64(nil), r.derived[i].edges...), true
		}
	}
	return nil, false
}

// deriveRows recomputes the derived columns for base-width appended rows,
// returning full-width dimension rows in relation column order. It never
// mutates the caller's slices.
func (r *Relation) deriveRows(dims [][]string, measures [][]float64) ([][]string, error) {
	out := make([][]string, len(dims))
	for i := range dims {
		full := make([]string, len(r.dims))
		copy(full, dims[i])
		for _, dc := range r.derived {
			switch dc.kind {
			case derivedPathLevel:
				parts := strings.Split(dims[i][dc.source], dc.delim)
				if len(parts) != dc.nparts {
					return nil, fmt.Errorf("relation: appended row %d: path value %q has %d segment(s), want %d",
						i, dims[i][dc.source], len(parts), dc.nparts)
				}
				full[dc.dim] = parts[dc.level]
			case derivedRangeBin:
				full[dc.dim] = BinLabel(dc.edges, AssignBin(dc.edges, measures[i][dc.source]))
			}
		}
		out[i] = full
	}
	return out, nil
}
