package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file implements the relation half of the warm-restart snapshot
// codec: a versioned, endianness-stable binary encoding of a Relation's
// dictionary-encoded columns. A server restart decodes the snapshot
// instead of re-parsing (and re-dictionary-encoding) the source CSV; the
// companion universe codec in internal/explain then skips the group-by
// and planning passes entirely. All multi-byte values are little-endian
// regardless of host byte order, so a snapshot written on one machine
// loads on any other.

// relSnapMagic identifies a relation snapshot section; the trailing byte
// is the format version. Readers reject unknown versions rather than
// guessing, so a format change never silently mis-decodes old files —
// callers fall back to rebuilding from the source data.
const (
	relSnapMagic   = "TSXR"
	relSnapVersion = 1
)

// snapMaxLen caps every decoded length field (strings, row counts, column
// counts). A corrupted or adversarial length then fails decoding with an
// error instead of attempting a multi-gigabyte allocation.
const snapMaxLen = 1 << 31

// SnapWriter wraps a buffered writer with the little-endian primitives
// both snapshot codecs (relation here, universe in internal/explain)
// share. The first write error sticks; later writes are no-ops, so
// encoders can write unconditionally and check once at the end.
type SnapWriter struct {
	w   *bufio.Writer
	err error
}

// NewSnapWriter returns a snapshot writer over w. It is exported for the
// universe codec in internal/explain, which appends its section to the
// same stream; application code uses WriteSnapshot instead.
func NewSnapWriter(w io.Writer) *SnapWriter { return &SnapWriter{w: bufio.NewWriter(w)} }

func (sw *SnapWriter) bytes(b []byte) {
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.Write(b)
}

// U8, U32, U64, F64, Str, and Flush are the primitive little-endian
// emitters shared by the snapshot codecs.
func (sw *SnapWriter) U8(v uint8) { sw.bytes([]byte{v}) }

func (sw *SnapWriter) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	sw.bytes(b[:])
}

func (sw *SnapWriter) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	sw.bytes(b[:])
}

func (sw *SnapWriter) F64(v float64) { sw.U64(math.Float64bits(v)) }

func (sw *SnapWriter) Str(s string) {
	sw.U32(uint32(len(s)))
	sw.bytes([]byte(s))
}

// SumCounts bulk-encodes a decomposed-aggregate series as (sum, count)
// float64 pairs. The universe codec uses it for the candidate-series
// arena, where per-value calls would dominate decode time.
func (sw *SnapWriter) SumCounts(s []SumCount) {
	if sw.err != nil {
		return
	}
	var b [16]byte
	for i := range s {
		binary.LittleEndian.PutUint64(b[:8], math.Float64bits(s[i].Sum))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(s[i].Count))
		if _, sw.err = sw.w.Write(b[:]); sw.err != nil {
			return
		}
	}
}

// Flush drains the buffer and reports the first error encountered.
func (sw *SnapWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// SnapReader is the decoding counterpart of SnapWriter: little-endian
// primitives over a buffered reader, with sticky errors and length
// sanity caps.
type SnapReader struct {
	r       *bufio.Reader
	err     error
	scratch [8]byte // fixed-width reads decode through here, allocation-free
}

// NewSnapReader returns a snapshot reader over r, the counterpart of
// NewSnapWriter.
func NewSnapReader(r io.Reader) *SnapReader { return &SnapReader{r: bufio.NewReader(r)} }

func (sr *SnapReader) bytes(n int) []byte {
	if sr.err != nil {
		return nil
	}
	b := sr.scratch[:]
	if n > len(sr.scratch) {
		b = make([]byte, n)
	} else {
		b = b[:n]
	}
	if _, err := io.ReadFull(sr.r, b); err != nil {
		sr.err = fmt.Errorf("relation: snapshot truncated: %w", err)
		return nil
	}
	return b
}

// U8, U32, U64, F64, Str, Len, and Err are the primitive little-endian
// decoders shared by the snapshot codecs.
func (sr *SnapReader) U8() uint8 {
	b := sr.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (sr *SnapReader) U32() uint32 {
	b := sr.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (sr *SnapReader) U64() uint64 {
	b := sr.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (sr *SnapReader) F64() float64 { return math.Float64frombits(sr.U64()) }

// SumCountsInto bulk-decodes len(dst) (sum, count) pairs into dst, the
// counterpart of SnapWriter.SumCounts.
func (sr *SnapReader) SumCountsInto(dst []SumCount) {
	if sr.err != nil {
		return
	}
	var b [16]byte
	for i := range dst {
		if _, err := io.ReadFull(sr.r, b[:]); err != nil {
			sr.err = fmt.Errorf("relation: snapshot truncated: %w", err)
			return
		}
		dst[i].Sum = math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
		dst[i].Count = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	}
}

// Len decodes a u32 length field, failing the stream when it exceeds the
// sanity cap.
func (sr *SnapReader) Len(what string) int {
	n := sr.U32()
	if sr.err == nil && n > snapMaxLen {
		sr.err = fmt.Errorf("relation: snapshot %s length %d exceeds sanity cap", what, n)
	}
	return int(n)
}

func (sr *SnapReader) Str() string {
	n := sr.Len("string")
	b := sr.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Err returns the first decoding error, if any.
func (sr *SnapReader) Err() error { return sr.err }

// WriteSnapshot encodes the relation in the versioned binary snapshot
// format: time labels and per-row time indexes, every dimension's
// dictionary and id column, and every measure column. The encoding is
// little-endian on every platform and captures the dictionary id
// assignment exactly, so a decoded relation is bit-identical to the
// original — including candidate IDs derived from dictionary order by
// the explain layer.
func (r *Relation) WriteSnapshot(w io.Writer) error {
	sw := NewSnapWriter(w)
	r.encodeSnapshot(sw)
	return sw.Flush()
}

// EncodeSnapshot appends the relation's snapshot section to an existing
// snapshot writer (the catalog writes the relation and universe sections
// into one checksummed file).
func (r *Relation) EncodeSnapshot(sw *SnapWriter) { r.encodeSnapshot(sw) }

func (r *Relation) encodeSnapshot(sw *SnapWriter) {
	sw.bytes([]byte(relSnapMagic))
	sw.U8(relSnapVersion)
	sw.Str(r.name)
	sw.Str(r.timeName)
	sw.U32(uint32(r.numRows))
	sw.U32(uint32(len(r.timeLabels)))
	for _, l := range r.timeLabels {
		sw.Str(l)
	}
	for _, t := range r.timeIdx {
		sw.U32(uint32(t))
	}
	sw.U32(uint32(len(r.dims)))
	for _, d := range r.dims {
		sw.Str(d.name)
		sw.U32(uint32(len(d.dict)))
		for _, v := range d.dict {
			sw.Str(v)
		}
		for _, id := range d.ids {
			sw.U32(id)
		}
	}
	sw.U32(uint32(len(r.measures)))
	for _, m := range r.measures {
		sw.Str(m.name)
		for _, v := range m.vals {
			sw.F64(v)
		}
	}
}

// ReadSnapshot decodes a relation written by WriteSnapshot. Structural
// invariants — id ranges, column lengths, duplicate names — are
// re-validated during decoding, so a corrupted snapshot fails loudly
// rather than producing a relation that violates the invariants the
// engine relies on. (Bit-flips inside string or float payloads are the
// catalog checksum's job; this layer guarantees structural soundness.)
func ReadSnapshot(rd io.Reader) (*Relation, error) {
	sr := NewSnapReader(rd)
	r := decodeSnapshot(sr)
	if sr.err != nil {
		return nil, sr.err
	}
	return r, nil
}

// DecodeSnapshot decodes one relation section from an existing snapshot
// reader, the counterpart of EncodeSnapshot. Check the reader's Err
// afterwards.
func DecodeSnapshot(sr *SnapReader) *Relation { return decodeSnapshot(sr) }

func decodeSnapshot(sr *SnapReader) *Relation {
	fail := func(format string, args ...any) *Relation {
		if sr.err == nil {
			sr.err = fmt.Errorf("relation: snapshot: "+format, args...)
		}
		return nil
	}
	if magic := sr.bytes(len(relSnapMagic)); string(magic) != relSnapMagic {
		return fail("bad magic %q", magic)
	}
	if v := sr.U8(); v != relSnapVersion {
		return fail("unsupported version %d (want %d)", v, relSnapVersion)
	}
	r := &Relation{
		name:     sr.Str(),
		timeName: sr.Str(),
	}
	r.numRows = sr.Len("row count")
	nLabels := sr.Len("time labels")
	if sr.err != nil {
		return nil
	}
	r.timeLabels = make([]string, nLabels)
	r.timePos = make(map[string]int32, nLabels)
	for i := range r.timeLabels {
		l := sr.Str()
		if _, dup := r.timePos[l]; dup && sr.err == nil {
			return fail("duplicate time label %q", l)
		}
		r.timeLabels[i] = l
		r.timePos[l] = int32(i)
	}
	r.timeIdx = make([]int32, r.numRows)
	for i := range r.timeIdx {
		t := sr.U32()
		if int(t) >= nLabels && sr.err == nil {
			return fail("row %d time index %d out of range (%d labels)", i, t, nLabels)
		}
		r.timeIdx[i] = int32(t)
	}
	nDims := sr.Len("dimension count")
	if sr.err != nil {
		return nil
	}
	r.dimByName = make(map[string]int, nDims)
	for di := 0; di < nDims; di++ {
		col := &DimColumn{name: sr.Str()}
		if _, dup := r.dimByName[col.name]; dup && sr.err == nil {
			return fail("duplicate dimension %q", col.name)
		}
		nDict := sr.Len("dictionary")
		if sr.err != nil {
			return nil
		}
		col.dict = make([]string, nDict)
		col.index = make(map[string]uint32, nDict)
		for i := range col.dict {
			v := sr.Str()
			if _, dup := col.index[v]; dup && sr.err == nil {
				return fail("dimension %q: duplicate dictionary value %q", col.name, v)
			}
			col.dict[i] = v
			col.index[v] = uint32(i)
		}
		col.ids = make([]uint32, r.numRows)
		for i := range col.ids {
			id := sr.U32()
			if int(id) >= nDict && sr.err == nil {
				return fail("dimension %q: row %d id %d out of range (%d values)", col.name, i, id, nDict)
			}
			col.ids[i] = id
		}
		r.dimByName[col.name] = di
		r.dims = append(r.dims, col)
	}
	nMeas := sr.Len("measure count")
	if sr.err != nil {
		return nil
	}
	r.measureByName = make(map[string]int, nMeas)
	for mi := 0; mi < nMeas; mi++ {
		col := &MeasureColumn{name: sr.Str()}
		if _, dup := r.measureByName[col.name]; dup && sr.err == nil {
			return fail("duplicate measure %q", col.name)
		}
		col.vals = make([]float64, r.numRows)
		for i := range col.vals {
			col.vals[i] = sr.F64()
		}
		r.measureByName[col.name] = mi
		r.measures = append(r.measures, col)
	}
	if sr.err != nil {
		return nil
	}
	return r
}

// Clone returns a deep copy of the relation: mutations of the receiver
// (AppendRows) never reach the copy and vice versa. The serving layer
// clones the live streaming relation when publishing a fresh immutable
// view for pooled engines.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		name:          r.name,
		numRows:       r.numRows,
		timeName:      r.timeName,
		timeIdx:       append([]int32(nil), r.timeIdx...),
		timeLabels:    append([]string(nil), r.timeLabels...),
		timePos:       make(map[string]int32, len(r.timeLabels)),
		dimByName:     make(map[string]int, len(r.dims)),
		measureByName: make(map[string]int, len(r.measures)),
	}
	for i, l := range out.timeLabels {
		out.timePos[l] = int32(i)
	}
	for i, d := range r.dims {
		col := &DimColumn{
			name:  d.name,
			ids:   append([]uint32(nil), d.ids...),
			dict:  append([]string(nil), d.dict...),
			index: make(map[string]uint32, len(d.dict)),
		}
		for id, v := range col.dict {
			col.index[v] = uint32(id)
		}
		out.dimByName[col.name] = i
		out.dims = append(out.dims, col)
	}
	for i, m := range r.measures {
		out.measureByName[m.name] = i
		out.measures = append(out.measures, &MeasureColumn{name: m.name, vals: append([]float64(nil), m.vals...)})
	}
	return out
}
